# Development targets. `make check` is the pre-merge gate (see ROADMAP.md).

GO ?= go

.PHONY: check vet build test race repro bench fmt

check: vet build race repro ## pre-merge gate: vet + build + race tests + reproduction

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

repro:
	$(GO) test -run TestReproduction ./...

# bench refreshes the benchmark log used to track instrumentation
# overhead (compare against BENCH_baseline.json).
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./... | $(GO) run ./scripts/benchjson

fmt:
	gofmt -l -w .
