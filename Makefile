# Development targets. `make check` is the pre-merge gate (see ROADMAP.md).

GO ?= go

.PHONY: check lint vet memlint build test race repro bench fuzz soak prof-smoke fmt

check: lint build race repro ## pre-merge gate: lint + build + race tests + reproduction

# lint is the static-analysis gate: go vet plus the repo's own memlint
# suite (determinism, maprange, nilhook, durable, errhygiene — see
# docs/static-analysis.md). memlint exits 0 on a clean tree, 1 on
# findings, 2 on usage/load errors; `go run` caches the memlint build in
# the standard Go build cache, so repeat runs only pay for analysis.
lint: vet memlint

vet:
	$(GO) vet ./...

memlint:
	$(GO) run ./cmd/memlint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

repro:
	$(GO) test -run TestReproduction ./...

# fuzz gives every fuzz target a short smoke run (the regression corpora
# under testdata/fuzz run on every plain `go test` regardless).
FUZZTIME ?= 5s
fuzz:
	$(GO) test -fuzz '^FuzzParseByteSize$$' -fuzztime $(FUZZTIME) ./internal/units/
	$(GO) test -fuzz '^FuzzParseBandwidth$$' -fuzztime $(FUZZTIME) ./internal/units/
	$(GO) test -fuzz '^FuzzParsePlan$$' -fuzztime $(FUZZTIME) ./internal/faults/
	$(GO) test -fuzz '^FuzzLoadPlatformFile$$' -fuzztime $(FUZZTIME) .
	$(GO) test -fuzz '^FuzzLoadProfileFile$$' -fuzztime $(FUZZTIME) .
	$(GO) test -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME) ./internal/checkpoint/
	$(GO) test -fuzz '^FuzzReadJSONL$$' -fuzztime $(FUZZTIME) ./internal/trace/

# prof-smoke runs memprof on the seeded overlap scenario and validates
# the Perfetto export byte-for-byte against the golden file (regenerate
# after intended changes with `go test ./cmd/memprof -run Golden -update`).
prof-smoke:
	$(GO) test -run 'TestMemprof' -count=1 ./cmd/memprof/

# soak kills the Table II pipeline at seeded random points and resumes
# it from the checkpoint journal, asserting byte-identical artifacts
# (see docs/resilience.md).
SOAK_ROUNDS ?= 6
soak:
	$(GO) run ./scripts/soak -rounds $(SOAK_ROUNDS)

# bench refreshes the benchmark log used to track instrumentation
# overhead (compare against BENCH_baseline.json).
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./... | $(GO) run ./scripts/benchjson

fmt:
	gofmt -l -w .
