# Development targets. `make check` is the pre-merge gate (see ROADMAP.md).

GO ?= go

.PHONY: check lint vet memlint memlint-per-check lint-fixtures build test race repro bench benchdiff fuzz soak soak-parallel soak-remote prof-smoke serve-smoke top-smoke loadtest fmt

check: lint build race repro benchdiff ## pre-merge gate: lint + build + race tests + reproduction (+ advisory benchdiff)

# lint is the static-analysis gate: go vet plus the repo's own memlint
# suite (determinism, maprange, nilhook, durable, errhygiene, and the
# whole-module concurrency checks lockguard/goleak/ctxflow — see
# docs/static-analysis.md). memlint exits 0 on a clean tree, 1 on
# findings, 2 on usage/load errors; `go run` caches the memlint build in
# the standard Go build cache, so repeat runs only pay for analysis.
lint: vet memlint

vet:
	$(GO) vet ./...

memlint:
	$(GO) run ./cmd/memlint ./...

# MEMLINT_CHECKS drives the per-check CI step: one memlint invocation
# per analyzer, timed, so a slow or noisy check is visible in the log
# instead of hiding inside the aggregate run.
MEMLINT_CHECKS ?= determinism maprange nilhook durable errhygiene lockguard goleak ctxflow
memlint-per-check:
	@for c in $(MEMLINT_CHECKS); do \
		start=$$(date +%s%N); \
		$(GO) run ./cmd/memlint -checks $$c ./... || exit 1; \
		echo "== memlint -checks $$c: $$(( ($$(date +%s%N) - start) / 1000000 )) ms"; \
	done

# lint-fixtures runs only the analyzer fixture harness (want comments +
# goldens) — the fast inner loop for analyzer development; regenerate
# goldens with `go test ./internal/analysis -run Fixture -update`.
lint-fixtures:
	$(GO) test -run 'Fixture' -count=1 ./internal/analysis/

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

repro:
	$(GO) test -run TestReproduction ./...

# fuzz gives every fuzz target a short smoke run (the regression corpora
# under testdata/fuzz run on every plain `go test` regardless).
FUZZTIME ?= 5s
fuzz:
	$(GO) test -fuzz '^FuzzParseByteSize$$' -fuzztime $(FUZZTIME) ./internal/units/
	$(GO) test -fuzz '^FuzzParseBandwidth$$' -fuzztime $(FUZZTIME) ./internal/units/
	$(GO) test -fuzz '^FuzzParsePlan$$' -fuzztime $(FUZZTIME) ./internal/faults/
	$(GO) test -fuzz '^FuzzLoadPlatformFile$$' -fuzztime $(FUZZTIME) .
	$(GO) test -fuzz '^FuzzLoadProfileFile$$' -fuzztime $(FUZZTIME) .
	$(GO) test -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME) ./internal/checkpoint/
	$(GO) test -fuzz '^FuzzMergeShards$$' -fuzztime $(FUZZTIME) ./internal/checkpoint/
	$(GO) test -fuzz '^FuzzReadJSONL$$' -fuzztime $(FUZZTIME) ./internal/trace/
	$(GO) test -fuzz '^FuzzDecodeRequest$$' -fuzztime $(FUZZTIME) ./internal/serve/
	$(GO) test -fuzz '^FuzzLeaseDecode$$' -fuzztime $(FUZZTIME) ./internal/lease/
	$(GO) test -fuzz '^FuzzDecodeEvents$$' -fuzztime $(FUZZTIME) ./internal/campaign/

# prof-smoke runs memprof on the seeded overlap scenario and validates
# the Perfetto export byte-for-byte against the golden file (regenerate
# after intended changes with `go test ./cmd/memprof -run Golden -update`).
prof-smoke:
	$(GO) test -run 'TestMemprof' -count=1 ./cmd/memprof/

# soak kills the Table II pipeline at seeded random points and resumes
# it from the checkpoint journal, asserting byte-identical artifacts
# (see docs/resilience.md).
SOAK_ROUNDS ?= 6
soak:
	$(GO) run ./scripts/soak -rounds $(SOAK_ROUNDS)

# soak-parallel soaks the supervised sharded executor: random worker
# kills mid-shard, whole-campaign kills resumed from the per-shard
# journals, and a poison-unit quarantine phase — all byte-checked
# against the sequential baseline (see docs/campaigns.md).
soak-parallel:
	$(GO) run ./scripts/soak -parallel -rounds $(SOAK_ROUNDS)

# soak-remote soaks the lease-coordinated multi-process campaign with
# real memworker processes and real signals: two workers SIGKILLed
# mid-unit, one SIGSTOPped past its lease TTL and resurrected as a
# fenced zombie that keeps writing, a fresh worker taking every orphaned
# shard over — merged artifacts byte-checked against the sequential
# baseline (see docs/campaigns.md).
soak-remote:
	$(GO) run ./scripts/soak -remote

# bench refreshes the benchmark log used to track instrumentation
# overhead (compare against BENCH_baseline.json).
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./... | $(GO) run ./scripts/benchjson

# benchdiff reruns a stable benchmark subset and compares ns/op and
# allocs/op against BENCH_baseline.json, failing beyond 15% growth.
# Advisory in `make check` (leading `-`): shared runners are noisy, so a
# flagged regression means "measure properly before merging", not
# "blocked" (see docs/observability.md).
BENCHDIFF_PATTERN ?= BenchmarkClusterHaloExchange$$|BenchmarkTable1Platforms$$|BenchmarkPredict$$|BenchmarkSolver$$
benchdiff:
	-$(GO) test -bench '$(BENCHDIFF_PATTERN)' -benchmem -run '^$$' ./... \
		| $(GO) run ./scripts/benchjson \
		| $(GO) run ./scripts/benchdiff -baseline BENCH_baseline.json

# serve-smoke boots the real memserve binary path (warm-up, listener,
# live plane) and walks /healthz, /readyz, a prediction and a /metrics
# scrape end to end.
serve-smoke:
	$(GO) test -run 'TestMemserve' -count=1 ./cmd/memserve/

# top-smoke drains a real campaign, renders memtop's text, JSON and
# timeline views byte-for-byte against the golden files (regenerate
# after intended changes with `go test ./cmd/memtop -run Golden -update`)
# and scrapes the -serve plane's memcontention_fleet_* gauges.
top-smoke:
	$(GO) test -run 'TestMemtop' -count=1 ./cmd/memtop/

# loadtest proves the serving budgets on cached predictions: achieved
# QPS >= 5000 and server-reported p99 <= 5ms, both read back from the
# live /metrics scrape (see docs/memserve.md).
LOAD_DURATION ?= 3s
loadtest:
	$(GO) run ./scripts/loadgen -duration $(LOAD_DURATION) -workers 16 -qps-budget 5000 -p99-budget 5ms

fmt:
	gofmt -l -w .
