// bench_test.go is the paper-artifact harness: one testing.B benchmark per
// table and figure of the evaluation section, plus ablations (DESIGN.md
// E10) and the §VI extensions (E11, E12). Each benchmark performs the full
// pipeline per iteration (so -benchmem tracks its cost), prints the
// artifact once to stdout, and reports its prediction error as a custom
// metric (%err) so regressions show up in benchstat.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package memcontention

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"memcontention/internal/bench"
	"memcontention/internal/cache"
	"memcontention/internal/eval"
	"memcontention/internal/kernels"
	"memcontention/internal/memsys"
	"memcontention/internal/netbench"
	"memcontention/internal/sensitivity"
	"memcontention/internal/topology"
)

// printOnce prints each named artifact a single time per binary run, no
// matter how many benchmark iterations execute.
var printedArtifacts sync.Map

func printArtifact(name string, render func() string) {
	if _, loaded := printedArtifacts.LoadOrStore(name, true); loaded {
		return
	}
	fmt.Fprintf(os.Stdout, "\n===== %s =====\n%s\n", name, render())
}

func evaluatePlatform(b *testing.B, name string) *EvalResult {
	b.Helper()
	plat, err := topology.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	res, err := eval.EvaluatePlatform(bench.Config{Platform: plat, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable1Platforms regenerates Table I.
func BenchmarkTable1Platforms(b *testing.B) {
	var tbl *Table
	for i := 0; i < b.N; i++ {
		tbl = eval.Table1(topology.Testbed())
	}
	printArtifact("TABLE I", tbl.String)
}

// BenchmarkTable2Errors regenerates Table II: the full six-platform
// evaluation, reporting the cross-platform average error.
func BenchmarkTable2Errors(b *testing.B) {
	var results []*EvalResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = eval.EvaluateTestbed(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	avg := 0.0
	for _, r := range results {
		avg += r.Errors.Average
	}
	b.ReportMetric(avg/float64(len(results)), "%err")
	printArtifact("TABLE II", func() string { return eval.Table2(results).String() })
}

// benchmarkFigure is the shared harness of Figures 3–8: evaluate the
// platform, assemble the figure series, report the platform error.
func benchmarkFigure(b *testing.B, figName, platform string) {
	var res *EvalResult
	var fig *eval.Figure
	for i := 0; i < b.N; i++ {
		res = evaluatePlatform(b, platform)
		fig = eval.FigureFor(figName, res)
	}
	b.ReportMetric(res.Errors.Average, "%err")
	printArtifact(figName+" ("+platform+")", func() string {
		var sb stringsBuilder
		if err := fig.WriteCSV(&sb); err != nil {
			return err.Error()
		}
		return sb.String()
	})
}

// stringsBuilder avoids importing strings solely for the builder.
type stringsBuilder struct{ buf []byte }

func (s *stringsBuilder) Write(p []byte) (int, error) {
	s.buf = append(s.buf, p...)
	return len(p), nil
}
func (s *stringsBuilder) String() string { return string(s.buf) }

// BenchmarkFigure2Stacked regenerates the stacked representation of
// Figure 2 (henri-subnuma, both streams on the first local node).
func BenchmarkFigure2Stacked(b *testing.B) {
	var st *eval.Stacked
	for i := 0; i < b.N; i++ {
		res := evaluatePlatform(b, "henri-subnuma")
		var err error
		st, err = eval.StackedFor(res, Placement{Comp: 0, Comm: 0})
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact("FIGURE 2 (stacked, henri-subnuma comp@0/comm@0)", func() string {
		var sb stringsBuilder
		if err := st.WriteCSV(&sb); err != nil {
			return err.Error()
		}
		return sb.String() + "\nmodel points: " + st.Params.String()
	})
}

func BenchmarkFigure3Henri(b *testing.B)        { benchmarkFigure(b, "figure3", "henri") }
func BenchmarkFigure4HenriSubnuma(b *testing.B) { benchmarkFigure(b, "figure4", "henri-subnuma") }
func BenchmarkFigure5Diablo(b *testing.B)       { benchmarkFigure(b, "figure5", "diablo") }
func BenchmarkFigure6Occigen(b *testing.B)      { benchmarkFigure(b, "figure6", "occigen") }
func BenchmarkFigure7Pyxis(b *testing.B)        { benchmarkFigure(b, "figure7", "pyxis") }
func BenchmarkFigure8Dahu(b *testing.B)         { benchmarkFigure(b, "figure8", "dahu") }

// BenchmarkAblationBaselines (E10): the threshold model against the
// simpler predictors of internal/baseline on henri, all calibrated from
// the same two sample runs.
func BenchmarkAblationBaselines(b *testing.B) {
	plat, err := topology.ByName("henri")
	if err != nil {
		b.Fatal(err)
	}
	var rows []eval.AblationRow
	for i := 0; i < b.N; i++ {
		runner, err := bench.NewRunner(bench.Config{Platform: plat, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		rows, err = eval.Ablation(runner)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Name == "threshold-model" {
			b.ReportMetric(r.Overall, "%err")
		}
	}
	printArtifact("ABLATION E10 — predictor MAPE on henri (all placements)", func() string {
		return eval.AblationTable("henri", rows).String()
	})
}

// BenchmarkExtensionPingPong (E11): bidirectional communications (§VI
// future work) — the aggregate NIC traffic doubles, contention starts at
// fewer cores.
func BenchmarkExtensionPingPong(b *testing.B) {
	plat, err := topology.ByName("henri")
	if err != nil {
		b.Fatal(err)
	}
	var uni, bi *Curve
	for i := 0; i < b.N; i++ {
		ur, err := bench.NewRunner(bench.Config{Platform: plat, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		br, err := bench.NewRunner(bench.Config{Platform: plat, Seed: 1, Bidirectional: true})
		if err != nil {
			b.Fatal(err)
		}
		if uni, err = ur.RunPlacement(Placement{Comp: 0, Comm: 0}); err != nil {
			b.Fatal(err)
		}
		if bi, err = br.RunPlacement(Placement{Comp: 0, Comm: 0}); err != nil {
			b.Fatal(err)
		}
	}
	printArtifact("EXTENSION E11 — ping-pong vs pong-only (henri comp@0/comm@0)", func() string {
		out := "n,comm_uni,comm_bidir,comp_uni,comp_bidir\n"
		for i := range uni.Points {
			u, bb := uni.Points[i], bi.Points[i]
			out += fmt.Sprintf("%d,%.2f,%.2f,%.2f,%.2f\n", u.N, u.CommPar, bb.CommPar, u.CompPar, bb.CompPar)
		}
		return out
	})
}

// BenchmarkExtensionCopyKernel (E11): the copy kernel (§VI) demands more
// per-core bandwidth, moving the contention knee to fewer cores.
func BenchmarkExtensionCopyKernel(b *testing.B) {
	plat, err := topology.ByName("henri")
	if err != nil {
		b.Fatal(err)
	}
	var memset, copied *Curve
	for i := 0; i < b.N; i++ {
		mr, err := bench.NewRunner(bench.Config{Platform: plat, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		cr, err := bench.NewRunner(bench.Config{Platform: plat, Seed: 1, Kernel: kernels.New(kernels.Copy)})
		if err != nil {
			b.Fatal(err)
		}
		if memset, err = mr.RunPlacement(Placement{Comp: 0, Comm: 0}); err != nil {
			b.Fatal(err)
		}
		if copied, err = cr.RunPlacement(Placement{Comp: 0, Comm: 0}); err != nil {
			b.Fatal(err)
		}
	}
	printArtifact("EXTENSION E11 — copy kernel vs nt-memset (henri comp@0/comm@0)", func() string {
		out := "n,comm_memset,comm_copy\n"
		for i := range memset.Points {
			out += fmt.Sprintf("%d,%.2f,%.2f\n", memset.Points[i].N, memset.Points[i].CommPar, copied.Points[i].CommPar)
		}
		return out
	})
}

// BenchmarkExtensionCache (E12): a cache-friendly kernel loses memory
// demand to the LLC; contention fades as the working set shrinks.
func BenchmarkExtensionCache(b *testing.B) {
	plat, err := topology.ByName("henri")
	if err != nil {
		b.Fatal(err)
	}
	prof, err := memsys.ProfileFor("henri")
	if err != nil {
		b.Fatal(err)
	}
	sys, err := memsys.New(plat, prof)
	if err != nil {
		b.Fatal(err)
	}
	llc := cache.LLCFor("henri")
	load := kernels.New(kernels.Load)
	workingSets := []ByteSize{512 * KiB, 2 * MiB, 8 * MiB, 64 * MiB}
	type row struct {
		ws         ByteSize
		comm, comp float64
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, ws := range workingSets {
			a := kernels.Assignment{Kernel: load, Cores: plat.CoresOfSocket(0), Node: 0}
			streams, err := a.Streams(sys, 0)
			if err != nil {
				b.Fatal(err)
			}
			streams = llc.FilterStreams(streams, load, ws)
			streams = append(streams, memsys.Stream{ID: 1 << 20, Kind: memsys.KindComm, Node: 0})
			alloc, err := sys.Solve(streams)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, row{ws: ws, comm: alloc.CommTotal, comp: alloc.ComputeTotal})
		}
	}
	printArtifact("EXTENSION E12 — LLC filtering (henri, load kernel, 18 cores + comm)", func() string {
		out := "working_set,comm_GBs,comp_mem_GBs\n"
		for _, r := range rows {
			out += fmt.Sprintf("%s,%.2f,%.2f\n", r.ws, r.comm, r.comp)
		}
		return out
	})
}

// BenchmarkExtensionMixedSockets (E13): computing cores drawn from both
// sockets hitting one NUMA node — the §II-B configuration the paper's
// model excludes. The sweep shows where the pure-local model stops
// applying.
func BenchmarkExtensionMixedSockets(b *testing.B) {
	plat, err := topology.ByName("henri")
	if err != nil {
		b.Fatal(err)
	}
	var single, mixed *Curve
	for i := 0; i < b.N; i++ {
		runner, err := bench.NewRunner(bench.Config{Platform: plat, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if single, err = runner.RunPlacement(Placement{Comp: 0, Comm: 0}); err != nil {
			b.Fatal(err)
		}
		if mixed, err = runner.RunMixedPlacement(Placement{Comp: 0, Comm: 0}); err != nil {
			b.Fatal(err)
		}
	}
	printArtifact("EXTENSION E13 — mixed-socket computing (henri, comp@0/comm@0)", func() string {
		out := "n,comp_alone_single_socket,comp_alone_mixed,comm_par_mixed\n"
		for i := range mixed.Points {
			m := mixed.Points[i]
			s := ""
			if i < len(single.Points) {
				s = fmt.Sprintf("%.2f", single.Points[i].CompAlone)
			}
			out += fmt.Sprintf("%d,%s,%.2f,%.2f\n", m.N, s, m.CompAlone, m.CommPar)
		}
		return out
	})
}

// BenchmarkExtensionMessageSizes (E14): ping-pong bandwidth vs message
// size over the DES + MPI substrate — locating where the model's
// large-message bandwidth assumption becomes valid.
func BenchmarkExtensionMessageSizes(b *testing.B) {
	plat, err := topology.ByName("henri")
	if err != nil {
		b.Fatal(err)
	}
	var pts []netbench.Point
	for i := 0; i < b.N; i++ {
		pts, err = netbench.PingPong(netbench.Config{Platform: plat, Node: 0})
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact("EXTENSION E14 — ping-pong message-size sweep (henri, node 0)", func() string {
		out := "size,half_rtt_us,bandwidth_GBs\n"
		for _, p := range pts {
			out += fmt.Sprintf("%s,%.2f,%.2f\n", p.Size, p.HalfRTT*1e6, p.Bandwidth)
		}
		return out
	})
}

// BenchmarkSolver measures the memory-system solver alone: the hot path of
// every experiment (full-socket contended solve on henri).
func BenchmarkSolver(b *testing.B) {
	plat, err := topology.ByName("henri")
	if err != nil {
		b.Fatal(err)
	}
	prof, err := memsys.ProfileFor("henri")
	if err != nil {
		b.Fatal(err)
	}
	sys, err := memsys.New(plat, prof)
	if err != nil {
		b.Fatal(err)
	}
	a := kernels.Assignment{Kernel: kernels.New(kernels.NTMemset), Cores: plat.CoresOfSocket(0), Node: 0}
	streams, err := a.Streams(sys, 0)
	if err != nil {
		b.Fatal(err)
	}
	streams = append(streams, memsys.Stream{ID: 1 << 20, Kind: memsys.KindComm, Node: 0})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Solve(streams); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCalibration measures the §IV-A2 pipeline (two sample sweeps +
// parameter extraction) on henri.
func BenchmarkCalibration(b *testing.B) {
	plat, err := topology.ByName("henri")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := CalibrateConfig(BenchConfig{Platform: plat, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredict measures a single model prediction (the API a runtime
// system would call in its placement loop).
func BenchmarkPredict(b *testing.B) {
	m, err := Calibrate("henri", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(1+i%18, Placement{Comp: 0, Comm: NodeID(i % 2)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterHaloExchange measures the DES + MPI substrate: a two-
// machine halo exchange with overlap.
func BenchmarkClusterHaloExchange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cluster, err := NewCluster("henri", 2)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cluster.Run(1, func(ctx *RankCtx) {
			peer := 1 - ctx.Rank()
			req, err := ctx.Irecv(peer, 1, 8*MiB, 0)
			if err != nil {
				b.Error(err)
				return
			}
			if err := ctx.Send(peer, 1, 8*MiB, 0, nil); err != nil {
				b.Error(err)
				return
			}
			if _, err := ctx.Wait(req); err != nil {
				b.Error(err)
			}
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSensitivitySeeds (E15): calibration repeatability across noise
// seeds — the quantitative version of §IV-C's "higher prediction errors
// come most often from unstable input data".
func BenchmarkSensitivitySeeds(b *testing.B) {
	plat, err := topology.ByName("henri")
	if err != nil {
		b.Fatal(err)
	}
	var study *sensitivity.SeedStudy
	for i := 0; i < b.N; i++ {
		study, err = sensitivity.AcrossSeeds(bench.Config{Platform: plat}, []uint64{1, 2, 3, 4, 5})
		if err != nil {
			b.Fatal(err)
		}
	}
	mean, max := study.ErrorSpread()
	b.ReportMetric(max, "%err-max")
	_ = mean
	printArtifact("SENSITIVITY E15 — calibration stability (henri, 5 seeds)", func() string {
		return sensitivity.SpreadTable("henri", study.ParamSpread(false)).String()
	})
}

// BenchmarkSensitivityNoise (E15): prediction error vs measurement-noise
// amplification.
func BenchmarkSensitivityNoise(b *testing.B) {
	plat, err := topology.ByName("henri")
	if err != nil {
		b.Fatal(err)
	}
	var pts []sensitivity.NoisePoint
	for i := 0; i < b.N; i++ {
		pts, err = sensitivity.AcrossNoise(bench.Config{Platform: plat, Seed: 1}, []float64{0, 0.5, 1, 2, 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact("SENSITIVITY E15 — error vs noise level (henri)", func() string {
		return sensitivity.NoiseTable("henri", pts).String()
	})
}

// BenchmarkApplicationStencil (E16): the §VI use case end to end — the
// halo-exchange solver under three configurations, with the model-advised
// one winning.
func BenchmarkApplicationStencil(b *testing.B) {
	plat, err := topology.ByName("henri")
	if err != nil {
		b.Fatal(err)
	}
	m, err := Calibrate("henri", 1)
	if err != nil {
		b.Fatal(err)
	}
	base := StencilConfig{
		Machines:    2,
		Iterations:  2,
		DomainBytes: 2 * GiB,
		HaloBytes:   32 * MiB,
		Schedule:    StencilOverlap,
	}
	runOne := func(cfg StencilConfig) StencilResult {
		cluster, err := NewCluster("henri", base.Machines)
		if err != nil {
			b.Fatal(err)
		}
		res, err := RunStencil(cluster, cfg)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	var seq, naive, advised StencilResult
	var advice StencilAdvice
	for i := 0; i < b.N; i++ {
		seqCfg := NaiveStencilConfig(plat, base)
		seqCfg.Schedule = StencilSequential
		seq = runOne(seqCfg)
		naive = runOne(NaiveStencilConfig(plat, base))
		advice, err = AdviseStencil(m, plat, base)
		if err != nil {
			b.Fatal(err)
		}
		cfg := base
		cfg.Cores = advice.Cores
		cfg.CompNode = advice.Placement.Comp
		cfg.CommNode = advice.Placement.Comm
		advised = runOne(cfg)
	}
	b.ReportMetric(seq.PerIteration/advised.PerIteration, "speedup")
	printArtifact("APPLICATION E16 — stencil solver (henri, 2 machines)", func() string {
		return fmt.Sprintf(
			"configuration                 ms/iter   speedup\nsequential naive             %8.3f   1.00\noverlap naive                %8.3f   %.2f\noverlap advised (%2d cores)   %8.3f   %.2f\nadvice: %v\n",
			seq.PerIteration*1e3,
			naive.PerIteration*1e3, seq.PerIteration/naive.PerIteration,
			advice.Cores, advised.PerIteration*1e3, seq.PerIteration/advised.PerIteration,
			advice.Placement)
	})
}
