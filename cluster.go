package memcontention

import (
	"context"
	"fmt"

	"memcontention/internal/engine"
	"memcontention/internal/faults"
	"memcontention/internal/hwloc"
	"memcontention/internal/kernels"
	"memcontention/internal/mpi"
	"memcontention/internal/obs"
	"memcontention/internal/prof"
	"memcontention/internal/simnet"
	"memcontention/internal/units"
)

// Cluster-facing re-exports.
type (
	// RankCtx is the per-rank handle of the simulated MPI.
	RankCtx = mpi.Ctx
	// MPIStatus describes a completed receive.
	MPIStatus = mpi.Status
	// MPIRequest is a non-blocking operation handle.
	MPIRequest = mpi.Request
	// Machine is one simulated cluster node.
	Machine = simnet.Machine
	// Buffer is a NUMA-bound memory region.
	Buffer = hwloc.Buffer
	// Assignment places a kernel on cores and a NUMA node.
	Assignment = kernels.Assignment
	// ByteSize is an amount of data.
	ByteSize = units.ByteSize
	// Bandwidth is a data rate in GB/s.
	Bandwidth = units.Bandwidth
	// CPUSet is a set of cores.
	CPUSet = hwloc.CPUSet
	// FaultPlan is a declarative, seeded fault scenario for a cluster
	// (see docs/resilience.md for the JSON schema).
	FaultPlan = faults.Plan
	// FaultEvent is one timed fault of a FaultPlan.
	FaultEvent = faults.Event
	// Resilience configures MPI timeouts and retry/backoff.
	Resilience = mpi.Resilience
	// MPIOpError is a structured MPI failure (rank, operation,
	// simulated time, cause); extract it with errors.As.
	MPIOpError = mpi.OpError
	// DeadlockError reports a deadlocked simulation with each stuck
	// process's wait reason and time; extract it with errors.As.
	DeadlockError = engine.DeadlockError
	// BudgetError reports a watchdog trip (simulated-time or
	// event-count budget exceeded); extract it with errors.As.
	BudgetError = engine.BudgetError
	// CanceledError reports a run stopped cleanly by external
	// cancellation (WithContext); it unwraps to the context cause, so
	// errors.Is(err, context.Canceled) identifies a graceful shutdown.
	CanceledError = engine.CanceledError
	// WaitState is one blocked process's diagnosis.
	WaitState = engine.WaitState
	// NodeDownError reports an operation that touched a crashed machine;
	// extract it with errors.As.
	NodeDownError = simnet.DownError
)

// Sentinel causes carried by MPIOpError; test with errors.Is.
var (
	// ErrMPITimeout marks an operation that exceeded Resilience.OpTimeout.
	ErrMPITimeout = mpi.ErrTimeout
	// ErrMessageDropped marks a message lost by fault injection after all
	// retries were spent.
	ErrMessageDropped = simnet.ErrMessageDropped
)

// LoadFaultPlan reads and validates a fault plan file (JSON).
func LoadFaultPlan(path string) (*FaultPlan, error) { return faults.Load(path) }

// ParseFaultPlan decodes and validates a fault plan from JSON bytes.
func ParseFaultPlan(data []byte) (*FaultPlan, error) { return faults.Parse(data) }

// ParseByteSize parses sizes such as "64MiB" or "1GiB".
func ParseByteSize(s string) (ByteSize, error) { return units.ParseByteSize(s) }

// ParseBandwidth parses rates such as "12.5 GB/s".
func ParseBandwidth(s string) (Bandwidth, error) { return units.ParseBandwidth(s) }

// Size constants re-exported for example code.
const (
	KiB = units.KiB
	MiB = units.MiB
	GiB = units.GiB
)

// MPI wildcards.
const (
	AnySource = mpi.AnySource
	AnyTag    = mpi.AnyTag
)

// Cluster is a simulated set of identical machines linked by a fabric,
// ready to run MPI programs under the deterministic simulation engine.
type Cluster struct {
	sim      *engine.Sim
	fabric   *simnet.Fabric
	machines []*simnet.Machine
	reg      *obs.Registry
	observer engine.FlowObserver
	profiler *prof.Profiler
	plan     *faults.Plan
	res      mpi.Resilience
	ran      bool
}

// NewCluster builds n identical machines of the named built-in platform.
func NewCluster(platform string, n int) (*Cluster, error) {
	plat, err := PlatformByName(platform)
	if err != nil {
		return nil, err
	}
	prof, err := ProfileFor(platform)
	if err != nil {
		return nil, err
	}
	return NewCustomCluster(plat, prof, n)
}

// NewCustomCluster builds a cluster from an explicit platform and
// hardware profile.
func NewCustomCluster(plat *Platform, prof *HardwareProfile, n int) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("memcontention: cluster needs at least one machine, got %d", n)
	}
	sim := engine.NewSim()
	wire := simnet.WireRateFor(plat.NIC.Tech, plat.NIC.PCIeGen)
	fabric, err := simnet.NewFabric(sim, wire, 1.5e-6)
	if err != nil {
		return nil, err
	}
	c := &Cluster{sim: sim, fabric: fabric}
	for i := 0; i < n; i++ {
		m, err := simnet.NewMachine(sim, i, plat, prof)
		if err != nil {
			return nil, err
		}
		if err := fabric.Attach(m); err != nil {
			return nil, err
		}
		c.machines = append(c.machines, m)
	}
	return c, nil
}

// WithRegistry attaches a telemetry registry to the cluster: the
// simulation engine and every machine's flow manager publish their
// instruments into it, and Run records cluster-level metrics. A nil
// registry (the default) keeps all instrumentation disabled at zero
// cost. It returns the cluster for chaining.
func (c *Cluster) WithRegistry(r *obs.Registry) *Cluster {
	c.reg = r
	c.sim.SetRegistry(r)
	for _, m := range c.machines {
		m.Flows.SetRegistry(r)
	}
	return c
}

// Registry returns the attached telemetry registry (nil when none).
func (c *Cluster) Registry() *obs.Registry { return c.reg }

// WithObserver installs a flow observer (for example a trace.Recorder)
// on every machine's flow manager. It returns the cluster for chaining.
func (c *Cluster) WithObserver(o engine.FlowObserver) *Cluster {
	c.observer = o
	for _, m := range c.machines {
		m.Flows.SetObserver(o)
	}
	return c
}

// WithProfiler attaches a contention attribution profiler: it becomes the
// flow observer of every machine and the causal span recorder of every
// simulation layer (memory flows, fabric transfers, MPI operations and
// ranks), producing one timeline that interleaves flow events with the
// span forest. A nil profiler (the default) keeps every layer's span hook
// nil, preserving the allocation-free unprofiled hot path. It returns the
// cluster for chaining.
func (c *Cluster) WithProfiler(p *prof.Profiler) *Cluster {
	c.profiler = p
	if p == nil {
		return c
	}
	c.WithObserver(p)
	for _, m := range c.machines {
		m.Flows.SetSpanRecorder(p)
	}
	c.fabric.SetSpanRecorder(p)
	return c
}

// Profiler returns the attached profiler (nil when none).
func (c *Cluster) Profiler() *prof.Profiler { return c.profiler }

// WithFaults arms a fault plan on the cluster: the plan's timed events
// are injected during Run, deterministically (same seed + same plan =
// bit-identical runs). A nil plan — the default — installs no hooks and
// costs nothing on the hot path. Fault metrics land in the registry
// attached with WithRegistry, and fault events in the trace recorder
// attached with WithObserver. It returns the cluster for chaining.
func (c *Cluster) WithFaults(plan *FaultPlan) *Cluster {
	c.plan = plan
	return c
}

// WithResilience installs the MPI resilience policy (per-operation
// timeouts, drop retry with exponential backoff). The zero value — the
// default — keeps the historical semantics: no timeouts, no retries.
// It returns the cluster for chaining.
func (c *Cluster) WithResilience(r Resilience) *Cluster {
	c.res = r
	return c
}

// WithContext installs an external cancellation source: Run returns a
// *CanceledError as soon as ctx is done, checked between simulation
// events so state stays consistent and partial telemetry can still be
// flushed. A nil or background context — the default — keeps the event
// loop entirely check-free. It returns the cluster for chaining.
func (c *Cluster) WithContext(ctx context.Context) *Cluster {
	c.sim.SetContext(ctx)
	return c
}

// WithWatchdog arms the cluster watchdog: Run fails with a *BudgetError
// carrying a per-rank wait-state diagnosis as soon as the job exceeds
// maxSimSeconds of simulated time or maxEvents scheduler events (zero
// disables either budget). It returns the cluster for chaining.
func (c *Cluster) WithWatchdog(maxSimSeconds float64, maxEvents int64) *Cluster {
	c.sim.SetBudget(maxSimSeconds, maxEvents)
	return c
}

// Machines returns the cluster's nodes.
func (c *Cluster) Machines() []*simnet.Machine { return c.machines }

// Platform returns the machines' platform description.
func (c *Cluster) Platform() *Platform { return c.machines[0].Sys.Platform() }

// Run executes an MPI program with ranksPerMachine ranks on each machine
// and blocks until every rank returns. It returns the total simulated
// time and any simulation error (deadlock, panic in a rank).
func (c *Cluster) Run(ranksPerMachine int, main func(*RankCtx)) (simSeconds float64, err error) {
	if c.ran {
		return 0, fmt.Errorf("memcontention: a Cluster runs one job; create a new cluster for the next run")
	}
	c.ran = true
	world, err := mpi.NewWorld(c.sim, c.fabric, c.machines, ranksPerMachine)
	if err != nil {
		return 0, err
	}
	if err := world.SetResilience(c.res); err != nil {
		return 0, err
	}
	if c.profiler != nil {
		world.SetSpanRecorder(c.profiler)
	}
	if c.plan != nil {
		inj, err := faults.New(c.plan)
		if err != nil {
			return 0, err
		}
		marker, _ := c.observer.(faults.Marker)
		if err := inj.Arm(c.sim, c.fabric, c.machines, c.reg, marker); err != nil {
			return 0, err
		}
	}
	world.Launch(main)
	runErr := c.sim.Run()
	if c.reg != nil {
		c.reg.Counter("memcontention_cluster_runs_total", "MPI jobs executed on simulated clusters.", nil).Inc()
		c.reg.Gauge("memcontention_cluster_ranks", "MPI ranks of the last job.", nil).Set(float64(ranksPerMachine * len(c.machines)))
		c.reg.Gauge("memcontention_cluster_sim_seconds", "Simulated duration of the last job.", nil).Set(c.sim.Now())
	}
	return c.sim.Now(), runErr
}
