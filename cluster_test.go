package memcontention

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

// newTestCluster builds a small two-machine cluster or fails the test.
func newTestCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := NewCluster("henri", 2)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRunRankPanic(t *testing.T) {
	c := newTestCluster(t)
	_, err := c.Run(1, func(ctx *RankCtx) {
		if ctx.Rank() == 0 {
			panic("boom in rank 0")
		}
	})
	if err == nil || !strings.Contains(err.Error(), "boom in rank 0") {
		t.Fatalf("panic not surfaced: %v", err)
	}
}

func TestRunTwiceRejected(t *testing.T) {
	c := newTestCluster(t)
	if _, err := c.Run(1, func(ctx *RankCtx) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(1, func(ctx *RankCtx) {}); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestRunDeadlockDiagnosis(t *testing.T) {
	c := newTestCluster(t)
	_, err := c.Run(1, func(ctx *RankCtx) {
		if ctx.Rank() == 0 {
			// Nobody ever sends: a guaranteed deadlock.
			_, _ = ctx.Recv(1, 9, 1*MiB, 0)
		}
	})
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("want *DeadlockError, got %v", err)
	}
	if len(dl.Stuck) != 1 {
		t.Fatalf("stuck = %v, want exactly the blocked rank", dl.Stuck)
	}
	ws := dl.Stuck[0]
	if !strings.Contains(ws.Reason, "Recv(src=1, tag=9)") {
		t.Errorf("wait reason %q does not name the blocked operation", ws.Reason)
	}
	if !strings.Contains(err.Error(), "Recv(src=1, tag=9)") {
		t.Errorf("error text %q lacks the operation diagnosis", err)
	}
}

func TestWatchdogSimTimeBudget(t *testing.T) {
	c := newTestCluster(t).WithWatchdog(0.5, 0)
	_, err := c.Run(1, func(ctx *RankCtx) {
		for i := 0; i < 1000; i++ {
			ctx.Sleep(0.1)
		}
	})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError, got %v", err)
	}
	if be.Kind != "sim-time" {
		t.Errorf("kind = %q, want sim-time", be.Kind)
	}
	if be.At > 0.5 {
		t.Errorf("tripped at t=%v, after the budget", be.At)
	}
}

func TestWatchdogEventBudget(t *testing.T) {
	c := newTestCluster(t).WithWatchdog(0, 10)
	_, err := c.Run(1, func(ctx *RankCtx) {
		for i := 0; i < 1000; i++ {
			ctx.Sleep(1e-6)
		}
	})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError, got %v", err)
	}
	if be.Kind != "event-count" {
		t.Errorf("kind = %q, want event-count", be.Kind)
	}
	if be.Events < 10 {
		t.Errorf("events = %d, want >= 10", be.Events)
	}
}

func TestRecvTimeout(t *testing.T) {
	c := newTestCluster(t).WithResilience(Resilience{OpTimeout: 0.25})
	var opErr error
	_, err := c.Run(1, func(ctx *RankCtx) {
		if ctx.Rank() == 0 {
			_, opErr = ctx.Recv(1, 3, 1*MiB, 0)
		}
	})
	if err != nil {
		t.Fatalf("run failed outright: %v", err)
	}
	var oe *MPIOpError
	if !errors.As(opErr, &oe) {
		t.Fatalf("want *MPIOpError, got %v", opErr)
	}
	if !errors.Is(opErr, ErrMPITimeout) {
		t.Errorf("cause = %v, want ErrMPITimeout", oe.Err)
	}
	if oe.Rank != 0 {
		t.Errorf("rank = %d, want 0", oe.Rank)
	}
	if oe.Time < 0.25 {
		t.Errorf("failed at t=%v, before the timeout", oe.Time)
	}
	if !strings.Contains(oe.Op, "Recv(src=1, tag=3)") {
		t.Errorf("op = %q, want the receive named", oe.Op)
	}
}

// dropPlan loses every message in [0, until); seeded deterministically.
func dropPlan(until float64) *FaultPlan {
	return &FaultPlan{Seed: 11, Events: []FaultEvent{
		{At: 0, Kind: "msg-drop", Probability: 1, Duration: until},
	}}
}

func TestDropRetrySucceeds(t *testing.T) {
	// The drop window closes at 1 ms; with retries backing off past it,
	// the transfer must eventually go through and the job complete.
	c := newTestCluster(t).
		WithFaults(dropPlan(0.001)).
		WithResilience(Resilience{MaxRetries: 8, RetryBackoff: 0.0005})
	var sendErr, recvErr error
	_, err := c.Run(1, func(ctx *RankCtx) {
		switch ctx.Rank() {
		case 0:
			sendErr = ctx.Send(1, 1, 4*MiB, 0, nil)
		case 1:
			_, recvErr = ctx.Recv(0, 1, 4*MiB, 0)
		}
	})
	if err != nil || sendErr != nil || recvErr != nil {
		t.Fatalf("retries did not recover the drop: run=%v send=%v recv=%v", err, sendErr, recvErr)
	}
}

func TestDropRetriesExhausted(t *testing.T) {
	// The drop window never closes; retries must give up with a
	// structured error naming rank, operation and simulated time.
	c := newTestCluster(t).
		WithFaults(dropPlan(0)). // duration 0: permanent
		WithResilience(Resilience{MaxRetries: 2, RetryBackoff: 0.0001})
	var sendErr, recvErr error
	_, err := c.Run(1, func(ctx *RankCtx) {
		switch ctx.Rank() {
		case 0:
			sendErr = ctx.Send(1, 1, 4*MiB, 0, nil)
		case 1:
			_, recvErr = ctx.Recv(0, 1, 4*MiB, 0)
		}
	})
	if err != nil {
		t.Fatalf("run failed outright: %v", err)
	}
	for name, opErr := range map[string]error{"send": sendErr, "recv": recvErr} {
		var oe *MPIOpError
		if !errors.As(opErr, &oe) {
			t.Fatalf("%s: want *MPIOpError, got %v", name, opErr)
		}
		if !errors.Is(opErr, ErrMessageDropped) {
			t.Errorf("%s: cause = %v, want ErrMessageDropped", name, oe.Err)
		}
		if oe.Time <= 0 {
			t.Errorf("%s: no simulated failure time", name)
		}
	}
}

func TestNodeCrash(t *testing.T) {
	plan := &FaultPlan{Seed: 3, Events: []FaultEvent{
		{At: 0, Kind: "node-crash", Machine: 1},
	}}
	c := newTestCluster(t).
		WithFaults(plan).
		WithResilience(Resilience{OpTimeout: 0.5})
	var sendErr error
	var recvErr error
	_, err := c.Run(1, func(ctx *RankCtx) {
		switch ctx.Rank() {
		case 0:
			_, recvErr = ctx.Recv(1, 1, 1*MiB, 0)
		case 1:
			sendErr = ctx.Send(0, 1, 1*MiB, 0, nil)
		}
	})
	if err != nil {
		t.Fatalf("run failed outright: %v", err)
	}
	// The crashed rank fails fast with the crash diagnosis...
	var down *NodeDownError
	if !errors.As(sendErr, &down) {
		t.Fatalf("send on crashed machine: want NodeDownError cause, got %v", sendErr)
	}
	if down.Machine != 1 {
		t.Errorf("down machine = %d, want 1", down.Machine)
	}
	// ...and the healthy peer times out instead of hanging forever.
	if !errors.Is(recvErr, ErrMPITimeout) {
		t.Errorf("recv from crashed machine: want timeout, got %v", recvErr)
	}
}

func TestWithFaultsUnknownMachine(t *testing.T) {
	plan := &FaultPlan{Events: []FaultEvent{
		{At: 0, Kind: "node-crash", Machine: 7},
	}}
	c := newTestCluster(t).WithFaults(plan)
	if _, err := c.Run(1, func(ctx *RankCtx) {}); err == nil {
		t.Fatal("plan targeting machine 7 accepted on a 2-machine cluster")
	}
}

// runFaultedJob runs a fixed overlap job under a multi-fault plan with
// full telemetry and returns the rendered Prometheus and JSONL exports.
func runFaultedJob(t *testing.T, plan *FaultPlan) (string, string) {
	t.Helper()
	reg := NewRegistry()
	rec := NewTraceRecorder()
	c := newTestCluster(t).WithRegistry(reg)
	c.WithObserver(rec).
		WithFaults(plan).
		WithResilience(Resilience{OpTimeout: 2, MaxRetries: 4, RetryBackoff: 0.0005}).
		WithWatchdog(10, 0)
	_, err := c.Run(1, func(ctx *RankCtx) {
		switch ctx.Rank() {
		case 0:
			req, rerr := ctx.Irecv(1, 1, 8*MiB, 0)
			if rerr != nil {
				t.Error(rerr)
				return
			}
			work := Assignment{
				Kernel: DefaultKernel(),
				Cores:  ctx.Machine().Topo.SocketSet(0).Take(2),
				Node:   0,
			}
			if _, cerr := ctx.Compute(work, 32*MiB); cerr != nil {
				t.Error(cerr)
			}
			if _, werr := ctx.Wait(req); werr != nil {
				t.Error(werr)
			}
		case 1:
			if serr := ctx.Send(0, 1, 8*MiB, 0, nil); serr != nil {
				t.Error(serr)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var prom, jsonl bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	return prom.String(), jsonl.String()
}

func goldenPlan() *FaultPlan {
	return &FaultPlan{Seed: 99, Events: []FaultEvent{
		{At: 0.0001, Kind: "link-degrade", Factor: 0.5, Duration: 0.01},
		{At: 0.0002, Kind: "link-latency", Extra: 5e-6, Jitter: 0.2, Duration: 0.01},
		{At: 0.0003, Kind: "msg-delay", Extra: 1e-4, Probability: 0.5, Duration: 0.01},
		{At: 0.0004, Kind: "core-slowdown", Machine: 0, Factor: 0.5, Duration: 0.01},
	}}
}

// TestFaultInjectionDeterministic is the golden determinism guarantee:
// the same plan and seed produce byte-identical telemetry, twice over.
func TestFaultInjectionDeterministic(t *testing.T) {
	promA, jsonlA := runFaultedJob(t, goldenPlan())
	promB, jsonlB := runFaultedJob(t, goldenPlan())
	if promA != promB {
		t.Error("Prometheus exports differ across identical faulted runs")
	}
	if jsonlA != jsonlB {
		t.Error("JSONL traces differ across identical faulted runs")
	}
	if !strings.Contains(jsonlA, `"fault"`) {
		t.Error("trace carries no fault events")
	}
	if !strings.Contains(jsonlA, "fault-on: link-degrade") {
		t.Error("trace lacks the fault activation label")
	}
	if !strings.Contains(promA, "memcontention_faults_applied_total 4") {
		t.Error("fault metrics missing from the exposition")
	}
}

// TestNilPlanIsIdentity: attaching a nil plan must not change a single
// byte of the run's outputs relative to never calling WithFaults.
func TestNilPlanIsIdentity(t *testing.T) {
	run := func(withNilPlan bool) (string, string) {
		reg := NewRegistry()
		rec := NewTraceRecorder()
		c := newTestCluster(t).WithRegistry(reg)
		c.WithObserver(rec)
		if withNilPlan {
			c.WithFaults(nil)
		}
		_, err := c.Run(1, func(ctx *RankCtx) {
			switch ctx.Rank() {
			case 0:
				if serr := ctx.Send(1, 1, 8*MiB, 0, nil); serr != nil {
					t.Error(serr)
				}
			case 1:
				if _, rerr := ctx.Recv(0, 1, 8*MiB, 0); rerr != nil {
					t.Error(rerr)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		var prom, jsonl bytes.Buffer
		if err := reg.WritePrometheus(&prom); err != nil {
			t.Fatal(err)
		}
		if err := rec.WriteJSONL(&jsonl); err != nil {
			t.Fatal(err)
		}
		return prom.String(), jsonl.String()
	}
	promBare, jsonlBare := run(false)
	promNil, jsonlNil := run(true)
	if promBare != promNil {
		t.Error("nil plan changed the metrics export")
	}
	if jsonlBare != jsonlNil {
		t.Error("nil plan changed the trace")
	}
}

func TestWithContextCancelsRun(t *testing.T) {
	c, err := NewCluster("henri", 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c.WithContext(ctx)
	_, err = c.Run(1, func(r *RankCtx) {
		r.Barrier()
	})
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v does not unwrap to context.Canceled", err)
	}
}
