// Command membench runs the paper's benchmarking program (§IV-A1) on a
// simulated platform: for every number of computing cores it measures
// computations alone, communications alone, and both in parallel, for one
// or all data placements.
//
// Usage:
//
//	membench -platform henri                       # all placements, text
//	membench -platform henri -comp 0 -comm 1       # one placement
//	membench -platform dahu -kernel copy -csv      # CSV output
//	membench -platform pyxis -bidir                # ping-pong extension
package main

import (
	"flag"
	"fmt"
	"os"

	"memcontention"
	"memcontention/internal/bench"
	"memcontention/internal/export"
	"memcontention/internal/kernels"
	"memcontention/internal/memsys"
	"memcontention/internal/model"
	"memcontention/internal/obs"
	"memcontention/internal/topology"
	"memcontention/internal/units"
)

func main() {
	platform := flag.String("platform", "henri", "built-in platform name")
	platformFile := flag.String("platformfile", "", "load the platform from a JSON file instead")
	profileFile := flag.String("profilefile", "", "load the hardware profile from a JSON file (required with -platformfile for non-built-in machines)")
	comp := flag.Int("comp", -1, "computation data NUMA node (-1: all placements)")
	comm := flag.Int("comm", -1, "communication data NUMA node (-1: all placements)")
	kernelName := flag.String("kernel", "nt-memset", "kernel: nt-memset, copy, triad, load")
	msgSize := flag.String("msg", "64MiB", "message size")
	seed := flag.Uint64("seed", 1, "measurement noise seed")
	csvOut := flag.Bool("csv", false, "emit CSV instead of a text table")
	bidir := flag.Bool("bidir", false, "bidirectional communications (ping-pong extension)")
	var cli obs.CLI
	cli.Register(flag.CommandLine, false)
	flag.Parse()

	if err := run(*platform, *platformFile, *profileFile, *comp, *comm, *kernelName, *msgSize, *seed, *csvOut, *bidir, &cli); err != nil {
		fmt.Fprintln(os.Stderr, "membench:", err)
		os.Exit(1)
	}
}

func run(platform, platformFile, profileFile string, comp, comm int, kernelName, msgSize string, seed uint64, csvOut, bidir bool, cli *obs.CLI) error {
	if err := cli.Start(); err != nil {
		return err
	}
	var plat *topology.Platform
	var prof *memsys.Profile
	var err error
	if platformFile != "" {
		if plat, err = memcontention.LoadPlatformFile(platformFile); err != nil {
			return err
		}
	} else if plat, err = topology.ByName(platform); err != nil {
		return err
	}
	if profileFile != "" {
		if prof, err = memcontention.LoadProfileFile(profileFile, plat); err != nil {
			return err
		}
	}
	kern, err := kernelByName(kernelName)
	if err != nil {
		return err
	}
	size, err := units.ParseByteSize(msgSize)
	if err != nil {
		return err
	}
	reg := cli.NewRegistry()
	runner, err := bench.NewRunner(bench.Config{
		Platform:      plat,
		Profile:       prof,
		Kernel:        kern,
		MessageSize:   size,
		Seed:          seed,
		Bidirectional: bidir,
		Registry:      reg,
	})
	if err != nil {
		return err
	}

	var placements []model.Placement
	if comp >= 0 && comm >= 0 {
		placements = []model.Placement{{Comp: topology.NodeID(comp), Comm: topology.NodeID(comm)}}
	} else {
		placements = bench.AllPlacements(plat)
	}
	for _, pl := range placements {
		curve, err := runner.RunPlacement(pl)
		if err != nil {
			return err
		}
		t := curveTable(curve)
		if csvOut {
			if err := t.WriteCSV(os.Stdout); err != nil {
				return err
			}
			continue
		}
		if err := t.WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	man := obs.NewManifest("membench")
	man.Platform = plat.Name
	man.Kernel = kern.String()
	man.Seed = seed
	man.Args = os.Args[1:]
	man.Notes = map[string]string{"message_size": size.String()}
	return cli.Finish(reg, nil, man)
}

func kernelByName(name string) (kernels.Kernel, error) {
	for _, kind := range []kernels.Kind{kernels.NTMemset, kernels.Copy, kernels.Triad, kernels.Load} {
		if kind.String() == name {
			return kernels.New(kind), nil
		}
	}
	return kernels.Kernel{}, fmt.Errorf("unknown kernel %q", name)
}

func curveTable(c *bench.Curve) *export.Table {
	t := export.NewTable(
		fmt.Sprintf("%s — %v (kernel %s), bandwidths in GB/s", c.Platform, c.Placement, c.Kernel),
		"n", "comp alone", "comm alone", "comp par", "comm par", "total par",
	)
	for _, p := range c.Points {
		t.AddRow(fmt.Sprint(p.N),
			export.GBs(p.CompAlone), export.GBs(p.CommAlone),
			export.GBs(p.CompPar), export.GBs(p.CommPar), export.GBs(p.TotalPar()))
	}
	return t
}
