// Command membench runs the paper's benchmarking program (§IV-A1) on a
// simulated platform: for every number of computing cores it measures
// computations alone, communications alone, and both in parallel, for one
// or all data placements.
//
// Usage:
//
//	membench -platform henri                       # all placements, text
//	membench -platform henri -comp 0 -comm 1       # one placement
//	membench -platform dahu -kernel copy -csv      # CSV output
//	membench -platform pyxis -bidir                # ping-pong extension
//
// Robustness (see docs/resilience.md): with -checkpoint the campaign is
// crash-safe — each completed placement curve is journaled durably, a
// SIGINT/SIGTERM stops the run at a clean boundary (exit status 130), and
// re-running with the same flags resumes where it died with bit-identical
// results:
//
//	membench -platform dahu -checkpoint run.ckpt   # interruptible
//	membench -platform dahu -checkpoint run.ckpt -resume
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"memcontention"
	"memcontention/internal/bench"
	"memcontention/internal/campaign"
	"memcontention/internal/checkpoint"
	"memcontention/internal/export"
	"memcontention/internal/kernels"
	"memcontention/internal/memsys"
	"memcontention/internal/model"
	"memcontention/internal/obs"
	"memcontention/internal/topology"
	"memcontention/internal/units"
)

// options are membench's parsed command-line inputs.
type options struct {
	platform, platformFile, profileFile string
	comp, comm                          int
	kernelName, msgSize                 string
	seed                                uint64
	csvOut, bidir                       bool
}

func main() {
	var o options
	flag.StringVar(&o.platform, "platform", "henri", "built-in platform name")
	flag.StringVar(&o.platformFile, "platformfile", "", "load the platform from a JSON file instead")
	flag.StringVar(&o.profileFile, "profilefile", "", "load the hardware profile from a JSON file (required with -platformfile for non-built-in machines)")
	flag.IntVar(&o.comp, "comp", -1, "computation data NUMA node (-1: all placements)")
	flag.IntVar(&o.comm, "comm", -1, "communication data NUMA node (-1: all placements)")
	flag.StringVar(&o.kernelName, "kernel", "nt-memset", "kernel: nt-memset, copy, triad, load")
	flag.StringVar(&o.msgSize, "msg", "64MiB", "message size")
	flag.Uint64Var(&o.seed, "seed", 1, "measurement noise seed")
	flag.BoolVar(&o.csvOut, "csv", false, "emit CSV instead of a text table")
	flag.BoolVar(&o.bidir, "bidir", false, "bidirectional communications (ping-pong extension)")
	var cli obs.CLI
	cli.Register(flag.CommandLine, false)
	var ckpt checkpoint.CLI
	ckpt.Register(flag.CommandLine)
	flag.Parse()

	ctx, stop := checkpoint.SignalContext()
	err := run(ctx, os.Stdout, o, &ckpt, &cli)
	stop()
	if code := checkpoint.Report(os.Stderr, "membench", err); code != 0 {
		os.Exit(code)
	}
}

// run opens the journal and executes the campaign; split from main so
// tests can drive the full command logic with their own context, journal
// and output sink.
func run(ctx context.Context, w io.Writer, o options, ckpt *checkpoint.CLI, cli *obs.CLI) error {
	j, err := ckpt.Open()
	if err != nil {
		return err
	}
	defer j.Close()
	return benchCampaign(ctx, w, j, o, cli)
}

// benchCampaign is the testable command core: everything after flag
// parsing and journal opening.
func benchCampaign(ctx context.Context, w io.Writer, j *checkpoint.Journal, o options, cli *obs.CLI) error {
	if err := cli.Start(); err != nil {
		return err
	}
	var plat *topology.Platform
	var prof *memsys.Profile
	var err error
	if o.platformFile != "" {
		if plat, err = memcontention.LoadPlatformFile(o.platformFile); err != nil {
			return err
		}
	} else if plat, err = topology.ByName(o.platform); err != nil {
		return err
	}
	if o.profileFile != "" {
		if prof, err = memcontention.LoadProfileFile(o.profileFile, plat); err != nil {
			return err
		}
	}
	kern, err := kernelByName(o.kernelName)
	if err != nil {
		return err
	}
	size, err := units.ParseByteSize(o.msgSize)
	if err != nil {
		return err
	}
	reg := cli.NewRegistry()
	j.SetRegistry(reg)

	var placements []model.Placement
	if o.comp >= 0 && o.comm >= 0 {
		placements = []model.Placement{{Comp: topology.NodeID(o.comp), Comm: topology.NodeID(o.comm)}}
	} else {
		placements = bench.AllPlacements(plat)
	}
	curves, runErr := campaign.Curves(
		campaign.Config{Seed: o.seed, Context: ctx, Journal: j, Registry: reg},
		bench.Config{
			Platform:      plat,
			Profile:       prof,
			Kernel:        kern,
			MessageSize:   size,
			Seed:          o.seed,
			Bidirectional: o.bidir,
		},
		placements,
	)
	for _, curve := range curves {
		t := curveTable(curve)
		if o.csvOut {
			if err := t.WriteCSV(w); err != nil {
				return err
			}
			continue
		}
		if err := t.WriteText(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	man := obs.NewManifest("membench")
	man.Platform = plat.Name
	man.Kernel = kern.String()
	man.Seed = o.seed
	man.Args = os.Args[1:]
	man.Notes = map[string]string{"message_size": size.String()}
	if runErr != nil {
		// A graceful shutdown still flushes telemetry: the journal
		// already holds every completed curve.
		if checkpoint.IsCanceled(runErr) {
			_ = cli.Finish(reg, nil, man)
		}
		return runErr
	}
	return cli.Finish(reg, nil, man)
}

func kernelByName(name string) (kernels.Kernel, error) {
	for _, kind := range []kernels.Kind{kernels.NTMemset, kernels.Copy, kernels.Triad, kernels.Load} {
		if kind.String() == name {
			return kernels.New(kind), nil
		}
	}
	return kernels.Kernel{}, fmt.Errorf("unknown kernel %q", name)
}

func curveTable(c *bench.Curve) *export.Table {
	t := export.NewTable(
		fmt.Sprintf("%s — %v (kernel %s), bandwidths in GB/s", c.Platform, c.Placement, c.Kernel),
		"n", "comp alone", "comm alone", "comp par", "comm par", "total par",
	)
	for _, p := range c.Points {
		t.AddRow(fmt.Sprint(p.N),
			export.GBs(p.CompAlone), export.GBs(p.CommAlone),
			export.GBs(p.CompPar), export.GBs(p.CommPar), export.GBs(p.TotalPar()))
	}
	return t
}
