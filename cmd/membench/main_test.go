package main

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"memcontention/internal/checkpoint"
	"memcontention/internal/obs"
)

func testOptions() options {
	return options{
		platform:   "henri",
		comp:       -1,
		comm:       -1,
		kernelName: "nt-memset",
		msgSize:    "64MiB",
		seed:       1,
	}
}

// TestCancellationLeavesResumableJournal is the command-level graceful
// shutdown contract: canceling mid-campaign returns a cancellation error,
// leaves a valid journal behind, and a second invocation with the same
// flags resumes to completion with output identical to an uninterrupted
// run.
func TestCancellationLeavesResumableJournal(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "run.ckpt")
	j, err := checkpoint.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j.RecordHook = func(_ string, total int) {
		if total == 2 {
			cancel()
		}
	}
	var interrupted bytes.Buffer
	err = benchCampaign(ctx, &interrupted, j, testOptions(), &obs.CLI{})
	if !checkpoint.IsCanceled(err) {
		t.Fatalf("err = %v, want cancellation", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Second invocation through the real flag/journal plumbing.
	var resumed bytes.Buffer
	ckpt := &checkpoint.CLI{Path: jpath, Resume: true}
	if err := run(context.Background(), &resumed, testOptions(), ckpt, &obs.CLI{}); err != nil {
		t.Fatalf("resume failed: %v", err)
	}

	var fresh bytes.Buffer
	if err := run(context.Background(), &fresh, testOptions(), &checkpoint.CLI{}, &obs.CLI{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed.Bytes(), fresh.Bytes()) {
		t.Fatal("resumed output differs from an uninterrupted run")
	}
	if resumed.Len() == 0 {
		t.Fatal("resumed run produced no output")
	}
}

func TestResumeWithoutJournalFails(t *testing.T) {
	ckpt := &checkpoint.CLI{Path: filepath.Join(t.TempDir(), "missing.ckpt"), Resume: true}
	err := run(context.Background(), &bytes.Buffer{}, testOptions(), ckpt, &obs.CLI{})
	if err == nil {
		t.Fatal("-resume with a missing journal must fail")
	}
}

func TestSinglePlacementRuns(t *testing.T) {
	o := testOptions()
	o.comp, o.comm = 0, 1
	var out bytes.Buffer
	if err := run(context.Background(), &out, o, &checkpoint.CLI{}, &obs.CLI{}); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("no output")
	}
}
