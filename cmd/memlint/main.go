// Command memlint runs the repo's custom static-analysis suite (see
// internal/analysis and docs/static-analysis.md): determinism, map-range
// ordering, nil-hook safety, durable writes, error hygiene, and the
// whole-module concurrency checks (lockguard, goleak, ctxflow), all
// implemented on the standard library alone.
//
// Usage:
//
//	memlint [-C dir] [-checks list] [-json] [-o file] [packages...]
//
// Package arguments are module import paths; the "..." suffix matches a
// subtree and a bare "./..." (the default) means the whole module. The
// module is always loaded and analyzed in full — the arguments only
// filter which packages' findings are reported — so cross-package type
// information and the call graph behind the concurrency checks are
// complete either way.
//
// Exit codes (documented for CI):
//
//	0  no findings
//	1  findings were reported
//	2  usage, load or type-check error
//
// Every finding is printed to stdout as "file:line:col: [check] message",
// sorted and deduplicated, so output is byte-stable for identical trees.
// -json switches the report to a JSON array in the same order; -o writes
// the report durably (atomic rename) to a file instead of stdout.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"memcontention/internal/analysis"
	"memcontention/internal/atomicio"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("memlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "module root to analyze (directory containing go.mod)")
	checks := fs.String("checks", "", "comma-separated checks to run (default: all; see -list)")
	list := fs.Bool("list", false, "list available checks and exit")
	jsonOut := fs.Bool("json", false, "report findings as a JSON array (same order as text)")
	outPath := fs.String("o", "", "write the report to this file (durable atomic write) instead of stdout")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: memlint [-C dir] [-checks list] [-json] [-o file] [packages...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stdout, "%-12s %s\n", analysis.SuppressCheck, "malformed or stale //memlint:allow comments (always on)")
		return 0
	}
	if *checks != "" {
		analyzers = selectChecks(analyzers, *checks)
		if analyzers == nil {
			fmt.Fprintf(stderr, "memlint: unknown check in -checks %q (use -list)\n", *checks)
			return 2
		}
	}

	pkgs, err := analysis.LoadModule(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "memlint: %v\n", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(stderr, "memlint: module at %s contains no Go packages\n", *dir)
		return 2
	}
	modPath, err := analysis.ModulePath(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "memlint: %v\n", err)
		return 2
	}
	keep := pkgFilter(modPath, pkgs, fs.Args())
	if len(keep) == 0 {
		fmt.Fprintf(stderr, "memlint: no packages match %v\n", fs.Args())
		return 2
	}

	// Analyze the whole module — the call-graph checks need every caller
	// — then report only the findings inside the selected packages.
	diags := analysis.Run(pkgs, analyzers, analysis.DefaultConfig())
	keptDir := make(map[string]bool, len(keep))
	for _, p := range keep {
		keptDir[p.Dir] = true
	}
	var shown []analysis.Diagnostic
	for _, d := range diags {
		if keptDir[filepath.Dir(d.Path)] {
			shown = append(shown, d)
		}
	}

	abs, _ := filepath.Abs(*dir)
	var report bytes.Buffer
	if *jsonOut {
		if err := renderJSON(&report, shown, abs); err != nil {
			fmt.Fprintf(stderr, "memlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range shown {
			fmt.Fprintf(&report, "%s:%d:%d: [%s] %s\n", relPath(abs, d.Path), d.Line, d.Col, d.Check, d.Message)
		}
	}
	if *outPath != "" {
		err := atomicio.WriteStream(*outPath, 0o644, func(w io.Writer) error {
			_, werr := w.Write(report.Bytes())
			return werr
		})
		if err != nil {
			fmt.Fprintf(stderr, "memlint: %v\n", err)
			return 2
		}
	} else if _, err := stdout.Write(report.Bytes()); err != nil {
		return 2
	}
	if len(shown) > 0 {
		fmt.Fprintf(stderr, "memlint: %d finding(s) in %d package(s)\n", len(shown), len(keep))
		return 1
	}
	return 0
}

// jsonFinding is one diagnostic in -json output. Field order is the
// render order; paths are module-relative exactly as in text mode.
type jsonFinding struct {
	Path    string `json:"path"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// renderJSON writes the findings as an indented JSON array (a "[]" when
// empty), byte-stable because the input is already sorted and deduped.
func renderJSON(w io.Writer, diags []analysis.Diagnostic, base string) error {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, jsonFinding{
			Path:    relPath(base, d.Path),
			Line:    d.Line,
			Col:     d.Col,
			Check:   d.Check,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// relPath renders a diagnostic path relative to the module root (slash
// separated), leaving paths outside the root untouched.
func relPath(base, path string) string {
	if r, err := filepath.Rel(base, path); err == nil && !strings.HasPrefix(r, "..") {
		return filepath.ToSlash(r)
	}
	return path
}

// selectChecks filters analyzers by a comma-separated name list (nil on
// an unknown name).
func selectChecks(all []*analysis.Analyzer, list string) []*analysis.Analyzer {
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" || name == analysis.SuppressCheck {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil
		}
		out = append(out, a)
	}
	return out
}

// pkgFilter keeps the packages matching the argument patterns. Patterns
// are module-relative ("./...", "./internal/obs", "internal/obs/...") or
// full import paths; no arguments (or "./...") keeps everything.
func pkgFilter(modPath string, pkgs []*analysis.Package, args []string) []*analysis.Package {
	if len(args) == 0 {
		return pkgs
	}
	match := func(p *analysis.Package) bool {
		for _, raw := range args {
			pat := strings.TrimPrefix(raw, "./")
			if pat == "..." || pat == "." {
				return true
			}
			full := pat
			if !strings.HasPrefix(pat, modPath) {
				full = modPath + "/" + pat
			}
			if prefix, ok := strings.CutSuffix(full, "/..."); ok {
				if p.PkgPath == prefix || strings.HasPrefix(p.PkgPath, prefix+"/") {
					return true
				}
				continue
			}
			if p.PkgPath == full {
				return true
			}
		}
		return false
	}
	var keep []*analysis.Package
	for _, p := range pkgs {
		if match(p) {
			keep = append(keep, p)
		}
	}
	return keep
}
