// Command memlint runs the repo's custom static-analysis suite (see
// internal/analysis and docs/static-analysis.md): determinism, map-range
// ordering, nil-hook safety, durable writes and error hygiene, all
// implemented on the standard library alone.
//
// Usage:
//
//	memlint [-C dir] [-checks list] [packages...]
//
// Package arguments are module import paths; the "..." suffix matches a
// subtree and a bare "./..." (the default) means the whole module. The
// module is always loaded in full — the arguments only filter which
// packages' findings are reported — so cross-package type information is
// complete either way.
//
// Exit codes (documented for CI):
//
//	0  no findings
//	1  findings were reported
//	2  usage, load or type-check error
//
// Every finding is printed to stdout as "file:line:col: [check] message",
// sorted and deduplicated, so output is byte-stable for identical trees.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"memcontention/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("memlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "module root to analyze (directory containing go.mod)")
	checks := fs.String("checks", "", "comma-separated checks to run (default: all; see -list)")
	list := fs.Bool("list", false, "list available checks and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: memlint [-C dir] [-checks list] [packages...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stdout, "%-12s %s\n", analysis.SuppressCheck, "malformed or stale //memlint:allow comments (always on)")
		return 0
	}
	if *checks != "" {
		analyzers = selectChecks(analyzers, *checks)
		if analyzers == nil {
			fmt.Fprintf(stderr, "memlint: unknown check in -checks %q (use -list)\n", *checks)
			return 2
		}
	}

	pkgs, err := analysis.LoadModule(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "memlint: %v\n", err)
		return 2
	}
	modPath, err := analysis.ModulePath(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "memlint: %v\n", err)
		return 2
	}
	keep := pkgFilter(modPath, pkgs, fs.Args())
	if len(keep) == 0 {
		fmt.Fprintf(stderr, "memlint: no packages match %v\n", fs.Args())
		return 2
	}

	diags := analysis.Run(keep, analyzers, analysis.DefaultConfig())
	abs, _ := filepath.Abs(*dir)
	for _, d := range diags {
		rel := d.Path
		if r, err := filepath.Rel(abs, d.Path); err == nil && !strings.HasPrefix(r, "..") {
			rel = filepath.ToSlash(r)
		}
		fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", rel, d.Line, d.Col, d.Check, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "memlint: %d finding(s) in %d package(s)\n", len(diags), len(keep))
		return 1
	}
	return 0
}

// selectChecks filters analyzers by a comma-separated name list (nil on
// an unknown name).
func selectChecks(all []*analysis.Analyzer, list string) []*analysis.Analyzer {
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" || name == analysis.SuppressCheck {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil
		}
		out = append(out, a)
	}
	return out
}

// pkgFilter keeps the packages matching the argument patterns. Patterns
// are module-relative ("./...", "./internal/obs", "internal/obs/...") or
// full import paths; no arguments (or "./...") keeps everything.
func pkgFilter(modPath string, pkgs []*analysis.Package, args []string) []*analysis.Package {
	if len(args) == 0 {
		return pkgs
	}
	match := func(p *analysis.Package) bool {
		for _, raw := range args {
			pat := strings.TrimPrefix(raw, "./")
			if pat == "..." || pat == "." {
				return true
			}
			full := pat
			if !strings.HasPrefix(pat, modPath) {
				full = modPath + "/" + pat
			}
			if prefix, ok := strings.CutSuffix(full, "/..."); ok {
				if p.PkgPath == prefix || strings.HasPrefix(p.PkgPath, prefix+"/") {
					return true
				}
				continue
			}
			if p.PkgPath == full {
				return true
			}
		}
		return false
	}
	var keep []*analysis.Package
	for _, p := range pkgs {
		if match(p) {
			keep = append(keep, p)
		}
	}
	return keep
}
