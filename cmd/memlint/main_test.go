package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the JSON golden file under testdata")

const fixture = "testdata/module"

// runLint invokes the CLI entry point against the fixture module and
// returns (exit code, stdout, stderr).
func runLint(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(append([]string{"-C", fixture}, args...), &out, &errb)
	return code, out.String(), errb.String()
}

// TestExitCodeFindings pins exit code 1 and the rendered report for a
// module with violations: output is sorted, module-relative and
// byte-stable.
func TestExitCodeFindings(t *testing.T) {
	code, out, _ := runLint(t)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (findings)", code)
	}
	want := []string{
		"dirty/dirty.go:12:33: [determinism] time.Now is nondeterministic",
		"dirty/dirty.go:16:9: [durable] direct os.WriteFile can tear on crash",
		"dirty/dirty.go:21:2: [goleak] goroutine has no provable termination path",
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q:\n%s", w, out)
		}
	}
	if strings.Contains(out, "clean/clean.go") {
		t.Errorf("clean package reported:\n%s", out)
	}

	// Identical tree, identical report.
	code2, out2, _ := runLint(t)
	if code2 != code || out2 != out {
		t.Error("second run differs from first; memlint output must be deterministic")
	}
}

// TestExitCodeClean pins exit code 0 when the package filter selects only
// conforming code.
func TestExitCodeClean(t *testing.T) {
	code, out, errb := runLint(t, "./clean")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if out != "" {
		t.Errorf("clean run produced output:\n%s", out)
	}
}

// TestExitCodeUsage pins exit code 2 for usage and load errors.
func TestExitCodeUsage(t *testing.T) {
	if code, _, _ := runLint(t, "-checks", "nosuchcheck"); code != 2 {
		t.Errorf("unknown -checks: exit = %d, want 2", code)
	}
	if code, _, _ := runLint(t, "./nosuchpkg"); code != 2 {
		t.Errorf("unmatched package pattern: exit = %d, want 2", code)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-C", "testdata"}, &out, &errb); code != 2 {
		t.Errorf("non-module dir: exit = %d, want 2", code)
	}
}

// TestChecksFilter restricts the run to one analyzer.
func TestChecksFilter(t *testing.T) {
	code, out, _ := runLint(t, "-checks", "durable")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if strings.Contains(out, "[determinism]") {
		t.Errorf("-checks durable still ran determinism:\n%s", out)
	}
	if !strings.Contains(out, "[durable]") {
		t.Errorf("-checks durable reported nothing:\n%s", out)
	}
}

// TestJSONGolden pins the -json report byte-for-byte: same findings and
// ordering as text mode, rendered as an indented JSON array.
func TestJSONGolden(t *testing.T) {
	code, out, _ := runLint(t, "-json")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (findings)", code)
	}
	golden := filepath.Join("testdata", "findings.json")
	if *update {
		if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if out != string(want) {
		t.Errorf("-json output diverges from %s:\n--- got ---\n%s--- want ---\n%s", golden, out, want)
	}

	// Identical tree, identical bytes.
	_, out2, _ := runLint(t, "-json")
	if out2 != out {
		t.Error("second -json run differs from first")
	}
}

// TestJSONEmpty pins the empty report: a JSON array, not "null".
func TestJSONEmpty(t *testing.T) {
	code, out, _ := runLint(t, "-json", "./clean")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("empty -json report = %q, want []", out)
	}
}

// TestOutputFile proves -o writes the same bytes the report would print,
// through the durable write path, for both text and JSON modes.
func TestOutputFile(t *testing.T) {
	for _, mode := range [][]string{{}, {"-json"}} {
		_, want, _ := runLint(t, mode...)
		path := filepath.Join(t.TempDir(), "report.out")
		code, out, _ := runLint(t, append(append([]string{}, mode...), "-o", path)...)
		if code != 1 {
			t.Fatalf("mode %v: exit = %d, want 1", mode, code)
		}
		if out != "" {
			t.Errorf("mode %v: -o still wrote to stdout:\n%s", mode, out)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if string(got) != want {
			t.Errorf("mode %v: file report differs from stdout report:\n--- file ---\n%s--- stdout ---\n%s", mode, got, want)
		}
	}
}

// TestLoadFailureModes pins exit 2 plus a stderr diagnostic (and no
// panic) for the ways loading can fail: a module with a type error, an
// empty module, and a package pattern that only matches vendored code.
func TestLoadFailureModes(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-C", "testdata/typeerr"}, &out, &errb); code != 2 {
		t.Errorf("type-error module: exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "typecheck") {
		t.Errorf("type-error module: stderr missing typecheck diagnostic:\n%s", errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-C", "testdata/empty"}, &out, &errb); code != 2 {
		t.Errorf("empty module: exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "no Go packages") {
		t.Errorf("empty module: stderr missing diagnostic:\n%s", errb.String())
	}

	// vendor/ is skipped by the loader: the deliberately broken vendored
	// package must not fail the load, and naming it matches nothing.
	code, _, errs := runLint(t, "./vendor/...")
	if code != 2 {
		t.Errorf("vendored pattern: exit = %d, want 2", code)
	}
	if !strings.Contains(errs, "no packages match") {
		t.Errorf("vendored pattern: stderr missing diagnostic:\n%s", errs)
	}
}

// TestListChecks pins the -list inventory.
func TestListChecks(t *testing.T) {
	code, out, _ := runLint(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"determinism", "maprange", "nilhook", "durable", "errhygiene", "lockguard", "goleak", "ctxflow", "suppress"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list missing %q:\n%s", name, out)
		}
	}
}
