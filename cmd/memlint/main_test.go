package main

import (
	"bytes"
	"strings"
	"testing"
)

const fixture = "testdata/module"

// runLint invokes the CLI entry point against the fixture module and
// returns (exit code, stdout, stderr).
func runLint(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(append([]string{"-C", fixture}, args...), &out, &errb)
	return code, out.String(), errb.String()
}

// TestExitCodeFindings pins exit code 1 and the rendered report for a
// module with violations: output is sorted, module-relative and
// byte-stable.
func TestExitCodeFindings(t *testing.T) {
	code, out, _ := runLint(t)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (findings)", code)
	}
	want := []string{
		"dirty/dirty.go:11:33: [determinism] time.Now is nondeterministic",
		"dirty/dirty.go:15:9: [durable] direct os.WriteFile can tear on crash",
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q:\n%s", w, out)
		}
	}
	if strings.Contains(out, "clean/clean.go") {
		t.Errorf("clean package reported:\n%s", out)
	}

	// Identical tree, identical report.
	code2, out2, _ := runLint(t)
	if code2 != code || out2 != out {
		t.Error("second run differs from first; memlint output must be deterministic")
	}
}

// TestExitCodeClean pins exit code 0 when the package filter selects only
// conforming code.
func TestExitCodeClean(t *testing.T) {
	code, out, errb := runLint(t, "./clean")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout:\n%s\nstderr:\n%s", code, out, errb)
	}
	if out != "" {
		t.Errorf("clean run produced output:\n%s", out)
	}
}

// TestExitCodeUsage pins exit code 2 for usage and load errors.
func TestExitCodeUsage(t *testing.T) {
	if code, _, _ := runLint(t, "-checks", "nosuchcheck"); code != 2 {
		t.Errorf("unknown -checks: exit = %d, want 2", code)
	}
	if code, _, _ := runLint(t, "./nosuchpkg"); code != 2 {
		t.Errorf("unmatched package pattern: exit = %d, want 2", code)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-C", "testdata"}, &out, &errb); code != 2 {
		t.Errorf("non-module dir: exit = %d, want 2", code)
	}
}

// TestChecksFilter restricts the run to one analyzer.
func TestChecksFilter(t *testing.T) {
	code, out, _ := runLint(t, "-checks", "durable")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if strings.Contains(out, "[determinism]") {
		t.Errorf("-checks durable still ran determinism:\n%s", out)
	}
	if !strings.Contains(out, "[durable]") {
		t.Errorf("-checks durable reported nothing:\n%s", out)
	}
}

// TestListChecks pins the -list inventory.
func TestListChecks(t *testing.T) {
	code, out, _ := runLint(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"determinism", "maprange", "nilhook", "durable", "errhygiene", "suppress"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list missing %q:\n%s", name, out)
		}
	}
}
