module emptyfixture

go 1.22
