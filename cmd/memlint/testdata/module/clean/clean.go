// Package clean conforms to every invariant; the memlint CLI test
// expects zero findings here.
package clean

import "sort"

// Keys returns the map's keys in sorted order.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
