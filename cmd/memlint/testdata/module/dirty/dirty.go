// Package dirty violates the determinism, durable-write and goroutine
// invariants on purpose: the memlint CLI test expects exactly its
// findings.
package dirty

import (
	"os"
	"time"
)

// Stamp reads the wall clock.
func Stamp() time.Time { return time.Now() }

// Save writes an artifact directly.
func Save(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// Watch leaks a goroutine with no termination path.
func Watch(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}
