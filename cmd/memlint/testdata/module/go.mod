module lintfixture

go 1.22
