// Package thirdparty stands in for vendored third-party code: it is
// deliberately full of memlint violations AND a type error, proving the
// loader skips vendor/ entirely (it is neither linted nor type-checked).
package thirdparty

import "time"

func Now() time.Time { return time.Now() }

func Broken() int { return "vendored code is not even type-checked" }
