// Package bad does not type-check: memlint must exit 2 with a
// diagnostic on stderr, never panic.
package bad

func Broken() int {
	return "not an int"
}
