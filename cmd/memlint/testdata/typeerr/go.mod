module typeerrfixture

go 1.22
