// Command memmodel calibrates the contention model on a platform and
// prints parameters and predictions (§III + §IV-A2).
//
// Usage:
//
//	memmodel -platform henri                      # calibrate, print params
//	memmodel -platform henri -json                # params as JSON
//	memmodel -platform henri -n 12 -comp 0 -comm 1   # one prediction
//	memmodel -platform henri -predict             # predictions, all placements
package main

import (
	"flag"
	"fmt"
	"os"

	"memcontention/internal/bench"
	"memcontention/internal/calib"
	"memcontention/internal/export"
	"memcontention/internal/model"
	"memcontention/internal/topology"
)

func main() {
	platform := flag.String("platform", "henri", "built-in platform name")
	seed := flag.Uint64("seed", 1, "measurement noise seed")
	jsonOut := flag.Bool("json", false, "print the calibrated model as JSON")
	predict := flag.Bool("predict", false, "print prediction tables for all placements")
	n := flag.Int("n", 0, "predict for this number of computing cores")
	comp := flag.Int("comp", 0, "computation data NUMA node for -n")
	comm := flag.Int("comm", 0, "communication data NUMA node for -n")
	flag.Parse()

	if err := run(*platform, *seed, *jsonOut, *predict, *n, *comp, *comm); err != nil {
		fmt.Fprintln(os.Stderr, "memmodel:", err)
		os.Exit(1)
	}
}

func run(platform string, seed uint64, jsonOut, predict bool, n, comp, comm int) error {
	plat, err := topology.ByName(platform)
	if err != nil {
		return err
	}
	runner, err := bench.NewRunner(bench.Config{Platform: plat, Seed: seed})
	if err != nil {
		return err
	}
	m, err := calib.CalibrateRunner(runner)
	if err != nil {
		return err
	}

	switch {
	case jsonOut:
		return export.WriteJSON(os.Stdout, m)
	case n > 0:
		pl := model.Placement{Comp: topology.NodeID(comp), Comm: topology.NodeID(comm)}
		pred, err := m.Predict(n, pl)
		if err != nil {
			return err
		}
		fmt.Printf("%s, %v, n=%d: computations %.2f GB/s, communications %.2f GB/s\n",
			platform, pl, n, pred.Comp, pred.Comm)
		return nil
	case predict:
		for _, pl := range bench.AllPlacements(plat) {
			preds, err := m.PredictCurve(plat.CoresPerSocket(), pl)
			if err != nil {
				return err
			}
			t := export.NewTable(fmt.Sprintf("%s — predicted bandwidths for %v (GB/s)", platform, pl),
				"n", "computations", "communications")
			for i, p := range preds {
				t.AddRow(fmt.Sprint(i+1), export.GBs(p.Comp), export.GBs(p.Comm))
			}
			if err := t.WriteText(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		return export.ParamsTable(
			fmt.Sprintf("Calibrated model for %s (seed %d)", platform, seed), m,
		).WriteText(os.Stdout)
	}
}
