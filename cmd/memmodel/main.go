// Command memmodel calibrates the contention model on a platform and
// prints parameters and predictions (§III + §IV-A2).
//
// Usage:
//
//	memmodel -platform henri                      # calibrate, print params
//	memmodel -platform henri -json                # params as JSON
//	memmodel -platform henri -n 12 -comp 0 -comm 1   # one prediction
//	memmodel -platform henri -predict             # predictions, all placements
//
// Telemetry (all optional, see docs/observability.md):
//
//	memmodel -platform henri -metrics m.prom      # Prometheus snapshot
//	memmodel -platform henri -trace t.jsonl       # DES cross-check trace
//	memmodel -platform henri -manifest run.json   # reproducibility manifest
//	memmodel -platform henri -pprof localhost:6060
//
// Robustness (see docs/resilience.md):
//
//	memmodel -platform henri -faults plan.json    # cross-check under faults
//	memmodel -platform henri -robust              # calibration noise sweep
//	memmodel -platform henri -checkpoint run.ckpt # crash-safe resume
//
// With -checkpoint each completed unit (placement curve, cross-check) is
// journaled durably; SIGINT/SIGTERM interrupts the run cleanly (exit
// status 130, a `checkpoint` trace event marks the cut in -trace output)
// and the same command line resumes it with bit-identical results.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"memcontention"
	"memcontention/internal/bench"
	"memcontention/internal/calib"
	"memcontention/internal/campaign"
	"memcontention/internal/checkpoint"
	"memcontention/internal/engine"
	"memcontention/internal/eval"
	"memcontention/internal/export"
	"memcontention/internal/model"
	"memcontention/internal/obs"
	"memcontention/internal/topology"
	"memcontention/internal/trace"
)

// options are memmodel's parsed command-line inputs.
type options struct {
	platform         string
	seed             uint64
	seedSet          bool // -seed given explicitly (pins a remote campaign's seed)
	jsonOut, predict bool
	n, comp, comm    int
	faultsPath       string
	robust           bool
	robustTrials     int
	workers          int
	remote           bool
	shards           string
	replications     int
}

func main() {
	var o options
	flag.StringVar(&o.platform, "platform", "henri", "built-in platform name")
	flag.Uint64Var(&o.seed, "seed", 1, "measurement noise seed")
	flag.BoolVar(&o.jsonOut, "json", false, "print the calibrated model as JSON")
	flag.BoolVar(&o.predict, "predict", false, "print prediction tables for all placements")
	flag.IntVar(&o.n, "n", 0, "predict for this number of computing cores")
	flag.IntVar(&o.comp, "comp", 0, "computation data NUMA node for -n")
	flag.IntVar(&o.comm, "comm", 0, "communication data NUMA node for -n")
	flag.StringVar(&o.faultsPath, "faults", "", "fault plan JSON file: run the DES cross-check under this plan")
	flag.BoolVar(&o.robust, "robust", false, "print how calibration errors degrade with benchmark noise")
	flag.IntVar(&o.robustTrials, "robust-trials", 5, "noise realizations per amplitude for -robust")
	var workersFlag string
	flag.StringVar(&workersFlag, "workers", "0", `parallel evaluations for -replications (0: GOMAXPROCS), or "remote": finalize a lease-coordinated multi-process campaign in -shards (docs/campaigns.md)`)
	flag.StringVar(&o.shards, "shards", "", "campaign directory for -workers remote")
	flag.IntVar(&o.replications, "replications", 1, "Monte-Carlo replication sweep: evaluate this many consecutive seeds and print the platform's Table II errors as mean ± 95% CI")
	var cli obs.CLI
	cli.Register(flag.CommandLine, true)
	var ckpt checkpoint.CLI
	ckpt.Register(flag.CommandLine)
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			o.seedSet = true
		}
	})
	var perr error
	if o.workers, o.remote, perr = campaign.ParseWorkers(workersFlag); perr != nil {
		fmt.Fprintln(os.Stderr, "memmodel:", perr)
		os.Exit(2)
	}

	ctx, stop := checkpoint.SignalContext()
	err := run(ctx, os.Stdout, o, &ckpt, &cli)
	stop()
	if code := checkpoint.Report(os.Stderr, "memmodel", err); code != 0 {
		os.Exit(code)
	}
}

// run opens the journal and executes the command core; split from main so
// tests can drive the full logic with their own context and journal.
func run(ctx context.Context, w io.Writer, o options, ckpt *checkpoint.CLI, cli *obs.CLI) error {
	if o.remote {
		return remoteFinalize(ctx, w, o)
	}
	j, err := ckpt.Open()
	if err != nil {
		return err
	}
	defer j.Close()
	return modelCampaign(ctx, w, j, o, cli)
}

// remoteFinalize is the -workers remote path: wait for a memworker
// fleet to complete the campaign in -shards, merge every shard journal
// (all fencing epochs) and print the assembled Table II (plus the
// replication summary when the campaign ran one). The platform list,
// seed and replication width come from the campaign's manifest; an
// explicitly conflicting -seed or -replications is rejected with the
// exact disagreement.
func remoteFinalize(ctx context.Context, w io.Writer, o options) error {
	if o.shards == "" {
		return errors.New("-workers remote requires -shards <campaign dir>")
	}
	seed := o.seed
	if !o.seedSet {
		seed = 0 // inherit the manifest's seed
	}
	res, err := campaign.RemoteMerge(campaign.Config{
		Seed:         seed,
		Replications: o.replications,
		Context:      ctx,
	}, campaign.RemoteOptions{Dir: o.shards}, nil)
	if err != nil {
		return err
	}
	if err := eval.Table2(res.Artifacts.Platforms).WriteText(w); err != nil {
		return err
	}
	if rep := res.Artifacts.Replications; rep != nil {
		fmt.Fprintln(w)
		return rep.Table().WriteText(w)
	}
	return nil
}

func modelCampaign(ctx context.Context, w io.Writer, j *checkpoint.Journal, o options, cli *obs.CLI) (err error) {
	if err := cli.Start(); err != nil {
		return err
	}
	plat, err := topology.ByName(o.platform)
	if err != nil {
		return err
	}
	reg := cli.NewRegistry()
	j.SetRegistry(reg)
	var rec *trace.Recorder
	if cli.WantsTrace() {
		rec = trace.NewRecorder()
	}
	man := obs.NewManifest("memmodel")
	man.Platform = o.platform
	man.Seed = o.seed
	man.Args = os.Args[1:]

	// Telemetry flushes on success AND on graceful shutdown — an
	// interrupted run still writes its metrics, manifest, and a
	// `checkpoint` trace event recording where the campaign was cut.
	defer func() {
		if err != nil && !checkpoint.IsCanceled(err) {
			return
		}
		if err != nil && rec != nil {
			at := 0.0
			var ce *engine.CanceledError
			if errors.As(err, &ce) {
				at = ce.At
			}
			rec.CheckpointAt(at, "interrupted: "+campaign.Progress(j))
		}
		ferr := cli.Finish(reg, rec, man)
		if err == nil {
			err = ferr
		}
	}()

	runner, err := bench.NewRunner(bench.Config{Platform: plat, Seed: o.seed, Registry: reg, Context: ctx})
	if err != nil {
		return err
	}
	runner.WithJournal(j)
	man.Kernel = runner.Config().Kernel.String()
	m, err := calib.CalibrateRunner(runner)
	if err != nil {
		return err
	}

	switch {
	case o.jsonOut:
		err = export.WriteJSON(w, m)
	case o.n > 0:
		pl := model.Placement{Comp: topology.NodeID(o.comp), Comm: topology.NodeID(o.comm)}
		pred, perr := m.Predict(o.n, pl)
		if perr != nil {
			return perr
		}
		fmt.Fprintf(w, "%s, %v, n=%d: computations %.2f GB/s, communications %.2f GB/s\n",
			o.platform, pl, o.n, pred.Comp, pred.Comm)
	case o.predict:
		for _, pl := range bench.AllPlacements(plat) {
			preds, perr := m.PredictCurve(plat.CoresPerSocket(), pl)
			if perr != nil {
				return perr
			}
			t := export.NewTable(fmt.Sprintf("%s — predicted bandwidths for %v (GB/s)", o.platform, pl),
				"n", "computations", "communications")
			for i, p := range preds {
				t.AddRow(fmt.Sprint(i+1), export.GBs(p.Comp), export.GBs(p.Comm))
			}
			if err := t.WriteText(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
	default:
		err = export.ParamsTable(
			fmt.Sprintf("Calibrated model for %s (seed %d)", o.platform, o.seed), m,
		).WriteText(w)
	}
	if err != nil {
		return err
	}

	if o.robust {
		// A fresh runner so the sweep is reproducible for the seed alone,
		// independent of how much measurement the calibration consumed.
		rrunner, rerr := bench.NewRunner(bench.Config{Platform: plat, Seed: o.seed, Registry: reg, Context: ctx})
		if rerr != nil {
			return rerr
		}
		rep, rerr := calib.Robustness(rrunner, calib.RobustnessOptions{Trials: o.robustTrials, Seed: o.seed})
		if rerr != nil {
			return rerr
		}
		t := export.NewTable(
			fmt.Sprintf("%s — calibration robustness (Table II MAPE vs input noise, %d trials)", o.platform, o.robustTrials),
			"noise", "comm MAPE %", "comp MAPE %", "average %", "fit failures")
		row := func(label string, pt calib.RobustnessPoint) {
			t.AddRow(label,
				fmt.Sprintf("%.2f", pt.CommMAPE),
				fmt.Sprintf("%.2f", pt.CompMAPE),
				fmt.Sprintf("%.2f", pt.Average),
				fmt.Sprint(pt.FitFailures))
		}
		row("clean", rep.Baseline)
		for _, pt := range rep.Points {
			row(fmt.Sprintf("±%g%%", pt.NoiseRel*100), pt)
		}
		if err := t.WriteText(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}

	if o.replications > 1 {
		// The replication sweep measures the platform's Table II errors
		// across a consecutive-seed ensemble; each evaluation journals
		// into j, so an interrupted sweep resumes at evaluation
		// granularity.
		rep, rerr := campaign.Replicate(campaign.Config{
			Seed:         o.seed,
			Workers:      o.workers,
			Replications: o.replications,
			Context:      ctx,
			Journal:      j,
			Registry:     reg,
		}, []string{o.platform}, nil)
		if rerr != nil {
			return rerr
		}
		if err := rep.Table().WriteText(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}

	var plan *memcontention.FaultPlan
	if o.faultsPath != "" {
		if plan, err = memcontention.LoadFaultPlan(o.faultsPath); err != nil {
			return err
		}
	}

	// The DES cross-check replays the paper's motivating overlap scenario
	// on the simulated cluster; it feeds the event trace and the engine's
	// instruments. Only run it when some telemetry output wants the data
	// or a fault plan asks to stress it.
	if cli.WantsTrace() || reg != nil || plan != nil {
		xc, xerr := campaign.CrossCheck(campaign.Config{
			Seed:      o.seed,
			Context:   ctx,
			Journal:   j,
			Registry:  reg,
			Recorder:  rec,
			FaultPlan: plan,
		}, o.platform)
		if xerr != nil {
			return xerr
		}
		if plan != nil {
			if xc.Completed {
				fmt.Fprintf(w, "cross-check under fault plan (seed %d, %d events): completed in %.6f simulated seconds\n",
					xc.PlanSeed, xc.PlanEvents, xc.SimSeconds)
			} else {
				fmt.Fprintf(w, "cross-check under fault plan (seed %d, %d events): failed: %s\n",
					xc.PlanSeed, xc.PlanEvents, xc.Error)
			}
		}
	}
	return nil
}
