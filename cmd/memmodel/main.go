// Command memmodel calibrates the contention model on a platform and
// prints parameters and predictions (§III + §IV-A2).
//
// Usage:
//
//	memmodel -platform henri                      # calibrate, print params
//	memmodel -platform henri -json                # params as JSON
//	memmodel -platform henri -n 12 -comp 0 -comm 1   # one prediction
//	memmodel -platform henri -predict             # predictions, all placements
//
// Telemetry (all optional, see docs/observability.md):
//
//	memmodel -platform henri -metrics m.prom      # Prometheus snapshot
//	memmodel -platform henri -trace t.jsonl       # DES cross-check trace
//	memmodel -platform henri -manifest run.json   # reproducibility manifest
//	memmodel -platform henri -pprof localhost:6060
//
// Robustness (see docs/resilience.md):
//
//	memmodel -platform henri -faults plan.json    # cross-check under faults
//	memmodel -platform henri -robust              # calibration noise sweep
package main

import (
	"flag"
	"fmt"
	"os"

	"memcontention"
	"memcontention/internal/bench"
	"memcontention/internal/calib"
	"memcontention/internal/export"
	"memcontention/internal/model"
	"memcontention/internal/obs"
	"memcontention/internal/topology"
	"memcontention/internal/trace"
)

func main() {
	platform := flag.String("platform", "henri", "built-in platform name")
	seed := flag.Uint64("seed", 1, "measurement noise seed")
	jsonOut := flag.Bool("json", false, "print the calibrated model as JSON")
	predict := flag.Bool("predict", false, "print prediction tables for all placements")
	n := flag.Int("n", 0, "predict for this number of computing cores")
	comp := flag.Int("comp", 0, "computation data NUMA node for -n")
	comm := flag.Int("comm", 0, "communication data NUMA node for -n")
	faults := flag.String("faults", "", "fault plan JSON file: run the DES cross-check under this plan")
	robust := flag.Bool("robust", false, "print how calibration errors degrade with benchmark noise")
	robustTrials := flag.Int("robust-trials", 5, "noise realizations per amplitude for -robust")
	var cli obs.CLI
	cli.Register(flag.CommandLine, true)
	flag.Parse()

	if err := run(*platform, *seed, *jsonOut, *predict, *n, *comp, *comm, *faults, *robust, *robustTrials, &cli); err != nil {
		fmt.Fprintln(os.Stderr, "memmodel:", err)
		os.Exit(1)
	}
}

func run(platform string, seed uint64, jsonOut, predict bool, n, comp, comm int, faultsPath string, robust bool, robustTrials int, cli *obs.CLI) error {
	if err := cli.Start(); err != nil {
		return err
	}
	plat, err := topology.ByName(platform)
	if err != nil {
		return err
	}
	reg := cli.NewRegistry()
	runner, err := bench.NewRunner(bench.Config{Platform: plat, Seed: seed, Registry: reg})
	if err != nil {
		return err
	}
	m, err := calib.CalibrateRunner(runner)
	if err != nil {
		return err
	}

	switch {
	case jsonOut:
		err = export.WriteJSON(os.Stdout, m)
	case n > 0:
		pl := model.Placement{Comp: topology.NodeID(comp), Comm: topology.NodeID(comm)}
		pred, perr := m.Predict(n, pl)
		if perr != nil {
			return perr
		}
		fmt.Printf("%s, %v, n=%d: computations %.2f GB/s, communications %.2f GB/s\n",
			platform, pl, n, pred.Comp, pred.Comm)
	case predict:
		for _, pl := range bench.AllPlacements(plat) {
			preds, perr := m.PredictCurve(plat.CoresPerSocket(), pl)
			if perr != nil {
				return perr
			}
			t := export.NewTable(fmt.Sprintf("%s — predicted bandwidths for %v (GB/s)", platform, pl),
				"n", "computations", "communications")
			for i, p := range preds {
				t.AddRow(fmt.Sprint(i+1), export.GBs(p.Comp), export.GBs(p.Comm))
			}
			if err := t.WriteText(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
	default:
		err = export.ParamsTable(
			fmt.Sprintf("Calibrated model for %s (seed %d)", platform, seed), m,
		).WriteText(os.Stdout)
	}
	if err != nil {
		return err
	}

	if robust {
		// A fresh runner so the sweep is reproducible for the seed alone,
		// independent of how much measurement the calibration consumed.
		rrunner, rerr := bench.NewRunner(bench.Config{Platform: plat, Seed: seed, Registry: reg})
		if rerr != nil {
			return rerr
		}
		rep, rerr := calib.Robustness(rrunner, calib.RobustnessOptions{Trials: robustTrials, Seed: seed})
		if rerr != nil {
			return rerr
		}
		t := export.NewTable(
			fmt.Sprintf("%s — calibration robustness (Table II MAPE vs input noise, %d trials)", platform, robustTrials),
			"noise", "comm MAPE %", "comp MAPE %", "average %", "fit failures")
		row := func(label string, pt calib.RobustnessPoint) {
			t.AddRow(label,
				fmt.Sprintf("%.2f", pt.CommMAPE),
				fmt.Sprintf("%.2f", pt.CompMAPE),
				fmt.Sprintf("%.2f", pt.Average),
				fmt.Sprint(pt.FitFailures))
		}
		row("clean", rep.Baseline)
		for _, pt := range rep.Points {
			row(fmt.Sprintf("±%g%%", pt.NoiseRel*100), pt)
		}
		if err := t.WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	var plan *memcontention.FaultPlan
	if faultsPath != "" {
		if plan, err = memcontention.LoadFaultPlan(faultsPath); err != nil {
			return err
		}
	}

	// The DES cross-check replays the paper's motivating overlap scenario
	// on the simulated cluster; it feeds the event trace and the engine's
	// instruments. Only run it when some telemetry output wants the data
	// or a fault plan asks to stress it.
	var rec *trace.Recorder
	if cli.WantsTrace() || reg != nil || plan != nil {
		if cli.WantsTrace() {
			rec = trace.NewRecorder()
		}
		if err := crossCheck(platform, plat, reg, rec, plan); err != nil {
			return err
		}
	}

	man := obs.NewManifest("memmodel")
	man.Platform = platform
	man.Seed = seed
	man.Kernel = runner.Config().Kernel.String()
	man.Args = os.Args[1:]
	return cli.Finish(reg, rec, man)
}

// crossCheck runs a two-machine overlap job (rank 0 computes while a
// large message streams in, rank 1 sends) under the discrete-event
// simulator, recording flow events and engine metrics. With a fault
// plan the job runs under injection, guarded by MPI timeouts, drop
// retries and a watchdog, and the outcome is reported instead of
// failing the command — a failing run is the plan working as intended.
func crossCheck(platform string, plat *topology.Platform, reg *obs.Registry, rec *trace.Recorder, plan *memcontention.FaultPlan) error {
	cluster, err := memcontention.NewCluster(platform, 2)
	if err != nil {
		return err
	}
	cluster.WithRegistry(reg)
	if rec != nil {
		cluster.WithObserver(rec)
	}
	if plan != nil {
		cluster.WithFaults(plan).
			WithResilience(memcontention.Resilience{OpTimeout: 5, MaxRetries: 4}).
			WithWatchdog(300, 10_000_000)
	}
	const tag = 7
	msg := 64 * memcontention.MiB
	cores := plat.CoresPerSocket() / 2
	if cores < 1 {
		cores = 1
	}
	secs, err := cluster.Run(1, func(ctx *memcontention.RankCtx) {
		switch ctx.Rank() {
		case 0:
			topo := ctx.Machine().Topo
			work := memcontention.Assignment{
				Kernel: memcontention.DefaultKernel(),
				Cores:  topo.SocketSet(0).Take(cores),
				Node:   0,
			}
			if rec != nil {
				rec.MarkAt(ctx.Now(), "overlap-start")
			}
			req, err := ctx.Irecv(1, tag, msg, 0)
			if err != nil {
				panic(err)
			}
			if _, err := ctx.Compute(work, 256*memcontention.MiB); err != nil {
				panic(err)
			}
			if _, err := ctx.Wait(req); err != nil {
				panic(err)
			}
			if rec != nil {
				rec.MarkAt(ctx.Now(), "overlap-end")
			}
		case 1:
			if err := ctx.Send(0, tag, msg, 0, nil); err != nil {
				panic(err)
			}
		}
	})
	if plan == nil {
		return err
	}
	if err != nil {
		fmt.Printf("cross-check under fault plan (seed %d, %d events): failed: %v\n",
			plan.Seed, len(plan.Events), err)
	} else {
		fmt.Printf("cross-check under fault plan (seed %d, %d events): completed in %.6f simulated seconds\n",
			plan.Seed, len(plan.Events), secs)
	}
	return nil
}
