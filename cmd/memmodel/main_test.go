package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memcontention/internal/checkpoint"
	"memcontention/internal/obs"
)

func testOptions() options {
	return options{platform: "henri", seed: 1, robustTrials: 1}
}

// TestInterruptFlushesTraceAndResumes: a cancellation mid-campaign still
// flushes the telemetry outputs — including a `checkpoint` trace event
// recording the cut — leaves a resumable journal, and a second invocation
// completes with output identical to an uninterrupted run.
func TestInterruptFlushesTraceAndResumes(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "run.ckpt")
	tracePath := filepath.Join(dir, "trace.jsonl")

	j, err := checkpoint.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j.RecordHook = func(_ string, total int) {
		if total == 1 {
			cancel()
		}
	}
	var interrupted bytes.Buffer
	err = modelCampaign(ctx, &interrupted, j, testOptions(), &obs.CLI{TracePath: tracePath})
	if !checkpoint.IsCanceled(err) {
		t.Fatalf("err = %v, want cancellation", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	traceData, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("interrupted run did not flush the trace: %v", err)
	}
	if !strings.Contains(string(traceData), `"kind":"checkpoint"`) ||
		!strings.Contains(string(traceData), "interrupted") {
		t.Fatalf("trace lacks the checkpoint event:\n%s", traceData)
	}

	// Resume through the real journal plumbing; it must complete and
	// match an uninterrupted run byte for byte.
	var resumed bytes.Buffer
	ckpt := &checkpoint.CLI{Path: jpath, Resume: true}
	if err := run(context.Background(), &resumed, testOptions(), ckpt, &obs.CLI{}); err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	var fresh bytes.Buffer
	if err := run(context.Background(), &fresh, testOptions(), &checkpoint.CLI{}, &obs.CLI{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed.Bytes(), fresh.Bytes()) {
		t.Fatal("resumed output differs from an uninterrupted run")
	}
	if !strings.Contains(resumed.String(), "Calibrated model for henri") {
		t.Fatalf("unexpected output:\n%s", resumed.String())
	}
}

func TestPredictionOutput(t *testing.T) {
	o := testOptions()
	o.n = 4
	o.comp, o.comm = 0, 1
	var out bytes.Buffer
	if err := run(context.Background(), &out, o, &checkpoint.CLI{}, &obs.CLI{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "n=4") {
		t.Fatalf("unexpected output: %s", out.String())
	}
}

// TestReplicationSweepOutput: -replications prints the mean ± CI table
// and resumes deterministically through the journal.
func TestReplicationSweepOutput(t *testing.T) {
	o := testOptions()
	o.replications = 2
	o.workers = 2
	var out bytes.Buffer
	if err := run(context.Background(), &out, o, &checkpoint.CLI{}, &obs.CLI{}); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "MEAN ± 95% CI OVER 2 SEEDS") || !strings.Contains(s, "henri") {
		t.Fatalf("replication table missing:\n%s", s)
	}
	var again bytes.Buffer
	if err := run(context.Background(), &again, o, &checkpoint.CLI{}, &obs.CLI{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), again.Bytes()) {
		t.Fatal("replication sweep is not deterministic")
	}
}
