// Command memprof is the contention attribution profiler's front end: it
// replays the paper's motivating overlap scenario (§II) on a simulated
// cluster with causal spans enabled — or loads a previously recorded
// trace — and reports where the makespan went: the critical path through
// ranks, MPI operations, fabric transfers and memory flows; the
// per-resource utilization of every memory-system link; and the
// per-stream attribution summary pinning the timeline's bandwidth
// integrals to the engine's reported averages.
//
// Usage:
//
//	memprof -platform henri                  # profile the overlap scenario
//	memprof -platform dahu -top 3            # top 3 contended links
//	memprof -load run.jsonl                  # analyse a recorded trace
//	memprof -platform henri -perfetto p.json # export for ui.perfetto.dev
//
// Telemetry (all optional, see docs/observability.md):
//
//	memprof -platform henri -trace t.jsonl   # full span trace as JSONL
//	memprof -platform henri -metrics m.prom -manifest run.json
//
// Robustness (see docs/resilience.md):
//
//	memprof -platform henri -checkpoint run.ckpt
//
// With -checkpoint the profiled scenario is journaled and its span slice
// saved beside the journal (<journal>.spans/); re-running the same
// command stitches the recorded spans instead of re-simulating, and a
// resumed multi-unit campaign produces a byte-identical merged trace.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"memcontention/internal/atomicio"
	"memcontention/internal/campaign"
	"memcontention/internal/checkpoint"
	"memcontention/internal/obs"
	"memcontention/internal/prof"
	"memcontention/internal/trace"
)

// options are memprof's parsed command-line inputs.
type options struct {
	platform string
	seed     uint64
	load     string
	perfetto string
	top      int
	width    int
}

func main() {
	var o options
	flag.StringVar(&o.platform, "platform", "henri", "built-in platform name to profile")
	flag.Uint64Var(&o.seed, "seed", 1, "scenario seed (journal key component)")
	flag.StringVar(&o.load, "load", "", "analyse this recorded JSONL trace instead of running a scenario")
	flag.StringVar(&o.perfetto, "perfetto", "", "write a Chrome trace-event JSON export (open in ui.perfetto.dev)")
	flag.IntVar(&o.top, "top", 5, "number of contended links to highlight")
	flag.IntVar(&o.width, "width", 60, "share chart width in columns")
	var cli obs.CLI
	cli.Register(flag.CommandLine, true)
	var ckpt checkpoint.CLI
	ckpt.Register(flag.CommandLine)
	flag.Parse()

	ctx, stop := checkpoint.SignalContext()
	err := run(ctx, os.Stdout, o, &ckpt, &cli)
	stop()
	if code := checkpoint.Report(os.Stderr, "memprof", err); code != 0 {
		os.Exit(code)
	}
}

// run opens the journal and executes the command core; split from main so
// tests can drive the full logic with their own context and outputs.
func run(ctx context.Context, w io.Writer, o options, ckpt *checkpoint.CLI, cli *obs.CLI) (err error) {
	if err := cli.Start(); err != nil {
		return err
	}
	j, err := ckpt.Open()
	if err != nil {
		return err
	}
	defer j.Close()

	reg := cli.NewRegistry()
	j.SetRegistry(reg)
	man := obs.NewManifest("memprof")
	man.Platform = o.platform
	man.Seed = o.seed
	man.Args = os.Args[1:]

	var events []trace.Event
	rec := trace.NewRecorder()
	if o.load != "" {
		events, err = trace.LoadJSONL(o.load)
		if err != nil {
			return err
		}
		rec.Ingest(events)
		man.Platform = ""
		man.Notes = map[string]string{"source": o.load}
		fmt.Fprintf(w, "loaded %d events from %s\n\n", len(events), o.load)
	} else {
		p := prof.Attach(rec)
		cfg := campaign.Config{
			Seed:     o.seed,
			Context:  ctx,
			Journal:  j,
			Registry: reg,
			Profiler: p,
		}
		if ckpt.Path != "" {
			cfg.SpanStore = prof.NewSpanStore(ckpt.Path + ".spans")
		}
		xc, xerr := campaign.CrossCheck(cfg, o.platform)
		if xerr != nil {
			return xerr
		}
		events = p.Events()
		fmt.Fprintf(w, "profiled overlap scenario on %s: %.6f simulated seconds, %d events\n\n",
			o.platform, xc.SimSeconds, len(events))
	}

	// Telemetry flushes on success; the recorder holds the full profiled
	// (or re-ingested) timeline for -trace.
	defer func() {
		ferr := cli.Finish(reg, rec, man)
		if err == nil {
			err = ferr
		}
	}()

	if err := report(w, events, o); err != nil {
		return err
	}

	if o.perfetto != "" {
		err := atomicio.WriteStream(o.perfetto, 0o644, func(w io.Writer) error {
			return prof.WritePerfetto(w, events)
		})
		if err != nil {
			return fmt.Errorf("writing -perfetto: %w", err)
		}
		fmt.Fprintf(w, "\nwrote Perfetto trace to %s (open in ui.perfetto.dev)\n", o.perfetto)
	}
	return nil
}

// report renders the three analyses on w.
func report(w io.Writer, events []trace.Event, o options) error {
	st, err := prof.BuildSpanTree(events)
	if err != nil {
		return err
	}
	steps := st.CriticalPath()
	fmt.Fprintf(w, "== critical path (%d spans, makespan %.6f ms) ==\n", st.SpanCount(), st.Makespan*1e3)
	io.WriteString(w, prof.FormatCriticalPath(steps))
	fmt.Fprintf(w, "\n== critical-path attribution ==\n")
	io.WriteString(w, prof.FormatAttribution(steps))

	tl, err := prof.BuildTimeline(events)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n== per-stream attribution (timeline integral vs engine average) ==\n")
	io.WriteString(w, prof.FormatStreams(tl))
	fmt.Fprintf(w, "\n== link utilization ==\n")
	io.WriteString(w, prof.FormatUtilization(tl))
	if top := tl.TopContended(o.top); len(top) > 0 {
		fmt.Fprintf(w, "\n== top %d contended links ==\n", len(top))
		for i, lu := range top {
			fmt.Fprintf(w, "%d. machine %d %s: %.3f GB total (%.1f%% comm), peak %.2f GB/s\n",
				i+1, lu.Machine, lu.Link, lu.TotalGB(), commShare(lu)*100, lu.Peak)
		}
	}
	fmt.Fprintf(w, "\n== bandwidth shares ==\n")
	io.WriteString(w, tl.ShareChart(o.width))
	return nil
}

func commShare(lu prof.LinkUtil) float64 {
	if t := lu.TotalGB(); t > 0 {
		return lu.CommGB / t
	}
	return 0
}
