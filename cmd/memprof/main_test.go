package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memcontention/internal/checkpoint"
	"memcontention/internal/obs"
	"memcontention/internal/prof"
	"memcontention/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// profileRun drives the command core like main would, returning the report
// text. Extra telemetry destinations come from cli/ckpt.
func profileRun(t *testing.T, o options, ckpt *checkpoint.CLI, cli *obs.CLI) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(context.Background(), &out, o, ckpt, cli); err != nil {
		t.Fatalf("run: %v", err)
	}
	return out.String()
}

// TestMemprofReports exercises the full report on two Table I platforms
// and pins the timeline's per-flow bandwidth integral to the engine's
// reported average within 1e-9 relative error.
func TestMemprofReports(t *testing.T) {
	for _, platform := range []string{"henri", "dahu"} {
		t.Run(platform, func(t *testing.T) {
			dir := t.TempDir()
			tracePath := filepath.Join(dir, "run.jsonl")
			cli := &obs.CLI{TracePath: tracePath}
			out := profileRun(t, options{platform: platform, seed: 1, top: 5, width: 40}, &checkpoint.CLI{}, cli)

			for _, want := range []string{
				"profiled overlap scenario on " + platform,
				"== critical path",
				"== critical-path attribution ==",
				"== per-stream attribution",
				"== link utilization ==",
				"== bandwidth shares ==",
				"flow",
			} {
				if !strings.Contains(out, want) {
					t.Errorf("report missing %q:\n%s", want, out)
				}
			}

			events, err := trace.LoadJSONL(tracePath)
			if err != nil {
				t.Fatalf("loading -trace output: %v", err)
			}
			tl, err := prof.BuildTimeline(events)
			if err != nil {
				t.Fatalf("BuildTimeline: %v", err)
			}
			if len(tl.Flows) == 0 {
				t.Fatal("timeline recorded no flows")
			}
			for _, fi := range tl.Flows {
				if !fi.Finished || fi.AvgRate <= 0 {
					continue
				}
				got := fi.IntegralRate()
				rel := math.Abs(got-fi.AvgRate) / fi.AvgRate
				if rel > 1e-9 {
					t.Errorf("m%d flow %d: integral %.12f GB/s vs engine %.12f GB/s (rel %.3e)",
						fi.Machine, fi.ID, got, fi.AvgRate, rel)
				}
			}
		})
	}
}

// TestMemprofGoldenPerfetto validates the Perfetto export byte-for-byte
// against a golden file (the DES is deterministic). Regenerate with
// `go test ./cmd/memprof -run Golden -update`.
func TestMemprofGoldenPerfetto(t *testing.T) {
	dir := t.TempDir()
	pf := filepath.Join(dir, "henri.perfetto.json")
	profileRun(t, options{platform: "henri", seed: 1, top: 5, width: 40, perfetto: pf}, &checkpoint.CLI{}, &obs.CLI{})

	got, err := os.ReadFile(pf)
	if err != nil {
		t.Fatalf("reading export: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("export has no trace events")
	}

	golden := filepath.Join("testdata", "henri.perfetto.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Perfetto export differs from golden %s (run with -update after intended changes)", golden)
	}
}

// TestMemprofLoad records a trace, re-analyses it with -load, and checks
// the offline report reproduces the live critical path exactly.
func TestMemprofLoad(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.jsonl")
	live := profileRun(t, options{platform: "henri", seed: 1, top: 5, width: 40}, &checkpoint.CLI{}, &obs.CLI{TracePath: tracePath})
	loaded := profileRun(t, options{load: tracePath, top: 5, width: 40}, &checkpoint.CLI{}, &obs.CLI{})

	if !strings.Contains(loaded, "loaded ") {
		t.Errorf("-load report missing source banner:\n%s", loaded)
	}
	liveCP := section(t, live, "== critical path")
	loadedCP := section(t, loaded, "== critical path")
	if liveCP != loadedCP {
		t.Errorf("critical path diverged between live and -load runs:\nlive:\n%s\nloaded:\n%s", liveCP, loadedCP)
	}
}

// TestMemprofCheckpointStitch profiles with -checkpoint twice; the second
// run must stitch the journaled unit's spans into a byte-identical trace
// without re-simulating.
func TestMemprofCheckpointStitch(t *testing.T) {
	dir := t.TempDir()
	ckptPath := filepath.Join(dir, "run.ckpt")
	t1 := filepath.Join(dir, "t1.jsonl")
	t2 := filepath.Join(dir, "t2.jsonl")

	profileRun(t, options{platform: "henri", seed: 1, top: 5, width: 40},
		&checkpoint.CLI{Path: ckptPath}, &obs.CLI{TracePath: t1})
	profileRun(t, options{platform: "henri", seed: 1, top: 5, width: 40},
		&checkpoint.CLI{Path: ckptPath, Resume: true}, &obs.CLI{TracePath: t2})

	b1, err := os.ReadFile(t1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(t2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("stitched resume trace is not byte-identical to the live recording")
	}
}

// section extracts one "== header ==" block up to the next header.
func section(t *testing.T, report, header string) string {
	t.Helper()
	i := strings.Index(report, header)
	if i < 0 {
		t.Fatalf("report has no %q section:\n%s", header, report)
	}
	rest := report[i:]
	if j := strings.Index(rest[len(header):], "\n== "); j >= 0 {
		rest = rest[:len(header)+j]
	}
	return rest
}
