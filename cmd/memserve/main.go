// Command memserve is the contention-prediction service: a long-running
// HTTP/JSON server answering the paper's threshold model (§III) for any
// built-in platform, kernel and placement, with the full live
// observability plane mounted.
//
// Usage:
//
//	memserve                                  # serve all platforms on localhost:8080
//	memserve -addr :9000 -platforms henri,dahu
//	memserve -seed 7 -max-inflight 512
//
// Endpoints:
//
//	GET|POST /predict      platform, n, mcomp, mcomm, kernel → bandwidths
//	GET /platforms         served platforms and kernels
//	GET /metrics           live Prometheus text exposition
//	GET /metrics.json      live stable-JSON snapshot
//	GET /healthz, /readyz  probes (/readyz goes 503 during drain)
//	GET /debug/pprof/      profiling plane
//
// Request logs are JSON lines on stderr with run/request correlation ids;
// the -manifest artifact written at exit carries the same run id. SIGINT
// or SIGTERM drains gracefully: readiness flips first, in-flight requests
// finish, then telemetry artifacts are flushed (exit status 130, the
// repo's interrupted-cleanly convention).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"time"

	"memcontention/internal/checkpoint"
	"memcontention/internal/obs"
	"memcontention/internal/obs/slogx"
	"memcontention/internal/serve"
)

// options are memserve's parsed command-line inputs.
type options struct {
	addr        string
	platforms   string
	seed        uint64
	maxInFlight int
	window      time.Duration
	drain       time.Duration
	logLevel    string
	quiet       bool
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "localhost:8080", "listen address (host:port; :0 picks a free port)")
	flag.StringVar(&o.platforms, "platforms", "", "comma-separated platform allowlist (default: all built-ins)")
	flag.Uint64Var(&o.seed, "seed", 1, "calibration measurement-noise seed (part of the cache key)")
	flag.IntVar(&o.maxInFlight, "max-inflight", 256, "max concurrently handled predictions before shedding with 429")
	flag.DurationVar(&o.window, "window", 10*time.Second, "rolling latency/QPS window behind the quantile gauges")
	flag.DurationVar(&o.drain, "drain-timeout", 5*time.Second, "graceful shutdown budget for in-flight requests")
	flag.StringVar(&o.logLevel, "log-level", "info", "request log level: debug, info, warn, error")
	flag.BoolVar(&o.quiet, "quiet", false, "disable request logging entirely")
	var cli obs.CLI
	cli.Register(flag.CommandLine, false)
	flag.Parse()

	ctx, stop := checkpoint.SignalContext()
	err := run(ctx, os.Stdout, os.Stderr, o, &cli, nil)
	stop()
	if code := checkpoint.Report(os.Stderr, "memserve", err); code != 0 {
		os.Exit(code)
	}
}

// run builds, warms and serves; split from main so the smoke test can
// drive the full path with its own context and read the bound address
// through onReady.
func run(ctx context.Context, stdout, logw io.Writer, o options, cli *obs.CLI, onReady func(addr string)) error {
	if err := cli.Start(); err != nil {
		return err
	}
	var logger *slogx.Logger
	if !o.quiet {
		logger = slogx.New(logw, slogx.ParseLevel(o.logLevel))
	}
	reg := cli.NewRegistry()
	if reg == nil {
		// The live plane always needs a registry, -metrics/-manifest or not.
		reg = obs.NewRegistry()
	}
	var platforms []string
	if strings.TrimSpace(o.platforms) != "" {
		for _, p := range strings.Split(o.platforms, ",") {
			platforms = append(platforms, strings.TrimSpace(p))
		}
	}
	srv, err := serve.New(serve.Options{
		Platforms:    platforms,
		Seed:         o.seed,
		MaxInFlight:  o.maxInFlight,
		Window:       o.window,
		DrainTimeout: o.drain,
		Registry:     reg,
		Logger:       logger,
	})
	if err != nil {
		return err
	}
	if err := srv.Warm(ctx); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return fmt.Errorf("memserve: listen on %s: %w", o.addr, err)
	}
	fmt.Fprintf(stdout, "memserve: serving on http://%s (predict, platforms, metrics, healthz, readyz, debug/pprof)\n", ln.Addr())
	logger.Info("serving", "addr", ln.Addr().String(), "platforms", strings.Join(platformsOrAll(platforms), ","), "seed", o.seed)
	if onReady != nil {
		onReady(ln.Addr().String())
	}
	serveErr := srv.Serve(ctx, ln)

	man := obs.NewManifest("memserve")
	man.Seed = o.seed
	man.Notes = map[string]string{"addr": ln.Addr().String(), "run_id": logger.RunID()}
	if finishErr := cli.Finish(reg, nil, man); finishErr != nil && serveErr == nil {
		serveErr = finishErr
	}
	if serveErr == nil {
		// A drain triggered by the signal context is the interrupted-
		// cleanly path: surface it so main exits 130 like every command.
		serveErr = ctx.Err()
	}
	return serveErr
}

func platformsOrAll(platforms []string) []string {
	if len(platforms) == 0 {
		return []string{"all"}
	}
	return platforms
}
