package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"memcontention/internal/checkpoint"
	"memcontention/internal/obs"
)

// TestMemserveSmoke boots the real server through run() — warm-up,
// listener, live plane and all — then walks the serving surface end to
// end: probes, a prediction, and a live /metrics scrape that must parse
// as Prometheus exposition text and carry the request counter. This is
// the `make serve-smoke` gate.
func TestMemserveSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	dir := t.TempDir()
	o := options{
		addr:        "127.0.0.1:0",
		platforms:   "henri",
		seed:        1,
		maxInFlight: 32,
		window:      5 * time.Second,
		drain:       2 * time.Second,
		logLevel:    "info",
	}
	cli := &obs.CLI{ManifestPath: filepath.Join(dir, "manifest.json")}

	ready := make(chan string, 1)
	done := make(chan error, 1)
	var stdout, logbuf syncBuffer
	go func() {
		done <- run(ctx, &stdout, &logbuf, o, cli, func(addr string) { ready <- addr })
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("memserve exited before becoming ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("memserve never became ready")
	}
	base := "http://" + addr

	if got := strings.TrimSpace(get(t, base+"/healthz")); got != "ok" {
		t.Errorf("/healthz = %q, want ok", got)
	}
	if got := strings.TrimSpace(get(t, base+"/readyz")); got != "ready" {
		t.Errorf("/readyz = %q, want ready", got)
	}

	var resp struct {
		CompGBps float64 `json:"comp_gbps"`
		CommGBps float64 `json:"comm_gbps"`
		Model    string  `json:"model_fingerprint"`
	}
	body := get(t, base+"/predict?platform=henri&n=8&mcomp=0&mcomm=1")
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("prediction response is not JSON: %v\n%s", err, body)
	}
	if resp.CompGBps <= 0 || resp.CommGBps <= 0 || resp.Model == "" {
		t.Errorf("implausible prediction: %+v", resp)
	}

	metrics := get(t, base+"/metrics")
	stats, err := obs.ParseExposition(metrics)
	if err != nil {
		t.Fatalf("/metrics is not valid Prometheus exposition text: %v", err)
	}
	if n := stats.SumFamily("memcontention_serve_requests_total"); n < 1 {
		t.Errorf("request counter not visible in live scrape: sum=%v", n)
	}
	if v, ok := stats.Value(`memcontention_serve_requests_total{code="200"}`); !ok || v < 1 {
		t.Errorf("requests_total{code=200} = %v (present=%v), want >= 1", v, ok)
	}

	cancel()
	select {
	case err := <-done:
		// run surfaces the cancellation so main can exit 130; anything
		// else is a real failure.
		if !checkpoint.IsCanceled(err) {
			t.Fatalf("graceful shutdown returned %v, want a canceled context", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("memserve did not drain after cancellation")
	}

	if !strings.Contains(stdout.String(), "memserve: serving on http://") {
		t.Errorf("startup banner missing from stdout: %q", stdout.String())
	}
	logs := logbuf.String()
	if !strings.Contains(logs, `"run_id"`) || !strings.Contains(logs, `"req_id"`) {
		t.Errorf("request log lines missing correlation ids:\n%s", logs)
	}
}

// TestMemserveRunRejectsUnknownPlatform keeps flag validation honest
// without binding a socket.
func TestMemserveRunRejectsUnknownPlatform(t *testing.T) {
	o := options{addr: "127.0.0.1:0", platforms: "cray-1", quiet: true,
		maxInFlight: 1, window: time.Second, drain: time.Second}
	err := run(context.Background(), io.Discard, io.Discard, o, &obs.CLI{}, nil)
	if err == nil || !strings.Contains(err.Error(), "cray-1") {
		t.Fatalf("run accepted unknown platform: %v", err)
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, b)
	}
	return string(b)
}

// syncBuffer guards a bytes.Buffer: the server goroutine writes log
// lines while the test goroutine scrapes and finally reads them back.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
