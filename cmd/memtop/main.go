// Command memtop is the fleet monitor of a campaign directory: it joins
// the worker status beacons (beacons/), the campaign event journal
// (events/), the shard journals and the lease files (leases/) into one
// consistent live view — which workers are alive, which leases are
// stale or fenced, how many units are done, pending and quarantined,
// and the campaign's ETA at the fleet's current throughput. It is
// strictly read-only: pointing it at a live campaign never perturbs the
// workers it observes.
//
// Usage:
//
//	memtop -dir run/                  # one-shot text report
//	memtop -dir run/ -watch 2s       # refresh every 2s until interrupted
//	memtop -dir run/ -json           # stable-JSON report (scripting, CI)
//	memtop -dir run/ -events         # the merged causal event timeline
//	memtop -dir run/ -serve :9090    # Prometheus plane: memcontention_fleet_*
//	memtop -dir run/ -lease-ttl 2s   # match a campaign running short leases
//
// Unit counts come from the shard journals — the same ground truth
// `memworker -merge` consumes — never from beacons, so memtop's totals
// always agree with the merged artifacts. With -serve, the obs.Live
// plane (/metrics, /metrics.json, /healthz, /readyz) recomputes the
// fleet report on every scrape.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"memcontention/internal/campaign"
	"memcontention/internal/checkpoint"
	"memcontention/internal/obs"
)

// options are memtop's parsed command-line inputs.
type options struct {
	dir     string
	jsonOut bool
	events  bool
	watch   time.Duration
	serve   string
	ttl     time.Duration
	grace   time.Duration
	stale   time.Duration

	// clock drives every age computation; tests inject a manual clock
	// for byte-deterministic reports (nil: obs.WallClock).
	clock obs.Clock
}

func main() {
	o, err := parseFlags(flag.CommandLine, os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "memtop:", err)
		os.Exit(2)
	}
	ctx, stop := checkpoint.SignalContext()
	err = run(ctx, os.Stdout, o)
	stop()
	if code := checkpoint.Report(os.Stderr, "memtop", err); code != 0 {
		os.Exit(code)
	}
}

// parseFlags registers and parses the flag set; split from main so tests
// can drive it.
func parseFlags(fs *flag.FlagSet, args []string) (options, error) {
	var o options
	fs.StringVar(&o.dir, "dir", "", "campaign directory to monitor (required)")
	fs.BoolVar(&o.jsonOut, "json", false, "emit the report as stable JSON instead of text")
	fs.BoolVar(&o.events, "events", false, "print the merged causal event timeline instead of the status report")
	fs.DurationVar(&o.watch, "watch", 0, "refresh interval; 0 renders once and exits")
	fs.StringVar(&o.serve, "serve", "", "serve the live metrics plane (memcontention_fleet_*) on this address")
	fs.DurationVar(&o.ttl, "lease-ttl", 0, "lease TTL the campaign runs with, for staleness judgement (default 15s)")
	fs.DurationVar(&o.grace, "lease-grace", 0, "staleness grace past the TTL (default TTL/2; negative: none)")
	fs.DurationVar(&o.stale, "stale", 0, "age after which a running beacon is presumed crashed (default TTL+grace)")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.dir == "" {
		return o, fmt.Errorf("-dir is required: point memtop at the campaign directory")
	}
	if fs.NArg() > 0 {
		return o, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if o.jsonOut && o.events {
		return o, fmt.Errorf("-json and -events are mutually exclusive (the JSON report already embeds the timeline)")
	}
	return o, nil
}

// collect builds one fleet report under the configured staleness rules.
func collect(o options) (*campaign.FleetReport, error) {
	return campaign.CollectFleet(campaign.FleetOptions{
		Dir:   o.dir,
		TTL:   o.ttl,
		Grace: o.grace,
		Stale: o.stale,
		Clock: o.clock,
	})
}

// render writes one report in the selected format.
func render(w io.Writer, o options, rep *campaign.FleetReport) error {
	switch {
	case o.jsonOut:
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return fmt.Errorf("memtop: encode report: %w", err)
		}
		_, err = fmt.Fprintf(w, "%s\n", data)
		return err
	case o.events:
		return rep.WriteTimeline(w)
	default:
		return rep.WriteText(w)
	}
}

// run executes memtop; split from main so tests can drive the full
// logic with their own context, output sink and clock.
func run(ctx context.Context, w io.Writer, o options) error {
	if o.serve != "" {
		return serveFleet(ctx, w, o)
	}
	if o.watch <= 0 {
		rep, err := collect(o)
		if err != nil {
			return err
		}
		return render(w, o, rep)
	}
	for {
		rep, err := collect(o)
		if err != nil {
			return err
		}
		// Cursor-home plus clear-to-end keeps a terminal watch stable
		// without erasing scrollback; piped output just sees the codes
		// as frame separators.
		fmt.Fprint(w, "\033[H\033[J")
		if err := render(w, o, rep); err != nil {
			return err
		}
		if err := sleep(ctx, o.watch); err != nil {
			return nil // interrupted watch is a clean exit
		}
	}
}

// serveFleet mounts the obs.Live plane over a registry refreshed from a
// fresh fleet report on every scrape, so Prometheus always sees current
// memcontention_fleet_* values.
func serveFleet(ctx context.Context, w io.Writer, o options) error {
	// Fail fast on an unreadable campaign before binding the listener.
	rep, err := collect(o)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	rep.Publish(reg)
	probe := &obs.Probe{}
	probe.SetReady(true)
	live := &obs.Live{
		Registry: reg,
		Probe:    probe,
		OnScrape: func() {
			if rep, err := collect(o); err == nil {
				rep.Publish(reg)
			}
		},
	}
	ln, err := net.Listen("tcp", o.serve)
	if err != nil {
		return fmt.Errorf("memtop: listen %s: %w", o.serve, err)
	}
	fmt.Fprintf(w, "memtop: serving fleet metrics on %s\n", ln.Addr())
	srv := &http.Server{Handler: live.Handler()}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		probe.SetReady(false)
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return fmt.Errorf("memtop: shutdown: %w", err)
		}
		return nil
	case err := <-done:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return fmt.Errorf("memtop: serve: %w", err)
	}
}

// sleep waits for d, honoring ctx.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
