package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"memcontention/internal/campaign"
	"memcontention/internal/lease"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// fixedClock is a frozen manual clock: every age in the report reads 0
// and every timestamp is the same instant, which is what makes the
// golden files byte-stable.
type fixedClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFixedClock() *fixedClock {
	return &fixedClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fixedClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// goldenCampaign drains one remote campaign under a frozen clock and a
// pinned owner identity, so every byte memtop renders is reproducible.
func goldenCampaign(t *testing.T) (string, *fixedClock) {
	t.Helper()
	clk := newFixedClock()
	dir := filepath.Join(t.TempDir(), "campaign")
	opts := campaign.RemoteOptions{
		Dir:    dir,
		Shards: 4,
		Lease: lease.Config{
			TTL:       time.Second,
			Heartbeat: 100 * time.Millisecond,
			Grace:     -1,
			Clock:     clk.Now,
			Owner:     lease.Owner{Host: "goldenhost", PID: 7, Token: "aaaa0000"},
		},
		Sleep: func(ctx context.Context, d time.Duration) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			time.Sleep(time.Millisecond)
			return nil
		},
	}
	rep, err := campaign.RemoteWorker(campaign.Config{Seed: 1}, opts, []string{"henri", "henri-subnuma"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drained || rep.ObsErrors != 0 {
		t.Fatalf("golden campaign did not drain cleanly: %+v", rep)
	}
	return dir, clk
}

// render drives run() one-shot and returns the output with the
// temp-directory path normalised, so goldens are machine-independent.
func renderGolden(t *testing.T, o options, dir string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(context.Background(), &out, o); err != nil {
		t.Fatalf("run: %v", err)
	}
	return strings.ReplaceAll(out.String(), dir, "CAMPAIGN_DIR")
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from golden %s (run with -update after intended changes):\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

// TestMemtopGolden pins all three render modes byte for byte against
// testdata/. Refresh with `go test ./cmd/memtop -run Golden -update`.
func TestMemtopGolden(t *testing.T) {
	dir, clk := goldenCampaign(t)
	base := options{dir: dir, ttl: time.Second, grace: -1, clock: clk.Now}

	text := base
	checkGolden(t, "drained.txt", renderGolden(t, text, dir))

	jsonOpts := base
	jsonOpts.jsonOut = true
	checkGolden(t, "drained.json", renderGolden(t, jsonOpts, dir))

	events := base
	events.events = true
	checkGolden(t, "drained.events", renderGolden(t, events, dir))
}

func TestMemtopParseFlags(t *testing.T) {
	newFS := func() *flag.FlagSet {
		fs := flag.NewFlagSet("memtop", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		return fs
	}
	if _, err := parseFlags(newFS(), nil); err == nil {
		t.Error("missing -dir accepted")
	}
	if _, err := parseFlags(newFS(), []string{"-dir", "run", "stray"}); err == nil {
		t.Error("stray positional argument accepted")
	}
	if _, err := parseFlags(newFS(), []string{"-dir", "run", "-json", "-events"}); err == nil {
		t.Error("-json with -events accepted")
	}
	o, err := parseFlags(newFS(), []string{"-dir", "run", "-watch", "2s", "-lease-ttl", "3s"})
	if err != nil {
		t.Fatal(err)
	}
	if o.dir != "run" || o.watch != 2*time.Second || o.ttl != 3*time.Second {
		t.Fatalf("parsed options: %+v", o)
	}
}

func TestMemtopMissingCampaignFails(t *testing.T) {
	o := options{dir: filepath.Join(t.TempDir(), "nope")}
	if err := run(context.Background(), io.Discard, o); err == nil {
		t.Fatal("memtop ran against a directory with no campaign")
	}
}

// syncBuffer lets the serve test read run()'s output while it is still
// being written from another goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestMemtopServe mounts the live plane on an ephemeral port and
// scrapes it: the fleet gauges must be present and the health endpoints
// answering.
func TestMemtopServe(t *testing.T) {
	dir, clk := goldenCampaign(t)
	o := options{dir: dir, ttl: time.Second, grace: -1, clock: clk.Now, serve: "127.0.0.1:0"}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() { done <- run(ctx, &out, o) }()

	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; output: %q", out.String())
		}
		if s := out.String(); strings.Contains(s, "serving fleet metrics on ") {
			line := s[strings.Index(s, "on ")+3:]
			addr = strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"memcontention_fleet_units ",
		"memcontention_fleet_units_done ",
		`memcontention_fleet_workers{state="drained"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}
	ready, err := http.Get(fmt.Sprintf("http://%s/readyz", addr))
	if err != nil {
		t.Fatal(err)
	}
	ready.Body.Close()
	if ready.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", ready.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
}
