// Command memworker is one worker process of a remote multi-process
// campaign (docs/campaigns.md, "Remote campaigns"). Several memworker
// processes — started independently, on one machine or on several
// sharing a filesystem — rendezvous on a campaign directory, split its
// shards via lease files (internal/lease), and journal completed units
// into epoch-suffixed shard journals. There is no coordinator: a worker
// that dies simply stops heartbeating and any survivor takes its shards
// over after the lease TTL.
//
// Usage:
//
//	memworker -dir run/                 # join (or start) the campaign in run/
//	memworker -dir run/ -seed 7 -platforms henri,dahu -shard-count 4
//	                                    # pin parameters when starting fresh
//	memworker -dir run/ -lease-ttl 30s -heartbeat 5s
//	memworker -dir run/ -merge -out results/
//	                                    # finalize: wait, merge, write artifacts
//
// The first worker to touch the directory writes campaign.json pinning
// (seed, platforms, shards, replications); joining workers inherit it,
// and explicitly conflicting flags are rejected with the exact
// disagreement. SIGINT/SIGTERM shuts down in two stages: the first
// signal stops at the next unit boundary and releases all held leases
// (successors claim them immediately, no TTL wait); a second signal
// exits right away with status 130 — completed units are already
// fsynced and the abandoned leases expire on their own.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"memcontention/internal/campaign"
	"memcontention/internal/checkpoint"
	"memcontention/internal/lease"
	"memcontention/internal/topology"
)

// options are memworker's parsed command-line inputs.
type options struct {
	dir          string
	seed         uint64
	platforms    string
	shards       int
	replications int
	ttl          time.Duration
	heartbeat    time.Duration
	merge        bool
	out          string
	unitDelay    time.Duration

	// set records which flags were given explicitly, so a joining
	// worker only argues with the manifest about values the user
	// actually asked for.
	set map[string]bool
}

func main() {
	o, err := parseFlags(flag.CommandLine, os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "memworker:", err)
		os.Exit(2)
	}
	ctx, stop := checkpoint.SignalContext()
	err = run(ctx, os.Stdout, o)
	stop()
	if code := checkpoint.Report(os.Stderr, "memworker", err); code != 0 {
		os.Exit(code)
	}
}

// parseFlags registers and parses the flag set; split from main so tests
// can drive it.
func parseFlags(fs *flag.FlagSet, args []string) (options, error) {
	var o options
	fs.StringVar(&o.dir, "dir", "", "campaign directory (required): shard journals, leases/, campaign.json")
	fs.Uint64Var(&o.seed, "seed", 1, "measurement noise seed (pinned by campaign.json once the campaign exists)")
	fs.StringVar(&o.platforms, "platforms", "", "comma-separated platform names (default: the full testbed; pinned by campaign.json)")
	fs.IntVar(&o.shards, "shard-count", 0, "number of shards (0: GOMAXPROCS; pinned by campaign.json)")
	fs.IntVar(&o.replications, "replications", 1, "Monte-Carlo replication sweep width (pinned by campaign.json)")
	fs.DurationVar(&o.ttl, "lease-ttl", 0, "lease time-to-live: how long after its last heartbeat a worker is presumed dead (default 15s)")
	fs.DurationVar(&o.heartbeat, "heartbeat", 0, "lease renewal interval (default TTL/5; must be < TTL/3)")
	fs.BoolVar(&o.merge, "merge", false, "finalize instead of working: wait for every unit, merge all shard journals, assemble artifacts")
	fs.StringVar(&o.out, "out", "", "with -merge: write the pipeline artifacts into this directory")
	fs.DurationVar(&o.unitDelay, "unit-delay", 0, "test throttle: sleep this long before each unit (gives kill-based harnesses a window)")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	o.set = map[string]bool{}
	fs.Visit(func(f *flag.Flag) { o.set[f.Name] = true })
	if o.dir == "" {
		return o, fmt.Errorf("-dir is required: the campaign directory is the rendezvous point")
	}
	if fs.NArg() > 0 {
		return o, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	return o, nil
}

// manifestWant assembles the manifest this invocation asks for: the
// existing campaign.json where present (the campaign's authority),
// overridden only by flags the user passed explicitly — so joining with
// plain `memworker -dir run/` always agrees, while an explicit
// conflicting flag is rejected by EnsureManifest with the exact field.
func manifestWant(o options) (campaign.Manifest, error) {
	want := campaign.Manifest{
		Seed:         o.seed,
		Platforms:    splitPlatforms(o.platforms),
		Shards:       o.shards,
		Replications: normReplications(o.replications),
	}
	have, err := campaign.LoadManifest(o.dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			if len(want.Platforms) == 0 {
				want.Platforms = campaign.TestbedNames()
			}
			return want, nil
		}
		return campaign.Manifest{}, err
	}
	if !o.set["seed"] {
		want.Seed = have.Seed
	}
	if !o.set["platforms"] {
		want.Platforms = have.Platforms
	}
	if !o.set["shard-count"] || o.shards == 0 {
		want.Shards = have.Shards
	}
	if !o.set["replications"] {
		want.Replications = have.Replications
	}
	return want, nil
}

// splitPlatforms parses the -platforms list ("" means default testbed).
func splitPlatforms(s string) []string {
	if s == "" {
		return nil
	}
	var names []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// normReplications maps the CLI convention (0 and 1 both mean a single
// replication) onto the manifest's canonical form.
func normReplications(r int) int {
	if r <= 1 {
		return 0
	}
	return r
}

// run executes the worker (or finalizer) core; split from main so tests
// can drive the full logic with their own context and output sink.
func run(ctx context.Context, w io.Writer, o options) error {
	want, err := manifestWant(o)
	if err != nil {
		return err
	}
	for _, name := range want.Platforms {
		if _, err := topology.ByName(name); err != nil {
			return err
		}
	}
	// Validate the liveness flags up front: Validate applies the
	// documented defaults first, so only explicitly bad values (e.g.
	// -heartbeat >= TTL/3) land here, as structured lease.ConfigError
	// values naming the offending field.
	lcfg := lease.Config{Dir: filepath.Join(o.dir, campaign.LeaseDir), TTL: o.ttl, Heartbeat: o.heartbeat}
	if err := lcfg.Validate(); err != nil {
		return err
	}
	cfg := campaign.Config{Seed: want.Seed, Replications: want.Replications, Context: ctx}
	opts := campaign.RemoteOptions{Dir: o.dir, Shards: want.Shards, Lease: lcfg}
	if o.unitDelay > 0 {
		opts.UnitStart = func(shard int, key string) { time.Sleep(o.unitDelay) }
	}

	if o.merge {
		return runMerge(w, cfg, opts, want, o.out)
	}
	rep, err := campaign.RemoteWorker(cfg, opts, want.Platforms)
	if rep != nil {
		fmt.Fprintf(w, "memworker %s: %d units across %d claims, %d fenced, drained=%v\n",
			rep.Owner, rep.Units, len(rep.Claimed), rep.Fenced, rep.Drained)
		if rep.ObsErrors > 0 {
			fmt.Fprintf(w, "memworker: warning: %d beacon/event writes failed; the fleet view of this worker is incomplete\n",
				rep.ObsErrors)
		}
	}
	return err
}

// runMerge is the finalize path: wait for completion, merge every epoch
// of every shard, replay the sequential assembly, optionally write the
// artifact files.
func runMerge(w io.Writer, cfg campaign.Config, opts campaign.RemoteOptions, want campaign.Manifest, out string) error {
	res, err := campaign.RemoteMerge(cfg, opts, want.Platforms)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "memworker: merged campaign %s (%d platforms, seed %d)\n",
		opts.Dir, len(want.Platforms), want.Seed)
	if art := res.Artifacts; art != nil && art.Replications != nil {
		if err := art.Replications.Table().WriteText(w); err != nil {
			return err
		}
	}
	if out != "" {
		if err := res.Artifacts.Write(out); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote artifacts to %s\n", out)
	}
	return nil
}
