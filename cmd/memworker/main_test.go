package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"memcontention/internal/campaign"
	"memcontention/internal/lease"
)

func parse(t *testing.T, args ...string) options {
	t.Helper()
	fs := flag.NewFlagSet("memworker", flag.ContinueOnError)
	o, err := parseFlags(fs, args)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestParseFlags(t *testing.T) {
	if _, err := parseFlags(flag.NewFlagSet("memworker", flag.ContinueOnError), nil); err == nil {
		t.Fatal("missing -dir must be rejected")
	}
	if _, err := parseFlags(flag.NewFlagSet("memworker", flag.ContinueOnError), []string{"-dir", "x", "stray"}); err == nil {
		t.Fatal("stray positional arguments must be rejected")
	}
	o := parse(t, "-dir", "run", "-seed", "7", "-platforms", "henri, dahu", "-lease-ttl", "30s")
	if !o.set["seed"] || !o.set["platforms"] || o.set["shard-count"] {
		t.Fatalf("explicit-flag tracking wrong: %v", o.set)
	}
	if got := splitPlatforms(o.platforms); len(got) != 2 || got[0] != "henri" || got[1] != "dahu" {
		t.Fatalf("splitPlatforms = %v", got)
	}
	if o.ttl != 30*time.Second {
		t.Fatalf("ttl = %v", o.ttl)
	}
}

func TestRunRejectsBadLeaseFlags(t *testing.T) {
	o := parse(t, "-dir", t.TempDir(), "-lease-ttl", "1s", "-heartbeat", "500ms")
	err := run(context.Background(), &bytes.Buffer{}, o)
	var cerr *lease.ConfigError
	if !errors.As(err, &cerr) || cerr.Field != "Heartbeat" {
		t.Fatalf("got %v, want lease.ConfigError{Field: Heartbeat}", err)
	}
}

func TestRunRejectsUnknownPlatform(t *testing.T) {
	o := parse(t, "-dir", t.TempDir(), "-platforms", "not-a-platform")
	if err := run(context.Background(), &bytes.Buffer{}, o); err == nil {
		t.Fatal("unknown platform must be rejected before any lease is taken")
	}
}

// TestWorkerThenMergeProducesArtifacts drives the full memworker flow
// in-process: one worker drains a small campaign, then -merge waits (a
// no-op, everything is done), merges and writes the artifact files.
func TestWorkerThenMergeProducesArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full small campaign")
	}
	dir := filepath.Join(t.TempDir(), "run")
	out := filepath.Join(t.TempDir(), "results")

	var buf bytes.Buffer
	o := parse(t, "-dir", dir, "-platforms", "henri,henri-subnuma", "-shard-count", "2")
	if err := run(context.Background(), &buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "drained=true") {
		t.Fatalf("worker epilogue missing drain: %q", buf.String())
	}

	// Joining flags come from the manifest: a bare -merge needs nothing
	// beyond -dir.
	buf.Reset()
	om := parse(t, "-dir", dir, "-merge", "-out", out)
	if err := run(context.Background(), &buf, om); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table2.txt", "table2.json", "netbench.json", "crosscheck.json"} {
		if _, err := os.Stat(filepath.Join(out, name)); err != nil {
			t.Errorf("artifact %s: %v", name, err)
		}
	}

	// A conflicting explicit flag is rejected with the exact field.
	oc := parse(t, "-dir", dir, "-seed", "99")
	err := run(context.Background(), &bytes.Buffer{}, oc)
	var mm *campaign.ManifestMismatchError
	if !errors.As(err, &mm) || mm.Field != "seed" {
		t.Fatalf("got %v, want ManifestMismatchError{Field: seed}", err)
	}
}

// TestCancelExitsGracefully: a canceled context (the first SIGINT under
// checkpoint.SignalContext) surfaces as a cancellation error — mapped
// to exit status 130 by checkpoint.Report — with all leases released.
func TestCancelExitsGracefully(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := parse(t, "-dir", dir, "-platforms", "henri")
	err := run(ctx, &bytes.Buffer{}, o)
	if err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("got %v, want a context cancellation", err)
	}
	if matches, _ := filepath.Glob(filepath.Join(dir, campaign.LeaseDir, "*.lease")); len(matches) != 0 {
		t.Fatalf("canceled worker left lease files: %v", matches)
	}
}

func TestManifestWantInheritsExisting(t *testing.T) {
	dir := t.TempDir()
	if _, err := campaign.EnsureManifest(dir, campaign.Manifest{
		Seed: 7, Platforms: []string{"dahu"}, Shards: 3, Replications: 0,
	}); err != nil {
		t.Fatal(err)
	}
	// A bare join inherits everything.
	o := parse(t, "-dir", dir)
	want, err := manifestWant(o)
	if err != nil {
		t.Fatal(err)
	}
	if want.Seed != 7 || want.Shards != 3 || len(want.Platforms) != 1 || want.Platforms[0] != "dahu" {
		t.Fatalf("inherited manifest = %+v", want)
	}
	// An explicit matching flag is fine; only its own field is pinned.
	o = parse(t, "-dir", dir, "-seed", "7")
	if want, err = manifestWant(o); err != nil || want.Seed != 7 || want.Shards != 3 {
		t.Fatalf("explicit matching seed: %+v, %v", want, err)
	}
}
