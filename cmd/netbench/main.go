// Command netbench runs the ping-pong message-size sweep (experiment E14)
// over the simulated fabric, printing the classic latency→bandwidth curve
// MPI benchmark suites report.
//
// Usage:
//
//	netbench -platform henri
//	netbench -platform diablo -node 1 -iters 8
//	netbench -platform henri -metrics m.prom -manifest run.json
package main

import (
	"flag"
	"fmt"
	"os"

	"memcontention/internal/export"
	"memcontention/internal/netbench"
	"memcontention/internal/obs"
	"memcontention/internal/topology"
)

func main() {
	platform := flag.String("platform", "henri", "built-in platform name")
	node := flag.Int("node", 0, "NUMA node holding the buffers on both machines")
	iters := flag.Int("iters", 4, "round trips per message size")
	csvOut := flag.Bool("csv", false, "emit CSV")
	var cli obs.CLI
	cli.Register(flag.CommandLine, false)
	flag.Parse()

	if err := run(*platform, *node, *iters, *csvOut, &cli); err != nil {
		fmt.Fprintln(os.Stderr, "netbench:", err)
		os.Exit(1)
	}
}

func run(platform string, node, iters int, csvOut bool, cli *obs.CLI) error {
	if err := cli.Start(); err != nil {
		return err
	}
	plat, err := topology.ByName(platform)
	if err != nil {
		return err
	}
	reg := cli.NewRegistry()
	points, err := netbench.PingPong(netbench.Config{
		Platform:   plat,
		Node:       topology.NodeID(node),
		Iterations: iters,
		Registry:   reg,
	})
	if err != nil {
		return err
	}
	t := export.NewTable(
		fmt.Sprintf("Ping-pong on 2 × %s, buffers on node %d (%d round trips per size)", platform, node, iters),
		"size", "half RTT (µs)", "bandwidth (GB/s)",
	)
	for _, p := range points {
		t.AddRow(p.Size.String(), fmt.Sprintf("%.2f", p.HalfRTT*1e6), export.GBs(p.Bandwidth))
	}
	if csvOut {
		if err := t.WriteCSV(os.Stdout); err != nil {
			return err
		}
	} else if err := t.WriteText(os.Stdout); err != nil {
		return err
	}
	man := obs.NewManifest("netbench")
	man.Platform = plat.Name
	man.Args = os.Args[1:]
	man.Notes = map[string]string{
		"node":       fmt.Sprint(node),
		"iterations": fmt.Sprint(iters),
	}
	return cli.Finish(reg, nil, man)
}
