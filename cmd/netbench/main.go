// Command netbench runs the ping-pong message-size sweep (experiment E14)
// over the simulated fabric, printing the classic latency→bandwidth curve
// MPI benchmark suites report.
//
// Usage:
//
//	netbench -platform henri
//	netbench -platform diablo -node 1 -iters 8
//	netbench -platform henri -metrics m.prom -manifest run.json
//
// With -checkpoint each completed message size is journaled durably;
// SIGINT/SIGTERM stops the sweep cleanly (exit status 130) and the same
// command resumes it (see docs/resilience.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"memcontention/internal/checkpoint"
	"memcontention/internal/export"
	"memcontention/internal/netbench"
	"memcontention/internal/obs"
	"memcontention/internal/topology"
)

func main() {
	platform := flag.String("platform", "henri", "built-in platform name")
	node := flag.Int("node", 0, "NUMA node holding the buffers on both machines")
	iters := flag.Int("iters", 4, "round trips per message size")
	csvOut := flag.Bool("csv", false, "emit CSV")
	var cli obs.CLI
	cli.Register(flag.CommandLine, false)
	var ckpt checkpoint.CLI
	ckpt.Register(flag.CommandLine)
	flag.Parse()

	ctx, stop := checkpoint.SignalContext()
	err := run(ctx, os.Stdout, *platform, *node, *iters, *csvOut, &ckpt, &cli)
	stop()
	if code := checkpoint.Report(os.Stderr, "netbench", err); code != 0 {
		os.Exit(code)
	}
}

// run opens the journal and executes the sweep; split from main so tests
// can drive the full command logic with their own context and journal.
func run(ctx context.Context, w io.Writer, platform string, node, iters int, csvOut bool, ckpt *checkpoint.CLI, cli *obs.CLI) error {
	if err := cli.Start(); err != nil {
		return err
	}
	plat, err := topology.ByName(platform)
	if err != nil {
		return err
	}
	j, err := ckpt.Open()
	if err != nil {
		return err
	}
	defer j.Close()
	reg := cli.NewRegistry()
	j.SetRegistry(reg)
	points, err := netbench.PingPong(netbench.Config{
		Platform:   plat,
		Node:       topology.NodeID(node),
		Iterations: iters,
		Registry:   reg,
		Context:    ctx,
		Journal:    j,
	})
	if err != nil {
		return err
	}
	t := export.NewTable(
		fmt.Sprintf("Ping-pong on 2 × %s, buffers on node %d (%d round trips per size)", platform, node, iters),
		"size", "half RTT (µs)", "bandwidth (GB/s)",
	)
	for _, p := range points {
		t.AddRow(p.Size.String(), fmt.Sprintf("%.2f", p.HalfRTT*1e6), export.GBs(p.Bandwidth))
	}
	if csvOut {
		if err := t.WriteCSV(w); err != nil {
			return err
		}
	} else if err := t.WriteText(w); err != nil {
		return err
	}
	man := obs.NewManifest("netbench")
	man.Platform = plat.Name
	man.Args = os.Args[1:]
	man.Notes = map[string]string{
		"node":       fmt.Sprint(node),
		"iterations": fmt.Sprint(iters),
	}
	return cli.Finish(reg, nil, man)
}
