// Command paperfigs regenerates every table and figure of the paper's
// evaluation section from the simulated testbed:
//
//	Table I   — platform characteristics
//	Table II  — model prediction errors
//	Figure 2  — stacked bandwidths (henri-subnuma, both streams local)
//	Figures 3–8 — per-platform measured + predicted curves
//
// Usage:
//
//	paperfigs                  # everything, text to stdout
//	paperfigs -table 2         # just Table II
//	paperfigs -fig 4           # just Figure 4 (CSV to stdout)
//	paperfigs -out results/    # write all artifacts as files (CSV/JSON/txt)
//
// With -checkpoint the evaluations are crash-safe (see docs/resilience.md):
// every completed placement curve and platform evaluation is journaled,
// SIGINT/SIGTERM stops the run cleanly (exit status 130), and re-running
// the same command resumes where it died with bit-identical artifacts
// (files under -out are also written atomically and durably).
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"memcontention/internal/atomicio"
	"memcontention/internal/bench"
	"memcontention/internal/campaign"
	"memcontention/internal/checkpoint"
	"memcontention/internal/eval"
	"memcontention/internal/export"
	"memcontention/internal/model"
	"memcontention/internal/obs"
	"memcontention/internal/plot"
	"memcontention/internal/report"
	"memcontention/internal/topology"
)

func main() {
	table := flag.Int("table", 0, "emit only this table (1 or 2)")
	fig := flag.Int("fig", 0, "emit only this figure (2..8)")
	out := flag.String("out", "", "write artifacts into this directory instead of stdout")
	seed := flag.Uint64("seed", 1, "measurement noise seed")
	workers := flag.Int("workers", 0, "parallel evaluations (0: GOMAXPROCS)")
	ascii := flag.Bool("plot", false, "render figures as ASCII charts instead of CSV")
	var cli obs.CLI
	cli.Register(flag.CommandLine, false)
	var ckpt checkpoint.CLI
	ckpt.Register(flag.CommandLine)
	flag.Parse()

	ctx, stop := checkpoint.SignalContext()
	err := run(ctx, os.Stdout, *table, *fig, *out, *seed, *workers, *ascii, &ckpt, &cli)
	stop()
	if code := checkpoint.Report(os.Stderr, "paperfigs", err); code != 0 {
		os.Exit(code)
	}
}

// figPlatform maps figure numbers to platforms.
var figPlatform = map[int]string{
	2: "henri-subnuma",
	3: "henri",
	4: "henri-subnuma",
	5: "diablo",
	6: "occigen",
	7: "pyxis",
	8: "dahu",
}

// run opens the journal and executes the command core; split from main so
// tests can drive the full logic with their own context, journal and
// output sink.
func run(ctx context.Context, w io.Writer, table, fig int, out string, seed uint64, workers int, ascii bool, ckpt *checkpoint.CLI, cli *obs.CLI) error {
	if err := cli.Start(); err != nil {
		return err
	}
	j, err := ckpt.Open()
	if err != nil {
		return err
	}
	defer j.Close()
	reg := cli.NewRegistry()
	j.SetRegistry(reg)
	man := obs.NewManifest("paperfigs")
	man.Seed = seed
	man.Args = os.Args[1:]
	if err := dispatch(ctx, w, table, fig, out, seed, workers, ascii, j, reg); err != nil {
		// A graceful shutdown still flushes telemetry: the journal
		// already holds every completed unit.
		if checkpoint.IsCanceled(err) {
			_ = cli.Finish(reg, nil, man)
		}
		return err
	}
	return cli.Finish(reg, nil, man)
}

// dispatch renders the requested artifacts, recording telemetry into reg
// (shared by the parallel evaluations; nil disables instrumentation) and
// checkpointing completed units in j (nil disables checkpointing).
func dispatch(ctx context.Context, w io.Writer, table, fig int, out string, seed uint64, workers int, ascii bool, j *checkpoint.Journal, reg *obs.Registry) error {
	if table == 1 {
		return eval.Table1(topology.Testbed()).WriteText(w)
	}
	// Everything else needs evaluations; run them in parallel.
	need := map[string]bool{}
	switch {
	case table == 2:
		for _, p := range topology.Testbed() {
			need[p.Name] = true
		}
	case fig != 0:
		name, ok := figPlatform[fig]
		if !ok {
			return fmt.Errorf("unknown figure %d (valid: 2..8)", fig)
		}
		need[name] = true
	default:
		for _, p := range topology.Testbed() {
			need[p.Name] = true
		}
	}
	var names []string
	for _, p := range topology.Testbed() { // stable Table I order
		if need[p.Name] {
			names = append(names, p.Name)
		}
	}
	results, err := campaign.EvaluatePlatforms(campaign.Config{
		Seed:     seed,
		Workers:  workers,
		Context:  ctx,
		Journal:  j,
		Registry: reg,
	}, names)
	if err != nil {
		return err
	}
	byName := map[string]*eval.PlatformResult{}
	for _, r := range results {
		byName[r.Platform] = r
	}

	switch {
	case table == 2:
		return eval.Table2(results).WriteText(w)
	case fig == 2:
		st, err := eval.StackedFor(byName["henri-subnuma"], model.Placement{Comp: 0, Comm: 0})
		if err != nil {
			return err
		}
		return st.WriteCSV(w)
	case fig != 0:
		r := byName[figPlatform[fig]]
		figure := eval.FigureFor(fmt.Sprintf("figure%d", fig), r)
		if ascii {
			return writeASCII(w, figure)
		}
		return figure.WriteCSV(w)
	case out != "":
		return writeAll(w, out, results, byName)
	default:
		return printAll(w, results, byName)
	}
}

// writeASCII renders each subplot of a figure as two terminal charts
// (communications and computations), the way the paper shows dual-axis
// panels.
func writeASCII(w io.Writer, figure *eval.Figure) error {
	for _, sp := range figure.Subplots {
		var commAlone, commPar, predComm, compAlone, compPar, predComp []float64
		for _, p := range sp.Points {
			commAlone = append(commAlone, p.CommAlone)
			commPar = append(commPar, p.CommPar)
			predComm = append(predComm, p.PredComm)
			compAlone = append(compAlone, p.CompAlone)
			compPar = append(compPar, p.CompPar)
			predComp = append(predComp, p.PredComp)
		}
		tag := ""
		if sp.IsSample {
			tag = "  [calibration sample]"
		}
		commChart := plot.New(fmt.Sprintf("%s %v — communications (GB/s)%s", figure.Platform, sp.Placement, tag)).
			Add(plot.Series{Name: "alone", Y: commAlone, Marker: 'o'}).
			Add(plot.Series{Name: "parallel", Y: commPar, Marker: 'v'}).
			Add(plot.Series{Name: "model", Y: predComm, Marker: '+'})
		compChart := plot.New(fmt.Sprintf("%s %v — computations (GB/s)", figure.Platform, sp.Placement)).
			Add(plot.Series{Name: "alone", Y: compAlone, Marker: 'o'}).
			Add(plot.Series{Name: "parallel", Y: compPar, Marker: 'v'}).
			Add(plot.Series{Name: "model", Y: predComp, Marker: '+'})
		if _, err := fmt.Fprintf(w, "%s\n%s\n", commChart.Render(), compChart.Render()); err != nil {
			return err
		}
	}
	return nil
}

func printAll(w io.Writer, results []*eval.PlatformResult, byName map[string]*eval.PlatformResult) error {
	if err := eval.Table1(topology.Testbed()).WriteText(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := eval.Table2(results).WriteText(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	st, err := eval.StackedFor(byName["henri-subnuma"], model.Placement{Comp: 0, Comm: 0})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "FIGURE 2 — stacked bandwidths (henri-subnuma, comp@0/comm@0):")
	if err := st.WriteCSV(w); err != nil {
		return err
	}
	for figNo := 3; figNo <= 8; figNo++ {
		r := byName[figPlatform[figNo]]
		fmt.Fprintf(w, "\nFIGURE %d — %s:\n", figNo, r.Platform)
		if err := eval.FigureFor(fmt.Sprintf("figure%d", figNo), r).WriteCSV(w); err != nil {
			return err
		}
	}
	return nil
}

func writeAll(w io.Writer, dir string, results []*eval.PlatformResult, byName map[string]*eval.PlatformResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Artifacts are rendered in memory and written atomically + durably
	// (temp file + fsync + rename): a crash mid-write never leaves a
	// torn or half-written result file behind.
	write := func(name string, fn func(f io.Writer) error) error {
		var buf bytes.Buffer
		if err := fn(&buf); err != nil {
			return err
		}
		return atomicio.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644)
	}
	if err := write("table1.txt", func(f io.Writer) error {
		return eval.Table1(topology.Testbed()).WriteText(f)
	}); err != nil {
		return err
	}
	if err := write("table2.txt", func(f io.Writer) error {
		return eval.Table2(results).WriteText(f)
	}); err != nil {
		return err
	}
	if err := write("table2.json", func(f io.Writer) error {
		return export.WriteJSON(f, results)
	}); err != nil {
		return err
	}
	st, err := eval.StackedFor(byName["henri-subnuma"], model.Placement{Comp: 0, Comm: 0})
	if err != nil {
		return err
	}
	if err := write("figure2.csv", st.WriteCSV); err != nil {
		return err
	}
	for figNo := 3; figNo <= 8; figNo++ {
		r := byName[figPlatform[figNo]]
		fig := eval.FigureFor(fmt.Sprintf("figure%d", figNo), r)
		if err := write(fmt.Sprintf("figure%d.csv", figNo), fig.WriteCSV); err != nil {
			return err
		}
	}
	for _, r := range results {
		r := r
		if err := write("report-"+r.Platform+".txt", func(f io.Writer) error {
			plat, err := topology.ByName(r.Platform)
			if err != nil {
				return err
			}
			runner, err := bench.NewRunner(bench.Config{Platform: plat, Seed: 1})
			if err != nil {
				return err
			}
			return report.Write(f, r, runner)
		}); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "wrote artifacts to %s\n", dir)
	return nil
}
