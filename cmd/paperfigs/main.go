// Command paperfigs regenerates every table and figure of the paper's
// evaluation section from the simulated testbed:
//
//	Table I   — platform characteristics
//	Table II  — model prediction errors
//	Figure 2  — stacked bandwidths (henri-subnuma, both streams local)
//	Figures 3–8 — per-platform measured + predicted curves
//
// Usage:
//
//	paperfigs                  # everything, text to stdout
//	paperfigs -table 2         # just Table II
//	paperfigs -fig 4           # just Figure 4 (CSV to stdout)
//	paperfigs -out results/    # write all artifacts as files (CSV/JSON/txt)
//	paperfigs -table 2 -replications 10   # Table II as mean ± 95% CI over 10 seeds
//	paperfigs -workers 8 -shards run.shards -out results/
//	                           # supervised sharded executor (docs/campaigns.md)
//	paperfigs -workers remote -shards run/ -out results/
//	                           # finalize a memworker fleet's remote campaign
//
// With -checkpoint the evaluations are crash-safe (see docs/resilience.md):
// every completed placement curve and platform evaluation is journaled,
// SIGINT/SIGTERM stops the run cleanly (exit status 130; a second signal
// exits immediately), and re-running the same command resumes where it
// died with bit-identical artifacts (files under -out are also written
// atomically and durably). With -shards the run instead journals into
// per-worker shard journals under the given directory, supervised by a
// restarting worker pool with poison-unit quarantine — the same resume
// and byte-identity guarantees, but parallel (see docs/campaigns.md).
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"memcontention/internal/atomicio"
	"memcontention/internal/bench"
	"memcontention/internal/campaign"
	"memcontention/internal/checkpoint"
	"memcontention/internal/eval"
	"memcontention/internal/export"
	"memcontention/internal/model"
	"memcontention/internal/obs"
	"memcontention/internal/plot"
	"memcontention/internal/report"
	"memcontention/internal/topology"
)

// options are paperfigs' parsed command-line inputs.
type options struct {
	table, fig   int
	out          string
	seed         uint64
	seedSet      bool // -seed given explicitly (pins a remote campaign's seed)
	workers      int
	remote       bool
	replications int
	shards       string
	ascii        bool
}

func main() {
	var o options
	flag.IntVar(&o.table, "table", 0, "emit only this table (1 or 2)")
	flag.IntVar(&o.fig, "fig", 0, "emit only this figure (2..8)")
	flag.StringVar(&o.out, "out", "", "write artifacts into this directory instead of stdout")
	flag.Uint64Var(&o.seed, "seed", 1, "measurement noise seed")
	var workersFlag string
	flag.StringVar(&workersFlag, "workers", "0", `parallel evaluations (0: GOMAXPROCS), or "remote": finalize a lease-coordinated multi-process campaign in -shards (docs/campaigns.md)`)
	flag.IntVar(&o.replications, "replications", 1, "Monte-Carlo replication sweep: evaluate this many consecutive seeds and report Table II errors as mean ± 95% CI")
	flag.StringVar(&o.shards, "shards", "", "run the evaluations on the supervised sharded executor, journaling per-worker shards into this directory (crash-safe, resumable; see docs/campaigns.md)")
	flag.BoolVar(&o.ascii, "plot", false, "render figures as ASCII charts instead of CSV")
	var cli obs.CLI
	cli.Register(flag.CommandLine, false)
	var ckpt checkpoint.CLI
	ckpt.Register(flag.CommandLine)
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			o.seedSet = true
		}
	})
	var perr error
	if o.workers, o.remote, perr = campaign.ParseWorkers(workersFlag); perr != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", perr)
		os.Exit(2)
	}

	ctx, stop := checkpoint.SignalContext()
	err := run(ctx, os.Stdout, o, &ckpt, &cli)
	stop()
	if code := checkpoint.Report(os.Stderr, "paperfigs", err); code != 0 {
		os.Exit(code)
	}
}

// figPlatform maps figure numbers to platforms.
var figPlatform = map[int]string{
	2: "henri-subnuma",
	3: "henri",
	4: "henri-subnuma",
	5: "diablo",
	6: "occigen",
	7: "pyxis",
	8: "dahu",
}

// run opens the journal and executes the command core; split from main so
// tests can drive the full logic with their own context, journal and
// output sink.
func run(ctx context.Context, w io.Writer, o options, ckpt *checkpoint.CLI, cli *obs.CLI) error {
	if err := cli.Start(); err != nil {
		return err
	}
	j, err := ckpt.Open()
	if err != nil {
		return err
	}
	defer j.Close()
	reg := cli.NewRegistry()
	j.SetRegistry(reg)
	man := obs.NewManifest("paperfigs")
	man.Seed = o.seed
	man.Args = os.Args[1:]
	if err := dispatch(ctx, w, o, j, reg); err != nil {
		// A graceful shutdown still flushes telemetry: the journal
		// already holds every completed unit.
		if checkpoint.IsCanceled(err) {
			_ = cli.Finish(reg, nil, man)
		}
		return err
	}
	return cli.Finish(reg, nil, man)
}

// dispatch renders the requested artifacts, recording telemetry into reg
// (shared by the parallel evaluations; nil disables instrumentation) and
// checkpointing completed units in j (nil disables checkpointing).
func dispatch(ctx context.Context, w io.Writer, o options, j *checkpoint.Journal, reg *obs.Registry) error {
	if o.table == 1 {
		return eval.Table1(topology.Testbed()).WriteText(w)
	}
	// Everything else needs evaluations; run them in parallel.
	need := map[string]bool{}
	switch {
	case o.table == 2:
		for _, p := range topology.Testbed() {
			need[p.Name] = true
		}
	case o.fig != 0:
		name, ok := figPlatform[o.fig]
		if !ok {
			return fmt.Errorf("unknown figure %d (valid: 2..8)", o.fig)
		}
		need[name] = true
	default:
		for _, p := range topology.Testbed() {
			need[p.Name] = true
		}
	}
	var names []string
	for _, p := range topology.Testbed() { // stable Table I order
		if need[p.Name] {
			names = append(names, p.Name)
		}
	}
	results, rep, err := evaluate(ctx, o, j, reg, names)
	if err != nil {
		return err
	}
	byName := map[string]*eval.PlatformResult{}
	for _, r := range results {
		byName[r.Platform] = r
	}

	switch {
	case o.table == 2:
		if err := eval.Table2(results).WriteText(w); err != nil {
			return err
		}
		return writeReplications(w, rep)
	case o.fig == 2:
		r, err := figureResult(byName, 2, "henri-subnuma")
		if err != nil {
			return err
		}
		st, err := eval.StackedFor(r, model.Placement{Comp: 0, Comm: 0})
		if err != nil {
			return err
		}
		return st.WriteCSV(w)
	case o.fig != 0:
		r, err := figureResult(byName, o.fig, figPlatform[o.fig])
		if err != nil {
			return err
		}
		figure := eval.FigureFor(fmt.Sprintf("figure%d", o.fig), r)
		if o.ascii {
			return writeASCII(w, figure)
		}
		return figure.WriteCSV(w)
	case o.out != "":
		return writeAll(w, o.out, results, byName, rep)
	default:
		if err := printAll(w, results, byName); err != nil {
			return err
		}
		return writeReplications(w, rep)
	}
}

// evaluate runs the needed platform evaluations — on the supervised
// sharded executor when -shards names a journal directory, on the plain
// parallel sweep otherwise — plus the replication sweep when asked.
func evaluate(ctx context.Context, o options, j *checkpoint.Journal, reg *obs.Registry, names []string) ([]*eval.PlatformResult, *campaign.ReplicationSummary, error) {
	cfg := campaign.Config{
		Seed:         o.seed,
		Workers:      o.workers,
		Replications: o.replications,
		Context:      ctx,
		Journal:      j,
		Registry:     reg,
	}
	if o.remote {
		// Finalize a lease-coordinated multi-process campaign: wait for
		// the memworker fleet to journal every unit, merge all epochs,
		// and replay the sequential assembly (docs/campaigns.md). The
		// platform list, seed and replication width come from the
		// campaign's manifest; only explicitly passed flags are pinned
		// against it.
		if o.shards == "" {
			return nil, nil, fmt.Errorf("-workers remote requires -shards <campaign dir>")
		}
		rcfg := cfg
		if !o.seedSet {
			rcfg.Seed = 0 // inherit the manifest's seed
		}
		res, err := campaign.RemoteMerge(rcfg, campaign.RemoteOptions{Dir: o.shards}, nil)
		if err != nil {
			return nil, nil, err
		}
		return res.Artifacts.Platforms, res.Artifacts.Replications, nil
	}
	if o.shards != "" {
		res, err := campaign.ShardedEvaluate(cfg, campaign.ShardOptions{Workers: o.workers, Dir: o.shards}, names)
		if err != nil {
			return nil, nil, err
		}
		var rep *campaign.ReplicationSummary
		if res.Artifacts != nil {
			rep = res.Artifacts.Replications
		}
		return res.Platforms, rep, nil
	}
	results, err := campaign.EvaluatePlatforms(cfg, names)
	if err != nil {
		return nil, nil, err
	}
	var rep *campaign.ReplicationSummary
	if o.replications > 1 {
		if rep, err = campaign.Replicate(cfg, names, results); err != nil {
			return nil, nil, err
		}
	}
	return results, rep, nil
}

// writeReplications renders the replication sweep table (a no-op without
// one).
func writeReplications(w io.Writer, rep *campaign.ReplicationSummary) error {
	if rep == nil {
		return nil
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return rep.Table().WriteText(w)
}

// writeASCII renders each subplot of a figure as two terminal charts
// (communications and computations), the way the paper shows dual-axis
// panels.
func writeASCII(w io.Writer, figure *eval.Figure) error {
	for _, sp := range figure.Subplots {
		var commAlone, commPar, predComm, compAlone, compPar, predComp []float64
		for _, p := range sp.Points {
			commAlone = append(commAlone, p.CommAlone)
			commPar = append(commPar, p.CommPar)
			predComm = append(predComm, p.PredComm)
			compAlone = append(compAlone, p.CompAlone)
			compPar = append(compPar, p.CompPar)
			predComp = append(predComp, p.PredComp)
		}
		tag := ""
		if sp.IsSample {
			tag = "  [calibration sample]"
		}
		commChart := plot.New(fmt.Sprintf("%s %v — communications (GB/s)%s", figure.Platform, sp.Placement, tag)).
			Add(plot.Series{Name: "alone", Y: commAlone, Marker: 'o'}).
			Add(plot.Series{Name: "parallel", Y: commPar, Marker: 'v'}).
			Add(plot.Series{Name: "model", Y: predComm, Marker: '+'})
		compChart := plot.New(fmt.Sprintf("%s %v — computations (GB/s)", figure.Platform, sp.Placement)).
			Add(plot.Series{Name: "alone", Y: compAlone, Marker: 'o'}).
			Add(plot.Series{Name: "parallel", Y: compPar, Marker: 'v'}).
			Add(plot.Series{Name: "model", Y: predComp, Marker: '+'})
		if _, err := fmt.Fprintf(w, "%s\n%s\n", commChart.Render(), compChart.Render()); err != nil {
			return err
		}
	}
	return nil
}

// figureResult looks up the evaluation a figure needs. Sequential and
// sharded runs always evaluate the figure's platform, but a remote
// campaign's platform set comes from its manifest and may not cover it.
func figureResult(byName map[string]*eval.PlatformResult, fig int, platform string) (*eval.PlatformResult, error) {
	if r := byName[platform]; r != nil {
		return r, nil
	}
	return nil, fmt.Errorf("figure %d needs platform %s, which this campaign does not cover", fig, platform)
}

func printAll(w io.Writer, results []*eval.PlatformResult, byName map[string]*eval.PlatformResult) error {
	if err := eval.Table1(topology.Testbed()).WriteText(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := eval.Table2(results).WriteText(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if r := byName["henri-subnuma"]; r != nil {
		st, err := eval.StackedFor(r, model.Placement{Comp: 0, Comm: 0})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "FIGURE 2 — stacked bandwidths (henri-subnuma, comp@0/comm@0):")
		if err := st.WriteCSV(w); err != nil {
			return err
		}
	}
	for figNo := 3; figNo <= 8; figNo++ {
		r := byName[figPlatform[figNo]]
		if r == nil {
			continue // the campaign does not cover this figure's platform
		}
		fmt.Fprintf(w, "\nFIGURE %d — %s:\n", figNo, r.Platform)
		if err := eval.FigureFor(fmt.Sprintf("figure%d", figNo), r).WriteCSV(w); err != nil {
			return err
		}
	}
	return nil
}

func writeAll(w io.Writer, dir string, results []*eval.PlatformResult, byName map[string]*eval.PlatformResult, rep *campaign.ReplicationSummary) error {
	if err := atomicio.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Artifacts are rendered in memory and written atomically + durably
	// (temp file + fsync + rename): a crash mid-write never leaves a
	// torn or half-written result file behind.
	write := func(name string, fn func(f io.Writer) error) error {
		var buf bytes.Buffer
		if err := fn(&buf); err != nil {
			return err
		}
		return atomicio.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644)
	}
	if err := write("table1.txt", func(f io.Writer) error {
		return eval.Table1(topology.Testbed()).WriteText(f)
	}); err != nil {
		return err
	}
	if err := write("table2.txt", func(f io.Writer) error {
		return eval.Table2(results).WriteText(f)
	}); err != nil {
		return err
	}
	if err := write("table2.json", func(f io.Writer) error {
		return export.WriteJSON(f, results)
	}); err != nil {
		return err
	}
	if rep != nil {
		if err := write("replications.txt", func(f io.Writer) error {
			return rep.Table().WriteText(f)
		}); err != nil {
			return err
		}
		if err := write("replications.json", func(f io.Writer) error {
			return export.WriteJSON(f, rep)
		}); err != nil {
			return err
		}
	}
	if r := byName["henri-subnuma"]; r != nil {
		st, err := eval.StackedFor(r, model.Placement{Comp: 0, Comm: 0})
		if err != nil {
			return err
		}
		if err := write("figure2.csv", st.WriteCSV); err != nil {
			return err
		}
	}
	for figNo := 3; figNo <= 8; figNo++ {
		r := byName[figPlatform[figNo]]
		if r == nil {
			continue // the campaign does not cover this figure's platform
		}
		fig := eval.FigureFor(fmt.Sprintf("figure%d", figNo), r)
		if err := write(fmt.Sprintf("figure%d.csv", figNo), fig.WriteCSV); err != nil {
			return err
		}
	}
	for _, r := range results {
		r := r
		if err := write("report-"+r.Platform+".txt", func(f io.Writer) error {
			plat, err := topology.ByName(r.Platform)
			if err != nil {
				return err
			}
			runner, err := bench.NewRunner(bench.Config{Platform: plat, Seed: 1})
			if err != nil {
				return err
			}
			return report.Write(f, r, runner)
		}); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "wrote artifacts to %s\n", dir)
	return nil
}
