package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"memcontention/internal/checkpoint"
	"memcontention/internal/obs"
)

// TestOutKillResumeByteIdenticalArtifacts interrupts a -out run
// mid-evaluation and asserts the resumed run writes artifact files byte
// identical to an uninterrupted run's.
func TestOutKillResumeByteIdenticalArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("full testbed evaluation")
	}
	base := t.TempDir()
	freshDir := filepath.Join(base, "fresh")
	var buf bytes.Buffer
	if err := run(context.Background(), &buf, options{out: freshDir, seed: 1, workers: 2, replications: 1}, &checkpoint.CLI{}, &obs.CLI{}); err != nil {
		t.Fatal(err)
	}

	jpath := filepath.Join(base, "run.ckpt")
	j, err := checkpoint.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j.RecordHook = func(_ string, total int) {
		if total == 5 {
			cancel()
		}
	}
	resumedDir := filepath.Join(base, "resumed")
	err = dispatch(ctx, &buf, options{out: resumedDir, seed: 1, workers: 2, replications: 1}, j, nil)
	if !checkpoint.IsCanceled(err) {
		t.Fatalf("err = %v, want cancellation", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	ckpt := &checkpoint.CLI{Path: jpath, Resume: true}
	if err := run(context.Background(), &buf, options{out: resumedDir, seed: 1, workers: 2, replications: 1}, ckpt, &obs.CLI{}); err != nil {
		t.Fatalf("resume failed: %v", err)
	}

	entries, err := os.ReadDir(freshDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no artifacts written")
	}
	for _, e := range entries {
		want, err := os.ReadFile(filepath.Join(freshDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(resumedDir, e.Name()))
		if err != nil {
			t.Fatalf("resumed run missing artifact %s: %v", e.Name(), err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("artifact %s differs between fresh and resumed run", e.Name())
		}
	}
}

func TestTable2ToWriter(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), &out, options{table: 1, seed: 1, replications: 1}, &checkpoint.CLI{}, &obs.CLI{}); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("no output for -table 1")
	}
}

// TestShardedOutMatchesSequential drives the -shards path end to end:
// the supervised sharded executor must write -out artifacts byte
// identical to the plain sequential run, and -replications must add the
// replication summary artifacts.
func TestShardedOutMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full testbed evaluation")
	}
	base := t.TempDir()
	seqDir := filepath.Join(base, "seq")
	var buf bytes.Buffer
	if err := run(context.Background(), &buf, options{out: seqDir, seed: 1, workers: 2, replications: 2}, &checkpoint.CLI{}, &obs.CLI{}); err != nil {
		t.Fatal(err)
	}
	shardedDir := filepath.Join(base, "sharded")
	o := options{out: shardedDir, seed: 1, workers: 4, replications: 2, shards: filepath.Join(base, "run.shards")}
	if err := run(context.Background(), &buf, o, &checkpoint.CLI{}, &obs.CLI{}); err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(seqDir)
	if err != nil {
		t.Fatal(err)
	}
	sawReplications := false
	for _, e := range entries {
		if e.Name() == "replications.txt" {
			sawReplications = true
		}
		want, err := os.ReadFile(filepath.Join(seqDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(shardedDir, e.Name()))
		if err != nil {
			t.Fatalf("sharded run missing artifact %s: %v", e.Name(), err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("artifact %s differs between sequential and sharded run", e.Name())
		}
	}
	if !sawReplications {
		t.Fatal("replicated run wrote no replications.txt")
	}
}
