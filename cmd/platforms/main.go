// Command platforms lists and describes the built-in testbed platforms
// (Table I of the paper) and their simulated hardware profiles.
//
// Usage:
//
//	platforms                 # table of all platforms
//	platforms -name henri     # detailed description of one platform
//	platforms -profiles       # include hardware-profile summaries
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"memcontention"
	"memcontention/internal/checkpoint"
	"memcontention/internal/eval"
	"memcontention/internal/hwloc"
	"memcontention/internal/memsys"
	"memcontention/internal/obs"
	"memcontention/internal/topology"
)

func main() {
	name := flag.String("name", "", "describe a single platform")
	profiles := flag.Bool("profiles", false, "show simulated hardware profiles")
	topo := flag.Bool("topo", false, "draw the lstopo-style ASCII topology")
	exportDir := flag.String("export", "", "write <name>.platform.json and <name>.profile.json files into this directory")
	var cli obs.CLI
	cli.Register(flag.CommandLine, false)
	flag.Parse()

	ctx, stop := checkpoint.SignalContext()
	err := runCLI(ctx, *name, *profiles, *topo, *exportDir, &cli)
	stop()
	if code := checkpoint.Report(os.Stderr, "platforms", err); code != 0 {
		os.Exit(code)
	}
}

func runCLI(ctx context.Context, name string, profiles, topo bool, exportDir string, cli *obs.CLI) error {
	if err := cli.Start(); err != nil {
		return err
	}
	var err error
	if exportDir != "" {
		err = exportAll(ctx, exportDir)
	} else {
		err = run(name, profiles, topo)
	}
	if err != nil {
		return err
	}
	man := obs.NewManifest("platforms")
	man.Platform = name
	man.Args = os.Args[1:]
	return cli.Finish(cli.NewRegistry(), nil, man)
}

// exportAll dumps every built-in platform and profile as JSON files that
// membench/memmodel can load back with -platformfile/-profilefile.
func exportAll(ctx context.Context, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, p := range topology.Testbed() {
		// The exported files are written atomically, so interrupting
		// between platforms never leaves a torn pair behind.
		if err := ctx.Err(); err != nil {
			return err
		}
		prof, err := memsys.ProfileFor(p.Name)
		if err != nil {
			return err
		}
		if err := memcontention.SavePlatformFile(filepath.Join(dir, p.Name+".platform.json"), p); err != nil {
			return err
		}
		if err := memcontention.SaveProfileFile(filepath.Join(dir, p.Name+".profile.json"), prof, p); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d platform/profile pairs to %s\n", len(topology.Testbed()), dir)
	return nil
}

func run(name string, profiles, topo bool) error {
	if name != "" {
		p, err := topology.ByName(name)
		if err != nil {
			return err
		}
		fmt.Print(p.Describe())
		if topo {
			t, err := hwloc.FromPlatform(p)
			if err != nil {
				return err
			}
			fmt.Println()
			fmt.Print(t.Render())
		}
		if profiles {
			return printProfile(p.Name)
		}
		return nil
	}
	if err := eval.Table1(topology.Testbed()).WriteText(os.Stdout); err != nil {
		return err
	}
	if profiles {
		for _, p := range topology.Testbed() {
			fmt.Println()
			if err := printProfile(p.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

func printProfile(name string) error {
	prof, err := memsys.ProfileFor(name)
	if err != nil {
		return err
	}
	fmt.Printf("Hardware profile %s:\n", name)
	fmt.Printf("  per-core stream: %.1f GB/s local, %.1f GB/s remote\n", prof.PerCoreLocal, prof.PerCoreRemote)
	fmt.Printf("  NIC nominal:     %v GB/s by node, floor %.0f %%, decay %.1f GB/s per core\n",
		prof.CommNominal, 100*prof.CommFloorFrac, prof.CommDecayPerCore)
	fmt.Printf("  controller:      core-alone %.0f GB/s, mixed %.0f GB/s (local plateaus)\n",
		prof.Caps.CoreLocal.Plateau, prof.Caps.MixLocal.Plateau)
	fmt.Printf("  link / PCIe:     %.0f / %.1f GB/s\n", prof.LinkCap, prof.PCIeCap)
	return nil
}
