package memcontention_test

import (
	"fmt"

	"memcontention"
)

// Calibrate a model on a built-in platform and predict one configuration.
func ExampleCalibrate() {
	m, err := memcontention.Calibrate("occigen", 1)
	if err != nil {
		panic(err)
	}
	pred, err := m.Predict(8, memcontention.Placement{Comp: 0, Comm: 0})
	if err != nil {
		panic(err)
	}
	fmt.Printf("computations %.1f GB/s, communications %.1f GB/s\n", pred.Comp, pred.Comm)
	// Output:
	// computations 35.2 GB/s, communications 6.6 GB/s
}

// The model is calibrated from two placements but predicts all of them.
func ExampleModel_Predict() {
	m, err := memcontention.Calibrate("occigen", 1)
	if err != nil {
		panic(err)
	}
	for _, pl := range []memcontention.Placement{
		{Comp: 0, Comm: 0}, // both local (calibration sample)
		{Comp: 0, Comm: 1}, // communication data remote (never measured)
	} {
		pred, err := m.Predict(14, pl)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%v: comp %.1f, comm %.1f GB/s\n", pl, pred.Comp, pred.Comm)
	}
	// Output:
	// comp@0/comm@0: comp 49.2, comm 6.6 GB/s
	// comp@0/comm@1: comp 50.0, comm 6.8 GB/s
}

// List the paper's testbed.
func ExamplePlatforms() {
	for _, name := range memcontention.Platforms() {
		fmt.Println(name)
	}
	// Output:
	// dahu
	// diablo
	// henri
	// henri-subnuma
	// occigen
	// pyxis
}

// Run a tiny MPI job on a simulated cluster.
func ExampleCluster_Run() {
	cluster, err := memcontention.NewCluster("henri", 2)
	if err != nil {
		panic(err)
	}
	_, err = cluster.Run(1, func(ctx *memcontention.RankCtx) {
		switch ctx.Rank() {
		case 0:
			if err := ctx.Send(1, 1, memcontention.MiB, 0, "hello"); err != nil {
				panic(err)
			}
		case 1:
			st, err := ctx.Recv(0, 1, memcontention.MiB, 0)
			if err != nil {
				panic(err)
			}
			fmt.Println(st.Payload)
		}
	})
	if err != nil {
		panic(err)
	}
	// Output:
	// hello
}
