// Clustersim: a multi-rank MPI job on the simulated cluster — a ring halo
// exchange with non-blocking sends and receives, followed by a manual
// reduction, the communication skeleton of a 1-D stencil solver. It
// demonstrates the MPI layer (Isend/Irecv/WaitAll, barriers, payloads,
// wildcard receives) and reports per-rank observed bandwidths.
//
// Run with:
//
//	go run ./examples/clustersim [-machines 4] [-halo 32MiB]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"sync"

	"memcontention"
)

const (
	tagRight = 1
	tagLeft  = 2
	tagStat  = 3
)

func main() {
	platform := flag.String("platform", "henri", "built-in platform")
	machines := flag.Int("machines", 4, "machines in the cluster")
	haloStr := flag.String("halo", "32MiB", "halo message size")
	steps := flag.Int("steps", 3, "exchange steps")
	flag.Parse()

	halo, err := memcontention.ParseByteSize(*haloStr)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := memcontention.NewCluster(*platform, *machines)
	if err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	type report struct {
		rank  int
		notes []string
	}
	var reports []report

	elapsed, err := cluster.Run(1, func(ctx *memcontention.RankCtx) {
		me, size := ctx.Rank(), ctx.Size()
		right := (me + 1) % size
		left := (me - 1 + size) % size
		rep := report{rank: me}

		for step := 0; step < *steps; step++ {
			// Non-blocking ring exchange: send the halo to both
			// neighbours, receive from both.
			sendR, err := ctx.Isend(right, tagRight, halo, 0, nil)
			must(err)
			sendL, err := ctx.Isend(left, tagLeft, halo, 0, nil)
			must(err)
			recvL, err := ctx.Irecv(left, tagRight, halo, 0)
			must(err)
			recvR, err := ctx.Irecv(right, tagLeft, halo, 0)
			must(err)
			must(ctx.WaitAll(sendR, sendL, recvL, recvR))

			stat, err := ctx.Wait(recvL)
			must(err)
			rep.notes = append(rep.notes,
				fmt.Sprintf("step %d: halo from rank %d at %s", step, stat.Source, stat.AvgRate))
			ctx.Barrier()
		}

		// Communicator demo: split into odd/even groups and reduce the
		// step count within each (MPI_Comm_split semantics).
		comm, err := ctx.Split(me%2, 0)
		must(err)
		groupSum, err := comm.Reduce(0, memcontention.KiB, 0, float64(*steps), func(a, b float64) float64 { return a + b })
		must(err)
		if comm.Rank() == 0 {
			rep.notes = append(rep.notes,
				fmt.Sprintf("parity group of %d ranks exchanged %d halos in total", comm.Size(), int(groupSum)*2))
		}

		// Manual reduction to rank 0: everyone reports its simulated
		// time through a payload; rank 0 gathers with a wildcard.
		if me == 0 {
			latest := ctx.Now()
			for i := 1; i < size; i++ {
				st, err := ctx.Recv(memcontention.AnySource, tagStat, memcontention.KiB, 0)
				must(err)
				if t, ok := st.Payload.(float64); ok && t > latest {
					latest = t
				}
			}
			rep.notes = append(rep.notes, fmt.Sprintf("reduction: latest rank finished at %.3f ms", latest*1e3))
		} else {
			must(ctx.Send(0, tagStat, memcontention.KiB, 0, ctx.Now()))
		}

		mu.Lock()
		reports = append(reports, rep)
		mu.Unlock()
	})
	if err != nil {
		log.Fatal(err)
	}

	sort.Slice(reports, func(i, j int) bool { return reports[i].rank < reports[j].rank })
	fmt.Printf("Ring exchange on %d × %s, halo %s, %d steps — simulated time %.3f ms\n\n",
		*machines, *platform, halo, *steps, elapsed*1e3)
	for _, r := range reports {
		fmt.Printf("rank %d:\n", r.rank)
		for _, n := range r.notes {
			fmt.Printf("  %s\n", n)
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
