// Overlap: the motivating scenario of the paper's introduction. A rank
// overlaps the reception of a large halo message with a memory-bound
// computation; both streams share the memory system and slow each other
// down. The example measures the slowdown on the simulated cluster and
// compares it with the calibrated model's prediction.
//
// Run with:
//
//	go run ./examples/overlap [-platform henri] [-cores 14]
package main

import (
	"flag"
	"fmt"
	"log"

	"memcontention"
	"memcontention/internal/memsys"
	"memcontention/internal/trace"
)

const (
	tagHalo  = 7
	haloSize = 64 * memcontention.MiB
	// perCoreWork is sized so the computation outlasts the message
	// reception: the measured communication bandwidth is then the
	// steady-state contended bandwidth the model predicts.
	perCoreWork = 512 * memcontention.MiB
)

func main() {
	platform := flag.String("platform", "henri", "built-in platform")
	cores := flag.Int("cores", 14, "computing cores on the receiving rank")
	showTrace := flag.Bool("trace", false, "print the receiving machine's flow timeline")
	flag.Parse()

	m, err := memcontention.Calibrate(*platform, 1)
	if err != nil {
		log.Fatal(err)
	}
	plat, err := memcontention.PlatformByName(*platform)
	if err != nil {
		log.Fatal(err)
	}
	if *cores < 1 || *cores > plat.CoresPerSocket() {
		log.Fatalf("cores must be in [1,%d]", plat.CoresPerSocket())
	}

	cluster, err := memcontention.NewCluster(*platform, 2)
	if err != nil {
		log.Fatal(err)
	}
	var recorder *trace.Recorder
	if *showTrace {
		recorder = trace.NewRecorder()
		cluster.Machines()[0].Flows.SetObserver(recorder)
	}

	kern := memcontention.DefaultKernel()
	pl := memcontention.Placement{Comp: 0, Comm: 0}
	n := *cores

	type result struct {
		commAlone, commOverlap    memcontention.Bandwidth
		computeAlone, computeOver memcontention.Bandwidth
	}
	var res result

	_, err = cluster.Run(1, func(ctx *memcontention.RankCtx) {
		switch ctx.Rank() {
		case 0:
			topo := ctx.Machine().Topo
			cpus := []memcontention.CoreID(topo.SocketSet(0).Take(n))
			work := memcontention.Assignment{Kernel: kern, Cores: cpus, Node: pl.Comp}

			// Phase 1: communication alone.
			st, err := ctx.Recv(1, tagHalo, haloSize, pl.Comm)
			if err != nil {
				log.Fatal(err)
			}
			res.commAlone = st.AvgRate
			ctx.Barrier()

			// Phase 2: computation alone.
			bw, err := ctx.Compute(work, perCoreWork)
			if err != nil {
				log.Fatal(err)
			}
			res.computeAlone = bw
			ctx.Barrier()

			// Phase 3: overlap — post the receive, compute while the
			// message streams in, then wait.
			req, err := ctx.Irecv(1, tagHalo, haloSize, pl.Comm)
			if err != nil {
				log.Fatal(err)
			}
			bw, err = ctx.Compute(work, perCoreWork)
			if err != nil {
				log.Fatal(err)
			}
			res.computeOver = bw
			st, err = ctx.Wait(req)
			if err != nil {
				log.Fatal(err)
			}
			res.commOverlap = st.AvgRate
			ctx.Barrier()

		case 1:
			for phase := 0; phase < 3; phase++ {
				if phase != 1 {
					if err := ctx.Send(0, tagHalo, haloSize, 0, nil); err != nil {
						log.Fatal(err)
					}
				}
				ctx.Barrier()
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	pred, err := m.Predict(n, pl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Overlap on %s, %d computing cores, data placement %v:\n\n", *platform, n, pl)
	fmt.Printf("  communications alone:    %s\n", res.commAlone)
	fmt.Printf("  communications overlap:  %s   (model predicts %.2f GB/s)\n", res.commOverlap, pred.Comm)
	fmt.Printf("  computations alone:      %s\n", res.computeAlone)
	fmt.Printf("  computations overlap:    %s   (model predicts %.2f GB/s)\n", res.computeOver, pred.Comp)
	slowdown := 1.0
	if res.commOverlap > 0 {
		slowdown = res.commAlone.GBps() / res.commOverlap.GBps()
	}
	fmt.Printf("\n  communication slowdown under contention: ×%.2f\n", slowdown)

	if recorder != nil {
		fmt.Printf("\nFlow timeline of the receiving machine ('~' comm, '=' compute):\n")
		fmt.Print(recorder.Gantt(64))
		comm := recorder.Summarize(memsys.KindComm)
		comp := recorder.Summarize(memsys.KindCompute)
		fmt.Printf("\n  comm flows: %d, %s moved, mean %.2f GB/s\n", comm.Finished, comm.Bytes, comm.MeanRate)
		fmt.Printf("  comp flows: %d, %s moved, mean %.2f GB/s\n", comp.Finished, comp.Bytes, comp.MeanRate)
	}
}
