// Placement advisor: use the calibrated model the way a runtime system
// would (§VI: "runtime systems could better know on which NUMA node store
// data and how many computing cores should be used to avoid memory
// contention").
//
// Given a target communication bandwidth the application needs to sustain
// (so its halo exchanges stay overlapped), the advisor searches every
// (placement, core count) pair and reports the configuration maximising
// computation bandwidth while keeping communications above the target.
//
// Run with:
//
//	go run ./examples/placement [-platform dahu] [-commtarget 8.0]
package main

import (
	"flag"
	"fmt"
	"log"

	"memcontention"
)

func main() {
	platform := flag.String("platform", "henri", "built-in platform")
	commTarget := flag.Float64("commtarget", 8.0, "minimum sustained communication bandwidth (GB/s)")
	flag.Parse()

	plat, err := memcontention.PlatformByName(*platform)
	if err != nil {
		log.Fatal(err)
	}
	m, err := memcontention.Calibrate(*platform, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Searching placements on %s keeping communications ≥ %.1f GB/s\n\n", *platform, *commTarget)
	fmt.Println("comp@  comm@   best n   computations   communications")

	type best struct {
		n          int
		comp, comm float64
	}
	var globalBest best
	var globalPl memcontention.Placement
	for comp := 0; comp < plat.NNodes(); comp++ {
		for comm := 0; comm < plat.NNodes(); comm++ {
			pl := memcontention.Placement{
				Comp: memcontention.NodeID(comp),
				Comm: memcontention.NodeID(comm),
			}
			var b best
			for n := 1; n <= plat.CoresPerSocket(); n++ {
				pred, err := m.Predict(n, pl)
				if err != nil {
					log.Fatal(err)
				}
				if pred.Comm >= *commTarget && pred.Comp > b.comp {
					b = best{n: n, comp: pred.Comp, comm: pred.Comm}
				}
			}
			if b.n == 0 {
				fmt.Printf("%5d  %5d   (cannot sustain the communication target)\n", comp, comm)
				continue
			}
			fmt.Printf("%5d  %5d   %6d   %8.2f GB/s   %8.2f GB/s\n", comp, comm, b.n, b.comp, b.comm)
			if b.comp > globalBest.comp {
				globalBest, globalPl = b, pl
			}
		}
	}
	if globalBest.n == 0 {
		fmt.Println("\nNo configuration sustains the requested communication bandwidth.")
		return
	}
	fmt.Printf("\nRecommendation: place computation data on node %d, communication data on node %d,\n",
		globalPl.Comp, globalPl.Comm)
	fmt.Printf("and compute with %d cores: %.2f GB/s for computations, %.2f GB/s for communications.\n",
		globalBest.n, globalBest.comp, globalBest.comm)
}
