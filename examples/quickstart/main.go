// Quickstart: calibrate the contention model on one platform and predict
// the bandwidths of a placement the calibration never measured.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"memcontention"
)

func main() {
	// Calibrate from the two sample placements (§IV-A2): all data on
	// the local NUMA node, then all data on the remote one. Seed 1
	// drives the simulated measurement noise.
	m, err := memcontention.Calibrate("henri", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Calibrated model for henri:")
	fmt.Println(m)

	// Predict a non-sample placement: computation data local (node 0),
	// communication data remote (node 1).
	pl := memcontention.Placement{Comp: 0, Comm: 1}
	fmt.Printf("\nPredictions for %v:\n", pl)
	fmt.Println("  n   computations   communications")
	for n := 1; n <= 18; n++ {
		pred, err := m.Predict(n, pl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%3d   %8.2f GB/s   %8.2f GB/s\n", n, pred.Comp, pred.Comm)
	}

	// The same question an application developer asks: how many cores
	// can compute before communications start to suffer?
	nominal, err := m.Predict(1, pl)
	if err != nil {
		log.Fatal(err)
	}
	for n := 1; n <= 18; n++ {
		pred, _ := m.Predict(n, pl)
		if pred.Comm < 0.95*nominal.Comm {
			fmt.Printf("\nCommunications drop below 95%% of nominal with %d computing cores.\n", n)
			return
		}
	}
	fmt.Println("\nCommunications are never significantly impacted on this placement.")
}
