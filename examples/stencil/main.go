// Stencil: a contention-aware runtime in action (§VI future work). The
// program runs an iterative halo-exchange solver three ways on a simulated
// cluster — sequential, naively overlapped, and overlapped with the
// model-advised core count and data placement — and reports the speedups.
//
// Run with:
//
//	go run ./examples/stencil [-platform henri] [-machines 4] [-iters 5]
package main

import (
	"flag"
	"fmt"
	"log"

	"memcontention"
)

func main() {
	platform := flag.String("platform", "henri", "built-in platform")
	machines := flag.Int("machines", 4, "machines in the ring")
	iters := flag.Int("iters", 5, "solver iterations")
	flag.Parse()

	base := memcontention.StencilConfig{
		Machines:    *machines,
		Iterations:  *iters,
		DomainBytes: 2 * memcontention.GiB,
		HaloBytes:   32 * memcontention.MiB,
		Schedule:    memcontention.StencilOverlap,
	}

	plat, err := memcontention.PlatformByName(*platform)
	if err != nil {
		log.Fatal(err)
	}
	m, err := memcontention.Calibrate(*platform, 1)
	if err != nil {
		log.Fatal(err)
	}

	run := func(cfg memcontention.StencilConfig) memcontention.StencilResult {
		cluster, err := memcontention.NewCluster(*platform, *machines)
		if err != nil {
			log.Fatal(err)
		}
		res, err := memcontention.RunStencil(cluster, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	// 1. Sequential, naive placement.
	naiveSeq := memcontention.NaiveStencilConfig(plat, base)
	naiveSeq.Schedule = memcontention.StencilSequential
	seq := run(naiveSeq)

	// 2. Overlapped, naive placement.
	naiveOvl := memcontention.NaiveStencilConfig(plat, base)
	ovl := run(naiveOvl)

	// 3. Overlapped, model-advised.
	advice, err := memcontention.AdviseStencil(m, plat, base)
	if err != nil {
		log.Fatal(err)
	}
	advised := base
	advised.Cores = advice.Cores
	advised.CompNode = advice.Placement.Comp
	advised.CommNode = advice.Placement.Comm
	adv := run(advised)

	fmt.Printf("Halo-exchange solver on %d × %s, %d iterations:\n\n", *machines, *platform, *iters)
	fmt.Printf("  sequential, naive placement:   %8.3f ms/iter\n", seq.PerIteration*1e3)
	fmt.Printf("  overlapped, naive placement:   %8.3f ms/iter  (×%.2f vs sequential)\n",
		ovl.PerIteration*1e3, seq.PerIteration/ovl.PerIteration)
	fmt.Printf("  overlapped, model-advised:     %8.3f ms/iter  (×%.2f vs sequential)\n",
		adv.PerIteration*1e3, seq.PerIteration/adv.PerIteration)
	fmt.Printf("\nAdvice: %d cores, computation data on node %d, halo buffers on node %d\n",
		advice.Cores, advice.Placement.Comp, advice.Placement.Comm)
	fmt.Printf("        (predicted %.3f ms/iter: compute %.3f ms ∥ comm %.3f ms)\n",
		advice.PredictedIter*1e3, advice.ComputeTime*1e3, advice.CommTime*1e3)
}
