// Whatif: explore a machine that is NOT part of the paper's testbed. The
// library derives a generic hardware profile from the topology alone, so
// you can ask "how would contention behave on a 2×24-core machine with 4
// NUMA nodes per socket?" — the workflow a procurement or runtime team
// would use before hardware exists.
//
// Run with:
//
//	go run ./examples/whatif [-cores 24] [-nodes 2]
package main

import (
	"flag"
	"fmt"
	"log"

	"memcontention"
)

func main() {
	cores := flag.Int("cores", 24, "cores per socket")
	nodes := flag.Int("nodes", 2, "NUMA nodes per socket")
	flag.Parse()

	plat, err := memcontention.NewPlatformBuilder("whatif").
		CPU(memcontention.Intel, fmt.Sprintf("hypothetical %dc", *cores)).
		Sockets(2).
		NodesPerSocket(*nodes).
		CoresPerSocket(*cores).
		MemoryPerNodeGB(64).
		NICOn("hypothetical-nic", memcontention.InfiniBand, memcontention.NodeID(*nodes), 4).
		LinkName("UPI").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	prof := memcontention.DefaultProfileFor(plat)

	// Calibrate the model on the hypothetical machine...
	m, err := memcontention.CalibrateConfig(memcontention.BenchConfig{
		Platform: plat,
		Profile:  prof,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Hypothetical platform: %s\n\n%s\n\n", plat, m)

	// ...and answer the §VI runtime question: with communications kept
	// at ≥ 80 % of nominal, how many cores can compute per placement?
	fmt.Println("Max computing cores keeping communications ≥ 80 % of nominal:")
	for comp := 0; comp < plat.NNodes(); comp++ {
		for comm := 0; comm < plat.NNodes(); comm++ {
			pl := memcontention.Placement{
				Comp: memcontention.NodeID(comp),
				Comm: memcontention.NodeID(comm),
			}
			nominal, err := m.Predict(1, pl)
			if err != nil {
				log.Fatal(err)
			}
			best := 0
			for n := 1; n <= plat.CoresPerSocket(); n++ {
				pred, err := m.Predict(n, pl)
				if err != nil {
					log.Fatal(err)
				}
				if pred.Comm >= 0.8*nominal.Comm {
					best = n
				}
			}
			fmt.Printf("  comp@%d comm@%d: %2d cores\n", comp, comm, best)
		}
	}

	// Full evaluation: does the model stay accurate on this topology?
	res, err := memcontention.EvaluateConfig(memcontention.BenchConfig{
		Platform: plat,
		Profile:  prof,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nModel accuracy on the hypothetical machine: comm %.2f %%, comp %.2f %% (avg %.2f %%)\n",
		res.Errors.CommAll, res.Errors.CompAll, res.Errors.Average)
}
