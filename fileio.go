package memcontention

import (
	"encoding/json"
	"fmt"
	"os"

	"memcontention/internal/atomicio"
	"memcontention/internal/model"
)

// File I/O for custom platforms, hardware profiles and calibrated models:
// everything needed to study machines beyond the built-in testbed, or to
// calibrate once and reuse the model elsewhere.

// LoadPlatformFile reads and validates a platform description (JSON, the
// schema produced by SavePlatformFile).
func LoadPlatformFile(path string) (*Platform, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("memcontention: load platform: %w", err)
	}
	var p Platform
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("memcontention: load platform %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("memcontention: platform %s invalid: %w", path, err)
	}
	return &p, nil
}

// SavePlatformFile writes a platform description as indented JSON.
func SavePlatformFile(path string, p *Platform) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("memcontention: save platform: %w", err)
	}
	return writeJSONFile(path, p)
}

// LoadProfileFile reads a hardware profile and validates it against the
// platform it will simulate.
func LoadProfileFile(path string, plat *Platform) (*HardwareProfile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("memcontention: load profile: %w", err)
	}
	var prof HardwareProfile
	if err := json.Unmarshal(data, &prof); err != nil {
		return nil, fmt.Errorf("memcontention: load profile %s: %w", path, err)
	}
	if err := prof.Validate(plat); err != nil {
		return nil, fmt.Errorf("memcontention: profile %s invalid for %s: %w", path, plat.Name, err)
	}
	return &prof, nil
}

// SaveProfileFile writes a hardware profile as indented JSON.
func SaveProfileFile(path string, prof *HardwareProfile, plat *Platform) error {
	if err := prof.Validate(plat); err != nil {
		return fmt.Errorf("memcontention: save profile: %w", err)
	}
	return writeJSONFile(path, prof)
}

// LoadModelFile reads a calibrated model (JSON, as produced by
// SaveModelFile or `memmodel -json`). The model is validated on decode.
func LoadModelFile(path string) (Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Model{}, fmt.Errorf("memcontention: load model: %w", err)
	}
	var m model.Model
	if err := json.Unmarshal(data, &m); err != nil {
		return Model{}, fmt.Errorf("memcontention: load model %s: %w", path, err)
	}
	return m, nil
}

// SaveModelFile writes a calibrated model as indented JSON.
func SaveModelFile(path string, m Model) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("memcontention: save model: %w", err)
	}
	return writeJSONFile(path, m)
}

// writeJSONFile writes v atomically and durably: the JSON is staged in a
// temporary file next to the target, fsynced, renamed into place, and the
// parent directory is fsynced — so a crash (or a marshal error, or power
// loss) never leaves a truncated or half-written file where a previously
// good one existed. See internal/atomicio for the exact guarantees.
func writeJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("memcontention: encode %s: %w", path, err)
	}
	if err := atomicio.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("memcontention: write %s: %w", path, err)
	}
	return nil
}
