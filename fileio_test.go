package memcontention

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestPlatformFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "henri.platform.json")
	plat := mustPlatform(t, "henri")
	if err := SavePlatformFile(path, plat); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPlatformFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != plat.Name || back.NCores() != plat.NCores() || back.NIC != plat.NIC {
		t.Error("platform round trip lost data")
	}
}

func TestProfileFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "henri.profile.json")
	plat := mustPlatform(t, "henri")
	prof, err := ProfileFor("henri")
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveProfileFile(path, prof, plat); err != nil {
		t.Fatal(err)
	}
	back, err := LoadProfileFile(path, plat)
	if err != nil {
		t.Fatal(err)
	}
	if back.PerCoreLocal != prof.PerCoreLocal || back.Caps.MixLocal != prof.Caps.MixLocal {
		t.Error("profile round trip lost data")
	}
	// A loaded profile drives a benchmark identically to the built-in.
	a, err := CalibrateConfig(BenchConfig{Platform: plat, Profile: back, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Calibrate("henri", 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("loaded profile must behave like the built-in one")
	}
}

func TestModelFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	m, err := Calibrate("dahu", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveModelFile(path, m); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Error("model round trip lost data")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlatformFile(bad); err == nil {
		t.Error("garbage platform accepted")
	}
	if _, err := LoadProfileFile(bad, mustPlatform(t, "henri")); err == nil {
		t.Error("garbage profile accepted")
	}
	if _, err := LoadModelFile(bad); err == nil {
		t.Error("garbage model accepted")
	}
	if _, err := LoadPlatformFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	// Structurally valid JSON but semantically invalid content.
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlatformFile(empty); err == nil {
		t.Error("invalid platform accepted")
	}
	if _, err := LoadProfileFile(empty, mustPlatform(t, "henri")); err == nil {
		t.Error("invalid profile accepted")
	}
	if _, err := LoadModelFile(empty); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestSaveRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	var m Model // zero model is invalid
	if err := SaveModelFile(filepath.Join(dir, "m.json"), m); err == nil {
		t.Error("invalid model saved")
	}
	plat := mustPlatform(t, "henri")
	plat.Cores[0].Socket = 9
	if err := SavePlatformFile(filepath.Join(dir, "p.json"), plat); err == nil {
		t.Error("invalid platform saved")
	}
}

// readDir lists the directory entries (helper for the atomicity tests).
func readDir(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

func TestWriteJSONFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")

	// A successful write leaves exactly the target file, no temp debris.
	if err := writeJSONFile(path, map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	if names := readDir(t, dir); len(names) != 1 || names[0] != "out.json" {
		t.Fatalf("directory after write: %v, want only out.json", names)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A marshal failure (NaN is not valid JSON) must leave the existing
	// file byte-identical and clean up after itself.
	if err := writeJSONFile(path, map[string]float64{"bad": math.NaN()}); err == nil {
		t.Fatal("NaN marshalled successfully")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(first) {
		t.Error("failed write modified the existing file")
	}
	if names := readDir(t, dir); len(names) != 1 {
		t.Errorf("failed write left debris: %v", names)
	}

	// Overwrites replace the content completely.
	if err := writeJSONFile(path, map[string]int{"b": 2}); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(second) == string(first) {
		t.Error("overwrite kept the old content")
	}
	if names := readDir(t, dir); len(names) != 1 {
		t.Errorf("overwrite left debris: %v", names)
	}

	// An unwritable directory fails without leaving temp files anywhere
	// visible.
	if err := writeJSONFile(filepath.Join(dir, "missing", "x.json"), 1); err == nil {
		t.Error("write into a missing directory succeeded")
	}
}
