package memcontention

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// fuzzFile writes data to a fresh file and returns its path.
func fuzzFile(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "input.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func FuzzLoadPlatformFile(f *testing.F) {
	if plat, err := PlatformByName("henri"); err == nil {
		if data, err := json.Marshal(plat); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte("{}"))
	f.Add([]byte("{not json"))
	f.Add([]byte(`{"Name":"x","Sockets":[{"ID":0,"Nodes":[0]}],"Nodes":[{"ID":0,"Socket":0,"MemoryGB":-1}],"Cores":[{"ID":0,"Socket":0,"Node":0}]}`))
	f.Add([]byte(`{"Name":"x","Nodes":[{"ID":0,"Socket":9,"MemoryGB":16}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		plat, err := LoadPlatformFile(fuzzFile(t, data))
		if err != nil {
			return
		}
		// A load that succeeds must yield a platform the rest of the
		// code can trust: validated, self-consistent indices.
		if err := plat.Validate(); err != nil {
			t.Fatalf("loaded platform fails Validate: %v", err)
		}
		if plat.NCores() <= 0 || plat.NNodes() <= 0 {
			t.Fatalf("loaded platform has no cores or nodes")
		}
		for _, c := range plat.Cores {
			if int(c.Node) >= plat.NNodes() || int(c.Socket) >= len(plat.Sockets) {
				t.Fatalf("core %d references out-of-range node/socket", c.ID)
			}
		}
	})
}

func FuzzLoadProfileFile(f *testing.F) {
	plat, err := PlatformByName("henri")
	if err != nil {
		f.Fatal(err)
	}
	if prof, err := ProfileFor("henri"); err == nil {
		if data, err := json.Marshal(prof); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte("{}"))
	f.Add([]byte("[1,2,3]"))
	f.Add([]byte(`{"PerCoreLocal":-5}`))
	f.Add([]byte(`{"PerCoreLocal":1e308,"PerCoreRemote":1e308}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		prof, err := LoadProfileFile(fuzzFile(t, data), plat)
		if err != nil {
			return
		}
		// Accepted profiles must be usable by the simulator: positive,
		// finite demands and one nominal bandwidth per NUMA node.
		for _, v := range []float64{prof.PerCoreLocal, prof.PerCoreRemote, prof.LinkCap, prof.PCIeCap} {
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("loaded profile has non-positive or non-finite parameter %v", v)
			}
		}
		if len(prof.CommNominal) != plat.NNodes() {
			t.Fatalf("loaded profile has %d nominal bandwidths for %d nodes",
				len(prof.CommNominal), plat.NNodes())
		}
	})
}
