module memcontention

go 1.22
