// Package analysis is memlint's engine: repo-specific static analyzers
// that enforce the reproduction's load-bearing invariants at build time,
// implemented purely on the standard library (go/parser, go/ast,
// go/types, go/importer — no x/tools), so the module stays stdlib-only.
//
// The invariants are the ones the paper reproduction depends on the way
// the original measurements depend on a quiet testbed:
//
//   - determinism: no wall clock, global rand or pid reads outside the
//     declared clock-injection points, and no map iteration feeding an
//     exporter without a sort — two identical runs must emit
//     byte-identical artifacts (check "determinism", "maprange");
//   - nil-hook safety: the observability/fault/checkpoint hook types are
//     documented as inert when nil, so every exported method that touches
//     receiver state must open with a nil-receiver guard (check
//     "nilhook");
//   - durable writes: artifacts and journals are only written through
//     internal/atomicio's stage+fsync+rename path, never with a direct
//     os.WriteFile/os.Create/os.Rename that can tear on crash (check
//     "durable");
//   - error hygiene: sentinel errors are matched with errors.Is, and
//     fmt.Errorf wraps with %w instead of dropping the cause (check
//     "errhygiene").
//
// A finding that is intentional is silenced in place with
//
//	//memlint:allow <check> — <reason>
//
// on the offending line or the line above; the "suppress" pseudo-check
// rejects malformed and stale suppressions so allowances cannot outlive
// the code they excused (see docs/static-analysis.md).
//
// Each analyzer is a pure function from a type-checked package to a
// diagnostic list; Run sorts and deduplicates the combined output, so
// memlint itself is deterministic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, located by file position and attributed to
// the check that produced it.
type Diagnostic struct {
	Path    string // file path as parsed (module-relative under cmd/memlint)
	Line    int
	Col     int
	Check   string
	Message string
}

// String renders the canonical "file:line:col: [check] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Path, d.Line, d.Col, d.Check, d.Message)
}

// Analyzer is one named check. Run inspects the pass's package and
// reports findings through pass.Reportf.
type Analyzer struct {
	Name string
	Doc  string // one-line summary shown by memlint -checks
	Run  func(pass *Pass)
}

// Pass gives one analyzer run its inputs: the type-checked package under
// inspection, the shared configuration, and the module-wide facts
// (call graph, concurrency summaries) shared by every pass of one Run.
type Pass struct {
	Pkg    *Package
	Config *Config
	mod    *module
	diags  *[]Diagnostic
	check  string
}

// Graph returns the module-wide call graph, built lazily on first use
// and shared by every pass of the same Run.
func (p *Pass) Graph() *CallGraph { return p.mod.callGraph() }

// module holds facts derived once per Run over the full package set:
// the call graph and the concurrency summaries the lockguard/goleak/
// ctxflow analyzers share. Run is single-goroutine, so plain lazy
// initialization suffices.
type module struct {
	pkgs  []*Package
	graph *CallGraph
	conc  *concFacts
}

func (m *module) callGraph() *CallGraph {
	if m.graph == nil {
		m.graph = buildCallGraph(m.pkgs)
	}
	return m.graph
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Path:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// Config tunes the analyzers to a repository. The zero value checks
// nothing repo-specific; DefaultConfig returns the memcontention rules.
type Config struct {
	// NilHookTypes are fully qualified "importpath.TypeName" entries whose
	// exported pointer-receiver methods must begin with a nil-receiver
	// guard whenever they touch receiver state.
	NilHookTypes []string
	// DurableWriterPkgs are package import paths allowed to call
	// os.WriteFile / os.Create / os.Rename directly (the packages that
	// implement the durable write path).
	DurableWriterPkgs []string
	// ClockInjectionPoints are functions allowed to read nondeterministic
	// process state, named "importpath.FuncName" for functions and
	// "importpath.TypeName.Method" for methods. Everything else must take
	// a clock/seed from its caller.
	ClockInjectionPoints []string
	// DeterminismExemptPkgs are package import paths (exact, or prefixes
	// when ending in "/") where the determinism check does not apply at
	// all. Serving-plane packages live here: a long-running server's
	// latency measurements and deadlines are wall-clock by nature and
	// never feed a reproducible artifact. Simulation and calibration
	// packages must never be listed.
	DeterminismExemptPkgs []string
	// SinkTypes are additional fully qualified types whose method calls
	// count as ordering-sensitive sinks for the maprange check (on top of
	// the built-in writers, builders and encoders).
	SinkTypes []string
	// BlockingCalls are functions and methods the ctxflow check treats as
	// blocking operations on top of the built-in channel operations and
	// sync.Cond.Wait/WaitGroup.Wait — named "importpath.FuncName" or
	// "importpath.TypeName.Method". The repo lists its journal and lease
	// I/O here: a function that drops its context while transitively
	// reaching one of these cannot be cancelled mid-wait.
	BlockingCalls []string
}

// DefaultConfig returns the rules for this repository.
func DefaultConfig() *Config {
	return &Config{
		NilHookTypes: []string{
			"memcontention/internal/obs.Registry",
			"memcontention/internal/obs.Counter",
			"memcontention/internal/obs.Gauge",
			"memcontention/internal/obs.Histogram",
			"memcontention/internal/obs.Span",
			"memcontention/internal/trace.Recorder",
			"memcontention/internal/prof.Profiler",
			"memcontention/internal/faults.Plan",
			"memcontention/internal/checkpoint.Journal",
		},
		DurableWriterPkgs: []string{
			"memcontention/internal/atomicio",
			"memcontention/internal/checkpoint",
		},
		ClockInjectionPoints: []string{
			// The one sanctioned wall-clock read: the default obs.Clock.
			"memcontention/internal/obs.WallClock",
		},
		DeterminismExemptPkgs: []string{
			// The serving plane: live request latency is wall-clock by
			// definition and feeds rolling gauges, not artifacts.
			"memcontention/internal/serve",
			"memcontention/cmd/memserve",
			"memcontention/scripts/loadgen",
			// slogx mints random run ids; identity, not simulation.
			"memcontention/internal/obs/slogx",
			// The lease coordination plane: owner identity (hostname,
			// pid, random token) and wall-clock heartbeats are what
			// fencing is MADE OF — they name which process is alive
			// right now and never feed a reproducible artifact (shard
			// journals hold unit results only, keyed by config). The
			// entry is exact: campaign/checkpoint code consuming leases
			// stays under the full determinism check.
			"memcontention/internal/lease",
		},
		SinkTypes: []string{
			"memcontention/internal/trace.Recorder",
			"memcontention/internal/prof.Profiler",
			"memcontention/internal/export.Table",
		},
		BlockingCalls: []string{
			// Uncancellable sleeps: a dropped ctx cannot interrupt them.
			"time.Sleep",
			// The repo's journal and lease I/O: fsync-per-append journal
			// writes and lease acquisition (which polls a TTL out of
			// stale owners). Reaching these with a dropped ctx means an
			// uninterruptible wait.
			"memcontention/internal/checkpoint.Journal.Record",
			"memcontention/internal/lease.Manager.Acquire",
			"memcontention/internal/lease.Held.Renew",
		},
	}
}

// Analyzers returns every check in its canonical order. The suppression
// pseudo-check "suppress" is implemented by Run itself, not listed here.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		MapRangeAnalyzer,
		NilHookAnalyzer,
		DurableAnalyzer,
		ErrHygieneAnalyzer,
		LockGuardAnalyzer,
		GoLeakAnalyzer,
		CtxFlowAnalyzer,
	}
}

// CheckNames returns the names accepted by //memlint:allow — the
// analyzers plus the "suppress" pseudo-check.
func CheckNames(analyzers []*Analyzer) []string {
	names := make([]string, 0, len(analyzers)+1)
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	names = append(names, SuppressCheck)
	sort.Strings(names)
	return names
}

// Run executes the analyzers over the packages, applies //memlint:allow
// suppressions, rejects stale or malformed ones, and returns the
// surviving diagnostics sorted by (file, line, column, check, message)
// with duplicates removed — a deterministic report for a deterministic
// repository.
func Run(pkgs []*Package, analyzers []*Analyzer, cfg *Config) []Diagnostic {
	if cfg == nil {
		cfg = &Config{}
	}
	mod := &module{pkgs: pkgs}
	var out []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{Pkg: pkg, Config: cfg, mod: mod, diags: &raw, check: a.Name}
			a.Run(pass)
		}
		out = append(out, applySuppressions(pkg, raw, analyzers)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	dedup := out[:0]
	for i, d := range out {
		if i == 0 || d != out[i-1] {
			dedup = append(dedup, d)
		}
	}
	return dedup
}

// qualifiedType renders a named type as "importpath.Name" (or just Name
// for universe/builtin scope), the form used in Config lists.
func qualifiedType(obj *types.TypeName) string {
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// enclosingFuncName names the innermost function declaration containing
// pos as "importpath.Func" or "importpath.Type.Method" ("" when pos is
// not inside a function declaration, e.g. a package-level var
// initializer).
func enclosingFuncName(pkg *Package, file *ast.File, pos token.Pos) string {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || pos < fd.Pos() || pos > fd.End() {
			continue
		}
		name := pkg.PkgPath + "." + fd.Name.Name
		if fd.Recv != nil && len(fd.Recv.List) == 1 {
			if tn := receiverTypeName(pkg, fd); tn != "" {
				name = pkg.PkgPath + "." + tn + "." + fd.Name.Name
			}
		}
		return name
	}
	return ""
}

// receiverTypeName returns the bare type name of a method's receiver
// ("Recorder" for func (r *Recorder) ...), or "".
func receiverTypeName(pkg *Package, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers look like T[P]; unwrap the index expression.
	switch x := t.(type) {
	case *ast.IndexExpr:
		t = x.X
	case *ast.IndexListExpr:
		t = x.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// usedObject resolves an identifier or selector to the object it refers
// to, unwrapping parens.
func usedObject(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		return info.Uses[x.Sel]
	}
	return nil
}

// isPkgFunc reports whether obj is the function pkgPath.name.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// stringSet builds a membership set from a slice.
func stringSet(ss []string) map[string]bool {
	m := make(map[string]bool, len(ss))
	for _, s := range ss {
		m[s] = true
	}
	return m
}

// splitQualified splits "importpath.Name" on the final dot.
func splitQualified(q string) (pkgPath, name string) {
	i := strings.LastIndex(q, ".")
	if i < 0 {
		return "", q
	}
	return q[:i], q[i+1:]
}
