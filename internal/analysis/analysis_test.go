package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden diagnostic files under testdata/golden")

// fixtureDir resolves one package directory under testdata/src.
func fixtureDir(t *testing.T, name string) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// checkGolden compares the rendered diagnostics against
// testdata/golden/<name>.txt (regenerate with -update).
func checkGolden(t *testing.T, name, dir string, diags []Diagnostic) {
	t.Helper()
	got := RenderDiagnostics(diags, dir)
	golden := filepath.Join("testdata", "golden", name+".txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics diverge from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

func TestDeterminismFixture(t *testing.T) {
	dir := fixtureDir(t, "determinism")
	cfg := &Config{ClockInjectionPoints: []string{"determinism.WallClock"}}
	diags := RunFixture(t, dir, cfg, DeterminismAnalyzer)
	checkGolden(t, "determinism", dir, diags)
}

// TestDeterminismExemptFixture proves the serving-plane dispensation
// both ways on the same fixture: without an exemption the package is
// full of findings (pinned by golden + want comments); listed on
// DeterminismExemptPkgs it is completely silent.
func TestDeterminismExemptFixture(t *testing.T) {
	dir := fixtureDir(t, "servepkg")
	diags := RunFixture(t, dir, &Config{}, DeterminismAnalyzer)
	if len(diags) == 0 {
		t.Fatal("servepkg fixture produced no findings without an exemption")
	}
	checkGolden(t, "servepkg", dir, diags)

	pkg, err := LoadFixture(dir)
	if err != nil {
		t.Fatal(err)
	}
	exempted := Run([]*Package{pkg}, []*Analyzer{DeterminismAnalyzer},
		&Config{DeterminismExemptPkgs: []string{"servepkg"}})
	if len(exempted) != 0 {
		t.Errorf("exempt package still produced %d findings:\n%s",
			len(exempted), RenderDiagnostics(exempted, dir))
	}
}

// TestDeterminismLeaseExemptFixture proves the lease-plane
// dispensation the same two ways — the fixture is full of findings
// without an exemption, silent when listed — and then pins the scope
// of the real DefaultConfig entry: it covers the lease package itself
// and nothing else; the campaign and checkpoint code consuming leases,
// and the memworker binary, all stay under the full determinism check.
func TestDeterminismLeaseExemptFixture(t *testing.T) {
	dir := fixtureDir(t, "leasepkg")
	diags := RunFixture(t, dir, &Config{}, DeterminismAnalyzer)
	if len(diags) == 0 {
		t.Fatal("leasepkg fixture produced no findings without an exemption")
	}
	checkGolden(t, "leasepkg", dir, diags)

	pkg, err := LoadFixture(dir)
	if err != nil {
		t.Fatal(err)
	}
	exempted := Run([]*Package{pkg}, []*Analyzer{DeterminismAnalyzer},
		&Config{DeterminismExemptPkgs: []string{"leasepkg"}})
	if len(exempted) != 0 {
		t.Errorf("exempt package still produced %d findings:\n%s",
			len(exempted), RenderDiagnostics(exempted, dir))
	}

	cfg := DefaultConfig()
	for pkgPath, want := range map[string]bool{
		"memcontention/internal/lease":      true,
		"memcontention/internal/lease/sub":  false,
		"memcontention/internal/campaign":   false,
		"memcontention/internal/checkpoint": false,
		"memcontention/cmd/memworker":       false,
	} {
		if got := determinismExempt(cfg.DeterminismExemptPkgs, pkgPath); got != want {
			t.Errorf("determinismExempt(DefaultConfig, %q) = %v, want %v", pkgPath, got, want)
		}
	}
}

// TestDeterminismExemptionDoesNotLeakToSimPackages runs the simulation
// fixture under the full DefaultConfig exemption list: every wall-clock
// finding must still fire — the serving dispensation is surgical, not a
// hole in the invariant.
func TestDeterminismExemptionDoesNotLeakToSimPackages(t *testing.T) {
	dir := fixtureDir(t, "determinism")
	cfg := DefaultConfig()
	cfg.ClockInjectionPoints = []string{"determinism.WallClock"}
	diags := RunFixture(t, dir, cfg, DeterminismAnalyzer)
	if len(diags) == 0 {
		t.Fatal("sim fixture went silent under the default exemption list")
	}
	checkGolden(t, "determinism", dir, diags)
}

// TestDeterminismExemptMatching pins the entry syntax: exact import
// paths, and subtree prefixes when the entry ends in "/".
func TestDeterminismExemptMatching(t *testing.T) {
	cases := []struct {
		exempt []string
		pkg    string
		want   bool
	}{
		{[]string{"a/serve"}, "a/serve", true},
		{[]string{"a/serve"}, "a/serve/sub", false},
		{[]string{"a/serve/"}, "a/serve/sub", true},
		{[]string{"a/serve/"}, "a/serve", false},
		{[]string{"a/serve"}, "a/served", false},
		{nil, "a/serve", false},
	}
	for _, tc := range cases {
		if got := determinismExempt(tc.exempt, tc.pkg); got != tc.want {
			t.Errorf("determinismExempt(%v, %q) = %v, want %v", tc.exempt, tc.pkg, got, tc.want)
		}
	}
}

func TestMapRangeFixture(t *testing.T) {
	dir := fixtureDir(t, "maprange")
	diags := RunFixture(t, dir, &Config{}, MapRangeAnalyzer)
	checkGolden(t, "maprange", dir, diags)
}

func TestNilHookFixture(t *testing.T) {
	dir := fixtureDir(t, "nilhook")
	cfg := &Config{NilHookTypes: []string{"nilhook.Recorder"}}
	diags := RunFixture(t, dir, cfg, NilHookAnalyzer)
	checkGolden(t, "nilhook", dir, diags)
}

func TestDurableFixture(t *testing.T) {
	dir := fixtureDir(t, "durable")
	diags := RunFixture(t, dir, &Config{}, DurableAnalyzer)
	checkGolden(t, "durable", dir, diags)
}

func TestErrHygieneFixture(t *testing.T) {
	dir := fixtureDir(t, "errhygiene")
	diags := RunFixture(t, dir, &Config{}, ErrHygieneAnalyzer)
	checkGolden(t, "errhygiene", dir, diags)
}

// TestLockGuardFixture exercises the guarded-field analyzer: held and
// unheld accesses, defer-unlock, call-graph propagation, goroutine
// hand-off, the constructor exemption, and a malformed annotation.
func TestLockGuardFixture(t *testing.T) {
	dir := fixtureDir(t, "lockguard")
	diags := RunFixture(t, dir, &Config{}, LockGuardAnalyzer)
	checkGolden(t, "lockguard", dir, diags)
}

// TestGoLeakFixture exercises the goroutine-termination analyzer: every
// accepted proof shape stays silent, endless and dynamic spawns fire.
func TestGoLeakFixture(t *testing.T) {
	dir := fixtureDir(t, "goleak")
	diags := RunFixture(t, dir, &Config{}, GoLeakAnalyzer)
	checkGolden(t, "goleak", dir, diags)
}

// TestCtxFlowFixture exercises the dropped-context analyzer: dropped
// ctx on blocking paths fires (direct, transitive, explicit discard),
// threaded or unneeded contexts stay silent.
func TestCtxFlowFixture(t *testing.T) {
	dir := fixtureDir(t, "ctxflow")
	diags := RunFixture(t, dir, &Config{}, CtxFlowAnalyzer)
	checkGolden(t, "ctxflow", dir, diags)
}

// TestSuppressFixture exercises the suppression pseudo-check: a used
// allowance silences its finding, while stale, unknown-check and
// missing-reason allowances are themselves diagnostics.
func TestSuppressFixture(t *testing.T) {
	dir := fixtureDir(t, "suppress")
	diags := RunFixture(t, dir, &Config{}, Analyzers()...)
	checkGolden(t, "suppress", dir, diags)
	var stale, malformed int
	for _, d := range diags {
		if d.Check != SuppressCheck {
			continue
		}
		if strings.Contains(d.Message, "stale") {
			stale++
		} else {
			malformed++
		}
	}
	if stale != 1 || malformed != 2 {
		t.Errorf("suppress findings: stale=%d malformed=%d, want 1 and 2", stale, malformed)
	}
}

// TestSuppressLastLineFixture is the regression test for allow comments
// on the final line of a file with no trailing newline: such a comment
// trails the closing brace below its target, and must both silence the
// finding on the previous line and not be reported stale.
func TestSuppressLastLineFixture(t *testing.T) {
	dir := fixtureDir(t, "suppresslast")
	src, err := os.ReadFile(filepath.Join(dir, "suppresslast.go"))
	if err != nil {
		t.Fatal(err)
	}
	if len(src) == 0 || src[len(src)-1] == '\n' {
		t.Fatal("fixture must not end in a newline — that is the case under test")
	}
	diags := RunFixture(t, dir, &Config{}, DurableAnalyzer)
	if len(diags) != 0 {
		t.Errorf("final-line suppression not honored, got:\n%s", RenderDiagnostics(diags, dir))
	}
}

// TestCleanFixture proves every analyzer stays silent on conforming code.
func TestCleanFixture(t *testing.T) {
	dir := fixtureDir(t, "clean")
	cfg := &Config{
		NilHookTypes:         []string{"clean.Store"},
		ClockInjectionPoints: nil,
	}
	diags := RunFixture(t, dir, cfg, Analyzers()...)
	if len(diags) != 0 {
		t.Errorf("clean fixture produced %d diagnostics:\n%s", len(diags), RenderDiagnostics(diags, dir))
	}
}

// TestRunDeterministic runs the full suite twice over the same fixture
// and asserts identical output — memlint's own reports must be
// byte-stable, like every other artifact in this repo.
func TestRunDeterministic(t *testing.T) {
	dir := fixtureDir(t, "suppress")
	pkg1, err := LoadFixture(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg2, err := LoadFixture(dir)
	if err != nil {
		t.Fatal(err)
	}
	d1 := Run([]*Package{pkg1}, Analyzers(), &Config{})
	d2 := Run([]*Package{pkg2}, Analyzers(), &Config{})
	if RenderDiagnostics(d1, dir) != RenderDiagnostics(d2, dir) {
		t.Error("two runs over the same fixture produced different diagnostics")
	}
	if !reflect.DeepEqual(SortedChecks(d1), SortedChecks(d2)) {
		t.Error("check sets differ between runs")
	}
}

// TestCheckNames pins the accepted //memlint:allow vocabulary.
func TestCheckNames(t *testing.T) {
	got := CheckNames(Analyzers())
	want := []string{"ctxflow", "determinism", "durable", "errhygiene", "goleak", "lockguard", "maprange", "nilhook", "suppress"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CheckNames = %v, want %v", got, want)
	}
}
