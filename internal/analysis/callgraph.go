package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file is the whole-module layer under the concurrency analyzers
// (lockguard, goleak, ctxflow): a call graph over every package handed
// to Run, built from the same go/types information the single-function
// analyzers use — still no x/tools.
//
// Resolution is deliberately simple and deterministic:
//
//   - direct calls (pkg.F(), recv.Method()) resolve to the declared
//     *types.Func;
//   - interface method calls resolve to every named type among the
//     analyzed packages whose method set satisfies the interface
//     (method-set matching, so dispatch is a set of candidate edges
//     marked Dynamic);
//   - calls through function values (fields, parameters, closures bound
//     to variables) resolve to nothing — the analyzers treat an
//     unresolved callee as unknown and stay conservative about it.
//
// Each edge remembers how the call leaves the caller: a plain call, a
// `go` statement (the callee runs on a new goroutine, inheriting no
// locks), or a `defer` (the callee runs at function exit). Function
// literals are attributed to their enclosing declaration, so a closure's
// calls count as the declaring function's calls.

// EdgeKind classifies how a call site transfers control.
type EdgeKind uint8

const (
	// EdgeCall is an ordinary synchronous call.
	EdgeCall EdgeKind = iota
	// EdgeGo is the immediate call of a `go` statement: the callee runs
	// concurrently and inherits none of the caller's held locks.
	EdgeGo
	// EdgeDefer is the immediate call of a `defer` statement: the callee
	// runs at function exit.
	EdgeDefer
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeGo:
		return "go"
	case EdgeDefer:
		return "defer"
	}
	return "call"
}

// CallEdge is one resolved call site.
type CallEdge struct {
	Caller *CallNode
	Callee *CallNode
	Site   *ast.CallExpr // the call expression in the caller's body
	Kind   EdgeKind
	// Dynamic marks an interface-dispatch candidate: the static type at
	// the site is an interface and Callee is one of the concrete
	// implementations found by method-set matching.
	Dynamic bool
}

// CallNode is one declared function or method of the analyzed packages
// (or a stub for a callee that is referenced but declared elsewhere —
// such nodes have a nil Decl and no outgoing edges).
type CallNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl // nil when the body is outside the analyzed packages
	Pkg  *Package      // package containing Decl (nil for stubs)
	Out  []*CallEdge
	In   []*CallEdge
}

// Name renders the node as "pkgpath.Func" or "pkgpath.Type.Method".
func (n *CallNode) Name() string { return qualifiedFuncName(n.Fn) }

// CallGraph is the module-wide call graph shared by the concurrency
// analyzers via the Pass.
type CallGraph struct {
	nodes map[*types.Func]*CallNode
	// order lists the declared nodes in (package path, file, position)
	// order so every traversal of the graph is deterministic.
	order []*CallNode
	// concrete caches the module's non-interface named types, for
	// analyzers that resolve additional call sites themselves.
	concrete []*types.Named
}

// Node returns the graph node for fn, or nil if fn was never seen.
func (g *CallGraph) Node(fn *types.Func) *CallNode {
	if g == nil || fn == nil {
		return nil
	}
	return g.nodes[fn.Origin()]
}

// Nodes returns the declared nodes in deterministic order.
func (g *CallGraph) Nodes() []*CallNode { return g.order }

// buildCallGraph constructs the graph over pkgs. Packages must already
// be sorted (LoadModule sorts; Run preserves the caller's order).
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{nodes: make(map[*types.Func]*CallNode)}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := g.intern(fn)
				node.Decl = fd
				node.Pkg = pkg
				g.order = append(g.order, node)
			}
		}
	}
	concrete := concreteNamedTypes(pkgs)
	g.concrete = concrete
	for _, caller := range g.order {
		pkg := caller.Pkg
		visitCalls(caller.Decl.Body, func(call *ast.CallExpr, kind EdgeKind) {
			for _, target := range resolveCallees(pkg, call, concrete) {
				callee := g.intern(target.fn)
				edge := &CallEdge{Caller: caller, Callee: callee, Site: call, Kind: kind, Dynamic: target.dynamic}
				caller.Out = append(caller.Out, edge)
				callee.In = append(callee.In, edge)
			}
		})
	}
	return g
}

// intern returns the (possibly stub) node for fn, creating it on first
// use. Generic instantiations are folded onto their origin declaration.
func (g *CallGraph) intern(fn *types.Func) *CallNode {
	fn = fn.Origin()
	if node, ok := g.nodes[fn]; ok {
		return node
	}
	node := &CallNode{Fn: fn}
	g.nodes[fn] = node
	return node
}

// reachableNode walks the graph from start (inclusive) along Call and
// Defer edges — plus Go edges when includeGo is set — and returns the
// first visited node satisfying pred, or nil. Traversal order follows
// edge declaration order, so the answer is deterministic.
func (g *CallGraph) reachableNode(start *CallNode, includeGo bool, pred func(*CallNode) bool) *CallNode {
	if start == nil {
		return nil
	}
	visited := map[*CallNode]bool{start: true}
	queue := []*CallNode{start}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if pred(n) {
			return n
		}
		for _, e := range n.Out {
			if e.Kind == EdgeGo && !includeGo {
				continue
			}
			if !visited[e.Callee] {
				visited[e.Callee] = true
				queue = append(queue, e.Callee)
			}
		}
	}
	return nil
}

// calleeRef is one resolution candidate for a call site.
type calleeRef struct {
	fn      *types.Func
	dynamic bool
}

// resolveCallees resolves a call expression to its candidate callees:
// one static callee for direct calls, the concrete implementations for
// interface dispatch, nothing for function values and builtins.
func resolveCallees(pkg *Package, call *ast.CallExpr, concrete []*types.Named) []calleeRef {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return []calleeRef{{fn: fn}}
		}
	case *ast.SelectorExpr:
		fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return nil
		}
		sel, ok := pkg.Info.Selections[fun]
		if !ok || sel.Kind() != types.MethodVal {
			return []calleeRef{{fn: fn}} // qualified package function
		}
		iface, ok := sel.Recv().Underlying().(*types.Interface)
		if !ok {
			return []calleeRef{{fn: fn}}
		}
		return dispatchCandidates(iface, fun.Sel.Name, concrete)
	}
	return nil
}

// dispatchCandidates finds every analyzed named type implementing iface
// and returns its method named name — the possible targets of one
// interface call, by method-set matching.
func dispatchCandidates(iface *types.Interface, name string, concrete []*types.Named) []calleeRef {
	var out []calleeRef
	for _, named := range concrete {
		var impl types.Type
		switch {
		case types.Implements(named, iface):
			impl = named
		case types.Implements(types.NewPointer(named), iface):
			impl = types.NewPointer(named)
		default:
			continue
		}
		ms := types.NewMethodSet(impl)
		for i := 0; i < ms.Len(); i++ {
			if m, ok := ms.At(i).Obj().(*types.Func); ok && m.Name() == name {
				out = append(out, calleeRef{fn: m, dynamic: true})
			}
		}
	}
	return out
}

// concreteNamedTypes lists every non-interface named type declared at
// package scope across pkgs, sorted for deterministic dispatch edges.
func concreteNamedTypes(pkgs []*Package) []*types.Named {
	var out []*types.Named
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			out = append(out, named)
		}
	}
	return out
}

// visitCalls walks body and reports every call expression with the kind
// of control transfer at its site: the immediate call of a `go`
// statement is EdgeGo, of a `defer` is EdgeDefer, everything else
// (including calls nested in go/defer argument lists) is EdgeCall.
func visitCalls(body *ast.BlockStmt, visit func(*ast.CallExpr, EdgeKind)) {
	kinds := make(map[*ast.CallExpr]EdgeKind)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			kinds[x.Call] = EdgeGo
		case *ast.DeferStmt:
			kinds[x.Call] = EdgeDefer
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			visit(call, kinds[call])
		}
		return true
	})
}

// qualifiedFuncName renders fn as "pkgpath.Func" or
// "pkgpath.Type.Method" (methods on pointer receivers use the bare type
// name, matching Config list syntax).
func qualifiedFuncName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedRecvType(sig.Recv().Type()); named != nil {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() == nil {
		return name
	}
	return fn.Pkg().Path() + "." + name
}

// rootVar resolves the storage location an expression names — the local
// variable, parameter or struct field at its root — unwrapping parens,
// address-of, dereference and (for fields) the selector chain. It
// returns nil for anything else (calls, literals, indexing). The object
// identity of a struct field is module-wide: every `s.ch` in any package
// resolves to the same *types.Var, which is what lets goleak match a
// close in one function to a receive in another.
func rootVar(pkg *Package, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[x].(*types.Var); ok {
			return v
		}
		if v, ok := pkg.Info.Defs[x].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
		}
	case *ast.UnaryExpr:
		return rootVar(pkg, x.X)
	case *ast.StarExpr:
		return rootVar(pkg, x.X)
	}
	return nil
}
