package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// concFacts are the module-wide concurrency summaries shared by the
// lockguard, goleak and ctxflow analyzers: which channels are ever
// closed, which WaitGroups are ever waited on, a per-function summary
// of termination evidence and blocking operations, and the lockguard
// results (computed globally because lock requirements propagate along
// call edges, then filtered per package when each pass reports). Built
// once per Run by whichever concurrency analyzer fires first.
type concFacts struct {
	// alias is a union-find over channel and WaitGroup storage
	// locations: passing a channel variable as an argument unifies it
	// with the callee's parameter, so a close in one function proves
	// termination for a receive in another.
	alias map[*types.Var]*types.Var
	// closed holds the representatives of channels close()d anywhere in
	// the module.
	closed map[*types.Var]bool
	// waited holds the representatives of sync.WaitGroups with a Wait()
	// call anywhere in the module.
	waited map[*types.Var]bool
	// summaries caches one funcSummary per declared function.
	summaries map[*types.Func]*funcSummary
	// guards maps each annotated struct field to its guard description.
	guards map[*types.Var]*guardedField
	// lockDiags holds the lockguard findings for the whole module; each
	// pass emits the subset belonging to its package.
	lockDiags []modDiag
}

// modDiag is a finding produced at module scope, remembering which
// package it belongs to so per-package passes can claim it.
type modDiag struct {
	pkg *Package
	pos token.Pos
	msg string
}

// funcSummary condenses one function body for the concurrency
// analyzers. Function literals spawned by `go` inside the body are NOT
// included — their loops, evidence and blocking operations belong to
// the goroutine they start, which goleak inspects at its own `go`
// statement — while all other nested literals are folded in.
type funcSummary struct {
	// evidence: the body carries goleak termination evidence — a
	// ctx.Done()/Err()/Deadline() read, a receive on a channel the
	// module closes, or WaitGroup.Done on a group the module waits on.
	evidence bool
	// hasLoop: the body contains an unbounded loop (a `for` statement,
	// or a range over a channel). Ranges over slices, maps and integers
	// are bounded and do not count.
	hasLoop bool
	// blocking describes the first blocking operation in the body ("" if
	// none): a channel send/receive, a select without default, a
	// sync.Cond.Wait or WaitGroup.Wait, or a configured blocking call.
	blocking string
}

// conc returns the module's concurrency facts, built on first use.
func (p *Pass) conc() *concFacts {
	if p.mod.conc == nil {
		p.mod.conc = buildConcFacts(p.mod.pkgs, p.mod.callGraph(), p.Config)
	}
	return p.mod.conc
}

func buildConcFacts(pkgs []*Package, graph *CallGraph, cfg *Config) *concFacts {
	c := &concFacts{
		alias:     make(map[*types.Var]*types.Var),
		closed:    make(map[*types.Var]bool),
		waited:    make(map[*types.Var]bool),
		summaries: make(map[*types.Func]*funcSummary),
	}
	c.buildAliases(graph)
	c.collectClosesAndWaits(graph)
	blocking := stringSet(cfg.BlockingCalls)
	for _, node := range graph.Nodes() {
		c.summaries[node.Fn] = summarizeBody(node.Pkg, node.Decl.Body, c, blocking)
	}
	c.collectGuards(pkgs)
	c.runLockGuard(graph)
	return c
}

// find returns the union-find representative of v.
func (c *concFacts) find(v *types.Var) *types.Var {
	for {
		p, ok := c.alias[v]
		if !ok || p == v {
			return v
		}
		// Path compression.
		if gp, ok := c.alias[p]; ok && gp != p {
			c.alias[v] = gp
		}
		v = p
	}
}

func (c *concFacts) union(a, b *types.Var) {
	ra, rb := c.find(a), c.find(b)
	if ra != rb {
		c.alias[ra] = rb
	}
}

// aliasWorthy reports whether t is a type whose identity the analyzers
// track across calls: a channel, or a (pointer to) sync.WaitGroup.
func aliasWorthy(t types.Type) bool {
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	return isWaitGroup(t)
}

func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// buildAliases unifies channel/WaitGroup arguments with the matching
// parameters of every resolved callee, across all call kinds (a channel
// handed to a goroutine is still the same channel).
func (c *concFacts) buildAliases(graph *CallGraph) {
	for _, caller := range graph.Nodes() {
		for _, e := range caller.Out {
			if e.Callee.Decl == nil {
				continue
			}
			sig, ok := e.Callee.Fn.Type().(*types.Signature)
			if !ok {
				continue
			}
			n := sig.Params().Len()
			if sig.Variadic() {
				n--
			}
			for i := 0; i < n && i < len(e.Site.Args); i++ {
				param := sig.Params().At(i)
				if !aliasWorthy(param.Type()) {
					continue
				}
				if arg := rootVar(caller.Pkg, e.Site.Args[i]); arg != nil {
					c.union(arg, param)
				}
			}
		}
	}
}

// collectClosesAndWaits records every close(ch) and every
// (*sync.WaitGroup).Wait() in the module.
func (c *concFacts) collectClosesAndWaits(graph *CallGraph) {
	for _, node := range graph.Nodes() {
		pkg := node.Pkg
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && len(call.Args) == 1 {
				if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					if v := rootVar(pkg, call.Args[0]); v != nil {
						c.closed[c.find(v)] = true
					}
				}
				return true
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if tv, ok := pkg.Info.Types[sel.X]; ok && isWaitGroup(tv.Type) {
					if v := rootVar(pkg, sel.X); v != nil {
						c.waited[c.find(v)] = true
					}
				}
			}
			return true
		})
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isCondWait reports a (*sync.Cond).Wait() call.
func isSyncMethod(pkg *Package, sel *ast.SelectorExpr, typeName, method string) bool {
	if sel.Sel.Name != method {
		return false
	}
	tv, ok := pkg.Info.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == typeName
}

// summarizeBody walks one function (or goroutine) body and condenses
// it for the concurrency analyzers. Bodies of function literals started
// with `go` inside it are skipped: they belong to the goroutine they
// start, not to this body's own control flow.
func summarizeBody(pkg *Package, body *ast.BlockStmt, c *concFacts, blocking map[string]bool) *funcSummary {
	s := &funcSummary{}
	goLits := make(map[*ast.FuncLit]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				goLits[lit] = true
			}
		}
		return true
	})
	setBlocking := func(desc string) {
		if s.blocking == "" {
			s.blocking = desc
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if goLits[x] {
				return false
			}
		case *ast.ForStmt:
			s.hasLoop = true
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					s.hasLoop = true
					setBlocking("channel receive")
					if v := rootVar(pkg, x.X); v != nil && c.closed[c.find(v)] {
						s.evidence = true
					}
				}
			}
		case *ast.SendStmt:
			setBlocking("channel send")
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				setBlocking("channel receive")
				if v := rootVar(pkg, x.X); v != nil && c.closed[c.find(v)] {
					s.evidence = true
				}
			}
		case *ast.SelectStmt:
			if !selectHasDefault(x) {
				setBlocking("select")
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				break
			}
			// ctx.Done()/Err()/Deadline(): the goroutine observes its
			// context — the canonical cooperative-cancellation shape.
			switch sel.Sel.Name {
			case "Done", "Err", "Deadline":
				if tv, ok := pkg.Info.Types[sel.X]; ok && isContextType(tv.Type) {
					s.evidence = true
				}
			}
			if isSyncMethod(pkg, sel, "WaitGroup", "Done") {
				if v := rootVar(pkg, sel.X); v != nil && c.waited[c.find(v)] {
					s.evidence = true
				}
			}
			if isSyncMethod(pkg, sel, "Cond", "Wait") {
				setBlocking("sync.Cond.Wait")
			}
			if isSyncMethod(pkg, sel, "WaitGroup", "Wait") {
				setBlocking("sync.WaitGroup.Wait")
			}
			if len(blocking) > 0 {
				if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && blocking[qualifiedFuncName(fn)] {
					setBlocking(qualifiedFuncName(fn))
				}
			}
		case *ast.Ident:
			// A plain package-function blocking call (e.g. time.Sleep is
			// selector-based; dot-imports are not used in this repo).
		}
		return true
	})
	return s
}

// selectHasDefault reports whether a select statement has a default
// clause (making it non-blocking).
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
