package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// CtxFlowAnalyzer flags dropped contexts: a function that accepts a
// context.Context parameter but never references it, while it (or
// anything it reaches through the module call graph, goroutines
// included) performs a blocking operation — a channel send/receive, a
// select without default, sync.Cond.Wait / WaitGroup.Wait, or one of
// the configured blocking calls (the repo's journal and lease I/O,
// time.Sleep). Such a function advertises cancellability it does not
// deliver: the caller's deadline can never unblock it. Either thread
// the ctx into the blocking path or drop the parameter.
//
// Functions whose ctx parameter is unnamed or named "_" are flagged the
// same way — an explicit discard of a context on a blocking path is
// exactly the bug.
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "a ctx parameter must flow into blocking work, not be dropped",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	conc := pass.conc()
	graph := pass.Graph()
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Type.Params == nil {
				continue
			}
			for _, field := range fd.Type.Params.List {
				tv, ok := pass.Pkg.Info.Types[field.Type]
				if !ok || !isContextType(tv.Type) {
					continue
				}
				reportDroppedCtx(pass, conc, graph, fd, field)
			}
		}
	}
}

// reportDroppedCtx flags one context parameter field if every name in it
// is dropped and the function reaches blocking work.
func reportDroppedCtx(pass *Pass, conc *concFacts, graph *CallGraph, fd *ast.FuncDecl, field *ast.Field) {
	used := false
	for _, name := range field.Names {
		if name.Name == "_" {
			continue
		}
		obj := pass.Pkg.Info.Defs[name]
		if obj != nil && identUsed(pass.Pkg, fd.Body, obj) {
			used = true
		}
	}
	if used {
		return
	}
	fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	node := graph.Node(fn)
	if node == nil {
		return
	}
	blocked := graph.reachableNode(node, true, func(n *CallNode) bool {
		sum := conc.summaries[n.Fn]
		return sum != nil && sum.blocking != ""
	})
	if blocked == nil {
		return
	}
	desc := conc.summaries[blocked.Fn].blocking
	where := ""
	if blocked != node {
		where = fmt.Sprintf(" in %s", blocked.Name())
	}
	pass.Reportf(field.Pos(), "%s receives a context.Context but never uses it, yet reaches a blocking operation (%s%s); pass ctx down or drop the parameter",
		fd.Name.Name, desc, where)
}

// identUsed reports whether obj is referenced anywhere in body.
func identUsed(pkg *Package, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
