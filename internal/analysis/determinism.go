package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismAnalyzer flags reads of nondeterministic process state —
// the wall clock, the globally seeded math/rand source, process ids —
// outside the configured clock-injection points. The reproduction's
// artifacts (Table II journals, traces, manifests, checkpoint journals)
// must be byte-identical across runs, so any code that can influence
// them has to take time and randomness from its caller.
//
// Both calls and bare references are flagged: `f := time.Now` smuggles
// the clock just as effectively as `time.Now()`.
//
// Whole packages on Config.DeterminismExemptPkgs — the serving plane,
// whose latency numbers are wall-clock by nature and never feed a
// reproducible artifact — are skipped entirely.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "wall clock / global rand / pid reads outside clock-injection points",
	Run:  runDeterminism,
}

// nondetFuncs maps package path → function names whose results differ
// run to run. The math/rand entries are the package-level convenience
// functions drawing from the global source; rand.New(rand.NewSource(s))
// is seeded and fine.
var nondetFuncs = map[string]map[string]bool{
	"time": set("Now", "Since", "Until"),
	"os":   set("Getpid", "Getppid", "Hostname"),
	"math/rand": set(
		"Int", "Intn", "Int31", "Int31n", "Int63", "Int63n",
		"Uint32", "Uint64", "Float32", "Float64", "ExpFloat64", "NormFloat64",
		"Perm", "Shuffle", "Read", "Seed",
	),
	"math/rand/v2": set(
		"Int", "IntN", "Int32", "Int32N", "Int64", "Int64N",
		"Uint", "UintN", "Uint32", "Uint32N", "Uint64", "Uint64N",
		"Float32", "Float64", "ExpFloat64", "NormFloat64", "Perm", "Shuffle", "N",
	),
}

func set(names ...string) map[string]bool { return stringSet(names) }

// determinismExempt reports whether pkgPath is covered by the exemption
// list: an exact entry, or a subtree when the entry ends in "/".
func determinismExempt(exempt []string, pkgPath string) bool {
	for _, e := range exempt {
		if e == pkgPath {
			return true
		}
		if strings.HasSuffix(e, "/") && strings.HasPrefix(pkgPath, e) {
			return true
		}
	}
	return false
}

func runDeterminism(pass *Pass) {
	if determinismExempt(pass.Config.DeterminismExemptPkgs, pass.Pkg.PkgPath) {
		return
	}
	allowed := stringSet(pass.Config.ClockInjectionPoints)
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Pkg.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			fn, isFunc := obj.(*types.Func)
			if !isFunc {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // a method (e.g. seeded (*rand.Rand).Float64), not the package-level func
			}
			names := nondetFuncs[obj.Pkg().Path()]
			if names == nil || !names[obj.Name()] {
				return true
			}
			if fn := enclosingFuncName(pass.Pkg, file, sel.Pos()); allowed[fn] {
				return true
			}
			pass.Reportf(sel.Pos(), "%s.%s is nondeterministic; take a clock/seed from the caller (allowed only in clock-injection points)",
				obj.Pkg().Path(), obj.Name())
			return true
		})
	}
}
