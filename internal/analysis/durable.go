package analysis

import (
	"go/ast"
)

// DurableAnalyzer flags direct use of os.WriteFile, os.Create and
// os.Rename outside the packages that implement the durable write path
// (internal/atomicio's stage→fsync→rename→dir-fsync sequence and
// internal/checkpoint's append-only journal). A direct write can be
// observed truncated or half-written after a crash, which is exactly
// what the kill-and-resume soak harness asserts never happens to an
// artifact; every artifact or journal write elsewhere must go through
// internal/atomicio.
//
// Intentional non-artifact uses (a scratch file in a tool, a
// deliberately torn write in a crash simulator) are silenced in place
// with //memlint:allow durable — <reason>.
var DurableAnalyzer = &Analyzer{
	Name: "durable",
	Doc:  "direct os.WriteFile/os.Create/os.Rename outside the durable-write packages",
	Run:  runDurable,
}

var durableFuncs = stringSet([]string{"WriteFile", "Create", "Rename"})

func runDurable(pass *Pass) {
	if stringSet(pass.Config.DurableWriterPkgs)[pass.Pkg.PkgPath] {
		return
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Pkg.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "os" || !durableFuncs[obj.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(), "direct os.%s can tear on crash; write artifacts through internal/atomicio", obj.Name())
			return true
		})
	}
}
