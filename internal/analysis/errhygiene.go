package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ErrHygieneAnalyzer enforces two wrapping-era error idioms:
//
//  1. sentinel errors must be matched with errors.Is, not == / != — the
//     resilience layer wraps its sentinels (*OpError wrapping
//     ErrTimeout, journal errors wrapping fs errors), so an identity
//     comparison silently stops matching the moment a wrap is added;
//  2. fmt.Errorf calls that format an error value must wrap it with %w
//     (not %v/%s), or downstream errors.Is/errors.As lose the chain.
//
// Comparisons against nil are fine, as is an identity comparison inside
// the package that declares no wrapped sentinels — but rather than guess,
// intentional identity semantics are silenced with
// //memlint:allow errhygiene — <reason>.
var ErrHygieneAnalyzer = &Analyzer{
	Name: "errhygiene",
	Doc:  "sentinel errors compared with ==/!= and fmt.Errorf dropping %w",
	Run:  runErrHygiene,
}

func runErrHygiene(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				checkErrCompare(pass, x)
			case *ast.CallExpr:
				checkErrorf(pass, x)
			}
			return true
		})
	}
}

// checkErrCompare flags `err == sentinel` / `err != sentinel` where both
// sides are error-typed and neither is the nil literal.
func checkErrCompare(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	info := pass.Pkg.Info
	if isNilLiteral(be.X) || isNilLiteral(be.Y) {
		return
	}
	if !isErrorType(info, be.X) || !isErrorType(info, be.Y) {
		return
	}
	verb := "errors.Is(a, b)"
	if be.Op == token.NEQ {
		verb = "!errors.Is(a, b)"
	}
	pass.Reportf(be.OpPos, "error compared with %s; wrapped sentinels never match — use %s", be.Op, verb)
}

func isNilLiteral(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// isErrorType reports whether e's static type is the error interface or
// a type implementing it (dynamic comparison through any/interface{} is
// out of scope).
func isErrorType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	iface, ok := t.Underlying().(*types.Interface)
	if ok {
		// Exactly the error interface (or a superset defining Error()).
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == "Error" {
				return true
			}
		}
		return false
	}
	return implementsError(t)
}

// implementsError reports whether t or *t has an Error() string method.
func implementsError(t types.Type) bool {
	for _, tt := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(tt)
		for i := 0; i < ms.Len(); i++ {
			m := ms.At(i).Obj()
			if m.Name() != "Error" {
				continue
			}
			sig, ok := m.Type().(*types.Signature)
			if ok && sig.Params().Len() == 0 && sig.Results().Len() == 1 {
				if b, ok := sig.Results().At(0).Type().(*types.Basic); ok && b.Kind() == types.String {
					return true
				}
			}
		}
	}
	return false
}

// checkErrorf flags fmt.Errorf calls whose arguments include an error
// value but whose (constant) format string has no %w verb.
func checkErrorf(pass *Pass, call *ast.CallExpr) {
	info := pass.Pkg.Info
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !isPkgFunc(info.Uses[sel.Sel], "fmt", "Errorf") {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	format, ok := constantString(info, call.Args[0])
	if !ok || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if isErrorType(info, arg) && !isNilLiteral(arg) {
			pass.Reportf(call.Pos(), "fmt.Errorf formats an error without %%w; the cause is dropped from the errors.Is/As chain")
			return
		}
	}
}

// constantString evaluates e as a compile-time string constant.
func constantString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
