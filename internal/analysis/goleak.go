package analysis

import (
	"go/ast"
)

// GoLeakAnalyzer requires every `go` statement to have a provable
// termination path. A spawned goroutine terminates provably when the
// code it runs — its body plus everything reachable through the module
// call graph along synchronous edges — either
//
//   - observes a context (ctx.Done()/Err()/Deadline()),
//   - receives from (or ranges over) a channel the module closes
//     somewhere, tracked across calls by argument/parameter aliasing,
//   - calls Done on a sync.WaitGroup the module Waits on, or
//   - contains no unbounded loop at all (straight-line goroutines run
//     off the end; ranges over slices/maps are bounded, `for` statements
//     and ranges over channels are not).
//
// A `go` through a function value (field, parameter) resolves to no
// body and is flagged: the termination of dynamic hand-offs cannot be
// proven statically, and deserves either a restructure or a reasoned
// //memlint:allow.
var GoLeakAnalyzer = &Analyzer{
	Name: "goleak",
	Doc:  "every go statement needs a provable termination path (ctx, closed channel, WaitGroup, or straight-line body)",
	Run:  runGoLeak,
}

func runGoLeak(pass *Pass) {
	conc := pass.conc()
	graph := pass.Graph()
	blocking := stringSet(pass.Config.BlockingCalls)
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goroutineTerminates(pass.Pkg, g, conc, graph, blocking) {
				return true
			}
			pass.Reportf(g.Pos(), "goroutine has no provable termination path (no ctx.Done, closed-channel receive, WaitGroup pairing, or loop-free body)")
			return true
		})
	}
}

// goroutineTerminates decides one `go` statement.
func goroutineTerminates(pkg *Package, g *ast.GoStmt, conc *concFacts, graph *CallGraph, blocking map[string]bool) bool {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		sum := summarizeBody(pkg, lit.Body, conc, blocking)
		if sum.evidence {
			return true
		}
		return calleesTerminate(calleesIn(pkg, lit.Body, graph), graph, conc, sum.hasLoop)
	}
	refs := resolveCallees(pkg, g.Call, graph.concrete)
	if len(refs) == 0 {
		return false // dynamic hand-off: unprovable
	}
	for _, ref := range refs {
		node := graph.Node(ref.fn)
		if node == nil || node.Decl == nil {
			return false // body outside the module: unprovable
		}
		if !nodeTerminates(node, graph, conc) {
			return false
		}
	}
	return true
}

// nodeTerminates applies the termination rule starting from a declared
// function: reachable evidence anywhere wins; otherwise every reachable
// body (including the root) must be loop-free.
func nodeTerminates(root *CallNode, graph *CallGraph, conc *concFacts) bool {
	sum := conc.summaries[root.Fn]
	if sum != nil && sum.evidence {
		return true
	}
	return calleesTerminate([]*CallNode{root}, graph, conc, false)
}

// calleesTerminate walks the synchronous call graph from the given
// start nodes. Evidence in any reachable body proves termination;
// otherwise the goroutine terminates only if no reachable body (and not
// the spawned body itself, per rootHasLoop) contains an unbounded loop.
// Edges of kind EdgeGo are excluded: a goroutine spawning another
// goroutine does not keep itself alive, and the nested `go` is checked
// at its own statement.
func calleesTerminate(starts []*CallNode, graph *CallGraph, conc *concFacts, rootHasLoop bool) bool {
	anyLoop := rootHasLoop
	visited := make(map[*CallNode]bool)
	queue := make([]*CallNode, 0, len(starts))
	for _, s := range starts {
		if s != nil && !visited[s] {
			visited[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.Decl == nil {
			continue // unknown body: assume it returns, prove nothing from it
		}
		if sum := conc.summaries[n.Fn]; sum != nil {
			if sum.evidence {
				return true
			}
			if sum.hasLoop {
				anyLoop = true
			}
		}
		for _, e := range n.Out {
			if e.Kind == EdgeGo {
				continue
			}
			if !visited[e.Callee] {
				visited[e.Callee] = true
				queue = append(queue, e.Callee)
			}
		}
	}
	return !anyLoop
}

// calleesIn resolves every call inside a spawned literal body (skipping
// the immediate calls of nested `go` statements) to its graph nodes —
// the starting points for the literal's reachability walk.
func calleesIn(pkg *Package, body *ast.BlockStmt, graph *CallGraph) []*CallNode {
	var out []*CallNode
	seen := make(map[*CallNode]bool)
	visitCalls(body, func(call *ast.CallExpr, kind EdgeKind) {
		if kind == EdgeGo {
			return
		}
		for _, ref := range resolveCallees(pkg, call, graph.concrete) {
			if node := graph.Node(ref.fn); node != nil && !seen[node] {
				seen[node] = true
				out = append(out, node)
			}
		}
	})
	return out
}
