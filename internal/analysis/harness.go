package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// The fixture harness is an analysistest-style runner built on the same
// stdlib-only loader as memlint itself. A fixture is one package
// directory under internal/analysis/testdata/src whose files carry
// expectation comments:
//
//	r.events = append(r.events, ev) // want "without a leading nil guard"
//
// Each `// want "re"` comment expects exactly one diagnostic on its line
// whose message matches the regexp; several quoted regexps expect
// several diagnostics. RunFixture fails the test on any unmatched
// expectation and any unexpected diagnostic, so every fixture proves
// both that its analyzer fires and that it stays silent on conforming
// code in the same package.

// TB is the subset of *testing.T the harness needs (an interface so the
// harness itself stays in the non-test build and memlint's own fixtures
// can reuse it).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

var wantRe = regexp.MustCompile(`//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)`)
var wantArgRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// LoadFixture parses and type-checks the single package in dir. The
// package's import path is its base name, so fixture-local types are
// addressed in Config lists as "<dirname>.<TypeName>". Fixtures may
// import the standard library only.
func LoadFixture(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: fixture %s: %w", dir, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if !isSourceFile(e) {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: fixture %s: %w", dir, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: fixture %s has no Go files", dir)
	}
	path := filepath.Base(dir)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: fixture %s: typecheck: %w", dir, err)
	}
	return &Package{PkgPath: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// expectation is one `// want "re"` entry.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// collectWants scans the fixture's comments for // want expectations.
func collectWants(pkg *Package) ([]*expectation, error) {
	var wants []*expectation
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantArgRe.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %s: %w", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %w", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

// RunFixture runs the analyzers (plus suppression processing) over the
// fixture package in dir and checks the diagnostics against the
// fixture's // want comments. It returns the diagnostics so callers can
// additionally golden-test the rendered output.
func RunFixture(t TB, dir string, cfg *Config, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	pkg, err := LoadFixture(dir)
	if err != nil {
		t.Fatalf("%v", err)
		return nil
	}
	diags := Run([]*Package{pkg}, analyzers, cfg)
	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatalf("%v", err)
		return nil
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.met && w.file == d.Path && w.line == d.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	return diags
}

// RenderDiagnostics formats diagnostics one per line with paths
// relative to base (for golden files that must not embed absolute
// build paths).
func RenderDiagnostics(diags []Diagnostic, base string) string {
	var b strings.Builder
	for _, d := range diags {
		rel := d.Path
		if r, err := filepath.Rel(base, d.Path); err == nil {
			rel = filepath.ToSlash(r)
		}
		fmt.Fprintf(&b, "%s:%d:%d: [%s] %s\n", rel, d.Line, d.Col, d.Check, d.Message)
	}
	return b.String()
}

// sortedChecks lists the distinct checks present in diags (report
// summaries in memlint and tests).
func SortedChecks(diags []Diagnostic) []string {
	seen := make(map[string]bool)
	for _, d := range diags {
		seen[d.Check] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
