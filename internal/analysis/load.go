package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	PkgPath string // import path ("memcontention/internal/obs")
	Dir     string // directory the files were parsed from
	Fset    *token.FileSet
	Files   []*ast.File // non-test files only
	Types   *types.Package
	Info    *types.Info
}

// LoadModule parses and type-checks every non-test package under the
// module rooted at dir (the directory containing go.mod) using only the
// standard library's go/parser + go/types + go/importer. Test files and
// testdata/ trees are excluded: the invariants memlint enforces protect
// artifacts produced by shipped code, and fixtures under testdata
// deliberately violate them.
//
// Packages are returned sorted by import path. Standard-library imports
// are resolved by compiling their source (importer "source"), so the
// loader needs no pre-built export data and no go build cache.
func LoadModule(dir string) ([]*Package, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := newLoader(root, modPath)
	dirs, err := moduleDirs(root)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, d := range dirs {
		pkg, err := l.load(l.importPathFor(d))
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// ModulePath reads the module path from dir/go.mod.
func ModulePath(dir string) (string, error) {
	return modulePath(filepath.Join(dir, "go.mod"))
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: not a module root: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// moduleDirs lists every directory under root holding non-test .go
// files, skipping hidden directories, testdata trees and vendor trees
// (vendored code is third-party: not ours to lint, and its import paths
// do not live under the module path).
func moduleDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if isSourceFile(e) {
			return true
		}
	}
	return false
}

func isSourceFile(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// loader type-checks module packages on demand, resolving module-internal
// imports recursively and delegating everything else to the stdlib's
// source importer. All packages share one FileSet so diagnostics carry
// consistent positions.
type loader struct {
	root    string
	modPath string
	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package // by import path; nil entry = in progress
	done    map[string]bool
}

func newLoader(root, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:    root,
		modPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		done:    make(map[string]bool),
	}
}

// importPathFor maps a directory under the module root to its import path.
func (l *loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

// dirFor inverts importPathFor.
func (l *loader) dirFor(path string) string {
	if path == l.modPath {
		return l.root
	}
	return filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.modPath+"/")))
}

// inModule reports whether path names a package of the module under
// analysis.
func (l *loader) inModule(path string) bool {
	return path == l.modPath || strings.HasPrefix(path, l.modPath+"/")
}

// Import implements types.Importer for module-internal dependencies.
func (l *loader) Import(path string) (*types.Package, error) {
	if !l.inModule(path) {
		return l.std.Import(path)
	}
	pkg, err := l.load(path)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("analysis: no Go files in %s", path)
	}
	return pkg.Types, nil
}

// load parses and type-checks one module package (cached). It returns
// (nil, nil) for directories with no buildable Go files.
func (l *loader) load(path string) (*Package, error) {
	if l.done[path] {
		if pkg, ok := l.pkgs[path]; ok && pkg == nil {
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
		return l.pkgs[path], nil
	}
	l.done[path] = true
	l.pkgs[path] = nil // marks in-progress for cycle detection

	dir := l.dirFor(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if !isSourceFile(e) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		delete(l.pkgs, path)
		return nil, nil
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", path, err)
	}
	pkg := &Package{PkgPath: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}
