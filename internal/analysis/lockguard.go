package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockGuardAnalyzer enforces `// memlint:guard <mu>` annotations on
// struct fields: an annotated field may only be read or written while
// the named sibling mutex is held on the same receiver path.
//
//	type Supervisor struct {
//		mu sync.Mutex
//		// memlint:guard mu
//		inflight int
//	}
//
// The check is an intraprocedural lock-set walk (tracking mu.Lock(),
// mu.Unlock() and the `defer mu.Unlock()` idiom, per branch) combined
// with cross-function propagation over the module call graph: an
// unexported method (or one whose name ends in "Locked") that touches a
// guarded field unlocked is assumed to follow the callers-hold-the-lock
// convention, and the requirement moves to its call sites — every call
// site must then hold the guard on the same base, or be flagged.
//
// Deliberate simplifications, documented in docs/static-analysis.md:
// RLock counts the same as Lock (the check proves "some lock held", not
// exclusivity); accesses to receivers freshly built from a composite
// literal in the same function are exempt (constructors publish before
// sharing); a `go` statement never inherits the spawner's locks.
var LockGuardAnalyzer = &Analyzer{
	Name: "lockguard",
	Doc:  "fields annotated `memlint:guard mu` must only be accessed with mu held",
	Run:  runLockGuard,
}

func runLockGuard(pass *Pass) {
	conc := pass.conc()
	for _, d := range conc.lockDiags {
		if d.pkg == pass.Pkg {
			pass.Reportf(d.pos, "%s", d.msg)
		}
	}
}

// guardedField describes one annotated struct field.
type guardedField struct {
	field     *types.Var      // the guarded field object
	guard     *types.Var      // the sibling mutex field object
	owner     *types.TypeName // the struct's named type (nil for anonymous structs)
	fieldName string
	guardName string
}

// collectGuards parses every `memlint:guard` annotation in the module,
// filling c.guards and reporting malformed annotations (unknown or
// non-mutex guard names) as lockguard findings.
func (c *concFacts) collectGuards(pkgs []*Package) {
	c.guards = make(map[*types.Var]*guardedField)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				owner, _ := pkg.Info.Defs[ts.Name].(*types.TypeName)
				c.collectStructGuards(pkg, st, owner)
				return true
			})
		}
	}
}

func (c *concFacts) collectStructGuards(pkg *Package, st *ast.StructType, owner *types.TypeName) {
	for _, field := range st.Fields.List {
		guardName, pos, ok := guardAnnotation(field)
		if !ok {
			continue
		}
		guard := structFieldByName(pkg, st, guardName)
		if guard == nil || !isMutexType(guard.Type()) {
			c.lockDiags = append(c.lockDiags, modDiag{
				pkg: pkg, pos: pos,
				msg: fmt.Sprintf("memlint:guard names %q, which is not a sync.Mutex/RWMutex field of the same struct", guardName),
			})
			continue
		}
		for _, name := range field.Names {
			fv, ok := pkg.Info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			c.guards[fv] = &guardedField{
				field: fv, guard: guard, owner: owner,
				fieldName: name.Name, guardName: guardName,
			}
		}
		if len(field.Names) == 0 {
			c.lockDiags = append(c.lockDiags, modDiag{
				pkg: pkg, pos: pos,
				msg: "memlint:guard cannot annotate an embedded field",
			})
		}
	}
}

// guardAnnotation extracts the guard name from a field's doc or trailing
// comment: `// memlint:guard mu` (space after // optional).
func guardAnnotation(field *ast.Field) (name string, pos token.Pos, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, cmt := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(cmt.Text, "//"))
			rest, found := strings.CutPrefix(text, "memlint:guard")
			if !found {
				continue
			}
			// Only the first token names the guard; anything after it is
			// commentary.
			name = ""
			if fields := strings.Fields(rest); len(fields) > 0 {
				name = fields[0]
			}
			return name, cmt.Pos(), true
		}
	}
	return "", token.NoPos, false
}

// structFieldByName finds the *types.Var of the struct field called name.
func structFieldByName(pkg *Package, st *ast.StructType, name string) *types.Var {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name == name {
				v, _ := pkg.Info.Defs[n].(*types.Var)
				return v
			}
		}
	}
	return nil
}

// isMutexType reports sync.Mutex or sync.RWMutex (possibly behind a
// pointer).
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// lockNeed records that a function requires a guard held by its callers,
// with the diagnostic to emit if no caller can discharge it.
type lockNeed struct {
	pkg *Package
	pos token.Pos
	msg string
}

// unprotAccess is one guarded-field access found without its guard held.
type unprotAccess struct {
	gf   *guardedField
	base string // rendered path of the receiver expression ("s", "s.inner")
	pos  token.Pos
	// propagate: the access is through the method's own receiver, in a
	// function following the callers-hold-the-lock convention, and not
	// inside a spawned goroutine — so the requirement moves to callers.
	propagate bool
}

// runLockGuard performs the module-wide analysis: per-function lock-set
// walks, then fixed-point propagation of caller-held requirements over
// the call graph, appending findings to c.lockDiags.
func (c *concFacts) runLockGuard(graph *CallGraph) {
	if len(c.guards) == 0 {
		return
	}
	heldAt := make(map[*ast.CallExpr]map[string]bool)
	needs := make(map[*types.Func]map[*guardedField]lockNeed)
	for _, node := range graph.Nodes() {
		w := &lockWalker{conc: c, pkg: node.Pkg, heldAt: heldAt}
		w.locals = compositeLocals(node.Pkg, node.Decl.Body)
		recvName := receiverName(node.Decl)
		w.walkBody(node.Decl.Body, lockState{}, false)
		convention := followsHeldConvention(node)
		for _, acc := range w.accesses {
			if acc.base != "" && w.locals[acc.base] {
				continue // freshly constructed in this function; not shared yet
			}
			direct := fmt.Sprintf("%s.%s is guarded by %q and accessed without it held",
				acc.base, acc.gf.fieldName, acc.base+"."+acc.gf.guardName)
			if acc.propagate && convention && recvName != "" && acc.base == recvName {
				if needs[node.Fn] == nil {
					needs[node.Fn] = make(map[*guardedField]lockNeed)
				}
				if _, seen := needs[node.Fn][acc.gf]; !seen {
					needs[node.Fn][acc.gf] = lockNeed{pkg: node.Pkg, pos: acc.pos, msg: direct}
				}
				continue
			}
			c.lockDiags = append(c.lockDiags, modDiag{pkg: node.Pkg, pos: acc.pos, msg: direct})
		}
	}
	c.propagateNeeds(graph, needs, heldAt)
}

// lockState is the set of held mutexes, keyed by rendered expression
// path ("s.mu").
type lockState map[string]bool

func copyState(h lockState) lockState {
	c := make(lockState, len(h))
	for k := range h {
		c[k] = true
	}
	return c
}

// lockWalker performs the intraprocedural lock-set walk of one function
// body, recording guarded-field accesses with their held sets and a
// held-set snapshot at every call site (for the propagation phase).
type lockWalker struct {
	conc     *concFacts
	pkg      *Package
	heldAt   map[*ast.CallExpr]map[string]bool
	locals   map[string]bool
	accesses []unprotAccess
}

func (w *lockWalker) walkBody(body *ast.BlockStmt, held lockState, inGo bool) {
	for _, s := range body.List {
		w.stmt(s, held, inGo)
	}
}

func (w *lockWalker) stmt(s ast.Stmt, held lockState, inGo bool) {
	switch x := s.(type) {
	case nil:
	case *ast.ExprStmt:
		w.expr(x.X, held, inGo)
		if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
			if path, lock, ok := lockOp(w.pkg, call); ok {
				if lock {
					held[path] = true
				} else {
					delete(held, path)
				}
			}
		}
	case *ast.DeferStmt:
		if _, lock, ok := lockOp(w.pkg, x.Call); ok && !lock {
			// defer mu.Unlock(): the mutex stays held until return; no
			// change to the walked state.
			w.recordCall(x.Call, held)
			return
		}
		w.deferredOrGoCall(x.Call, held, inGo, false)
	case *ast.GoStmt:
		w.deferredOrGoCall(x.Call, held, inGo, true)
	case *ast.BlockStmt:
		w.walkBody(x, copyState(held), inGo)
	case *ast.IfStmt:
		if x.Init != nil {
			w.stmt(x.Init, held, inGo)
		}
		w.expr(x.Cond, held, inGo)
		w.stmt(x.Body, held, inGo)
		if x.Else != nil {
			w.stmt(x.Else, held, inGo)
		}
	case *ast.ForStmt:
		inner := copyState(held)
		if x.Init != nil {
			w.stmt(x.Init, inner, inGo)
		}
		if x.Cond != nil {
			w.expr(x.Cond, inner, inGo)
		}
		w.walkBody(x.Body, copyState(inner), inGo)
		if x.Post != nil {
			w.stmt(x.Post, copyState(inner), inGo)
		}
	case *ast.RangeStmt:
		w.expr(x.X, held, inGo)
		w.walkBody(x.Body, copyState(held), inGo)
	case *ast.SwitchStmt:
		if x.Init != nil {
			w.stmt(x.Init, held, inGo)
		}
		if x.Tag != nil {
			w.expr(x.Tag, held, inGo)
		}
		for _, clause := range x.Body.List {
			cc := clause.(*ast.CaseClause)
			inner := copyState(held)
			for _, e := range cc.List {
				w.expr(e, inner, inGo)
			}
			for _, st := range cc.Body {
				w.stmt(st, inner, inGo)
			}
		}
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			w.stmt(x.Init, held, inGo)
		}
		w.stmt(x.Assign, held, inGo)
		for _, clause := range x.Body.List {
			cc := clause.(*ast.CaseClause)
			inner := copyState(held)
			for _, st := range cc.Body {
				w.stmt(st, inner, inGo)
			}
		}
	case *ast.SelectStmt:
		for _, clause := range x.Body.List {
			cc := clause.(*ast.CommClause)
			inner := copyState(held)
			if cc.Comm != nil {
				w.stmt(cc.Comm, inner, inGo)
			}
			for _, st := range cc.Body {
				w.stmt(st, inner, inGo)
			}
		}
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			w.expr(e, held, inGo)
		}
		for _, e := range x.Lhs {
			w.expr(e, held, inGo)
		}
	case *ast.IncDecStmt:
		w.expr(x.X, held, inGo)
	case *ast.SendStmt:
		w.expr(x.Chan, held, inGo)
		w.expr(x.Value, held, inGo)
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			w.expr(e, held, inGo)
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, held, inGo)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(x.Stmt, held, inGo)
	}
}

// expr scans an expression for guarded-field accesses, call sites and
// nested function literals under the current held set.
func (w *lockWalker) expr(e ast.Expr, held lockState, inGo bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// An inline literal runs on the current goroutine with the
			// current locks; its body is walked with a copy of the state.
			w.walkBody(x.Body, copyState(held), inGo)
			return false
		case *ast.CallExpr:
			w.recordCall(x, held)
		case *ast.SelectorExpr:
			w.checkAccess(x, held, inGo)
		}
		return true
	})
}

// deferredOrGoCall handles the immediate call of a defer or go
// statement. A spawned goroutine starts with no locks held; a deferred
// call runs with whatever is held at return, approximated by the current
// state.
func (w *lockWalker) deferredOrGoCall(call *ast.CallExpr, held lockState, inGo, isGo bool) {
	effective := held
	if isGo {
		effective = lockState{}
	}
	for _, arg := range call.Args {
		w.expr(arg, held, inGo) // arguments evaluate at the statement, under current locks
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		w.walkBody(lit.Body, copyState(effective), inGo || isGo)
	} else if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.expr(sel.X, held, inGo)
	}
	w.recordCall(call, effective)
}

var emptyHeld = map[string]bool{}

// recordCall snapshots the held set at a call site, keyed by the call
// expression so the propagation phase can match graph edges to it.
func (w *lockWalker) recordCall(call *ast.CallExpr, held lockState) {
	if _, done := w.heldAt[call]; done {
		return // first visit wins (go/defer record their effective state first)
	}
	if len(held) == 0 {
		w.heldAt[call] = emptyHeld
		return
	}
	w.heldAt[call] = copyState(held)
}

// checkAccess records sel if it reads/writes a guarded field while its
// guard is not held on the same base path.
func (w *lockWalker) checkAccess(sel *ast.SelectorExpr, held lockState, inGo bool) {
	s, ok := w.pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	fv, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	gf, ok := w.conc.guards[fv]
	if !ok {
		return
	}
	base := exprPath(sel.X)
	if base != "" && held[base+"."+gf.guardName] {
		return
	}
	w.accesses = append(w.accesses, unprotAccess{
		gf: gf, base: base, pos: sel.Sel.Pos(), propagate: !inGo,
	})
}

// lockOp recognizes path.Lock()/RLock()/Unlock()/RUnlock() on a
// sync.Mutex or RWMutex, returning the rendered mutex path and whether
// the call acquires (true) or releases (false).
func lockOp(pkg *Package, call *ast.CallExpr) (path string, lock, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		lock = true
	case "Unlock", "RUnlock":
		lock = false
	default:
		return "", false, false
	}
	tv, okT := pkg.Info.Types[sel.X]
	if !okT || !isMutexType(tv.Type) {
		return "", false, false
	}
	path = exprPath(sel.X)
	if path == "" {
		return "", false, false
	}
	return path, lock, true
}

// exprPath renders a selector chain of identifiers as a dotted path
// ("s.inner"), unwrapping parens, & and *. Anything else (calls,
// indexing) yields "".
func exprPath(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprPath(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return exprPath(x.X)
		}
	case *ast.StarExpr:
		return exprPath(x.X)
	}
	return ""
}

// compositeLocals returns the names of local variables assigned a
// composite literal (or its address) in body — the constructor pattern,
// where the value is not yet shared and needs no locking.
func compositeLocals(pkg *Package, body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	isComposite := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = ast.Unparen(u.X)
		}
		if _, ok := e.(*ast.CompositeLit); ok {
			return true
		}
		if call, ok := e.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "new" {
					return true
				}
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, rhs := range x.Rhs {
				if !isComposite(rhs) {
					continue
				}
				if id, ok := x.Lhs[i].(*ast.Ident); ok {
					out[id.Name] = true
				}
			}
		case *ast.ValueSpec:
			if len(x.Names) != len(x.Values) {
				return true
			}
			for i, v := range x.Values {
				if isComposite(v) {
					out[x.Names[i].Name] = true
				}
			}
		}
		return true
	})
	return out
}

// receiverName returns the name of the method's receiver, or "".
func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return ""
	}
	name := fd.Recv.List[0].Names[0].Name
	if name == "_" {
		return ""
	}
	return name
}

// followsHeldConvention reports whether a function is allowed to assume
// its callers hold the guard: unexported methods and methods whose name
// ends in "Locked" (the repo's publishLocked convention). Exported
// non-Locked methods form the public API and must lock for themselves.
func followsHeldConvention(node *CallNode) bool {
	name := node.Fn.Name()
	return strings.HasSuffix(name, "Locked") || !ast.IsExported(name)
}

// propagateNeeds runs the fixed point: a function's caller-held
// requirement is discharged by call sites that hold the guard, moved to
// callers that themselves follow the convention (same receiver), and
// reported as a violation everywhere else.
func (c *concFacts) propagateNeeds(graph *CallGraph, needs map[*types.Func]map[*guardedField]lockNeed, heldAt map[*ast.CallExpr]map[string]bool) {
	edgeSatisfied := func(e *CallEdge, gf *guardedField) bool {
		if e.Kind == EdgeGo {
			return false // goroutines never inherit the spawner's locks
		}
		base := callBasePath(e.Site)
		return base != "" && heldAt[e.Site][base+"."+gf.guardName]
	}
	// propagatable: the caller may carry the requirement upward — it
	// calls through its own receiver, follows the convention itself, and
	// the transfer is a synchronous call.
	edgePropagatable := func(e *CallEdge, gf *guardedField) bool {
		if e.Kind == EdgeGo {
			return false
		}
		recv := receiverName(e.Caller.Decl)
		return recv != "" && callBasePath(e.Site) == recv && followsHeldConvention(e.Caller)
	}
	for changed := true; changed; {
		changed = false
		for _, node := range graph.Nodes() {
			for gf := range needs[node.Fn] {
				for _, e := range node.In {
					if e.Caller.Decl == nil || edgeSatisfied(e, gf) || !edgePropagatable(e, gf) {
						continue
					}
					if _, seen := needs[e.Caller.Fn][gf]; seen {
						continue
					}
					if needs[e.Caller.Fn] == nil {
						needs[e.Caller.Fn] = make(map[*guardedField]lockNeed)
					}
					needs[e.Caller.Fn][gf] = lockNeed{
						pkg: e.Caller.Pkg, pos: e.Site.Pos(),
						msg: fmt.Sprintf("call to %s requires %q held (guards %s)",
							e.Callee.Fn.Name(), callBasePath(e.Site)+"."+gf.guardName, ownerDotField(gf)),
					}
					changed = true
				}
			}
		}
	}
	// Emission: requirements that no caller discharges become findings.
	for _, node := range graph.Nodes() {
		reqs := needs[node.Fn]
		if len(reqs) == 0 {
			continue
		}
		for _, gf := range sortedGuardKeys(reqs) {
			need := reqs[gf]
			if len(node.In) == 0 {
				// Never called from analyzed code: a *Locked helper keeps
				// its contract in its name; anything else is unproven.
				if !strings.HasSuffix(node.Fn.Name(), "Locked") {
					c.lockDiags = append(c.lockDiags, modDiag{pkg: need.pkg, pos: need.pos, msg: need.msg})
				}
				continue
			}
			for _, e := range node.In {
				if e.Caller.Decl == nil || edgeSatisfied(e, gf) || edgePropagatable(e, gf) {
					continue
				}
				c.lockDiags = append(c.lockDiags, modDiag{
					pkg: e.Caller.Pkg, pos: e.Site.Pos(),
					msg: fmt.Sprintf("call to %s requires %q held (guards %s)",
						e.Callee.Fn.Name(), requiredPathAt(e, gf), ownerDotField(gf)),
				})
			}
		}
	}
}

// requiredPathAt renders the guard the caller would need at this call
// site ("s.mu"), falling back to the bare guard name for unrenderable
// bases.
func requiredPathAt(e *CallEdge, gf *guardedField) string {
	if base := callBasePath(e.Site); base != "" {
		return base + "." + gf.guardName
	}
	return gf.guardName
}

func ownerDotField(gf *guardedField) string {
	if gf.owner != nil {
		return gf.owner.Name() + "." + gf.fieldName
	}
	return gf.fieldName
}

// callBasePath renders the receiver path of a method call site ("s" in
// s.flushLocked()), or "" for non-method calls.
func callBasePath(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return exprPath(sel.X)
	}
	return ""
}

// sortedGuardKeys orders guarded fields by declaration position for
// deterministic emission.
func sortedGuardKeys(m map[*guardedField]lockNeed) []*guardedField {
	keys := make([]*guardedField, 0, len(m))
	for gf := range m {
		keys = append(keys, gf)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].field.Pos() < keys[j].field.Pos() })
	return keys
}
