package analysis

import (
	"go/ast"
	"go/types"
)

// MapRangeAnalyzer flags `for range` statements over maps whose body
// writes to an ordering-sensitive sink — an io.Writer-style method, a
// fmt.Fprint*/fmt.Print* call, a string builder, an encoder, or one of
// the configured sink types (trace.Recorder, the export table builder) —
// without an intervening sort inside the loop. Go randomizes map
// iteration order, so such a loop emits bytes in a different order every
// run: the exact class of bug that silently breaks the repo's
// byte-identical artifact guarantees.
//
// The conforming pattern — collect keys, sort, range the sorted slice —
// never ranges the map with a sink in the body, so it stays silent.
var MapRangeAnalyzer = &Analyzer{
	Name: "maprange",
	Doc:  "map iteration feeding a writer/encoder/recorder without a sort",
	Run:  runMapRange,
}

// sinkMethodNames are method names that commit bytes or events in call
// order when invoked on a writer-like or builder-like receiver.
var sinkMethodNames = stringSet([]string{
	"Write", "WriteString", "WriteByte", "WriteRune", "WriteTo",
	"Encode", "EncodeToken", "Fprint", "Fprintf", "Fprintln",
})

// sinkPkgTypes are well-known stdlib receiver types whose every method
// call inside the loop counts as a sink (order-preserving buffers and
// encoders).
var sinkPkgTypes = map[string]bool{
	"strings.Builder":       true,
	"bytes.Buffer":          true,
	"bufio.Writer":          true,
	"encoding/json.Encoder": true,
	"encoding/xml.Encoder":  true,
	"encoding/csv.Writer":   true,
	"text/tabwriter.Writer": true,
}

func runMapRange(pass *Pass) {
	sinkTypes := stringSet(pass.Config.SinkTypes)
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Pkg.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if sink := findSink(pass, rng.Body, sinkTypes); sink != "" && !hasSortCall(pass, rng.Body) {
				pass.Reportf(rng.Pos(), "map iteration order reaches %s without a sort; iterate sorted keys instead", sink)
			}
			return true
		})
	}
}

// findSink returns a description of the first ordering-sensitive sink
// call inside body, or "".
func findSink(pass *Pass, body *ast.BlockStmt, sinkTypes map[string]bool) string {
	info := pass.Pkg.Info
	var sink string
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := info.Uses[sel.Sel]
		if obj == nil {
			return true
		}
		// fmt.Fprint* / fmt.Print* package functions.
		if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			switch obj.Name() {
			case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
				sink = "fmt." + obj.Name()
				return false
			}
		}
		// Method calls: classify by receiver type.
		selection, ok := info.Selections[sel]
		if !ok || selection.Kind() != types.MethodVal {
			return true
		}
		recv := namedRecvType(selection.Recv())
		if recv == nil {
			// Interface receivers: writer-shaped method names still count.
			if _, isIface := selection.Recv().Underlying().(*types.Interface); isIface && sinkMethodNames[obj.Name()] {
				sink = "interface method " + obj.Name()
				return false
			}
			return true
		}
		q := qualifiedType(recv.Obj())
		switch {
		case sinkTypes[q]:
			sink = "(" + q + ")." + obj.Name()
		case sinkPkgTypes[q]:
			sink = "(" + q + ")." + obj.Name()
		case sinkMethodNames[obj.Name()] && implementsWriter(recv):
			sink = "(" + q + ")." + obj.Name()
		}
		return sink == ""
	})
	return sink
}

// namedRecvType unwraps a (possibly pointer) receiver type to its named
// type, or nil.
func namedRecvType(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// implementsWriter reports whether t (or *t) has a Write([]byte) (int,
// error) method — the io.Writer shape, checked structurally so the
// loader needn't import io.
func implementsWriter(named *types.Named) bool {
	for _, t := range []types.Type{named, types.NewPointer(named)} {
		ms := types.NewMethodSet(t)
		for i := 0; i < ms.Len(); i++ {
			m := ms.At(i).Obj()
			if m.Name() != "Write" {
				continue
			}
			sig, ok := m.Type().(*types.Signature)
			if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 2 {
				continue
			}
			if s, ok := sig.Params().At(0).Type().(*types.Slice); ok {
				if b, ok := s.Elem().(*types.Basic); ok && b.Kind() == types.Byte {
					return true
				}
			}
		}
	}
	return false
}

// hasSortCall reports whether body calls into package sort or a
// slices.Sort* function — the explicit ordering that makes a map range
// deterministic again.
func hasSortCall(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := usedObject(pass.Pkg.Info, call.Fun)
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		switch obj.Pkg().Path() {
		case "sort":
			found = true
		case "slices":
			if len(obj.Name()) >= 4 && obj.Name()[:4] == "Sort" {
				found = true
			}
		}
		return !found
	})
	return found
}
