package analysis

import (
	"go/ast"
	"go/types"
)

// NilHookAnalyzer enforces the repo's nil-hook contract: the
// observability, tracing, profiling, fault and checkpoint hook types are
// documented as inert when nil — `var r *trace.Recorder; r.Append(ev)`
// must be a no-op, never a panic — so instrumentation can be threaded
// unconditionally and cost nothing when disabled (the halo-exchange
// bench's 385 allocs/op pin depends on it).
//
// For every configured hook type, each exported pointer-receiver method
// that dereferences the receiver (reads or writes one of its fields)
// must open with a nil-receiver guard:
//
//	func (r *Recorder) Append(ev Event) {
//		if r == nil { return }
//		...
//	}
//
// Methods that never touch receiver state — pure delegations like
// Counter.Inc calling c.Add, whose callee guards itself — are exempt:
// calling a method on a nil pointer is safe as long as nothing
// dereferences it.
var NilHookAnalyzer = &Analyzer{
	Name: "nilhook",
	Doc:  "exported hook-type methods must nil-guard before touching fields",
	Run:  runNilHook,
}

func runNilHook(pass *Pass) {
	hooks := stringSet(pass.Config.NilHookTypes)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			tn := receiverTypeName(pass.Pkg, fd)
			if tn == "" || !hooks[pass.Pkg.PkgPath+"."+tn] {
				continue
			}
			if _, isPtr := fd.Recv.List[0].Type.(*ast.StarExpr); !isPtr {
				continue // value receivers copy; nil is not representable
			}
			recv := receiverObject(pass, fd)
			if recv == nil || recv.Name() == "_" || recv.Name() == "" {
				continue // unnamed receiver: the body cannot dereference it
			}
			if !derefsReceiver(pass, fd.Body, recv) {
				continue // delegation-only method; nil-safe by construction
			}
			if hasNilGuard(pass, fd.Body, recv) {
				continue
			}
			pass.Reportf(fd.Name.Pos(), "exported method (*%s).%s dereferences the receiver without a leading nil guard; nil %s hooks must be inert",
				tn, fd.Name.Name, tn)
		}
	}
}

// receiverObject returns the types.Var of the method's receiver.
func receiverObject(pass *Pass, fd *ast.FuncDecl) types.Object {
	names := fd.Recv.List[0].Names
	if len(names) != 1 {
		return nil
	}
	return pass.Pkg.Info.Defs[names[0]]
}

// derefsReceiver reports whether body reads or writes a field through the
// receiver (r.field, *r, or ranges/indexes r itself). Method calls on the
// receiver (r.Method(...)) do not count: they are dispatched on the
// pointer without dereferencing it, and the callee enforces its own
// guard.
func derefsReceiver(pass *Pass, body *ast.BlockStmt, recv types.Object) bool {
	info := pass.Pkg.Info
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && info.Uses[id] == recv {
				if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
					found = true
					return false
				}
			}
		case *ast.StarExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && info.Uses[id] == recv {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// hasNilGuard reports whether the method body opens with a nil-receiver
// guard, in either accepted form:
//
//	if r == nil { ... return }      // early exit (possibly r == nil || more)
//	if r != nil { ...all derefs... } // inverted: state touched only inside
func hasNilGuard(pass *Pass, body *ast.BlockStmt, recv types.Object) bool {
	if len(body.List) == 0 {
		return false
	}
	ifStmt, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return false
	}
	if condChecksNil(pass, ifStmt.Cond, recv) && branchTerminates(ifStmt.Body) {
		return true
	}
	if leftmostIsNotNil(pass, ifStmt.Cond, recv) && !derefsOutsideGuard(pass, body, ifStmt, recv) {
		return true
	}
	return false
}

// leftmostIsNotNil reports whether the first-evaluated conjunct of cond
// is `recv != nil`, so the nil check runs before anything else in the
// condition can dereference the receiver.
func leftmostIsNotNil(pass *Pass, cond ast.Expr, recv types.Object) bool {
	info := pass.Pkg.Info
	e := ast.Unparen(cond)
	for {
		be, ok := e.(*ast.BinaryExpr)
		if !ok {
			return false
		}
		if be.Op.String() == "&&" {
			e = ast.Unparen(be.X)
			continue
		}
		if be.Op.String() != "!=" {
			return false
		}
		isRecv := func(x ast.Expr) bool {
			id, ok := ast.Unparen(x).(*ast.Ident)
			return ok && info.Uses[id] == recv
		}
		isNil := func(x ast.Expr) bool {
			id, ok := ast.Unparen(x).(*ast.Ident)
			return ok && id.Name == "nil"
		}
		return (isRecv(be.X) && isNil(be.Y)) || (isNil(be.X) && isRecv(be.Y))
	}
}

// derefsOutsideGuard reports whether any receiver dereference in the
// method body falls outside the inverted guard's then-branch.
func derefsOutsideGuard(pass *Pass, body *ast.BlockStmt, guard *ast.IfStmt, recv types.Object) bool {
	info := pass.Pkg.Info
	outside := false
	inGuard := func(n ast.Node) bool {
		return n.Pos() >= guard.Body.Pos() && n.End() <= guard.Body.End()
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if outside {
			return false
		}
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && info.Uses[id] == recv {
				if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal && !inGuard(x) {
					outside = true
					return false
				}
			}
		case *ast.StarExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && info.Uses[id] == recv && !inGuard(x) {
				outside = true
				return false
			}
		}
		return true
	})
	return outside
}

// condChecksNil walks the top-level || chain of cond looking for a
// `recv == nil` comparison.
func condChecksNil(pass *Pass, cond ast.Expr, recv types.Object) bool {
	info := pass.Pkg.Info
	switch x := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if x.Op.String() == "||" {
			return condChecksNil(pass, x.X, recv) || condChecksNil(pass, x.Y, recv)
		}
		if x.Op.String() != "==" {
			return false
		}
		isRecv := func(e ast.Expr) bool {
			id, ok := ast.Unparen(e).(*ast.Ident)
			return ok && info.Uses[id] == recv
		}
		isNil := func(e ast.Expr) bool {
			id, ok := ast.Unparen(e).(*ast.Ident)
			return ok && id.Name == "nil"
		}
		return (isRecv(x.X) && isNil(x.Y)) || (isNil(x.X) && isRecv(x.Y))
	}
	return false
}

// branchTerminates reports whether the guard's then-branch ends in a
// return or panic, i.e. actually protects the rest of the method.
func branchTerminates(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
