package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// SuppressCheck is the pseudo-check name under which malformed and stale
// //memlint:allow comments are reported. It exists so that suppressions
// are themselves linted: an allowance must name a real check, give a
// reason, and actually silence something — otherwise it is noise that
// will outlive the code it excused.
const SuppressCheck = "suppress"

// allowPrefix introduces a suppression comment:
//
//	//memlint:allow <check> — <reason>
//
// placed on the offending line or on the line directly above it. The
// separator may be an em dash (—), an en dash (–) or "--".
const allowPrefix = "memlint:allow"

// suppression is one parsed //memlint:allow comment.
type suppression struct {
	pos    token.Pos
	line   int
	check  string
	reason string
	used   bool
	// lastLine: the comment sits on the final line of its file. Such a
	// comment additionally covers the line above it: a trailing comment
	// on a file's closing line (no newline after it) has nothing below
	// it to suppress, so the target is unambiguous.
	lastLine bool
}

// collectSuppressions parses every memlint:allow comment in the package.
// Malformed comments (unknown check, missing reason) are reported
// immediately under the "suppress" check and excluded from matching.
func collectSuppressions(pkg *Package, known map[string]bool, report func(token.Pos, string, ...any)) []*suppression {
	var sups []*suppression
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
				rest, ok := strings.CutPrefix(text, allowPrefix)
				if !ok {
					continue
				}
				s := parseAllow(pkg, c, rest, known, report)
				if s != nil {
					sups = append(sups, s)
				}
			}
		}
	}
	return sups
}

// parseAllow validates one suppression body (" <check> — <reason>").
func parseAllow(pkg *Package, c *ast.Comment, rest string, known map[string]bool, report func(token.Pos, string, ...any)) *suppression {
	rest = strings.TrimSpace(rest)
	check, reason := rest, ""
	for _, sep := range []string{"—", "–", "--"} {
		if i := strings.Index(rest, sep); i >= 0 {
			check = strings.TrimSpace(rest[:i])
			reason = strings.TrimSpace(rest[i+len(sep):])
			break
		}
	}
	switch {
	case check == "":
		report(c.Pos(), "malformed //memlint:allow: missing check name (want \"//memlint:allow <check> — <reason>\")")
		return nil
	case !known[check]:
		report(c.Pos(), "//memlint:allow names unknown check %q", check)
		return nil
	case reason == "":
		report(c.Pos(), "//memlint:allow %s has no reason; justify the suppression after an em dash", check)
		return nil
	}
	line := pkg.Fset.Position(c.Pos()).Line
	lastLine := false
	if f := pkg.Fset.File(c.Pos()); f != nil {
		lastLine = line == f.LineCount()
	}
	return &suppression{
		pos:      c.Pos(),
		line:     line,
		check:    check,
		reason:   reason,
		lastLine: lastLine,
	}
}

// applySuppressions filters raw diagnostics through the package's
// //memlint:allow comments and appends "suppress" findings for malformed
// and stale ones. A suppression on line L silences matching diagnostics
// on line L (trailing comment) and line L+1 (comment above); when L is
// the final line of its file — e.g. a comment trailing the closing
// brace of the last function, with no newline after it — it also covers
// line L-1, since nothing can follow it.
func applySuppressions(pkg *Package, raw []Diagnostic, analyzers []*Analyzer) []Diagnostic {
	// The allow vocabulary is the full registry, not just the analyzers
	// of this run: `-checks determinism` must not call an allowance for
	// another check a typo. Staleness, in contrast, is only decidable
	// for checks that actually ran.
	known := stringSet(CheckNames(Analyzers()))
	running := stringSet(CheckNames(analyzers))
	var out []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		pass := &Pass{Pkg: pkg, diags: &out, check: SuppressCheck}
		pass.Reportf(pos, format, args...)
	}
	sups := collectSuppressions(pkg, known, report)
	byFile := make(map[string][]*suppression)
	for _, s := range sups {
		f := pkg.Fset.Position(s.pos).Filename
		byFile[f] = append(byFile[f], s)
	}
	for _, d := range raw {
		suppressed := false
		for _, s := range byFile[d.Path] {
			if s.check == d.Check && (s.line == d.Line || s.line == d.Line-1 || (s.lastLine && s.line == d.Line+1)) {
				s.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, s := range sups {
		if !s.used && running[s.check] {
			report(s.pos, "stale //memlint:allow %s: no %s diagnostic on this or the next line — remove it", s.check, s.check)
		}
	}
	return out
}
