// Package clean is a memlint fixture that conforms to every invariant:
// running all analyzers over it must produce zero diagnostics.
package clean

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// ErrEmpty is a sentinel matched only through errors.Is below.
var ErrEmpty = errors.New("empty store")

// Store is a nil-tolerant hook type (listed in the test config); every
// exported method guards the receiver before touching state.
type Store struct {
	vals map[string]float64
}

// Put records a sample; inert on a nil receiver.
func (s *Store) Put(k string, v float64) {
	if s == nil {
		return
	}
	if s.vals == nil {
		s.vals = make(map[string]float64)
	}
	s.vals[k] = v
}

// Dump writes the store sorted by key, so output is byte-stable.
func (s *Store) Dump(w io.Writer) error {
	if s == nil {
		return fmt.Errorf("dumping store: %w", ErrEmpty)
	}
	keys := make([]string, 0, len(s.vals))
	for k := range s.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s %g\n", k, s.vals[k]); err != nil {
			return fmt.Errorf("dumping store: %w", err)
		}
	}
	return nil
}

// IsEmptyErr matches the sentinel through the wrap chain.
func IsEmptyErr(err error) bool {
	return errors.Is(err, ErrEmpty)
}

// Sample draws from a caller-seeded source at a caller-supplied time.
func Sample(seed int64, at time.Time) (float64, time.Time) {
	return rand.New(rand.NewSource(seed)).Float64(), at
}
