// Conforming concurrency code: the lockguard, goleak and ctxflow
// analyzers must all stay silent here.
package clean

import (
	"context"
	"sync"
)

// Guarded is a correctly locked counter: every access to n holds mu,
// including the one from the worker goroutine.
type Guarded struct {
	mu sync.Mutex
	// memlint:guard mu
	n int
}

// Incr locks around the write.
func (g *Guarded) Incr() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}

// Snapshot locks around the read.
func (g *Guarded) Snapshot() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// Watch spawns a cancellation-aware goroutine: the context flows into
// the blocking select, which doubles as goleak's termination proof.
func Watch(ctx context.Context, events chan int, g *Guarded) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-events:
				g.Incr()
			}
		}
	}()
}

// Consume drains a channel its caller closes and signals a WaitGroup
// the caller waits on — both classic terminating shapes.
func Consume(jobs chan int, g *Guarded) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range jobs {
			g.Incr()
		}
	}()
	close(jobs)
	wg.Wait()
}
