// Package ctxflow is a memlint fixture: context parameters that are
// dropped on blocking paths (flagged at the parameter), contexts that
// flow down correctly, and dropped contexts on non-blocking paths
// (silent — nothing there to cancel).
package ctxflow

import (
	"context"
	"sync"
)

// Send drops its ctx and then blocks on a send — flagged.
func Send(ctx context.Context, ch chan int) { // want "never uses it, yet reaches a blocking operation \\(channel send\\)"
	ch <- 1
}

// Forward threads its ctx into the blocking select — silent.
func Forward(ctx context.Context, ch chan int) {
	forward(ctx, ch)
}

func forward(ctx context.Context, ch chan int) {
	select {
	case <-ctx.Done():
	case ch <- 1:
	}
}

// Pure drops its ctx but never blocks — silent.
func Pure(ctx context.Context, a, b int) int {
	return a + b
}

// Discard explicitly discards the context while waiting on a condition
// variable — flagged: the discard is the bug, not an exemption.
func Discard(_ context.Context, c *sync.Cond) { // want "sync.Cond.Wait"
	c.L.Lock()
	c.Wait()
	c.L.Unlock()
}

// Transitive drops its ctx and reaches blocking work through a callee —
// flagged, naming where the blocking happens.
func Transitive(ctx context.Context, ch chan int) { // want "channel receive in ctxflow.sink"
	sink(ch)
}

func sink(ch chan int) {
	<-ch
}
