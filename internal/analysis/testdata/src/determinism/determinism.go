// Package determinism is a memlint fixture: nondeterministic process
// state reads that the determinism check must flag, next to conforming
// injected-clock code it must leave alone.
package determinism

import (
	"math/rand"
	"os"
	"time"
)

// Stamp reads the wall clock directly — flagged.
func Stamp() time.Time {
	return time.Now() // want "time.Now is nondeterministic"
}

// Elapsed uses time.Since (a hidden time.Now) — flagged.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since is nondeterministic"
}

// Smuggle stores the clock func without calling it — still flagged: the
// value read later is just as nondeterministic.
func Smuggle() func() time.Time {
	return time.Now // want "time.Now is nondeterministic"
}

// Jitter draws from the globally seeded source — flagged.
func Jitter() float64 {
	return rand.Float64() // want "math/rand.Float64 is nondeterministic"
}

// Pid reads process identity — flagged.
func Pid() int {
	return os.Getpid() // want "os.Getpid is nondeterministic"
}

// WallClock is this fixture's declared clock-injection point (allowlisted
// in the test config) — silent.
func WallClock() time.Time {
	return time.Now()
}

// SeededDraw uses an explicitly seeded local source — silent: the result
// is a pure function of the seed.
func SeededDraw(seed int64) float64 {
	return rand.New(rand.NewSource(seed)).Float64()
}

// InjectedStamp takes the clock from its caller — silent, the conforming
// pattern the check pushes code toward.
func InjectedStamp(now func() time.Time) time.Time {
	return now()
}
