// Package durable is a memlint fixture: direct artifact writes that the
// durable check must flag, and a suppressed scratch-file use it must
// honor.
package durable

import "os"

// SaveReport writes an artifact directly — flagged: a crash mid-write
// leaves a torn file.
func SaveReport(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want "direct os.WriteFile can tear on crash"
}

// OpenArtifact creates the destination in place — flagged.
func OpenArtifact(path string) (*os.File, error) {
	return os.Create(path) // want "direct os.Create can tear on crash"
}

// Publish renames without the stage-and-fsync protocol — flagged.
func Publish(tmp, final string) error {
	return os.Rename(tmp, final) // want "direct os.Rename can tear on crash"
}

// Scratch writes a deliberately non-durable temp file, suppressed in
// place with a reason — silent.
func Scratch(path string, data []byte) error {
	//memlint:allow durable — scratch file for a local diff, never an artifact
	return os.WriteFile(path, data, 0o600)
}

// ReadBack only reads — silent.
func ReadBack(path string) ([]byte, error) {
	return os.ReadFile(path)
}
