// Package errhygiene is a memlint fixture: sentinel comparisons and
// fmt.Errorf calls in both the broken and the conforming form.
package errhygiene

import (
	"errors"
	"fmt"
	"io"
)

// ErrBudget is a sentinel that callers may see wrapped.
var ErrBudget = errors.New("budget exhausted")

// Retry compares a sentinel by identity — flagged: a wrapped ErrBudget
// never matches.
func Retry(err error) bool {
	return err == ErrBudget // want "error compared with ==; wrapped sentinels never match"
}

// Keep compares by identity with != — flagged.
func Keep(err error) bool {
	return err != io.EOF // want "error compared with !=; wrapped sentinels never match"
}

// Wrap formats the cause with %v — flagged: the chain is dropped.
func Wrap(err error) error {
	return fmt.Errorf("loading plan: %v", err) // want "fmt.Errorf formats an error without %w"
}

// NilCheck compares against nil — silent: that is not a sentinel match.
func NilCheck(err error) bool {
	return err == nil
}

// GoodRetry matches through the wrap chain — silent.
func GoodRetry(err error) bool {
	return errors.Is(err, ErrBudget)
}

// GoodWrap wraps with %w — silent.
func GoodWrap(err error) error {
	return fmt.Errorf("loading plan: %w", err)
}

// Message formats only strings — silent: no error value is dropped.
func Message(name string) error {
	return fmt.Errorf("unknown platform %q", name)
}
