// Package goleak is a memlint fixture: goroutines with each accepted
// termination proof (context observation, closed-channel receive,
// WaitGroup pairing, loop-free body) and the spawns the check must
// flag (endless receive, unclosed drain, dynamic hand-off).
package goleak

import (
	"context"
	"sync"
)

// SpawnCtx watches its context — silent.
func SpawnCtx(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

// SpawnClosed ranges over a channel this package closes — silent (the
// range ends when the channel is drained).
func SpawnClosed() {
	jobs := make(chan int)
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
	close(jobs)
}

// SpawnWG pairs Done with a reachable Wait — silent.
func SpawnWG(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// SpawnBounded runs a loop-free body: it falls off the end — silent.
func SpawnBounded(log func(string)) {
	go func() {
		log("started")
	}()
}

// pump observes its context, so spawning it by name is silent.
func pump(ctx context.Context, ch chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case ch <- 1:
		}
	}
}

// StartPump spawns a named function whose body carries the proof.
func StartPump(ctx context.Context, ch chan int) {
	go pump(ctx, ch)
}

// drain is provably terminated only when some caller closes its
// argument; StartDrainClosed does, and argument/parameter aliasing
// carries that close into drain's range — silent.
func drain(ch chan int) {
	for range ch {
	}
}

func StartDrainClosed() {
	ch := make(chan int)
	go drain(ch)
	close(ch)
}

// drainForever is identical but nobody ever closes its channel.
func drainForever(ch chan int) {
	for range ch {
	}
}

// StartDrainForever spawns an endless drain — flagged.
func StartDrainForever(ch chan int) {
	go drainForever(ch) // want "no provable termination path"
}

// Leak receives forever with no exit condition — flagged.
func Leak(ch chan int) {
	go func() { // want "no provable termination path"
		for {
			v := <-ch
			_ = v
		}
	}()
}

// StartFunc hands execution to a function value whose body the
// analyzer cannot see — flagged; restructure or allow with a reason.
func StartFunc(f func()) {
	go f() // want "no provable termination path"
}
