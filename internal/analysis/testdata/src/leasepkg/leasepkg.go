// Package leasepkg is a memlint fixture standing in for the lease
// coordination plane (internal/lease): owner identity and liveness
// heartbeats minted from real process state. Run WITHOUT an exemption
// it must produce every finding below; listed on
// Config.DeterminismExemptPkgs the same package must be completely
// silent. The dispensation is surgical — see
// TestDeterminismLeaseExemptFixture for proof that the real entry
// covers the lease package only, not its consumers.
package leasepkg

import (
	"os"
	"time"
)

// SelfOwner mints a worker identity from the host name — flagged when
// the package is not exempt.
func SelfOwner() (string, error) {
	return os.Hostname() // want "os.Hostname is nondeterministic"
}

// Pid tags the identity with the process id — flagged when not exempt.
func Pid() int {
	return os.Getpid() // want "os.Getpid is nondeterministic"
}

// HeartbeatAt stamps a lease renewal — wall clock, flagged when not
// exempt.
func HeartbeatAt() time.Time {
	return time.Now() // want "time.Now is nondeterministic"
}
