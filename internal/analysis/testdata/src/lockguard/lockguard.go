// Package lockguard is a memlint fixture: accesses to fields annotated
// `memlint:guard mu` with and without the mutex held, the defer-unlock
// idiom, cross-function propagation along the call graph, goroutine
// hand-off, the constructor exemption, and a malformed annotation.
package lockguard

import "sync"

// Store is the annotated struct under test.
type Store struct {
	mu sync.Mutex
	// memlint:guard mu
	n int
}

// Get holds the lock via defer — silent.
func (s *Store) Get() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Put locks and unlocks explicitly — silent.
func (s *Store) Put(v int) {
	s.mu.Lock()
	s.n = v
	s.mu.Unlock()
}

// Racy reads after releasing — flagged at the access: an exported
// method must lock for itself.
func (s *Store) Racy() int {
	s.mu.Lock()
	s.mu.Unlock()
	return s.n // want "guarded by \"s.mu\" and accessed without it held"
}

// bump is unexported, so it may assume its callers hold the lock; the
// requirement moves to its call sites.
func (s *Store) bump() { s.n++ }

// Incr discharges bump's requirement — silent.
func (s *Store) Incr() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bump()
}

// BadCaller calls bump without the lock — flagged at the call site.
func (s *Store) BadCaller() {
	s.bump() // want "requires \"s.mu\" held"
}

// Spawn starts a goroutine while holding the lock; the goroutine does
// not inherit it — flagged inside the literal.
func (s *Store) Spawn(done chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.n = 0 // want "guarded by \"s.mu\" and accessed without it held"
		<-done
	}()
}

// NewStore touches the field of a value it just built — the value is
// not shared yet, so the constructor exemption keeps this silent.
func NewStore() *Store {
	s := &Store{}
	s.n = 1
	return s
}

// annotated carries a guard annotation naming a non-existent sibling —
// the annotation itself is the finding.
type annotated struct {
	// memlint:guard missing // want "not a sync.Mutex/RWMutex field"
	v int
}
