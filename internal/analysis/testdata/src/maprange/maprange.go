// Package maprange is a memlint fixture: map iterations that feed
// ordering-sensitive sinks (flagged) next to the conforming
// collect-sort-range pattern (silent).
package maprange

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// DumpDirect ranges a map straight into a writer — flagged: iteration
// order differs run to run, so the emitted bytes do too.
func DumpDirect(w io.Writer, m map[string]int) {
	for k, v := range m { // want "map iteration order reaches fmt.Fprintf without a sort"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// BuildDirect ranges a map into a strings.Builder — flagged.
func BuildDirect(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want "map iteration order reaches \\(strings.Builder\\).WriteString without a sort"
		b.WriteString(k)
	}
	return b.String()
}

// EncodeDirect ranges a map into a JSON encoder — flagged.
func EncodeDirect(enc *json.Encoder, m map[int]float64) error {
	for _, v := range m { // want "map iteration order reaches \\(encoding/json.Encoder\\).Encode without a sort"
		if err := enc.Encode(v); err != nil {
			return err
		}
	}
	return nil
}

// DumpSorted collects the keys, sorts, then ranges the slice — silent,
// the conforming pattern.
func DumpSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// SortInLoop sorts inside the loop body before emitting — silent: the
// analyzer accepts an intervening sort.
func SortInLoop(w io.Writer, m map[string][]int) {
	for _, vs := range m {
		sort.Ints(vs)
		fmt.Fprintln(w, vs)
	}
}

// Accumulate ranges a map into another map — silent: no
// ordering-sensitive sink is touched.
func Accumulate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
