// Package nilhook is a memlint fixture: a nil-tolerant hook type (listed
// in the test config) with guarded, unguarded and delegation-only
// methods.
package nilhook

// Recorder stands in for the repo's hook types: documented inert when
// nil, so exported methods touching fields must open with a nil guard.
type Recorder struct {
	events []int
	n      int
}

// Append dereferences without any guard — flagged.
func (r *Recorder) Append(ev int) { // want "\\(\\*Recorder\\).Append dereferences the receiver without a leading nil guard"
	r.events = append(r.events, ev)
}

// Count guards with the early-return form — silent.
func (r *Recorder) Count() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Reset guards with a compound early return — silent.
func (r *Recorder) Reset(force bool) {
	if r == nil || !force {
		return
	}
	r.events = nil
	r.n = 0
}

// Record guards with the inverted form, touching state only inside the
// guard — silent.
func (r *Recorder) Record(ev int) {
	if r != nil {
		r.events = append(r.events, ev)
	}
}

// Leaky opens with an inverted guard but dereferences after it — flagged.
func (r *Recorder) Leaky(ev int) { // want "\\(\\*Recorder\\).Leaky dereferences the receiver without a leading nil guard"
	if r != nil {
		r.events = append(r.events, ev)
	}
	r.n++
}

// Late checks nil only after the first dereference — flagged: the guard
// must come first.
func (r *Recorder) Late() int { // want "\\(\\*Recorder\\).Late dereferences the receiver without a leading nil guard"
	n := r.n
	if r == nil {
		return 0
	}
	return n
}

// Flush only delegates to a method that guards itself — silent: calling
// a method on a nil pointer is safe as long as nothing dereferences it.
func (r *Recorder) Flush() int {
	return r.Count()
}

// internalBump is unexported — out of the contract's scope, silent.
func (r *Recorder) internalBump() {
	r.n++
}

// Plain is not a configured hook type: its unguarded methods are silent.
type Plain struct{ v int }

// Get dereferences without a guard but Plain is not a hook — silent.
func (p *Plain) Get() int { return p.v }
