// Package servepkg is a memlint fixture standing in for the serving
// plane: request handling that reads the wall clock for latency and
// deadlines. Run WITHOUT an exemption it must produce every finding
// below; listed on Config.DeterminismExemptPkgs the same package must be
// completely silent. Simulation packages never get this dispensation —
// see TestDeterminismExemptionDoesNotLeakToSimPackages.
package servepkg

import (
	"os"
	"time"
)

// HandleStart stamps a request arrival — wall clock, flagged when the
// package is not exempt.
func HandleStart() time.Time {
	return time.Now() // want "time.Now is nondeterministic"
}

// Latency measures elapsed request time — flagged when not exempt.
func Latency(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since is nondeterministic"
}

// Identity tags log lines with the process id — flagged when not exempt.
func Identity() int {
	return os.Getpid() // want "os.Getpid is nondeterministic"
}
