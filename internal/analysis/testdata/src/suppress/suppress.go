// Package suppress is a memlint fixture for the suppression pseudo-check:
// a valid used allowance, a stale one, and two malformed ones.
package suppress

import (
	"os"
	"time"
)

// Used: the allowance silences the durable finding on the next line and
// is therefore legitimate — only the suppress diagnostics below fire.
func Used(path string, data []byte) error {
	//memlint:allow durable — simulated torn write in the crash harness
	return os.WriteFile(path, data, 0o644)
}

// Stale: nothing on this or the next line trips the determinism check,
// so the allowance itself is flagged.
func Stale() int {
	//memlint:allow determinism — left over from a removed time.Now // want "stale //memlint:allow determinism"
	return 42
}

// Unknown check name — flagged.
func Unknown(path string, data []byte) error {
	//memlint:allow torn-writes — no such check // want "names unknown check \"torn-writes\""
	return os.WriteFile(path, data, 0o644) // want "direct os.WriteFile can tear on crash"
}

// Missing reason — flagged (the block-comment form keeps the want
// expectation on the same line), and the underlying finding is still
// reported.
func Missing() time.Time {
	/*memlint:allow determinism*/ // want "has no reason"
	return time.Now() // want "time.Now is nondeterministic"
}
