// Package suppresslast regression-tests the final-line suppression
// rule: the allow comment trails the closing brace on the very last
// line of the file, with no newline after it, and must still cover the
// flagged write on the line above.
package suppresslast

import "os"

// Save writes a throwaway file directly; the allowance below keeps the
// durable check quiet.
func Save(path string, b []byte) error {
	return os.WriteFile(path, b, 0o600)
} //memlint:allow durable — throwaway scratch write; fixture for the final-line suppression rule