// Package atomicio writes files with power-loss-safe durability: data is
// staged in a temporary file in the destination directory, fsynced,
// renamed over the target, and the parent directory is fsynced so the
// rename itself survives a crash. This is the write path used for every
// artifact that must never be observed truncated or half-written — saved
// platforms, models, run manifests and, most importantly, checkpoint
// journals (see internal/checkpoint).
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically and durably replaces path with data. On return
// without error, either the old content or the new content is on disk in
// full — never a mixture, never a truncation — even across power loss:
//
//  1. the data is written to a temporary file next to path,
//  2. the temporary file is fsynced (content reaches the platters),
//  3. the temporary file is renamed over path (atomic on POSIX),
//  4. the parent directory is fsynced (the rename reaches the platters).
//
// On any error the temporary file is removed and the previous content of
// path is untouched.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: stage %s: %w", path, err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return fmt.Errorf("atomicio: write %s: %w", path, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fmt.Errorf("atomicio: chmod %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("atomicio: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: close %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("atomicio: rename %s: %w", path, err)
	}
	tmp = nil // renamed away: nothing to clean up
	if err := SyncDir(dir); err != nil {
		return fmt.Errorf("atomicio: %s: %w", path, err)
	}
	return nil
}

// WriteStream atomically and durably replaces path with whatever fn
// writes. It follows the same stage→fsync→rename→dir-fsync sequence as
// WriteFile, but lets the caller stream into an io.Writer instead of
// materializing the full artifact in memory first (Prometheus dumps,
// JSONL traces, Perfetto exports). If fn returns an error, the staged
// temporary is removed and the previous content of path is untouched —
// a crash or failure mid-write can never leave a torn artifact behind.
func WriteStream(path string, perm os.FileMode, fn func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: stage %s: %w", path, err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := fn(tmp); err != nil {
		return fmt.Errorf("atomicio: write %s: %w", path, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fmt.Errorf("atomicio: chmod %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("atomicio: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: close %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("atomicio: rename %s: %w", path, err)
	}
	tmp = nil // renamed away: nothing to clean up
	if err := SyncDir(dir); err != nil {
		return fmt.Errorf("atomicio: %s: %w", path, err)
	}
	return nil
}

// MkdirAll creates dir and any missing parents like os.MkdirAll, then
// fsyncs every directory it actually created (deepest first) plus the
// parent of the topmost new one, so the whole fresh chain survives power
// loss. Creating an artifact or shard-journal directory with a bare
// os.MkdirAll leaves the new entries only in the page cache: a crash
// right after could silently drop the directory — and every journal in
// it — violating the resume contract.
func MkdirAll(dir string, perm os.FileMode) error {
	dir = filepath.Clean(dir)
	// Walk up to the first ancestor that already exists.
	var created []string
	p := dir
	for {
		if _, err := os.Stat(p); err == nil {
			break
		} else if !os.IsNotExist(err) {
			return fmt.Errorf("atomicio: mkdir %s: %w", dir, err)
		}
		created = append(created, p)
		parent := filepath.Dir(p)
		if parent == p {
			break
		}
		p = parent
	}
	if err := os.MkdirAll(dir, perm); err != nil {
		return fmt.Errorf("atomicio: mkdir %s: %w", dir, err)
	}
	if len(created) == 0 {
		return nil
	}
	// Sync deepest-first, then the surviving parent that gained the
	// topmost new entry.
	for _, c := range created {
		if err := SyncDir(c); err != nil {
			return fmt.Errorf("atomicio: mkdir %s: %w", dir, err)
		}
	}
	top := created[len(created)-1]
	if parent := filepath.Dir(top); parent != top {
		if err := SyncDir(parent); err != nil {
			return fmt.Errorf("atomicio: mkdir %s: %w", dir, err)
		}
	}
	return nil
}

// SyncDir fsyncs a directory so that a just-created, renamed or removed
// entry in it survives power loss. Platforms whose directory handles
// reject fsync (some network and FAT filesystems) report ineffectiveness
// through the returned error; Linux local filesystems support it.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("sync dir: %w", err)
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return fmt.Errorf("sync dir %s: %w", dir, err)
	}
	return d.Close()
}
