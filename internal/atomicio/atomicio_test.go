package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFile(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "first" {
		t.Fatalf("content = %q, want %q", got, "first")
	}
	if err := WriteFile(path, []byte("second"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second" {
		t.Fatalf("content after replace = %q, want %q", got, "second")
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if perm := info.Mode().Perm(); perm != 0o644 {
		t.Fatalf("perm = %v, want 0644", perm)
	}
}

func TestWriteFileLeavesNoTempOnSuccess(t *testing.T) {
	dir := t.TempDir()
	if err := WriteFile(filepath.Join(dir, "a"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "a" {
		t.Fatalf("directory has unexpected entries: %v", entries)
	}
}

func TestWriteFileMissingDirectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "out")
	if err := WriteFile(path, []byte("x"), 0o644); err == nil {
		t.Fatal("expected error for missing parent directory")
	}
}

// TestWriteFileRenameOntoDirectory covers the rename error path: the
// target exists but is a directory, so the rename must fail and the
// staged temporary file must be cleaned up.
func TestWriteFileRenameOntoDirectory(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "occupied")
	if err := os.Mkdir(target, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(target, []byte("x"), 0o644); err == nil {
		t.Fatal("expected error renaming over a directory")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".occupied.tmp-") {
			t.Fatalf("temporary file %s left behind after failed rename", e.Name())
		}
	}
}

func TestSyncDir(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatalf("SyncDir on a fresh directory: %v", err)
	}
	if err := SyncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("expected error for missing directory")
	}
}

// TestWriteStreamStreams the success path: fn's writes land in full at
// path.
func TestWriteStream(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	err := WriteStream(path, 0o644, func(w io.Writer) error {
		for _, line := range []string{"one\n", "two\n", "three\n"} {
			if _, err := w.Write([]byte(line)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "one\ntwo\nthree\n" {
		t.Fatalf("content = %q", got)
	}
}

// TestWriteStreamCrashLeavesNoTornArtifact simulates a crash mid-write:
// the stream callback emits half the payload and then fails, as a
// process dying between two Write calls would. The previous artifact
// must survive byte-for-byte and no staged temporary may remain — the
// exact guarantee the durable memlint check exists to protect.
func TestWriteStreamCrashLeavesNoTornArtifact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "table2.json")
	if err := WriteFile(path, []byte("previous complete artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("simulated crash")
	err := WriteStream(path, 0o644, func(w io.Writer) error {
		if _, err := w.Write([]byte(`{"rows": [1, 2, `)); err != nil {
			return err
		}
		return boom // the process "dies" with the payload half-written
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped simulated crash", err)
	}
	got, readErr := os.ReadFile(path)
	if readErr != nil {
		t.Fatal(readErr)
	}
	if string(got) != "previous complete artifact" {
		t.Fatalf("artifact torn: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("staged temporary left behind: %v", names)
	}
}

func TestMkdirAllCreatesChainAndIsIdempotent(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "a", "b", "c")
	if err := MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(dir)
	if err != nil || !info.IsDir() {
		t.Fatalf("stat %s: %v", dir, err)
	}
	// Existing chain: a no-op, not an error.
	if err := MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	// The new directory is usable by the durable write path immediately.
	if err := WriteFile(filepath.Join(dir, "f"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestMkdirAllRejectsFileInTheWay(t *testing.T) {
	root := t.TempDir()
	blocker := filepath.Join(root, "x")
	if err := os.WriteFile(blocker, []byte("file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := MkdirAll(filepath.Join(blocker, "sub"), 0o755); err == nil {
		t.Fatal("MkdirAll through a regular file succeeded")
	}
}
