package atomicio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFile(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "first" {
		t.Fatalf("content = %q, want %q", got, "first")
	}
	if err := WriteFile(path, []byte("second"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second" {
		t.Fatalf("content after replace = %q, want %q", got, "second")
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if perm := info.Mode().Perm(); perm != 0o644 {
		t.Fatalf("perm = %v, want 0644", perm)
	}
}

func TestWriteFileLeavesNoTempOnSuccess(t *testing.T) {
	dir := t.TempDir()
	if err := WriteFile(filepath.Join(dir, "a"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "a" {
		t.Fatalf("directory has unexpected entries: %v", entries)
	}
}

func TestWriteFileMissingDirectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "out")
	if err := WriteFile(path, []byte("x"), 0o644); err == nil {
		t.Fatal("expected error for missing parent directory")
	}
}

// TestWriteFileRenameOntoDirectory covers the rename error path: the
// target exists but is a directory, so the rename must fail and the
// staged temporary file must be cleaned up.
func TestWriteFileRenameOntoDirectory(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "occupied")
	if err := os.Mkdir(target, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(target, []byte("x"), 0o644); err == nil {
		t.Fatal("expected error renaming over a directory")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".occupied.tmp-") {
			t.Fatalf("temporary file %s left behind after failed rename", e.Name())
		}
	}
}

func TestSyncDir(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatalf("SyncDir on a fresh directory: %v", err)
	}
	if err := SyncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("expected error for missing directory")
	}
}
