// Package baseline implements the comparison predictors used in the
// ablation study (E10 of DESIGN.md): simpler models that the paper's
// threshold model is measured against.
//
//   - NoContention assumes computations scale perfectly and the network
//     always delivers its nominal bandwidth — what an application writer
//     assumes when enabling communication/computation overlap naively.
//   - FairShare splits the bus capacity proportionally to demands once
//     saturated, with no CPU priority and no guaranteed NIC floor — the
//     assumption of generic queuing-style models with identical customers
//     (§II-D discusses why that breaks here).
//   - Langguth is a duration-style model in the spirit of Langguth et
//     al. [13] (§V): a single total-capacity threshold shared by both
//     stream kinds, without NUMA placement awareness (it always uses the
//     local instantiation).
//
// All baselines consume the same calibrated parameters as the real model,
// so the comparison isolates the modelling assumptions rather than the
// calibration quality.
package baseline

import (
	"fmt"
	"math"

	"memcontention/internal/model"
)

// Predictor is a bandwidth predictor comparable to model.Model.
type Predictor interface {
	// Name identifies the predictor in ablation tables.
	Name() string
	// Predict returns computation and communication bandwidth for n
	// computing cores under the given placement.
	Predict(n int, pl model.Placement) (model.Prediction, error)
}

// Paper adapts model.Model to the Predictor interface.
type Paper struct{ Model model.Model }

// Name implements Predictor.
func (p Paper) Name() string { return "threshold-model" }

// Predict implements Predictor.
func (p Paper) Predict(n int, pl model.Placement) (model.Prediction, error) {
	return p.Model.Predict(n, pl)
}

// NoContention predicts perfect scaling for computations (up to the
// compute-alone maximum) and nominal bandwidth for communications.
type NoContention struct{ Model model.Model }

// Name implements Predictor.
func (NoContention) Name() string { return "no-contention" }

// Predict implements Predictor.
func (b NoContention) Predict(n int, pl model.Placement) (model.Prediction, error) {
	if n < 1 {
		return model.Prediction{}, fmt.Errorf("baseline: n must be ≥ 1, got %d", n)
	}
	comp := b.Model.Local
	if int(pl.Comp) >= b.Model.NodesPerSocket {
		comp = b.Model.Remote
	}
	comm := b.Model.Local
	if int(pl.Comm) >= b.Model.NodesPerSocket {
		comm = b.Model.Remote
	}
	return model.Prediction{
		Comp: math.Min(float64(n)*comp.BCompSeq, comp.TSeqMax),
		Comm: comm.BCommSeq,
	}, nil
}

// FairShare splits T(n) proportionally to demands once the total demand
// exceeds it; no CPU priority, no NIC floor.
type FairShare struct{ Model model.Model }

// Name implements Predictor.
func (FairShare) Name() string { return "fair-share" }

// Predict implements Predictor.
func (b FairShare) Predict(n int, pl model.Placement) (model.Prediction, error) {
	if n < 1 {
		return model.Prediction{}, fmt.Errorf("baseline: n must be ≥ 1, got %d", n)
	}
	p := b.Model.Local
	if int(pl.Comp) >= b.Model.NodesPerSocket && pl.Comp == pl.Comm {
		p = b.Model.Remote
	}
	compDemand := float64(n) * p.BCompSeq
	commDemand := p.BCommSeq
	if int(pl.Comm) >= b.Model.NodesPerSocket {
		commDemand = b.Model.Remote.BCommSeq
	}
	if pl.Comp != pl.Comm {
		// Fair share has no cross-node coupling: both sides get their
		// demand (computations still bounded by the alone maximum).
		return model.Prediction{
			Comp: math.Min(compDemand, p.TSeqMax),
			Comm: commDemand,
		}, nil
	}
	total := p.TotalBandwidth(n)
	demand := compDemand + commDemand
	if demand <= total {
		return model.Prediction{Comp: compDemand, Comm: commDemand}, nil
	}
	scale := total / demand
	return model.Prediction{Comp: compDemand * scale, Comm: commDemand * scale}, nil
}

// Langguth is a single-threshold duration-style model: one capacity value
// (the local TParMax), no NUMA awareness, CPU-priority split when
// saturated but no communication floor and no degradation slopes.
type Langguth struct{ Model model.Model }

// Name implements Predictor.
func (Langguth) Name() string { return "langguth-style" }

// Predict implements Predictor.
func (b Langguth) Predict(n int, pl model.Placement) (model.Prediction, error) {
	if n < 1 {
		return model.Prediction{}, fmt.Errorf("baseline: n must be ≥ 1, got %d", n)
	}
	p := b.Model.Local
	compDemand := float64(n) * p.BCompSeq
	commDemand := p.BCommSeq
	capTotal := p.TParMax
	comp := math.Min(compDemand, capTotal)
	comm := math.Min(commDemand, math.Max(0, capTotal-comp))
	return model.Prediction{Comp: comp, Comm: comm}, nil
}

// All returns every baseline (and the paper's model first) built from the
// same calibrated parameters.
func All(m model.Model) []Predictor {
	return []Predictor{
		Paper{Model: m},
		NoContention{Model: m},
		FairShare{Model: m},
		Langguth{Model: m},
	}
}
