package baseline

import (
	"testing"

	"memcontention/internal/bench"
	"memcontention/internal/calib"
	"memcontention/internal/model"
	"memcontention/internal/stats"
	"memcontention/internal/topology"
)

func refModel() model.Model {
	local := model.Params{
		NParMax: 12, TParMax: 70,
		NSeqMax: 14, TSeqMax: 66,
		TPar2:  66,
		DeltaL: 2.0, DeltaR: 0.6,
		BCompSeq: 5.0, BCommSeq: 11.0, Alpha: 0.25,
	}
	remote := model.Params{
		NParMax: 8, TParMax: 40,
		NSeqMax: 10, TSeqMax: 34,
		TPar2:  36,
		DeltaL: 2.0, DeltaR: 0.5,
		BCompSeq: 3.4, BCommSeq: 11.5, Alpha: 0.25,
	}
	return model.Model{Local: local, Remote: remote, NodesPerSocket: 1}
}

func TestNoContention(t *testing.T) {
	b := NoContention{Model: refModel()}
	pl := model.Placement{Comp: 0, Comm: 0}
	p, err := b.Predict(4, pl)
	if err != nil {
		t.Fatal(err)
	}
	if p.Comp != 20 || p.Comm != 11 {
		t.Errorf("unsaturated prediction = %+v", p)
	}
	// Saturated region: still predicts nominal comm (that is the point
	// of this baseline — it ignores contention).
	p, _ = b.Predict(18, pl)
	if p.Comm != 11 {
		t.Errorf("no-contention comm = %v, must stay nominal", p.Comm)
	}
	if p.Comp != 66 { // capped at TSeqMax only
		t.Errorf("no-contention comp = %v, want 66", p.Comp)
	}
	// Remote placement uses remote nominals.
	p, _ = b.Predict(4, model.Placement{Comp: 1, Comm: 1})
	if p.Comp != 4*3.4 || p.Comm != 11.5 {
		t.Errorf("remote no-contention = %+v", p)
	}
	if _, err := b.Predict(0, pl); err == nil {
		t.Error("n=0 must error")
	}
}

func TestFairShare(t *testing.T) {
	b := FairShare{Model: refModel()}
	pl := model.Placement{Comp: 0, Comm: 0}
	// Unsaturated: demands granted.
	p, err := b.Predict(4, pl)
	if err != nil {
		t.Fatal(err)
	}
	if p.Comp != 20 || p.Comm != 11 {
		t.Errorf("unsaturated fair share = %+v", p)
	}
	// Saturated: proportional split of T(n), no CPU priority.
	p, _ = b.Predict(18, pl)
	total := refModel().Local.TotalBandwidth(18)
	demand := 90.0 + 11.0
	if diff := p.Comp - 90*total/demand; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("fair-share comp = %v", p.Comp)
	}
	if diff := p.Comm - 11*total/demand; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("fair-share comm = %v", p.Comm)
	}
	// Fair share gives comm MORE than the real model under saturation
	// (no CPU priority): that is its characteristic error.
	real, _ := Paper{Model: refModel()}.Predict(18, pl)
	if p.Comm <= real.Comm {
		t.Error("fair share must over-promise communications under contention")
	}
	// Cross placements: no coupling at all.
	p, _ = b.Predict(18, model.Placement{Comp: 0, Comm: 1})
	if p.Comm != 11.5 {
		t.Errorf("fair-share cross comm = %v, want remote nominal", p.Comm)
	}
	if _, err := b.Predict(0, pl); err == nil {
		t.Error("n=0 must error")
	}
}

func TestLangguth(t *testing.T) {
	b := Langguth{Model: refModel()}
	// NUMA-blind: remote placement predicted with local numbers.
	pLocal, _ := b.Predict(6, model.Placement{Comp: 0, Comm: 0})
	pRemote, _ := b.Predict(6, model.Placement{Comp: 1, Comm: 1})
	if pLocal != pRemote {
		t.Error("Langguth-style baseline must be NUMA-blind")
	}
	// Single threshold, CPU priority, no floor: comm can go to zero.
	p, _ := b.Predict(18, model.Placement{Comp: 0, Comm: 0})
	if p.Comp != 70 {
		t.Errorf("comp = %v, want the full threshold", p.Comp)
	}
	if p.Comm != 0 {
		t.Errorf("comm = %v, want 0 (no guaranteed floor)", p.Comm)
	}
	if _, err := b.Predict(0, model.Placement{}); err == nil {
		t.Error("n=0 must error")
	}
}

func TestAllReturnsEveryPredictor(t *testing.T) {
	ps := All(refModel())
	if len(ps) != 4 {
		t.Fatalf("All returned %d predictors", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name()] = true
		if _, err := p.Predict(4, model.Placement{Comp: 0, Comm: 0}); err != nil {
			t.Errorf("%s failed: %v", p.Name(), err)
		}
	}
	for _, want := range []string{"threshold-model", "no-contention", "fair-share", "langguth-style"} {
		if !names[want] {
			t.Errorf("missing predictor %q", want)
		}
	}
}

// TestPaperModelBeatsBaselines is the E10 ablation: on a contended
// platform the threshold model must have a strictly lower MAPE than every
// baseline.
func TestPaperModelBeatsBaselines(t *testing.T) {
	runner, err := bench.NewRunner(bench.Config{Platform: topology.Henri(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := calib.CalibrateRunner(runner)
	if err != nil {
		t.Fatal(err)
	}
	curves, err := runner.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	mape := func(p Predictor) float64 {
		var actual, predicted []float64
		for _, c := range curves {
			for _, pt := range c.Points {
				pred, err := p.Predict(pt.N, c.Placement)
				if err != nil {
					t.Fatal(err)
				}
				actual = append(actual, pt.CommPar, pt.CompPar)
				predicted = append(predicted, pred.Comm, pred.Comp)
			}
		}
		e, err := stats.MAPE(actual, predicted)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	paper := mape(Paper{Model: m})
	for _, b := range []Predictor{NoContention{Model: m}, FairShare{Model: m}, Langguth{Model: m}} {
		if got := mape(b); got <= paper {
			t.Errorf("%s MAPE %.2f%% must exceed the threshold model's %.2f%%", b.Name(), got, paper)
		}
	}
	if paper > 3.0 {
		t.Errorf("threshold model MAPE %.2f%% unexpectedly high on henri", paper)
	}
}
