// Package bench reproduces the paper's benchmarking program (§IV-A1): for
// every possible number of computing cores it measures 1) computations
// alone, 2) communications alone, 3) both in parallel, for a given
// placement of computation and communication data on NUMA nodes.
//
// Computations are a weak-scaling non-temporal memset spread over the
// first socket's cores; communications receive large messages from a peer
// machine, their bandwidth being the receive bandwidth observed at the
// NIC. Steady-state bandwidths come from the memsys solver; seeded
// multiplicative noise reproduces run-to-run variability (kept "very low"
// as the paper reports, except on platforms flagged unstable).
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"

	"memcontention/internal/checkpoint"
	"memcontention/internal/kernels"
	"memcontention/internal/memsys"
	"memcontention/internal/model"
	"memcontention/internal/obs"
	"memcontention/internal/rng"
	"memcontention/internal/topology"
	"memcontention/internal/units"
)

// Config parameterises a benchmark campaign.
type Config struct {
	// Platform and Profile describe the machine. Profile may be nil for
	// built-in platforms, in which case the hand-tuned profile is used.
	Platform *topology.Platform
	Profile  *memsys.Profile
	// Kernel is the computation kernel (default: non-temporal memset).
	Kernel kernels.Kernel
	// MessageSize is the received message size (default 64 MiB). The
	// steady-state bandwidth does not depend on it, but it is recorded
	// with the results and used by the DES cross-check.
	MessageSize units.ByteSize
	// Seed drives the measurement noise (default 1).
	Seed uint64
	// Repeats is the number of averaged measurement runs (default 3).
	Repeats int
	// Bidirectional adds the paper's §VI extension: a second,
	// send-direction stream (ping-pong instead of pong-only).
	Bidirectional bool
	// Registry, when set, receives benchmark telemetry (sample counts,
	// solver calls, bandwidth histograms). Nil disables instrumentation
	// at zero cost.
	Registry *obs.Registry
	// Context, when set, lets a campaign driver cancel the sweep between
	// placements: RunPlacement/RunAll/RunSamples return ctx's error at
	// the next point boundary. Nil (or context.Background()) keeps the
	// measurement loops check-free.
	Context context.Context
}

// withDefaults fills unset fields.
func (c Config) withDefaults() (Config, error) {
	if c.Platform == nil {
		return c, fmt.Errorf("bench: nil platform")
	}
	if c.Profile == nil {
		prof, err := memsys.ProfileFor(c.Platform.Name)
		if err != nil {
			return c, fmt.Errorf("bench: %w (pass an explicit profile for custom platforms)", err)
		}
		c.Profile = prof
	}
	if c.Kernel.DemandFactor == 0 {
		c.Kernel = kernels.New(kernels.NTMemset)
	}
	if c.MessageSize == 0 {
		c.MessageSize = 64 * units.MiB
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Repeats <= 0 {
		c.Repeats = 3
	}
	return c, nil
}

// Point is one benchmark measurement: the four bandwidths for n computing
// cores (GB/s).
type Point struct {
	N         int     `json:"n"`
	CompAlone float64 `json:"comp_alone"`
	CommAlone float64 `json:"comm_alone"`
	CompPar   float64 `json:"comp_par"`
	CommPar   float64 `json:"comm_par"`
}

// TotalPar is the stacked total of Figure 2.
func (p Point) TotalPar() float64 { return p.CompPar + p.CommPar }

// Curve is the benchmark output for one placement: points for
// n = 1..cores(socket 0).
type Curve struct {
	Platform  string          `json:"platform"`
	Placement model.Placement `json:"placement"`
	Kernel    string          `json:"kernel"`
	Points    []Point         `json:"points"`
}

// Series extracts one measured series; name is one of "comp_alone",
// "comm_alone", "comp_par", "comm_par", "total_par".
func (c *Curve) Series(name string) ([]float64, error) {
	out := make([]float64, len(c.Points))
	for i, p := range c.Points {
		switch name {
		case "comp_alone":
			out[i] = p.CompAlone
		case "comm_alone":
			out[i] = p.CommAlone
		case "comp_par":
			out[i] = p.CompPar
		case "comm_par":
			out[i] = p.CommPar
		case "total_par":
			out[i] = p.TotalPar()
		default:
			return nil, fmt.Errorf("bench: unknown series %q", name)
		}
	}
	return out, nil
}

// Runner executes benchmark campaigns on one machine.
type Runner struct {
	cfg     Config
	sys     *memsys.System
	m       benchInstruments
	done    <-chan struct{}
	journal *checkpoint.Journal
	scope   string
}

// benchInstruments are the runner's telemetry hooks; nil instruments
// (no registry configured) record nothing.
type benchInstruments struct {
	points     *obs.Counter
	solves     *obs.Counter
	placements *obs.Counter
	compBW     *obs.Histogram
	commBW     *obs.Histogram
}

// newBenchInstruments registers the runner's instruments (all nil when
// r is nil).
func newBenchInstruments(r *obs.Registry) benchInstruments {
	return benchInstruments{
		points:     r.Counter("memcontention_bench_points_total", "Benchmark points measured (one per core count per placement).", nil),
		solves:     r.Counter("memcontention_bench_solves_total", "Steady-state solver calls issued by the benchmark.", nil),
		placements: r.Counter("memcontention_bench_placements_total", "Placement sweeps completed.", nil),
		compBW:     r.Histogram("memcontention_bench_comp_bandwidth_gbps", "Measured parallel computation bandwidths.", obs.BandwidthBuckets(), nil),
		commBW:     r.Histogram("memcontention_bench_comm_bandwidth_gbps", "Measured parallel communication bandwidths.", obs.BandwidthBuckets(), nil),
	}
}

// NewRunner validates the configuration and builds the machine.
func NewRunner(cfg Config) (*Runner, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := cfg.Kernel.Validate(); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	sys, err := memsys.New(cfg.Platform, cfg.Profile)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	r := &Runner{cfg: cfg, sys: sys, m: newBenchInstruments(cfg.Registry)}
	if cfg.Context != nil {
		r.done = cfg.Context.Done()
	}
	r.scope = scopeKey(cfg)
	return r, nil
}

// scopeKey condenses everything that determines a benchmark result into a
// stable journal-key prefix. Two configurations share a scope exactly when
// they would produce bit-identical curves, so a resumed campaign can never
// replay results measured under different parameters. The profile is
// content-hashed rather than named because custom profiles may reuse a
// built-in platform's name.
func scopeKey(cfg Config) string {
	h := fnv.New64a()
	if data, err := json.Marshal(cfg.Profile); err == nil {
		h.Write(data)
	}
	return fmt.Sprintf("bench|%s|%s|seed=%d|rep=%d|msg=%d|bidir=%t|prof=%016x",
		cfg.Platform.Name, cfg.Kernel, cfg.Seed, cfg.Repeats, cfg.MessageSize, cfg.Bidirectional, h.Sum64())
}

// WithJournal attaches a checkpoint journal: RunPlacement returns the
// journaled curve for an already-completed placement without re-solving,
// and records each freshly measured curve durably before returning it.
// Determinism makes the cache transparent — a hit returns exactly what a
// re-measurement would. Nil (the default) disables checkpointing at zero
// cost. It returns the runner for chaining.
func (r *Runner) WithJournal(j *checkpoint.Journal) *Runner {
	r.journal = j
	return r
}

// Scope returns the runner's journal-key prefix (see scopeKey); campaign
// drivers extend it for derived artifacts such as evaluation tables.
func (r *Runner) Scope() string { return r.scope }

// canceled reports a pending cancellation (never true without a Context).
func (r *Runner) canceled() error {
	if r.done == nil {
		return nil
	}
	select {
	case <-r.done:
		return context.Cause(r.cfg.Context)
	default:
		return nil
	}
}

// Config returns the effective (defaulted) configuration.
func (r *Runner) Config() Config { return r.cfg }

// System returns the simulated machine.
func (r *Runner) System() *memsys.System { return r.sys }

// Registry returns the configured telemetry registry (nil when
// instrumentation is off); calibration and evaluation layers built on a
// runner inherit it.
func (r *Runner) Registry() *obs.Registry { return r.cfg.Registry }

// computeStreams builds the weak-scaling kernel streams for n cores of
// socket 0 with data on node.
func (r *Runner) computeStreams(n int, node topology.NodeID) ([]memsys.Stream, error) {
	cores := r.cfg.Platform.CoresOfSocket(0)
	if n < 1 || n > len(cores) {
		return nil, fmt.Errorf("bench: n=%d out of range [1,%d]", n, len(cores))
	}
	a := kernels.Assignment{Kernel: r.cfg.Kernel, Cores: cores[:n], Node: node}
	return a.Streams(r.sys, 0)
}

// commStreams builds the communication stream(s) for data on node. IDs
// start above any compute stream id.
func (r *Runner) commStreams(node topology.NodeID) []memsys.Stream {
	streams := []memsys.Stream{{
		ID:   1 << 20,
		Kind: memsys.KindComm,
		Node: node,
	}}
	if r.cfg.Bidirectional {
		// Ping-pong: the NIC simultaneously reads outgoing data from
		// the same node (§VI future work).
		streams = append(streams, memsys.Stream{
			ID:   1<<20 + 1,
			Kind: memsys.KindComm,
			Node: node,
		})
	}
	return streams
}

// noise returns the averaged multiplicative noise factor for a metric.
func (r *Runner) noise(pl model.Placement, n int, metric string, rel float64) float64 {
	if rel <= 0 {
		return 1
	}
	label := fmt.Sprintf("%s|%s|%s|n=%d|%s", r.cfg.Platform.Name, r.cfg.Kernel, pl, n, metric)
	s := rng.New(r.cfg.Seed, label)
	sum := 0.0
	for rep := 0; rep < r.cfg.Repeats; rep++ {
		sum += s.Derive(fmt.Sprintf("rep%d", rep)).Jitter(rel)
	}
	return sum / float64(r.cfg.Repeats)
}

func (r *Runner) compNoiseRel() float64 {
	q := r.cfg.Profile.Quirks
	if q.ComputeNoiseRel > q.MeasureNoiseRel {
		return q.ComputeNoiseRel
	}
	return q.MeasureNoiseRel
}

func (r *Runner) commNoiseRel() float64 {
	q := r.cfg.Profile.Quirks
	if q.CommNoiseRel > q.MeasureNoiseRel {
		return q.CommNoiseRel
	}
	return q.MeasureNoiseRel
}

// MeasurePoint runs the three benchmark steps for one core count.
func (r *Runner) MeasurePoint(pl model.Placement, n int) (Point, error) {
	comp, err := r.computeStreams(n, pl.Comp)
	if err != nil {
		return Point{}, err
	}
	comm := r.commStreams(pl.Comm)

	aloneComp, err := r.sys.Solve(comp)
	if err != nil {
		return Point{}, fmt.Errorf("bench: compute-alone solve: %w", err)
	}
	aloneComm, err := r.sys.Solve(comm)
	if err != nil {
		return Point{}, fmt.Errorf("bench: comm-alone solve: %w", err)
	}
	par, err := r.sys.Solve(append(append([]memsys.Stream(nil), comp...), comm...))
	if err != nil {
		return Point{}, fmt.Errorf("bench: parallel solve: %w", err)
	}

	pt := Point{
		N:         n,
		CompAlone: aloneComp.ComputeTotal * r.noise(pl, n, "comp_alone", r.compNoiseRel()),
		CommAlone: aloneComm.CommTotal * r.noise(pl, n, "comm_alone", r.commNoiseRel()),
		CompPar:   par.ComputeTotal * r.noise(pl, n, "comp_par", r.compNoiseRel()),
		CommPar:   par.CommTotal * r.noise(pl, n, "comm_par", r.commNoiseRel()),
	}
	r.m.points.Inc()
	r.m.solves.Add(3)
	r.m.compBW.Observe(pt.CompPar)
	r.m.commBW.Observe(pt.CommPar)
	return pt, nil
}

// RunPlacement sweeps n = 1..cores(socket 0) for one placement. With a
// journal attached (WithJournal) a placement completed by an earlier,
// interrupted run is returned from the journal instead of re-measured,
// and each fresh curve is journaled durably before being returned.
func (r *Runner) RunPlacement(pl model.Placement) (*Curve, error) {
	if int(pl.Comp) >= r.cfg.Platform.NNodes() || int(pl.Comm) >= r.cfg.Platform.NNodes() || pl.Comp < 0 || pl.Comm < 0 {
		return nil, fmt.Errorf("bench: placement %v out of range for %d nodes", pl, r.cfg.Platform.NNodes())
	}
	key := fmt.Sprintf("%s|pl=%s", r.scope, pl)
	if r.journal != nil {
		var cached Curve
		if ok, err := r.journal.Get(key, &cached); err != nil {
			return nil, fmt.Errorf("bench: journal entry %s: %w", key, err)
		} else if ok {
			return &cached, nil
		}
	}
	nMax := r.cfg.Platform.CoresPerSocket()
	curve := &Curve{
		Platform:  r.cfg.Platform.Name,
		Placement: pl,
		Kernel:    r.cfg.Kernel.String(),
		Points:    make([]Point, 0, nMax),
	}
	for n := 1; n <= nMax; n++ {
		if err := r.canceled(); err != nil {
			return nil, fmt.Errorf("bench: placement %v canceled: %w", pl, err)
		}
		pt, err := r.MeasurePoint(pl, n)
		if err != nil {
			return nil, err
		}
		curve.Points = append(curve.Points, pt)
	}
	r.m.placements.Inc()
	if err := r.journal.Record(key, curve); err != nil {
		return nil, fmt.Errorf("bench: journal %s: %w", key, err)
	}
	return curve, nil
}

// AllPlacements enumerates every (mcomp, mcomm) pair of the platform in
// row-major order (communication node major, matching the paper's figure
// layout: one row of subplots per communication placement).
func AllPlacements(plat *topology.Platform) []model.Placement {
	nodes := plat.NNodes()
	out := make([]model.Placement, 0, nodes*nodes)
	for comm := 0; comm < nodes; comm++ {
		for comp := 0; comp < nodes; comp++ {
			out = append(out, model.Placement{Comp: topology.NodeID(comp), Comm: topology.NodeID(comm)})
		}
	}
	return out
}

// SamplePlacements returns the two calibration placements of §IV-A2.
func SamplePlacements(plat *topology.Platform) (local, remote model.Placement) {
	m := topology.NodeID(plat.NodesPerSocket())
	return model.Placement{Comp: 0, Comm: 0}, model.Placement{Comp: m, Comm: m}
}

// RunAll measures every placement combination.
func (r *Runner) RunAll() ([]*Curve, error) {
	placements := AllPlacements(r.cfg.Platform)
	curves := make([]*Curve, 0, len(placements))
	for _, pl := range placements {
		c, err := r.RunPlacement(pl)
		if err != nil {
			return nil, err
		}
		curves = append(curves, c)
	}
	return curves, nil
}

// RunSamples measures only the two calibration placements, in the order
// (local, remote).
func (r *Runner) RunSamples() (local, remote *Curve, err error) {
	lp, rp := SamplePlacements(r.cfg.Platform)
	if local, err = r.RunPlacement(lp); err != nil {
		return nil, nil, err
	}
	if remote, err = r.RunPlacement(rp); err != nil {
		return nil, nil, err
	}
	return local, remote, nil
}
