package bench

import (
	"math"
	"testing"

	"memcontention/internal/kernels"
	"memcontention/internal/memsys"
	"memcontention/internal/model"
	"memcontention/internal/topology"
	"memcontention/internal/units"
)

func henriRunner(t *testing.T, seed uint64) *Runner {
	t.Helper()
	r, err := NewRunner(Config{Platform: topology.Henri(), Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDefaults(t *testing.T) {
	r := henriRunner(t, 0)
	cfg := r.Config()
	if cfg.Seed != 1 || cfg.Repeats != 3 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if cfg.MessageSize != 64*units.MiB {
		t.Errorf("message size default = %v", cfg.MessageSize)
	}
	if cfg.Kernel.Kind != kernels.NTMemset {
		t.Errorf("kernel default = %v", cfg.Kernel)
	}
	if cfg.Profile == nil || cfg.Profile.PlatformName != "henri" {
		t.Error("hand-tuned profile not loaded")
	}
}

func TestNewRunnerErrors(t *testing.T) {
	if _, err := NewRunner(Config{}); err == nil {
		t.Error("nil platform must fail")
	}
	custom, err := topology.NewBuilder("custom").
		CPU(topology.Intel, "x").
		Sockets(2).NodesPerSocket(1).CoresPerSocket(4).
		MemoryPerNodeGB(8).
		NICOn("n", topology.InfiniBand, 1, 3).
		LinkName("UPI").Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRunner(Config{Platform: custom}); err == nil {
		t.Error("custom platform without profile must fail with a helpful error")
	}
	if _, err := NewRunner(Config{Platform: custom, Profile: memsys.DefaultProfile(custom)}); err != nil {
		t.Errorf("custom platform with profile: %v", err)
	}
	bad := Config{Platform: topology.Henri()}
	bad.Kernel = kernels.Kernel{DemandFactor: 1} // no streams
	if _, err := NewRunner(bad); err == nil {
		t.Error("invalid kernel must fail")
	}
}

func TestCurveShape(t *testing.T) {
	r := henriRunner(t, 1)
	curve, err := r.RunPlacement(model.Placement{Comp: 0, Comm: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) != 18 {
		t.Fatalf("%d points, want 18 (cores of socket 0)", len(curve.Points))
	}
	// Compute-alone grows then saturates.
	if curve.Points[0].CompAlone < 4.5 || curve.Points[0].CompAlone > 5.5 {
		t.Errorf("single-core bandwidth %v, want ≈5", curve.Points[0].CompAlone)
	}
	maxAlone := 0.0
	for _, p := range curve.Points {
		if p.CompAlone > maxAlone {
			maxAlone = p.CompAlone
		}
	}
	last := curve.Points[17].CompAlone
	if maxAlone < 60 || last >= maxAlone {
		t.Errorf("compute-alone must saturate below its max (max %v, last %v)", maxAlone, last)
	}
	// Comm-alone is flat at nominal (±noise).
	for _, p := range curve.Points {
		if math.Abs(p.CommAlone-10.9) > 0.5 {
			t.Errorf("n=%d: comm alone %v, want ≈10.9", p.N, p.CommAlone)
		}
	}
	// Parallel comm ends at the floor.
	if curve.Points[17].CommPar > 3.5 {
		t.Errorf("comm under full contention = %v, want ≈2.6 (floor)", curve.Points[17].CommPar)
	}
}

func TestNoiseDeterminismAndSeeds(t *testing.T) {
	a, err := henriRunner(t, 7).RunPlacement(model.Placement{Comp: 0, Comm: 0})
	if err != nil {
		t.Fatal(err)
	}
	b, err := henriRunner(t, 7).RunPlacement(model.Placement{Comp: 0, Comm: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatal("same seed must give identical measurements")
		}
	}
	c, err := henriRunner(t, 8).RunPlacement(model.Placement{Comp: 0, Comm: 0})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Points {
		if a.Points[i] == c.Points[i] {
			same++
		}
	}
	if same == len(a.Points) {
		t.Error("different seeds must perturb measurements")
	}
}

func TestNoiseIsSmall(t *testing.T) {
	// The paper: "the run-to-run variability is very low". Measured
	// values must sit within ~2 % of the noise-free solver output.
	r := henriRunner(t, 3)
	pt, err := r.MeasurePoint(model.Placement{Comp: 0, Comm: 0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pt.CompAlone-20)/20 > 0.02 {
		t.Errorf("noise too large: comp alone %v, want ≈20", pt.CompAlone)
	}
}

func TestAllPlacements(t *testing.T) {
	pls := AllPlacements(topology.Henri())
	if len(pls) != 4 {
		t.Fatalf("henri placements = %d, want 4", len(pls))
	}
	// Row-major with comm outer (figure layout).
	if pls[0] != (model.Placement{Comp: 0, Comm: 0}) || pls[1] != (model.Placement{Comp: 1, Comm: 0}) {
		t.Errorf("placement order wrong: %v", pls[:2])
	}
	if got := AllPlacements(topology.HenriSubnuma()); len(got) != 16 {
		t.Errorf("subnuma placements = %d, want 16", len(got))
	}
}

func TestSamplePlacements(t *testing.T) {
	local, remote := SamplePlacements(topology.HenriSubnuma())
	if local != (model.Placement{Comp: 0, Comm: 0}) {
		t.Errorf("local sample = %v", local)
	}
	if remote != (model.Placement{Comp: 2, Comm: 2}) {
		t.Errorf("remote sample = %v", remote)
	}
}

func TestRunSamplesAndRunAll(t *testing.T) {
	r := henriRunner(t, 1)
	local, remote, err := r.RunSamples()
	if err != nil {
		t.Fatal(err)
	}
	if local.Placement != (model.Placement{Comp: 0, Comm: 0}) || remote.Placement != (model.Placement{Comp: 1, Comm: 1}) {
		t.Error("sample placements wrong")
	}
	curves, err := r.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 4 {
		t.Fatalf("RunAll returned %d curves", len(curves))
	}
	// RunAll's sample curves must equal the direct sample runs
	// (deterministic noise keyed by placement and n).
	for i := range local.Points {
		if curves[0].Points[i] != local.Points[i] {
			t.Fatal("RunAll and RunSamples disagree on the local sample")
		}
	}
}

func TestSeries(t *testing.T) {
	r := henriRunner(t, 1)
	curve, err := r.RunPlacement(model.Placement{Comp: 0, Comm: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"comp_alone", "comm_alone", "comp_par", "comm_par", "total_par"} {
		s, err := curve.Series(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(s) != len(curve.Points) {
			t.Errorf("series %s length %d", name, len(s))
		}
	}
	if _, err := curve.Series("bogus"); err == nil {
		t.Error("unknown series must error")
	}
	tp, _ := curve.Series("total_par")
	if tp[0] != curve.Points[0].CompPar+curve.Points[0].CommPar {
		t.Error("total_par must be the stacked sum")
	}
}

func TestPlacementValidation(t *testing.T) {
	r := henriRunner(t, 1)
	if _, err := r.RunPlacement(model.Placement{Comp: 9, Comm: 0}); err == nil {
		t.Error("out-of-range placement must fail")
	}
	if _, err := r.MeasurePoint(model.Placement{Comp: 0, Comm: 0}, 0); err == nil {
		t.Error("n=0 must fail")
	}
	if _, err := r.MeasurePoint(model.Placement{Comp: 0, Comm: 0}, 99); err == nil {
		t.Error("n beyond the socket must fail")
	}
}

func TestBidirectionalExtension(t *testing.T) {
	uni := henriRunner(t, 1)
	r, err := NewRunner(Config{Platform: topology.Henri(), Seed: 1, Bidirectional: true})
	if err != nil {
		t.Fatal(err)
	}
	uniPt, err := uni.MeasurePoint(model.Placement{Comp: 0, Comm: 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	biPt, err := r.MeasurePoint(model.Placement{Comp: 0, Comm: 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Two NIC streams extract more aggregate bandwidth than one, but
	// less than double (they share the PCIe path).
	if biPt.CommAlone <= uniPt.CommAlone {
		t.Errorf("bidirectional aggregate %v must exceed unidirectional %v", biPt.CommAlone, uniPt.CommAlone)
	}
	if biPt.CommAlone > 2*uniPt.CommAlone {
		t.Errorf("bidirectional aggregate %v cannot exceed twice the unidirectional", biPt.CommAlone)
	}
}

func TestKernelChangesDemand(t *testing.T) {
	memset := henriRunner(t, 1)
	copyCfg := Config{Platform: topology.Henri(), Seed: 1, Kernel: kernels.New(kernels.Copy)}
	copyRunner, err := NewRunner(copyCfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := memset.MeasurePoint(model.Placement{Comp: 0, Comm: 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := copyRunner.MeasurePoint(model.Placement{Comp: 0, Comm: 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.CompAlone <= a.CompAlone {
		t.Errorf("copy kernel (%v) must demand more than memset (%v) at low core counts", b.CompAlone, a.CompAlone)
	}
}
