package bench

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"memcontention/internal/checkpoint"
	"memcontention/internal/model"
	"memcontention/internal/topology"
)

func TestScopeKeyDistinguishesConfigs(t *testing.T) {
	base := Config{Platform: topology.Henri()}
	r1, err := NewRunner(base)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(r1.Scope(), "bench|henri|") {
		t.Fatalf("scope = %q", r1.Scope())
	}
	variants := []Config{
		{Platform: topology.Henri(), Seed: 2},
		{Platform: topology.Henri(), Repeats: 5},
		{Platform: topology.Henri(), Bidirectional: true},
		{Platform: topology.Dahu()},
	}
	for i, cfg := range variants {
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.Scope() == r1.Scope() {
			t.Errorf("variant %d shares scope %q with the base config", i, r1.Scope())
		}
	}
	// Same config twice → same scope (stable key for resume).
	r2, err := NewRunner(base)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Scope() != r2.Scope() {
		t.Errorf("scope not stable: %q vs %q", r1.Scope(), r2.Scope())
	}
}

func TestRunPlacementJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := checkpoint.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	r := henriRunner(t, 1).WithJournal(j)
	pl := model.Placement{Comp: 0, Comm: 0}
	fresh, err := r.RunPlacement(pl)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 1 {
		t.Fatalf("journal has %d entries after one placement", j.Len())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// A second runner resuming from the same journal must return the
	// identical curve without re-measuring.
	j2, err := checkpoint.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	r2 := henriRunner(t, 1).WithJournal(j2)
	cached, err := r2.RunPlacement(pl)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, cached) {
		t.Fatalf("journaled curve differs from fresh measurement:\n%+v\n%+v", fresh, cached)
	}
	// Measuring from the journal must not have bumped the measurement
	// instruments path (the curve came from Get, not MeasurePoint);
	// verify by checking a different placement still measures fine.
	if _, err := r2.RunPlacement(model.Placement{Comp: 1, Comm: 0}); err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 2 {
		t.Fatalf("journal has %d entries, want 2", j2.Len())
	}
}

func TestRunPlacementCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := NewRunner(Config{Platform: topology.Henri(), Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.RunPlacement(model.Placement{Comp: 0, Comm: 0})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A journaled placement is still served after cancellation: resume
	// readers drain the cache without running the measurement loop.
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := checkpoint.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	warm := henriRunner(t, 1).WithJournal(j)
	if _, err := warm.RunPlacement(model.Placement{Comp: 0, Comm: 0}); err != nil {
		t.Fatal(err)
	}
	cold, err := NewRunner(Config{Platform: topology.Henri(), Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cold.WithJournal(j).RunPlacement(model.Placement{Comp: 0, Comm: 0}); err != nil {
		t.Fatalf("journal hit must not observe cancellation: %v", err)
	}
}

func TestBackgroundContextIsFree(t *testing.T) {
	r, err := NewRunner(Config{Platform: topology.Henri(), Context: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunPlacement(model.Placement{Comp: 0, Comm: 0}); err != nil {
		t.Fatal(err)
	}
}
