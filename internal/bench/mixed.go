package bench

import (
	"fmt"

	"memcontention/internal/kernels"
	"memcontention/internal/memsys"
	"memcontention/internal/model"
	"memcontention/internal/topology"
)

// Mixed-socket benchmarking: the configuration the paper explicitly leaves
// for future work (§II-B: "Considering computing cores of all sockets
// accessing the same NUMA node — thus some of them are doing local
// accesses and other ones remote accesses — is another problematic").
//
// The simulator handles it with blended capacity envelopes, so the suite
// can measure it; the model cannot predict it (it only has pure-local and
// pure-remote instantiations), which makes this sweep the natural probe of
// the model's applicability boundary.

// mixedCores interleaves cores socket-0-first: 0, C, 1, C+1, … so that n
// cores split as evenly as possible between the two sockets.
func mixedCores(plat *topology.Platform, n int) ([]topology.CoreID, error) {
	s0 := plat.CoresOfSocket(0)
	s1 := plat.CoresOfSocket(1)
	if n < 1 || n > len(s0)+len(s1) {
		return nil, fmt.Errorf("bench: mixed n=%d out of range [1,%d]", n, len(s0)+len(s1))
	}
	out := make([]topology.CoreID, 0, n)
	for i := 0; len(out) < n; i++ {
		if i < len(s0) {
			out = append(out, s0[i])
		}
		if len(out) == n {
			break
		}
		if i < len(s1) {
			out = append(out, s1[i])
		}
	}
	return out, nil
}

// MeasureMixedPoint is MeasurePoint with computing cores drawn
// alternately from both sockets (weak scaling, same kernel).
func (r *Runner) MeasureMixedPoint(pl model.Placement, n int) (Point, error) {
	cores, err := mixedCores(r.cfg.Platform, n)
	if err != nil {
		return Point{}, err
	}
	a := kernels.Assignment{Kernel: r.cfg.Kernel, Cores: cores, Node: pl.Comp}
	comp, err := a.Streams(r.sys, 0)
	if err != nil {
		return Point{}, err
	}
	comm := r.commStreams(pl.Comm)

	aloneComp, err := r.sys.Solve(comp)
	if err != nil {
		return Point{}, fmt.Errorf("bench: mixed compute-alone solve: %w", err)
	}
	aloneComm, err := r.sys.Solve(comm)
	if err != nil {
		return Point{}, fmt.Errorf("bench: mixed comm-alone solve: %w", err)
	}
	par, err := r.sys.Solve(append(append([]memsys.Stream(nil), comp...), comm...))
	if err != nil {
		return Point{}, fmt.Errorf("bench: mixed parallel solve: %w", err)
	}
	return Point{
		N:         n,
		CompAlone: aloneComp.ComputeTotal * r.noise(pl, n, "mixed_comp_alone", r.compNoiseRel()),
		CommAlone: aloneComm.CommTotal * r.noise(pl, n, "mixed_comm_alone", r.commNoiseRel()),
		CompPar:   par.ComputeTotal * r.noise(pl, n, "mixed_comp_par", r.compNoiseRel()),
		CommPar:   par.CommTotal * r.noise(pl, n, "mixed_comm_par", r.commNoiseRel()),
	}, nil
}

// RunMixedPlacement sweeps n = 1..NCores (both sockets) for one placement
// with interleaved core selection.
func (r *Runner) RunMixedPlacement(pl model.Placement) (*Curve, error) {
	if int(pl.Comp) >= r.cfg.Platform.NNodes() || int(pl.Comm) >= r.cfg.Platform.NNodes() || pl.Comp < 0 || pl.Comm < 0 {
		return nil, fmt.Errorf("bench: placement %v out of range", pl)
	}
	nMax := r.cfg.Platform.NCores()
	curve := &Curve{
		Platform:  r.cfg.Platform.Name + "+mixed",
		Placement: pl,
		Kernel:    r.cfg.Kernel.String(),
		Points:    make([]Point, 0, nMax),
	}
	for n := 1; n <= nMax; n++ {
		pt, err := r.MeasureMixedPoint(pl, n)
		if err != nil {
			return nil, err
		}
		curve.Points = append(curve.Points, pt)
	}
	return curve, nil
}
