package bench

import (
	"testing"

	"memcontention/internal/model"
	"memcontention/internal/topology"
)

func TestMixedCoresInterleave(t *testing.T) {
	plat := topology.Henri()
	cores, err := mixedCores(plat, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []topology.CoreID{0, 18, 1, 19}
	for i, c := range cores {
		if c != want[i] {
			t.Fatalf("mixed cores = %v, want %v", cores, want)
		}
	}
	if _, err := mixedCores(plat, 0); err == nil {
		t.Error("n=0 must fail")
	}
	if _, err := mixedCores(plat, 37); err == nil {
		t.Error("n beyond the machine must fail")
	}
	all, err := mixedCores(plat, 36)
	if err != nil || len(all) != 36 {
		t.Fatalf("full machine selection failed: %v, %v", all, err)
	}
	seen := map[topology.CoreID]bool{}
	for _, c := range all {
		if seen[c] {
			t.Fatalf("core %d selected twice", c)
		}
		seen[c] = true
	}
}

func TestMixedPointBlendsLocality(t *testing.T) {
	r := henriRunner(t, 1)
	pl := model.Placement{Comp: 0, Comm: 0}
	// Two mixed cores = one local (5 GB/s) + one remote (3.4 GB/s):
	// unsaturated aggregate ≈ 8.4, strictly between 2×remote and
	// 2×local.
	pt, err := r.MeasureMixedPoint(pl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pt.CompAlone < 2*3.4 || pt.CompAlone > 2*5.0 {
		t.Errorf("mixed 2-core bandwidth %v outside (6.8, 10)", pt.CompAlone)
	}
	if pt.CompAlone < 8.0 || pt.CompAlone > 8.8 {
		t.Errorf("mixed 2-core bandwidth %v, want ≈8.4 (5 + 3.4)", pt.CompAlone)
	}
}

func TestRunMixedPlacement(t *testing.T) {
	r := henriRunner(t, 1)
	curve, err := r.RunMixedPlacement(model.Placement{Comp: 0, Comm: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) != 36 {
		t.Fatalf("%d points, want 36 (both sockets)", len(curve.Points))
	}
	// The controller stays the bottleneck: mixing in remote cores does
	// not unlock bandwidth beyond the local peak, and at full machine
	// load the latency-bound remote requests drag efficiency below it
	// (they hold controller slots longer per byte).
	single, err := r.RunPlacement(model.Placement{Comp: 0, Comm: 0})
	if err != nil {
		t.Fatal(err)
	}
	maxOf := func(c *Curve) float64 {
		m := 0.0
		for _, p := range c.Points {
			if p.CompAlone > m {
				m = p.CompAlone
			}
		}
		return m
	}
	mixedPeak, singlePeak := maxOf(curve), maxOf(single)
	if mixedPeak > 1.1*singlePeak {
		t.Errorf("mixed peak %v cannot exceed the controller-bound local peak %v", mixedPeak, singlePeak)
	}
	if mixedPeak < 0.6*singlePeak {
		t.Errorf("mixed peak %v implausibly low vs local peak %v", mixedPeak, singlePeak)
	}
	last := curve.Points[len(curve.Points)-1].CompAlone
	if last >= mixedPeak {
		t.Error("full-machine mixed load must sit below the mixed peak (efficiency decline)")
	}
	if _, err := r.RunMixedPlacement(model.Placement{Comp: 9, Comm: 0}); err == nil {
		t.Error("bad placement must fail")
	}
}

// TestMixedBreaksTheModel documents the model's applicability boundary:
// the pure-local instantiation mispredicts the mixed sweep badly, which
// is exactly why the paper leaves mixed sockets to future work.
func TestMixedBreaksTheModel(t *testing.T) {
	r := henriRunner(t, 1)
	curve, err := r.RunMixedPlacement(model.Placement{Comp: 0, Comm: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Compare against naive local-model scaling at n = 12 (6 local + 6
	// remote cores): n·Bcomp_local = 60, but the blended hardware
	// delivers ≈ 6·5 + 6·3.4 = 50.4.
	pt := curve.Points[11]
	naive := 12 * 5.0
	if rel := (naive - pt.CompAlone) / pt.CompAlone; rel < 0.10 {
		t.Errorf("mixed sweep should deviate ≥10%% from the pure-local model, got %.1f%%", 100*rel)
	}
}
