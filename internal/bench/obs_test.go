package bench

import (
	"testing"

	"memcontention/internal/model"
	"memcontention/internal/obs"
	"memcontention/internal/topology"
)

func TestRunnerInstrumentation(t *testing.T) {
	plat, err := topology.ByName("henri")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	r, err := NewRunner(Config{Platform: plat, Seed: 1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if r.Registry() != reg {
		t.Fatal("Registry() must return the configured registry")
	}
	curve, err := r.RunPlacement(model.Placement{Comp: 0, Comm: 0})
	if err != nil {
		t.Fatal(err)
	}
	n := float64(len(curve.Points))
	if got := reg.Counter("memcontention_bench_points_total", "", nil).Value(); got != n {
		t.Errorf("points counter = %v, want %v", got, n)
	}
	if got := reg.Counter("memcontention_bench_solves_total", "", nil).Value(); got != 3*n {
		t.Errorf("solves counter = %v, want %v", got, 3*n)
	}
	if got := reg.Counter("memcontention_bench_placements_total", "", nil).Value(); got != 1 {
		t.Errorf("placements counter = %v, want 1", got)
	}
	if got := reg.Histogram("memcontention_bench_comm_bandwidth_gbps", "", nil, nil).Count(); got != uint64(n) {
		t.Errorf("comm bandwidth observations = %d, want %v", got, n)
	}
	if got := reg.Histogram("memcontention_bench_comp_bandwidth_gbps", "", nil, nil).Count(); got != uint64(n) {
		t.Errorf("comp bandwidth observations = %d, want %v", got, n)
	}
}

// TestRunnerNilRegistry ensures benchmarking without telemetry yields the
// exact same measurements (instrumentation must not perturb results).
func TestRunnerNilRegistry(t *testing.T) {
	plat, err := topology.ByName("henri")
	if err != nil {
		t.Fatal(err)
	}
	bare, err := NewRunner(Config{Platform: plat, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wired, err := NewRunner(Config{Platform: plat, Seed: 1, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	a, err := bare.RunPlacement(model.Placement{Comp: 0, Comm: 0})
	if err != nil {
		t.Fatal(err)
	}
	b, err := wired.RunPlacement(model.Placement{Comp: 0, Comm: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs with registry attached: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
}
