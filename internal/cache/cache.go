// Package cache is the last-level-cache extension (§II-C, §VI future
// work). The paper's calibration kernel bypasses the LLC with non-temporal
// stores so that every access reaches memory; this package models what
// happens when a kernel is cache-friendly instead: part of its traffic is
// absorbed by the LLC and the demand that reaches the memory system
// shrinks by the miss ratio.
//
// The miss-ratio model is deliberately simple (the paper explicitly
// declares cache modelling out of scope [2,3]): compulsory misses under a
// fitting working set, capacity misses growing with the overflow ratio
// beyond it. It is enough to study how contention fades when kernels stop
// being memory-bound.
package cache

import (
	"fmt"

	"memcontention/internal/kernels"
	"memcontention/internal/memsys"
	"memcontention/internal/units"
)

// ColdMissRatio is the residual traffic of a fully cache-resident working
// set (compulsory misses and write-backs).
const ColdMissRatio = 0.05

// MissRatio estimates the fraction of a kernel's accesses that reach
// memory, given the working set competing for a cache share.
//
//	ws ≤ share:  ColdMissRatio
//	ws > share:  1 − share/ws·(1−ColdMissRatio)
//
// The function is continuous at ws == share and tends to 1 as the working
// set grows (streaming behaviour: everything misses).
func MissRatio(workingSet, share units.ByteSize) float64 {
	if workingSet <= 0 {
		return ColdMissRatio
	}
	if share <= 0 {
		return 1
	}
	if workingSet <= share {
		return ColdMissRatio
	}
	frac := float64(share) / float64(workingSet)
	return 1 - frac*(1-ColdMissRatio)
}

// Config describes the LLC of one socket.
type Config struct {
	// SizeMiB is the socket's last-level cache size.
	SizeMiB int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SizeMiB <= 0 {
		return fmt.Errorf("cache: non-positive LLC size %d MiB", c.SizeMiB)
	}
	return nil
}

// Size returns the LLC size in bytes.
func (c Config) Size() units.ByteSize { return units.ByteSize(c.SizeMiB) * units.MiB }

// DemandFactor reports how much of the kernel's memory demand survives the
// LLC when n cores share it, each touching perCoreWS of data.
// Non-temporal kernels bypass the cache entirely (factor 1, §IV-A1).
func (c Config) DemandFactor(k kernels.Kernel, n int, perCoreWS units.ByteSize) float64 {
	if k.NonTemporal {
		return 1
	}
	if n < 1 {
		n = 1
	}
	share := units.ByteSize(int64(c.Size()) / int64(n))
	return MissRatio(perCoreWS, share)
}

// FilterStreams scales compute-stream demands by the LLC factor. Comm
// streams are untouched: NIC DMA data is not reused by the cores in the
// benchmark, and DDIO effects are out of scope like the rest of the cache
// behaviour. The input slice is not modified.
func (c Config) FilterStreams(streams []memsys.Stream, k kernels.Kernel, perCoreWS units.ByteSize) []memsys.Stream {
	nCompute := 0
	for _, st := range streams {
		if st.Kind == memsys.KindCompute {
			nCompute++
		}
	}
	factor := c.DemandFactor(k, nCompute, perCoreWS)
	out := make([]memsys.Stream, len(streams))
	copy(out, streams)
	if factor == 1 {
		return out
	}
	for i := range out {
		if out[i].Kind == memsys.KindCompute {
			out[i].Demand *= factor
		}
	}
	return out
}

// LLCFor returns a plausible LLC configuration for the testbed platforms
// (per-socket sizes from public specs).
func LLCFor(platform string) Config {
	switch platform {
	case "henri", "henri-subnuma":
		return Config{SizeMiB: 25} // Xeon Gold 6140: 24.75 MiB
	case "dahu":
		return Config{SizeMiB: 22} // Xeon Gold 6130
	case "diablo":
		return Config{SizeMiB: 128} // EPYC 7452
	case "pyxis":
		return Config{SizeMiB: 32} // ThunderX2
	case "occigen":
		return Config{SizeMiB: 35} // E5-2690v4
	default:
		return Config{SizeMiB: 32}
	}
}
