package cache

import (
	"math"
	"testing"
	"testing/quick"

	"memcontention/internal/kernels"
	"memcontention/internal/memsys"
	"memcontention/internal/units"
)

func TestMissRatioRegimes(t *testing.T) {
	share := 32 * units.MiB
	// Fitting working set: cold misses only.
	if got := MissRatio(16*units.MiB, share); got != ColdMissRatio {
		t.Errorf("fitting WS miss ratio = %v, want %v", got, ColdMissRatio)
	}
	// Boundary: continuous at ws == share.
	if got := MissRatio(share, share); math.Abs(got-ColdMissRatio) > 1e-12 {
		t.Errorf("boundary miss ratio = %v, want %v", got, ColdMissRatio)
	}
	// Double the share: half the accesses hit.
	want := 1 - 0.5*(1-ColdMissRatio)
	if got := MissRatio(64*units.MiB, share); math.Abs(got-want) > 1e-12 {
		t.Errorf("2× WS miss ratio = %v, want %v", got, want)
	}
	// Streaming: tends to 1.
	if got := MissRatio(64*units.GiB, share); got < 0.99 {
		t.Errorf("huge WS miss ratio = %v, want ≈1", got)
	}
	// Degenerate inputs.
	if MissRatio(0, share) != ColdMissRatio {
		t.Error("zero WS must be cold")
	}
	if MissRatio(units.MiB, 0) != 1 {
		t.Error("zero share must miss everything")
	}
}

func TestMissRatioProperties(t *testing.T) {
	f := func(wsKiB, shareKiB uint32) bool {
		ws := units.ByteSize(wsKiB) * units.KiB
		share := units.ByteSize(shareKiB%(1<<20)+1) * units.KiB
		r := MissRatio(ws, share)
		return r >= ColdMissRatio-1e-12 && r <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error("miss ratio must stay in [cold, 1]:", err)
	}
	monotone := func(wsKiB uint16, extraKiB uint16) bool {
		share := 1024 * units.KiB
		a := MissRatio(units.ByteSize(wsKiB)*units.KiB, share)
		b := MissRatio(units.ByteSize(wsKiB)*units.KiB+units.ByteSize(extraKiB)*units.KiB, share)
		return b >= a-1e-12
	}
	if err := quick.Check(monotone, nil); err != nil {
		t.Error("miss ratio must be monotone in the working set:", err)
	}
}

func TestDemandFactor(t *testing.T) {
	cfg := Config{SizeMiB: 32}
	nt := kernels.New(kernels.NTMemset)
	if got := cfg.DemandFactor(nt, 8, units.GiB); got != 1 {
		t.Errorf("non-temporal kernels bypass the cache, factor = %v", got)
	}
	ld := kernels.New(kernels.Load)
	// 8 cores share 32 MiB → 4 MiB each; 2 MiB per-core WS fits.
	if got := cfg.DemandFactor(ld, 8, 2*units.MiB); got != ColdMissRatio {
		t.Errorf("fitting load factor = %v, want cold", got)
	}
	// Huge per-core WS: approaches 1.
	if got := cfg.DemandFactor(ld, 8, units.GiB); got < 0.9 {
		t.Errorf("streaming load factor = %v, want ≈1", got)
	}
	// More cores → smaller share → more misses.
	few := cfg.DemandFactor(ld, 2, 8*units.MiB)
	many := cfg.DemandFactor(ld, 16, 8*units.MiB)
	if many <= few {
		t.Errorf("sharing the LLC among more cores must raise the miss ratio (%v vs %v)", many, few)
	}
	// n < 1 clamps.
	if got := cfg.DemandFactor(ld, 0, units.MiB); got != ColdMissRatio {
		t.Errorf("n=0 factor = %v", got)
	}
}

func TestFilterStreams(t *testing.T) {
	cfg := Config{SizeMiB: 32}
	streams := []memsys.Stream{
		{ID: 0, Kind: memsys.KindCompute, Demand: 5},
		{ID: 1, Kind: memsys.KindCompute, Demand: 5},
		{ID: 2, Kind: memsys.KindComm, Demand: 11},
	}
	ld := kernels.New(kernels.Load)
	out := cfg.FilterStreams(streams, ld, 4*units.MiB) // 16 MiB share each: fits
	if out[0].Demand != 5*ColdMissRatio || out[1].Demand != 5*ColdMissRatio {
		t.Errorf("compute demands not filtered: %v", out[0].Demand)
	}
	if out[2].Demand != 11 {
		t.Error("comm demand must be untouched")
	}
	// Original slice unmodified.
	if streams[0].Demand != 5 {
		t.Error("FilterStreams must not mutate its input")
	}
	// Non-temporal kernels pass through unchanged.
	nt := kernels.New(kernels.NTMemset)
	out = cfg.FilterStreams(streams, nt, 4*units.MiB)
	if out[0].Demand != 5 {
		t.Error("NT streams must not be filtered")
	}
}

func TestLLCFor(t *testing.T) {
	for _, name := range []string{"henri", "henri-subnuma", "dahu", "diablo", "pyxis", "occigen", "unknown"} {
		cfg := LLCFor(name)
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if LLCFor("diablo").SizeMiB <= LLCFor("henri").SizeMiB {
		t.Error("EPYC must have the largest LLC")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Error("zero-size LLC must be invalid")
	}
	if (Config{SizeMiB: 32}).Size() != 32*units.MiB {
		t.Error("Size conversion wrong")
	}
}
