// Package calib extracts the model parameters of §III-A from benchmark
// curves, implementing the recipe of §IV-A2: "the evolution of the
// bandwidths over the number of computing cores is analyzed (it mostly
// looks for minima and maxima) and the parameters of the model are
// computed".
//
// Calibration only ever sees measured curves (with their noise); it never
// peeks into the simulator, exactly like the paper's tooling only sees
// benchmark output, not the silicon.
package calib

import (
	"fmt"
	"math"

	"memcontention/internal/bench"
	"memcontention/internal/model"
	"memcontention/internal/obs"
	"memcontention/internal/stats"
)

// DefaultPlateauTol is the relative tolerance used when locating maxima
// on noisy plateaus: the first point within 0.5 % of the global maximum is
// taken as "the" maximum, recovering the knee position.
const DefaultPlateauTol = 0.005

// Options tunes the parameter-extraction heuristics for unusually noisy
// input (the paper notes "higher prediction errors come most often from
// unstable input data").
type Options struct {
	// PlateauTol is the relative tolerance for locating maxima
	// (default 0.005).
	PlateauTol float64
	// SmoothWindow applies a centred moving average of this odd width
	// to the stacked total before knee detection (0 or 1 disables).
	// Raw values are still used for the bandwidth parameters.
	SmoothWindow int
	// Registry, when set, receives calibration telemetry (fit counts,
	// threshold values, residuals). Nil disables instrumentation.
	Registry *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.PlateauTol <= 0 {
		o.PlateauTol = DefaultPlateauTol
	}
	if o.SmoothWindow < 0 {
		o.SmoothWindow = 0
	}
	return o
}

// Calibrate computes one model instantiation (M_local or M_remote) from
// the benchmark curve of the corresponding sample placement, with default
// options.
func Calibrate(curve *bench.Curve) (model.Params, error) {
	return CalibrateWith(curve, Options{})
}

// CalibrateWith is Calibrate with explicit heuristics.
func CalibrateWith(curve *bench.Curve, opts Options) (model.Params, error) {
	opts = opts.withDefaults()
	if curve == nil || len(curve.Points) == 0 {
		return model.Params{}, fmt.Errorf("calib: empty curve")
	}
	for i, pt := range curve.Points {
		if pt.N != i+1 {
			return model.Params{}, fmt.Errorf("calib: curve points must cover n=1..N densely (point %d has n=%d)", i, pt.N)
		}
	}
	compAlone, err := curve.Series("comp_alone")
	if err != nil {
		return model.Params{}, err
	}
	commAlone, err := curve.Series("comm_alone")
	if err != nil {
		return model.Params{}, err
	}
	commPar, err := curve.Series("comm_par")
	if err != nil {
		return model.Params{}, err
	}
	totalPar, err := curve.Series("total_par")
	if err != nil {
		return model.Params{}, err
	}
	nCores := len(curve.Points)

	var p model.Params

	// Bcomp_seq: the memory bandwidth of a single computing core.
	p.BCompSeq = compAlone[0]

	// Bcomm_seq: nominal network bandwidth; it does not depend on n, so
	// averaging the sweep reduces measurement noise.
	p.BCommSeq = stats.Mean(commAlone)
	if p.BCommSeq <= 0 {
		return model.Params{}, fmt.Errorf("calib: non-positive Bcomm_seq")
	}

	// Optional smoothing for knee detection on unstable data.
	compAloneKnee, totalParKnee := compAlone, totalPar
	if opts.SmoothWindow > 1 {
		compAloneKnee = stats.MovingAverage(compAlone, opts.SmoothWindow)
		totalParKnee = stats.MovingAverage(totalPar, opts.SmoothWindow)
	}

	// (NSeqMax, TSeqMax): maximum of the compute-alone curve.
	iSeq := stats.ArgmaxTolerant(compAloneKnee, opts.PlateauTol)
	p.NSeqMax = iSeq + 1
	p.TSeqMax = compAlone[iSeq]

	// (NParMax, TParMax): maximum of the stacked parallel total.
	iPar := stats.ArgmaxTolerant(totalParKnee, opts.PlateauTol)
	// The model requires NParMax ≤ NSeqMax; contention-free machines
	// whose total keeps growing until the last core violate it, in
	// which case both maxima collapse onto NSeqMax.
	if iPar > iSeq {
		iPar = iSeq
	}
	p.NParMax = iPar + 1
	p.TParMax = totalPar[iPar]

	// Tmax2_par: the stacked total with NSeqMax computing cores.
	p.TPar2 = totalPar[iSeq]

	// δl: bandwidth lost per added core between NParMax and NSeqMax.
	if iSeq > iPar {
		p.DeltaL = stats.SlopeBetween(totalPar, iPar, iSeq)
		p.DeltaL = -p.DeltaL // slope is negative going down; δl is a loss
	}

	// δr: bandwidth lost per added core beyond NSeqMax.
	if nCores-1 > iSeq {
		p.DeltaR = -stats.SlopeBetween(totalPar, iSeq, nCores-1)
	}

	// α: worst-case fraction of the nominal bandwidth kept by
	// communications, α = min_i Bcomm_par(i)/Bcomm_seq.
	minComm, _ := stats.Min(commPar)
	p.Alpha = stats.Clamp(minComm/p.BCommSeq, 1e-6, 1.0)

	if err := p.Validate(); err != nil {
		return model.Params{}, fmt.Errorf("calib: %s placement %v: %w", curve.Platform, curve.Placement, err)
	}
	recordCalibration(opts.Registry, curve, p, commAlone)
	return p, nil
}

// recordCalibration publishes one successful parameter extraction: the
// fitted threshold values as labelled gauges and the Bcomm_seq fit
// residuals (how far each comm-alone sample sits from the averaged
// nominal bandwidth) as a histogram. A nil registry records nothing.
func recordCalibration(reg *obs.Registry, curve *bench.Curve, p model.Params, commAlone []float64) {
	if reg == nil {
		return
	}
	reg.Counter("memcontention_calib_fits_total", "Successful parameter extractions.", nil).Inc()
	labels := obs.L{"platform": curve.Platform, "placement": curve.Placement.String()}
	reg.Gauge("memcontention_calib_alpha_ratio", "Worst-case fraction of nominal bandwidth kept by communications.", labels).Set(p.Alpha)
	reg.Gauge("memcontention_calib_nseq_max_cores", "Cores at the compute-alone bandwidth maximum (NSeqMax).", labels).Set(float64(p.NSeqMax))
	reg.Gauge("memcontention_calib_npar_max_cores", "Cores at the stacked parallel maximum (NParMax).", labels).Set(float64(p.NParMax))
	reg.Gauge("memcontention_calib_tseq_max_gbps", "Compute-alone bandwidth at NSeqMax (TSeqMax).", labels).Set(p.TSeqMax)
	reg.Gauge("memcontention_calib_tpar_max_gbps", "Stacked parallel bandwidth at NParMax (TParMax).", labels).Set(p.TParMax)
	residuals := reg.Histogram("memcontention_calib_residual_gbps", "Absolute residuals of the Bcomm_seq fit over the sweep.", obs.ExponentialBuckets(1e-3, 4, 12), nil)
	for _, v := range commAlone {
		residuals.Observe(math.Abs(v - p.BCommSeq))
	}
}

// CalibrateModel builds the full placement-combining model from the two
// sample curves (§III-C). nodesPerSocket is #m.
func CalibrateModel(local, remote *bench.Curve, nodesPerSocket int) (model.Model, error) {
	return CalibrateModelWith(local, remote, nodesPerSocket, Options{})
}

// CalibrateModelWith is CalibrateModel with explicit heuristics.
func CalibrateModelWith(local, remote *bench.Curve, nodesPerSocket int, opts Options) (model.Model, error) {
	lp, err := CalibrateWith(local, opts)
	if err != nil {
		return model.Model{}, fmt.Errorf("calib: local sample: %w", err)
	}
	rp, err := CalibrateWith(remote, opts)
	if err != nil {
		return model.Model{}, fmt.Errorf("calib: remote sample: %w", err)
	}
	m := model.Model{Local: lp, Remote: rp, NodesPerSocket: nodesPerSocket}
	if err := m.Validate(); err != nil {
		return model.Model{}, fmt.Errorf("calib: %w", err)
	}
	return m, nil
}

// CalibrateRunner runs the two sample placements on a benchmark runner
// and calibrates the model in one step — the paper's complete §IV-A2
// pipeline (two benchmark executions, then parameter extraction). The
// runner's telemetry registry, when configured, also receives the
// calibration instruments.
func CalibrateRunner(r *bench.Runner) (model.Model, error) {
	local, remote, err := r.RunSamples()
	if err != nil {
		return model.Model{}, fmt.Errorf("calib: sample runs: %w", err)
	}
	return CalibrateModelWith(local, remote, r.Config().Platform.NodesPerSocket(), Options{Registry: r.Registry()})
}
