package calib

import (
	"math"
	"testing"

	"memcontention/internal/bench"
	"memcontention/internal/model"
	"memcontention/internal/topology"
)

// syntheticCurve builds a benchmark curve directly from a known parameter
// set using the model's own equations — calibration must then recover the
// parameters (a fixed point of the §IV-A2 pipeline).
func syntheticCurve(p model.Params, nCores int) *bench.Curve {
	c := &bench.Curve{Platform: "synthetic", Placement: model.Placement{Comp: 0, Comm: 0}}
	for n := 1; n <= nCores; n++ {
		c.Points = append(c.Points, bench.Point{
			N:         n,
			CompAlone: p.CompAlone(n),
			CommAlone: p.BCommSeq,
			CompPar:   p.CompPar(n),
			CommPar:   p.CommPar(n),
		})
	}
	return c
}

func refParams() model.Params {
	return model.Params{
		NParMax: 12, TParMax: 71,
		NSeqMax: 14, TSeqMax: 66,
		TPar2:  67,
		DeltaL: 2.0, DeltaR: 0.6,
		BCompSeq: 5.0,
		BCommSeq: 11.0,
		Alpha:    0.25,
	}
}

func TestCalibrateRecoversKnownParams(t *testing.T) {
	want := refParams()
	got, err := Calibrate(syntheticCurve(want, 18))
	if err != nil {
		t.Fatal(err)
	}
	if got.BCompSeq != want.BCompSeq {
		t.Errorf("BCompSeq = %v, want %v", got.BCompSeq, want.BCompSeq)
	}
	if math.Abs(got.BCommSeq-want.BCommSeq) > 1e-9 {
		t.Errorf("BCommSeq = %v, want %v", got.BCommSeq, want.BCommSeq)
	}
	if got.NSeqMax != want.NSeqMax {
		t.Errorf("NSeqMax = %d, want %d", got.NSeqMax, want.NSeqMax)
	}
	if math.Abs(got.TSeqMax-want.TSeqMax) > 1e-9 {
		t.Errorf("TSeqMax = %v, want %v", got.TSeqMax, want.TSeqMax)
	}
	if math.Abs(got.Alpha-want.Alpha) > 1e-9 {
		t.Errorf("Alpha = %v, want %v", got.Alpha, want.Alpha)
	}
	// The stacked total of the synthetic curve peaks where the model's
	// equations put it; the recovered knees must be close.
	if got.NParMax < want.NParMax-1 || got.NParMax > want.NParMax+1 {
		t.Errorf("NParMax = %d, want ≈%d", got.NParMax, want.NParMax)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("recovered params invalid: %v", err)
	}
}

func TestCalibratePredictionFixedPoint(t *testing.T) {
	// Predicting the synthetic curve with the recovered parameters must
	// reproduce it closely (the pipeline is approximately idempotent).
	want := refParams()
	curve := syntheticCurve(want, 18)
	got, err := Calibrate(curve)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range curve.Points {
		if e := math.Abs(got.CompPar(pt.N)-pt.CompPar) / math.Max(pt.CompPar, 1); e > 0.06 {
			t.Errorf("n=%d: recovered CompPar off by %.1f%%", pt.N, 100*e)
		}
		if e := math.Abs(got.CommPar(pt.N)-pt.CommPar) / math.Max(pt.CommPar, 1); e > 0.12 {
			t.Errorf("n=%d: recovered CommPar off by %.1f%%", pt.N, 100*e)
		}
	}
}

func TestCalibrateNoContentionPlatform(t *testing.T) {
	// A machine whose total keeps growing to the last core (diablo
	// local): NParMax must collapse to NSeqMax and the deltas stay
	// small; calibration must not fail.
	var c bench.Curve
	c.Platform = "flat"
	for n := 1; n <= 16; n++ {
		comp := math.Min(float64(n)*3.0, 45)
		c.Points = append(c.Points, bench.Point{
			N: n, CompAlone: comp, CommAlone: 12, CompPar: comp, CommPar: 12,
		})
	}
	p, err := Calibrate(&c)
	if err != nil {
		t.Fatal(err)
	}
	if p.NParMax > p.NSeqMax {
		t.Errorf("NParMax %d must not exceed NSeqMax %d", p.NParMax, p.NSeqMax)
	}
	if p.Alpha < 0.99 {
		t.Errorf("contention-free platform must calibrate α ≈ 1, got %v", p.Alpha)
	}
}

func TestCalibrateErrors(t *testing.T) {
	if _, err := Calibrate(nil); err == nil {
		t.Error("nil curve must fail")
	}
	if _, err := Calibrate(&bench.Curve{}); err == nil {
		t.Error("empty curve must fail")
	}
	sparse := syntheticCurve(refParams(), 18)
	sparse.Points = append(sparse.Points[:3], sparse.Points[5:]...) // hole at n=4
	if _, err := Calibrate(sparse); err == nil {
		t.Error("non-dense n coverage must fail")
	}
	zero := syntheticCurve(refParams(), 18)
	for i := range zero.Points {
		zero.Points[i].CommAlone = 0
	}
	if _, err := Calibrate(zero); err == nil {
		t.Error("zero comm bandwidth must fail")
	}
}

func TestCalibrateModelCombines(t *testing.T) {
	local := syntheticCurve(refParams(), 18)
	remoteParams := refParams()
	remoteParams.BCompSeq = 3.4
	remoteParams.NParMax, remoteParams.NSeqMax = 8, 10
	remoteParams.TParMax, remoteParams.TSeqMax, remoteParams.TPar2 = 40, 34, 36
	remote := syntheticCurve(remoteParams, 18)
	remote.Placement = model.Placement{Comp: 1, Comm: 1}

	m, err := CalibrateModel(local, remote, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.NodesPerSocket != 1 {
		t.Error("nodes per socket lost")
	}
	if m.Local.BCompSeq != 5.0 || m.Remote.BCompSeq != 3.4 {
		t.Error("local/remote instantiations mixed up")
	}
	if _, err := CalibrateModel(nil, remote, 1); err == nil {
		t.Error("nil local curve must fail")
	}
	if _, err := CalibrateModel(local, nil, 1); err == nil {
		t.Error("nil remote curve must fail")
	}
	if _, err := CalibrateModel(local, remote, 0); err == nil {
		t.Error("zero nodes per socket must fail")
	}
}

func TestCalibrateRunnerEndToEnd(t *testing.T) {
	for _, plat := range topology.Testbed() {
		runner, err := bench.NewRunner(bench.Config{Platform: plat, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		m, err := CalibrateRunner(runner)
		if err != nil {
			t.Fatalf("%s: %v", plat.Name, err)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: calibrated model invalid: %v", plat.Name, err)
		}
		if m.NodesPerSocket != plat.NodesPerSocket() {
			t.Errorf("%s: #m = %d, want %d", plat.Name, m.NodesPerSocket, plat.NodesPerSocket())
		}
		// Remote accesses extract less bandwidth than local ones.
		if m.Remote.TSeqMax >= m.Local.TSeqMax {
			t.Errorf("%s: remote TSeqMax %v must be below local %v", plat.Name, m.Remote.TSeqMax, m.Local.TSeqMax)
		}
		if m.Remote.BCompSeq >= m.Local.BCompSeq {
			t.Errorf("%s: remote per-core bandwidth must be below local", plat.Name)
		}
	}
}

func TestCalibrateWithOptions(t *testing.T) {
	// A very noisy plateau trips the default knee detection; smoothing
	// recovers the correct NSeqMax.
	want := refParams()
	curve := syntheticCurve(want, 18)
	// Inject a spike at n=17 on the compute-alone plateau tail.
	curve.Points[16].CompAlone *= 1.02
	plain, err := CalibrateWith(curve, Options{PlateauTol: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	smoothed, err := CalibrateWith(curve, Options{PlateauTol: 0.001, SmoothWindow: 3})
	if err != nil {
		t.Fatal(err)
	}
	if plain.NSeqMax != 17 {
		t.Errorf("tight tolerance must chase the spike (NSeqMax=%d)", plain.NSeqMax)
	}
	if smoothed.NSeqMax >= 17 {
		t.Errorf("smoothing must ignore the spike, got NSeqMax=%d", smoothed.NSeqMax)
	}
	// Defaults apply when fields are zero.
	def, err := CalibrateWith(syntheticCurve(want, 18), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Calibrate(syntheticCurve(want, 18))
	if err != nil {
		t.Fatal(err)
	}
	if def != ref {
		t.Error("zero options must equal defaults")
	}
}

func TestCalibrateModelWithOptions(t *testing.T) {
	local := syntheticCurve(refParams(), 18)
	remoteParams := refParams()
	remoteParams.BCompSeq = 3.4
	remote := syntheticCurve(remoteParams, 18)
	remote.Placement = model.Placement{Comp: 1, Comm: 1}
	m, err := CalibrateModelWith(local, remote, 1, Options{SmoothWindow: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}
