package calib

import (
	"testing"

	"memcontention/internal/bench"
	"memcontention/internal/obs"
	"memcontention/internal/topology"
)

func TestCalibrationInstrumentation(t *testing.T) {
	plat, err := topology.ByName("henri")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	r, err := bench.NewRunner(bench.Config{Platform: plat, Seed: 1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CalibrateRunner(r); err != nil {
		t.Fatal(err)
	}
	// Two sample placements -> two fits.
	if got := reg.Counter("memcontention_calib_fits_total", "", nil).Value(); got != 2 {
		t.Errorf("fits counter = %v, want 2", got)
	}
	local := obs.L{"platform": "henri", "placement": "comp@0/comm@0"}
	if got := reg.Gauge("memcontention_calib_alpha_ratio", "", local).Value(); got <= 0 || got > 1 {
		t.Errorf("alpha gauge = %v, want in (0,1]", got)
	}
	if got := reg.Gauge("memcontention_calib_nseq_max_cores", "", local).Value(); got < 1 {
		t.Errorf("NSeqMax gauge = %v, want >= 1", got)
	}
	if got := reg.Gauge("memcontention_calib_tseq_max_gbps", "", local).Value(); got <= 0 {
		t.Errorf("TSeqMax gauge = %v, want > 0", got)
	}
	// One residual per sweep point per fit.
	wantResiduals := uint64(2 * plat.CoresPerSocket())
	if got := reg.Histogram("memcontention_calib_residual_gbps", "", nil, nil).Count(); got != wantResiduals {
		t.Errorf("residual observations = %d, want %d", got, wantResiduals)
	}
}

// TestCalibrateWithoutRegistry ensures the registry is genuinely optional.
func TestCalibrateWithoutRegistry(t *testing.T) {
	plat, err := topology.ByName("henri")
	if err != nil {
		t.Fatal(err)
	}
	r, err := bench.NewRunner(bench.Config{Platform: plat, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CalibrateRunner(r); err != nil {
		t.Fatal(err)
	}
}
