package calib

import (
	"fmt"
	"math"

	"memcontention/internal/bench"
	"memcontention/internal/rng"
	"memcontention/internal/stats"
)

// This file quantifies the calibration's robustness to noisy benchmark
// input. The paper observes that "higher prediction errors come most
// often from unstable input data"; Robustness makes that statement
// measurable by refitting the model from noise-perturbed sample curves
// and reporting how the Table II errors degrade with noise amplitude.

// RobustnessOptions tunes a robustness sweep.
type RobustnessOptions struct {
	// Amplitudes are the relative noise levels to sweep (e.g. 0.05 for
	// ±5 % multiplicative noise). Default: 1 %, 2 %, 5 %, 10 %.
	Amplitudes []float64
	// Trials is how many independent noise realizations are averaged
	// per amplitude (default 5).
	Trials int
	// Seed drives the deterministic noise streams; the same seed and
	// options reproduce the sweep exactly.
	Seed uint64
	// Calib forwards heuristics to the underlying parameter extraction.
	Calib Options
}

func (o RobustnessOptions) withDefaults() RobustnessOptions {
	if len(o.Amplitudes) == 0 {
		o.Amplitudes = []float64{0.01, 0.02, 0.05, 0.10}
	}
	if o.Trials <= 0 {
		o.Trials = 5
	}
	return o
}

func (o RobustnessOptions) validate() error {
	for _, a := range o.Amplitudes {
		if math.IsNaN(a) || math.IsInf(a, 0) || a < 0 || a >= 1 {
			return fmt.Errorf("calib: noise amplitude must be in [0,1), got %v", a)
		}
	}
	return nil
}

// RobustnessPoint is one row of the degradation table: the mean Table II
// errors of models refitted from curves carrying NoiseRel of relative
// noise.
type RobustnessPoint struct {
	NoiseRel float64 `json:"noise_rel"`
	// CommMAPE and CompMAPE are pooled over every placement of the
	// platform and averaged over the successful trials, in percent.
	CommMAPE float64 `json:"comm_mape"`
	CompMAPE float64 `json:"comp_mape"`
	// Average is the mean of CommMAPE and CompMAPE (the last column of
	// Table II).
	Average float64 `json:"average"`
	// Trials counts the noise realizations attempted, FitFailures how
	// many of them the calibration rejected outright.
	Trials      int `json:"trials"`
	FitFailures int `json:"fit_failures"`
}

// RobustnessReport is the outcome of one sweep.
type RobustnessReport struct {
	Platform string `json:"platform"`
	// Baseline is the clean fit (noise 0, one trial) — the reference
	// Table II errors.
	Baseline RobustnessPoint   `json:"baseline"`
	Points   []RobustnessPoint `json:"points"`
}

// PerturbCurve returns a copy of the curve with independent
// multiplicative noise (factor 1 + N(0, rel), clamped — see rng.Jitter)
// applied to every bandwidth sample. The input curve is not modified.
func PerturbCurve(c *bench.Curve, rel float64, stream *rng.Stream) *bench.Curve {
	out := *c
	out.Points = make([]bench.Point, len(c.Points))
	for i, pt := range c.Points {
		pt.CompAlone *= stream.Jitter(rel)
		pt.CommAlone *= stream.Jitter(rel)
		pt.CompPar *= stream.Jitter(rel)
		pt.CommPar *= stream.Jitter(rel)
		out.Points[i] = pt
	}
	return &out
}

// Robustness runs the full sweep on a benchmark runner: it measures every
// placement once (clean), then for each amplitude refits the model
// Trials times from noise-perturbed copies of the two sample curves and
// scores each refit against the clean measurements. Determinism: the
// noise streams are keyed by (seed, amplitude, trial), so repeated calls
// with the same runner configuration and options are bit-identical.
func Robustness(runner *bench.Runner, opts RobustnessOptions) (*RobustnessReport, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	plat := runner.Config().Platform
	curves, err := runner.RunAll()
	if err != nil {
		return nil, fmt.Errorf("calib: robustness: %w", err)
	}
	localPl, remotePl := bench.SamplePlacements(plat)
	var local, remote *bench.Curve
	for _, c := range curves {
		switch c.Placement {
		case localPl:
			local = c
		case remotePl:
			remote = c
		}
	}
	if local == nil || remote == nil {
		return nil, fmt.Errorf("calib: robustness: sample placements %v/%v missing from sweep", localPl, remotePl)
	}

	rep := &RobustnessReport{Platform: plat.Name}
	base, err := scoreFit(local, remote, plat.NodesPerSocket(), opts.Calib, curves)
	if err != nil {
		return nil, fmt.Errorf("calib: robustness: clean fit: %w", err)
	}
	base.Trials = 1
	rep.Baseline = base

	for _, amp := range opts.Amplitudes {
		pt := RobustnessPoint{NoiseRel: amp, Trials: opts.Trials}
		var commSum, compSum float64
		fits := 0
		for trial := 0; trial < opts.Trials; trial++ {
			stream := rng.New(opts.Seed, fmt.Sprintf("calib/robustness/amp=%g/trial=%d", amp, trial))
			noisyLocal := PerturbCurve(local, amp, stream.Derive("local"))
			noisyRemote := PerturbCurve(remote, amp, stream.Derive("remote"))
			s, err := scoreFit(noisyLocal, noisyRemote, plat.NodesPerSocket(), opts.Calib, curves)
			if err != nil {
				pt.FitFailures++
				continue
			}
			commSum += s.CommMAPE
			compSum += s.CompMAPE
			fits++
		}
		if fits > 0 {
			pt.CommMAPE = commSum / float64(fits)
			pt.CompMAPE = compSum / float64(fits)
			pt.Average = (pt.CommMAPE + pt.CompMAPE) / 2
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// scoreFit calibrates a model from the given sample curves and scores its
// predictions against the clean measured curves, pooled over every
// placement (the "all" columns of Table II).
func scoreFit(local, remote *bench.Curve, nodesPerSocket int, opts Options, clean []*bench.Curve) (RobustnessPoint, error) {
	m, err := CalibrateModelWith(local, remote, nodesPerSocket, opts)
	if err != nil {
		return RobustnessPoint{}, err
	}
	var aComm, pComm, aComp, pComp []float64
	for _, curve := range clean {
		preds, err := m.PredictCurve(len(curve.Points), curve.Placement)
		if err != nil {
			return RobustnessPoint{}, err
		}
		for i, pt := range curve.Points {
			aComm = append(aComm, pt.CommPar)
			pComm = append(pComm, preds[i].Comm)
			aComp = append(aComp, pt.CompPar)
			pComp = append(pComp, preds[i].Comp)
		}
	}
	var s RobustnessPoint
	if s.CommMAPE, err = stats.MAPE(aComm, pComm); err != nil {
		return s, err
	}
	if s.CompMAPE, err = stats.MAPE(aComp, pComp); err != nil {
		return s, err
	}
	s.Average = (s.CommMAPE + s.CompMAPE) / 2
	return s, nil
}
