package calib

import (
	"math"
	"reflect"
	"testing"

	"memcontention/internal/bench"
	"memcontention/internal/rng"
	"memcontention/internal/topology"
)

func TestPerturbCurve(t *testing.T) {
	clean := syntheticCurve(refParams(), 18)
	noisy := PerturbCurve(clean, 0.05, rng.New(1, "test"))
	if len(noisy.Points) != len(clean.Points) {
		t.Fatalf("point count changed: %d != %d", len(noisy.Points), len(clean.Points))
	}
	changed := false
	for i, pt := range noisy.Points {
		c := clean.Points[i]
		if pt.N != c.N {
			t.Fatalf("point %d: n changed", i)
		}
		for _, pair := range [][2]float64{
			{pt.CompAlone, c.CompAlone}, {pt.CommAlone, c.CommAlone},
			{pt.CompPar, c.CompPar}, {pt.CommPar, c.CommPar},
		} {
			rel := math.Abs(pair[0]-pair[1]) / pair[1]
			if rel > 4*0.05+1e-12 {
				t.Fatalf("point %d: noise %v exceeds the 4*rel clamp", i, rel)
			}
			if pair[0] != pair[1] {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("perturbation changed nothing")
	}
	// Zero amplitude is the identity.
	same := PerturbCurve(clean, 0, rng.New(1, "test"))
	if !reflect.DeepEqual(same.Points, clean.Points) {
		t.Fatal("rel=0 must not modify the curve")
	}
	// The input must be untouched.
	if !reflect.DeepEqual(clean, syntheticCurve(refParams(), 18)) {
		t.Fatal("PerturbCurve modified its input")
	}
}

func TestRobustnessSweep(t *testing.T) {
	runner, err := bench.NewRunner(bench.Config{Platform: topology.Henri(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	opts := RobustnessOptions{Amplitudes: []float64{0.01, 0.10}, Trials: 3, Seed: 7}
	rep, err := Robustness(runner, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Platform != "henri" {
		t.Errorf("platform = %q", rep.Platform)
	}
	if rep.Baseline.CommMAPE <= 0 || rep.Baseline.CompMAPE <= 0 {
		t.Errorf("baseline MAPE not positive: %+v", rep.Baseline)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(rep.Points))
	}
	for i, pt := range rep.Points {
		if pt.NoiseRel != opts.Amplitudes[i] {
			t.Errorf("point %d: amplitude %v, want %v", i, pt.NoiseRel, opts.Amplitudes[i])
		}
		if pt.Trials != 3 {
			t.Errorf("point %d: trials %d", i, pt.Trials)
		}
		if pt.FitFailures < 3 && pt.Average <= 0 {
			t.Errorf("point %d: no average despite %d fits", i, 3-pt.FitFailures)
		}
	}
	// More noise must not improve the fit (averaged over trials).
	if rep.Points[1].FitFailures < 3 && rep.Points[1].Average < rep.Baseline.Average {
		t.Errorf("10%% noise average %.3f beat the clean baseline %.3f",
			rep.Points[1].Average, rep.Baseline.Average)
	}

	// Same seed + options on a fresh runner reproduces the sweep exactly.
	runner2, err := bench.NewRunner(bench.Config{Platform: topology.Henri(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Robustness(runner2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, rep2) {
		t.Fatal("robustness sweep is not deterministic")
	}
}

func TestRobustnessRejectsBadAmplitude(t *testing.T) {
	runner, err := bench.NewRunner(bench.Config{Platform: topology.Henri(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{-0.1, 1.0, math.NaN(), math.Inf(1)} {
		if _, err := Robustness(runner, RobustnessOptions{Amplitudes: []float64{bad}}); err == nil {
			t.Errorf("amplitude %v accepted", bad)
		}
	}
}
