package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"memcontention/internal/atomicio"
	"memcontention/internal/obs"
)

// This file is the worker status beacon: a small durable JSON document
// each worker of a campaign rewrites periodically into
// <campaign-dir>/beacons/<worker>.json. Where the lease files answer
// "who owns shard N right now", a beacon answers "what is worker W
// doing": which leases it holds and at which fencing epochs, how many
// units it has journaled, its recent throughput, and a full snapshot of
// its telemetry registry (the stable-JSON exporter, so a beacon and a
// /metrics.json scrape of the same registry are byte-identical).
// Beacons are written via atomicio on an injectable obs.Clock, so tests
// drive them deterministically and a reader never sees a torn beacon.
//
// A worker that stops rewriting its beacon has crashed or hung — unless
// its final beacon says otherwise: workers write a last beacon with
// State drained/stopped/failed on the way out, which is what lets an
// operator (and memtop) tell a clean exit from a corpse.

// BeaconsDir is the subdirectory of a campaign directory holding the
// per-worker status beacons.
const BeaconsDir = "beacons"

// Worker beacon states. Running beacons go stale when their age exceeds
// the lease liveness bound; terminal states are trustworthy forever.
const (
	// WorkerRunning: the worker was alive at UpdatedUnixNano.
	WorkerRunning = "running"
	// WorkerDrained: the worker observed the whole campaign complete and
	// exited cleanly.
	WorkerDrained = "drained"
	// WorkerStopped: the worker exited cleanly without draining
	// (cancellation — first SIGINT/SIGTERM — or nothing left to claim).
	WorkerStopped = "stopped"
	// WorkerFailed: the worker exited on an error (Detail in the event
	// journal says which unit or lease operation failed).
	WorkerFailed = "failed"
)

// LeaseHolding is one lease a worker holds: the shard and the fencing
// epoch it was acquired under.
type LeaseHolding struct {
	Shard int    `json:"shard"`
	Epoch uint64 `json:"epoch"`
}

// WorkerStatus is one worker's beacon document.
type WorkerStatus struct {
	// Worker is the writer id (the lease owner token for memworker
	// processes); it doubles as the beacon file stem.
	Worker string `json:"worker"`
	// Host and PID locate the process for operators (empty/0 for
	// in-process executors).
	Host string `json:"host,omitempty"`
	PID  int    `json:"pid,omitempty"`
	// State is one of WorkerRunning, WorkerDrained, WorkerStopped,
	// WorkerFailed.
	State string `json:"state"`
	// StartedUnixNano and UpdatedUnixNano bracket the worker's life on
	// its injected clock; staleness is judged against Updated.
	StartedUnixNano int64 `json:"started_unix_nano"`
	UpdatedUnixNano int64 `json:"updated_unix_nano"`
	// Units counts the experiment units this worker journaled.
	Units int `json:"units"`
	// Fenced counts leases this worker lost to a higher epoch.
	Fenced int `json:"fenced"`
	// RenewErrors counts transient heartbeat-renewal failures.
	RenewErrors int `json:"renew_errors"`
	// UnitsPerSec is the worker's recent throughput (a rolling-window
	// rate from obs.Rolling; 0 when idle for a full window).
	UnitsPerSec float64 `json:"units_per_sec"`
	// Leases lists the leases currently held, sorted by shard.
	Leases []LeaseHolding `json:"leases,omitempty"`
	// Shards is the worker's last view of per-shard completion (the
	// shards it has touched), sorted by shard.
	Shards []ShardProgress `json:"shards,omitempty"`
	// Registry is the stable-JSON snapshot of the worker's telemetry
	// registry (absent when the worker runs without one).
	Registry json.RawMessage `json:"registry,omitempty"`
}

func (s WorkerStatus) validate() error {
	switch {
	case s.Worker == "":
		return fmt.Errorf("campaign: beacon with empty worker id")
	case s.Worker != filepath.Base(s.Worker) || s.Worker == "." || s.Worker == "..":
		return fmt.Errorf("campaign: beacon worker id %q is not path-safe", s.Worker)
	case s.State != WorkerRunning && s.State != WorkerDrained && s.State != WorkerStopped && s.State != WorkerFailed:
		return fmt.Errorf("campaign: beacon state %q unknown", s.State)
	}
	return nil
}

// BeaconPath returns the beacon file of one worker under dir.
func BeaconPath(dir, worker string) string {
	return filepath.Join(dir, BeaconsDir, worker+".json")
}

// EncodeBeacon renders the beacon document: indented stable JSON plus a
// trailing newline. The bytes depend only on the status fields (the
// registry snapshot is itself byte-deterministic), so two workers in the
// same state beacon identically.
func EncodeBeacon(s WorkerStatus) ([]byte, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("campaign: encode beacon %s: %w", s.Worker, err)
	}
	return append(data, '\n'), nil
}

// DecodeBeacon parses a beacon document strictly (unknown fields,
// trailing content and invalid states are rejected — beacons are written
// atomically, so malformed content means something else went wrong).
func DecodeBeacon(data []byte) (WorkerStatus, error) {
	var s WorkerStatus
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return WorkerStatus{}, fmt.Errorf("campaign: decode beacon: %w", err)
	}
	if dec.More() {
		return WorkerStatus{}, fmt.Errorf("campaign: beacon has trailing content")
	}
	if err := s.validate(); err != nil {
		return WorkerStatus{}, err
	}
	return s, nil
}

// WriteBeacon durably (re)writes one worker's beacon: atomic temp +
// fsync + rename, creating beacons/ on first use, so readers always see
// a complete document.
func WriteBeacon(dir string, s WorkerStatus) error {
	data, err := EncodeBeacon(s)
	if err != nil {
		return err
	}
	bdir := filepath.Join(dir, BeaconsDir)
	if err := atomicio.MkdirAll(bdir, 0o755); err != nil {
		return fmt.Errorf("campaign: beacons %s: %w", bdir, err)
	}
	if err := atomicio.WriteFile(BeaconPath(dir, s.Worker), data, 0o644); err != nil {
		return fmt.Errorf("campaign: beacon %s: %w", s.Worker, err)
	}
	return nil
}

// ReadBeacons loads every beacon of a campaign directory, sorted by
// worker id. A campaign without beacons (no beacons/ directory) reads as
// empty; an individual beacon that fails to decode is an error — they
// are written atomically, so a torn one means real corruption.
func ReadBeacons(dir string) ([]WorkerStatus, error) {
	bdir := filepath.Join(dir, BeaconsDir)
	entries, err := os.ReadDir(bdir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: beacons %s: %w", bdir, err)
	}
	var out []WorkerStatus
	for _, ent := range entries {
		if ent.IsDir() || filepath.Ext(ent.Name()) != ".json" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(bdir, ent.Name()))
		if err != nil {
			return nil, fmt.Errorf("campaign: beacon %s: %w", ent.Name(), err)
		}
		s, err := DecodeBeacon(data)
		if err != nil {
			return nil, fmt.Errorf("campaign: beacon %s: %w", ent.Name(), err)
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out, nil
}

// RegistrySnapshot renders a registry as its stable-JSON document for
// embedding in a beacon (nil both on a nil registry and on an empty
// one, keeping idle beacons small).
func RegistrySnapshot(r *obs.Registry) json.RawMessage {
	if r == nil || r.Len() == 0 {
		return nil
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		return nil
	}
	return json.RawMessage(bytes.TrimRight(buf.Bytes(), "\n"))
}
