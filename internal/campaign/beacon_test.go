package campaign

import (
	"bytes"
	"reflect"
	"testing"

	"memcontention/internal/obs"
)

func testStatus() WorkerStatus {
	return WorkerStatus{
		Worker:          "w1",
		Host:            "h",
		PID:             42,
		State:           WorkerRunning,
		StartedUnixNano: 100,
		UpdatedUnixNano: 200,
		Units:           7,
		UnitsPerSec:     1.5,
		Leases:          []LeaseHolding{{Shard: 0, Epoch: 2}},
		Shards:          []ShardProgress{{Shard: 0, Done: 7, Pending: 3}},
	}
}

func TestBeaconRoundTripAndByteDeterminism(t *testing.T) {
	s := testStatus()
	a, err := EncodeBeacon(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeBeacon(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("identical statuses encode to different bytes")
	}
	got, err := DecodeBeacon(a)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, s)
	}
}

func TestBeaconValidation(t *testing.T) {
	for name, mutate := range map[string]func(*WorkerStatus){
		"empty worker":  func(s *WorkerStatus) { s.Worker = "" },
		"path worker":   func(s *WorkerStatus) { s.Worker = "a/b" },
		"dotdot worker": func(s *WorkerStatus) { s.Worker = ".." },
		"bad state":     func(s *WorkerStatus) { s.State = "zombie" },
	} {
		s := testStatus()
		mutate(&s)
		if _, err := EncodeBeacon(s); err == nil {
			t.Errorf("%s: encoded", name)
		}
	}
	if _, err := DecodeBeacon([]byte(`{"worker":"w","state":"running","unknown":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := DecodeBeacon([]byte(`{"worker":"w","state":"running","started_unix_nano":0,"updated_unix_nano":0,"units":0,"fenced":0,"renew_errors":0,"units_per_sec":0} extra`)); err == nil {
		t.Error("trailing content accepted")
	}
}

func TestWriteReadBeaconsSorted(t *testing.T) {
	dir := t.TempDir()
	for _, w := range []string{"zeta", "alpha", "mid"} {
		s := testStatus()
		s.Worker = w
		if err := WriteBeacon(dir, s); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadBeacons(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, s := range got {
		names = append(names, s.Worker)
	}
	want := []string{"alpha", "mid", "zeta"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("beacons %v, want %v", names, want)
	}

	// Rewriting a beacon replaces it, never duplicates.
	s := testStatus()
	s.Worker = "alpha"
	s.State = WorkerDrained
	if err := WriteBeacon(dir, s); err != nil {
		t.Fatal(err)
	}
	got, err = ReadBeacons(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].State != WorkerDrained {
		t.Fatalf("rewritten beacon set: %+v", got)
	}
}

func TestReadBeaconsMissingDirIsEmpty(t *testing.T) {
	got, err := ReadBeacons(t.TempDir())
	if err != nil || got != nil {
		t.Fatalf("missing beacons dir: %v, err %v; want empty, nil", got, err)
	}
}

func TestRegistrySnapshotMatchesExporter(t *testing.T) {
	if RegistrySnapshot(nil) != nil {
		t.Fatal("nil registry snapshots non-nil")
	}
	reg := obs.NewRegistry()
	if RegistrySnapshot(reg) != nil {
		t.Fatal("empty registry snapshots non-nil")
	}
	reg.Counter("memcontention_test_total", "help", nil).Add(3)
	snap := RegistrySnapshot(reg)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if want := bytes.TrimRight(buf.Bytes(), "\n"); !bytes.Equal(snap, want) {
		t.Fatalf("snapshot diverges from the exporter:\n%s\n%s", snap, want)
	}

	// The snapshot must survive an encode/decode round trip inside a
	// beacon document.
	s := testStatus()
	s.Registry = snap
	img, err := EncodeBeacon(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBeacon(img); err != nil {
		t.Fatal(err)
	}
}
