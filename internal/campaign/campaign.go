// Package campaign drives the paper's multi-stage experiment pipelines as
// crash-safe, resumable campaigns. It layers three things on top of the
// bench/eval/netbench building blocks:
//
//   - checkpointing: every completed unit (a placement curve, a platform
//     evaluation, a ping-pong point, a DES cross-check) is recorded in an
//     append-only journal (internal/checkpoint) before the campaign moves
//     on, so a killed run resumes exactly where it died;
//   - cancellation: a context threads through every layer down to the
//     discrete-event engine, so SIGINT stops the campaign at a clean unit
//     boundary with all completed work already journaled;
//   - determinism: results depend only on (seed, configuration) via
//     internal/rng, so a resumed campaign is bit-identical to an
//     uninterrupted one — the journal saves time, never changes results.
//
// The soak harness (scripts/soak) kills and resumes these pipelines
// repeatedly and asserts byte-identical final artifacts.
package campaign

import (
	"context"
	"fmt"
	"strings"

	"memcontention"
	"memcontention/internal/bench"
	"memcontention/internal/checkpoint"
	"memcontention/internal/eval"
	"memcontention/internal/faults"
	"memcontention/internal/netbench"
	"memcontention/internal/obs"
	"memcontention/internal/prof"
	"memcontention/internal/sweep"
	"memcontention/internal/topology"
	"memcontention/internal/trace"
)

// Config parameterises a campaign. The zero value (plus defaults applied
// by each entry point) runs the standard seed-1 pipeline without
// checkpointing, cancellation or telemetry.
type Config struct {
	// Seed drives all measurement noise (default 1).
	Seed uint64
	// Workers bounds the evaluation worker pool (0: GOMAXPROCS).
	Workers int
	// Context cancels the campaign cooperatively at unit boundaries.
	// Nil keeps every layer check-free.
	Context context.Context
	// Journal checkpoints completed units; nil disables checkpointing.
	Journal *checkpoint.Journal
	// Registry receives telemetry from every layer; nil disables it.
	Registry *obs.Registry
	// Recorder, when set, receives trace events from the DES cross-check.
	Recorder *trace.Recorder
	// Profiler, when set, records causal spans from the DES cross-check
	// (it supersedes Recorder as the trace sink for that unit).
	Profiler *prof.Profiler
	// SpanStore, when set with Profiler, persists each trace-producing
	// unit's event slice under its journal key: a resumed campaign
	// re-ingests the cached slice instead of re-running, so the stitched
	// trace is byte-identical to an uninterrupted recording.
	SpanStore *prof.SpanStore
	// FaultPlan, when set, runs the DES cross-check under fault
	// injection guarded by MPI resilience and a watchdog.
	FaultPlan *faults.Plan
	// Replications > 1 runs the Monte-Carlo replication sweep: every
	// platform is evaluated once per seed in {Seed, Seed+1, ...} and the
	// pipeline artifacts gain a per-platform mean/stddev/CI95 summary of
	// the Table II error metrics (see Replicate). 0 and 1 both mean a
	// single replication, the plain pipeline.
	Replications int
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ctx returns the effective context (never nil).
func (c Config) ctx() context.Context {
	if c.Context == nil {
		return context.Background()
	}
	return c.Context
}

// EvaluatePlatforms runs the full §IV evaluation for the named built-in
// platforms on a worker pool, returning results in input order. Each
// platform evaluation is journaled whole (key "eval|<scope>") and its
// placement curves are journaled individually, so resume granularity is
// one placement even when the evaluation itself was interrupted.
func EvaluatePlatforms(cfg Config, names []string) ([]*eval.PlatformResult, error) {
	cfg = cfg.withDefaults()
	return sweep.MapCtx(cfg.ctx(), names, cfg.Workers, func(name string) (*eval.PlatformResult, error) {
		return evaluateOne(cfg, name)
	})
}

func evaluateOne(cfg Config, name string) (*eval.PlatformResult, error) {
	plat, err := topology.ByName(name)
	if err != nil {
		return nil, err
	}
	runner, err := bench.NewRunner(bench.Config{
		Platform: plat,
		Seed:     cfg.Seed,
		Registry: cfg.Registry,
		Context:  cfg.Context,
	})
	if err != nil {
		return nil, err
	}
	runner.WithJournal(cfg.Journal)
	key := "eval|" + runner.Scope()
	if cfg.Journal != nil {
		var cached eval.PlatformResult
		if ok, err := cfg.Journal.Get(key, &cached); err != nil {
			return nil, fmt.Errorf("campaign: journal entry %s: %w", key, err)
		} else if ok {
			return &cached, nil
		}
	}
	res, err := eval.EvaluateRunner(runner)
	if err != nil {
		return nil, err
	}
	if err := cfg.Journal.Record(key, res); err != nil {
		return nil, fmt.Errorf("campaign: journal %s: %w", key, err)
	}
	return res, nil
}

// Curves measures the given placements of one platform configuration,
// journaling each completed curve. It is the resumable core of the
// membench command.
func Curves(cfg Config, bc bench.Config, placements []memcontention.Placement) ([]*bench.Curve, error) {
	cfg = cfg.withDefaults()
	if bc.Seed == 0 {
		bc.Seed = cfg.Seed
	}
	if bc.Registry == nil {
		bc.Registry = cfg.Registry
	}
	if bc.Context == nil {
		bc.Context = cfg.Context
	}
	runner, err := bench.NewRunner(bc)
	if err != nil {
		return nil, err
	}
	runner.WithJournal(cfg.Journal)
	curves := make([]*bench.Curve, 0, len(placements))
	for _, pl := range placements {
		c, err := runner.RunPlacement(pl)
		if err != nil {
			return nil, err
		}
		curves = append(curves, c)
	}
	return curves, nil
}

// Netbench runs the ping-pong size sweep for one platform, journaling
// each completed size.
func Netbench(cfg Config, platform string) ([]netbench.Point, error) {
	cfg = cfg.withDefaults()
	plat, err := topology.ByName(platform)
	if err != nil {
		return nil, err
	}
	return netbench.PingPong(netbench.Config{
		Platform: plat,
		Registry: cfg.Registry,
		Context:  cfg.Context,
		Journal:  cfg.Journal,
	})
}

// CrossCheckResult is the recorded outcome of the DES overlap cross-check.
// Under a fault plan a failing run is the plan working as intended, so the
// failure is captured here instead of surfacing as a campaign error.
type CrossCheckResult struct {
	Platform   string  `json:"platform"`
	SimSeconds float64 `json:"sim_seconds"`
	Completed  bool    `json:"completed"`
	Error      string  `json:"error,omitempty"`
	PlanSeed   uint64  `json:"plan_seed,omitempty"`
	PlanEvents int     `json:"plan_events,omitempty"`
}

// CrossCheck replays the paper's motivating overlap scenario (rank 0
// computes while a large message streams in, rank 1 sends) on a simulated
// two-machine cluster, optionally under cfg.FaultPlan with MPI timeouts,
// drop retries and a watchdog armed. The outcome is journaled (the DES is
// deterministic), cancellation propagates from cfg.Context between
// simulation events, and trace events land in cfg.Recorder.
func CrossCheck(cfg Config, platform string) (*CrossCheckResult, error) {
	cfg = cfg.withDefaults()
	key := crossCheckKey(cfg, platform)
	if cfg.Journal != nil {
		var cached CrossCheckResult
		if ok, err := cfg.Journal.Get(key, &cached); err != nil {
			return nil, fmt.Errorf("campaign: journal entry %s: %w", key, err)
		} else if ok {
			// Stitch the cached unit's span file instead of re-running:
			// the profiler re-ingests the slice and advances its span-id
			// allocator past it, so later units never collide and the
			// merged trace matches an uninterrupted run byte for byte.
			if cfg.Profiler != nil && cfg.SpanStore != nil {
				events, found, err := cfg.SpanStore.Load(key)
				if err != nil {
					return nil, err
				}
				if found {
					cfg.Profiler.Ingest(events)
				}
			}
			return &cached, nil
		}
	}
	plat, err := topology.ByName(platform)
	if err != nil {
		return nil, err
	}
	cluster, err := memcontention.NewCluster(platform, 2)
	if err != nil {
		return nil, err
	}
	cluster.WithRegistry(cfg.Registry)
	eventsBefore := 0
	switch {
	case cfg.Profiler != nil:
		cluster.WithProfiler(cfg.Profiler)
		eventsBefore = cfg.Profiler.Recorder().EventCount()
	case cfg.Recorder != nil:
		cluster.WithObserver(cfg.Recorder)
	}
	if cfg.Context != nil {
		cluster.WithContext(cfg.Context)
	}
	res := &CrossCheckResult{Platform: platform}
	if cfg.FaultPlan != nil {
		cluster.WithFaults(cfg.FaultPlan).
			WithResilience(memcontention.Resilience{OpTimeout: 5, MaxRetries: 4}).
			WithWatchdog(300, 10_000_000)
		res.PlanSeed = cfg.FaultPlan.Seed
		res.PlanEvents = len(cfg.FaultPlan.Events)
	}

	const tag = 7
	msg := 64 * memcontention.MiB
	cores := plat.CoresPerSocket() / 2
	if cores < 1 {
		cores = 1
	}
	var rec interface {
		MarkAt(at float64, label string)
	} = cfg.Recorder
	if cfg.Profiler != nil {
		rec = cfg.Profiler
	} else if cfg.Recorder == nil {
		rec = nil
	}
	secs, runErr := cluster.Run(1, func(ctx *memcontention.RankCtx) {
		switch ctx.Rank() {
		case 0:
			topo := ctx.Machine().Topo
			work := memcontention.Assignment{
				Kernel: memcontention.DefaultKernel(),
				Cores:  topo.SocketSet(0).Take(cores),
				Node:   0,
			}
			if rec != nil {
				rec.MarkAt(ctx.Now(), "overlap-start")
			}
			req, err := ctx.Irecv(1, tag, msg, 0)
			if err != nil {
				panic(err)
			}
			if _, err := ctx.Compute(work, 256*memcontention.MiB); err != nil {
				panic(err)
			}
			if _, err := ctx.Wait(req); err != nil {
				panic(err)
			}
			if rec != nil {
				rec.MarkAt(ctx.Now(), "overlap-end")
			}
		case 1:
			if err := ctx.Send(0, tag, msg, 0, nil); err != nil {
				panic(err)
			}
		}
	})
	// Cancellation is never an outcome to journal: the unit did not
	// complete and must re-run on resume.
	if checkpoint.IsCanceled(runErr) {
		return nil, runErr
	}
	res.SimSeconds = secs
	res.Completed = runErr == nil
	if runErr != nil {
		if cfg.FaultPlan == nil {
			return nil, runErr
		}
		res.Error = runErr.Error()
		res.SimSeconds = 0
	}
	// Persist this unit's slice of the trace before the journal commit:
	// a kill between the two re-runs the unit on resume (overwriting the
	// span file), never the reverse, so a journaled unit always has its
	// spans and a resumed campaign stitches a byte-identical trace.
	if cfg.Profiler != nil && cfg.SpanStore != nil {
		unit := cfg.Profiler.Events()[eventsBefore:]
		if err := cfg.SpanStore.Save(key, unit); err != nil {
			return nil, err
		}
	}
	if err := cfg.Journal.Record(key, res); err != nil {
		return nil, fmt.Errorf("campaign: journal %s: %w", key, err)
	}
	return res, nil
}

// crossCheckKey identifies one cross-check outcome: platform plus the
// exact fault plan (content-addressed) it ran under.
func crossCheckKey(cfg Config, platform string) string {
	plan := "none"
	if cfg.FaultPlan != nil {
		plan = cfg.FaultPlan.Fingerprint()
	}
	return fmt.Sprintf("xcheck|%s|plan=%s", platform, plan)
}

// TestbedNames returns the Table I platform names in the paper's order.
func TestbedNames() []string {
	plats := topology.Testbed()
	names := make([]string, len(plats))
	for i, p := range plats {
		names[i] = p.Name
	}
	return names
}

// Progress summarises how much of a campaign a journal already covers,
// for "resuming: ..." banners and checkpoint trace labels.
func Progress(j *checkpoint.Journal) string {
	if j == nil {
		return "no journal"
	}
	counts := map[string]int{}
	var kinds []string
	for _, key := range j.Keys() {
		kind, _, _ := strings.Cut(key, "|")
		if counts[kind] == 0 {
			kinds = append(kinds, kind)
		}
		counts[kind]++
	}
	if len(kinds) == 0 {
		return "journal empty"
	}
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%d %s", counts[k], k))
	}
	return strings.Join(parts, ", ") + " journaled"
}
