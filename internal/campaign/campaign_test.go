package campaign

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"memcontention"
	"memcontention/internal/bench"
	"memcontention/internal/checkpoint"
	"memcontention/internal/faults"
	"memcontention/internal/prof"
	"memcontention/internal/topology"
	"memcontention/internal/trace"
)

// testNames keeps campaign tests fast: two platforms cover the sample and
// non-sample placement categories.
var testNames = []string{"henri", "henri-subnuma"}

func testPlan() *faults.Plan {
	return &faults.Plan{
		Seed: 7,
		Events: []faults.Event{
			{At: 0.001, Kind: faults.LinkDegrade, Factor: 0.5, Duration: 0.01},
			{At: 0.002, Kind: faults.MsgDelay, Extra: 0.001, Probability: 0.5, Duration: 0.05},
		},
	}
}

// readArtifacts loads every pipeline artifact file of dir keyed by name.
func readArtifacts(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}

func TestPipelineKillResumeByteIdentical(t *testing.T) {
	// Uninterrupted baseline, no journal.
	baseline, err := Pipeline(Config{Seed: 1}, testNames)
	if err != nil {
		t.Fatal(err)
	}
	baseDir := filepath.Join(t.TempDir(), "base")
	if err := baseline.Write(baseDir); err != nil {
		t.Fatal(err)
	}

	// Kill the campaign after its 3rd journal record, then resume.
	jpath := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := checkpoint.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j.RecordHook = func(key string, total int) {
		if total == 3 {
			cancel()
		}
	}
	_, err = Pipeline(Config{Seed: 1, Context: ctx, Journal: j}, testNames)
	if !checkpoint.IsCanceled(err) {
		t.Fatalf("interrupted pipeline err = %v, want cancellation", err)
	}
	if j.Len() < 3 {
		t.Fatalf("journal has %d entries at interruption, want >= 3", j.Len())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// The journal on disk is valid and the resumed run completes.
	j2, err := checkpoint.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.RecoveredBytes() != 0 {
		t.Fatalf("clean interruption left %d bytes to recover", j2.RecoveredBytes())
	}
	if j2.LoadedEntries() < 3 {
		t.Fatalf("reopened journal has %d entries", j2.LoadedEntries())
	}
	resumed, err := Pipeline(Config{Seed: 1, Journal: j2}, testNames)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(baseline, resumed) {
		t.Fatal("resumed pipeline result differs from uninterrupted baseline")
	}
	resDir := filepath.Join(t.TempDir(), "resumed")
	if err := resumed.Write(resDir); err != nil {
		t.Fatal(err)
	}

	base, res := readArtifacts(t, baseDir), readArtifacts(t, resDir)
	if len(base) != len(res) || len(base) == 0 {
		t.Fatalf("artifact sets differ: %d vs %d files", len(base), len(res))
	}
	for name, want := range base {
		if !bytes.Equal(want, res[name]) {
			t.Errorf("artifact %s differs between baseline and resumed run", name)
		}
	}
}

func TestPipelineFullyJournaledNeedsNoMeasurement(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := checkpoint.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	first, err := Pipeline(Config{Seed: 1, Journal: j}, testNames)
	if err != nil {
		t.Fatal(err)
	}
	written := j.Len()
	// Second run over the same journal: every unit is a hit, so nothing
	// new is measured or recorded.
	j.RecordHook = func(key string, _ int) {
		t.Errorf("fully journaled replay recorded %q", key)
	}
	second, err := Pipeline(Config{Seed: 1, Journal: j}, testNames)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != written {
		t.Fatalf("replay wrote %d new journal entries", j.Len()-written)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("journaled replay differs from original run")
	}
}

func TestCrossCheckUnderFaultPlanJournaled(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := checkpoint.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	cfg := Config{Seed: 1, Journal: j, FaultPlan: testPlan()}
	first, err := CrossCheck(cfg, "henri")
	if err != nil {
		t.Fatal(err)
	}
	if first.PlanSeed != 7 || first.PlanEvents != 2 {
		t.Fatalf("plan metadata not recorded: %+v", first)
	}
	second, err := CrossCheck(cfg, "henri")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("journaled cross-check differs: %+v vs %+v", first, second)
	}
	// A different plan must not hit the journaled outcome.
	other := testPlan()
	other.Seed = 8
	if key, k2 := crossCheckKey(cfg, "henri"), crossCheckKey(Config{FaultPlan: other}, "henri"); key == k2 {
		t.Fatal("different plans share a journal key")
	}
	// Without a plan the key also differs.
	if key, k2 := crossCheckKey(cfg, "henri"), crossCheckKey(Config{}, "henri"); key == k2 {
		t.Fatal("plan and plan-free cross-checks share a journal key")
	}
}

func TestCrossCheckCancellationIsNotJournaled(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := checkpoint.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = CrossCheck(Config{Journal: j, Context: ctx}, "henri")
	if !checkpoint.IsCanceled(err) {
		t.Fatalf("err = %v, want cancellation", err)
	}
	if j.Len() != 0 {
		t.Fatal("canceled cross-check was journaled")
	}
}

func TestCurvesJournalResume(t *testing.T) {
	plat, err := topology.ByName("henri")
	if err != nil {
		t.Fatal(err)
	}
	placements := bench.AllPlacements(plat)
	jpath := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := checkpoint.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel after the first two curves are journaled.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j.RecordHook = func(_ string, total int) {
		if total == 2 {
			cancel()
		}
	}
	cfg := Config{Journal: j, Context: ctx}
	_, err = Curves(cfg, bench.Config{Platform: plat}, placements)
	if !checkpoint.IsCanceled(err) {
		t.Fatalf("err = %v, want cancellation", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := checkpoint.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	resumed, err := Curves(Config{Journal: j2}, bench.Config{Platform: plat}, placements)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Curves(Config{}, bench.Config{Platform: plat}, placements)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, resumed) {
		t.Fatal("resumed curves differ from a fresh run")
	}
}

func TestCurvesAcceptsRootPlacementType(t *testing.T) {
	plat, err := topology.ByName("henri")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Curves(Config{}, bench.Config{Platform: plat}, []memcontention.Placement{{Comp: 0, Comm: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Placement.Comm != 1 {
		t.Fatalf("unexpected curves: %+v", out)
	}
}

func TestProgress(t *testing.T) {
	if got := Progress(nil); got != "no journal" {
		t.Fatalf("Progress(nil) = %q", got)
	}
	jpath := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := checkpoint.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if got := Progress(j); got != "journal empty" {
		t.Fatalf("Progress(empty) = %q", got)
	}
	for _, key := range []string{"bench|a", "bench|b", "eval|a", "xcheck|a"} {
		if err := j.Record(key, 1); err != nil {
			t.Fatal(err)
		}
	}
	got := Progress(j)
	for _, want := range []string{"2 bench", "1 eval", "1 xcheck", "journaled"} {
		if !strings.Contains(got, want) {
			t.Fatalf("Progress() = %q, missing %q", got, want)
		}
	}
}

func TestTestbedNames(t *testing.T) {
	names := TestbedNames()
	if len(names) != len(topology.Testbed()) {
		t.Fatalf("%d names, want %d", len(names), len(topology.Testbed()))
	}
	if names[0] != "henri" {
		t.Fatalf("first platform = %q", names[0])
	}
}

// TestCrossCheckSpanStitchResume: profiled cross-check units on two
// platforms form one merged trace. Killing the campaign after the first
// unit and resuming with a fresh profiler must stitch the cached unit's
// span file and record the second live, producing a trace byte-identical
// to an uninterrupted run — including span ids, which the resumed
// profiler advances past the stitched slice.
func TestCrossCheckSpanStitchResume(t *testing.T) {
	dir := t.TempDir()
	units := []string{"henri", "dahu"}
	run := func(j *checkpoint.Journal, p *prof.Profiler, store *prof.SpanStore, n int) {
		t.Helper()
		for _, name := range units[:n] {
			if _, err := CrossCheck(Config{Journal: j, Profiler: p, SpanStore: store}, name); err != nil {
				t.Fatal(err)
			}
		}
	}
	encode := func(p *prof.Profiler) []byte {
		t.Helper()
		var buf bytes.Buffer
		if err := trace.WriteEventsJSONL(&buf, p.Events()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	// Uninterrupted reference recording.
	jRef, err := checkpoint.Open(filepath.Join(dir, "ref.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer jRef.Close()
	pRef := prof.New()
	run(jRef, pRef, prof.NewSpanStore(filepath.Join(dir, "ref.journal.spans")), 2)
	want := encode(pRef)
	if len(want) == 0 {
		t.Fatal("reference trace is empty")
	}

	// First attempt dies after one unit.
	jpath := filepath.Join(dir, "run.journal")
	store := prof.NewSpanStore(jpath + ".spans")
	j1, err := checkpoint.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	run(j1, prof.New(), store, 1)
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: unit 1 stitches from the span store, unit 2 runs live.
	j2, err := checkpoint.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	p2 := prof.New()
	run(j2, p2, store, 2)
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(p2), want) {
		t.Error("stitched trace differs from uninterrupted recording")
	}

	// A second resume hits both caches: everything stitched, nothing run,
	// still byte-identical (no double-recording).
	j3, err := checkpoint.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	p3 := prof.New()
	run(j3, p3, store, 2)
	if !bytes.Equal(encode(p3), want) {
		t.Error("fully cached replay differs from uninterrupted recording")
	}
}
