package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"memcontention/internal/atomicio"
	"memcontention/internal/checkpoint"
	"memcontention/internal/obs"
)

// This file is the campaign event journal: an append-only, CRC32-framed
// JSONL stream of fleet-level events (worker join/drain, lease claims,
// fences, orphan takeovers, shard completions, unit quarantines). Every
// writer — one memworker process, or the in-process sharded supervisor —
// appends to its own file under <campaign-dir>/events/, so no two
// processes ever interleave writes, and readers union all files into one
// deterministic timeline: events sort by (time, worker, sequence), which
// is a total order because sequence numbers are unique per writer.
//
// Events are observability, not coordination: the campaign's correctness
// never depends on them (leases and shard journals carry the real
// state), but an operator reconstructing "what happened to shard 3"
// after a night of churn depends on them completely. They use the same
// single-line CRC32 framing as checkpoint journals so a torn tail is
// detected and skipped rather than trusted.

// EventsDir is the subdirectory of a campaign directory holding the
// per-writer event journals.
const EventsDir = "events"

// eventsSuffix frames event journal file names: events/<writer>.jsonl.
const eventsSuffix = ".jsonl"

// EventType classifies one fleet event.
type EventType string

const (
	// EventWorkerJoin: a worker process entered the campaign.
	EventWorkerJoin EventType = "worker-join"
	// EventWorkerDrain: a worker observed the whole campaign complete
	// and exited cleanly.
	EventWorkerDrain EventType = "worker-drain"
	// EventWorkerStop: a worker exited cleanly without observing the
	// drain (cancellation, unit failure); Detail says why.
	EventWorkerStop EventType = "worker-stop"
	// EventLeaseClaim: a worker acquired a shard's lease (Epoch carries
	// the fencing epoch it claimed).
	EventLeaseClaim EventType = "lease-claim"
	// EventLeaseRenewFailure: a heartbeat renewal failed transiently.
	EventLeaseRenewFailure EventType = "lease-renew-failure"
	// EventLeaseFence: a worker discovered it was deposed — another
	// owner holds the shard at a higher epoch — and stopped.
	EventLeaseFence EventType = "lease-fence"
	// EventOrphanTakeover: a claim that replaced a stale or corrupt
	// lease left by a dead (or frozen) owner; Detail names the deposed
	// owner when it was decodable.
	EventOrphanTakeover EventType = "orphan-takeover"
	// EventShardComplete: the worker holding the shard journaled its
	// last pending unit.
	EventShardComplete EventType = "shard-complete"
	// EventUnitQuarantine: the in-process supervisor quarantined a
	// poison unit (Key carries the unit key, Detail the error).
	EventUnitQuarantine EventType = "unit-quarantine"
)

// WorkerScope is the Shard value of events that concern a whole worker
// rather than one shard (join, drain, stop).
const WorkerScope = -1

// Event is one entry of the campaign event journal.
type Event struct {
	// Seq is the writer-local sequence number (1-based): unique per
	// writer, which makes (Time, Worker, Seq) a total order across the
	// merged fleet timeline.
	Seq uint64 `json:"seq"`
	// TimeUnixNano is the event instant on the writer's injected clock
	// (wall clock in production, obs.SimClock in tests).
	TimeUnixNano int64 `json:"time_unix_nano"`
	// Type classifies the event.
	Type EventType `json:"type"`
	// Worker identifies the writer (the lease owner token for memworker
	// processes, a caller-chosen id for in-process runs).
	Worker string `json:"worker"`
	// Shard is the shard the event concerns, or WorkerScope (-1) for
	// worker-level events.
	Shard int `json:"shard"`
	// Epoch is the fencing epoch involved, when any (0 otherwise).
	Epoch uint64 `json:"epoch,omitempty"`
	// Key is the experiment-unit key involved, when any.
	Key string `json:"key,omitempty"`
	// Detail carries free-form context (deposed owner, error text).
	Detail string `json:"detail,omitempty"`
}

// validate bounds the fields a decoded (or about-to-be-encoded) event
// may carry; DecodeEvents treats a violation as corruption.
func (e Event) validate() error {
	switch {
	case e.Seq == 0:
		return fmt.Errorf("campaign: event seq 0 (sequences start at 1)")
	case e.Type == "":
		return fmt.Errorf("campaign: event with empty type")
	case e.Worker == "":
		return fmt.Errorf("campaign: event with empty worker")
	case e.Shard < WorkerScope:
		return fmt.Errorf("campaign: event shard %d out of range", e.Shard)
	}
	return nil
}

// EncodeEvent renders one event journal line in the shared CRC32
// framing.
func EncodeEvent(e Event) ([]byte, error) {
	if err := e.validate(); err != nil {
		return nil, err
	}
	rec, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("campaign: encode event: %w", err)
	}
	return checkpoint.FrameLine(rec), nil
}

// DecodeEvents parses an event journal image tolerantly: the valid
// prefix is decoded, and the first torn, corrupt or out-of-range line
// ends it — everything after is counted as dropped, mirroring
// checkpoint.Decode. It never panics on any input.
func DecodeEvents(data []byte) (events []Event, dropped int) {
	events, _, dropped = decodeEventsPrefix(data)
	return events, dropped
}

// decodeEventsPrefix is DecodeEvents plus the byte length of the valid
// prefix, which OpenEventLog truncates back to before appending.
func decodeEventsPrefix(data []byte) (events []Event, valid int64, dropped int) {
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn tail: an append crashed before the newline
		}
		rec, ok := checkpoint.UnframeLine(data[off : off+nl])
		if !ok {
			break
		}
		var e Event
		dec := json.NewDecoder(bytes.NewReader(rec))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&e); err != nil || dec.More() || e.validate() != nil {
			break
		}
		events = append(events, e)
		off += nl + 1
	}
	if rest := data[off:]; len(rest) > 0 {
		dropped = bytes.Count(rest, []byte{'\n'})
		if rest[len(rest)-1] != '\n' {
			dropped++
		}
	}
	return events, int64(off), dropped
}

// MergeEvents unions several decoded event streams into the fleet
// timeline, sorted by (time, worker, seq) — deterministic regardless of
// file enumeration order, and causal per writer because each writer's
// sequence numbers increase with its clock readings.
func MergeEvents(streams ...[]Event) []Event {
	var all []Event
	for _, s := range streams {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.TimeUnixNano != b.TimeUnixNano {
			return a.TimeUnixNano < b.TimeUnixNano
		}
		if a.Worker != b.Worker {
			return a.Worker < b.Worker
		}
		return a.Seq < b.Seq
	})
	return all
}

// ReadEvents loads and merges every event journal of a campaign
// directory into the deterministic fleet timeline. A campaign that never
// emitted events (no events/ directory) reads as an empty timeline.
func ReadEvents(dir string) ([]Event, error) {
	edir := filepath.Join(dir, EventsDir)
	entries, err := os.ReadDir(edir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: events %s: %w", edir, err)
	}
	var streams [][]Event
	for _, ent := range entries {
		if ent.IsDir() || filepath.Ext(ent.Name()) != eventsSuffix {
			continue
		}
		data, err := os.ReadFile(filepath.Join(edir, ent.Name()))
		if err != nil {
			return nil, fmt.Errorf("campaign: events %s: %w", ent.Name(), err)
		}
		events, _ := DecodeEvents(data)
		streams = append(streams, events)
	}
	return MergeEvents(streams...), nil
}

// EventLog is one writer's append-only event journal. All methods are
// safe for concurrent use and no-ops on a nil receiver, so emission can
// be wired unconditionally at zero cost when observability is off.
type EventLog struct {
	mu     sync.Mutex
	path   string
	worker string
	clock  obs.Clock
	// memlint:guard mu
	f *os.File
	// memlint:guard mu
	seq uint64
}

// OpenEventLog opens (or creates, durably) the event journal of one
// writer under dir/events/. The writer id doubles as the file stem and
// the Worker field of every emitted event; it must be non-empty and
// path-safe (no separators). A nil clock uses obs.WallClock. Appends
// resume after the existing valid prefix, with sequence numbers
// continuing past the highest already present.
func OpenEventLog(dir, worker string, clock obs.Clock) (*EventLog, error) {
	if worker == "" {
		return nil, fmt.Errorf("campaign: event log needs a worker id")
	}
	if worker != filepath.Base(worker) || worker == "." || worker == ".." {
		return nil, fmt.Errorf("campaign: event-log worker id %q is not path-safe", worker)
	}
	if clock == nil {
		clock = obs.WallClock
	}
	edir := filepath.Join(dir, EventsDir)
	if err := atomicio.MkdirAll(edir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: event log %s: %w", edir, err)
	}
	path := filepath.Join(edir, worker+eventsSuffix)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("campaign: event log %s: %w", path, err)
	}
	events, valid, _ := decodeEventsPrefix(data)
	var seq uint64
	for _, e := range events {
		if e.Seq > seq {
			seq = e.Seq
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: event log %s: %w", path, err)
	}
	// A torn or corrupt tail is truncated away exactly like a checkpoint
	// journal, so appends always extend a valid prefix.
	if int64(len(data)) > valid {
		terr := f.Truncate(valid)
		if terr == nil {
			terr = f.Sync()
		}
		if terr != nil {
			f.Close()
			return nil, fmt.Errorf("campaign: event log %s: %w", path, terr)
		}
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: event log %s: %w", path, err)
	}
	if err := atomicio.SyncDir(edir); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: event log %s: %w", path, err)
	}
	return &EventLog{path: path, f: f, worker: worker, clock: clock, seq: seq}, nil
}

// Worker reports the writer id ("" on nil).
func (l *EventLog) Worker() string {
	if l == nil {
		return ""
	}
	return l.worker
}

// Emit appends one event, stamped with the log's clock and the next
// sequence number, and fsyncs it. A nil log emits nothing.
func (l *EventLog) Emit(t EventType, shard int, epoch uint64, key, detail string) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("campaign: emit on closed event log %s", l.path)
	}
	line, err := EncodeEvent(Event{
		Seq:          l.seq + 1,
		TimeUnixNano: l.clock().UnixNano(),
		Type:         t,
		Worker:       l.worker,
		Shard:        shard,
		Epoch:        epoch,
		Key:          key,
		Detail:       detail,
	})
	if err != nil {
		return err
	}
	if _, err := l.f.Write(line); err != nil {
		return fmt.Errorf("campaign: event log %s: %w", l.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("campaign: event log %s: %w", l.path, err)
	}
	l.seq++
	return nil
}

// Close releases the event journal file; emitted events stay durable.
// Closing a nil log is a no-op.
func (l *EventLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	if err != nil {
		return fmt.Errorf("campaign: event log %s: %w", l.path, err)
	}
	return nil
}
