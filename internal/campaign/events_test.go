package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func TestEventEncodeDecodeRoundTrip(t *testing.T) {
	events := []Event{
		{Seq: 1, TimeUnixNano: 100, Type: EventWorkerJoin, Worker: "w1", Shard: WorkerScope},
		{Seq: 2, TimeUnixNano: 200, Type: EventLeaseClaim, Worker: "w1", Shard: 3, Epoch: 2},
		{Seq: 3, TimeUnixNano: 300, Type: EventUnitQuarantine, Worker: "w1", Shard: 0, Key: "unit/x", Detail: "boom"},
	}
	var buf bytes.Buffer
	for _, e := range events {
		line, err := EncodeEvent(e)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
	}
	got, dropped := DecodeEvents(buf.Bytes())
	if dropped != 0 {
		t.Fatalf("dropped %d lines from a clean journal", dropped)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, events)
	}
}

func TestEncodeEventRejectsInvalid(t *testing.T) {
	bad := []Event{
		{TimeUnixNano: 1, Type: EventWorkerJoin, Worker: "w", Shard: 0},          // seq 0
		{Seq: 1, TimeUnixNano: 1, Worker: "w", Shard: 0},                         // empty type
		{Seq: 1, TimeUnixNano: 1, Type: EventWorkerJoin, Shard: 0},               // empty worker
		{Seq: 1, TimeUnixNano: 1, Type: EventWorkerJoin, Worker: "w", Shard: -2}, // shard below WorkerScope
	}
	for i, e := range bad {
		if _, err := EncodeEvent(e); err == nil {
			t.Errorf("case %d: invalid event %+v encoded", i, e)
		}
	}
}

func TestDecodeEventsTornTailEndsPrefix(t *testing.T) {
	a, _ := EncodeEvent(Event{Seq: 1, TimeUnixNano: 1, Type: EventWorkerJoin, Worker: "w", Shard: WorkerScope})
	b, _ := EncodeEvent(Event{Seq: 2, TimeUnixNano: 2, Type: EventLeaseClaim, Worker: "w", Shard: 0, Epoch: 1})
	img := append(append([]byte{}, a...), b...)

	// A torn final line (no newline) is dropped, the prefix survives.
	torn := append(append([]byte{}, img...), []byte("deadbeef {torn")...)
	events, dropped := DecodeEvents(torn)
	if len(events) != 2 || dropped != 1 {
		t.Fatalf("torn tail: %d events, %d dropped, want 2 and 1", len(events), dropped)
	}

	// A corrupt middle line ends the valid prefix; everything after is
	// dropped even if well formed.
	corrupt := append(append([]byte{}, a...), []byte("00000000 {\"bad\":1}\n")...)
	corrupt = append(corrupt, b...)
	events, dropped = DecodeEvents(corrupt)
	if len(events) != 1 || dropped != 2 {
		t.Fatalf("corrupt middle: %d events, %d dropped, want 1 and 2", len(events), dropped)
	}
}

func TestMergeEventsTotalOrder(t *testing.T) {
	s1 := []Event{
		{Seq: 1, TimeUnixNano: 10, Type: EventWorkerJoin, Worker: "b", Shard: WorkerScope},
		{Seq: 2, TimeUnixNano: 30, Type: EventWorkerDrain, Worker: "b", Shard: WorkerScope},
	}
	s2 := []Event{
		{Seq: 1, TimeUnixNano: 10, Type: EventWorkerJoin, Worker: "a", Shard: WorkerScope},
		{Seq: 2, TimeUnixNano: 20, Type: EventLeaseClaim, Worker: "a", Shard: 0, Epoch: 1},
	}
	want := []Event{s2[0], s1[0], s2[1], s1[1]}
	if got := MergeEvents(s1, s2); !reflect.DeepEqual(got, want) {
		t.Fatalf("merge order:\ngot  %+v\nwant %+v", got, want)
	}
	// Determinism: stream order must not matter.
	if got := MergeEvents(s2, s1); !reflect.DeepEqual(got, want) {
		t.Fatalf("merge is sensitive to stream order")
	}
}

func TestEventLogEmitResumeAndTornTruncate(t *testing.T) {
	dir := t.TempDir()
	clk := newRemoteClock()
	log, err := OpenEventLog(dir, "w1", clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Emit(EventWorkerJoin, WorkerScope, 0, "", ""); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if err := log.Emit(EventLeaseClaim, 2, 1, "", ""); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, EventsDir, "w1.jsonl")

	// Simulate a crash mid-append: garbage without a trailing newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("0badc0de {\"to"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Reopen: tail truncated, sequence resumes past the valid prefix.
	log, err = OpenEventLog(dir, "w1", clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Emit(EventWorkerDrain, WorkerScope, 0, "", ""); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	events, dropped := DecodeEvents(data)
	if dropped != 0 {
		t.Fatalf("reopened journal still has %d undecodable lines", dropped)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3: %+v", len(events), events)
	}
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, i+1)
		}
	}
	if events[2].Type != EventWorkerDrain {
		t.Fatalf("resumed event type %s, want %s", events[2].Type, EventWorkerDrain)
	}
}

func TestEventLogRejectsUnsafeWorkerIDs(t *testing.T) {
	dir := t.TempDir()
	for _, id := range []string{"", ".", "..", "a/b"} {
		if _, err := OpenEventLog(dir, id, nil); err == nil {
			t.Errorf("worker id %q accepted", id)
		}
	}
}

// TestEventJournalByteDeterministic proves the beacon/event plane's
// determinism claim: two writers emitting the same events at the same
// clock readings produce byte-identical journals.
func TestEventJournalByteDeterministic(t *testing.T) {
	images := make([][]byte, 2)
	for i := range images {
		dir := t.TempDir()
		clk := newRemoteClock()
		log, err := OpenEventLog(dir, "w1", clk.Now)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 3; s++ {
			clk.Advance(250 * time.Millisecond)
			if err := log.Emit(EventLeaseClaim, s, uint64(s+1), "", ""); err != nil {
				t.Fatal(err)
			}
		}
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, EventsDir, "w1.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		images[i] = data
	}
	if !bytes.Equal(images[0], images[1]) {
		t.Fatalf("event journals differ across identical runs:\n%q\n%q", images[0], images[1])
	}
}

func TestReadEventsMissingDirIsEmpty(t *testing.T) {
	events, err := ReadEvents(t.TempDir())
	if err != nil || events != nil {
		t.Fatalf("missing events dir: %v events, err %v; want empty, nil", events, err)
	}
}

// FuzzDecodeEvents asserts the decoder never panics and that the valid
// prefix it reports always re-encodes losslessly.
func FuzzDecodeEvents(f *testing.F) {
	line, _ := EncodeEvent(Event{Seq: 1, TimeUnixNano: 42, Type: EventWorkerJoin, Worker: "w", Shard: WorkerScope})
	f.Add([]byte{})
	f.Add(line)
	f.Add(append(append([]byte{}, line...), []byte("00000000 garbage\n")...))
	f.Add([]byte("0badc0de {\"seq\":1}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		events, _ := DecodeEvents(data)
		for _, e := range events {
			if e.validate() != nil {
				t.Fatalf("decoder surfaced invalid event %+v", e)
			}
			if _, err := EncodeEvent(e); err != nil {
				t.Fatalf("decoded event does not re-encode: %v", err)
			}
		}
	})
}
