package campaign

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"memcontention/internal/checkpoint"
	"memcontention/internal/lease"
	"memcontention/internal/obs"
)

// This file is the fleet aggregator behind cmd/memtop: a strictly
// read-only view over one campaign directory that joins every
// observability surface the executors write — worker status beacons,
// the campaign event journal, the shard journals and the lease files —
// into one consistent report. It never creates, touches or locks
// anything, so an operator can point it at a live campaign without
// perturbing the workers it observes.

// FleetOptions parameterises one fleet collection.
type FleetOptions struct {
	// Dir is the campaign directory (required; its campaign.json is the
	// authority for the unit universe).
	Dir string
	// TTL and Grace judge lease staleness, exactly like the workers'
	// lease.Config (zero: the lease defaults, 15s TTL with TTL/2 grace;
	// negative Grace means none). Campaigns running with shortened
	// leases — the soak harness — must pass their own values or live
	// zombies misread as healthy.
	TTL   time.Duration
	Grace time.Duration
	// Stale bounds how old a "running" beacon may be before the worker
	// is presumed crashed (0: TTL+Grace, the same bound leases use).
	Stale time.Duration
	// Clock supplies "now" for every age computation (nil:
	// obs.WallClock).
	Clock obs.Clock
}

func (o FleetOptions) withDefaults() FleetOptions {
	lcfg := lease.Config{TTL: o.TTL, Grace: o.Grace}.WithDefaults()
	o.TTL = lcfg.TTL
	o.Grace = lcfg.Grace
	if o.Stale == 0 {
		o.Stale = o.TTL + o.Grace
	}
	if o.Clock == nil {
		o.Clock = obs.WallClock
	}
	return o
}

// FleetWorker is one worker's beacon joined with its liveness
// assessment.
type FleetWorker struct {
	WorkerStatus
	// AgeSeconds is collection time minus the beacon's last update.
	AgeSeconds float64 `json:"age_seconds"`
	// Stale marks a "running" beacon older than the staleness bound:
	// the worker crashed, hung or was SIGKILLed — it never wrote its
	// terminal beacon.
	Stale bool `json:"stale,omitempty"`
}

// FleetLease is one shard lease as seen at collection time.
type FleetLease struct {
	Shard int    `json:"shard"`
	State string `json:"state"` // live, stale or corrupt
	Owner string `json:"owner,omitempty"`
	Epoch uint64 `json:"epoch,omitempty"`
	// AgeSeconds is collection time minus the last heartbeat (0 for
	// corrupt leases).
	AgeSeconds float64 `json:"age_seconds"`
}

// EventCount is one event type's total in the campaign timeline.
type EventCount struct {
	Type  EventType `json:"type"`
	Count int       `json:"count"`
}

// FleetReport is the joined point-in-time view of a campaign fleet.
// Unit counts come from the shard journals (the ground truth the merge
// uses), never from beacons — a crashed worker's unreported units still
// count, and memtop's totals therefore always agree with what
// `memworker -merge` will produce.
type FleetReport struct {
	Dir               string          `json:"dir"`
	GeneratedUnixNano int64           `json:"generated_unix_nano"`
	Manifest          Manifest        `json:"manifest"`
	Units             int             `json:"units"`
	Done              int             `json:"done"`
	Pending           int             `json:"pending"`
	Quarantined       int             `json:"quarantined"`
	Shards            []ShardProgress `json:"shards"`
	Workers           []FleetWorker   `json:"workers,omitempty"`
	Leases            []FleetLease    `json:"leases,omitempty"`
	// UnitsPerSec sums the rolling throughput of the live running
	// workers; ETASeconds divides the pending count by it (0 when the
	// fleet is idle — no ETA is representable).
	UnitsPerSec float64      `json:"units_per_sec"`
	ETASeconds  float64      `json:"eta_seconds,omitempty"`
	Events      []EventCount `json:"events,omitempty"`
	// Timeline is the deterministic merged event journal, ordered by
	// (time, worker, seq).
	Timeline []Event `json:"timeline,omitempty"`
}

// CollectFleet builds the fleet report of the campaign in o.Dir. The
// campaign manifest must exist (a directory without one is not a
// campaign); every other surface degrades gracefully — no beacons, no
// events and no leases are all valid states of a finished or not yet
// started campaign.
func CollectFleet(o FleetOptions) (*FleetReport, error) {
	if o.Dir == "" {
		return nil, fmt.Errorf("campaign: fleet report needs a campaign directory")
	}
	o = o.withDefaults()
	man, err := LoadManifest(o.Dir)
	if err != nil {
		return nil, err
	}
	cfg := Config{Seed: man.Seed, Replications: man.Replications}.withDefaults()
	units, err := pipelineUnits(cfg, man.Platforms)
	if err != nil {
		return nil, err
	}
	done, err := journaledKeys(o.Dir)
	if err != nil {
		return nil, err
	}
	quar, err := ReadQuarantine(o.Dir)
	if err != nil {
		return nil, err
	}
	quarKeys := make(map[string]bool, len(quar))
	for _, q := range quar {
		quarKeys[q.Key] = true
	}

	now := o.Clock()
	rep := &FleetReport{
		Dir:               o.Dir,
		GeneratedUnixNano: now.UnixNano(),
		Manifest:          man,
		Units:             len(units),
		Shards:            make([]ShardProgress, man.Shards),
	}
	for i := range rep.Shards {
		rep.Shards[i].Shard = i
	}
	for _, u := range units {
		sp := &rep.Shards[homeShard(u.Key, man.Shards)]
		switch {
		case done[u.Key]:
			sp.Done++
			rep.Done++
		case quarKeys[u.Key]:
			sp.Quarantined++
			rep.Quarantined++
		default:
			sp.Pending++
			rep.Pending++
		}
	}

	beacons, err := ReadBeacons(o.Dir)
	if err != nil {
		return nil, err
	}
	for _, b := range beacons {
		age := now.Sub(time.Unix(0, b.UpdatedUnixNano))
		w := FleetWorker{
			WorkerStatus: b,
			AgeSeconds:   age.Seconds(),
			Stale:        b.State == WorkerRunning && age > o.Stale,
		}
		rep.Workers = append(rep.Workers, w)
		if b.State == WorkerRunning && !w.Stale {
			rep.UnitsPerSec += b.UnitsPerSec
		}
	}
	if rep.UnitsPerSec > 0 && rep.Pending > 0 {
		rep.ETASeconds = float64(rep.Pending) / rep.UnitsPerSec
	}

	infos, err := lease.Scan(filepath.Join(o.Dir, LeaseDir), o.TTL, o.Grace, o.Clock)
	if err != nil {
		return nil, err
	}
	for _, in := range infos {
		fl := FleetLease{Shard: in.Shard, State: string(in.State), AgeSeconds: in.Age.Seconds()}
		if in.State != lease.StateCorrupt {
			fl.Owner = in.Lease.Owner.String()
			fl.Epoch = in.Lease.Epoch
		} else {
			fl.AgeSeconds = 0
		}
		rep.Leases = append(rep.Leases, fl)
	}

	timeline, err := ReadEvents(o.Dir)
	if err != nil {
		return nil, err
	}
	rep.Timeline = timeline
	counts := make(map[EventType]int)
	for _, e := range timeline {
		counts[e.Type]++
	}
	for _, t := range eventTypeOrder {
		if counts[t] > 0 {
			rep.Events = append(rep.Events, EventCount{Type: t, Count: counts[t]})
		}
	}
	return rep, nil
}

// eventTypeOrder fixes the rendering order of event counts: lifecycle,
// lease machinery, completion — the order an operator reads a campaign's
// story in.
var eventTypeOrder = []EventType{
	EventWorkerJoin,
	EventWorkerDrain,
	EventWorkerStop,
	EventLeaseClaim,
	EventOrphanTakeover,
	EventLeaseRenewFailure,
	EventLeaseFence,
	EventShardComplete,
	EventUnitQuarantine,
}

// journaledKeys unions the unit keys of every shard journal file in dir
// (all epochs, dead ones included), read tolerantly and without
// creating anything — the monitor's replica of the pendingUnits scan.
func journaledKeys(dir string) (map[string]bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("campaign: fleet scan %s: %w", dir, err)
	}
	var paths []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if _, _, ok := checkpoint.ParseShardFile(e.Name()); ok {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	merged, err := checkpoint.MergeShardFiles(paths)
	if err != nil {
		return nil, err
	}
	keys := make(map[string]bool, len(merged))
	for _, e := range merged {
		keys[e.Key] = true
	}
	return keys, nil
}

// Publish refreshes the memcontention_fleet_* gauges from the report.
// The instrument set is fixed (every state label is always published,
// zero or not), so scrapes stay byte-deterministic across refreshes and
// absent states read as explicit zeros instead of gaps.
func (r *FleetReport) Publish(reg *obs.Registry) {
	if r == nil || reg == nil {
		return
	}
	workerStates := map[string]int{}
	stale := 0
	for _, w := range r.Workers {
		workerStates[w.State]++
		if w.Stale {
			stale++
		}
	}
	for _, state := range []string{WorkerRunning, WorkerDrained, WorkerStopped, WorkerFailed} {
		reg.Gauge("memcontention_fleet_workers",
			"Campaign workers by beacon state.", obs.L{"state": state}).Set(float64(workerStates[state]))
	}
	reg.Gauge("memcontention_fleet_workers_stale",
		"Workers whose running beacon is older than the staleness bound (presumed crashed).", nil).Set(float64(stale))

	leaseStates := map[string]int{}
	for _, l := range r.Leases {
		leaseStates[l.State]++
	}
	for _, state := range []string{string(lease.StateLive), string(lease.StateStale), string(lease.StateCorrupt)} {
		reg.Gauge("memcontention_fleet_leases",
			"Shard leases by liveness state.", obs.L{"state": state}).Set(float64(leaseStates[state]))
	}

	reg.Gauge("memcontention_fleet_units", "Experiment units in the campaign.", nil).Set(float64(r.Units))
	reg.Gauge("memcontention_fleet_units_done", "Units journaled somewhere in the shard set.", nil).Set(float64(r.Done))
	reg.Gauge("memcontention_fleet_units_pending", "Units not yet journaled or quarantined.", nil).Set(float64(r.Pending))
	reg.Gauge("memcontention_fleet_units_quarantined", "Units quarantined as poison.", nil).Set(float64(r.Quarantined))
	reg.Gauge("memcontention_fleet_units_per_sec", "Summed rolling throughput of the live workers.", nil).Set(r.UnitsPerSec)
	reg.Gauge("memcontention_fleet_eta_seconds", "Pending units over fleet throughput (0: no live throughput).", nil).Set(r.ETASeconds)

	for _, t := range eventTypeOrder {
		n := 0
		for _, ec := range r.Events {
			if ec.Type == t {
				n = ec.Count
			}
		}
		reg.Gauge("memcontention_fleet_events",
			"Campaign timeline events by type.", obs.L{"type": string(t)}).Set(float64(n))
	}
}

// WriteText renders the report as the memtop one-shot view. Everything
// derives from the report fields, so the bytes are deterministic given
// a deterministic report.
func (r *FleetReport) WriteText(w io.Writer) error {
	pct := 0.0
	if r.Units > 0 {
		pct = 100 * float64(r.Done) / float64(r.Units)
	}
	plats := strings.Join(r.Manifest.Platforms, ",")
	if _, err := fmt.Fprintf(w, "campaign: seed %d, platforms %s, %d shards\n",
		r.Manifest.Seed, plats, r.Manifest.Shards); err != nil {
		return err
	}
	fmt.Fprintf(w, "units: %d/%d done (%.1f%%), %d pending, %d quarantined\n",
		r.Done, r.Units, pct, r.Pending, r.Quarantined)
	switch {
	case r.ETASeconds > 0:
		fmt.Fprintf(w, "rate: %.2f units/s, ETA %.1fs\n", r.UnitsPerSec, r.ETASeconds)
	case r.Pending > 0:
		fmt.Fprintf(w, "rate: %.2f units/s, ETA unknown (no live throughput)\n", r.UnitsPerSec)
	default:
		fmt.Fprintf(w, "rate: %.2f units/s\n", r.UnitsPerSec)
	}
	fmt.Fprintf(w, "shards:\n")
	for _, s := range r.Shards {
		fmt.Fprintf(w, "  shard %d: %d done, %d pending, %d quarantined\n",
			s.Shard, s.Done, s.Pending, s.Quarantined)
	}
	fmt.Fprintf(w, "workers: %d\n", len(r.Workers))
	for _, wk := range r.Workers {
		state := wk.State
		if wk.Stale {
			state += " (stale)"
		}
		fmt.Fprintf(w, "  %s: %s, %d units, %.2f units/s, updated %.1fs ago",
			wk.Worker, state, wk.Units, wk.UnitsPerSec, wk.AgeSeconds)
		if len(wk.Leases) > 0 {
			parts := make([]string, len(wk.Leases))
			for i, h := range wk.Leases {
				parts[i] = fmt.Sprintf("%d@e%d", h.Shard, h.Epoch)
			}
			fmt.Fprintf(w, ", leases %s", strings.Join(parts, " "))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "leases: %d\n", len(r.Leases))
	for _, l := range r.Leases {
		if l.State == string(lease.StateCorrupt) {
			fmt.Fprintf(w, "  shard %d: corrupt\n", l.Shard)
			continue
		}
		fmt.Fprintf(w, "  shard %d: %s, epoch %d, owner %s, heartbeat %.1fs ago\n",
			l.Shard, l.State, l.Epoch, l.Owner, l.AgeSeconds)
	}
	total := 0
	for _, ec := range r.Events {
		total += ec.Count
	}
	fmt.Fprintf(w, "events: %d\n", total)
	for _, ec := range r.Events {
		fmt.Fprintf(w, "  %s: %d\n", ec.Type, ec.Count)
	}
	return nil
}

// WriteTimeline renders the merged event journal, one event per line in
// (time, worker, seq) order — the causal story of the campaign.
func (r *FleetReport) WriteTimeline(w io.Writer) error {
	for _, e := range r.Timeline {
		ts := time.Unix(0, e.TimeUnixNano).UTC().Format("15:04:05.000")
		line := fmt.Sprintf("%s %-12s %s", ts, e.Worker, e.Type)
		if e.Shard != WorkerScope {
			line += fmt.Sprintf(" shard=%d", e.Shard)
		}
		if e.Epoch != 0 {
			line += fmt.Sprintf(" epoch=%d", e.Epoch)
		}
		if e.Key != "" {
			line += fmt.Sprintf(" key=%s", e.Key)
		}
		if e.Detail != "" {
			line += fmt.Sprintf(" (%s)", e.Detail)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
