package campaign

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"memcontention/internal/obs"
)

// drainedFleetDir runs one remote worker to completion in a fresh
// campaign directory and returns the directory plus the worker's report
// and the shared clock, so fleet tests collect over a real campaign's
// artifacts rather than hand-built fixtures.
func drainedFleetDir(t *testing.T) (string, *RemoteReport, *remoteClock) {
	t.Helper()
	clk := newRemoteClock()
	dir := filepath.Join(t.TempDir(), "campaign")
	opts := RemoteOptions{Dir: dir, Shards: 4, Lease: remoteLease(clk), Sleep: tinySleep}
	rep, err := RemoteWorker(Config{Seed: 1}, opts, testNames)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drained {
		t.Fatalf("worker did not drain: %+v", rep)
	}
	if rep.ObsErrors != 0 {
		t.Fatalf("worker reported %d observability errors", rep.ObsErrors)
	}
	return dir, rep, clk
}

func TestCollectFleetDrainedCampaign(t *testing.T) {
	dir, wrep, clk := drainedFleetDir(t)
	rep, err := CollectFleet(FleetOptions{Dir: dir, TTL: time.Second, Grace: -1, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Units == 0 || rep.Done != rep.Units || rep.Pending != 0 || rep.Quarantined != 0 {
		t.Fatalf("drained campaign counts: %+v", rep)
	}
	if rep.Done != wrep.Units {
		t.Fatalf("fleet sees %d done, worker reported %d", rep.Done, wrep.Units)
	}
	var shardSum int
	for _, s := range rep.Shards {
		shardSum += s.Done
		if s.Pending != 0 || s.Quarantined != 0 {
			t.Fatalf("drained shard has residue: %+v", s)
		}
	}
	if shardSum != rep.Done {
		t.Fatalf("shard views sum to %d, report says %d", shardSum, rep.Done)
	}

	if len(rep.Workers) != 1 {
		t.Fatalf("workers: %+v, want exactly one", rep.Workers)
	}
	w := rep.Workers[0]
	if w.State != WorkerDrained || w.Stale {
		t.Fatalf("drained worker beacon: %+v", w)
	}
	if w.Worker != wrep.Owner.Token {
		t.Fatalf("beacon identity %q, worker token %q", w.Worker, wrep.Owner.Token)
	}
	if w.Units != wrep.Units || w.Fenced != 0 || len(w.Leases) != 0 {
		t.Fatalf("terminal beacon content: %+v", w)
	}

	if len(rep.Leases) != 0 {
		t.Fatalf("drained campaign still shows leases: %+v", rep.Leases)
	}

	// The event timeline tells the whole story exactly once: one join,
	// one drain, one claim per acquired lease, one completion per shard
	// that had units.
	counts := map[EventType]int{}
	for _, ec := range rep.Events {
		counts[ec.Type] = ec.Count
	}
	shardsWithUnits := 0
	for _, s := range rep.Shards {
		if s.Done > 0 {
			shardsWithUnits++
		}
	}
	if counts[EventWorkerJoin] != 1 || counts[EventWorkerDrain] != 1 {
		t.Fatalf("lifecycle events: %+v", rep.Events)
	}
	if counts[EventLeaseClaim] != len(wrep.Claimed) {
		t.Fatalf("%d claim events for %d claims", counts[EventLeaseClaim], len(wrep.Claimed))
	}
	if counts[EventShardComplete] != shardsWithUnits {
		t.Fatalf("%d shard-complete events, %d shards had units", counts[EventShardComplete], shardsWithUnits)
	}
	if counts[EventLeaseFence] != 0 || counts[EventOrphanTakeover] != 0 {
		t.Fatalf("solo drain shows contention events: %+v", rep.Events)
	}
	if len(rep.Timeline) == 0 || rep.Timeline[0].Type != EventWorkerJoin {
		t.Fatalf("timeline does not open with the join: %+v", rep.Timeline[:1])
	}
}

func TestCollectFleetEmptyAndMissingCampaign(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "campaign")
	if _, err := CollectFleet(FleetOptions{Dir: dir}); err == nil {
		t.Fatal("collected a fleet report from a directory with no manifest")
	}
	if _, err := CollectFleet(FleetOptions{}); err == nil {
		t.Fatal("collected a fleet report with no directory")
	}

	// A manifest alone is a valid (not yet started) campaign: everything
	// is pending, nothing else exists.
	man := Manifest{Seed: 1, Platforms: testNames, Shards: 4}
	if _, err := EnsureManifest(dir, man); err != nil {
		t.Fatal(err)
	}
	rep, err := CollectFleet(FleetOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Units == 0 || rep.Pending != rep.Units || rep.Done != 0 {
		t.Fatalf("fresh campaign counts: %+v", rep)
	}
	if len(rep.Workers) != 0 || len(rep.Leases) != 0 || len(rep.Timeline) != 0 {
		t.Fatalf("fresh campaign shows fleet residue: %+v", rep)
	}
}

func TestCollectFleetStaleWorkerAndQuarantine(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "campaign")
	man := Manifest{Seed: 1, Platforms: testNames, Shards: 4}
	if _, err := EnsureManifest(dir, man); err != nil {
		t.Fatal(err)
	}
	units, err := pipelineUnits(Config{Seed: 1}, testNames)
	if err != nil {
		t.Fatal(err)
	}
	poison := units[0].Key

	clk := newRemoteClock()
	start := clk.Now()
	// A SIGKILLed worker leaves a running beacon that ages without
	// updates; past the staleness bound the fleet flags it and stops
	// trusting its throughput.
	if err := WriteBeacon(dir, WorkerStatus{
		Worker:          "deadbeef",
		State:           WorkerRunning,
		StartedUnixNano: start.UnixNano(),
		UpdatedUnixNano: start.UnixNano(),
		UnitsPerSec:     4,
	}); err != nil {
		t.Fatal(err)
	}
	if err := WriteBeacon(dir, WorkerStatus{
		Worker:          "livebeef",
		State:           WorkerRunning,
		StartedUnixNano: start.UnixNano(),
		UpdatedUnixNano: start.Add(5 * time.Second).UnixNano(),
		UnitsPerSec:     2,
	}); err != nil {
		t.Fatal(err)
	}
	if err := writeQuarantine(filepath.Join(dir, QuarantineFile), []QuarantineRecord{
		{Key: poison, Shard: homeShard(poison, man.Shards), Attempts: 2, Error: "boom"},
	}); err != nil {
		t.Fatal(err)
	}

	clk.Advance(5 * time.Second)
	rep, err := CollectFleet(FleetOptions{Dir: dir, TTL: time.Second, Grace: -1, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined != 1 || rep.Pending != rep.Units-1 {
		t.Fatalf("quarantine counts: %+v", rep)
	}
	if sp := rep.Shards[homeShard(poison, man.Shards)]; sp.Quarantined != 1 {
		t.Fatalf("poison unit's home shard view: %+v", sp)
	}
	byName := map[string]FleetWorker{}
	for _, w := range rep.Workers {
		byName[w.Worker] = w
	}
	if !byName["deadbeef"].Stale {
		t.Fatalf("5s-old running beacon not stale: %+v", byName["deadbeef"])
	}
	if byName["livebeef"].Stale {
		t.Fatalf("fresh running beacon marked stale: %+v", byName["livebeef"])
	}
	// Only the live worker's throughput counts toward the ETA.
	if rep.UnitsPerSec != 2 {
		t.Fatalf("fleet throughput %v, want the live worker's 2", rep.UnitsPerSec)
	}
	if want := float64(rep.Pending) / 2; rep.ETASeconds != want {
		t.Fatalf("ETA %v, want %v", rep.ETASeconds, want)
	}
}

func TestCollectFleetDeterministicAtFrozenClock(t *testing.T) {
	dir, _, clk := drainedFleetDir(t)
	opts := FleetOptions{Dir: dir, TTL: time.Second, Grace: -1, Clock: clk.Now}
	images := make([][]byte, 2)
	for i := range images {
		rep, err := CollectFleet(opts)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		images[i] = data
	}
	if !bytes.Equal(images[0], images[1]) {
		t.Fatalf("fleet reports differ at a frozen clock:\n%s\n%s", images[0], images[1])
	}
}

func TestFleetReportPublishAndRender(t *testing.T) {
	dir, _, clk := drainedFleetDir(t)
	rep, err := CollectFleet(FleetOptions{Dir: dir, TTL: time.Second, Grace: -1, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	rep.Publish(reg)
	gauge := func(name string, labels obs.L) float64 {
		return reg.Gauge(name, "", labels).Value()
	}
	if got := gauge("memcontention_fleet_units_done", nil); got != float64(rep.Done) {
		t.Fatalf("units_done gauge %v, want %d", got, rep.Done)
	}
	if got := gauge("memcontention_fleet_units_pending", nil); got != 0 {
		t.Fatalf("units_pending gauge %v, want 0", got)
	}
	if got := gauge("memcontention_fleet_workers", obs.L{"state": WorkerDrained}); got != 1 {
		t.Fatalf("drained workers gauge %v, want 1", got)
	}
	// Absent states publish explicit zeros, not gaps.
	if got := gauge("memcontention_fleet_workers", obs.L{"state": WorkerFailed}); got != 0 {
		t.Fatalf("failed workers gauge %v, want explicit 0", got)
	}
	if got := gauge("memcontention_fleet_events", obs.L{"type": string(EventWorkerDrain)}); got != 1 {
		t.Fatalf("drain event gauge %v, want 1", got)
	}

	// Republishing after a fresh collection must not grow the registry:
	// the instrument set is fixed, so exporter output stays comparable
	// scrape to scrape.
	var a bytes.Buffer
	if err := reg.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	rep2, err := CollectFleet(FleetOptions{Dir: dir, TTL: time.Second, Grace: -1, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	rep2.Publish(reg)
	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("republish changed the exporter bytes:\n%s\n%s", a.String(), b.String())
	}

	// Both renderers walk the whole report without error and mention the
	// load-bearing facts.
	var text bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"campaign:", "units:", "workers: 1", "events:", "drained"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text report missing %q:\n%s", want, text.String())
		}
	}
	var tl bytes.Buffer
	if err := rep.WriteTimeline(&tl); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(tl.String(), "\n"), "\n")
	if len(lines) != len(rep.Timeline) {
		t.Fatalf("timeline rendered %d lines for %d events", len(lines), len(rep.Timeline))
	}
	if !strings.Contains(lines[0], string(EventWorkerJoin)) {
		t.Fatalf("timeline first line %q lacks the join", lines[0])
	}
}

// TestCollectFleetNilSafety pins the degenerate inputs: nil report
// publish and a Publish onto a nil registry are no-ops.
func TestCollectFleetNilSafety(t *testing.T) {
	var rep *FleetReport
	rep.Publish(obs.NewRegistry())
	(&FleetReport{}).Publish(nil)
}

// TestCollectFleetRejectsCorruptQuarantine confirms collection surfaces
// (rather than swallows) a malformed quarantine report.
func TestCollectFleetRejectsCorruptQuarantine(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "campaign")
	if _, err := EnsureManifest(dir, Manifest{Seed: 1, Platforms: testNames, Shards: 2}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, QuarantineFile), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := CollectFleet(FleetOptions{Dir: dir}); err == nil {
		t.Fatal("corrupt quarantine report collected cleanly")
	} else if errors.Is(err, os.ErrNotExist) {
		t.Fatalf("wrong error class: %v", err)
	}
}
