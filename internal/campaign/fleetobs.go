package campaign

import (
	"sort"
	"sync"
	"time"

	"memcontention/internal/lease"
	"memcontention/internal/obs"
)

// fleetObs bundles one executor's fleet-observability plane: its event
// journal (events/<worker>.jsonl), its status beacon
// (beacons/<worker>.json) and a rolling throughput window. Remote
// workers and the in-process supervisor both speak through it, so
// memtop sees one vocabulary regardless of how the campaign runs.
//
// Observability must never kill a campaign: every emission failure is
// swallowed into an error counter (surfaced as RemoteReport.ObsErrors)
// instead of propagating. All methods are nil-receiver-safe, so
// executors without a campaign directory simply pass nil.
type fleetObs struct {
	clock obs.Clock
	reg   *obs.Registry
	log   *EventLog
	rate  *obs.Rolling
	dir   string

	mu sync.Mutex
	// memlint:guard mu
	status WorkerStatus
	// memlint:guard mu
	holdings map[int]uint64 // shard -> fencing epoch of held leases
	// memlint:guard mu
	shards map[int]*ShardProgress
	// memlint:guard mu
	errs int
}

// fleetRateWindow sizes the units/s rolling window: long enough that a
// multi-second unit still registers, short enough that a stalled worker
// reads 0 within a minute.
const (
	fleetRateWindow = 30 * time.Second
	fleetRateSlices = 30
)

// newFleetObs opens the event journal and seeds the running beacon for
// one worker of the campaign in dir. The worker id must be path-safe
// (lease owner tokens are hex); a nil clock uses obs.WallClock.
func newFleetObs(dir, worker, host string, pid int, clock obs.Clock, reg *obs.Registry) (*fleetObs, error) {
	if clock == nil {
		clock = obs.WallClock
	}
	log, err := OpenEventLog(dir, worker, clock)
	if err != nil {
		return nil, err
	}
	now := clock().UnixNano()
	return &fleetObs{
		clock: clock,
		reg:   reg,
		log:   log,
		rate:  obs.NewRolling([]float64{1}, fleetRateWindow, fleetRateSlices, clock),
		dir:   dir,
		status: WorkerStatus{
			Worker:          worker,
			Host:            host,
			PID:             pid,
			State:           WorkerRunning,
			StartedUnixNano: now,
			UpdatedUnixNano: now,
		},
		holdings: make(map[int]uint64),
		shards:   make(map[int]*ShardProgress),
	}, nil
}

// emit appends one fleet event, counting (never propagating) failures.
func (fo *fleetObs) emit(t EventType, shard int, epoch uint64, key, detail string) {
	if fo == nil {
		return
	}
	if err := fo.log.Emit(t, shard, epoch, key, detail); err != nil {
		fo.mu.Lock()
		fo.errs++
		fo.mu.Unlock()
	}
}

// beacon rewrites the worker's status beacon from the current state.
// The write happens under the mutex so an older snapshot can never
// overwrite a newer one.
func (fo *fleetObs) beacon() {
	if fo == nil {
		return
	}
	fo.mu.Lock()
	defer fo.mu.Unlock()
	fo.beaconLocked()
}

func (fo *fleetObs) beaconLocked() {
	s := fo.status
	s.UpdatedUnixNano = fo.clock().UnixNano()
	s.UnitsPerSec = fo.rate.Rate()
	s.Leases = nil
	for shard, epoch := range fo.holdings {
		s.Leases = append(s.Leases, LeaseHolding{Shard: shard, Epoch: epoch})
	}
	sort.Slice(s.Leases, func(i, j int) bool { return s.Leases[i].Shard < s.Leases[j].Shard })
	s.Shards = nil
	for _, sp := range fo.shards {
		s.Shards = append(s.Shards, *sp)
	}
	sort.Slice(s.Shards, func(i, j int) bool { return s.Shards[i].Shard < s.Shards[j].Shard })
	s.Registry = RegistrySnapshot(fo.reg)
	if err := WriteBeacon(fo.dir, s); err != nil {
		fo.errs++
	}
}

// join announces the worker to the fleet: a worker-join event and the
// first running beacon.
func (fo *fleetObs) join() {
	fo.emit(EventWorkerJoin, WorkerScope, 0, "", "")
	fo.beacon()
}

// claimed records an acquired lease: a lease-claim event (or
// orphan-takeover, naming the deposed owner when decodable) and a
// beacon listing the new holding.
func (fo *fleetObs) claimed(h *lease.Held) {
	if fo == nil {
		return
	}
	fo.mu.Lock()
	fo.holdings[h.Shard()] = h.Epoch()
	fo.mu.Unlock()
	t, detail := EventLeaseClaim, ""
	if h.TookOver() {
		t = EventOrphanTakeover
		if dep := h.Deposed(); dep.Token != "" {
			detail = dep.String()
		}
	}
	fo.emit(t, h.Shard(), h.Epoch(), "", detail)
	fo.beacon()
}

// shardView records the worker's view of one shard at claim time: how
// much was already journaled and how much it is about to run.
func (fo *fleetObs) shardView(shard, done, pending int) {
	if fo == nil {
		return
	}
	fo.mu.Lock()
	fo.shards[shard] = &ShardProgress{Shard: shard, Done: done, Pending: pending}
	fo.mu.Unlock()
}

// unitDone advances the worker's counters (and its shard view) by one
// journaled unit and refreshes the beacon.
func (fo *fleetObs) unitDone(shard int) {
	if fo == nil {
		return
	}
	fo.rate.Observe(1)
	fo.mu.Lock()
	fo.status.Units++
	if sp := fo.shards[shard]; sp != nil {
		sp.Done++
		if sp.Pending > 0 {
			sp.Pending--
		}
	}
	fo.beaconLocked()
	fo.mu.Unlock()
}

// renewFailure records one transient heartbeat-renewal failure.
func (fo *fleetObs) renewFailure(shard int, epoch uint64, err error) {
	if fo == nil {
		return
	}
	fo.mu.Lock()
	fo.status.RenewErrors++
	fo.mu.Unlock()
	fo.emit(EventLeaseRenewFailure, shard, epoch, "", err.Error())
}

// tick refreshes the beacon from the heartbeat loop: proof of life even
// while a long unit runs.
func (fo *fleetObs) tick() {
	fo.beacon()
}

// fenced records a lost lease: the holding disappears, the fence
// counter advances, and the fence lands in the event journal exactly
// once per lost lease.
func (fo *fleetObs) fenced(h *lease.Held) {
	if fo == nil {
		return
	}
	fo.mu.Lock()
	fo.status.Fenced++
	delete(fo.holdings, h.Shard())
	fo.mu.Unlock()
	fo.emit(EventLeaseFence, h.Shard(), h.Epoch(), "", "")
	fo.beacon()
}

// leaseDropped clears a released holding from the beacon.
func (fo *fleetObs) leaseDropped(shard int) {
	if fo == nil {
		return
	}
	fo.mu.Lock()
	delete(fo.holdings, shard)
	fo.mu.Unlock()
	fo.beacon()
}

// shardComplete records that the worker journaled the shard's last
// pending unit.
func (fo *fleetObs) shardComplete(h *lease.Held) {
	if fo == nil {
		return
	}
	fo.emit(EventShardComplete, h.Shard(), h.Epoch(), "", "")
}

// quarantined records a poison unit the in-process supervisor gave up
// on: the shard view moves it from pending to quarantined and the event
// carries the unit key and the final error.
func (fo *fleetObs) quarantined(shard int, key, detail string) {
	if fo == nil {
		return
	}
	fo.mu.Lock()
	if sp := fo.shards[shard]; sp != nil {
		sp.Quarantined++
		if sp.Pending > 0 {
			sp.Pending--
		}
	}
	fo.mu.Unlock()
	fo.emit(EventUnitQuarantine, shard, 0, key, detail)
	fo.beacon()
}

// finish writes the worker's last beacon in its terminal state, emits
// the matching lifecycle event and closes the event journal. This is
// what lets memtop tell a clean exit from a corpse: a crash leaves the
// beacon saying "running" with a heartbeat-old timestamp.
func (fo *fleetObs) finish(state string, t EventType, detail string) {
	if fo == nil {
		return
	}
	fo.mu.Lock()
	fo.status.State = state
	fo.beaconLocked()
	fo.mu.Unlock()
	fo.emit(t, WorkerScope, 0, "", detail)
	if err := fo.log.Close(); err != nil {
		fo.mu.Lock()
		fo.errs++
		fo.mu.Unlock()
	}
}

// errors reports how many beacon/event emissions failed (0 on nil).
func (fo *fleetObs) errors() int {
	if fo == nil {
		return 0
	}
	fo.mu.Lock()
	defer fo.mu.Unlock()
	return fo.errs
}
