package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"

	"memcontention/internal/atomicio"
	"memcontention/internal/eval"
	"memcontention/internal/netbench"
)

// Artifacts is the final output of a full pipeline run: everything needed
// to regenerate the paper's Table II plus the network sweep and the DES
// cross-check outcome. All content is deterministic in (seed, config), so
// two runs of the same pipeline — interrupted and resumed any number of
// times — produce byte-identical files from Write.
type Artifacts struct {
	Seed       uint64                 `json:"seed"`
	Platforms  []*eval.PlatformResult `json:"platforms"`
	Netbench   []netbench.Point       `json:"netbench"`
	CrossCheck *CrossCheckResult      `json:"cross_check"`
	// Replications is the Monte-Carlo replication sweep summary, present
	// only when the campaign ran with Config.Replications > 1.
	Replications *ReplicationSummary `json:"replications,omitempty"`
}

// Pipeline runs the full Table II campaign: evaluate the named platforms
// (nil: the whole Table I testbed), sweep the network on the first one,
// and run the DES cross-check (under cfg.FaultPlan when set). Every
// completed unit is journaled via cfg.Journal, so an interrupted pipeline
// resumes where it died; see the package comment for the guarantees.
func Pipeline(cfg Config, names []string) (*Artifacts, error) {
	cfg = cfg.withDefaults()
	if len(names) == 0 {
		names = TestbedNames()
	}
	results, err := EvaluatePlatforms(cfg, names)
	if err != nil {
		return nil, err
	}
	points, err := Netbench(cfg, names[0])
	if err != nil {
		return nil, err
	}
	xc, err := CrossCheck(cfg, names[0])
	if err != nil {
		return nil, err
	}
	art := &Artifacts{Seed: cfg.Seed, Platforms: results, Netbench: points, CrossCheck: xc}
	if cfg.Replications > 1 {
		rep, err := Replicate(cfg, names, results)
		if err != nil {
			return nil, err
		}
		art.Replications = rep
	}
	return art, nil
}

// Write stores the artifacts in dir: table2.json / table2.txt (the model
// errors in machine and paper form), netbench.json, crosscheck.json and
// — for replicated campaigns — replications.json / replications.txt.
// Every file is written atomically and durably (temp + fsync + rename),
// so a crash during Write never leaves a torn artifact.
func (a *Artifacts) Write(dir string) error {
	// The directory itself is made durable (each created level fsynced):
	// artifacts that survive a crash only inside a directory entry the
	// filesystem may drop are not durable at all.
	if err := atomicio.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var table bytes.Buffer
	if err := eval.Table2(a.Platforms).WriteText(&table); err != nil {
		return err
	}
	type artifactFile struct {
		name string
		data func() ([]byte, error)
	}
	files := []artifactFile{
		{"table2.txt", func() ([]byte, error) { return table.Bytes(), nil }},
		{"table2.json", func() ([]byte, error) { return marshal(a.Platforms) }},
		{"netbench.json", func() ([]byte, error) { return marshal(a.Netbench) }},
		{"crosscheck.json", func() ([]byte, error) { return marshal(a.CrossCheck) }},
	}
	if a.Replications != nil {
		var reptxt bytes.Buffer
		if err := a.Replications.Table().WriteText(&reptxt); err != nil {
			return err
		}
		files = append(files,
			artifactFile{"replications.txt", func() ([]byte, error) { return reptxt.Bytes(), nil }},
			artifactFile{"replications.json", func() ([]byte, error) { return marshal(a.Replications) }},
		)
	}
	for _, f := range files {
		data, err := f.data()
		if err != nil {
			return fmt.Errorf("campaign: encode %s: %w", f.name, err)
		}
		if err := atomicio.WriteFile(filepath.Join(dir, f.name), data, 0o644); err != nil {
			return fmt.Errorf("campaign: write %s: %w", f.name, err)
		}
	}
	return nil
}

func marshal(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
