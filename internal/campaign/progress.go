package campaign

import (
	"fmt"
	"strings"
)

// ShardProgress is one home shard's completion state in a sharded
// campaign.
type ShardProgress struct {
	Shard       int `json:"shard"`
	Done        int `json:"done"`
	Pending     int `json:"pending"`
	Quarantined int `json:"quarantined"`
}

// ProgressReport is a point-in-time snapshot of a sharded campaign: the
// overall completion plus the per-shard split and the supervision
// counters. The same numbers feed the memcontention_campaign_* gauges,
// so a scrape and a report never disagree.
type ProgressReport struct {
	Units       int             `json:"units"`
	Done        int             `json:"done"`
	Quarantined int             `json:"quarantined"`
	Restarts    int             `json:"restarts"`
	Stolen      int             `json:"stolen"`
	Shards      []ShardProgress `json:"shards"`
}

// String renders the report for logs: the overall line, then one line
// per shard in shard order.
func (p ProgressReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign: %d/%d units done, %d quarantined, %d restarts, %d stolen\n",
		p.Done, p.Units, p.Quarantined, p.Restarts, p.Stolen)
	for _, s := range p.Shards {
		fmt.Fprintf(&b, "  shard %d: %d done, %d pending, %d quarantined\n",
			s.Shard, s.Done, s.Pending, s.Quarantined)
	}
	return b.String()
}
