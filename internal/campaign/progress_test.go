package campaign

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestProgressReportJSONRoundTrip(t *testing.T) {
	p := ProgressReport{
		Units: 9, Done: 5, Quarantined: 1, Restarts: 2, Stolen: 3,
		Shards: []ShardProgress{
			{Shard: 0, Done: 3, Pending: 1},
			{Shard: 1, Done: 2, Pending: 2, Quarantined: 1},
		},
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var got ProgressReport
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, p)
	}
	// The field names are a wire contract (beacons embed ShardProgress,
	// memtop's JSON report embeds both): pin them.
	for _, key := range []string{`"units"`, `"done"`, `"quarantined"`, `"restarts"`, `"stolen"`, `"shards"`, `"shard"`, `"pending"`} {
		if !strings.Contains(string(data), key) {
			t.Fatalf("encoded report %s lacks %s", data, key)
		}
	}
}

// TestProgressReportStringGolden pins the exact rendering — the same
// lines operators grep in logs and the soak harness matches on.
func TestProgressReportStringGolden(t *testing.T) {
	p := ProgressReport{
		Units: 4, Done: 2, Quarantined: 1, Restarts: 1, Stolen: 0,
		Shards: []ShardProgress{
			{Shard: 0, Done: 2, Pending: 0, Quarantined: 0},
			{Shard: 1, Done: 0, Pending: 1, Quarantined: 1},
		},
	}
	want := "campaign: 2/4 units done, 1 quarantined, 1 restarts, 0 stolen\n" +
		"  shard 0: 2 done, 0 pending, 0 quarantined\n" +
		"  shard 1: 0 done, 1 pending, 1 quarantined\n"
	if got := p.String(); got != want {
		t.Fatalf("String():\n%q\nwant:\n%q", got, want)
	}
}

// TestProgressReportEmptyCampaign pins the zero-value rendering: a
// campaign with no units (or a report read before any work) must render
// a sane overall line and no shard lines, and survive the JSON round
// trip with Shards nil.
func TestProgressReportEmptyCampaign(t *testing.T) {
	var p ProgressReport
	want := "campaign: 0/0 units done, 0 quarantined, 0 restarts, 0 stolen\n"
	if got := p.String(); got != want {
		t.Fatalf("zero String():\n%q\nwant:\n%q", got, want)
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var got ProgressReport
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("zero round trip: %+v", got)
	}
}

// TestProgressReportAllQuarantined covers the pathological fleet state
// where every unit is poison: done stays zero, the shard views carry the
// whole campaign as quarantined, and the rendering says so plainly.
func TestProgressReportAllQuarantined(t *testing.T) {
	p := ProgressReport{
		Units: 3, Quarantined: 3, Restarts: 6,
		Shards: []ShardProgress{
			{Shard: 0, Quarantined: 2},
			{Shard: 1, Quarantined: 1},
		},
	}
	want := "campaign: 0/3 units done, 3 quarantined, 6 restarts, 0 stolen\n" +
		"  shard 0: 0 done, 0 pending, 2 quarantined\n" +
		"  shard 1: 0 done, 0 pending, 1 quarantined\n"
	if got := p.String(); got != want {
		t.Fatalf("String():\n%q\nwant:\n%q", got, want)
	}
	total := 0
	for _, s := range p.Shards {
		total += s.Quarantined
	}
	if total != p.Quarantined {
		t.Fatalf("shard quarantine sum %d != overall %d", total, p.Quarantined)
	}
}
