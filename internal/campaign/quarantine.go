package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"memcontention/internal/atomicio"
)

// QuarantineFile is the report file a sharded campaign writes into its
// shard directory when units exhaust their retry budget.
const QuarantineFile = "quarantine.jsonl"

// UnitError is the structured failure of one experiment unit, following
// the internal/faults convention (typed, field-addressable, unwrappable):
// which unit, its home shard, how many attempts were burned, and the
// underlying cause of the last attempt.
type UnitError struct {
	// Key is the unit's journal key.
	Key string
	// Shard is the unit's home shard (its hash assignment, not where a
	// stolen attempt happened to run — the home shard is deterministic).
	Shard int
	// Attempts is the number of failed attempts, retries included.
	Attempts int
	// Err is the cause of the final attempt.
	Err error
}

func (e *UnitError) Error() string {
	return fmt.Sprintf("campaign: unit %s (shard %d) failed after %d attempts: %v", e.Key, e.Shard, e.Attempts, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *UnitError) Unwrap() error { return e.Err }

// QuarantineRecord is one quarantined unit as persisted in
// quarantine.jsonl: everything needed to reproduce and triage the
// failure without rerunning the campaign.
type QuarantineRecord struct {
	Key      string `json:"key"`
	Shard    int    `json:"shard"`
	Attempts int    `json:"attempts"`
	Error    string `json:"error"`
}

// QuarantineError reports a sharded campaign that completed its healthy
// units but quarantined others; final artifacts cannot be assembled with
// units missing, so the campaign surfaces this instead of silently
// writing partial results. The per-unit detail is in Records and in the
// quarantine.jsonl file at Path.
type QuarantineError struct {
	// Records are the quarantined units, sorted by key.
	Records []QuarantineRecord
	// Path is the quarantine.jsonl report location.
	Path string
}

func (e *QuarantineError) Error() string {
	keys := make([]string, len(e.Records))
	for i, r := range e.Records {
		keys[i] = r.Key
	}
	return fmt.Sprintf("campaign: %d unit(s) quarantined after repeated failures (see %s): %s",
		len(e.Records), e.Path, strings.Join(keys, ", "))
}

// ErrQuarantined is the sentinel behind every QuarantineError, for
// errors.Is checks that do not care about the detail.
var ErrQuarantined = errors.New("campaign: units quarantined")

// Unwrap exposes the sentinel to errors.Is.
func (e *QuarantineError) Unwrap() error { return ErrQuarantined }

// writeQuarantine durably writes records (sorted by key, one JSON object
// per line) at path. Campaigns are deterministic, so the report bytes
// are too: the same poison units quarantine with the same errors no
// matter how the shards were scheduled. An empty record set writes an
// empty file, making "no quarantine" observable rather than ambiguous
// with "report lost".
func writeQuarantine(path string, records []QuarantineRecord) error {
	sorted := append([]QuarantineRecord(nil), records...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var buf bytes.Buffer
	for _, r := range sorted {
		line, err := json.Marshal(r)
		if err != nil {
			return fmt.Errorf("campaign: encode quarantine record %q: %w", r.Key, err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	if err := atomicio.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("campaign: write quarantine report: %w", err)
	}
	return nil
}

// ReadQuarantine loads a quarantine.jsonl report. A missing file is an
// empty report (the campaign had nothing to quarantine or has not
// finished); a present but malformed line is an error — the report is
// written atomically, so torn content means something else went wrong.
func ReadQuarantine(dir string) ([]QuarantineRecord, error) {
	path := filepath.Join(dir, QuarantineFile)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: read quarantine report: %w", err)
	}
	defer f.Close()
	var records []QuarantineRecord
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var r QuarantineRecord
		if err := json.Unmarshal(line, &r); err != nil {
			return nil, fmt.Errorf("campaign: quarantine report %s: %w", path, err)
		}
		records = append(records, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("campaign: quarantine report %s: %w", path, err)
	}
	return records, nil
}
