package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"time"

	"memcontention/internal/atomicio"
	"memcontention/internal/checkpoint"
	"memcontention/internal/lease"
	"memcontention/internal/sweep"
)

// This file is the remote multi-process campaign plane: several worker
// processes — started independently, possibly on different hosts sharing
// one filesystem — cooperate on a single campaign directory with no
// coordinator process. Coordination is entirely lease-based
// (internal/lease): a worker claims a shard by acquiring its lease,
// journals completed units into an epoch-suffixed shard file
// (shard-NNNN.eK.ckpt), heartbeats while it works, and releases the
// lease when the shard is drained. A worker that dies stops
// heartbeating; after TTL+grace any survivor takes the shard over under
// a higher fencing epoch and resumes from the union of the shard's
// journal files. A deposed zombie that is still running can only append
// to its own dead-epoch file — harmless, because campaigns are
// deterministic in (seed, config) and the merge unions epochs with
// byte-equality conflict detection.

// ManifestFile is the campaign manifest written into the campaign
// directory: the (seed, platforms, shards, replications) tuple every
// joining worker must agree on. Unit keys and home-shard assignment
// derive from it, so two workers with different manifests would journal
// disjoint or — worse — conflicting unit sets.
const ManifestFile = "campaign.json"

// LeaseDir is the subdirectory of a campaign directory holding the
// shard lease files and epoch-claim markers.
const LeaseDir = "leases"

// Manifest pins the parameters of a remote campaign. The first process
// to touch the campaign directory writes it (durably, atomically);
// everyone else verifies against it.
type Manifest struct {
	Seed         uint64   `json:"seed"`
	Platforms    []string `json:"platforms"`
	Shards       int      `json:"shards"`
	Replications int      `json:"replications"`
}

// ManifestMismatchError is the structured rejection of a worker whose
// parameters disagree with the campaign's manifest: which field, what
// the manifest pins, what the worker asked for. Joining with different
// parameters would silently corrupt unit-key assignment, so this is
// fatal, never papered over.
type ManifestMismatchError struct {
	Path  string
	Field string
	Have  string // what the on-disk manifest pins
	Want  string // what this invocation asked for
}

func (e *ManifestMismatchError) Error() string {
	return fmt.Sprintf("campaign: manifest %s pins %s=%s but this invocation wants %s (pass matching flags or a fresh -dir)",
		e.Path, e.Field, e.Have, e.Want)
}

// LoadManifest reads the manifest of an existing campaign directory.
// A missing file is reported via os.ErrNotExist (callers joining an
// existing campaign may fall back to their own defaults and let
// EnsureManifest write them).
func LoadManifest(dir string) (Manifest, error) {
	path := filepath.Join(dir, ManifestFile)
	data, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, fmt.Errorf("campaign: manifest %s: %w", path, err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("campaign: manifest %s: %w", path, err)
	}
	if err := m.validate(); err != nil {
		return Manifest{}, fmt.Errorf("campaign: manifest %s: %w", path, err)
	}
	return m, nil
}

func (m Manifest) validate() error {
	switch {
	case m.Shards < 1:
		return fmt.Errorf("shards = %d, must be >= 1", m.Shards)
	case len(m.Platforms) == 0:
		return errors.New("no platforms")
	case m.Seed == 0:
		return errors.New("seed 0 (the campaign default is 1; 0 means the manifest was never normalised)")
	case m.Replications < 0:
		return fmt.Errorf("replications = %d, must be >= 0", m.Replications)
	}
	return nil
}

// EnsureManifest writes want as the campaign manifest if none exists
// (durably: atomic write, directory chain fsynced) or verifies the
// existing one matches field by field, returning the authoritative
// manifest either way. Creation races between workers are benign: both
// write identical bytes (the encoding is canonical), and a worker that
// loses the rename race re-reads a manifest equal to its own.
func EnsureManifest(dir string, want Manifest) (Manifest, error) {
	if err := want.validate(); err != nil {
		return Manifest{}, fmt.Errorf("campaign: manifest for %s: %w", dir, err)
	}
	path := filepath.Join(dir, ManifestFile)
	if err := atomicio.MkdirAll(dir, 0o755); err != nil {
		return Manifest{}, fmt.Errorf("campaign: manifest %s: %w", path, err)
	}
	have, err := LoadManifest(dir)
	if errors.Is(err, os.ErrNotExist) {
		data, merr := json.MarshalIndent(want, "", "  ")
		if merr != nil {
			return Manifest{}, fmt.Errorf("campaign: manifest %s: %w", path, merr)
		}
		if werr := atomicio.WriteFile(path, append(data, '\n'), 0o644); werr != nil {
			return Manifest{}, fmt.Errorf("campaign: manifest %s: %w", path, werr)
		}
		return want, nil
	}
	if err != nil {
		return Manifest{}, err
	}
	mismatch := func(field, h, w string) (Manifest, error) {
		return Manifest{}, &ManifestMismatchError{Path: path, Field: field, Have: h, Want: w}
	}
	switch {
	case have.Seed != want.Seed:
		return mismatch("seed", fmt.Sprint(have.Seed), fmt.Sprint(want.Seed))
	case !reflect.DeepEqual(have.Platforms, want.Platforms):
		return mismatch("platforms", fmt.Sprintf("%v", have.Platforms), fmt.Sprintf("%v", want.Platforms))
	case have.Shards != want.Shards:
		return mismatch("shards", fmt.Sprint(have.Shards), fmt.Sprint(want.Shards))
	case have.Replications != want.Replications:
		return mismatch("replications", fmt.Sprint(have.Replications), fmt.Sprint(want.Replications))
	}
	return have, nil
}

// ParseWorkers parses a -workers flag value: a non-negative worker
// count ("0", "8") for the in-process executors, or the literal
// "remote" to finalize a lease-coordinated remote campaign
// (docs/campaigns.md).
func ParseWorkers(s string) (workers int, remote bool, err error) {
	s = strings.TrimSpace(s)
	if strings.EqualFold(s, "remote") {
		return 0, true, nil
	}
	n, aerr := strconv.Atoi(s)
	if aerr != nil || n < 0 {
		return 0, false, fmt.Errorf(`campaign: -workers must be a non-negative worker count or "remote", got %q`, s)
	}
	return n, false, nil
}

// RemoteOptions parameterises one remote worker (or the finalizer) of a
// lease-coordinated campaign.
type RemoteOptions struct {
	// Dir is the campaign directory: shard journals at the top level,
	// leases/ underneath, campaign.json pinning the parameters.
	// Required — remote campaigns have no anonymous temp-dir mode, the
	// directory is the rendezvous.
	Dir string
	// Shards is the shard count pinned into the manifest when this
	// worker creates the campaign (0: GOMAXPROCS). Joining workers must
	// agree with the manifest.
	Shards int
	// Lease carries the liveness parameters (TTL, Heartbeat, Grace,
	// Clock, Owner); Dir is filled in from the campaign directory. The
	// zero value uses the lease defaults (15s TTL, 3s heartbeat).
	Lease lease.Config
	// MaxAttempts bounds in-process retries of a failing unit before the
	// worker gives up on the campaign (default 3). Remote campaigns have
	// no quarantine: a unit this worker cannot complete is left for
	// another worker (or operator) — the lease is released, nothing is
	// marked poisoned on disk.
	MaxAttempts int
	// Backoff returns the delay before retry `attempt` (1-based); the
	// default doubles from 10ms and saturates at 1s.
	Backoff func(attempt int) time.Duration
	// Sleep waits between heartbeats, retries and idle rescans; the
	// default honors ctx. Tests inject manual gates here to freeze a
	// worker mid-shard (the in-process stand-in for SIGSTOP).
	Sleep func(ctx context.Context, d time.Duration) error
	// Poll is the idle rescan interval: how often a worker with nothing
	// claimable re-examines the shards, and how often the finalizer
	// re-checks completion (default: the lease heartbeat interval).
	Poll time.Duration
	// UnitStart, when set, runs before each unit execution — after the
	// fencing check, so a test that parks a worker here and lets its
	// lease expire is guaranteed the unit still runs to completion into
	// the dead epoch (the documented zombie write path).
	UnitStart func(shard int, key string)
	// UnitDone, when set, runs after each unit is durably journaled.
	UnitDone func(shard int, key string)
}

func (o RemoteOptions) withDefaults() RemoteOptions {
	if o.Shards <= 0 {
		o.Shards = sweep.DefaultWorkers()
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Backoff == nil {
		o.Backoff = func(attempt int) time.Duration {
			d := 10 * time.Millisecond << uint(attempt-1)
			if d > time.Second {
				d = time.Second
			}
			return d
		}
	}
	if o.Sleep == nil {
		o.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	if o.Poll <= 0 {
		o.Poll = o.Lease.WithDefaults().Heartbeat
	}
	return o
}

// RemoteReport summarises one worker's share of a remote campaign.
type RemoteReport struct {
	// Owner is the lease identity the worker ran under.
	Owner lease.Owner
	// Claimed lists the shards this worker acquired, in acquisition
	// order (a shard re-acquired after fencing or release appears
	// again).
	Claimed []int
	// Units counts the units this worker executed and journaled.
	Units int
	// Fenced counts leases this worker lost to a higher epoch mid-shard
	// (it stopped at the next unit boundary; its journal appends are in
	// dead-epoch files).
	Fenced int
	// RenewErrors counts transient heartbeat-renewal failures. They are
	// not fatal: a worker whose renewals fail simply looks dead and
	// loses its leases to takeover, and epoch fencing keeps its journal
	// writes isolated regardless.
	RenewErrors int
	// Drained reports whether the worker observed the whole campaign
	// complete (every unit journaled) before returning.
	Drained bool
	// ObsErrors counts beacon and event-journal writes that failed.
	// Observability never kills a worker — emission failures are counted
	// here instead of propagating — but a nonzero count means memtop's
	// view of this worker is incomplete.
	ObsErrors int
}

// RemoteWorker joins the remote campaign in opts.Dir and works it until
// every unit of every shard is journaled (Drained=true), the context is
// canceled, or a unit fails MaxAttempts times. It scans the shards in
// order, skips complete ones, claims unleased (or stale-leased) ones,
// and for each claim executes the pending units into that claim's
// epoch journal while a heartbeat goroutine renews the lease.
//
// Crash safety falls out of the layering: a SIGKILLed worker leaves its
// lease to go stale and its journal prefix intact; a canceled worker
// (first SIGINT under checkpoint.SignalContext) stops at the next unit
// boundary and releases its leases so successors need not wait out the
// TTL; a deposed worker finishes its in-flight unit into the dead epoch
// and stops at the fencing check.
func RemoteWorker(cfg Config, opts RemoteOptions, names []string) (*RemoteReport, error) {
	cfg, opts, man, set, err := remoteSetup(cfg, opts, names)
	if err != nil {
		return nil, err
	}
	units, err := pipelineUnits(cfg, man.Platforms)
	if err != nil {
		return nil, err
	}
	byShard := make([][]unit, man.Shards)
	for _, u := range units {
		s := homeShard(u.Key, man.Shards)
		byShard[s] = append(byShard[s], u)
	}
	lcfg := opts.Lease
	lcfg.Dir = filepath.Join(opts.Dir, LeaseDir)
	lcfg.Registry = cfg.Registry
	mgr, err := lease.NewManager(lcfg)
	if err != nil {
		return nil, err
	}
	owner := mgr.Owner()
	fo, err := newFleetObs(opts.Dir, owner.Token, owner.Host, owner.PID, lcfg.WithDefaults().Clock, cfg.Registry)
	if err != nil {
		return nil, err
	}
	fo.join()
	report := &RemoteReport{Owner: owner}
	err = remoteWork(cfg.ctx(), cfg, opts, set, mgr, fo, byShard, report)
	// Funnel every exit through one final beacon + lifecycle event, so
	// the fleet plane can tell a clean exit from a crash: a killed worker
	// never reaches this and leaves a stale "running" beacon behind.
	switch {
	case err == nil && report.Drained:
		fo.finish(WorkerDrained, EventWorkerDrain, "")
	case err == nil:
		fo.finish(WorkerStopped, EventWorkerStop, "")
	case checkpoint.IsCanceled(err):
		fo.finish(WorkerStopped, EventWorkerStop, "canceled")
	default:
		fo.finish(WorkerFailed, EventWorkerStop, err.Error())
	}
	report.ObsErrors = fo.errors()
	return report, err
}

// remoteWork is RemoteWorker's scan-claim-execute loop, separated so
// every exit path funnels through the caller's final beacon and
// lifecycle event.
func remoteWork(ctx context.Context, cfg Config, opts RemoteOptions, set *checkpoint.ShardSet,
	mgr *lease.Manager, fo *fleetObs, byShard [][]unit, report *RemoteReport) error {
	for {
		progressed := false
		allDone := true
		for shard := range byShard {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("campaign: remote worker: %w", err)
			}
			pending, err := pendingUnits(set, byShard[shard], shard)
			if err != nil {
				return err
			}
			if len(pending) == 0 {
				continue
			}
			allDone = false
			floor, err := set.MaxEpoch(shard)
			if err != nil {
				return err
			}
			held, err := mgr.Acquire(shard, floor)
			if errors.Is(err, lease.ErrHeld) {
				continue // a live owner is on it; move on
			}
			if err != nil {
				return err
			}
			report.Claimed = append(report.Claimed, shard)
			fo.claimed(held)
			// Re-scan after the claim: the previous owner may have
			// journaled more units — or drained the shard entirely —
			// between our pending scan and its release. Acquire succeeded,
			// so the old owner's journals are closed and on disk; working
			// from this second scan means healthy handoffs never execute
			// a unit twice (only a fenced zombie's in-flight unit or a
			// split-claim race can overlap, each into its own epoch file
			// with byte-identical payloads).
			pending, err = pendingUnits(set, byShard[shard], shard)
			if err != nil {
				held.Release()
				fo.leaseDropped(held.Shard())
				return err
			}
			if len(pending) == 0 {
				relErr := held.Release()
				fo.leaseDropped(held.Shard())
				if relErr != nil {
					return relErr
				}
				continue
			}
			ran, rerr := runLeasedShard(ctx, cfg, opts, set, held, mgr.Heartbeat(), pending, len(byShard[shard]), fo, report)
			report.Units += ran
			if rerr != nil {
				return rerr
			}
			if ran > 0 {
				progressed = true
			}
		}
		if allDone {
			report.Drained = true
			return nil
		}
		if !progressed {
			// Everything pending is leased by live peers (or fenced away
			// from us). Wait one poll interval for them to finish or die.
			if err := opts.Sleep(ctx, opts.Poll); err != nil {
				return fmt.Errorf("campaign: remote worker: %w", err)
			}
		}
	}
}

// remoteSetup is the shared preamble of RemoteWorker and RemoteMerge:
// defaults, manifest rendezvous (the manifest overrides cfg and names —
// it is the campaign's authority), shard set.
func remoteSetup(cfg Config, opts RemoteOptions, names []string) (Config, RemoteOptions, Manifest, *checkpoint.ShardSet, error) {
	if opts.Dir == "" {
		return cfg, opts, Manifest{}, nil, errors.New("campaign: remote campaign needs a directory (RemoteOptions.Dir)")
	}
	// Zero-valued knobs inherit the existing campaign's manifest — the
	// common "join (or finalize) whatever is running there" case: a nil
	// platform list, Seed 0, Shards 0 and Replications <= 1 all mean
	// "the campaign's own value". Non-zero values are pinned and any
	// disagreement with the manifest is rejected by EnsureManifest
	// below with the exact field. Defaults apply only after
	// inheritance, so a fresh directory still gets seed 1 and
	// GOMAXPROCS shards.
	if have, lerr := LoadManifest(opts.Dir); lerr == nil {
		if len(names) == 0 {
			names = have.Platforms
		}
		if cfg.Seed == 0 {
			cfg.Seed = have.Seed
		}
		if cfg.Replications <= 1 {
			cfg.Replications = have.Replications
		}
		if opts.Shards == 0 {
			opts.Shards = have.Shards
		}
	} else if !errors.Is(lerr, os.ErrNotExist) {
		return cfg, opts, Manifest{}, nil, lerr
	}
	cfg = cfg.withDefaults()
	opts = opts.withDefaults()
	if len(names) == 0 {
		names = TestbedNames()
	}
	set, err := checkpoint.OpenShardSet(opts.Dir)
	if err != nil {
		return cfg, opts, Manifest{}, nil, err
	}
	repl := cfg.Replications
	if repl <= 1 {
		repl = 0 // 0 and 1 both mean a single replication; canonicalise
	}
	man, err := EnsureManifest(opts.Dir, Manifest{
		Seed:         cfg.Seed,
		Platforms:    names,
		Shards:       opts.Shards,
		Replications: repl,
	})
	if err != nil {
		return cfg, opts, Manifest{}, nil, err
	}
	cfg.Seed = man.Seed
	cfg.Replications = man.Replications
	return cfg, opts, man, set, nil
}

// pendingUnits returns the units of shard not yet journaled in any of
// the shard's journal files (any epoch — completed work survives
// takeover). A merge conflict here means journal corruption or a
// nondeterminism bug and fails loudly, exactly like the final merge.
func pendingUnits(set *checkpoint.ShardSet, units []unit, shard int) ([]unit, error) {
	files, err := set.ShardFiles(shard)
	if err != nil {
		return nil, err
	}
	entries, err := checkpoint.MergeShardFiles(files)
	if err != nil {
		return nil, err
	}
	done := make(map[string]bool, len(entries))
	for _, e := range entries {
		done[e.Key] = true
	}
	var out []unit
	for _, u := range units {
		if !done[u.Key] {
			out = append(out, u)
		}
	}
	return out, nil
}

// runLeasedShard executes pending units under an acquired lease:
// journal opened at the lease's epoch, heartbeat goroutine renewing on
// the configured interval, fencing checked between units. It returns
// the number of units completed and always closes the journal and
// releases the lease (Release is a no-op on a fenced lease, so a new
// owner's lease file is never disturbed).
func runLeasedShard(ctx context.Context, cfg Config, opts RemoteOptions, set *checkpoint.ShardSet,
	held *lease.Held, heartbeat time.Duration, pending []unit, assigned int, fo *fleetObs, report *RemoteReport) (int, error) {
	j, err := set.OpenEpochShard(held.Shard(), held.Epoch())
	if err != nil {
		held.Release()
		fo.leaseDropped(held.Shard())
		return 0, err
	}
	j.SetRegistry(cfg.Registry)
	fo.shardView(held.Shard(), assigned-len(pending), len(pending))

	// The heartbeat goroutine sleeps first — Acquire just wrote a fresh
	// heartbeat — then renews until fenced or stopped. Its counters are
	// published to the report only after <-hbDone (the channel close is
	// the happens-before edge).
	hbCtx, hbStop := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	var renewErrs int
	go func() {
		defer close(hbDone)
		for {
			// Sleep honors hbCtx, but it is an injected func value whose
			// body the analyzer cannot see; checking the context here makes
			// the termination path explicit (and survives a Sleep stub that
			// ignores cancellation, as some tests install).
			if hbCtx.Err() != nil {
				return
			}
			if err := opts.Sleep(hbCtx, heartbeat); err != nil {
				return
			}
			if err := held.Renew(); err != nil {
				if errors.Is(err, lease.ErrFenced) {
					return
				}
				renewErrs++
				fo.renewFailure(held.Shard(), held.Epoch(), err)
				continue
			}
			fo.tick()
		}
	}()

	ran := 0
	var runErr error
	for _, u := range pending {
		if err := ctx.Err(); err != nil {
			runErr = fmt.Errorf("campaign: remote worker: %w", err)
			break
		}
		if held.Fenced() {
			break
		}
		if opts.UnitStart != nil {
			opts.UnitStart(held.Shard(), u.Key)
		}
		if err := runRemoteUnit(ctx, cfg, opts, j, u); err != nil {
			if checkpoint.IsCanceled(err) {
				runErr = fmt.Errorf("campaign: remote worker: %w", err)
			} else {
				runErr = &UnitError{Key: u.Key, Shard: held.Shard(), Attempts: opts.MaxAttempts, Err: err}
			}
			break
		}
		ran++
		fo.unitDone(held.Shard())
		if opts.UnitDone != nil {
			opts.UnitDone(held.Shard(), u.Key)
		}
	}

	hbStop()
	<-hbDone
	report.RenewErrors += renewErrs
	// Fencing is judged once, after the heartbeat goroutine has joined:
	// whether the unit loop saw it or only the last renewal did, the
	// fence is counted — and journaled — exactly once per lost lease.
	fenced := held.Fenced()
	if fenced {
		report.Fenced++
		fo.fenced(held)
	}
	cerr := j.Close()
	relErr := held.Release()
	if !fenced {
		fo.leaseDropped(held.Shard())
	}
	if runErr == nil && cerr == nil && relErr == nil && !fenced && ran == len(pending) {
		fo.shardComplete(held)
	}
	if runErr != nil {
		return ran, runErr
	}
	if cerr != nil {
		return ran, cerr
	}
	return ran, relErr
}

// runRemoteUnit runs one unit with the in-process retry budget and
// verifies it journaled its key (the same invariant the supervised
// executor enforces: a completed unit can never vanish from the merge).
func runRemoteUnit(ctx context.Context, cfg Config, opts RemoteOptions, j *checkpoint.Journal, u unit) error {
	var last error
	for attempt := 0; attempt < opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := opts.Sleep(ctx, opts.Backoff(attempt)); err != nil {
				return err
			}
		}
		wcfg := cfg
		wcfg.Journal = j
		wcfg.Workers = 1 // the unit is the parallelism grain
		err := u.run(wcfg)
		if err == nil {
			if !j.Has(u.Key) {
				return fmt.Errorf("campaign: unit %s completed without journaling its key", u.Key)
			}
			return nil
		}
		if checkpoint.IsCanceled(err) {
			return err
		}
		last = err
	}
	return last
}

// RemoteIncompleteError reports a finalize attempt on a campaign whose
// workers have not journaled every unit yet (only surfaced when the
// finalizer's context expires while waiting).
type RemoteIncompleteError struct {
	// Missing lists the unit keys not yet journaled, sorted (they are
	// enumerated in deterministic order).
	Missing []string
}

func (e *RemoteIncompleteError) Error() string {
	return fmt.Sprintf("campaign: remote campaign incomplete: %d units not journaled (first: %s)",
		len(e.Missing), e.Missing[0])
}

// RemoteMerge finalizes a remote campaign: it waits (polling on
// opts.Poll, bounded by cfg.Context) until every unit of the manifest's
// pipeline is journaled somewhere in the shard set and every shard with
// assigned units has at least one journal file, then merges all shard
// journals — every epoch, dead ones included — into merged.ckpt with
// byte-equality conflict detection, and replays the sequential pipeline
// assembly against the merged journal. The artifacts are therefore the
// sequential run's artifacts byte for byte, regardless of how many
// workers ran, died, or were fenced: no unit is lost (completeness is
// checked against the enumerated unit list) and none is double-charged
// (duplicate keys must carry identical payloads and collapse to one
// entry).
func RemoteMerge(cfg Config, opts RemoteOptions, names []string) (*ShardResult, error) {
	cfg, opts, man, set, err := remoteSetup(cfg, opts, names)
	if err != nil {
		return nil, err
	}
	units, err := pipelineUnits(cfg, man.Platforms)
	if err != nil {
		return nil, err
	}
	ctx := cfg.ctx()
	for {
		missing, err := missingUnits(set, units)
		if err != nil {
			return nil, err
		}
		if len(missing) == 0 {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("campaign: remote merge: %w (%w)", err, &RemoteIncompleteError{Missing: missing})
		}
		if err := opts.Sleep(ctx, opts.Poll); err != nil {
			return nil, fmt.Errorf("campaign: remote merge: %w (%w)", err, &RemoteIncompleteError{Missing: missing})
		}
	}
	// Every unit is journaled; verify per-shard journal presence anyway —
	// a shard with assigned units but no file would mean its units were
	// journaled under a foreign shard's file, i.e. a home-shard bug.
	for shard := 0; shard < man.Shards; shard++ {
		assigned := 0
		for _, u := range units {
			if homeShard(u.Key, man.Shards) == shard {
				assigned++
			}
		}
		if assigned == 0 {
			continue
		}
		files, err := set.ShardFiles(shard)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("campaign: remote merge: shard %d has %d assigned units but no journal file", shard, assigned)
		}
	}

	merged, err := mergeShardSet(opts.Dir)
	if err != nil {
		return nil, err
	}
	defer merged.Close()
	res := &ShardResult{Dir: opts.Dir}
	mcfg := cfg
	mcfg.Journal = merged
	mcfg.Context = nil // assembly reads the journal; nothing to cancel
	art, err := Pipeline(mcfg, man.Platforms)
	if err != nil {
		return res, err
	}
	res.Artifacts = art
	return res, nil
}

// missingUnits lists the unit keys not yet present in the union of all
// shard journal files.
func missingUnits(set *checkpoint.ShardSet, units []unit) ([]string, error) {
	paths, err := set.Paths()
	if err != nil {
		return nil, err
	}
	entries, err := checkpoint.MergeShardFiles(paths)
	if err != nil {
		return nil, err
	}
	done := make(map[string]bool, len(entries))
	for _, e := range entries {
		done[e.Key] = true
	}
	var missing []string
	for _, u := range units {
		if !done[u.Key] {
			missing = append(missing, u.Key)
		}
	}
	return missing, nil
}
