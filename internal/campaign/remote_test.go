package campaign

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"memcontention/internal/checkpoint"
	"memcontention/internal/lease"
)

// remoteClock is a mutex-guarded manual clock shared by every process
// of an in-process remote-campaign test.
type remoteClock struct {
	mu sync.Mutex
	t  time.Time
}

func newRemoteClock() *remoteClock {
	return &remoteClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *remoteClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *remoteClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// tinySleep keeps heartbeat/poll loops from hot-spinning on fsyncs
// without slowing tests down.
func tinySleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	time.Sleep(time.Millisecond)
	return nil
}

// remoteLease is the fast liveness config every remote test uses: 1s
// TTL, 100ms heartbeat, no grace (exact staleness boundaries under the
// manual clock).
func remoteLease(clk *remoteClock) lease.Config {
	return lease.Config{TTL: time.Second, Heartbeat: 100 * time.Millisecond, Grace: -1, Clock: clk.Now}
}

func TestRemoteWorkerDrainsAndMergesByteIdentical(t *testing.T) {
	want := writeSeqBaseline(t, Config{Seed: 1})

	clk := newRemoteClock()
	dir := filepath.Join(t.TempDir(), "campaign")
	opts := RemoteOptions{Dir: dir, Shards: 4, Lease: remoteLease(clk), Sleep: tinySleep}
	rep, err := RemoteWorker(Config{Seed: 1}, opts, testNames)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drained || rep.Units == 0 || rep.Fenced != 0 {
		t.Fatalf("report %+v, want drained with units and no fencing", rep)
	}

	res, err := RemoteMerge(Config{Seed: 1}, opts, testNames)
	if err != nil {
		t.Fatal(err)
	}
	if res.Artifacts == nil {
		t.Fatal("remote merge produced no artifacts")
	}
	out := filepath.Join(t.TempDir(), "remote")
	if err := res.Artifacts.Write(out); err != nil {
		t.Fatal(err)
	}
	assertSameArtifacts(t, want, readArtifacts(t, out))

	// Drained workers release everything: no lease file survives.
	if left := leaseFiles(t, dir); len(left) != 0 {
		t.Fatalf("drained campaign left lease files: %v", left)
	}
}

func TestRemoteWorkersConcurrentNoDoubleCharge(t *testing.T) {
	want := writeSeqBaseline(t, Config{Seed: 1})

	clk := newRemoteClock()
	dir := filepath.Join(t.TempDir(), "campaign")
	units, err := pipelineUnits(Config{Seed: 1}, testNames)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 3
	reports := make([]*RemoteReport, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			opts := RemoteOptions{Dir: dir, Shards: 4, Lease: remoteLease(clk), Sleep: tinySleep}
			reports[w], errs[w] = RemoteWorker(Config{Seed: 1}, opts, testNames)
		}(w)
	}
	wg.Wait()
	total := 0
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if !reports[w].Drained {
			t.Fatalf("worker %d did not observe the drain: %+v", w, reports[w])
		}
		total += reports[w].Units
	}
	// Leases serialise shard ownership, so every unit is executed at
	// least once; a split-claim race (two workers passing the staleness
	// check before either's lease write lands) may execute a unit twice,
	// but always into distinct epoch journals with byte-identical
	// payloads — the merge collapses them, so the *artifacts* are never
	// double-charged. That is what the byte-identity check below proves.
	if total < len(units) {
		t.Fatalf("workers executed %d units, campaign has %d", total, len(units))
	}
	if total > len(units) {
		t.Logf("split-claim overlap: %d executions for %d units (merge dedups)", total, len(units))
	}

	res, err := RemoteMerge(Config{Seed: 1}, RemoteOptions{Dir: dir, Shards: 4, Lease: remoteLease(clk), Sleep: tinySleep}, testNames)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "remote")
	if err := res.Artifacts.Write(out); err != nil {
		t.Fatal(err)
	}
	assertSameArtifacts(t, want, readArtifacts(t, out))
}

// TestRemoteZombieFencedStillWriting is the fencing proof: worker A
// stalls mid-shard (heartbeats frozen — the in-process stand-in for
// SIGSTOP), its lease expires, worker B takes the shard over under a
// higher epoch and drains the campaign. A then resumes, finishes its
// in-flight unit — a late append that must land in A's dead-epoch
// journal — and stops. The merge unions both epochs without conflict
// and the artifacts stay byte-identical to the sequential run.
func TestRemoteZombieFencedStillWriting(t *testing.T) {
	want := writeSeqBaseline(t, Config{Seed: 1})

	clk := newRemoteClock()
	dir := filepath.Join(t.TempDir(), "campaign")
	gate := make(chan struct{}) // closed once: unfreezes worker A
	firstUnit := make(chan string, 1)
	var unitCalls atomic.Int32
	var lateKey atomic.Value // the unit A runs after being deposed

	optsA := RemoteOptions{
		Dir: dir, Shards: 1, Lease: remoteLease(clk),
		// A's first sleep is its heartbeat goroutine's: it blocks on the
		// gate, so A's lease heartbeat stays frozen at acquisition time.
		Sleep: func(ctx context.Context, d time.Duration) error {
			<-gate
			return tinySleep(ctx, d)
		},
		UnitStart: func(shard int, key string) {
			if unitCalls.Add(1) == 2 {
				lateKey.Store(key)
				<-gate // stall before the second unit; it runs after takeover
			}
		},
		UnitDone: func(shard int, key string) {
			select {
			case firstUnit <- key:
			default:
			}
		},
	}

	aDone := make(chan struct{})
	var aRep *RemoteReport
	var aErr error
	go func() {
		defer close(aDone)
		aRep, aErr = RemoteWorker(Config{Seed: 1}, optsA, testNames)
	}()

	doneKey := <-firstUnit // A journaled its first unit and is now stalled
	clk.Advance(3 * time.Second)

	optsB := RemoteOptions{Dir: dir, Shards: 1, Lease: remoteLease(clk), Sleep: tinySleep}
	bRep, err := RemoteWorker(Config{Seed: 1}, optsB, testNames)
	if err != nil {
		t.Fatal(err)
	}
	if !bRep.Drained || len(bRep.Claimed) == 0 {
		t.Fatalf("takeover worker report %+v, want a drained claim", bRep)
	}

	close(gate) // resurrect the zombie
	select {
	case <-aDone:
	case <-time.After(30 * time.Second):
		t.Fatal("zombie worker never returned")
	}
	if aErr != nil {
		t.Fatalf("zombie worker: %v", aErr)
	}
	if aRep.Units < 2 {
		t.Fatalf("zombie executed %d units, want its first unit plus the in-flight one", aRep.Units)
	}

	// The late append is in A's dead epoch file (epoch 1) — and B,
	// which also completed that unit, has it in epoch 2: a duplicate
	// the merge must collapse, not reject.
	late, _ := lateKey.Load().(string)
	if late == "" || late == doneKey {
		t.Fatalf("late unit key %q, first unit %q: test hooks misfired", late, doneKey)
	}
	set, err := checkpoint.OpenShardSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertJournalHasKey(t, set.EpochShardPath(0, 1), late)
	assertJournalHasKey(t, set.EpochShardPath(0, 2), late)

	res, err := RemoteMerge(Config{Seed: 1}, optsB, testNames)
	if err != nil {
		t.Fatalf("merge with a zombie's late appends must stay conflict-free: %v", err)
	}
	out := filepath.Join(t.TempDir(), "remote")
	if err := res.Artifacts.Write(out); err != nil {
		t.Fatal(err)
	}
	assertSameArtifacts(t, want, readArtifacts(t, out))
}

// TestRemoteOrphanTakeover models a SIGKILLed worker: a lease acquired
// and never released, a partial epoch journal left behind. A fresh
// worker must wait out nothing (the TTL already elapsed on the shared
// clock), take the shard over at a higher epoch and finish the
// campaign with no manual cleanup.
func TestRemoteOrphanTakeover(t *testing.T) {
	clk := newRemoteClock()
	dir := filepath.Join(t.TempDir(), "campaign")
	cfg := Config{Seed: 1}.withDefaults()

	man, err := EnsureManifest(dir, Manifest{Seed: 1, Platforms: testNames, Shards: 1, Replications: 0})
	if err != nil {
		t.Fatal(err)
	}
	units, err := pipelineUnits(cfg, man.Platforms)
	if err != nil {
		t.Fatal(err)
	}

	// The "killed" worker: lease held, one unit journaled, then nothing.
	lcfg := remoteLease(clk)
	lcfg.Dir = filepath.Join(dir, LeaseDir)
	mgr, err := lease.NewManager(lcfg)
	if err != nil {
		t.Fatal(err)
	}
	held, err := mgr.Acquire(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	set, err := checkpoint.OpenShardSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	j, err := set.OpenEpochShard(0, held.Epoch())
	if err != nil {
		t.Fatal(err)
	}
	wcfg := cfg
	wcfg.Journal = j
	if err := units[0].run(wcfg); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// No Release: the process is gone. Its lease must time out.

	clk.Advance(3 * time.Second)
	rep, err := RemoteWorker(cfg, RemoteOptions{Dir: dir, Shards: 1, Lease: remoteLease(clk), Sleep: tinySleep}, testNames)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drained {
		t.Fatalf("successor did not drain: %+v", rep)
	}
	if rep.Units != len(units)-1 {
		t.Fatalf("successor executed %d units, want %d (the orphan's journaled unit must survive takeover)",
			rep.Units, len(units)-1)
	}
	if max, err := set.MaxEpoch(0); err != nil || max < 2 {
		t.Fatalf("takeover epoch %d (%v), want >= 2", max, err)
	}
	if _, err := RemoteMerge(cfg, RemoteOptions{Dir: dir, Shards: 1, Lease: remoteLease(clk), Sleep: tinySleep}, testNames); err != nil {
		t.Fatal(err)
	}
}

// TestRemoteCancelReleasesLeases proves the graceful half of the
// shutdown contract: a canceled worker stops at the next unit boundary
// and releases its leases, so a successor claims the shard immediately
// — no TTL wait.
func TestRemoteCancelReleasesLeases(t *testing.T) {
	clk := newRemoteClock()
	dir := filepath.Join(t.TempDir(), "campaign")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	opts := RemoteOptions{
		Dir: dir, Shards: 1, Lease: remoteLease(clk), Sleep: tinySleep,
		UnitDone: func(shard int, key string) { cancel() },
	}
	rep, err := RemoteWorker(Config{Seed: 1, Context: ctx}, opts, testNames)
	if !checkpoint.IsCanceled(err) {
		t.Fatalf("canceled worker returned %v, want a context cancellation", err)
	}
	if rep.Units != 1 || rep.Drained {
		t.Fatalf("canceled report %+v, want exactly the one unit that completed", rep)
	}
	if left := leaseFiles(t, dir); len(left) != 0 {
		t.Fatalf("canceled worker left lease files: %v", left)
	}

	// Successor claims immediately — same clock, no advance.
	rep2, err := RemoteWorker(Config{Seed: 1}, RemoteOptions{Dir: dir, Shards: 1, Lease: remoteLease(clk), Sleep: tinySleep}, testNames)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Drained {
		t.Fatalf("successor did not drain: %+v", rep2)
	}
}

func TestEnsureManifestPinsParameters(t *testing.T) {
	dir := t.TempDir()
	want := Manifest{Seed: 1, Platforms: []string{"henri"}, Shards: 2, Replications: 0}
	if _, err := EnsureManifest(dir, want); err != nil {
		t.Fatal(err)
	}
	// Identical re-ensure is the normal join path.
	if got, err := EnsureManifest(dir, want); err != nil || !reflect.DeepEqual(got, mustLoad(t, dir)) {
		t.Fatalf("re-ensure: %+v, %v", got, err)
	}
	// Any field disagreement is a structured rejection.
	bad := want
	bad.Seed = 7
	var mm *ManifestMismatchError
	if _, err := EnsureManifest(dir, bad); !errors.As(err, &mm) || mm.Field != "seed" {
		t.Fatalf("seed mismatch returned %v, want ManifestMismatchError{Field: seed}", err)
	}
	bad = want
	bad.Shards = 9
	if _, err := EnsureManifest(dir, bad); !errors.As(err, &mm) || mm.Field != "shards" {
		t.Fatalf("shards mismatch returned %v, want ManifestMismatchError{Field: shards}", err)
	}

	// A missing manifest is os.ErrNotExist (join-or-create decisions);
	// a corrupt one is a loud error, never silently recreated.
	if _, err := LoadManifest(t.TempDir()); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing manifest: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestFile), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := EnsureManifest(dir, want); err == nil {
		t.Fatal("corrupt manifest must not be silently replaced")
	}
}

func TestRemoteMergeInheritsManifest(t *testing.T) {
	clk := newRemoteClock()
	dir := filepath.Join(t.TempDir(), "campaign")
	opts := RemoteOptions{Dir: dir, Shards: 2, Lease: remoteLease(clk), Sleep: tinySleep}
	if _, err := RemoteWorker(Config{Seed: 7}, opts, testNames); err != nil {
		t.Fatal(err)
	}

	// A bare finalize — zero seed, nil platform list, zero shard count —
	// inherits everything from campaign.json instead of pinning library
	// defaults against a campaign that used different values.
	res, err := RemoteMerge(Config{}, RemoteOptions{Dir: dir, Sleep: tinySleep}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Artifacts == nil || len(res.Artifacts.Platforms) != len(testNames) {
		t.Fatalf("inherited merge artifacts: %+v", res.Artifacts)
	}
	for i, r := range res.Artifacts.Platforms {
		if r.Platform != testNames[i] {
			t.Fatalf("platform %d = %s, want %s", i, r.Platform, testNames[i])
		}
	}

	// Explicit non-zero values are still pinned and checked.
	var mm *ManifestMismatchError
	if _, err := RemoteMerge(Config{Seed: 9}, RemoteOptions{Dir: dir, Sleep: tinySleep}, nil); !errors.As(err, &mm) || mm.Field != "seed" {
		t.Fatalf("conflicting seed: %v, want ManifestMismatchError{Field: seed}", err)
	}
	if _, err := RemoteMerge(Config{}, RemoteOptions{Dir: dir, Sleep: tinySleep}, []string{"dahu"}); !errors.As(err, &mm) || mm.Field != "platforms" {
		t.Fatalf("conflicting platforms: %v, want ManifestMismatchError{Field: platforms}", err)
	}
}

func TestRemoteWorkerRejectsBadLeaseConfig(t *testing.T) {
	lcfg := lease.Config{TTL: time.Second, Heartbeat: 400 * time.Millisecond} // >= TTL/3
	_, err := RemoteWorker(Config{Seed: 1}, RemoteOptions{Dir: t.TempDir(), Shards: 1, Lease: lcfg}, testNames)
	var cerr *lease.ConfigError
	if !errors.As(err, &cerr) || cerr.Field != "Heartbeat" {
		t.Fatalf("got %v, want lease.ConfigError{Field: Heartbeat}", err)
	}
}

func TestRemoteMergeReportsIncomplete(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "campaign")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // no workers will ever show up; the wait must bail out
	_, err := RemoteMerge(Config{Seed: 1, Context: ctx},
		RemoteOptions{Dir: dir, Shards: 2, Sleep: tinySleep}, testNames)
	var inc *RemoteIncompleteError
	if !errors.As(err, &inc) || len(inc.Missing) == 0 {
		t.Fatalf("got %v, want RemoteIncompleteError with missing units", err)
	}
}

func TestParseWorkers(t *testing.T) {
	for _, tc := range []struct {
		in      string
		workers int
		remote  bool
		ok      bool
	}{
		{"0", 0, false, true},
		{"8", 8, false, true},
		{" 4 ", 4, false, true},
		{"remote", 0, true, true},
		{"Remote", 0, true, true},
		{"-1", 0, false, false},
		{"", 0, false, false},
		{"eight", 0, false, false},
	} {
		w, r, err := ParseWorkers(tc.in)
		if (err == nil) != tc.ok || w != tc.workers || r != tc.remote {
			t.Errorf("ParseWorkers(%q) = (%d, %v, %v), want (%d, %v, ok=%v)", tc.in, w, r, err, tc.workers, tc.remote, tc.ok)
		}
	}
}

func mustLoad(t *testing.T, dir string) Manifest {
	t.Helper()
	m, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func leaseFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, LeaseDir, "*.lease"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

func assertJournalHasKey(t *testing.T, path, key string) {
	t.Helper()
	entries, err := checkpoint.MergeShardFiles([]string{path})
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	for _, e := range entries {
		if e.Key == key {
			return
		}
	}
	t.Fatalf("%s does not contain key %q", path, key)
}
