package campaign

import (
	"fmt"

	"memcontention/internal/eval"
	"memcontention/internal/export"
	"memcontention/internal/stats"
	"memcontention/internal/sweep"
)

// replicationSeeds lists the seed ensemble of a campaign: the base seed
// first (replication 0), then base+1, base+2, ... Deriving consecutive
// seeds keeps the sweep reproducible and lets any single replication be
// re-run by hand with a plain -seed flag.
func replicationSeeds(cfg Config) []uint64 {
	n := cfg.Replications
	if n < 1 {
		n = 1
	}
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = cfg.Seed + uint64(i)
	}
	return seeds
}

// MetricStat summarises one Table II error metric across a seed
// ensemble: the sample mean, the sample (n−1) standard deviation and the
// half-width of the two-sided 95% confidence interval of the mean
// (Student-t). Cornebize & Legrand's "Variability Matters" is the
// motivation — a single-run error figure carries no information about
// run-to-run noise, so the sweep reports the distribution instead.
type MetricStat struct {
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	CI95   float64 `json:"ci95"`
}

// metricStat computes a MetricStat from the per-replication values.
func metricStat(xs []float64) MetricStat {
	mean, half := stats.MeanCI95(xs)
	return MetricStat{Mean: mean, StdDev: stats.SampleStdDev(xs), CI95: half}
}

// PlatformReplication is the replication summary of one platform: every
// Table II error column as a distribution over the seed ensemble.
type PlatformReplication struct {
	Platform       string     `json:"platform"`
	CommSamples    MetricStat `json:"comm_samples"`
	CommNonSamples MetricStat `json:"comm_non_samples"`
	CommAll        MetricStat `json:"comm_all"`
	CompSamples    MetricStat `json:"comp_samples"`
	CompNonSamples MetricStat `json:"comp_non_samples"`
	CompAll        MetricStat `json:"comp_all"`
	Average        MetricStat `json:"average"`
}

// ReplicationSummary is the Monte-Carlo replication sweep result: Table
// II error metrics as mean / stddev / CI95 over a seed ensemble, per
// platform and in input platform order. It is deterministic in
// (base seed, replication count, platform set).
type ReplicationSummary struct {
	Replications int                   `json:"replications"`
	Seeds        []uint64              `json:"seeds"`
	Platforms    []PlatformReplication `json:"platforms"`
}

// Replicate runs the Monte-Carlo replication sweep: every platform in
// names is evaluated once per seed in the ensemble (see
// replicationSeeds) and the Table II error metrics are pooled into
// per-platform distributions. base, when non-nil, supplies the base-seed
// evaluations (replication 0) so a campaign that already evaluated them
// never measures the same seed twice; its order must match names.
// Evaluations run on cfg.Workers workers and journal into cfg.Journal
// exactly like EvaluatePlatforms, so the sweep is crash-safe and
// resumable at single-evaluation granularity.
func Replicate(cfg Config, names []string, base []*eval.PlatformResult) (*ReplicationSummary, error) {
	cfg = cfg.withDefaults()
	if cfg.Replications < 1 {
		cfg.Replications = 1
	}
	seeds := replicationSeeds(cfg)
	if base != nil && len(base) != len(names) {
		return nil, fmt.Errorf("campaign: replicate: %d base results for %d platforms", len(base), len(names))
	}

	// One job per (seed, platform) pair that still needs measuring,
	// enumerated seed-major so the flat result index is deterministic.
	type job struct {
		name string
		seed uint64
	}
	var jobs []job
	for i, seed := range seeds {
		if i == 0 && base != nil {
			continue
		}
		for _, name := range names {
			jobs = append(jobs, job{name: name, seed: seed})
		}
	}
	measured, err := sweep.MapCtx(cfg.ctx(), jobs, cfg.Workers, func(jb job) (*eval.PlatformResult, error) {
		jcfg := cfg
		jcfg.Seed = jb.seed
		return evaluateOne(jcfg, jb.name)
	})
	if err != nil {
		return nil, err
	}

	// byPlatform[p][r] is platform p's error summary for replication r.
	byPlatform := make([][]eval.ErrorSummary, len(names))
	next := 0
	for i := range seeds {
		if i == 0 && base != nil {
			for p, r := range base {
				byPlatform[p] = append(byPlatform[p], r.Errors)
			}
			continue
		}
		for p := range names {
			byPlatform[p] = append(byPlatform[p], measured[next].Errors)
			next++
		}
	}

	summary := &ReplicationSummary{Replications: len(seeds), Seeds: seeds}
	for p, name := range names {
		cols := make(map[string][]float64, 7)
		for _, e := range byPlatform[p] {
			cols["comm_s"] = append(cols["comm_s"], e.CommSamples)
			cols["comm_n"] = append(cols["comm_n"], e.CommNonSamples)
			cols["comm_a"] = append(cols["comm_a"], e.CommAll)
			cols["comp_s"] = append(cols["comp_s"], e.CompSamples)
			cols["comp_n"] = append(cols["comp_n"], e.CompNonSamples)
			cols["comp_a"] = append(cols["comp_a"], e.CompAll)
			cols["avg"] = append(cols["avg"], e.Average)
		}
		summary.Platforms = append(summary.Platforms, PlatformReplication{
			Platform:       name,
			CommSamples:    metricStat(cols["comm_s"]),
			CommNonSamples: metricStat(cols["comm_n"]),
			CommAll:        metricStat(cols["comm_a"]),
			CompSamples:    metricStat(cols["comp_s"]),
			CompNonSamples: metricStat(cols["comp_n"]),
			CompAll:        metricStat(cols["comp_a"]),
			Average:        metricStat(cols["avg"]),
		})
	}
	return summary, nil
}

// pctCI renders "mean ± ci95 %" for a table cell.
func pctCI(s MetricStat) string {
	return fmt.Sprintf("%.2f ± %.2f %%", s.Mean, s.CI95)
}

// Table renders the replication sweep in Table II's column layout, each
// cell as mean ± 95% CI half-width.
func (r *ReplicationSummary) Table() *export.Table {
	t := export.NewTable(
		fmt.Sprintf("TABLE II REPLICATED — MODEL ERRORS, MEAN ± 95%% CI OVER %d SEEDS", r.Replications),
		"Platform",
		"Comm on Samples", "Comm on non-Samples", "Comm all",
		"Comp on Samples", "Comp on non-Samples", "Comp all",
		"Average",
	)
	for _, p := range r.Platforms {
		t.AddRow(p.Platform,
			pctCI(p.CommSamples), pctCI(p.CommNonSamples), pctCI(p.CommAll),
			pctCI(p.CompSamples), pctCI(p.CompNonSamples), pctCI(p.CompAll),
			pctCI(p.Average),
		)
	}
	return t
}
