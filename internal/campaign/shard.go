package campaign

import (
	"fmt"
	"hash/fnv"

	"memcontention/internal/bench"
	"memcontention/internal/topology"
)

// unit is one schedulable experiment unit of a sharded campaign. Units
// are config-keyed: Key condenses everything that determines the unit's
// result, it doubles as the journal key the unit records under, and it
// hashes to the unit's deterministic home shard. run executes the unit
// against the worker's Config (shard journal attached) and must record
// Key in cfg.Journal before returning nil — the supervisor verifies
// this, so a completed unit can never silently vanish from the merge.
type unit struct {
	Key string
	run func(cfg Config) error
}

// homeShard assigns a unit to its deterministic home shard: an FNV-64a
// hash of the key modulo the shard count. The assignment depends only on
// (key, shards), so a resumed campaign with the same worker count lands
// every unit on the shard already holding its partial nested records.
func homeShard(key string, shards int) int {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(shards))
}

// evalUnit builds the platform-evaluation unit for one (platform, seed):
// the full §IV evaluation whose nested placement curves journal
// individually under the same shard journal.
func evalUnit(cfg Config, name string, seed uint64) (unit, error) {
	plat, err := topology.ByName(name)
	if err != nil {
		return unit{}, err
	}
	runner, err := bench.NewRunner(bench.Config{Platform: plat, Seed: seed})
	if err != nil {
		return unit{}, err
	}
	return unit{
		Key: "eval|" + runner.Scope(),
		run: func(wcfg Config) error {
			wcfg.Seed = seed
			_, err := evaluateOne(wcfg, name)
			return err
		},
	}, nil
}

// netbenchUnit builds the ping-pong sweep unit. The per-size points
// journal individually inside the driver; the marker entry recorded
// under the unit key makes sweep completion visible to the supervisor
// and the merge.
func netbenchUnit(names []string) unit {
	key := "unit|netbench|" + names[0]
	return unit{
		Key: key,
		run: func(wcfg Config) error {
			points, err := Netbench(wcfg, names[0])
			if err != nil {
				return err
			}
			if err := wcfg.Journal.Record(key, len(points)); err != nil {
				return fmt.Errorf("campaign: journal %s: %w", key, err)
			}
			return nil
		},
	}
}

// crossCheckUnit builds the DES overlap cross-check unit.
func crossCheckUnit(cfg Config, names []string) unit {
	return unit{
		Key: crossCheckKey(cfg, names[0]),
		run: func(wcfg Config) error {
			_, err := CrossCheck(wcfg, names[0])
			return err
		},
	}
}

// evalUnits enumerates the evaluation units of a campaign in
// deterministic order: every platform at the base seed, then — when
// cfg.Replications > 1 — every platform again at each replication seed
// (base+1, base+2, ...). The base-seed evaluations double as replication
// 0, so a replicated campaign never measures the base seed twice.
func evalUnits(cfg Config, names []string) ([]unit, error) {
	var units []unit
	for _, name := range names {
		u, err := evalUnit(cfg, name, cfg.Seed)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	for _, seed := range replicationSeeds(cfg)[1:] {
		for _, name := range names {
			u, err := evalUnit(cfg, name, seed)
			if err != nil {
				return nil, err
			}
			units = append(units, u)
		}
	}
	return units, nil
}

// pipelineUnits enumerates the full Table II pipeline as units: all
// evaluations (replications included), the network sweep and the DES
// cross-check.
func pipelineUnits(cfg Config, names []string) ([]unit, error) {
	units, err := evalUnits(cfg, names)
	if err != nil {
		return nil, err
	}
	units = append(units, netbenchUnit(names), crossCheckUnit(cfg, names))
	return units, nil
}
