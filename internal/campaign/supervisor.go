package campaign

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"memcontention/internal/checkpoint"
	"memcontention/internal/eval"
	"memcontention/internal/obs"
	"memcontention/internal/sweep"
)

// ShardOptions parameterises the supervised sharded executor. The zero
// value runs with GOMAXPROCS workers, three attempts per unit, a
// deterministic exponential backoff, and shard journals in a throwaway
// temporary directory (no resume).
type ShardOptions struct {
	// Workers is the worker count and therefore the shard count
	// (0: GOMAXPROCS). Worker w owns shard journal shard-000w.ckpt.
	Workers int
	// Dir is the shard-set directory holding the per-shard journals, the
	// merged journal and the quarantine report. Empty uses a temporary
	// directory removed after the run — parallelism without resume.
	Dir string
	// MaxAttempts bounds how often one unit may fail (error or panic)
	// before it is quarantined (default 3).
	MaxAttempts int
	// Backoff returns the delay before retry `attempt` (1-based) of a
	// failed unit. The default doubles from 10ms and saturates at 1s —
	// deterministic, no jitter, so campaigns stay reproducible.
	Backoff func(attempt int) time.Duration
	// Sleep waits for the backoff delay; tests inject a no-op. The
	// default honors ctx so graceful shutdown never waits out a backoff.
	Sleep func(ctx context.Context, d time.Duration) error

	// KillHook, when set, is consulted before a worker starts a unit;
	// returning true kills that worker (the goroutine dies as if the OS
	// had killed a process). The supervisor restarts the worker and
	// re-enqueues the unit without charging an attempt — infrastructure
	// kills are not the unit's fault. The soak harness uses this to
	// prove kill-and-resume byte-identity under worker churn.
	KillHook func(shard int, key string) bool
	// FaultHook, when set, runs before each unit attempt and may return
	// an error to inject a unit failure (attempt charged). The poison
	// and retry tests use it.
	FaultHook func(key string, attempt int) error
	// UnitDone, when set, is called after each durably journaled unit
	// with the total completed so far. The soak harness cancels the
	// campaign here to model whole-process kills at unit boundaries.
	UnitDone func(completed int)

	// Worker identifies this executor in the campaign's fleet plane:
	// beacons/<Worker>.json and events/<Worker>.jsonl under Dir (empty:
	// "supervisor"). Only persistent runs (Dir set) get a fleet plane;
	// throwaway temp-dir runs emit nothing.
	Worker string
	// Clock drives the fleet plane's timestamps (nil: obs.WallClock;
	// tests inject obs.SimClock for byte-deterministic beacons).
	Clock obs.Clock
}

func (o ShardOptions) withDefaults() ShardOptions {
	if o.Workers <= 0 {
		o.Workers = sweep.DefaultWorkers()
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Backoff == nil {
		o.Backoff = func(attempt int) time.Duration {
			d := 10 * time.Millisecond << uint(attempt-1)
			if d > time.Second {
				d = time.Second
			}
			return d
		}
	}
	if o.Sleep == nil {
		o.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	return o
}

// workerKill is the panic payload KillHook injects: it kills the worker
// goroutine without blaming the in-flight unit.
type workerKill struct {
	shard int
	key   string
}

// supervisorMetrics are the sharded executor's telemetry instruments;
// with no registry every field is nil and records nothing.
type supervisorMetrics struct {
	units       *obs.Gauge
	done        *obs.Gauge
	quarantined *obs.Counter
	retries     *obs.Counter
	stolen      *obs.Counter
	restarts    *obs.Counter
	shardDone   []*obs.Gauge
	shardPend   []*obs.Gauge
}

func newSupervisorMetrics(r *obs.Registry, shards int) supervisorMetrics {
	m := supervisorMetrics{
		units:       r.Gauge("memcontention_campaign_units", "Experiment units in the sharded campaign.", nil),
		done:        r.Gauge("memcontention_campaign_units_done", "Experiment units completed (journaled), all shards.", nil),
		quarantined: r.Counter("memcontention_campaign_units_quarantined_total", "Units quarantined after exhausting their retry budget.", nil),
		retries:     r.Counter("memcontention_campaign_unit_retries_total", "Unit attempts retried after a failure.", nil),
		stolen:      r.Counter("memcontention_campaign_units_stolen_total", "Units executed by a worker other than their home shard.", nil),
		restarts:    r.Counter("memcontention_campaign_worker_restarts_total", "Workers restarted by the supervisor after a kill or panic.", nil),
	}
	for i := 0; i < shards; i++ {
		lbl := obs.L{"shard": fmt.Sprintf("%d", i)}
		m.shardDone = append(m.shardDone, r.Gauge("memcontention_campaign_shard_units_done", "Completed units by home shard.", lbl))
		m.shardPend = append(m.shardPend, r.Gauge("memcontention_campaign_shard_units_pending", "Pending units by home shard.", lbl))
	}
	return m
}

// unitState tracks one unit through the scheduler.
type unitState struct {
	unit     unit
	shard    int // home shard
	attempts int
	lastErr  error
}

// Supervisor executes a unit set across a pool of workers it supervises:
// work-stealing scheduling over per-shard queues, per-shard append-only
// journals, bounded retries with backoff, quarantine for poison units,
// and worker restart after kills or panics. Create one with
// newSupervisor and drive it with run; the exported entry points
// (ShardedPipeline, ShardedEvaluate) wrap it for the standard campaigns.
type Supervisor struct {
	cfg  Config
	opts ShardOptions
	set  *checkpoint.ShardSet
	m    supervisorMetrics
	fo   *fleetObs // fleet plane of persistent runs; nil for temp dirs

	mu   sync.Mutex
	cond *sync.Cond
	// memlint:guard mu
	queues [][]*unitState // pending, per home shard
	// memlint:guard mu
	inflight int
	// memlint:guard mu
	unitsAll int
	// memlint:guard mu
	doneKeys map[string]bool
	// memlint:guard mu
	perShard []shardCounters
	// memlint:guard mu
	quar []QuarantineRecord
	// memlint:guard mu
	restarts int
	// memlint:guard mu
	stolen int
	// memlint:guard mu
	canceled bool

	journals []*checkpoint.Journal
}

// shardCounters aggregates one home shard's progress for ProgressReport.
type shardCounters struct {
	done        int
	pending     int
	quarantined int
}

func newSupervisor(cfg Config, opts ShardOptions) (*Supervisor, error) {
	cfg = cfg.withDefaults()
	opts = opts.withDefaults()
	set, err := checkpoint.OpenShardSet(opts.Dir)
	if err != nil {
		return nil, err
	}
	s := &Supervisor{
		cfg:      cfg,
		opts:     opts,
		set:      set,
		m:        newSupervisorMetrics(cfg.Registry, opts.Workers),
		doneKeys: make(map[string]bool),
		queues:   make([][]*unitState, opts.Workers),
		perShard: make([]shardCounters, opts.Workers),
	}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// loadDone unions the keys of every existing shard journal (previous
// runs included, even wider ones) into the done set.
func (s *Supervisor) loadDone() error {
	paths, err := s.set.Paths()
	if err != nil {
		return err
	}
	entries, err := checkpoint.MergeShardFiles(paths)
	if err != nil {
		return err
	}
	s.mu.Lock()
	for _, e := range entries {
		s.doneKeys[e.Key] = true
	}
	s.mu.Unlock()
	return nil
}

// openJournals opens this run's per-worker shard journals.
func (s *Supervisor) openJournals() error {
	s.journals = make([]*checkpoint.Journal, s.opts.Workers)
	for i := range s.journals {
		j, err := s.set.OpenShard(i)
		if err != nil {
			s.closeJournals()
			return err
		}
		j.SetRegistry(s.cfg.Registry)
		s.journals[i] = j
	}
	return nil
}

func (s *Supervisor) closeJournals() {
	for _, j := range s.journals {
		j.Close()
	}
	s.journals = nil
}

// enqueue distributes the not-yet-done units to their home shard queues.
func (s *Supervisor) enqueue(units []unit) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.unitsAll = len(units)
	for _, u := range units {
		home := homeShard(u.Key, s.opts.Workers)
		if s.doneKeys[u.Key] {
			s.perShard[home].done++
			continue
		}
		s.queues[home] = append(s.queues[home], &unitState{unit: u, shard: home})
		s.perShard[home].pending++
	}
	s.m.units.Set(float64(s.unitsAll))
	s.publishLocked()
}

// publishLocked refreshes the progress gauges; callers hold mu.
func (s *Supervisor) publishLocked() {
	done := 0
	for i, c := range s.perShard {
		done += c.done
		s.m.shardDone[i].Set(float64(c.done))
		s.m.shardPend[i].Set(float64(c.pending))
	}
	s.m.done.Set(float64(done))
}

// next hands worker w its next unit: its own queue first, then — work
// stealing — the head of the longest other queue. It blocks while every
// pending unit is in flight (a retry may come back) and returns nil once
// nothing is pending or in flight, or the campaign is canceled.
func (s *Supervisor) next(w int) *unitState {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.canceled {
			return nil
		}
		if len(s.queues[w]) > 0 {
			st := s.queues[w][0]
			s.queues[w] = s.queues[w][1:]
			s.inflight++
			return st
		}
		// Steal from the richest queue; ties go to the lowest shard so
		// scheduling stays deterministic given identical queue states.
		victim, best := -1, 0
		for i := range s.queues {
			if n := len(s.queues[i]); n > best {
				victim, best = i, n
			}
		}
		if victim >= 0 {
			st := s.queues[victim][0]
			s.queues[victim] = s.queues[victim][1:]
			s.inflight++
			s.stolen++
			s.m.stolen.Inc()
			return st
		}
		if s.inflight == 0 {
			return nil
		}
		s.cond.Wait()
	}
}

// complete records a successful unit.
func (s *Supervisor) complete(st *unitState) {
	s.mu.Lock()
	s.inflight--
	s.doneKeys[st.unit.Key] = true
	s.perShard[st.shard].done++
	s.perShard[st.shard].pending--
	s.publishLocked()
	completed := 0
	for _, c := range s.perShard {
		completed += c.done
	}
	hook := s.opts.UnitDone
	s.cond.Broadcast()
	s.mu.Unlock()
	s.fo.unitDone(st.shard)
	if hook != nil {
		hook(completed)
	}
}

// fail charges a failed attempt: re-enqueue on the home shard below the
// attempt budget, quarantine at it.
func (s *Supervisor) fail(st *unitState, cause error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight--
	st.attempts++
	st.lastErr = cause
	if st.attempts < s.opts.MaxAttempts {
		s.queues[st.shard] = append(s.queues[st.shard], st)
		s.m.retries.Inc()
		s.cond.Broadcast()
		return
	}
	uerr := &UnitError{Key: st.unit.Key, Shard: st.shard, Attempts: st.attempts, Err: cause}
	s.quar = append(s.quar, QuarantineRecord{
		Key:      st.unit.Key,
		Shard:    st.shard,
		Attempts: st.attempts,
		Error:    uerr.Error(),
	})
	s.perShard[st.shard].quarantined++
	s.perShard[st.shard].pending--
	s.m.quarantined.Inc()
	// fleetObs has its own lock and never takes s.mu, so emitting under
	// the supervisor lock cannot deadlock.
	s.fo.quarantined(st.shard, st.unit.Key, uerr.Error())
	s.cond.Broadcast()
}

// requeue puts a unit whose worker was killed back at the front of its
// home queue, attempt budget untouched.
func (s *Supervisor) requeue(st *unitState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight--
	s.queues[st.shard] = append([]*unitState{st}, s.queues[st.shard]...)
	s.cond.Broadcast()
}

// cancel wakes every worker so the drain finishes promptly.
func (s *Supervisor) cancel() {
	s.mu.Lock()
	s.canceled = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// runUnit executes one attempt of st on worker w. Panics escape to the
// worker loop (the worker dies and is restarted; the supervisor decides
// whether the unit is charged).
func (s *Supervisor) runUnit(w int, st *unitState) error {
	if s.opts.FaultHook != nil {
		if err := s.opts.FaultHook(st.unit.Key, st.attempts+1); err != nil {
			return err
		}
	}
	if st.attempts > 0 {
		if err := s.opts.Sleep(s.cfg.ctx(), s.opts.Backoff(st.attempts)); err != nil {
			return err
		}
	}
	wcfg := s.cfg
	wcfg.Journal = s.journals[w]
	wcfg.Workers = 1 // the unit is the parallelism grain
	if err := st.unit.run(wcfg); err != nil {
		return err
	}
	if !wcfg.Journal.Has(st.unit.Key) {
		return fmt.Errorf("campaign: unit %s completed without journaling its key", st.unit.Key)
	}
	return nil
}

// worker is one supervised worker goroutine. It reports its own death
// (kill or panic) on died; a clean drain reports on drained.
func (s *Supervisor) worker(w int, ctx context.Context, died chan<- workerDeath, drained chan<- int) {
	var current *unitState
	defer func() {
		if p := recover(); p != nil {
			died <- workerDeath{worker: w, unit: current, cause: p}
		}
	}()
	for {
		if ctx.Err() != nil {
			s.cancel()
		}
		st := s.next(w)
		if st == nil {
			drained <- w
			return
		}
		current = st
		if s.opts.KillHook != nil && s.opts.KillHook(w, st.unit.Key) {
			panic(workerKill{shard: w, key: st.unit.Key})
		}
		err := s.runUnit(w, st)
		current = nil
		switch {
		case err == nil:
			s.complete(st)
		case checkpoint.IsCanceled(err):
			// A canceled unit did not fail — it must re-run on resume.
			s.requeue(st)
			s.cancel()
		default:
			s.fail(st, err)
		}
	}
}

// workerDeath reports a worker that died with the unit it was holding.
type workerDeath struct {
	worker int
	unit   *unitState
	cause  any
}

// run executes units to completion: started workers are supervised and
// restarted when they die, failed units retry with backoff and
// quarantine when poisoned, and a context cancellation drains the pool
// at unit boundaries. It returns the quarantine records (already written
// to quarantine.jsonl in the shard directory) alongside any campaign
// error.
func (s *Supervisor) run(units []unit) ([]QuarantineRecord, error) {
	if err := s.loadDone(); err != nil {
		return nil, err
	}
	if err := s.openJournals(); err != nil {
		return nil, err
	}
	defer s.closeJournals()
	s.enqueue(units)
	if s.fo != nil {
		for _, sp := range s.Progress().Shards {
			s.fo.shardView(sp.Shard, sp.Done, sp.Pending)
		}
		s.fo.beacon()
	}

	ctx := s.cfg.ctx()
	died := make(chan workerDeath)
	drained := make(chan int)
	for w := 0; w < s.opts.Workers; w++ {
		go s.worker(w, ctx, died, drained)
	}
	alive := s.opts.Workers
	for alive > 0 {
		select {
		case d := <-died:
			// Restart the worker; decide what its in-flight unit pays.
			if d.unit != nil {
				if _, killed := d.cause.(workerKill); killed {
					s.requeue(d.unit)
				} else {
					s.fail(d.unit, fmt.Errorf("campaign: worker %d panic: %v", d.worker, d.cause))
				}
			}
			s.mu.Lock()
			s.restarts++
			s.mu.Unlock()
			s.m.restarts.Inc()
			go s.worker(d.worker, ctx, died, drained)
		case <-drained:
			alive--
		}
	}

	s.mu.Lock()
	quar := append([]QuarantineRecord(nil), s.quar...)
	s.mu.Unlock()
	if err := writeQuarantine(filepath.Join(s.set.Dir(), QuarantineFile), quar); err != nil {
		return quar, err
	}
	if err := ctx.Err(); err != nil {
		return quar, fmt.Errorf("campaign: sharded run interrupted: %w", err)
	}
	return quar, nil
}

// Progress reports the sharded campaign's completion state per home
// shard plus the quarantine, steal and restart totals; the same numbers
// feed the memcontention_campaign_* gauges.
func (s *Supervisor) Progress() ProgressReport {
	if s == nil {
		return ProgressReport{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p := ProgressReport{
		Units:    s.unitsAll,
		Restarts: s.restarts,
		Stolen:   s.stolen,
	}
	for i, c := range s.perShard {
		p.Shards = append(p.Shards, ShardProgress{
			Shard:       i,
			Done:        c.done,
			Pending:     c.pending,
			Quarantined: c.quarantined,
		})
		p.Done += c.done
		p.Quarantined += c.quarantined
	}
	return p
}

// ShardResult is the outcome of a sharded campaign run.
type ShardResult struct {
	// Artifacts holds the assembled pipeline artifacts (ShardedPipeline
	// only; nil when units were quarantined).
	Artifacts *Artifacts
	// Platforms holds the assembled evaluations in input order
	// (ShardedEvaluate only; nil when units were quarantined).
	Platforms []*eval.PlatformResult
	// Quarantine lists the quarantined units, sorted by key; the same
	// records are in quarantine.jsonl under Dir.
	Quarantine []QuarantineRecord
	// Progress is the final per-shard completion report.
	Progress ProgressReport
	// Dir is the shard-set directory (journal files, merged journal,
	// quarantine report).
	Dir string
}

// shardedRun is the common core of ShardedPipeline and ShardedEvaluate:
// enumerate units, execute them supervised, merge the shard journals and
// assemble through the sequential path against the merged journal.
func shardedRun(cfg Config, opts ShardOptions, names []string,
	enumerate func(Config, []string) ([]unit, error),
	assemble func(Config, []string, *ShardResult) error,
) (*ShardResult, error) {
	cfg = cfg.withDefaults()
	if len(names) == 0 {
		names = TestbedNames()
	}
	opts = opts.withDefaults()
	persistent := opts.Dir != ""
	if opts.Dir == "" {
		tmp, err := os.MkdirTemp("", "memcontention-shards-*")
		if err != nil {
			return nil, fmt.Errorf("campaign: shard dir: %w", err)
		}
		defer os.RemoveAll(tmp)
		opts.Dir = tmp
	}

	units, err := enumerate(cfg, names)
	if err != nil {
		return nil, err
	}
	sup, err := newSupervisor(cfg, opts)
	if err != nil {
		return nil, err
	}
	if persistent {
		worker := opts.Worker
		if worker == "" {
			worker = "supervisor"
		}
		fo, ferr := newFleetObs(opts.Dir, worker, "", 0, opts.Clock, cfg.Registry)
		if ferr != nil {
			return nil, ferr
		}
		sup.fo = fo
		fo.join()
	}
	quar, err := sup.run(units)
	switch {
	case err == nil && len(quar) == 0:
		sup.fo.finish(WorkerDrained, EventWorkerDrain, "")
	case err == nil:
		sup.fo.finish(WorkerDrained, EventWorkerDrain, fmt.Sprintf("%d units quarantined", len(quar)))
	case checkpoint.IsCanceled(err):
		sup.fo.finish(WorkerStopped, EventWorkerStop, "canceled")
	default:
		sup.fo.finish(WorkerFailed, EventWorkerStop, err.Error())
	}
	res := &ShardResult{Quarantine: quar, Progress: sup.Progress(), Dir: opts.Dir}
	if err != nil {
		return res, err
	}
	if len(quar) > 0 {
		return res, &QuarantineError{Records: quar, Path: filepath.Join(opts.Dir, QuarantineFile)}
	}

	// Deterministic merge: the shard journals collapse into one merged
	// journal (sorted by key, byte-deterministic), and the sequential
	// assembly replays against it — every unit hits the journal, so the
	// artifacts are the sequential path's artifacts, byte for byte.
	merged, err := mergeShardSet(opts.Dir)
	if err != nil {
		return res, err
	}
	defer merged.Close()
	mcfg := cfg
	mcfg.Journal = merged
	mcfg.Context = nil // assembly reads the journal; nothing to cancel
	if err := assemble(mcfg, names, res); err != nil {
		return res, err
	}
	return res, nil
}

// ShardedPipeline is Pipeline on the supervised sharded executor: the
// same units, the same artifacts — proven byte-identical — but executed
// by opts.Workers supervised workers with per-shard journals, work
// stealing, retries, quarantine and kill-and-resume via opts.Dir.
func ShardedPipeline(cfg Config, opts ShardOptions, names []string) (*ShardResult, error) {
	return shardedRun(cfg, opts, names, pipelineUnits,
		func(mcfg Config, names []string, res *ShardResult) error {
			art, err := Pipeline(mcfg, names)
			if err != nil {
				return err
			}
			res.Artifacts = art
			return nil
		})
}

// ShardedEvaluate is EvaluatePlatforms (plus the replication sweep when
// cfg.Replications > 1) on the supervised sharded executor.
func ShardedEvaluate(cfg Config, opts ShardOptions, names []string) (*ShardResult, error) {
	return shardedRun(cfg, opts, names, evalUnits,
		func(mcfg Config, names []string, res *ShardResult) error {
			results, err := EvaluatePlatforms(mcfg, names)
			if err != nil {
				return err
			}
			res.Platforms = results
			if mcfg.Replications > 1 {
				rep, err := Replicate(mcfg, names, results)
				if err != nil {
					return err
				}
				if res.Artifacts == nil {
					res.Artifacts = &Artifacts{Seed: mcfg.Seed, Platforms: results}
				}
				res.Artifacts.Replications = rep
			}
			return nil
		})
}

// mergeShardSet merges every shard journal under dir into
// dir/merged.ckpt and opens it.
func mergeShardSet(dir string) (*checkpoint.Journal, error) {
	set, err := checkpoint.OpenShardSet(dir)
	if err != nil {
		return nil, err
	}
	paths, err := set.Paths()
	if err != nil {
		return nil, err
	}
	entries, err := checkpoint.MergeShardFiles(paths)
	if err != nil {
		return nil, err
	}
	path := filepath.Join(dir, "merged.ckpt")
	if err := checkpoint.WriteJournal(path, entries); err != nil {
		return nil, err
	}
	return checkpoint.Open(path)
}
