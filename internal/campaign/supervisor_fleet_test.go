package campaign

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestShardedPipelineFleetPlane proves the in-process sharded executor
// participates in the fleet plane exactly like a remote worker: a
// persistent run writes a beacon and an event journal an operator can
// read with memtop while (and after) the campaign runs.
func TestShardedPipelineFleetPlane(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "campaign")
	clk := newRemoteClock()
	res, err := ShardedPipeline(Config{Seed: 1}, ShardOptions{
		Workers: 4,
		Dir:     dir,
		Sleep:   noSleep,
		Worker:  "sup-test",
		Clock:   clk.Now,
	}, testNames)
	if err != nil {
		t.Fatal(err)
	}
	if res.Artifacts == nil {
		t.Fatal("sharded run produced no artifacts")
	}

	beacons, err := ReadBeacons(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(beacons) != 1 || beacons[0].Worker != "sup-test" {
		t.Fatalf("beacons: %+v, want one for sup-test", beacons)
	}
	b := beacons[0]
	if b.State != WorkerDrained {
		t.Fatalf("terminal beacon state %q, want drained", b.State)
	}
	if b.Units != res.Progress.Done || b.Units == 0 {
		t.Fatalf("beacon units %d, progress done %d", b.Units, res.Progress.Done)
	}
	// The beacon's shard views agree with the supervisor's own report.
	if len(b.Shards) != len(res.Progress.Shards) {
		t.Fatalf("beacon has %d shard views, progress %d", len(b.Shards), len(res.Progress.Shards))
	}
	for i, s := range b.Shards {
		if s != res.Progress.Shards[i] {
			t.Fatalf("shard view %d diverges: beacon %+v, progress %+v", i, s, res.Progress.Shards[i])
		}
	}

	events, err := ReadEvents(dir)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[EventType]int{}
	for _, e := range events {
		counts[e.Type]++
		if e.Worker != "sup-test" {
			t.Fatalf("event from unexpected worker: %+v", e)
		}
	}
	if counts[EventWorkerJoin] != 1 || counts[EventWorkerDrain] != 1 {
		t.Fatalf("lifecycle events: %v", counts)
	}
}

// TestShardedPipelineFleetPlaneQuarantine checks the poison path: each
// quarantined unit lands in the event journal with its key, and the
// drain detail says how many units were left behind.
func TestShardedPipelineFleetPlaneQuarantine(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "campaign")
	clk := newRemoteClock()
	poison := "unit|netbench|" + testNames[0]
	_, err := ShardedPipeline(Config{Seed: 1}, ShardOptions{
		Workers:     4,
		Dir:         dir,
		MaxAttempts: 2,
		Sleep:       noSleep,
		Worker:      "sup-test",
		Clock:       clk.Now,
		FaultHook: func(key string, attempt int) error {
			if key == poison {
				return errors.New("poison unit")
			}
			return nil
		},
	}, testNames)
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("err = %v, want quarantine", err)
	}

	events, err := ReadEvents(dir)
	if err != nil {
		t.Fatal(err)
	}
	var quarEvents, drains []Event
	for _, e := range events {
		switch e.Type {
		case EventUnitQuarantine:
			quarEvents = append(quarEvents, e)
		case EventWorkerDrain:
			drains = append(drains, e)
		}
	}
	if len(quarEvents) != 1 || quarEvents[0].Key != poison {
		t.Fatalf("quarantine events: %+v, want exactly one for %s", quarEvents, poison)
	}
	if quarEvents[0].Shard != homeShard(poison, 4) {
		t.Fatalf("quarantine event shard %d, home shard %d", quarEvents[0].Shard, homeShard(poison, 4))
	}
	if len(drains) != 1 || !strings.Contains(drains[0].Detail, "1 units quarantined") {
		t.Fatalf("drain events: %+v, want one with the quarantine detail", drains)
	}

	beacons, err := ReadBeacons(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(beacons) != 1 || beacons[0].State != WorkerDrained {
		t.Fatalf("beacons after quarantine: %+v", beacons)
	}
	var q int
	for _, s := range beacons[0].Shards {
		q += s.Quarantined
	}
	if q != 1 {
		t.Fatalf("beacon shard views carry %d quarantined, want 1", q)
	}
}

// TestShardedPipelineTempDirSkipsFleetPlane pins the opt-in contract: a
// throwaway run (no Dir) must not write beacons or events anywhere.
func TestShardedPipelineTempDirSkipsFleetPlane(t *testing.T) {
	res, err := ShardedPipeline(Config{Seed: 1}, ShardOptions{Workers: 2, Sleep: noSleep}, testNames)
	if err != nil {
		t.Fatal(err)
	}
	// The temp dir is already removed; the result records where it was.
	if res.Dir == "" {
		t.Fatal("result lost the shard dir")
	}
	if _, err := os.Stat(res.Dir); !os.IsNotExist(err) {
		t.Fatalf("temp shard dir survived: %v", err)
	}
}

// TestShardedPipelineBeaconDeterministic runs the same persistent
// campaign twice under the same manual clock and compares the beacon
// and event-journal bytes — the fleet plane's determinism contract.
func TestShardedPipelineBeaconDeterministic(t *testing.T) {
	read := func(t *testing.T, i int) (beacon, journal []byte) {
		t.Helper()
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("campaign-%d", i))
		clk := newRemoteClock()
		if _, err := ShardedPipeline(Config{Seed: 1}, ShardOptions{
			Workers: 4, Dir: dir, Sleep: noSleep, Worker: "sup", Clock: clk.Now,
		}, testNames); err != nil {
			t.Fatal(err)
		}
		beacon, err := os.ReadFile(filepath.Join(dir, BeaconsDir, "sup.json"))
		if err != nil {
			t.Fatal(err)
		}
		journal, err = os.ReadFile(filepath.Join(dir, EventsDir, "sup.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		return beacon, journal
	}
	b0, j0 := read(t, 0)
	b1, j1 := read(t, 1)
	if string(b0) != string(b1) {
		t.Fatalf("beacons differ across identical runs:\n%s\n%s", b0, b1)
	}
	if string(j0) != string(j1) {
		t.Fatalf("event journals differ across identical runs:\n%s\n%s", j0, j1)
	}
}
