package campaign

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"memcontention/internal/checkpoint"
	"memcontention/internal/obs"
)

// noSleep removes retry backoff from tests.
func noSleep(context.Context, time.Duration) error { return nil }

// writeSeqBaseline runs the sequential pipeline and returns its artifact
// bytes — the reference every sharded run must reproduce exactly.
func writeSeqBaseline(t *testing.T, cfg Config) map[string][]byte {
	t.Helper()
	art, err := Pipeline(cfg, testNames)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "seq")
	if err := art.Write(dir); err != nil {
		t.Fatal(err)
	}
	return readArtifacts(t, dir)
}

// assertSameArtifacts compares two artifact sets byte for byte.
func assertSameArtifacts(t *testing.T, want, got map[string][]byte) {
	t.Helper()
	if len(want) != len(got) || len(want) == 0 {
		t.Fatalf("artifact sets differ: %d vs %d files", len(want), len(got))
	}
	for name, w := range want {
		if !bytes.Equal(w, got[name]) {
			t.Errorf("artifact %s differs from the sequential baseline", name)
		}
	}
}

func TestShardedPipelineByteIdenticalToSequential(t *testing.T) {
	want := writeSeqBaseline(t, Config{Seed: 1})

	res, err := ShardedPipeline(Config{Seed: 1}, ShardOptions{Workers: 8, Sleep: noSleep}, testNames)
	if err != nil {
		t.Fatal(err)
	}
	if res.Artifacts == nil {
		t.Fatal("sharded run produced no artifacts")
	}
	dir := filepath.Join(t.TempDir(), "sharded")
	if err := res.Artifacts.Write(dir); err != nil {
		t.Fatal(err)
	}
	assertSameArtifacts(t, want, readArtifacts(t, dir))

	p := res.Progress
	if p.Done != p.Units || p.Units == 0 {
		t.Fatalf("progress %d/%d, want all done", p.Done, p.Units)
	}
	if p.Quarantined != 0 || len(res.Quarantine) != 0 {
		t.Fatalf("clean run quarantined %d units", p.Quarantined)
	}
	if len(p.Shards) != 8 {
		t.Fatalf("progress covers %d shards, want 8", len(p.Shards))
	}
}

func TestShardedPipelineSurvivesWorkerKills(t *testing.T) {
	want := writeSeqBaseline(t, Config{Seed: 1})

	// Kill the first 6 unit starts, each on whatever worker picked the
	// unit up; the supervisor must restart them all and still finish.
	var mu sync.Mutex
	kills := 0
	reg := obs.NewRegistry()
	res, err := ShardedPipeline(Config{Seed: 1, Registry: reg}, ShardOptions{
		Workers: 4,
		Sleep:   noSleep,
		KillHook: func(shard int, key string) bool {
			mu.Lock()
			defer mu.Unlock()
			if kills < 6 {
				kills++
				return true
			}
			return false
		},
	}, testNames)
	if err != nil {
		t.Fatal(err)
	}
	if kills != 6 {
		t.Fatalf("killed %d workers, want 6", kills)
	}
	if res.Progress.Restarts < 6 {
		t.Fatalf("progress reports %d restarts, want >= 6", res.Progress.Restarts)
	}
	if len(res.Quarantine) != 0 {
		t.Fatalf("infrastructure kills quarantined units: %+v", res.Quarantine)
	}
	dir := filepath.Join(t.TempDir(), "sharded")
	if err := res.Artifacts.Write(dir); err != nil {
		t.Fatal(err)
	}
	assertSameArtifacts(t, want, readArtifacts(t, dir))
}

func TestShardedPipelineTransientFaultRetries(t *testing.T) {
	want := writeSeqBaseline(t, Config{Seed: 1})

	// Every unit fails its first attempt; the retry budget absorbs it.
	var mu sync.Mutex
	failed := map[string]bool{}
	res, err := ShardedPipeline(Config{Seed: 1}, ShardOptions{
		Workers: 4,
		Sleep:   noSleep,
		FaultHook: func(key string, attempt int) error {
			mu.Lock()
			defer mu.Unlock()
			if !failed[key] {
				failed[key] = true
				return errors.New("transient fault injected")
			}
			return nil
		},
	}, testNames)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantine) != 0 {
		t.Fatalf("transient faults quarantined units: %+v", res.Quarantine)
	}
	dir := filepath.Join(t.TempDir(), "sharded")
	if err := res.Artifacts.Write(dir); err != nil {
		t.Fatal(err)
	}
	assertSameArtifacts(t, want, readArtifacts(t, dir))
}

func TestShardedPipelinePoisonUnitQuarantined(t *testing.T) {
	shardDir := t.TempDir()
	poison := "unit|netbench|" + testNames[0]
	res, err := ShardedPipeline(Config{Seed: 1}, ShardOptions{
		Workers:     4,
		Dir:         shardDir,
		MaxAttempts: 2,
		Sleep:       noSleep,
		FaultHook: func(key string, attempt int) error {
			if key == poison {
				return errors.New("poison unit")
			}
			return nil
		},
	}, testNames)

	var qerr *QuarantineError
	if !errors.As(err, &qerr) {
		t.Fatalf("err = %v, want *QuarantineError", err)
	}
	if !errors.Is(err, ErrQuarantined) {
		t.Fatal("quarantine error does not wrap ErrQuarantined")
	}
	if res.Artifacts != nil {
		t.Fatal("quarantined campaign still assembled artifacts")
	}
	if len(qerr.Records) != 1 || qerr.Records[0].Key != poison {
		t.Fatalf("quarantine records = %+v, want only %q", qerr.Records, poison)
	}
	if qerr.Records[0].Attempts != 2 {
		t.Fatalf("poison unit got %d attempts, want 2", qerr.Records[0].Attempts)
	}
	if !strings.Contains(qerr.Records[0].Error, "poison unit") {
		t.Fatalf("quarantine record lost the cause: %q", qerr.Records[0].Error)
	}

	// The report is durable, structured and re-readable — never silent.
	disk, err := ReadQuarantine(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(disk) != 1 || disk[0] != qerr.Records[0] {
		t.Fatalf("quarantine.jsonl = %+v, want %+v", disk, qerr.Records)
	}

	// Every healthy unit still completed despite the poison one.
	p := res.Progress
	if p.Quarantined != 1 || p.Done != p.Units-1 {
		t.Fatalf("progress = %+v, want all but the poison unit done", p)
	}
}

func TestShardedPipelineKillAndResumeByteIdentical(t *testing.T) {
	want := writeSeqBaseline(t, Config{Seed: 1})
	shardDir := t.TempDir()

	// First attempt: cancel the campaign after 3 completed units — a
	// whole-process kill at a unit boundary.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := ShardOptions{
		Workers: 4,
		Dir:     shardDir,
		Sleep:   noSleep,
		UnitDone: func(completed int) {
			if completed == 3 {
				cancel()
			}
		},
	}
	res, err := ShardedPipeline(Config{Seed: 1, Context: ctx}, opts, testNames)
	if err == nil {
		t.Fatal("interrupted sharded campaign returned no error")
	}
	if !checkpoint.IsCanceled(err) {
		t.Fatalf("interrupted err = %v, want cancellation", err)
	}
	if res == nil || res.Progress.Done < 3 {
		t.Fatalf("interruption lost completed units: %+v", res)
	}

	// Resume in the same shard directory: completed units are journal
	// hits, the rest run, and the merge reproduces the sequential bytes.
	opts.UnitDone = nil
	res2, err := ShardedPipeline(Config{Seed: 1}, opts, testNames)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "resumed")
	if err := res2.Artifacts.Write(dir); err != nil {
		t.Fatal(err)
	}
	assertSameArtifacts(t, want, readArtifacts(t, dir))
}

func TestShardedEvaluateReplicationsMatchSequential(t *testing.T) {
	cfg := Config{Seed: 1, Replications: 3}
	want, err := Replicate(cfg, testNames, nil)
	if err != nil {
		t.Fatal(err)
	}

	res, err := ShardedEvaluate(cfg, ShardOptions{Workers: 6, Sleep: noSleep}, testNames)
	if err != nil {
		t.Fatal(err)
	}
	if res.Artifacts == nil || res.Artifacts.Replications == nil {
		t.Fatal("sharded evaluate produced no replication summary")
	}
	got := res.Artifacts.Replications
	wj, err := marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gj, err := marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wj, gj) {
		t.Fatalf("sharded replication summary differs:\n%s\nvs sequential:\n%s", gj, wj)
	}
	if got.Replications != 3 || len(got.Seeds) != 3 || got.Seeds[0] != 1 {
		t.Fatalf("replication metadata = %+v", got)
	}
	for _, p := range got.Platforms {
		if p.Average.StdDev < 0 || p.Average.CI95 < 0 {
			t.Fatalf("negative dispersion in %+v", p)
		}
	}
}

func TestShardedCampaignMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	_, err := ShardedPipeline(Config{Seed: 1, Registry: reg}, ShardOptions{Workers: 2, Sleep: noSleep}, testNames)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"memcontention_campaign_units",
		"memcontention_campaign_units_done",
		"memcontention_campaign_shard_units_done",
		"memcontention_campaign_shard_units_pending",
		"memcontention_campaign_units_quarantined_total",
		"memcontention_campaign_worker_restarts_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %s", want)
		}
	}
}

func TestHomeShardStableAndInRange(t *testing.T) {
	keys := []string{"eval|a", "eval|b", "unit|netbench|henri", "xcheck|henri"}
	for _, k := range keys {
		s := homeShard(k, 8)
		if s < 0 || s >= 8 {
			t.Fatalf("homeShard(%q, 8) = %d", k, s)
		}
		if s != homeShard(k, 8) {
			t.Fatalf("homeShard(%q) not deterministic", k)
		}
	}
	if homeShard("anything", 1) != 0 {
		t.Fatal("single shard must own every unit")
	}
}

func TestProgressReportString(t *testing.T) {
	p := ProgressReport{
		Units: 5, Done: 3, Quarantined: 1, Restarts: 2, Stolen: 4,
		Shards: []ShardProgress{
			{Shard: 0, Done: 2, Pending: 0, Quarantined: 1},
			{Shard: 1, Done: 1, Pending: 1, Quarantined: 0},
		},
	}
	s := p.String()
	for _, want := range []string{"3/5 units done", "1 quarantined", "2 restarts", "4 stolen", "shard 0: 2 done", "shard 1: 1 done, 1 pending"} {
		if !strings.Contains(s, want) {
			t.Errorf("ProgressReport.String() = %q, missing %q", s, want)
		}
	}
}

func TestReadQuarantineMissingAndMalformed(t *testing.T) {
	dir := t.TempDir()
	recs, err := ReadQuarantine(dir)
	if err != nil || recs != nil {
		t.Fatalf("missing quarantine file: recs=%v err=%v", recs, err)
	}
	path := filepath.Join(dir, QuarantineFile)
	if err := os.WriteFile(path, []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadQuarantine(dir); err == nil {
		t.Fatal("malformed quarantine line accepted")
	}
}
