package checkpoint

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestParseShardFile(t *testing.T) {
	cases := []struct {
		name  string
		shard int
		epoch uint64
		ok    bool
	}{
		{"shard-0000.ckpt", 0, 0, true},
		{"shard-0012.ckpt", 12, 0, true},
		{"shard-0003.e7.ckpt", 3, 7, true},
		{"shard-0003.e18446744073709551615.ckpt", 3, 18446744073709551615, true},
		{"shard-0003.e0.ckpt", 0, 0, false},   // epoch 0 is not a valid epoch file
		{"shard-0003.eX.ckpt", 0, 0, false},   // non-numeric epoch
		{"shard--001.ckpt", 0, 0, false},      // negative shard
		{"shard-0003.e7.lease", 0, 0, false},  // wrong suffix
		{"merged.ckpt", 0, 0, false},          // wrong prefix
		{"quarantine.jsonl", 0, 0, false},
	}
	for _, tc := range cases {
		shard, epoch, ok := ParseShardFile(tc.name)
		if shard != tc.shard || epoch != tc.epoch || ok != tc.ok {
			t.Errorf("ParseShardFile(%q) = (%d, %d, %v), want (%d, %d, %v)",
				tc.name, shard, epoch, ok, tc.shard, tc.epoch, tc.ok)
		}
	}
}

func TestEpochShardPathsAndMaxEpoch(t *testing.T) {
	dir := t.TempDir()
	set, err := OpenShardSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	record := func(j *Journal, key string) {
		t.Helper()
		if err := j.Record(key, 1); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	j0, err := set.OpenShard(0)
	if err != nil {
		t.Fatal(err)
	}
	record(j0, "a")
	j1, err := set.OpenEpochShard(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	record(j1, "b")
	j2, err := set.OpenEpochShard(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	record(j2, "c")
	j3, err := set.OpenEpochShard(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	record(j3, "d")

	if max, err := set.MaxEpoch(0); err != nil || max != 5 {
		t.Fatalf("MaxEpoch(0) = %d, %v; want 5, nil", max, err)
	}
	if max, err := set.MaxEpoch(1); err != nil || max != 3 {
		t.Fatalf("MaxEpoch(1) = %d, %v; want 3, nil", max, err)
	}
	if max, err := set.MaxEpoch(2); err != nil || max != 0 {
		t.Fatalf("MaxEpoch(2) = %d, %v; want 0, nil", max, err)
	}

	files, err := set.ShardFiles(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("ShardFiles(0) = %v, want 3 files", files)
	}

	// Paths lists plain and epoch journals together, so MergeShardFiles
	// unions every epoch.
	paths, err := set.Paths()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("Paths() = %v, want 4 journals", paths)
	}
	entries, err := MergeShardFiles(paths)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, e := range entries {
		keys = append(keys, e.Key)
	}
	if want := []string{"a", "b", "c", "d"}; !reflect.DeepEqual(keys, want) {
		t.Fatalf("merged keys = %v, want %v", keys, want)
	}

	// OpenEpochShard rejects the reserved epoch 0.
	if _, err := set.OpenEpochShard(0, 0); err == nil {
		t.Fatal("OpenEpochShard(0, 0) must fail: epoch 0 is the plain journal")
	}
}

// TestDeadEpochAppendsMergeCleanly models the zombie write path: a
// deposed owner appends the *same deterministic payload* for a unit the
// new owner also completed, into its own dead-epoch file. The merge
// unions both without conflict; a *different* payload (real
// nondeterminism or corruption) must still fail loudly.
func TestDeadEpochAppendsMergeCleanly(t *testing.T) {
	dir := t.TempDir()
	set, err := OpenShardSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	zombie, err := set.OpenEpochShard(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := zombie.Record("unit|x", map[string]int{"v": 7}); err != nil {
		t.Fatal(err)
	}
	if err := zombie.Close(); err != nil {
		t.Fatal(err)
	}
	owner, err := set.OpenEpochShard(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.Record("unit|x", map[string]int{"v": 7}); err != nil {
		t.Fatal(err)
	}
	if err := owner.Record("unit|y", 1); err != nil {
		t.Fatal(err)
	}
	if err := owner.Close(); err != nil {
		t.Fatal(err)
	}
	paths, err := set.Paths()
	if err != nil {
		t.Fatal(err)
	}
	entries, err := MergeShardFiles(paths)
	if err != nil {
		t.Fatalf("identical dead-epoch append must merge cleanly: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("merged %d entries, want 2", len(entries))
	}

	// Now corrupt the invariant: rewrite the zombie file with a
	// different payload for the same key. MergeShardFiles must refuse.
	bad, err := EncodeEntry(Entry{Key: "unit|x", Payload: []byte(`{"v":8}`)})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "shard-0000.e1.ckpt"), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeShardFiles(paths); err == nil {
		t.Fatal("conflicting payloads across epochs must fail the merge")
	}
}
