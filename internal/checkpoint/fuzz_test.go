package checkpoint

import (
	"bytes"
	"encoding/json"
	"testing"
)

// compact normalizes a JSON payload for comparison: encoding/json
// compacts embedded RawMessages on marshal, so whitespace inside a
// payload is not preserved across an encode/decode round trip.
func compact(t *testing.T, raw json.RawMessage) []byte {
	t.Helper()
	if len(raw) == 0 {
		return nil
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		// Not syntactically valid on its own (can happen for exotic
		// inputs): fall back to raw bytes.
		return raw
	}
	return buf.Bytes()
}

// FuzzDecode drives the journal decoder with arbitrary bytes. The
// decoder is the crash-recovery path — it runs on whatever a killed
// process left on disk — so it must never panic and must uphold its
// contract on any input: truncated, corrupt and duplicate entries are
// skipped or rejected, the valid prefix is well-formed, and decoding is
// idempotent over re-encoded output.
func FuzzDecode(f *testing.F) {
	// A well-formed journal.
	var good []byte
	for _, e := range []Entry{
		{Key: "eval|henri|seed=1", Payload: []byte(`{"n":7}`)},
		{Key: "curve|dahu|pl=0/1", Payload: []byte(`[1,2,3]`)},
	} {
		line, err := EncodeEntry(e)
		if err != nil {
			f.Fatal(err)
		}
		good = append(good, line...)
	}
	f.Add(good)
	f.Add(good[:len(good)-7])                         // torn tail
	f.Add(append(append([]byte{}, good...), good...)) // duplicates
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("deadbeef {\"key\":\"x\"}\n")) // wrong CRC
	f.Add([]byte("zzzzzzzz {\"key\":\"x\"}\n")) // non-hex CRC
	f.Add([]byte("00000000 \n"))                // empty record
	f.Add([]byte("0" + string(good)))           // shifted framing

	f.Fuzz(func(t *testing.T, data []byte) {
		res := Decode(data)

		if res.Valid < 0 || res.Valid > int64(len(data)) {
			t.Fatalf("valid prefix %d out of range [0,%d]", res.Valid, len(data))
		}
		// The valid prefix must itself re-decode to exactly the same
		// entries with nothing dropped beyond duplicates.
		again := Decode(data[:res.Valid])
		if len(again.Entries) != len(res.Entries) || again.Valid != res.Valid {
			t.Fatalf("valid prefix is not stable: %d/%d entries, %d/%d bytes",
				len(again.Entries), len(res.Entries), again.Valid, res.Valid)
		}

		seen := make(map[string]bool, len(res.Entries))
		var reenc []byte
		for _, e := range res.Entries {
			if e.Key == "" {
				t.Fatal("decoded entry with empty key")
			}
			if seen[e.Key] {
				t.Fatalf("duplicate key %q survived decoding", e.Key)
			}
			seen[e.Key] = true
			line, err := EncodeEntry(e)
			if err != nil {
				t.Fatalf("decoded entry does not re-encode: %v", err)
			}
			reenc = append(reenc, line...)
		}

		// Round trip: re-encoding the decoded entries and decoding again
		// must be lossless and fully valid.
		back := Decode(reenc)
		if back.Valid != int64(len(reenc)) || back.Dropped != 0 || back.Duplicates != 0 {
			t.Fatalf("re-encoded journal does not decode cleanly: %+v", back)
		}
		if len(back.Entries) != len(res.Entries) {
			t.Fatalf("round trip lost entries: %d != %d", len(back.Entries), len(res.Entries))
		}
		for i := range back.Entries {
			if back.Entries[i].Key != res.Entries[i].Key ||
				!bytes.Equal(compact(t, back.Entries[i].Payload), compact(t, res.Entries[i].Payload)) {
				t.Fatalf("round trip changed entry %d", i)
			}
		}
	})
}
