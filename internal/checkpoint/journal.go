// Package checkpoint provides the crash-safe resume layer for long
// experiment campaigns: an append-only journal of completed experiment
// units, each content-keyed by everything that determines its result
// (platform, kernel, seed, placement, ...). A campaign records every unit
// as it completes; after a kill, OOM, preemption or Ctrl-C, re-running the
// same campaign against the same journal skips the completed units and
// recomputes only the missing ones. Because every noise source derives
// from rng (seed, label) streams, the resumed half is bit-identical to an
// uninterrupted run — the journal only saves time, never changes results.
//
// Durability model: each entry is one line, CRC-protected, appended and
// fsynced before the unit is considered checkpointed. A crash can lose at
// most the entry being written; a torn or corrupt tail is detected on
// open and truncated away (the affected units are simply recomputed).
// All methods are safe on a nil *Journal and cost nothing, mirroring the
// nil-registry guarantee of the telemetry subsystem.
package checkpoint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"memcontention/internal/atomicio"
	"memcontention/internal/obs"
)

// Entry is one journaled experiment unit: a content key and the unit's
// result payload (JSON).
type Entry struct {
	Key     string          `json:"key"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// EncodeEntry renders one journal line: an IEEE CRC32 of the compact JSON
// record (8 hex digits), a space, the record, a newline. The CRC lets the
// decoder distinguish a torn or bit-rotted line from a valid one.
func EncodeEntry(e Entry) ([]byte, error) {
	if e.Key == "" {
		return nil, fmt.Errorf("checkpoint: empty entry key")
	}
	rec, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encode entry %q: %w", e.Key, err)
	}
	return FrameLine(rec), nil
}

// FrameLine wraps one record in the journal line framing shared by every
// append-only stream in the repo (checkpoint journals, lease files, the
// campaign event journal): an IEEE CRC32 of the record as 8 hex digits,
// a space, the record, a newline.
func FrameLine(rec []byte) []byte {
	line := make([]byte, 0, len(rec)+10)
	line = fmt.Appendf(line, "%08x ", crc32.ChecksumIEEE(rec))
	line = append(line, rec...)
	line = append(line, '\n')
	return line
}

// UnframeLine validates the framing and CRC of one line (without its
// trailing newline) and returns the enclosed record. It never panics on
// any input; a malformed or corrupt line reports ok=false.
func UnframeLine(line []byte) ([]byte, bool) {
	if len(line) < 10 || line[8] != ' ' {
		return nil, false
	}
	crc, ok := parseHex8(line[:8])
	if !ok {
		return nil, false
	}
	rec := line[9:]
	if crc32.ChecksumIEEE(rec) != crc {
		return nil, false
	}
	return rec, true
}

// DecodeResult is the outcome of decoding a journal image.
type DecodeResult struct {
	// Entries are the decoded units in append order, deduplicated by
	// key (the first occurrence wins — later duplicates are by
	// construction identical re-records of the same unit).
	Entries []Entry
	// Valid is the byte length of the journal prefix that decoded
	// cleanly. Anything beyond it is a torn tail or corruption and is
	// truncated away on Open.
	Valid int64
	// Duplicates counts entries skipped because their key was already
	// present.
	Duplicates int
	// Dropped counts lines (complete or torn) discarded after the
	// valid prefix.
	Dropped int
}

// Decode parses a journal image. It never panics on any input: a
// truncated final line, a corrupt CRC, invalid JSON, an empty key or a
// stray blank line all end the valid prefix there, and everything after
// is reported as dropped. Entries with duplicate keys are skipped.
func Decode(data []byte) DecodeResult {
	var res DecodeResult
	seen := make(map[string]bool)
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// Torn tail: an append crashed before the newline.
			break
		}
		e, ok := decodeLine(data[off : off+nl])
		if !ok {
			break
		}
		off += nl + 1
		if seen[e.Key] {
			res.Duplicates++
			continue
		}
		seen[e.Key] = true
		res.Entries = append(res.Entries, e)
	}
	res.Valid = int64(off)
	// Count the discarded remainder for diagnostics: every complete line
	// plus a final torn fragment, if any.
	if rest := data[off:]; len(rest) > 0 {
		res.Dropped = bytes.Count(rest, []byte{'\n'})
		if rest[len(rest)-1] != '\n' {
			res.Dropped++
		}
	}
	return res
}

// decodeLine validates one journal line (without its newline).
func decodeLine(line []byte) (Entry, bool) {
	rec, ok := UnframeLine(line)
	if !ok {
		return Entry{}, false
	}
	var e Entry
	if err := json.Unmarshal(rec, &e); err != nil {
		return Entry{}, false
	}
	if e.Key == "" {
		return Entry{}, false
	}
	return e, true
}

// parseHex8 strictly parses exactly eight lowercase-or-uppercase hex
// digits (no signs, prefixes or partial matches).
func parseHex8(b []byte) (uint32, bool) {
	var v uint32
	for _, c := range b {
		var d uint32
		switch {
		case c >= '0' && c <= '9':
			d = uint32(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint32(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint32(c-'A') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

// Journal is an open checkpoint journal. It is safe for concurrent use —
// campaign sweeps record units from worker goroutines.
type Journal struct {
	mu   sync.Mutex
	path string
	// memlint:guard mu
	f *os.File
	// memlint:guard mu
	order []string
	// memlint:guard mu
	entries map[string]json.RawMessage
	// memlint:guard mu
	loaded int
	// memlint:guard mu
	dropped int64
	m       instruments

	// RecordHook, when set, runs after each durable append with the
	// recorded key and the new entry count. The soak harness and the
	// graceful-shutdown tests use it to cancel a campaign at a
	// deterministic unit boundary. The hook runs with the journal lock
	// held: it must not call back into the journal (use the total
	// argument instead of Len).
	RecordHook func(key string, total int)
}

// instruments are the journal's telemetry hooks; nil instruments (no
// registry attached) record nothing.
type instruments struct {
	loaded    *obs.Counter
	written   *obs.Counter
	hits      *obs.Counter
	recovered *obs.Counter
	entries   *obs.Gauge
}

// Open creates or resumes the journal at path. A torn or corrupt tail
// (crash during an append, bit rot) is detected, reported by
// RecoveredBytes, and truncated away so subsequent appends extend a valid
// prefix.
func Open(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open %s: %w", path, err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: read %s: %w", path, err)
	}
	res := Decode(data)
	if res.Valid < int64(len(data)) {
		if err := f.Truncate(res.Valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("checkpoint: recover %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("checkpoint: recover %s: %w", path, err)
		}
	}
	if _, err := f.Seek(res.Valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: seek %s: %w", path, err)
	}
	// Make the journal file itself durable: if this Open created it, the
	// directory entry must survive power loss too. Best effort on
	// filesystems that cannot fsync directories is not acceptable here —
	// a journal that vanishes silently breaks the resume contract.
	if err := atomicio.SyncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	j := &Journal{
		path:    path,
		f:       f,
		entries: make(map[string]json.RawMessage, len(res.Entries)),
		loaded:  len(res.Entries),
		dropped: int64(len(data)) - res.Valid,
	}
	for _, e := range res.Entries {
		j.order = append(j.order, e.Key)
		j.entries[e.Key] = e.Payload
	}
	return j, nil
}

// SetRegistry attaches telemetry instruments. A nil registry (or nil
// journal) keeps instrumentation disabled at zero cost.
func (j *Journal) SetRegistry(r *obs.Registry) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.m = instruments{
		loaded:    r.Counter("memcontention_checkpoint_entries_loaded_total", "Journal entries recovered from disk at open.", nil),
		written:   r.Counter("memcontention_checkpoint_entries_written_total", "Journal entries durably appended.", nil),
		hits:      r.Counter("memcontention_checkpoint_hits_total", "Experiment units skipped because the journal already had them.", nil),
		recovered: r.Counter("memcontention_checkpoint_recovered_bytes_total", "Torn or corrupt journal bytes truncated away at open.", nil),
		entries:   r.Gauge("memcontention_checkpoint_entries", "Entries currently in the journal.", nil),
	}
	j.m.loaded.Add(float64(j.loaded))
	j.m.recovered.Add(float64(j.dropped))
	j.m.entries.Set(float64(len(j.order)))
}

// Path reports the journal's file path ("" for a nil journal).
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Len reports the number of entries.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.order)
}

// LoadedEntries reports how many entries were recovered from disk at Open
// (before any Record of this process).
func (j *Journal) LoadedEntries() int {
	if j == nil {
		return 0
	}
	//memlint:allow lockguard — loaded is written once in Open before the journal is shared, then read-only
	return j.loaded
}

// RecoveredBytes reports how many torn or corrupt trailing bytes Open
// truncated away.
func (j *Journal) RecoveredBytes() int64 {
	if j == nil {
		return 0
	}
	//memlint:allow lockguard — dropped is written once in Open before the journal is shared, then read-only
	return j.dropped
}

// Keys returns the entry keys in append order.
func (j *Journal) Keys() []string {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]string(nil), j.order...)
}

// Has reports whether key is journaled. Nil journals report false.
func (j *Journal) Has(key string) bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.entries[key]
	return ok
}

// Get unmarshals the payload of key into v and reports whether the key
// was present; a hit is counted in the telemetry. A payload that no
// longer unmarshals into v reports (false, error) — callers treat it as
// a miss and recompute.
func (j *Journal) Get(key string, v any) (bool, error) {
	if j == nil {
		return false, nil
	}
	j.mu.Lock()
	raw, ok := j.entries[key]
	hits := j.m.hits
	j.mu.Unlock()
	if !ok {
		return false, nil
	}
	if v != nil {
		if err := json.Unmarshal(raw, v); err != nil {
			return false, fmt.Errorf("checkpoint: payload of %q: %w", key, err)
		}
	}
	hits.Inc()
	return true, nil
}

// Record durably appends one completed unit: the line is written and
// fsynced before Record returns, so a kill at any later instant cannot
// lose the unit. Recording a key that is already journaled is a no-op
// (the result is deterministic, so the payloads are identical). A nil
// journal records nothing.
func (j *Journal) Record(key string, v any) error {
	if j == nil {
		return nil
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint: payload of %q: %w", key, err)
	}
	line, err := EncodeEntry(Entry{Key: key, Payload: payload})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.entries[key]; ok {
		return nil
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("checkpoint: append %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync %s: %w", j.path, err)
	}
	j.order = append(j.order, key)
	j.entries[key] = payload
	j.m.written.Inc()
	j.m.entries.Set(float64(len(j.order)))
	if j.RecordHook != nil {
		j.RecordHook(key, len(j.order))
	}
	return nil
}

// Close releases the journal file. Entries already recorded stay durable;
// the journal must not be used afterwards. Closing a nil journal is a
// no-op.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	if err != nil {
		return fmt.Errorf("checkpoint: close %s: %w", j.path, err)
	}
	return nil
}
