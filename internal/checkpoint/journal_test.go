package checkpoint

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"memcontention/internal/obs"
)

type payload struct {
	N int     `json:"n"`
	F float64 `json:"f"`
}

func openT(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "units.journal")
	j := openT(t, path)
	if j.Len() != 0 || j.LoadedEntries() != 0 {
		t.Fatalf("fresh journal not empty: len=%d loaded=%d", j.Len(), j.LoadedEntries())
	}
	want := payload{N: 7, F: 3.14159}
	if err := j.Record("unit|a", want); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("unit|b", payload{N: 8}); err != nil {
		t.Fatal(err)
	}
	if !j.Has("unit|a") || j.Has("unit|zzz") {
		t.Fatal("Has is wrong")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: both entries must come back, byte-exact.
	j2 := openT(t, path)
	if j2.Len() != 2 || j2.LoadedEntries() != 2 || j2.RecoveredBytes() != 0 {
		t.Fatalf("reopen: len=%d loaded=%d recovered=%d", j2.Len(), j2.LoadedEntries(), j2.RecoveredBytes())
	}
	var got payload
	ok, err := j2.Get("unit|a", &got)
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if got != want {
		t.Fatalf("payload = %+v, want %+v", got, want)
	}
	if keys := j2.Keys(); len(keys) != 2 || keys[0] != "unit|a" || keys[1] != "unit|b" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestJournalDuplicateRecordIsNoop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "units.journal")
	j := openT(t, path)
	if err := j.Record("k", payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	size1 := fileSize(t, path)
	if err := j.Record("k", payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	if size2 := fileSize(t, path); size2 != size1 {
		t.Fatalf("duplicate record grew the journal: %d -> %d", size1, size2)
	}
	if j.Len() != 1 {
		t.Fatalf("len = %d, want 1", j.Len())
	}
}

func TestJournalRecoversTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "units.journal")
	j := openT(t, path)
	for _, k := range []string{"a", "b", "c"} {
		if err := j.Record(k, payload{N: len(k)}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Simulate a crash mid-append: chop the last line in half.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := data[:len(data)-9]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := openT(t, path)
	if j2.Len() != 2 || !j2.Has("a") || !j2.Has("b") || j2.Has("c") {
		t.Fatalf("after torn tail: len=%d keys=%v", j2.Len(), j2.Keys())
	}
	if j2.RecoveredBytes() == 0 {
		t.Fatal("recovery not reported")
	}
	// The torn bytes must be gone from disk, and appends must extend a
	// valid prefix.
	if err := j2.Record("c", payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3 := openT(t, path)
	if j3.Len() != 3 || j3.RecoveredBytes() != 0 {
		t.Fatalf("after re-append: len=%d recovered=%d", j3.Len(), j3.RecoveredBytes())
	}
}

func TestJournalRecoversCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "units.journal")
	j := openT(t, path)
	if err := j.Record("good", payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("deadbeef {\"key\":\"evil\"}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2 := openT(t, path)
	if j2.Len() != 1 || j2.Has("evil") {
		t.Fatalf("corrupt line accepted: keys=%v", j2.Keys())
	}
	if j2.RecoveredBytes() == 0 {
		t.Fatal("corruption not reported")
	}
}

func TestJournalGetTypeMismatch(t *testing.T) {
	j := openT(t, filepath.Join(t.TempDir(), "u.journal"))
	if err := j.Record("k", "a string payload"); err != nil {
		t.Fatal(err)
	}
	var wrong payload
	ok, err := j.Get("k", &wrong)
	if ok || err == nil {
		t.Fatalf("type-mismatched Get: ok=%v err=%v (want miss with error)", ok, err)
	}
}

func TestNilJournalIsFree(t *testing.T) {
	var j *Journal
	if j.Has("x") || j.Len() != 0 || j.Path() != "" || j.Keys() != nil {
		t.Fatal("nil journal not inert")
	}
	if ok, err := j.Get("x", nil); ok || err != nil {
		t.Fatal("nil journal Get not inert")
	}
	if err := j.Record("x", 1); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j.SetRegistry(obs.NewRegistry()) // must not panic
}

func TestJournalMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "u.journal")
	j := openT(t, path)
	reg := obs.NewRegistry()
	j.SetRegistry(reg)
	if err := j.Record("a", 1); err != nil {
		t.Fatal(err)
	}
	if ok, _ := j.Get("a", nil); !ok {
		t.Fatal("miss")
	}
	var out bytes.Buffer
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"memcontention_checkpoint_entries_written_total 1",
		"memcontention_checkpoint_hits_total 1",
		"memcontention_checkpoint_entries 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestJournalRecordHook(t *testing.T) {
	j := openT(t, filepath.Join(t.TempDir(), "u.journal"))
	var keys []string
	j.RecordHook = func(key string, total int) { keys = append(keys, key) }
	if err := j.Record("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("a", 1); err != nil { // duplicate: no hook
		t.Fatal(err)
	}
	if err := j.Record("b", 1); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("hook calls = %v", keys)
	}
}

func TestJournalConcurrentRecord(t *testing.T) {
	j := openT(t, filepath.Join(t.TempDir(), "u.journal"))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := strings.Repeat("k", i%3+1) + string(rune('0'+w))
				if err := j.Record(key, i); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	path := j.Path()
	j.Close()
	j2 := openT(t, path)
	if j2.RecoveredBytes() != 0 {
		t.Fatalf("concurrent appends produced %d invalid bytes", j2.RecoveredBytes())
	}
	if j2.Len() != 24 {
		t.Fatalf("len = %d, want 24 distinct keys", j2.Len())
	}
}

func TestDecodeCountsDuplicatesAndDropped(t *testing.T) {
	var img []byte
	for _, e := range []Entry{{Key: "a"}, {Key: "b"}, {Key: "a"}} {
		line, err := EncodeEntry(e)
		if err != nil {
			t.Fatal(err)
		}
		img = append(img, line...)
	}
	img = append(img, []byte("garbage line\nmore garbage\ntorn")...)
	res := Decode(img)
	if len(res.Entries) != 2 || res.Duplicates != 1 {
		t.Fatalf("entries=%d dup=%d", len(res.Entries), res.Duplicates)
	}
	if res.Dropped != 3 {
		t.Fatalf("dropped = %d, want 3 (two garbage lines + torn tail)", res.Dropped)
	}
	if int(res.Valid) >= len(img) {
		t.Fatal("valid prefix should stop before the garbage")
	}
}

func TestEncodeEntryRejectsEmptyKey(t *testing.T) {
	if _, err := EncodeEntry(Entry{}); err == nil {
		t.Fatal("empty key encoded")
	}
}

func TestSignalContextAndIsCanceled(t *testing.T) {
	ctx, stop := SignalContext()
	defer stop()
	if err := ctx.Err(); err != nil {
		t.Fatalf("fresh signal context already canceled: %v", err)
	}
	if !IsCanceled(context.Canceled) || IsCanceled(os.ErrNotExist) || IsCanceled(nil) {
		t.Fatal("IsCanceled misclassifies")
	}
}

func TestCLIOpen(t *testing.T) {
	dir := t.TempDir()

	var c CLI
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c.Register(fs)
	if err := fs.Parse([]string{"-checkpoint", filepath.Join(dir, "j")}); err != nil {
		t.Fatal(err)
	}
	j, err := c.Open()
	if err != nil || j == nil {
		t.Fatalf("Open: %v", err)
	}
	j.Close()

	// No flags: nil journal, no error.
	if j, err := (&CLI{}).Open(); err != nil || j != nil {
		t.Fatalf("empty CLI: j=%v err=%v", j, err)
	}
	// -resume alone is an error.
	if _, err := (&CLI{Resume: true}).Open(); err == nil {
		t.Fatal("-resume without -checkpoint accepted")
	}
	// -resume with a missing journal is an error.
	if _, err := (&CLI{Path: filepath.Join(dir, "missing"), Resume: true}).Open(); err == nil {
		t.Fatal("-resume with missing journal accepted")
	}
	// -resume with an existing journal works.
	c2 := CLI{Path: filepath.Join(dir, "j"), Resume: true}
	j2, err := c2.Open()
	if err != nil || j2 == nil {
		t.Fatalf("resume Open: %v", err)
	}
	j2.Close()
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

func TestReport(t *testing.T) {
	var buf bytes.Buffer
	if code := Report(&buf, "cmd", nil); code != 0 || buf.Len() != 0 {
		t.Fatalf("nil error: code=%d output=%q", code, buf.String())
	}
	buf.Reset()
	if code := Report(&buf, "cmd", context.Canceled); code != ExitInterrupted {
		t.Fatalf("canceled: code=%d", code)
	}
	if !strings.Contains(buf.String(), "interrupted") || !strings.Contains(buf.String(), "resume") {
		t.Fatalf("cancellation epilogue = %q", buf.String())
	}
	buf.Reset()
	if code := Report(&buf, "cmd", errors.New("boom")); code != 1 {
		t.Fatalf("failure: code=%d", code)
	}
	if !strings.Contains(buf.String(), "cmd: boom") {
		t.Fatalf("failure epilogue = %q", buf.String())
	}
}
