package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"memcontention/internal/atomicio"
)

// shardPrefix and shardSuffix frame the file names of per-shard journals
// inside a ShardSet directory: shard-0000.ckpt, shard-0001.ckpt, ...
const (
	shardPrefix = "shard-"
	shardSuffix = ".ckpt"
)

// ShardSet manages the per-shard journals of one sharded campaign: a
// directory holding shard-NNNN.ckpt journal files, one per worker, each
// with the full CRC32 + torn-tail-recovery durability of a single
// Journal. The set is the unit of resume — a killed parallel campaign
// reopens the same directory and the union of all shard journals tells
// it which experiment units are already done, wherever they ran.
type ShardSet struct {
	dir string
}

// OpenShardSet creates (durably, fsyncing the new directory chain) or
// reopens the shard-journal directory.
func OpenShardSet(dir string) (*ShardSet, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty shard-set directory")
	}
	if err := atomicio.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: shard set %s: %w", dir, err)
	}
	return &ShardSet{dir: dir}, nil
}

// Dir reports the shard-set directory ("" for a nil set).
func (s *ShardSet) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// ShardPath returns the journal path of shard i.
func (s *ShardSet) ShardPath(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%04d%s", shardPrefix, i, shardSuffix))
}

// OpenShard opens (or creates) the journal of shard i, recovering any
// torn tail exactly like Open.
func (s *ShardSet) OpenShard(i int) (*Journal, error) {
	if i < 0 {
		return nil, fmt.Errorf("checkpoint: negative shard index %d", i)
	}
	return Open(s.ShardPath(i))
}

// EpochShardPath returns the journal path of shard i under fencing
// epoch e: shard-0003.e7.ckpt. Remote multi-process campaigns journal
// into epoch-suffixed files — each (shard, epoch) pair has exactly one
// owner ever (internal/lease claims epochs O_EXCL), so no two processes
// can interleave appends into the same journal, and a deposed zombie's
// late appends land in its own dead-epoch file. Paths() lists epoch
// files alongside plain shard journals and MergeShards unions them all:
// campaigns are deterministic in (seed, config), so duplicate keys
// across epochs carry byte-identical payloads and merge cleanly.
func (s *ShardSet) EpochShardPath(i int, e uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%04d.e%d%s", shardPrefix, i, e, shardSuffix))
}

// OpenEpochShard opens (or creates) the epoch-e journal of shard i.
func (s *ShardSet) OpenEpochShard(i int, e uint64) (*Journal, error) {
	if i < 0 {
		return nil, fmt.Errorf("checkpoint: negative shard index %d", i)
	}
	if e == 0 {
		return nil, fmt.Errorf("checkpoint: epoch 0 for shard %d (epochs start at 1)", e)
	}
	return Open(s.EpochShardPath(i, e))
}

// ParseShardFile decomposes a shard-journal file name into its shard
// index and epoch (0 for a plain, epoch-less journal as written by the
// in-process sharded executor). Non-journal names report ok=false.
func ParseShardFile(name string) (shard int, epoch uint64, ok bool) {
	if !strings.HasPrefix(name, shardPrefix) || !strings.HasSuffix(name, shardSuffix) {
		return 0, 0, false
	}
	core := strings.TrimSuffix(strings.TrimPrefix(name, shardPrefix), shardSuffix)
	idx, rest, hasEpoch := strings.Cut(core, ".e")
	n, err := strconv.Atoi(idx)
	if err != nil || n < 0 {
		return 0, 0, false
	}
	if !hasEpoch {
		return n, 0, true
	}
	e, err := strconv.ParseUint(rest, 10, 64)
	if err != nil || e == 0 {
		return 0, 0, false
	}
	return n, e, true
}

// ShardFiles lists the existing journal files of shard i (the plain
// journal plus every epoch file), sorted by name.
func (s *ShardSet) ShardFiles(i int) ([]string, error) {
	paths, err := s.Paths()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, p := range paths {
		if n, _, ok := ParseShardFile(filepath.Base(p)); ok && n == i {
			out = append(out, p)
		}
	}
	return out, nil
}

// MaxEpoch reports the highest epoch among shard i's existing journal
// files (0 when only the plain journal, or nothing, exists). Remote
// workers feed it to lease.Manager.Acquire as the epoch floor: even if
// the lease file was corrupted or deleted, a surviving zombie journal
// forces the takeover epoch past the zombie's, so the new owner can
// never share a journal file with it.
func (s *ShardSet) MaxEpoch(i int) (uint64, error) {
	paths, err := s.Paths()
	if err != nil {
		return 0, err
	}
	var max uint64
	for _, p := range paths {
		if n, e, ok := ParseShardFile(filepath.Base(p)); ok && n == i && e > max {
			max = e
		}
	}
	return max, nil
}

// Paths lists the existing shard journal files in shard order. A resumed
// campaign may find more shards than it has workers (the previous run was
// wider); their entries still count as done and still merge.
func (s *ShardSet) Paths() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: shard set %s: %w", s.dir, err)
	}
	var paths []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, shardPrefix) || !strings.HasSuffix(name, shardSuffix) {
			continue
		}
		paths = append(paths, filepath.Join(s.dir, name))
	}
	sort.Strings(paths)
	return paths, nil
}

// MergeShards reads every given shard-journal image tolerantly (exactly
// like Open: a torn or corrupt tail ends that shard's valid prefix and
// the remainder is ignored) and merges the entries by key. The same key
// appearing in several shards is legal — work stealing and worker
// restarts can complete a re-run of a unit whose first attempt died
// after journaling nested sub-units elsewhere — but only when every copy
// carries byte-identical payloads; campaigns are deterministic in
// (seed, config), so differing payloads mean corruption or a
// nondeterminism bug and merging must fail loudly rather than pick one.
//
// The merged entries are returned sorted by key, so the merged journal
// image is byte-deterministic regardless of shard count, scheduling or
// completion order.
func MergeShards(images [][]byte) ([]Entry, error) {
	merged := make(map[string]Entry)
	var keys []string
	for i, img := range images {
		res := Decode(img)
		for _, e := range res.Entries {
			prev, ok := merged[e.Key]
			if !ok {
				merged[e.Key] = e
				keys = append(keys, e.Key)
				continue
			}
			if !bytes.Equal(prev.Payload, e.Payload) {
				return nil, fmt.Errorf("checkpoint: shard %d: conflicting payloads for key %q: %w", i, e.Key, ErrShardConflict)
			}
		}
	}
	sort.Strings(keys)
	entries := make([]Entry, 0, len(keys))
	for _, k := range keys {
		entries = append(entries, merged[k])
	}
	return entries, nil
}

// ErrShardConflict reports two shard journals holding different payloads
// for the same unit key — impossible for a deterministic campaign, so it
// signals journal corruption that CRCs happened to miss, or a real
// nondeterminism bug.
var ErrShardConflict = errors.New("checkpoint: shard journals disagree")

// MergeShardFiles reads and merges the given shard journal files (see
// MergeShards). Unreadable files are errors; unreadable *content* is
// recovered tolerantly.
func MergeShardFiles(paths []string) ([]Entry, error) {
	images := make([][]byte, len(paths))
	for i, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: merge %s: %w", p, err)
		}
		images[i] = data
	}
	return MergeShards(images)
}

// WriteJournal durably writes entries as a fresh journal file at path
// (atomic temp + fsync + rename + dir fsync). Combined with MergeShards
// it turns a set of shard journals into one merged journal whose bytes
// depend only on the entry set.
func WriteJournal(path string, entries []Entry) error {
	var buf bytes.Buffer
	for _, e := range entries {
		line, err := EncodeEntry(e)
		if err != nil {
			return err
		}
		buf.Write(line)
	}
	if err := atomicio.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("checkpoint: write merged journal: %w", err)
	}
	return nil
}
