package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// encodeLines renders entries as a journal image.
func encodeLines(t testing.TB, entries ...Entry) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, e := range entries {
		line, err := EncodeEntry(e)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
	}
	return buf.Bytes()
}

func TestShardSetPathsAndOpen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "a", "b", "shards")
	set, err := OpenShardSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	if set.Dir() != dir {
		t.Fatalf("Dir() = %q", set.Dir())
	}
	paths, err := set.Paths()
	if err != nil || len(paths) != 0 {
		t.Fatalf("fresh set has paths %v (err %v)", paths, err)
	}
	// Open shards out of order; Paths lists them sorted.
	for _, i := range []int{2, 0} {
		j, err := set.OpenShard(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Record("k"+string(rune('a'+i)), i); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// A stray file in the directory is not a shard journal.
	if err := os.WriteFile(filepath.Join(dir, "quarantine.jsonl"), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	paths, err = set.Paths()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{set.ShardPath(0), set.ShardPath(2)}
	if len(paths) != 2 || paths[0] != want[0] || paths[1] != want[1] {
		t.Fatalf("Paths() = %v, want %v", paths, want)
	}
	if _, err := set.OpenShard(-1); err == nil {
		t.Fatal("negative shard index accepted")
	}
	if _, err := OpenShardSet(""); err == nil {
		t.Fatal("empty shard-set directory accepted")
	}
}

func TestMergeShardsDedupeSortAndTolerance(t *testing.T) {
	e1 := Entry{Key: "b", Payload: []byte(`1`)}
	e2 := Entry{Key: "a", Payload: []byte(`{"x":2}`)}
	e3 := Entry{Key: "c", Payload: []byte(`[3]`)}
	img1 := encodeLines(t, e1, e2)
	// Shard 2 re-records e2 identically (a stolen re-run), adds e3, and
	// ends in a torn tail that merging must tolerate.
	img2 := append(encodeLines(t, e2, e3), []byte("7f000000 {\"key\":\"torn")...)

	entries, err := MergeShards([][]byte{img1, img2, nil, []byte("garbage\n")})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(entries))
	for i, e := range entries {
		keys[i] = e.Key
	}
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("merged keys = %v, want [a b c]", keys)
	}
}

func TestMergeShardsConflictFailsLoudly(t *testing.T) {
	a := encodeLines(t, Entry{Key: "k", Payload: []byte(`1`)})
	b := encodeLines(t, Entry{Key: "k", Payload: []byte(`2`)})
	_, err := MergeShards([][]byte{a, b})
	if !errors.Is(err, ErrShardConflict) {
		t.Fatalf("err = %v, want ErrShardConflict", err)
	}
}

func TestMergeShardFilesAndWriteJournal(t *testing.T) {
	dir := t.TempDir()
	set, err := OpenShardSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		j, err := set.OpenShard(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Record("shared", "same"); err != nil {
			t.Fatal(err)
		}
		if err := j.Record(set.ShardPath(i), i); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	paths, err := set.Paths()
	if err != nil {
		t.Fatal(err)
	}
	entries, err := MergeShardFiles(paths)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("merged %d entries, want 4", len(entries))
	}

	// The merged journal round-trips through WriteJournal + Open and is
	// byte-deterministic: merging in any shard order writes the same file.
	merged := filepath.Join(dir, "merged.ckpt")
	if err := WriteJournal(merged, entries); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	rev := []string{paths[2], paths[0], paths[1]}
	entries2, err := MergeShardFiles(rev)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteJournal(merged, entries2); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("merged journal bytes depend on shard order")
	}

	j, err := Open(merged)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.LoadedEntries() != 4 || j.RecoveredBytes() != 0 {
		t.Fatalf("merged journal reopened with %d entries, %d recovered bytes",
			j.LoadedEntries(), j.RecoveredBytes())
	}
	var s string
	if ok, err := j.Get("shared", &s); !ok || err != nil || s != "same" {
		t.Fatalf("merged journal lost entry: ok=%v err=%v s=%q", ok, err, s)
	}

	if _, err := MergeShardFiles([]string{filepath.Join(dir, "missing.ckpt")}); err == nil {
		t.Fatal("missing shard file accepted")
	}
}

// FuzzMergeShards drives the shard merge with arbitrary shard images —
// the path a resumed parallel campaign takes over whatever its killed
// workers left on disk. It must never panic, must stay deterministic in
// the image *set* (order-insensitive modulo conflicts), and its output
// must re-merge to itself (idempotence).
func FuzzMergeShards(f *testing.F) {
	good1 := encodeLines(f, Entry{Key: "eval|henri|seed=1", Payload: []byte(`{"n":7}`)})
	good2 := encodeLines(f, Entry{Key: "curve|dahu|pl=0/1", Payload: []byte(`[1,2,3]`)})
	overlap := encodeLines(f,
		Entry{Key: "eval|henri|seed=1", Payload: []byte(`{"n":7}`)},
		Entry{Key: "unit|netbench|henri", Payload: []byte(`25`)},
	)
	conflict := encodeLines(f, Entry{Key: "eval|henri|seed=1", Payload: []byte(`{"n":8}`)})
	f.Add(good1, good2, []byte{})
	f.Add(good1, overlap, good2)                       // duplicate keys, equal payloads
	f.Add(good1, conflict, []byte{})                   // duplicate keys, conflicting payloads
	f.Add(good1[:len(good1)-5], good2, []byte("junk")) // torn tail + garbage
	f.Add([]byte("\n\n"), []byte("zz not a journal"), good2)

	f.Fuzz(func(t *testing.T, a, b, c []byte) {
		images := [][]byte{a, b, c}
		entries, err := MergeShards(images)
		if err != nil {
			if !errors.Is(err, ErrShardConflict) {
				t.Fatalf("merge failed with non-conflict error: %v", err)
			}
			return
		}
		seen := make(map[string]bool, len(entries))
		for i, e := range entries {
			if e.Key == "" {
				t.Fatal("merged entry with empty key")
			}
			if seen[e.Key] {
				t.Fatalf("duplicate key %q survived merging", e.Key)
			}
			seen[e.Key] = true
			if i > 0 && entries[i-1].Key >= e.Key {
				t.Fatalf("merged entries not strictly sorted: %q >= %q", entries[i-1].Key, e.Key)
			}
		}
		// Idempotence: the merged image merges to itself.
		var buf bytes.Buffer
		for _, e := range entries {
			line, err := EncodeEntry(e)
			if err != nil {
				t.Fatalf("merged entry does not re-encode: %v", err)
			}
			buf.Write(line)
		}
		again, err := MergeShards([][]byte{buf.Bytes()})
		if err != nil {
			t.Fatalf("re-merge failed: %v", err)
		}
		if len(again) != len(entries) {
			t.Fatalf("re-merge changed entry count: %d != %d", len(again), len(entries))
		}
	})
}

// TestSignalContextTwoStage proves the two-stage shutdown: the first
// signal cancels the context (graceful drain), the second hard-exits
// with status 130. The exit is injected so the test survives it.
func TestSignalContextTwoStage(t *testing.T) {
	exited := make(chan int, 1)
	ctx, stop := signalContext(func(code int) { exited <- code })
	defer stop()

	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	<-ctx.Done()
	select {
	case code := <-exited:
		t.Fatalf("first signal already exited with %d", code)
	default:
	}

	if err := p.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if code := <-exited; code != ExitInterrupted {
		t.Fatalf("second signal exited with %d, want %d", code, ExitInterrupted)
	}
}

// TestSignalContextStopReleases proves stop retires the watcher: after
// stop, the context is canceled but signals no longer reach the exit.
func TestSignalContextStopReleases(t *testing.T) {
	exited := make(chan int, 1)
	ctx, stop := signalContext(func(code int) { exited <- code })
	stop()
	<-ctx.Done()
	stop() // idempotent
	select {
	case code := <-exited:
		t.Fatalf("stopped watcher exited with %d", code)
	default:
	}
}
