package checkpoint

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// ExitInterrupted is the process exit status for a run that was
// interrupted (SIGINT/SIGTERM) after flushing its partial results: the
// conventional 128+SIGINT, distinct from the generic failure status 1 so
// wrappers can tell "failed" from "interrupted, safe to resume".
const ExitInterrupted = 130

// SignalContext returns a context canceled on SIGINT or SIGTERM. The
// first signal requests a graceful drain: the context is canceled,
// workers stop at the next unit boundary, and telemetry flushes. A
// second SIGINT/SIGTERM means the user wants out *now* — the process
// exits immediately with status ExitInterrupted, without waiting for the
// drain (every unit recorded so far is already fsynced, so nothing
// durable is lost). Call stop to release the signal handlers.
func SignalContext() (ctx context.Context, stop context.CancelFunc) {
	return signalContext(os.Exit)
}

// signalContext is SignalContext with an injectable exit, so tests can
// observe the second-signal hard exit without dying.
func signalContext(exit func(int)) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go watchSignals(ch, done, cancel, exit)
	var once sync.Once
	stop := func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
			cancel()
		})
	}
	return ctx, stop
}

// watchSignals implements the two-stage shutdown: first signal cancels
// (graceful drain), second signal hard-exits with ExitInterrupted. A
// close of done (the caller's stop) retires the watcher at either stage.
func watchSignals(ch <-chan os.Signal, done <-chan struct{}, cancel context.CancelFunc, exit func(int)) {
	select {
	case <-ch:
		cancel()
	case <-done:
		return
	}
	select {
	case <-ch:
		exit(ExitInterrupted)
	case <-done:
	}
}

// IsCanceled reports whether err is (or wraps) a context cancellation —
// the signature of a graceful shutdown rather than a real failure.
func IsCanceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Report prints a command epilogue for err and returns the status to
// pass to os.Exit: 0 for nil, ExitInterrupted for a graceful shutdown
// (with a resume hint instead of an error dump), 1 for real failures.
func Report(w io.Writer, cmd string, err error) int {
	if err == nil {
		return 0
	}
	if IsCanceled(err) {
		fmt.Fprintf(w, "%s: interrupted — completed units are saved; re-run with the same flags (and -checkpoint journal, if any) to resume\n", cmd)
		return ExitInterrupted
	}
	fmt.Fprintf(w, "%s: %v\n", cmd, err)
	return 1
}

// CLI bundles the checkpoint command-line flags shared by the campaign
// commands:
//
//	-checkpoint <file>  journal completed units there and skip units
//	                    already present (crash-safe resume)
//	-resume             require the journal to already exist
//
// Register the flags, then call Open after flag parsing; a nil journal
// (no -checkpoint) disables checkpointing at zero cost.
type CLI struct {
	Path   string
	Resume bool
}

// Register adds the checkpoint flags to fs.
func (c *CLI) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.Path, "checkpoint", "", "append completed experiment units to this journal file and resume from it (crash-safe)")
	fs.BoolVar(&c.Resume, "resume", false, "with -checkpoint: require the journal to already exist (catches path typos when resuming)")
}

// Open opens (or creates) the configured journal. Without -checkpoint it
// returns (nil, nil) — and an error if -resume was given alone. With
// -resume the journal file must already exist.
func (c *CLI) Open() (*Journal, error) {
	if c.Path == "" {
		if c.Resume {
			return nil, errors.New("checkpoint: -resume requires -checkpoint <file>")
		}
		return nil, nil
	}
	if c.Resume {
		if _, err := os.Stat(c.Path); err != nil {
			return nil, fmt.Errorf("checkpoint: -resume: %w", err)
		}
	}
	return Open(c.Path)
}
