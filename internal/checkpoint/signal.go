package checkpoint

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
)

// ExitInterrupted is the process exit status for a run that was
// interrupted (SIGINT/SIGTERM) after flushing its partial results: the
// conventional 128+SIGINT, distinct from the generic failure status 1 so
// wrappers can tell "failed" from "interrupted, safe to resume".
const ExitInterrupted = 130

// SignalContext returns a context canceled on SIGINT or SIGTERM. After
// the first signal the handlers are kept installed (cancellation already
// happened); a second Ctrl-C during a slow flush falls back to the Go
// runtime's default hard exit via the returned stop function being the
// only remaining teardown. Call stop to release the signal handlers.
func SignalContext() (ctx context.Context, stop context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// IsCanceled reports whether err is (or wraps) a context cancellation —
// the signature of a graceful shutdown rather than a real failure.
func IsCanceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Report prints a command epilogue for err and returns the status to
// pass to os.Exit: 0 for nil, ExitInterrupted for a graceful shutdown
// (with a resume hint instead of an error dump), 1 for real failures.
func Report(w io.Writer, cmd string, err error) int {
	if err == nil {
		return 0
	}
	if IsCanceled(err) {
		fmt.Fprintf(w, "%s: interrupted — completed units are saved; re-run with the same flags (and -checkpoint journal, if any) to resume\n", cmd)
		return ExitInterrupted
	}
	fmt.Fprintf(w, "%s: %v\n", cmd, err)
	return 1
}

// CLI bundles the checkpoint command-line flags shared by the campaign
// commands:
//
//	-checkpoint <file>  journal completed units there and skip units
//	                    already present (crash-safe resume)
//	-resume             require the journal to already exist
//
// Register the flags, then call Open after flag parsing; a nil journal
// (no -checkpoint) disables checkpointing at zero cost.
type CLI struct {
	Path   string
	Resume bool
}

// Register adds the checkpoint flags to fs.
func (c *CLI) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.Path, "checkpoint", "", "append completed experiment units to this journal file and resume from it (crash-safe)")
	fs.BoolVar(&c.Resume, "resume", false, "with -checkpoint: require the journal to already exist (catches path typos when resuming)")
}

// Open opens (or creates) the configured journal. Without -checkpoint it
// returns (nil, nil) — and an error if -resume was given alone. With
// -resume the journal file must already exist.
func (c *CLI) Open() (*Journal, error) {
	if c.Path == "" {
		if c.Resume {
			return nil, errors.New("checkpoint: -resume requires -checkpoint <file>")
		}
		return nil, nil
	}
	if c.Resume {
		if _, err := os.Stat(c.Path); err != nil {
			return nil, fmt.Errorf("checkpoint: -resume: %w", err)
		}
	}
	return Open(c.Path)
}
