package engine

import (
	"fmt"
	"math"
	"sort"

	"memcontention/internal/memsys"
	"memcontention/internal/obs"
	"memcontention/internal/units"
)

// FlowObserver receives flow lifecycle notifications, in simulated-time
// order. Implementations must not mutate the flow manager. The machine
// argument is the flow manager's machine id (SetMachine): flow ids are
// only unique per manager, so observers shared across a cluster key
// flows by (machine, id).
type FlowObserver interface {
	// FlowStarted fires when a transfer begins.
	FlowStarted(machine, id int, stream memsys.Stream, bytes float64, at float64)
	// FlowFinished fires when a transfer drains.
	FlowFinished(machine, id int, at float64, avgRate float64)
	// RatesResolved fires after every re-solve with the rates actually
	// applied to the flows — that is, after any RateLimiter has rescaled
	// the solver's grants — keyed by flow id in GB/s.
	RatesResolved(machine int, at float64, rates map[int]float64)
}

// Flows manages fluid data transfers over a memory system. All active
// transfers progress simultaneously at the rates the memsys solver grants
// them; rates are re-solved whenever a transfer starts or completes.
type Flows struct {
	sim    *Sim
	sys    *memsys.System
	active map[int]*flow
	nextID int
	// pending is the scheduled "next completion" event.
	pending *Timer
	// observer, when set, is notified of flow lifecycle events.
	observer FlowObserver
	// machine is the id reported to the observer and span recorder
	// (SetMachine; 0 for single-machine simulations).
	machine int
	// spans, when set, receives one causal span per flow, attributed
	// with the stream's kind, node and traversed links. Nil costs one
	// comparison per flow.
	spans obs.SpanRecorder
	// limiter, when set, caps each stream's solved rate (fault
	// injection: NIC stalls, core slowdowns). Nil costs nothing.
	limiter RateLimiter
	// m holds the optional instruments; nil instruments record nothing.
	m flowInstruments
}

// SetObserver installs a flow observer (nil removes it).
func (f *Flows) SetObserver(o FlowObserver) { f.observer = o }

// SetMachine sets the machine id reported with every observer and span
// notification. simnet.NewMachine calls it; standalone flow managers
// default to machine 0.
func (f *Flows) SetMachine(id int) { f.machine = id }

// Machine reports the flow manager's machine id.
func (f *Flows) Machine() int { return f.machine }

// SetSpanRecorder installs a causal span recorder: every flow started
// afterwards opens a "flow" span on begin and closes it on completion
// (nil removes it, leaving in-flight spans unclosed).
func (f *Flows) SetSpanRecorder(sr obs.SpanRecorder) { f.spans = sr }

// RateLimiter rescales a stream's solved rate: it receives the stream and
// the solver-granted rate (GB/s) and returns the rate actually applied
// (0 freezes the stream). It must be deterministic in (stream, rate, sim
// time) for the simulation to stay reproducible.
type RateLimiter func(st memsys.Stream, rate float64) float64

// SetRateLimiter installs a rate limiter (nil removes it, restoring the
// solver-granted rates). Installing or changing a limiter only takes
// effect at the next re-solve; call Refresh to apply it mid-flight.
func (f *Flows) SetRateLimiter(l RateLimiter) { f.limiter = l }

// Refresh integrates all active flows to the current time and re-solves
// their rates. Fault injection calls it when conditions change mid-flight
// (a stall begins or ends, a slowdown toggles) so progress before the
// change is banked at the old rates and the remainder runs at the new
// ones. With no active flows it is a no-op.
func (f *Flows) Refresh() {
	if len(f.active) == 0 {
		return
	}
	f.integrate()
	f.resolve()
}

// flowInstruments are the flow manager's telemetry hooks.
type flowInstruments struct {
	started       *obs.Counter
	finished      *obs.Counter
	rateResolves  *obs.Counter
	solverStreams *obs.Counter
	activeFlows   *obs.Gauge
	avgRate       *obs.Histogram
}

// SetRegistry registers the flow manager's instruments in r and starts
// recording into them. A nil registry detaches. Several flow managers may
// share one registry (the series aggregate across machines).
func (f *Flows) SetRegistry(r *obs.Registry) {
	f.m = flowInstruments{
		started:       r.Counter("memcontention_engine_flows_started_total", "Transfers started by the flow manager.", nil),
		finished:      r.Counter("memcontention_engine_flows_finished_total", "Transfers drained to completion.", nil),
		rateResolves:  r.Counter("memcontention_engine_rate_resolves_total", "Steady-state rate re-solves.", nil),
		solverStreams: r.Counter("memcontention_engine_solver_streams_total", "Streams passed to the memory-system solver, summed over re-solves.", nil),
		activeFlows:   r.Gauge("memcontention_engine_active_flows", "Concurrently active transfers.", nil),
		avgRate:       r.Histogram("memcontention_engine_flow_avg_rate_gbps", "Average bandwidth of finished flows.", obs.BandwidthBuckets(), nil),
	}
}

// flow is one in-progress transfer.
type flow struct {
	stream    memsys.Stream
	remaining float64 // bytes
	rate      float64 // GB/s, last solved
	started   float64 // sim time
	touched   float64 // sim time of the last progress integration
	done      *Signal
	finished  bool
	completed float64    // sim time at completion
	moved     float64    // bytes completed so far (for AvgRate)
	span      obs.SpanID // causal span, 0 when spans are off
}

// Handle identifies an active or completed transfer.
type Handle struct {
	fl *flow
	f  *Flows
	id int
}

// NewFlows returns a flow manager bound to sim and sys.
func NewFlows(sim *Sim, sys *memsys.System) *Flows {
	return &Flows{sim: sim, sys: sys, active: make(map[int]*flow)}
}

// System returns the underlying memory system.
func (f *Flows) System() *memsys.System { return f.sys }

// Start begins a transfer of size bytes described by the stream template
// (its ID field is overwritten with a fresh unique ID). It may be called
// from process or scheduler context. It panics on solver errors, which can
// only arise from malformed streams — a programming error.
func (f *Flows) Start(st memsys.Stream, size units.ByteSize) *Handle {
	return f.StartWithParent(st, size, 0)
}

// StartWithParent begins a transfer like Start, additionally parenting
// the flow's causal span under parent (0 = root) when a span recorder is
// attached. simnet parents the two DMA flows of a message under its
// transfer span; MPI parents compute flows under the compute phase.
func (f *Flows) StartWithParent(st memsys.Stream, size units.ByteSize, parent obs.SpanID) *Handle {
	f.nextID++
	id := f.nextID
	st.ID = id
	fl := &flow{
		stream:    st,
		remaining: float64(size.Bytes()),
		started:   f.sim.Now(),
		done:      f.sim.NewSignal(),
	}
	f.integrate()
	f.active[id] = fl
	f.m.started.Inc()
	f.m.activeFlows.Set(float64(len(f.active)))
	if f.observer != nil {
		f.observer.FlowStarted(f.machine, id, st, fl.remaining, fl.started)
	}
	if f.spans != nil {
		fl.span = f.spans.BeginSpan(parent, fmt.Sprintf("flow #%d", id), "flow", fl.started, obs.SpanAttrs{
			Machine: f.machine,
			Rank:    -1,
			Flow:    id,
			Stream:  st.Kind.String(),
			Node:    int(st.Node),
			Links:   f.sys.Links(st),
		})
	}
	f.resolve()
	return &Handle{fl: fl, f: f, id: id}
}

// TransferAndWait starts a transfer and parks the calling process until it
// completes. It returns the completion time and the average rate.
func (f *Flows) TransferAndWait(p *Proc, st memsys.Stream, size units.ByteSize) (at float64, avg units.Bandwidth) {
	h := f.Start(st, size)
	h.Wait(p)
	return h.CompletedAt(), h.AvgRate()
}

// Wait parks the calling process until the transfer completes.
func (h *Handle) Wait(p *Proc) {
	for !h.fl.finished {
		if p.waitReason == "" && p.waitLazy == nil {
			p.SetWaitReason("transfer-wait")
		}
		h.fl.done.Wait(p)
	}
}

// Done reports whether the transfer has completed.
func (h *Handle) Done() bool { return h.fl.finished }

// CompletedAt reports the completion time (0 when not finished).
func (h *Handle) CompletedAt() float64 {
	if !h.fl.finished {
		return 0
	}
	return h.fl.completed
}

// AvgRate reports the transfer's average bandwidth over its lifetime
// (0 when not finished or instantaneous).
func (h *Handle) AvgRate() units.Bandwidth {
	if !h.fl.finished {
		return 0
	}
	dur := h.fl.completed - h.fl.started
	if dur <= 0 {
		return 0
	}
	return units.Bandwidth(h.fl.moved / units.BytesPerGB / dur)
}

// CurrentRate reports the instantaneous solved rate of an active transfer.
func (h *Handle) CurrentRate() units.Bandwidth { return units.Bandwidth(h.fl.rate) }

// integrate advances every active flow to the current time at its last
// solved rate.
func (f *Flows) integrate() {
	now := f.sim.Now()
	for _, fl := range f.active {
		elapsed := now - fl.lastTouch()
		if elapsed <= 0 {
			continue
		}
		movedBytes := fl.rate * units.BytesPerGB * elapsed
		if movedBytes > fl.remaining {
			movedBytes = fl.remaining
		}
		fl.remaining -= movedBytes
		fl.moved += movedBytes
		fl.touched = now
	}
}

// lastTouch reports when the flow's remaining count was last updated.
func (fl *flow) lastTouch() float64 {
	if fl.touched > fl.started {
		return fl.touched
	}
	return fl.started
}

// resolve re-solves rates for the active set and schedules the next
// completion event.
func (f *Flows) resolve() {
	if f.pending != nil {
		f.pending.Cancel()
		f.pending = nil
	}
	if len(f.active) == 0 {
		return
	}
	ids := make([]int, 0, len(f.active))
	streams := make([]memsys.Stream, 0, len(f.active))
	for id, fl := range f.active {
		ids = append(ids, id)
		streams = append(streams, fl.stream)
	}
	sort.Ints(ids)
	sort.Slice(streams, func(i, j int) bool { return streams[i].ID < streams[j].ID })
	alloc, err := f.sys.Solve(streams)
	if err != nil {
		panic(fmt.Sprintf("engine: flow solve failed: %v", err))
	}
	f.m.rateResolves.Inc()
	f.m.solverStreams.Add(float64(len(streams)))
	nextAt := math.Inf(1)
	now := f.sim.Now()
	// applied collects the rates the flows actually run at — after the
	// limiter, which can differ from the solver's grants under fault
	// injection. Only built when someone is listening.
	var applied map[int]float64
	if f.observer != nil {
		applied = make(map[int]float64, len(ids))
	}
	for _, id := range ids {
		fl := f.active[id]
		fl.rate = alloc.Rate(id)
		if f.limiter != nil {
			fl.rate = f.limiter(fl.stream, fl.rate)
			if fl.rate < 0 || math.IsNaN(fl.rate) {
				fl.rate = 0
			}
		}
		if applied != nil {
			applied[id] = fl.rate
		}
		if fl.rate > 0 {
			eta := now + fl.remaining/(fl.rate*units.BytesPerGB)
			if eta < nextAt {
				nextAt = eta
			}
		}
	}
	if f.observer != nil {
		f.observer.RatesResolved(f.machine, now, applied)
	}
	if math.IsInf(nextAt, 1) {
		// No flow can progress; leave them parked. If nothing else
		// wakes the simulation, Run reports a deadlock.
		return
	}
	f.pending = f.sim.At(nextAt, f.onCompletion)
}

// onCompletion fires when the earliest flow(s) finish: it integrates
// progress, completes every drained flow, and re-solves the rest.
func (f *Flows) onCompletion() {
	f.pending = nil
	f.integrate()
	ids := make([]int, 0, len(f.active))
	for id := range f.active {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	const eps = 1 // byte: guards float roundoff
	for _, id := range ids {
		fl := f.active[id]
		if fl.remaining <= eps {
			fl.moved += fl.remaining
			fl.remaining = 0
			fl.finished = true
			fl.completed = f.sim.Now()
			delete(f.active, id)
			avg := 0.0
			if d := fl.completed - fl.started; d > 0 {
				avg = fl.moved / units.BytesPerGB / d
			}
			f.m.finished.Inc()
			f.m.activeFlows.Set(float64(len(f.active)))
			f.m.avgRate.Observe(avg)
			if f.observer != nil {
				f.observer.FlowFinished(f.machine, id, fl.completed, avg)
			}
			if f.spans != nil && fl.span != 0 {
				f.spans.EndSpan(fl.span, fl.completed)
			}
			fl.done.Fire()
		}
	}
	f.resolve()
}

// ActiveCount reports the number of in-progress transfers.
func (f *Flows) ActiveCount() int { return len(f.active) }
