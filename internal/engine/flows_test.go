package engine

import (
	"math"
	"testing"

	"memcontention/internal/memsys"
	"memcontention/internal/topology"
	"memcontention/internal/units"
)

func newFlowsSim(t *testing.T) (*Sim, *Flows, *memsys.System) {
	t.Helper()
	prof, err := memsys.ProfileFor("henri")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := memsys.New(topology.Henri(), prof)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSim()
	return sim, NewFlows(sim, sys), sys
}

func TestSingleTransferTiming(t *testing.T) {
	sim, flows, sys := newFlowsSim(t)
	var at float64
	var avg units.Bandwidth
	sim.Spawn("recv", func(p *Proc) {
		at, avg = flows.TransferAndWait(p, memsys.Stream{Kind: memsys.KindComm, Node: 0}, 64*units.MiB)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	nominal := sys.Profile().NominalComm(0)
	wantT := float64(64*units.MiB) / (nominal * units.BytesPerGB)
	if math.Abs(at-wantT) > 1e-9 {
		t.Errorf("completion at %v, want %v", at, wantT)
	}
	if math.Abs(avg.GBps()-nominal) > 1e-6 {
		t.Errorf("avg rate %v, want %v", avg.GBps(), nominal)
	}
}

func TestConcurrentFlowsShareAndFinish(t *testing.T) {
	// Two equal compute streams to the same node finish together; their
	// rates match the steady-state solver.
	sim, flows, sys := newFlowsSim(t)
	var done []float64
	sim.Spawn("main", func(p *Proc) {
		h1 := flows.Start(memsys.Stream{Kind: memsys.KindCompute, Core: 0, Node: 0, Demand: 5}, units.GiB)
		h2 := flows.Start(memsys.Stream{Kind: memsys.KindCompute, Core: 1, Node: 0, Demand: 5}, units.GiB)
		h1.Wait(p)
		done = append(done, p.Sim().Now())
		h2.Wait(p)
		done = append(done, p.Sim().Now())
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 || math.Abs(done[0]-done[1]) > 1e-12 {
		t.Errorf("equal flows must finish together: %v", done)
	}
	_ = sys
}

func TestRateResolveOnDeparture(t *testing.T) {
	// A small flow and a big flow on a constrained resource: when the
	// small one finishes, the big one must speed up, so its completion
	// is earlier than a fixed-rate estimate.
	prof, err := memsys.ProfileFor("henri")
	if err != nil {
		t.Fatal(err)
	}
	// Make the controller tiny so two comm streams contend: PCIe 12.
	prof.PCIeCap = 12
	sys, err := memsys.New(topology.Henri(), prof)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSim()
	flows := NewFlows(sim, sys)

	var bigDone float64
	sim.Spawn("main", func(p *Proc) {
		small := flows.Start(memsys.Stream{Kind: memsys.KindComm, Node: 0}, 32*units.MiB)
		big := flows.Start(memsys.Stream{Kind: memsys.KindComm, Node: 1}, 256*units.MiB)
		small.Wait(p)
		big.Wait(p)
		bigDone = p.Sim().Now()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Shared phase: PCIe 12 GB/s is split proportionally to the nominal
	// demands (10.9 for node 0, 11.3 for node 1). When the small flow
	// drains, the big one speeds up to its nominal 11.3 GB/s.
	smallRate := 12 * 10.9 / (10.9 + 11.3)
	bigRate := 12 * 11.3 / (10.9 + 11.3)
	sharedEnd := float64(32*units.MiB) / (smallRate * units.BytesPerGB)
	bigMoved := bigRate * units.BytesPerGB * sharedEnd
	rest := (float64(256*units.MiB) - bigMoved) / (11.3 * units.BytesPerGB)
	want := sharedEnd + rest
	if math.Abs(bigDone-want) > 1e-6 {
		t.Errorf("big flow done at %v, want %v (rate re-solve on departure)", bigDone, want)
	}
}

func TestFlowsMatchSteadyStateSolver(t *testing.T) {
	// DES cross-check (DESIGN.md E-series validation): instantaneous
	// rates of long-lived flows must equal the steady-state solution.
	sim, flows, sys := newFlowsSim(t)
	n := 14
	var handles []*Handle
	cores := sys.Platform().CoresOfSocket(0)
	var streams []memsys.Stream
	for i := 0; i < n; i++ {
		st := memsys.Stream{ID: i, Kind: memsys.KindCompute, Core: cores[i], Node: 0, Demand: 5}
		streams = append(streams, st)
	}
	comm := memsys.Stream{ID: 1000, Kind: memsys.KindComm, Node: 0}
	streams = append(streams, comm)

	want, err := sys.Solve(streams)
	if err != nil {
		t.Fatal(err)
	}

	sim.Spawn("main", func(p *Proc) {
		for _, st := range streams {
			handles = append(handles, flows.Start(st, units.GiB))
		}
		p.Sleep(1e-3) // mid-transfer probe
		for i, h := range handles {
			got := h.CurrentRate().GBps()
			id := streams[i].ID
			// Flow IDs are assigned by the manager; compare by
			// aggregate position: compute streams share one rate.
			var expect float64
			if streams[i].Kind == memsys.KindComm {
				expect = want.CommTotal
			} else {
				expect = want.ComputeTotal / float64(n)
			}
			if math.Abs(got-expect) > 1e-6 {
				t.Errorf("stream %d: DES rate %v, steady-state %v", id, got, expect)
			}
		}
		for _, h := range handles {
			h.Wait(p)
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHandleAccessors(t *testing.T) {
	sim, flows, _ := newFlowsSim(t)
	var h *Handle
	sim.Spawn("main", func(p *Proc) {
		h = flows.Start(memsys.Stream{Kind: memsys.KindComm, Node: 0}, units.MiB)
		if h.Done() {
			t.Error("fresh transfer must not be done")
		}
		if h.CompletedAt() != 0 || h.AvgRate() != 0 {
			t.Error("unfinished transfer must report zero completion stats")
		}
		h.Wait(p)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !h.Done() || h.CompletedAt() <= 0 || h.AvgRate() <= 0 {
		t.Error("finished transfer must report completion stats")
	}
	if flows.ActiveCount() != 0 {
		t.Error("no flows must remain active")
	}
}

func TestZeroByteTransfer(t *testing.T) {
	sim, flows, _ := newFlowsSim(t)
	completed := false
	sim.Spawn("main", func(p *Proc) {
		h := flows.Start(memsys.Stream{Kind: memsys.KindComm, Node: 0}, 0)
		h.Wait(p)
		completed = true
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !completed {
		t.Error("zero-byte transfer must complete immediately")
	}
}

func TestManySmallFlowsDrain(t *testing.T) {
	sim, flows, sys := newFlowsSim(t)
	cores := sys.Platform().CoresOfSocket(0)
	count := 0
	sim.Spawn("main", func(p *Proc) {
		var hs []*Handle
		for i := 0; i < len(cores); i++ {
			hs = append(hs, flows.Start(memsys.Stream{
				Kind: memsys.KindCompute, Core: cores[i], Node: 0, Demand: 5,
			}, units.ByteSize(i+1)*units.MiB))
		}
		for _, h := range hs {
			h.Wait(p)
			count++
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if count != len(cores) {
		t.Errorf("drained %d flows, want %d", count, len(cores))
	}
}
