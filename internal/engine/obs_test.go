package engine

import (
	"testing"

	"memcontention/internal/memsys"
	"memcontention/internal/obs"
	"memcontention/internal/topology"
	"memcontention/internal/units"
)

// runOverlapSim drives a small two-flow simulation, the workload shared by
// the instrumentation tests and the overhead benchmarks.
func runOverlapSim(tb testing.TB, reg *obs.Registry) {
	tb.Helper()
	prof, err := memsys.ProfileFor("henri")
	if err != nil {
		tb.Fatal(err)
	}
	sys, err := memsys.New(topology.Henri(), prof)
	if err != nil {
		tb.Fatal(err)
	}
	sim := NewSim()
	flows := NewFlows(sim, sys)
	sim.SetRegistry(reg)
	flows.SetRegistry(reg)
	sim.Spawn("main", func(p *Proc) {
		h1 := flows.Start(memsys.Stream{Kind: memsys.KindComm, Node: 0}, 8*units.MiB)
		h2 := flows.Start(memsys.Stream{Kind: memsys.KindCompute, Core: 0, Node: 0, Demand: 5}, 8*units.MiB)
		h1.Wait(p)
		h2.Wait(p)
	})
	if err := sim.Run(); err != nil {
		tb.Fatal(err)
	}
}

func TestEngineInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	runOverlapSim(t, reg)

	counter := func(name string) float64 {
		return reg.Counter(name, "", nil).Value()
	}
	if got := counter("memcontention_engine_flows_started_total"); got != 2 {
		t.Errorf("flows started = %v, want 2", got)
	}
	if got := counter("memcontention_engine_flows_finished_total"); got != 2 {
		t.Errorf("flows finished = %v, want 2", got)
	}
	// Re-solves: after each start and each completion wave.
	if got := counter("memcontention_engine_rate_resolves_total"); got < 2 {
		t.Errorf("rate resolves = %v, want >= 2", got)
	}
	if got := counter("memcontention_engine_solver_streams_total"); got < 3 {
		t.Errorf("solver streams = %v, want >= 3", got)
	}
	if got := counter("memcontention_engine_events_fired_total"); got < 3 {
		t.Errorf("events fired = %v, want >= 3", got)
	}
	if got := counter("memcontention_engine_procs_spawned_total"); got != 1 {
		t.Errorf("procs spawned = %v, want 1", got)
	}
	if got := reg.Gauge("memcontention_engine_active_flows", "", nil).Value(); got != 0 {
		t.Errorf("active flows at end = %v, want 0", got)
	}
	if got := reg.Gauge("memcontention_engine_virtual_time_seconds", "", nil).Value(); got <= 0 {
		t.Errorf("virtual time = %v, want > 0", got)
	}
	if got := reg.Histogram("memcontention_engine_flow_avg_rate_gbps", "", nil, nil).Count(); got != 2 {
		t.Errorf("avg rate observations = %v, want 2", got)
	}
}

// TestNilRegistryIsNoop ensures the instrumented paths run identically
// with telemetry detached — the zero-cost-when-unset contract.
func TestNilRegistryIsNoop(t *testing.T) {
	runOverlapSim(t, nil) // must not panic or record anywhere
}

// BenchmarkFlowsNilRegistry is the baseline the <1 % instrumentation
// overhead claim is checked against (compare with BenchmarkFlowsRegistry
// via benchstat).
func BenchmarkFlowsNilRegistry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runOverlapSim(b, nil)
	}
}

// BenchmarkFlowsRegistry is the same workload with live instruments.
func BenchmarkFlowsRegistry(b *testing.B) {
	reg := obs.NewRegistry()
	for i := 0; i < b.N; i++ {
		runOverlapSim(b, reg)
	}
}
