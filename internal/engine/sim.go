// Package engine provides a deterministic discrete-event simulation core
// with cooperatively scheduled processes and fluid-flow data transfers.
//
// Processes (Proc) are goroutines, but exactly one of them — or the
// scheduler — runs at any instant: control is handed over explicitly, so a
// simulation is single-threaded in effect and bit-for-bit reproducible.
// Simulated time only advances in the scheduler, between events.
//
// The Flows manager (flows.go) integrates finite-size data transfers whose
// instantaneous rates come from the memsys solver: whenever a transfer
// starts or completes, all rates are re-solved, which is exactly the fluid
// approximation of bandwidth sharing the paper's steady-state measurements
// assume.
package engine

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"memcontention/internal/obs"
)

// event is a scheduled callback. Events at equal times fire in scheduling
// order (seq), which keeps the simulation deterministic.
type event struct {
	time float64
	seq  int64
	fire func()
	// cancelled events stay in the heap but do nothing when popped.
	cancelled bool
	index     int
}

// eventHeap orders events by (time, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a simulation instance. Create one with NewSim, spawn processes,
// then call Run. A Sim must not be shared between concurrently running
// simulations; all access happens in scheduler or process context.
type Sim struct {
	now    float64
	seq    int64
	events eventHeap
	procs  []*Proc
	// yield carries control from the running process back to the
	// scheduler; each Proc has its own resume channel.
	yield   chan struct{}
	running bool
	failure error
	// fired counts events executed, for the event-count budget.
	fired int64
	// budgets; zero values disable the watchdog entirely.
	maxSimTime float64
	maxEvents  int64
	// ctx/done carry external cancellation (SIGINT, test deadlines).
	// A nil done channel — the default, and what context.Background()
	// yields — keeps the event loop entirely check-free.
	ctx  context.Context
	done <-chan struct{}
	// m holds the optional instruments; the zero value (nil pointers)
	// makes every recording call a no-op.
	m simInstruments
}

// simInstruments are the scheduler's telemetry hooks. Nil instruments
// (registry never attached) record nothing at zero cost.
type simInstruments struct {
	eventsFired  *obs.Counter
	procsSpawned *obs.Counter
	virtualTime  *obs.Gauge
}

// SetRegistry registers the scheduler's instruments in r and starts
// recording into them. A nil registry detaches (instrumentation becomes
// no-op again).
func (s *Sim) SetRegistry(r *obs.Registry) {
	s.m = simInstruments{
		eventsFired:  r.Counter("memcontention_engine_events_fired_total", "Scheduler events fired.", nil),
		procsSpawned: r.Counter("memcontention_engine_procs_spawned_total", "Simulated processes spawned.", nil),
		virtualTime:  r.Gauge("memcontention_engine_virtual_time_seconds", "Current simulated time.", nil),
	}
}

// NewSim returns an empty simulation at time zero.
func NewSim() *Sim {
	return &Sim{yield: make(chan struct{})}
}

// Now reports the current simulated time in seconds.
func (s *Sim) Now() float64 { return s.now }

// At schedules fn to run in scheduler context at absolute time t (clamped
// to now). It returns a handle that can cancel the event.
func (s *Sim) At(t float64, fn func()) *Timer {
	if t < s.now {
		t = s.now
	}
	e := &event{time: t, seq: s.seq, fire: fn}
	s.seq++
	heap.Push(&s.events, e)
	return &Timer{ev: e}
}

// After schedules fn after a delay d >= 0.
func (s *Sim) After(d float64, fn func()) *Timer {
	if d < 0 || math.IsNaN(d) {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Timer is a cancellable scheduled event.
type Timer struct{ ev *event }

// Cancel prevents the event from firing. Cancelling a fired or already
// cancelled timer is a no-op.
func (t *Timer) Cancel() {
	if t != nil && t.ev != nil {
		t.ev.cancelled = true
	}
}

// Proc is a simulated process. Its methods must only be called from the
// process's own goroutine (inside the function passed to Spawn).
type Proc struct {
	sim    *Sim
	name   string
	resume chan struct{}
	done   bool
	parked bool
	// waitReason/waitSince describe why the process is blocked, for
	// deadlock and watchdog diagnosis. The reason is set by the park
	// site (or defaults to "parked") and cleared on resume. waitLazy,
	// when set, takes precedence and is rendered only at diagnosis
	// time, keeping Sprintf costs off the happy path.
	waitReason string
	waitLazy   fmt.Stringer
	waitSince  float64
}

// Name reports the process name given to Spawn.
func (p *Proc) Name() string { return p.name }

// SetWaitReason records why the process is about to block. Park sites that
// know more than the engine (an MPI receive, a barrier) call it right
// before parking; the reason is cleared when the process resumes.
func (p *Proc) SetWaitReason(reason string) {
	p.waitReason = reason
	p.waitLazy = nil
	p.waitSince = p.sim.now
}

// SetWaitStringer is SetWaitReason for park sites whose description is
// expensive to render (an MPI operation name): s.String() is called only
// if the process ends up in a deadlock or watchdog diagnosis. Storing an
// existing pointer in the interface does not allocate.
func (p *Proc) SetWaitStringer(s fmt.Stringer) {
	p.waitReason = ""
	p.waitLazy = s
	p.waitSince = p.sim.now
}

// Sim returns the owning simulation.
func (p *Proc) Sim() *Sim { return p.sim }

// Spawn creates a process that will start at the current simulated time.
// It may be called before Run or from any running process.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{sim: s, name: name, resume: make(chan struct{})}
	s.procs = append(s.procs, p)
	s.m.procsSpawned.Inc()
	s.At(s.now, func() {
		go func() {
			defer func() {
				if r := recover(); r != nil && s.failure == nil {
					s.failure = fmt.Errorf("engine: process %q panicked: %v", name, r)
				}
				p.done = true
				s.yield <- struct{}{}
			}()
			fn(p)
		}()
		<-s.yield // wait until the new process parks or finishes
	})
	return p
}

// park suspends the calling process and returns control to the scheduler.
// The process resumes when some event sends on p.resume.
func (p *Proc) park() {
	if p.waitReason == "" && p.waitLazy == nil {
		p.waitReason = "parked"
		p.waitSince = p.sim.now
	}
	p.parked = true
	p.sim.yield <- struct{}{}
	<-p.resume
	p.parked = false
	p.waitReason = ""
	p.waitLazy = nil
}

// wake resumes a parked process from scheduler context and waits for it to
// park again or finish.
func (s *Sim) wake(p *Proc) {
	p.resume <- struct{}{}
	<-s.yield
}

// Sleep suspends the process for d simulated seconds (d < 0 is treated as
// zero, which still yields to the scheduler once).
func (p *Proc) Sleep(d float64) {
	s := p.sim
	s.After(d, func() { s.wake(p) })
	p.SetWaitReason("sleep")
	p.park()
}

// Signal is a broadcast condition processes can wait on. The zero value is
// not usable; create signals with NewSignal.
type Signal struct {
	sim     *Sim
	waiters []*Proc
}

// NewSignal returns a signal bound to the simulation.
func (s *Sim) NewSignal() *Signal { return &Signal{sim: s} }

// Wait parks the calling process until the next Fire.
func (sg *Signal) Wait(p *Proc) {
	sg.waiters = append(sg.waiters, p)
	p.park()
}

// Fire wakes every current waiter (in wait order) at the current time.
// It may be called from process or scheduler context.
func (sg *Signal) Fire() {
	waiters := sg.waiters
	sg.waiters = nil
	for _, w := range waiters {
		w := w
		sg.sim.At(sg.sim.now, func() { sg.sim.wake(w) })
	}
}

// WaitState describes one blocked process: its name, why it parked (as
// reported by the park site) and the simulated time at which it did.
type WaitState struct {
	Proc   string  `json:"proc"`
	Reason string  `json:"reason"`
	Since  float64 `json:"since"`
}

func (w WaitState) String() string {
	return fmt.Sprintf("%s [%s, since t=%.6fs]", w.Proc, w.Reason, w.Since)
}

// formatStuck renders wait states for error messages, name-sorted.
func formatStuck(stuck []WaitState) string {
	parts := make([]string, len(stuck))
	for i, w := range stuck {
		parts[i] = w.String()
	}
	return strings.Join(parts, "; ")
}

// DeadlockError reports a simulation that ran out of events while
// processes were still blocked, with each process's wait diagnosis.
type DeadlockError struct {
	// At is the simulated time at which the event queue drained.
	At float64
	// Stuck lists every unfinished process, sorted by name.
	Stuck []WaitState
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("engine: deadlock at t=%.6fs, %d process(es) still waiting: %s",
		e.At, len(e.Stuck), formatStuck(e.Stuck))
}

// BudgetError reports a watchdog trip: the simulation exceeded its
// simulated-time or event-count budget before completing.
type BudgetError struct {
	// Kind is "sim-time" or "event-count".
	Kind string
	// Limit is the exceeded budget (seconds or events).
	Limit float64
	// At is the simulated time when the watchdog fired.
	At float64
	// Events is the number of events fired so far.
	Events int64
	// Stuck lists every unfinished process, sorted by name.
	Stuck []WaitState
}

func (e *BudgetError) Error() string {
	var what string
	switch e.Kind {
	case "sim-time":
		what = fmt.Sprintf("simulated-time budget %.6fs exceeded", e.Limit)
	default:
		what = fmt.Sprintf("event budget %d exceeded", int64(e.Limit))
	}
	msg := fmt.Sprintf("engine: watchdog: %s at t=%.6fs after %d events", what, e.At, e.Events)
	if len(e.Stuck) > 0 {
		msg += fmt.Sprintf("; %d process(es) unfinished: %s", len(e.Stuck), formatStuck(e.Stuck))
	}
	return msg
}

// CanceledError reports a run stopped by external cancellation (signal
// handler, test deadline): the event loop exited cleanly between two
// events, so simulation state is consistent and partial results can be
// flushed. It unwraps to the context's cause, so
// errors.Is(err, context.Canceled) identifies a graceful shutdown.
type CanceledError struct {
	// At is the simulated time at which the run stopped.
	At float64
	// Events is the number of events fired before stopping.
	Events int64
	// Cause is the context's cancellation cause.
	Cause error
	// Stuck lists every unfinished process, sorted by name.
	Stuck []WaitState
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("engine: run canceled at t=%.6fs after %d events (%d process(es) unfinished): %v",
		e.At, e.Events, len(e.Stuck), e.Cause)
}

// Unwrap exposes the cancellation cause for errors.Is/As.
func (e *CanceledError) Unwrap() error { return e.Cause }

// SetContext installs an external cancellation source: Run returns a
// *CanceledError as soon as ctx is done, checked between events (never
// mid-event, so state stays consistent). A nil context — or any context
// that can never be canceled, such as context.Background() — removes the
// check entirely, keeping the historical zero-cost event loop.
func (s *Sim) SetContext(ctx context.Context) {
	if ctx == nil {
		s.ctx, s.done = nil, nil
		return
	}
	s.ctx, s.done = ctx, ctx.Done()
}

// SetBudget arms the watchdog: Run fails with a BudgetError as soon as
// simulated time would pass maxSimTime seconds or more than maxEvents
// events have fired. A zero (or negative) value disables that budget;
// SetBudget(0, 0) disarms the watchdog completely (the default).
func (s *Sim) SetBudget(maxSimTime float64, maxEvents int64) {
	if maxSimTime < 0 || math.IsNaN(maxSimTime) {
		maxSimTime = 0
	}
	if maxEvents < 0 {
		maxEvents = 0
	}
	s.maxSimTime = maxSimTime
	s.maxEvents = maxEvents
}

// EventsFired reports the number of events executed so far.
func (s *Sim) EventsFired() int64 { return s.fired }

// waitStates lists every unfinished process's wait state, name-sorted.
func (s *Sim) waitStates() []WaitState {
	var stuck []WaitState
	for _, p := range s.procs {
		if p.done {
			continue
		}
		reason := p.waitReason
		if p.waitLazy != nil {
			reason = p.waitLazy.String()
		}
		if reason == "" {
			reason = "not yet scheduled"
		}
		stuck = append(stuck, WaitState{Proc: p.name, Reason: reason, Since: p.waitSince})
	}
	sort.Slice(stuck, func(i, j int) bool {
		if stuck[i].Proc != stuck[j].Proc {
			return stuck[i].Proc < stuck[j].Proc
		}
		return stuck[i].Since < stuck[j].Since
	})
	return stuck
}

// Run executes the simulation until no events remain. It returns an error
// if a process panicked, if processes remain parked with no pending event
// that could wake them (*DeadlockError), or if an armed watchdog budget is
// exceeded (*BudgetError).
func (s *Sim) Run() error {
	if s.running {
		return fmt.Errorf("engine: Run called re-entrantly")
	}
	s.running = true
	defer func() { s.running = false }()

	for s.events.Len() > 0 {
		if s.done != nil {
			select {
			case <-s.done:
				return &CanceledError{At: s.now, Events: s.fired, Cause: context.Cause(s.ctx), Stuck: s.waitStates()}
			default:
			}
		}
		e := heap.Pop(&s.events).(*event)
		if e.cancelled {
			continue
		}
		if e.time < s.now {
			return fmt.Errorf("engine: event time went backwards (%.9f < %.9f)", e.time, s.now)
		}
		if s.maxSimTime > 0 && e.time > s.maxSimTime {
			return &BudgetError{Kind: "sim-time", Limit: s.maxSimTime, At: s.now, Events: s.fired, Stuck: s.waitStates()}
		}
		if s.maxEvents > 0 && s.fired >= s.maxEvents {
			return &BudgetError{Kind: "event-count", Limit: float64(s.maxEvents), At: s.now, Events: s.fired, Stuck: s.waitStates()}
		}
		s.now = e.time
		s.fired++
		s.m.eventsFired.Inc()
		s.m.virtualTime.Set(s.now)
		e.fire()
		if s.failure != nil {
			return s.failure
		}
	}
	if stuck := s.waitStates(); len(stuck) > 0 {
		return &DeadlockError{At: s.now, Stuck: stuck}
	}
	return nil
}
