package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestEventOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.At(2.0, func() { order = append(order, 2) })
	s.At(1.0, func() { order = append(order, 1) })
	s.At(3.0, func() { order = append(order, 3) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("events fired out of order: %v", order)
	}
	if s.Now() != 3.0 {
		t.Errorf("final time %v, want 3.0", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := NewSim()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(1.0, func() { order = append(order, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events must fire in scheduling order, got %v", order)
		}
	}
}

func TestTimerCancel(t *testing.T) {
	s := NewSim()
	fired := false
	tm := s.At(1.0, func() { fired = true })
	tm.Cancel()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled timer fired")
	}
	tm.Cancel() // double cancel is a no-op
	var nilTimer *Timer
	nilTimer.Cancel() // nil-safe
}

func TestAfterClampsNegative(t *testing.T) {
	s := NewSim()
	at := -1.0
	s.After(-5, func() { at = s.Now() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 0 {
		t.Errorf("negative delay must clamp to now, fired at %v", at)
	}
}

func TestProcSleep(t *testing.T) {
	s := NewSim()
	var wake []float64
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(1.5)
		wake = append(wake, p.Sim().Now())
		p.Sleep(0.5)
		wake = append(wake, p.Sim().Now())
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(wake) != 2 || wake[0] != 1.5 || wake[1] != 2.0 {
		t.Errorf("sleep times wrong: %v", wake)
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		s := NewSim()
		var log []string
		for _, name := range []string{"a", "b"} {
			name := name
			s.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					log = append(log, name)
					p.Sleep(1)
				}
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	first := run()
	for i := 0; i < 5; i++ {
		if strings.Join(run(), "") != strings.Join(first, "") {
			t.Fatal("process interleaving is not deterministic")
		}
	}
}

func TestSignalWakesAllWaiters(t *testing.T) {
	s := NewSim()
	sig := s.NewSignal()
	woken := 0
	for i := 0; i < 3; i++ {
		s.Spawn("waiter", func(p *Proc) {
			sig.Wait(p)
			woken++
		})
	}
	s.Spawn("firer", func(p *Proc) {
		p.Sleep(1)
		sig.Fire()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 3 {
		t.Errorf("woken = %d, want 3", woken)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := NewSim()
	sig := s.NewSignal()
	s.Spawn("stuck", func(p *Proc) {
		sig.Wait(p) // never fired
	})
	err := s.Run()
	if err == nil {
		t.Fatal("deadlocked simulation must return an error")
	}
	if !strings.Contains(err.Error(), "stuck") {
		t.Errorf("deadlock error must name the process: %v", err)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	s := NewSim()
	var childAt float64
	s.Spawn("parent", func(p *Proc) {
		p.Sleep(1)
		p.Sim().Spawn("child", func(c *Proc) {
			c.Sleep(1)
			childAt = c.Sim().Now()
		})
		p.Sleep(5)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if childAt != 2.0 {
		t.Errorf("child finished at %v, want 2.0", childAt)
	}
}

func TestProcessPanicSurfaces(t *testing.T) {
	s := NewSim()
	s.Spawn("bomb", func(p *Proc) {
		panic("boom")
	})
	err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("panic must surface as error, got %v", err)
	}
}

func TestRunTwice(t *testing.T) {
	s := NewSim()
	s.At(1, func() {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// A second Run with new events continues from the current time.
	fired := false
	s.At(2, func() { fired = true })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("second Run must process new events")
	}
}

func TestProcName(t *testing.T) {
	s := NewSim()
	var got string
	s.Spawn("my-rank", func(p *Proc) { got = p.Name() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "my-rank" {
		t.Errorf("Name() = %q", got)
	}
}

func TestSignalFireWithoutWaiters(t *testing.T) {
	s := NewSim()
	sig := s.NewSignal()
	s.At(1, func() { sig.Fire() }) // no waiters: must be a no-op
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEventSchedulingInsideEvent(t *testing.T) {
	s := NewSim()
	var order []int
	s.At(1, func() {
		order = append(order, 1)
		s.At(1, func() { order = append(order, 2) })   // same time, later seq
		s.At(0.5, func() { order = append(order, 3) }) // past: clamped to now
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("nested scheduling order = %v", order)
	}
}

func TestManyProcsStress(t *testing.T) {
	s := NewSim()
	const procs = 200
	done := 0
	for i := 0; i < procs; i++ {
		i := i
		s.Spawn("p", func(p *Proc) {
			p.Sleep(float64(i%7) * 1e-4)
			done++
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if done != procs {
		t.Errorf("%d/%d processes completed", done, procs)
	}
}

func TestRunCanceledBeforeStart(t *testing.T) {
	s := NewSim()
	s.Spawn("p", func(p *Proc) { p.Sleep(1) })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.SetContext(ctx)
	err := s.Run()
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v does not unwrap to context.Canceled", err)
	}
	if len(ce.Stuck) != 1 {
		t.Fatalf("stuck = %v, want the unstarted process", ce.Stuck)
	}
}

func TestRunCanceledMidRun(t *testing.T) {
	s := NewSim()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.SetContext(ctx)
	fired := 0
	for i := 0; i < 10; i++ {
		i := i
		s.After(float64(i), func() {
			fired++
			if i == 4 {
				cancel()
			}
		})
	}
	err := s.Run()
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
	if fired != 5 {
		t.Fatalf("fired %d events, want 5 (cancellation takes effect between events)", fired)
	}
	if ce.At != 4 || ce.Events != 5 {
		t.Fatalf("CanceledError At=%v Events=%d, want At=4 Events=5", ce.At, ce.Events)
	}
}

func TestBackgroundContextIsFree(t *testing.T) {
	s := NewSim()
	s.SetContext(context.Background())
	done := false
	s.After(1, func() { done = true })
	if err := s.Run(); err != nil || !done {
		t.Fatalf("run with background context: err=%v done=%v", err, done)
	}
	// nil resets to no checking at all.
	s2 := NewSim()
	s2.SetContext(nil)
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
}
