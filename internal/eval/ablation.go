package eval

import (
	"fmt"

	"memcontention/internal/baseline"
	"memcontention/internal/bench"
	"memcontention/internal/calib"
	"memcontention/internal/export"
	"memcontention/internal/stats"
)

// AblationRow is one predictor's error summary in the E10 study.
type AblationRow struct {
	Name     string  `json:"name"`
	CommMAPE float64 `json:"comm_mape"`
	CompMAPE float64 `json:"comp_mape"`
	Overall  float64 `json:"overall"` // pooled comm+comp MAPE
}

// Ablation runs the E10 study on one platform: calibrate once, then score
// the paper's threshold model and every baseline against the measured
// curves of all placements.
func Ablation(runner *bench.Runner) ([]AblationRow, error) {
	m, err := calib.CalibrateRunner(runner)
	if err != nil {
		return nil, fmt.Errorf("eval: ablation: %w", err)
	}
	curves, err := runner.RunAll()
	if err != nil {
		return nil, fmt.Errorf("eval: ablation: %w", err)
	}
	var rows []AblationRow
	for _, p := range baseline.All(m) {
		var commA, commP, compA, compP []float64
		for _, c := range curves {
			for _, pt := range c.Points {
				pred, err := p.Predict(pt.N, c.Placement)
				if err != nil {
					return nil, fmt.Errorf("eval: ablation: %s: %w", p.Name(), err)
				}
				commA = append(commA, pt.CommPar)
				commP = append(commP, pred.Comm)
				compA = append(compA, pt.CompPar)
				compP = append(compP, pred.Comp)
			}
		}
		row := AblationRow{Name: p.Name()}
		if row.CommMAPE, err = stats.MAPE(commA, commP); err != nil {
			return nil, err
		}
		if row.CompMAPE, err = stats.MAPE(compA, compP); err != nil {
			return nil, err
		}
		if row.Overall, err = stats.MAPE(
			append(append([]float64(nil), commA...), compA...),
			append(append([]float64(nil), commP...), compP...),
		); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationTable renders the study.
func AblationTable(platform string, rows []AblationRow) *export.Table {
	t := export.NewTable(
		fmt.Sprintf("ABLATION — predictor errors on %s (all placements)", platform),
		"Predictor", "Comm MAPE", "Comp MAPE", "Overall",
	)
	for _, r := range rows {
		t.AddRow(r.Name, export.Pct(r.CommMAPE), export.Pct(r.CompMAPE), export.Pct(r.Overall))
	}
	return t
}
