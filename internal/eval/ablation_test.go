package eval

import (
	"strings"
	"testing"

	"memcontention/internal/bench"
	"memcontention/internal/topology"
)

func TestAblation(t *testing.T) {
	runner, err := bench.NewRunner(bench.Config{Platform: topology.Henri(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Ablation(runner)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4 (model + 3 baselines)", len(rows))
	}
	if rows[0].Name != "threshold-model" {
		t.Error("the paper's model must come first")
	}
	for _, r := range rows[1:] {
		if r.Overall <= rows[0].Overall {
			t.Errorf("%s (%.2f%%) must be worse than the threshold model (%.2f%%)",
				r.Name, r.Overall, rows[0].Overall)
		}
	}
	// The no-contention baseline fails hardest on communications.
	for _, r := range rows {
		if r.Name == "no-contention" && r.CommMAPE < 30 {
			t.Errorf("no-contention comm MAPE %.2f%% suspiciously low", r.CommMAPE)
		}
	}
	text := AblationTable("henri", rows).String()
	for _, want := range []string{"threshold-model", "fair-share", "langguth-style", "%"} {
		if !strings.Contains(text, want) {
			t.Errorf("ablation table missing %q", want)
		}
	}
}
