// Package eval runs the paper's full evaluation (§IV): it benchmarks every
// data-placement configuration of a platform, calibrates the model from
// the two sample placements only, predicts all placements, and computes
// the prediction-error statistics of Table II. It also assembles the data
// series behind Figures 2–8.
package eval

import (
	"fmt"
	"math"

	"memcontention/internal/bench"
	"memcontention/internal/calib"
	"memcontention/internal/export"
	"memcontention/internal/model"
	"memcontention/internal/obs"
	"memcontention/internal/stats"
	"memcontention/internal/topology"
)

// PlacementResult holds measured and predicted bandwidths for one
// placement (one subplot of Figures 3–8).
type PlacementResult struct {
	Placement model.Placement    `json:"placement"`
	IsSample  bool               `json:"is_sample"`
	Measured  *bench.Curve       `json:"measured"`
	Predicted []model.Prediction `json:"predicted"` // index n-1
	CommMAPE  float64            `json:"comm_mape"`
	CompMAPE  float64            `json:"comp_mape"`
}

// ErrorSummary is one row of Table II.
type ErrorSummary struct {
	CommSamples    float64 `json:"comm_samples"`
	CommNonSamples float64 `json:"comm_non_samples"`
	CommAll        float64 `json:"comm_all"`
	CompSamples    float64 `json:"comp_samples"`
	CompNonSamples float64 `json:"comp_non_samples"`
	CompAll        float64 `json:"comp_all"`
	// Average is the mean of CommAll and CompAll, the table's last
	// column.
	Average float64 `json:"average"`
}

// PlatformResult is the complete evaluation of one platform.
type PlatformResult struct {
	Platform   string             `json:"platform"`
	Model      model.Model        `json:"model"`
	Placements []*PlacementResult `json:"placements"`
	Errors     ErrorSummary       `json:"errors"`
}

// EvaluatePlatform runs the complete §IV pipeline for one configuration.
func EvaluatePlatform(cfg bench.Config) (*PlatformResult, error) {
	runner, err := bench.NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	return EvaluateRunner(runner)
}

// EvaluateRunner is EvaluatePlatform for a pre-built runner. The runner's
// telemetry registry, when configured, receives evaluation instruments
// (per-platform MAPE gauges, per-configuration absolute-error histograms).
func EvaluateRunner(runner *bench.Runner) (*PlatformResult, error) {
	plat := runner.Config().Platform
	m, err := calib.CalibrateRunner(runner)
	if err != nil {
		return nil, fmt.Errorf("eval: %s: %w", plat.Name, err)
	}
	curves, err := runner.RunAll()
	if err != nil {
		return nil, fmt.Errorf("eval: %s: %w", plat.Name, err)
	}
	res := &PlatformResult{Platform: plat.Name, Model: m}
	for _, curve := range curves {
		pr, err := evaluatePlacement(m, curve)
		if err != nil {
			return nil, fmt.Errorf("eval: %s: %w", plat.Name, err)
		}
		res.Placements = append(res.Placements, pr)
	}
	res.Errors, err = summarize(res.Placements)
	if err != nil {
		return nil, fmt.Errorf("eval: %s: %w", plat.Name, err)
	}
	recordEvaluation(runner.Registry(), res)
	return res, nil
}

// recordEvaluation publishes one platform evaluation: a completion
// counter, the Table II MAPE numbers as labelled gauges, and one
// absolute-error histogram per placement configuration and stream kind.
// A nil registry records nothing.
func recordEvaluation(reg *obs.Registry, res *PlatformResult) {
	if reg == nil {
		return
	}
	reg.Counter("memcontention_eval_platforms_total", "Platform evaluations completed.", nil).Inc()
	placements := reg.Counter("memcontention_eval_placements_total", "Placement configurations evaluated.", nil)
	platLabels := obs.L{"platform": res.Platform}
	reg.Gauge("memcontention_eval_comm_mape_percent", "Communication MAPE over all placements (Table II).", platLabels).Set(res.Errors.CommAll)
	reg.Gauge("memcontention_eval_comp_mape_percent", "Computation MAPE over all placements (Table II).", platLabels).Set(res.Errors.CompAll)
	errBuckets := obs.ExponentialBuckets(1e-3, 4, 12)
	for _, pr := range res.Placements {
		placements.Inc()
		labels := obs.L{"platform": res.Platform, "placement": pr.Placement.String()}
		commErr := reg.Histogram("memcontention_eval_comm_abs_error_gbps", "Absolute communication prediction errors per configuration.", errBuckets, labels)
		compErr := reg.Histogram("memcontention_eval_comp_abs_error_gbps", "Absolute computation prediction errors per configuration.", errBuckets, labels)
		for i, pt := range pr.Measured.Points {
			commErr.Observe(math.Abs(pt.CommPar - pr.Predicted[i].Comm))
			compErr.Observe(math.Abs(pt.CompPar - pr.Predicted[i].Comp))
		}
	}
}

func evaluatePlacement(m model.Model, curve *bench.Curve) (*PlacementResult, error) {
	preds, err := m.PredictCurve(len(curve.Points), curve.Placement)
	if err != nil {
		return nil, err
	}
	pr := &PlacementResult{
		Placement: curve.Placement,
		IsSample:  m.IsSample(curve.Placement),
		Measured:  curve,
		Predicted: preds,
	}
	var aComm, pComm, aComp, pComp []float64
	for i, pt := range curve.Points {
		aComm = append(aComm, pt.CommPar)
		pComm = append(pComm, preds[i].Comm)
		aComp = append(aComp, pt.CompPar)
		pComp = append(pComp, preds[i].Comp)
	}
	if pr.CommMAPE, err = stats.MAPE(aComm, pComm); err != nil {
		return nil, err
	}
	if pr.CompMAPE, err = stats.MAPE(aComp, pComp); err != nil {
		return nil, err
	}
	return pr, nil
}

// summarize pools per-point errors into the Table II categories.
func summarize(placements []*PlacementResult) (ErrorSummary, error) {
	var commS, commN, compS, compN struct{ actual, pred []float64 }
	for _, pr := range placements {
		for i, pt := range pr.Measured.Points {
			if pr.IsSample {
				commS.actual = append(commS.actual, pt.CommPar)
				commS.pred = append(commS.pred, pr.Predicted[i].Comm)
				compS.actual = append(compS.actual, pt.CompPar)
				compS.pred = append(compS.pred, pr.Predicted[i].Comp)
			} else {
				commN.actual = append(commN.actual, pt.CommPar)
				commN.pred = append(commN.pred, pr.Predicted[i].Comm)
				compN.actual = append(compN.actual, pt.CompPar)
				compN.pred = append(compN.pred, pr.Predicted[i].Comp)
			}
		}
	}
	var s ErrorSummary
	var err error
	if s.CommSamples, err = stats.MAPE(commS.actual, commS.pred); err != nil {
		return s, fmt.Errorf("comm sample errors: %w", err)
	}
	if s.CompSamples, err = stats.MAPE(compS.actual, compS.pred); err != nil {
		return s, fmt.Errorf("comp sample errors: %w", err)
	}
	// Platforms can have only sample placements in degenerate layouts;
	// pooled "all" always exists.
	if len(commN.actual) > 0 {
		if s.CommNonSamples, err = stats.MAPE(commN.actual, commN.pred); err != nil {
			return s, err
		}
		if s.CompNonSamples, err = stats.MAPE(compN.actual, compN.pred); err != nil {
			return s, err
		}
	}
	allCommA := append(append([]float64(nil), commS.actual...), commN.actual...)
	allCommP := append(append([]float64(nil), commS.pred...), commN.pred...)
	allCompA := append(append([]float64(nil), compS.actual...), compN.actual...)
	allCompP := append(append([]float64(nil), compS.pred...), compN.pred...)
	if s.CommAll, err = stats.MAPE(allCommA, allCommP); err != nil {
		return s, err
	}
	if s.CompAll, err = stats.MAPE(allCompA, allCompP); err != nil {
		return s, err
	}
	s.Average = (s.CommAll + s.CompAll) / 2
	return s, nil
}

// TestbedConfigs returns the default benchmark configurations for the six
// Table I platforms.
func TestbedConfigs(seed uint64) []bench.Config {
	plats := topology.Testbed()
	cfgs := make([]bench.Config, len(plats))
	for i, p := range plats {
		cfgs[i] = bench.Config{Platform: p, Seed: seed}
	}
	return cfgs
}

// EvaluateTestbed evaluates every Table I platform.
func EvaluateTestbed(seed uint64) ([]*PlatformResult, error) {
	var out []*PlatformResult
	for _, cfg := range TestbedConfigs(seed) {
		r, err := EvaluatePlatform(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Table2 renders the model-error table in the paper's layout, including
// the final cross-platform Average row.
func Table2(results []*PlatformResult) *export.Table {
	t := export.NewTable(
		"TABLE II — MODEL ERRORS ON TESTBED PLATFORMS",
		"Platform",
		"Comm on Samples", "Comm on non-Samples", "Comm all",
		"Comp on Samples", "Comp on non-Samples", "Comp all",
		"Average",
	)
	var cs, cn, ca, ps, pn, pa, avg []float64
	for _, r := range results {
		e := r.Errors
		t.AddRow(r.Platform,
			export.Pct(e.CommSamples), export.Pct(e.CommNonSamples), export.Pct(e.CommAll),
			export.Pct(e.CompSamples), export.Pct(e.CompNonSamples), export.Pct(e.CompAll),
			export.Pct(e.Average),
		)
		cs = append(cs, e.CommSamples)
		cn = append(cn, e.CommNonSamples)
		ca = append(ca, e.CommAll)
		ps = append(ps, e.CompSamples)
		pn = append(pn, e.CompNonSamples)
		pa = append(pa, e.CompAll)
		avg = append(avg, e.Average)
	}
	t.AddRow("Average",
		export.Pct(stats.Mean(cs)), export.Pct(stats.Mean(cn)), export.Pct(stats.Mean(ca)),
		export.Pct(stats.Mean(ps)), export.Pct(stats.Mean(pn)), export.Pct(stats.Mean(pa)),
		export.Pct(stats.Mean(avg)),
	)
	return t
}

// Table1 renders the platform-characteristics table (Table I).
func Table1(plats []*topology.Platform) *export.Table {
	t := export.NewTable(
		"TABLE I — CHARACTERISTICS OF TESTBED PLATFORMS",
		"Name", "Processor", "Memory", "Network",
	)
	for _, p := range plats {
		t.AddRow(
			p.Name,
			fmt.Sprintf("%d × %s %s", p.NSockets(), p.Vendor, p.CPUName),
			fmt.Sprintf("%d GB of RAM, %d NUMA nodes", p.TotalMemoryGB(), p.NNodes()),
			string(p.NIC.Tech),
		)
	}
	return t
}
