package eval

import (
	"strings"
	"testing"

	"memcontention/internal/bench"
	"memcontention/internal/model"
	"memcontention/internal/topology"
)

func henriResult(t *testing.T) *PlatformResult {
	t.Helper()
	r, err := EvaluatePlatform(bench.Config{Platform: topology.Henri(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestEvaluateHenriStructure(t *testing.T) {
	r := henriResult(t)
	if r.Platform != "henri" {
		t.Error("platform name lost")
	}
	if len(r.Placements) != 4 {
		t.Fatalf("%d placements, want 4", len(r.Placements))
	}
	samples := 0
	for _, pr := range r.Placements {
		if len(pr.Predicted) != len(pr.Measured.Points) {
			t.Error("prediction/measurement length mismatch")
		}
		if pr.IsSample {
			samples++
		}
		if pr.CommMAPE < 0 || pr.CompMAPE < 0 {
			t.Error("negative MAPE")
		}
	}
	if samples != 2 {
		t.Errorf("%d sample placements, want 2", samples)
	}
}

func TestHenriErrorsWithinPaperBallpark(t *testing.T) {
	// The paper's headline: average prediction error below 4 % for
	// communications and below 3 % for computations.
	e := henriResult(t).Errors
	if e.CommAll > 4.0 {
		t.Errorf("henri comm error %.2f%% exceeds the paper's 4%% headline", e.CommAll)
	}
	if e.CompAll > 3.0 {
		t.Errorf("henri comp error %.2f%% exceeds the paper's 3%% ballpark", e.CompAll)
	}
	if e.Average != (e.CommAll+e.CompAll)/2 {
		t.Error("Average must be the mean of the two All columns")
	}
}

func TestSummarizeSplitsCategories(t *testing.T) {
	r := henriResult(t)
	// Pooled "all" must sit between the two category values.
	e := r.Errors
	lo, hi := e.CommSamples, e.CommNonSamples
	if lo > hi {
		lo, hi = hi, lo
	}
	if e.CommAll < lo-1e-9 || e.CommAll > hi+1e-9 {
		t.Errorf("CommAll %.3f outside [%0.3f, %0.3f]", e.CommAll, lo, hi)
	}
}

func TestEvaluateTestbed(t *testing.T) {
	results, err := EvaluateTestbed(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("%d results, want 6", len(results))
	}
	order := []string{"henri", "henri-subnuma", "dahu", "diablo", "pyxis", "occigen"}
	for i, r := range results {
		if r.Platform != order[i] {
			t.Errorf("result %d is %s, want %s (Table I order)", i, r.Platform, order[i])
		}
	}
}

func TestTable2Rendering(t *testing.T) {
	results, err := EvaluateTestbed(1)
	if err != nil {
		t.Fatal(err)
	}
	table := Table2(results)
	if len(table.Rows) != 7 { // 6 platforms + Average
		t.Fatalf("Table II has %d rows, want 7", len(table.Rows))
	}
	if table.Rows[6][0] != "Average" {
		t.Error("last row must be the cross-platform average")
	}
	text := table.String()
	for _, want := range []string{"henri", "pyxis", "occigen", "%"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
}

func TestTable1Rendering(t *testing.T) {
	table := Table1(topology.Testbed())
	if len(table.Rows) != 6 {
		t.Fatalf("Table I has %d rows", len(table.Rows))
	}
	text := table.String()
	for _, want := range []string{"InfiniBand", "Omni-Path", "NUMA nodes", "EPYC"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestFigureFor(t *testing.T) {
	r := henriResult(t)
	fig := FigureFor("figure3", r)
	if fig.Platform != "henri" || len(fig.Subplots) != 4 {
		t.Fatalf("figure shape wrong: %s, %d subplots", fig.Platform, len(fig.Subplots))
	}
	for _, sp := range fig.Subplots {
		if len(sp.Points) != 18 {
			t.Errorf("subplot %v has %d points", sp.Placement, len(sp.Points))
		}
		for _, p := range sp.Points {
			if p.PredComp <= 0 || p.PredComm <= 0 {
				t.Errorf("subplot %v n=%d: empty predictions", sp.Placement, p.N)
			}
		}
	}
	var csv strings.Builder
	if err := fig.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(csv.String(), "\n")
	if lines != 1+4*18 {
		t.Errorf("figure CSV has %d lines, want %d", lines, 1+4*18)
	}
}

func TestStackedFor(t *testing.T) {
	r := henriResult(t)
	st, err := StackedFor(r, model.Placement{Comp: 0, Comm: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Points) != 18 {
		t.Fatalf("%d stacked points", len(st.Points))
	}
	for _, p := range st.Points {
		if p.TotalPar != p.CompPar+p.CommPar {
			t.Error("stacked total must be the sum")
		}
		if p.PredTotalT <= 0 {
			t.Error("missing model capacity T(n)")
		}
	}
	// Remote placement uses the remote instantiation for T(n).
	stRemote, err := StackedFor(r, model.Placement{Comp: 1, Comm: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stRemote.Params.TParMax == st.Params.TParMax {
		t.Error("remote stacked data must use the remote parameters")
	}
	if _, err := StackedFor(r, model.Placement{Comp: 3, Comm: 3}); err == nil {
		t.Error("unknown placement must error")
	}
	var csv strings.Builder
	if err := st.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "n,comp_par") {
		t.Error("stacked CSV header wrong")
	}
}

func TestFigureNameFor(t *testing.T) {
	cases := map[string]string{
		"henri":         "figure3",
		"henri-subnuma": "figure4",
		"diablo":        "figure5",
		"occigen":       "figure6",
		"pyxis":         "figure7",
		"dahu":          "figure8",
		"custom":        "figure-custom",
	}
	for in, want := range cases {
		if got := FigureNameFor(in); got != want {
			t.Errorf("FigureNameFor(%s) = %s, want %s", in, got, want)
		}
	}
}

func TestTestbedConfigs(t *testing.T) {
	cfgs := TestbedConfigs(9)
	if len(cfgs) != 6 {
		t.Fatalf("%d configs", len(cfgs))
	}
	for _, c := range cfgs {
		if c.Seed != 9 || c.Platform == nil {
			t.Error("config not filled")
		}
	}
}
