package eval

import (
	"fmt"
	"io"

	"memcontention/internal/export"
	"memcontention/internal/model"
)

// FigurePoint is one x position of a figure subplot: measured bandwidths
// (alone and parallel) plus model predictions, as plotted in Figures 3–8.
type FigurePoint struct {
	N         int     `json:"n"`
	CompAlone float64 `json:"comp_alone"`
	CommAlone float64 `json:"comm_alone"`
	CompPar   float64 `json:"comp_par"`
	CommPar   float64 `json:"comm_par"`
	PredComp  float64 `json:"pred_comp"`
	PredComm  float64 `json:"pred_comm"`
}

// FigureSubplot is one placement's panel.
type FigureSubplot struct {
	Placement model.Placement `json:"placement"`
	IsSample  bool            `json:"is_sample"`
	Points    []FigurePoint   `json:"points"`
}

// Figure is the full multi-panel dataset for one platform (Figures 3–8).
type Figure struct {
	Name     string          `json:"name"`
	Platform string          `json:"platform"`
	Subplots []FigureSubplot `json:"subplots"`
}

// FigureFor assembles the figure dataset from a platform evaluation.
// name is the paper's figure label (e.g. "figure3").
func FigureFor(name string, r *PlatformResult) *Figure {
	fig := &Figure{Name: name, Platform: r.Platform}
	for _, pr := range r.Placements {
		sp := FigureSubplot{Placement: pr.Placement, IsSample: pr.IsSample}
		for i, pt := range pr.Measured.Points {
			sp.Points = append(sp.Points, FigurePoint{
				N:         pt.N,
				CompAlone: pt.CompAlone,
				CommAlone: pt.CommAlone,
				CompPar:   pt.CompPar,
				CommPar:   pt.CommPar,
				PredComp:  pr.Predicted[i].Comp,
				PredComm:  pr.Predicted[i].Comm,
			})
		}
		fig.Subplots = append(fig.Subplots, sp)
	}
	return fig
}

// WriteCSV emits the figure as one flat CSV (subplot columns included).
func (f *Figure) WriteCSV(w io.Writer) error {
	t := export.NewTable("",
		"platform", "comp_node", "comm_node", "is_sample", "n",
		"comp_alone", "comm_alone", "comp_par", "comm_par", "pred_comp", "pred_comm")
	for _, sp := range f.Subplots {
		for _, p := range sp.Points {
			t.AddRow(
				f.Platform,
				fmt.Sprint(int(sp.Placement.Comp)), fmt.Sprint(int(sp.Placement.Comm)),
				fmt.Sprint(sp.IsSample), fmt.Sprint(p.N),
				export.GBs(p.CompAlone), export.GBs(p.CommAlone),
				export.GBs(p.CompPar), export.GBs(p.CommPar),
				export.GBs(p.PredComp), export.GBs(p.PredComm),
			)
		}
	}
	return t.WriteCSV(w)
}

// StackedPoint is one x position of the Figure 2 stacked representation:
// the parallel bandwidths stacked (comp at the bottom, comm on top) plus
// the compute-alone curve.
type StackedPoint struct {
	N          int     `json:"n"`
	CompPar    float64 `json:"comp_par"`
	CommPar    float64 `json:"comm_par"`
	TotalPar   float64 `json:"total_par"`
	CompAlone  float64 `json:"comp_alone"`
	PredTotalT float64 `json:"pred_total_t"` // the model's T(n) capacity
}

// Stacked is the Figure 2 dataset: the stacked series plus the model's
// characteristic points annotated on the plot.
type Stacked struct {
	Platform  string          `json:"platform"`
	Placement model.Placement `json:"placement"`
	Points    []StackedPoint  `json:"points"`
	// The annotated parameter points of Figure 2.
	Params model.Params `json:"params"`
}

// StackedFor builds the Figure 2 dataset from a platform evaluation for
// one placement (the paper uses henri-subnuma comp@0/comm@0).
func StackedFor(r *PlatformResult, pl model.Placement) (*Stacked, error) {
	params := r.Model.Local
	if int(pl.Comp) >= r.Model.NodesPerSocket {
		params = r.Model.Remote
	}
	for _, pr := range r.Placements {
		if pr.Placement != pl {
			continue
		}
		st := &Stacked{Platform: r.Platform, Placement: pl, Params: params}
		for _, pt := range pr.Measured.Points {
			st.Points = append(st.Points, StackedPoint{
				N:          pt.N,
				CompPar:    pt.CompPar,
				CommPar:    pt.CommPar,
				TotalPar:   pt.TotalPar(),
				CompAlone:  pt.CompAlone,
				PredTotalT: params.TotalBandwidth(pt.N),
			})
		}
		return st, nil
	}
	return nil, fmt.Errorf("eval: placement %v not in results for %s", pl, r.Platform)
}

// WriteCSV emits the stacked dataset.
func (s *Stacked) WriteCSV(w io.Writer) error {
	t := export.NewTable("", "n", "comp_par", "comm_par", "total_par", "comp_alone", "model_T")
	for _, p := range s.Points {
		t.AddRow(fmt.Sprint(p.N),
			export.GBs(p.CompPar), export.GBs(p.CommPar), export.GBs(p.TotalPar),
			export.GBs(p.CompAlone), export.GBs(p.PredTotalT))
	}
	return t.WriteCSV(w)
}

// FigureNameFor maps platform names to the paper's figure numbering.
func FigureNameFor(platform string) string {
	switch platform {
	case "henri":
		return "figure3"
	case "henri-subnuma":
		return "figure4"
	case "diablo":
		return "figure5"
	case "occigen":
		return "figure6"
	case "pyxis":
		return "figure7"
	case "dahu":
		return "figure8"
	default:
		return "figure-" + platform
	}
}
