package eval

import (
	"bytes"
	"testing"

	"memcontention/internal/bench"
	"memcontention/internal/obs"
	"memcontention/internal/topology"
)

func TestEvaluationInstrumentation(t *testing.T) {
	plat, err := topology.ByName("henri")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	res, err := EvaluatePlatform(bench.Config{Platform: plat, Seed: 1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("memcontention_eval_platforms_total", "", nil).Value(); got != 1 {
		t.Errorf("platforms counter = %v, want 1", got)
	}
	if got := reg.Counter("memcontention_eval_placements_total", "", nil).Value(); got != float64(len(res.Placements)) {
		t.Errorf("placements counter = %v, want %d", got, len(res.Placements))
	}
	labels := obs.L{"platform": "henri"}
	if got := reg.Gauge("memcontention_eval_comm_mape_percent", "", labels).Value(); got != res.Errors.CommAll {
		t.Errorf("comm MAPE gauge = %v, want %v", got, res.Errors.CommAll)
	}
	if got := reg.Gauge("memcontention_eval_comp_mape_percent", "", labels).Value(); got != res.Errors.CompAll {
		t.Errorf("comp MAPE gauge = %v, want %v", got, res.Errors.CompAll)
	}
	// One absolute-error histogram pair per placement configuration.
	perConfig := obs.L{"platform": "henri", "placement": res.Placements[0].Placement.String()}
	h := reg.Histogram("memcontention_eval_comm_abs_error_gbps", "", nil, perConfig)
	if got, want := h.Count(), uint64(len(res.Placements[0].Measured.Points)); got != want {
		t.Errorf("per-config error observations = %d, want %d", got, want)
	}
	// The registry must export cleanly end to end: the full stack
	// (bench + calib + eval) registered into one registry.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	stats, err := obs.ParseExposition(buf.String())
	if err != nil {
		t.Fatalf("full-stack exposition does not parse: %v", err)
	}
	for _, family := range []string{
		"memcontention_bench_points_total",
		"memcontention_calib_fits_total",
		"memcontention_eval_comm_mape_percent",
	} {
		if _, ok := stats.Families[family]; !ok {
			t.Errorf("family %s missing from full-stack export", family)
		}
	}
}
