// Package export renders evaluation results: fixed-width text tables for
// the terminal (Table II style), CSV series for plotting the figures, and
// JSON for programmatic reuse. Everything is stdlib-only.
package export

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a simple text/CSV table with a header row.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and columns.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, cells ...any) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		parts[i] = fmt.Sprint(c)
	}
	_ = format // reserved; rows are plain value prints
	t.AddRow(parts...)
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (header first, no title).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders the text form.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.WriteText(&b); err != nil {
		return fmt.Sprintf("table render error: %v", err)
	}
	return b.String()
}

// WriteJSON pretty-prints any value as JSON.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// Pct formats a percentage with two decimals, as in Table II.
func Pct(v float64) string { return fmt.Sprintf("%.2f %%", v) }

// GBs formats a bandwidth cell.
func GBs(v float64) string { return fmt.Sprintf("%.2f", v) }
