package export

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := NewTable("Title line", "name", "value", "unit")
	t.AddRow("alpha", "1.25", "GB/s")
	t.AddRow("beta", "0.5")
	return t
}

func TestWriteText(t *testing.T) {
	var b strings.Builder
	if err := sampleTable().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, rule, 2 rows => 5? title+header+rule+2
		if len(lines) != 5 {
			t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
		}
	}
	if !strings.HasPrefix(out, "Title line\n") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "GB/s") {
		t.Error("cells missing")
	}
	// Columns aligned: header "name" padded to width of "alpha".
	headerLine := lines[1]
	if !strings.HasPrefix(headerLine, "name ") {
		t.Errorf("header not padded: %q", headerLine)
	}
	// Short rows padded with empty cells (no panic, row present).
	if !strings.Contains(out, "beta") {
		t.Error("short row missing")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := sampleTable().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("CSV records = %d, want 3 (header + 2 rows)", len(recs))
	}
	if recs[0][0] != "name" || recs[1][0] != "alpha" {
		t.Error("CSV content wrong")
	}
	if len(recs[2]) != 3 || recs[2][2] != "" {
		t.Error("short rows must be padded in CSV too")
	}
}

func TestTableString(t *testing.T) {
	if s := sampleTable().String(); !strings.Contains(s, "alpha") {
		t.Errorf("String() = %q", s)
	}
}

func TestAddRowf(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRowf("", 1.5, "x")
	if tab.Rows[0][0] != "1.5" || tab.Rows[0][1] != "x" {
		t.Errorf("AddRowf row = %v", tab.Rows[0])
	}
}

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	var back map[string]int
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back["x"] != 1 {
		t.Error("JSON round trip failed")
	}
	if !strings.Contains(b.String(), "\n") {
		t.Error("JSON must be indented")
	}
}

func TestFormatters(t *testing.T) {
	if Pct(3.456) != "3.46 %" {
		t.Errorf("Pct = %q", Pct(3.456))
	}
	if GBs(10.125) != "10.12" && GBs(10.125) != "10.13" {
		t.Errorf("GBs = %q", GBs(10.125))
	}
}

// TestExportersByteStable renders every Table writer (and the shared JSON
// helper over a map payload) twice; identical input must yield identical
// bytes, so map-iteration order can never leak into an artifact.
func TestExportersByteStable(t *testing.T) {
	twice := func(name string, fn func(*strings.Builder) error) {
		t.Helper()
		var a, b strings.Builder
		if err := fn(&a); err != nil {
			t.Fatalf("%s first pass: %v", name, err)
		}
		if err := fn(&b); err != nil {
			t.Fatalf("%s second pass: %v", name, err)
		}
		if a.String() != b.String() {
			t.Errorf("%s is not byte-stable:\n%s\nvs\n%s", name, a.String(), b.String())
		}
	}
	tab := sampleTable()
	twice("WriteText", func(b *strings.Builder) error { return tab.WriteText(b) })
	twice("WriteCSV", func(b *strings.Builder) error { return tab.WriteCSV(b) })
	twice("WriteJSON(map)", func(b *strings.Builder) error {
		return WriteJSON(b, map[string]float64{"zeta": 1, "alpha": 2, "mid": 3})
	})
}
