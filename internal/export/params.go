package export

import (
	"fmt"

	"memcontention/internal/model"
)

// ParamsTable renders a calibrated model's parameter sets (§III-A) as a
// two-column table: local and remote instantiations side by side.
func ParamsTable(title string, m model.Model) *Table {
	t := NewTable(title, "parameter", "local", "remote", "meaning")
	row := func(name, local, remote, meaning string) { t.AddRow(name, local, remote, meaning) }
	l, r := m.Local, m.Remote
	row("N_par_max", fmt.Sprint(l.NParMax), fmt.Sprint(r.NParMax), "cores reaching the parallel maximum")
	row("T_par_max", GBs(l.TParMax), GBs(r.TParMax), "max total bandwidth, comp ∥ comm (GB/s)")
	row("N_seq_max", fmt.Sprint(l.NSeqMax), fmt.Sprint(r.NSeqMax), "cores reaching the compute-alone maximum")
	row("T_seq_max", GBs(l.TSeqMax), GBs(r.TSeqMax), "max compute-alone bandwidth (GB/s)")
	row("T_par_max2", GBs(l.TPar2), GBs(r.TPar2), "total bandwidth at N_seq_max cores (GB/s)")
	row("δl", fmt.Sprintf("%.3f", l.DeltaL), fmt.Sprintf("%.3f", r.DeltaL), "loss per core, N_par_max→N_seq_max (GB/s)")
	row("δr", fmt.Sprintf("%.3f", l.DeltaR), fmt.Sprintf("%.3f", r.DeltaR), "loss per core beyond N_seq_max (GB/s)")
	row("B_comp_seq", GBs(l.BCompSeq), GBs(r.BCompSeq), "one core's memory bandwidth (GB/s)")
	row("B_comm_seq", GBs(l.BCommSeq), GBs(r.BCommSeq), "nominal network bandwidth (GB/s)")
	row("α", fmt.Sprintf("%.3f", l.Alpha), fmt.Sprintf("%.3f", r.Alpha), "worst-case comm fraction under contention")
	t.AddRow("#m", fmt.Sprint(m.NodesPerSocket), fmt.Sprint(m.NodesPerSocket), "NUMA nodes per socket")
	return t
}
