package export

import (
	"strings"
	"testing"

	"memcontention/internal/model"
)

func TestParamsTable(t *testing.T) {
	m := model.Model{
		Local: model.Params{
			NParMax: 12, TParMax: 70, NSeqMax: 14, TSeqMax: 66, TPar2: 66,
			DeltaL: 2, DeltaR: 0.6, BCompSeq: 5, BCommSeq: 11, Alpha: 0.25,
		},
		Remote: model.Params{
			NParMax: 8, TParMax: 40, NSeqMax: 10, TSeqMax: 34, TPar2: 36,
			DeltaL: 2, DeltaR: 0.5, BCompSeq: 3.4, BCommSeq: 11.5, Alpha: 0.25,
		},
		NodesPerSocket: 2,
	}
	tbl := ParamsTable("title", m)
	if len(tbl.Rows) != 11 {
		t.Fatalf("params table has %d rows, want 11", len(tbl.Rows))
	}
	text := tbl.String()
	for _, want := range []string{"N_par_max", "δl", "α", "B_comm_seq", "70.00", "3.40", "0.250", "title"} {
		if !strings.Contains(text, want) {
			t.Errorf("params table missing %q", want)
		}
	}
	// The #m row carries the placement-combination input.
	if !strings.Contains(text, "NUMA nodes per socket") {
		t.Error("missing #m row")
	}
}
