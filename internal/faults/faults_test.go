package faults

import (
	"math"
	"strings"
	"testing"
)

func validPlanJSON() []byte {
	return []byte(`{
  "seed": 42,
  "events": [
    {"at": 0.010, "kind": "link-degrade", "factor": 0.25, "duration": 0.05},
    {"at": 0.005, "kind": "link-latency", "extra_latency": 2e-6, "jitter": 0.1, "duration": 0.02},
    {"at": 0.001, "kind": "nic-stall", "machine": 1, "duration": 0.002},
    {"at": 0.000, "kind": "core-slowdown", "machine": 0, "factor": 0.5, "duration": 0.1},
    {"at": 0.020, "kind": "node-crash", "machine": 1},
    {"at": 0.002, "kind": "msg-drop", "probability": 0.3, "duration": 0.01},
    {"at": 0.003, "kind": "msg-delay", "extra_latency": 1e-4, "probability": 0.5, "duration": 0.01}
  ]
}`)
}

func TestParseValidPlan(t *testing.T) {
	plan, err := Parse(validPlanJSON())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 42 {
		t.Errorf("seed = %d", plan.Seed)
	}
	if len(plan.Events) != 7 {
		t.Fatalf("got %d events", len(plan.Events))
	}
	if got := plan.MaxMachine(); got != 1 {
		t.Errorf("MaxMachine = %d, want 1", got)
	}
	sorted := plan.Sorted()
	for i := 1; i < len(sorted); i++ {
		if sorted[i].At < sorted[i-1].At {
			t.Fatalf("Sorted not ordered at %d", i)
		}
	}
	// The original order must be preserved in the plan itself.
	if plan.Events[0].Kind != LinkDegrade {
		t.Error("Sorted modified the plan's event order")
	}
}

func TestEventLabels(t *testing.T) {
	plan, err := Parse(validPlanJSON())
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range plan.Events {
		l := ev.Label()
		if !strings.Contains(l, string(ev.Kind)) {
			t.Errorf("label %q does not name kind %s", l, ev.Kind)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]Event{
		"negative at":           {At: -1, Kind: MsgDrop, Probability: 0.5},
		"nan at":                {At: math.NaN(), Kind: MsgDrop, Probability: 0.5},
		"unknown kind":          {At: 0, Kind: "gremlins"},
		"empty kind":            {At: 0},
		"degrade factor 0":      {At: 0, Kind: LinkDegrade, Factor: 0},
		"degrade factor > 1":    {At: 0, Kind: LinkDegrade, Factor: 1.5},
		"degrade factor nan":    {At: 0, Kind: LinkDegrade, Factor: math.NaN()},
		"slowdown factor inf":   {At: 0, Kind: CoreSlowdown, Factor: math.Inf(1)},
		"latency without extra": {At: 0, Kind: LinkLatency},
		"negative extra":        {At: 0, Kind: LinkLatency, Extra: -1e-6},
		"jitter > 1":            {At: 0, Kind: LinkLatency, Extra: 1e-6, Jitter: 2},
		"probability > 1":       {At: 0, Kind: MsgDrop, Probability: 1.5},
		"probability negative":  {At: 0, Kind: MsgDrop, Probability: -0.5},
		"delay without extra":   {At: 0, Kind: MsgDelay, Probability: 0.5},
		"crash with duration":   {At: 0, Kind: NodeCrash, Duration: 1},
		"negative duration":     {At: 0, Kind: NICStall, Duration: -1},
		"nan duration":          {At: 0, Kind: NICStall, Duration: math.NaN()},
		"negative machine":      {At: 0, Kind: NICStall, Machine: -1, Duration: 1},
	}
	for name, ev := range cases {
		plan := &Plan{Events: []Event{ev}}
		if err := plan.Validate(); err == nil {
			t.Errorf("%s: accepted %+v", name, ev)
		}
	}
}

func TestValidateNilPlan(t *testing.T) {
	var plan *Plan
	if err := plan.Validate(); err != nil {
		t.Errorf("nil plan must validate: %v", err)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "{not json", `{"events": [{}]}`, `[1,2]`} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/plan.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func FuzzParsePlan(f *testing.F) {
	f.Add(validPlanJSON())
	f.Add([]byte("{}"))
	f.Add([]byte(`{"events":[{"at":1e999,"kind":"msg-drop"}]}`))
	f.Add([]byte(`{"seed":1,"events":[{"at":0,"kind":"node-crash","machine":3}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		plan, err := Parse(data)
		if err != nil {
			return
		}
		// Whatever Parse accepts must satisfy the validator (Parse is
		// documented to validate) and be safe to schedule.
		if err := plan.Validate(); err != nil {
			t.Fatalf("parsed plan fails Validate: %v", err)
		}
		for _, ev := range plan.Events {
			if math.IsNaN(ev.At) || ev.At < 0 || math.IsInf(ev.At, 0) {
				t.Fatalf("accepted unschedulable event time %v", ev.At)
			}
		}
	})
}
