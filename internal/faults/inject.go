package faults

import (
	"fmt"

	"memcontention/internal/engine"
	"memcontention/internal/memsys"
	"memcontention/internal/obs"
	"memcontention/internal/rng"
	"memcontention/internal/simnet"
)

// Marker receives fault timeline annotations; trace.Recorder implements
// it, so a cluster's trace also carries the fault events.
type Marker interface {
	FaultAt(at float64, label string)
}

// machineState aggregates the active machine-scoped faults of one node.
type machineState struct {
	computeFactor float64 // product of active core-slowdown factors
	nicStalls     int     // active nic-stall count
	crashed       bool
	crashedAt     float64
}

// injectorInstruments are the fault layer's telemetry hooks; nil
// instruments (no registry) record nothing.
type injectorInstruments struct {
	applied  *obs.Counter
	cleared  *obs.Counter
	dropped  *obs.Counter
	delayed  *obs.Counter
	crashes  *obs.Counter
	active   *obs.Gauge
	wire     *obs.Gauge
	extraLat *obs.Gauge
}

// Injector applies a Plan to a running simulation. Create one with New,
// then Arm it on the cluster's engine, fabric and machines before Run.
type Injector struct {
	plan     *Plan
	sim      *engine.Sim
	machines map[int]*machineState
	flows    map[int]*engine.Flows

	// active tracks which plan events are currently in effect, by their
	// position in the sorted event list.
	active map[int]Event

	// link-level aggregates, recomputed on every (de)activation.
	wireFactor   float64
	extraLatency float64
	jitterRel    float64
	dropProb     float64
	delayProb    float64
	delayExtra   float64

	// seeded per-message decision streams, consumed in transfer order.
	rngDrop   *rng.Stream
	rngDelay  *rng.Stream
	rngJitter *rng.Stream

	marker Marker
	m      injectorInstruments
}

// New validates the plan and builds an injector for it.
func New(plan *Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		plan:       plan,
		machines:   make(map[int]*machineState),
		flows:      make(map[int]*engine.Flows),
		active:     make(map[int]Event),
		wireFactor: 1,
		rngDrop:    rng.New(plan.Seed, "faults/drop"),
		rngDelay:   rng.New(plan.Seed, "faults/delay"),
		rngJitter:  rng.New(plan.Seed, "faults/jitter"),
	}, nil
}

// Arm installs the injector: it hooks the fabric, installs a rate limiter
// on every machine's flow manager, registers its instruments in reg (nil
// disables them) and schedules every plan event. marker (nil allowed)
// receives one annotation per fault activation/deactivation.
func (in *Injector) Arm(sim *engine.Sim, fabric *simnet.Fabric, machines []*simnet.Machine, reg *obs.Registry, marker Marker) error {
	if in.sim != nil {
		return fmt.Errorf("faults: injector already armed")
	}
	known := make(map[int]bool, len(machines))
	for _, m := range machines {
		known[m.ID] = true
	}
	for i, ev := range in.plan.Events {
		if machineScoped(ev.Kind) && !known[ev.Machine] {
			return fmt.Errorf("faults: event %d (%s) targets unknown machine %d (cluster has %d machines)",
				i, ev.Kind, ev.Machine, len(machines))
		}
	}
	in.sim = sim
	in.marker = marker
	in.m = injectorInstruments{
		applied:  reg.Counter("memcontention_faults_applied_total", "Fault events activated.", nil),
		cleared:  reg.Counter("memcontention_faults_cleared_total", "Fault events deactivated (duration elapsed).", nil),
		dropped:  reg.Counter("memcontention_faults_messages_dropped_total", "Messages lost by fault injection.", nil),
		delayed:  reg.Counter("memcontention_faults_messages_delayed_total", "Messages delayed by fault injection.", nil),
		crashes:  reg.Counter("memcontention_faults_node_crashes_total", "Machines crashed by fault injection.", nil),
		active:   reg.Gauge("memcontention_faults_active", "Fault events currently in effect.", nil),
		wire:     reg.Gauge("memcontention_faults_wire_factor_ratio", "Current fabric wire-rate multiplier.", nil),
		extraLat: reg.Gauge("memcontention_faults_extra_latency_seconds", "Current added one-way latency.", nil),
	}
	in.m.wire.Set(1)
	fabric.SetFaults(in)
	for _, m := range machines {
		in.machines[m.ID] = &machineState{computeFactor: 1}
		m.Flows.SetRateLimiter(in.limiterFor(m.ID))
		in.flows[m.ID] = m.Flows
	}
	for i, ev := range in.plan.Sorted() {
		i, ev := i, ev
		sim.At(ev.At, func() { in.activate(i, ev) })
		if ev.Duration > 0 && ev.Kind != NodeCrash {
			sim.At(ev.At+ev.Duration, func() { in.deactivate(i, ev) })
		}
	}
	return nil
}

// limiterFor builds the per-machine rate limiter capping flow rates while
// the machine is stalled, slowed or crashed.
func (in *Injector) limiterFor(id int) engine.RateLimiter {
	ms := in.machines[id]
	return func(st memsys.Stream, rate float64) float64 {
		if ms.crashed {
			return 0
		}
		switch st.Kind {
		case memsys.KindComm:
			if ms.nicStalls > 0 {
				return 0
			}
		case memsys.KindCompute:
			if ms.computeFactor < 1 {
				return rate * ms.computeFactor
			}
		}
		return rate
	}
}

// activate puts event i into effect.
func (in *Injector) activate(i int, ev Event) {
	in.active[i] = ev
	if ev.Kind == NodeCrash {
		ms := in.machines[ev.Machine]
		if !ms.crashed {
			ms.crashed = true
			ms.crashedAt = in.sim.Now()
			in.m.crashes.Inc()
		}
	}
	in.m.applied.Inc()
	in.refresh(ev)
	if in.marker != nil {
		in.marker.FaultAt(in.sim.Now(), "fault-on: "+ev.Label())
	}
}

// deactivate ends event i.
func (in *Injector) deactivate(i int, ev Event) {
	delete(in.active, i)
	in.m.cleared.Inc()
	in.refresh(ev)
	if in.marker != nil {
		in.marker.FaultAt(in.sim.Now(), "fault-off: "+ev.Label())
	}
}

// refresh recomputes every aggregate from the active event set and
// re-solves flow rates where the change can matter. changed is the event
// that toggled.
func (in *Injector) refresh(changed Event) {
	in.wireFactor = 1
	in.extraLatency = 0
	in.jitterRel = 0
	in.dropProb = 0
	in.delayProb = 0
	in.delayExtra = 0
	for _, ms := range in.machines {
		ms.computeFactor = 1
		ms.nicStalls = 0
	}
	keepP := 1.0 // probability a message survives every active drop window
	for _, ev := range in.active {
		switch ev.Kind {
		case LinkDegrade:
			in.wireFactor *= ev.Factor
		case LinkLatency:
			in.extraLatency += ev.Extra
			if ev.Jitter > in.jitterRel {
				in.jitterRel = ev.Jitter
			}
		case MsgDrop:
			keepP *= 1 - ev.probability()
		case MsgDelay:
			if p := ev.probability(); p > in.delayProb {
				in.delayProb = p
			}
			in.delayExtra += ev.Extra
		case NICStall:
			in.machines[ev.Machine].nicStalls++
		case CoreSlowdown:
			in.machines[ev.Machine].computeFactor *= ev.Factor
		}
	}
	in.dropProb = 1 - keepP
	in.m.active.Set(float64(len(in.active)))
	in.m.wire.Set(in.wireFactor)
	in.m.extraLat.Set(in.extraLatency)
	// Machine-level faults change rates mid-flight; re-solve the
	// affected flow managers so progress is banked at the old rates.
	if machineScoped(changed.Kind) {
		if fl := in.flows[changed.Machine]; fl != nil {
			fl.Refresh()
		}
	}
}

// MachineDown implements simnet.FaultModel.
func (in *Injector) MachineDown(id int, at float64) (bool, float64) {
	ms := in.machines[id]
	if ms == nil || !ms.crashed {
		return false, 0
	}
	return true, ms.crashedAt
}

// TransferFault implements simnet.FaultModel: the per-message verdict,
// consumed in transfer order so it is deterministic for a given plan.
func (in *Injector) TransferFault(src, dst, xfer int, size, at float64) simnet.TransferFault {
	tf := simnet.TransferFault{WireFactor: in.wireFactor}
	extra := in.extraLatency
	if extra > 0 && in.jitterRel > 0 {
		extra *= in.rngJitter.Jitter(in.jitterRel)
	}
	if in.delayProb > 0 && in.rngDelay.Float64() < in.delayProb {
		extra += in.delayExtra
		in.m.delayed.Inc()
	}
	tf.ExtraLatency = extra
	if in.dropProb > 0 && in.rngDrop.Float64() < in.dropProb {
		tf.Drop = true
		in.m.dropped.Inc()
	}
	return tf
}
