// Package faults is the deterministic fault-injection subsystem of the
// simulated cluster: a declarative, JSON-loadable Plan of timed fault
// events — link degradation, added latency and jitter, NIC stalls, core
// slowdowns, node crashes, message drops and delays — applied through the
// engine, simnet and MPI hooks.
//
// Everything is seeded: per-message decisions (drop? delay? how much
// jitter?) come from rng streams keyed by the plan seed, so the same seed
// and the same plan produce bit-for-bit identical runs. A nil plan
// installs no hooks at all and costs nothing on the hot path, mirroring
// the nil-registry guarantee of the telemetry subsystem.
package faults

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"sort"
)

// Kind names a fault event type.
type Kind string

// Fault kinds.
const (
	// LinkDegrade multiplies the fabric wire rate by Factor (all links).
	LinkDegrade Kind = "link-degrade"
	// LinkLatency adds Extra seconds of one-way latency to every
	// message, with optional per-message relative Jitter.
	LinkLatency Kind = "link-latency"
	// NICStall freezes the NIC DMA streams of one machine: its comm
	// flows move no data for the event's duration.
	NICStall Kind = "nic-stall"
	// CoreSlowdown multiplies the compute stream rates of one machine
	// by Factor (a straggler node).
	CoreSlowdown Kind = "core-slowdown"
	// NodeCrash kills one machine permanently: its flows freeze and
	// the fabric refuses transfers involving it.
	NodeCrash Kind = "node-crash"
	// MsgDrop loses each message with Probability while active.
	MsgDrop Kind = "msg-drop"
	// MsgDelay adds Extra seconds to each message with Probability
	// while active.
	MsgDelay Kind = "msg-delay"
)

// kindKnown reports whether k is one of the declared kinds.
func kindKnown(k Kind) bool {
	switch k {
	case LinkDegrade, LinkLatency, NICStall, CoreSlowdown, NodeCrash, MsgDrop, MsgDelay:
		return true
	}
	return false
}

// machineScoped reports whether the kind targets a single machine.
func machineScoped(k Kind) bool {
	switch k {
	case NICStall, CoreSlowdown, NodeCrash:
		return true
	}
	return false
}

// Event is one timed fault. Which fields matter depends on Kind; unused
// fields must stay zero.
type Event struct {
	// At is the simulated activation time in seconds.
	At float64 `json:"at"`
	// Kind selects the fault type.
	Kind Kind `json:"kind"`
	// Machine targets one machine for nic-stall, core-slowdown and
	// node-crash; ignored by link- and message-level kinds.
	Machine int `json:"machine,omitempty"`
	// Factor is the rate multiplier in (0, 1] for link-degrade and
	// core-slowdown.
	Factor float64 `json:"factor,omitempty"`
	// Extra is the added latency in seconds for link-latency and
	// msg-delay.
	Extra float64 `json:"extra_latency,omitempty"`
	// Jitter is the relative std-dev of per-message jitter applied to
	// Extra (link-latency only).
	Jitter float64 `json:"jitter,omitempty"`
	// Probability is the per-message probability in [0, 1] for
	// msg-drop and msg-delay (0 means 1: always).
	Probability float64 `json:"probability,omitempty"`
	// Duration is how long the fault stays active, in seconds;
	// 0 means permanent (node-crash is always permanent).
	Duration float64 `json:"duration,omitempty"`
}

// Label renders a short human-readable description for traces.
func (e Event) Label() string {
	switch e.Kind {
	case LinkDegrade:
		return fmt.Sprintf("%s factor=%g", e.Kind, e.Factor)
	case LinkLatency:
		return fmt.Sprintf("%s extra=%gs jitter=%g", e.Kind, e.Extra, e.Jitter)
	case NICStall, NodeCrash:
		return fmt.Sprintf("%s machine=%d", e.Kind, e.Machine)
	case CoreSlowdown:
		return fmt.Sprintf("%s machine=%d factor=%g", e.Kind, e.Machine, e.Factor)
	case MsgDrop:
		return fmt.Sprintf("%s p=%g", e.Kind, e.probability())
	case MsgDelay:
		return fmt.Sprintf("%s p=%g extra=%gs", e.Kind, e.probability(), e.Extra)
	}
	return string(e.Kind)
}

// probability reports the effective per-message probability (0 means 1).
func (e Event) probability() float64 {
	if e.Probability == 0 {
		return 1
	}
	return e.Probability
}

// validate checks one event. i is its index for error messages.
func (e Event) validate(i int) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("faults: event %d (%s): %s", i, e.Kind, fmt.Sprintf(format, args...))
	}
	if !kindKnown(e.Kind) {
		return fmt.Errorf("faults: event %d: unknown kind %q", i, e.Kind)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"at", e.At}, {"factor", e.Factor}, {"extra_latency", e.Extra},
		{"jitter", e.Jitter}, {"probability", e.Probability}, {"duration", e.Duration},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
			return fail("%s must be finite and non-negative, got %v", f.name, f.v)
		}
	}
	if e.Machine < 0 {
		return fail("machine must be non-negative, got %d", e.Machine)
	}
	switch e.Kind {
	case LinkDegrade, CoreSlowdown:
		if e.Factor <= 0 || e.Factor > 1 {
			return fail("factor must be in (0,1], got %v", e.Factor)
		}
	case LinkLatency:
		if e.Extra <= 0 {
			return fail("extra_latency must be positive, got %v", e.Extra)
		}
		if e.Jitter > 1 {
			return fail("jitter must be in [0,1], got %v", e.Jitter)
		}
	case MsgDrop, MsgDelay:
		if e.Probability > 1 {
			return fail("probability must be in [0,1], got %v", e.Probability)
		}
		if e.Kind == MsgDelay && e.Extra <= 0 {
			return fail("extra_latency must be positive, got %v", e.Extra)
		}
	case NodeCrash:
		if e.Duration != 0 {
			return fail("node crashes are permanent; duration must be 0")
		}
	}
	return nil
}

// Plan is a declarative fault scenario: a seed for all per-message
// randomness and a list of timed events.
type Plan struct {
	// Seed keys the per-message random decisions (drop, delay, jitter).
	Seed uint64 `json:"seed"`
	// Events is the fault timeline; order does not matter (events are
	// applied at their At times).
	Events []Event `json:"events"`
}

// Validate checks every event of the plan. A plan with no events is valid
// (and injects nothing).
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, e := range p.Events {
		if err := e.validate(i); err != nil {
			return err
		}
	}
	return nil
}

// MaxMachine reports the highest machine id referenced by machine-scoped
// events (-1 when none), so callers can reject plans that target machines
// the cluster does not have.
func (p *Plan) MaxMachine() int {
	if p == nil {
		return -1
	}
	maxID := -1
	for _, e := range p.Events {
		if machineScoped(e.Kind) && e.Machine > maxID {
			maxID = e.Machine
		}
	}
	return maxID
}

// Fingerprint content-addresses the plan (seed plus every event) as a
// short stable hex string. Checkpoint journals use it to key results by
// the exact fault scenario they ran under, so a resumed campaign never
// replays an outcome recorded for a different plan. A nil plan has the
// fingerprint "none".
func (p *Plan) Fingerprint() string {
	if p == nil {
		return "none"
	}
	h := fnv.New64a()
	if data, err := json.Marshal(p); err == nil {
		h.Write(data)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Sorted returns the events ordered by (At, declaration order). The plan
// itself is not modified.
func (p *Plan) Sorted() []Event {
	if p == nil {
		return nil
	}
	out := append([]Event(nil), p.Events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Parse decodes and validates a plan from JSON.
func Parse(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("faults: parse plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Load reads and validates a plan file (JSON, the Plan schema).
func Load(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faults: load plan: %w", err)
	}
	p, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("faults: plan %s: %w", path, err)
	}
	return p, nil
}
