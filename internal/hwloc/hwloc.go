// Package hwloc mirrors the role hwloc plays in the paper's benchmark
// (§IV-A1): binding threads to cores, binding memory buffers to specific
// NUMA nodes, and answering locality queries against the topology.
//
// Nothing here touches real OS affinity — bindings are bookkeeping that
// the simulator consumes — but the API shapes match what an HPC runtime
// needs, so the examples read like real hwloc-using code.
package hwloc

import (
	"fmt"
	"sort"
	"strings"

	"memcontention/internal/topology"
	"memcontention/internal/units"
)

// CPUSet is a set of cores, kept sorted and deduplicated.
type CPUSet []topology.CoreID

// NewCPUSet builds a set from the given cores.
func NewCPUSet(cores ...topology.CoreID) CPUSet {
	s := append(CPUSet(nil), cores...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:0]
	for i, c := range s {
		if i == 0 || c != s[i-1] {
			out = append(out, c)
		}
	}
	return out
}

// Contains reports whether the set holds core c.
func (s CPUSet) Contains(c topology.CoreID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= c })
	return i < len(s) && s[i] == c
}

// Union returns the union of two sets.
func (s CPUSet) Union(o CPUSet) CPUSet {
	return NewCPUSet(append(append([]topology.CoreID(nil), s...), o...)...)
}

// Intersect returns the intersection of two sets.
func (s CPUSet) Intersect(o CPUSet) CPUSet {
	var out []topology.CoreID
	for _, c := range s {
		if o.Contains(c) {
			out = append(out, c)
		}
	}
	return NewCPUSet(out...)
}

// Minus returns s without the elements of o.
func (s CPUSet) Minus(o CPUSet) CPUSet {
	var out []topology.CoreID
	for _, c := range s {
		if !o.Contains(c) {
			out = append(out, c)
		}
	}
	return NewCPUSet(out...)
}

// First returns the lowest core and true, or 0 and false when empty.
func (s CPUSet) First() (topology.CoreID, bool) {
	if len(s) == 0 {
		return 0, false
	}
	return s[0], true
}

// Take returns the first n cores of the set (fewer if the set is smaller).
func (s CPUSet) Take(n int) CPUSet {
	if n > len(s) {
		n = len(s)
	}
	if n < 0 {
		n = 0
	}
	return append(CPUSet(nil), s[:n]...)
}

// String renders the set in the familiar "0-3,7,9-10" taskset form.
func (s CPUSet) String() string {
	if len(s) == 0 {
		return "∅"
	}
	var parts []string
	start, prev := s[0], s[0]
	flush := func() {
		if start == prev {
			parts = append(parts, fmt.Sprintf("%d", start))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d", start, prev))
		}
	}
	for _, c := range s[1:] {
		if c == prev+1 {
			prev = c
			continue
		}
		flush()
		start, prev = c, c
	}
	flush()
	return strings.Join(parts, ",")
}

// Buffer is a memory region explicitly bound to one NUMA node, the way the
// paper's benchmark binds its computation and communication buffers.
type Buffer struct {
	Name string
	Node topology.NodeID
	Size units.ByteSize
}

// String implements fmt.Stringer.
func (b *Buffer) String() string {
	return fmt.Sprintf("%s[%s on node %d]", b.Name, b.Size, b.Node)
}

// Topology wraps a platform with binding state.
type Topology struct {
	plat   *topology.Platform
	bound  map[int]topology.CoreID // thread index -> core
	allocs []*Buffer
}

// FromPlatform wraps a validated platform.
func FromPlatform(p *topology.Platform) (*Topology, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("hwloc: %w", err)
	}
	return &Topology{plat: p, bound: make(map[int]topology.CoreID)}, nil
}

// Platform returns the wrapped platform.
func (t *Topology) Platform() *topology.Platform { return t.plat }

// SocketSet returns the cores of one socket as a CPUSet.
func (t *Topology) SocketSet(s topology.SocketID) CPUSet {
	return NewCPUSet(t.plat.CoresOfSocket(s)...)
}

// NodeSet returns the cores whose local node is n.
func (t *Topology) NodeSet(n topology.NodeID) CPUSet {
	var cores []topology.CoreID
	for _, c := range t.plat.Cores {
		if c.Node == n {
			cores = append(cores, c.ID)
		}
	}
	return NewCPUSet(cores...)
}

// AllocOnNode creates a buffer bound to the given NUMA node.
func (t *Topology) AllocOnNode(name string, size units.ByteSize, node topology.NodeID) (*Buffer, error) {
	if int(node) < 0 || int(node) >= t.plat.NNodes() {
		return nil, fmt.Errorf("hwloc: alloc %q: node %d out of range [0,%d)", name, node, t.plat.NNodes())
	}
	if size <= 0 {
		return nil, fmt.Errorf("hwloc: alloc %q: non-positive size %d", name, size)
	}
	free := units.ByteSize(t.plat.Nodes[node].MemoryGB) * units.GiB
	used := units.ByteSize(0)
	for _, b := range t.allocs {
		if b.Node == node {
			used += b.Size
		}
	}
	if used+size > free {
		return nil, fmt.Errorf("hwloc: alloc %q: node %d out of memory (%s used of %s, want %s)", name, node, used, free, size)
	}
	b := &Buffer{Name: name, Node: node, Size: size}
	t.allocs = append(t.allocs, b)
	return b, nil
}

// Free releases a buffer. Freeing an unknown buffer is an error.
func (t *Topology) Free(b *Buffer) error {
	for i, have := range t.allocs {
		if have == b {
			t.allocs = append(t.allocs[:i], t.allocs[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("hwloc: free of unknown buffer %v", b)
}

// BindThread records that software thread idx runs on the given core.
// Binding two threads to one core is allowed (it happens with
// oversubscription) but binding one thread twice replaces the previous
// binding.
func (t *Topology) BindThread(idx int, core topology.CoreID) error {
	if int(core) < 0 || int(core) >= t.plat.NCores() {
		return fmt.Errorf("hwloc: bind thread %d: core %d out of range [0,%d)", idx, core, t.plat.NCores())
	}
	t.bound[idx] = core
	return nil
}

// ThreadCore reports the core thread idx is bound to.
func (t *Topology) ThreadCore(idx int) (topology.CoreID, bool) {
	c, ok := t.bound[idx]
	return c, ok
}

// Distance reports an ACPI-SLIT-style relative memory distance between a
// core and a node: 10 for local, 21 across the interconnect.
func (t *Topology) Distance(core topology.CoreID, node topology.NodeID) (int, error) {
	if int(core) < 0 || int(core) >= t.plat.NCores() {
		return 0, fmt.Errorf("hwloc: core %d out of range", core)
	}
	if int(node) < 0 || int(node) >= t.plat.NNodes() {
		return 0, fmt.Errorf("hwloc: node %d out of range", node)
	}
	if t.plat.CrossesLink(t.plat.Cores[core].Socket, node) {
		return 21, nil
	}
	return 10, nil
}

// ClosestNode reports the NUMA node nearest to a core (its local node).
func (t *Topology) ClosestNode(core topology.CoreID) (topology.NodeID, error) {
	return t.plat.NodeOfCore(core)
}

// NICNode reports the NUMA node the network interface is attached to.
func (t *Topology) NICNode() topology.NodeID { return t.plat.NIC.Node }
