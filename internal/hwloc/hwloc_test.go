package hwloc

import (
	"testing"
	"testing/quick"

	"memcontention/internal/topology"
	"memcontention/internal/units"
)

func henriTopo(t *testing.T) *Topology {
	t.Helper()
	topo, err := FromPlatform(topology.Henri())
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestCPUSetBasics(t *testing.T) {
	s := NewCPUSet(3, 1, 2, 1, 3)
	if len(s) != 3 || s[0] != 1 || s[1] != 2 || s[2] != 3 {
		t.Fatalf("NewCPUSet must sort and dedup: %v", s)
	}
	if !s.Contains(2) || s.Contains(9) {
		t.Error("Contains broken")
	}
	if got := s.String(); got != "1-3" {
		t.Errorf("String() = %q, want \"1-3\"", got)
	}
	if got := NewCPUSet(0, 1, 2, 7, 9, 10).String(); got != "0-2,7,9-10" {
		t.Errorf("String() = %q, want \"0-2,7,9-10\"", got)
	}
	if got := NewCPUSet().String(); got != "∅" {
		t.Errorf("empty set renders %q", got)
	}
}

func TestCPUSetOps(t *testing.T) {
	a := NewCPUSet(1, 2, 3)
	b := NewCPUSet(3, 4)
	if got := a.Union(b); len(got) != 4 {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); len(got) != 1 || got[0] != 3 {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); len(got) != 2 || got.Contains(3) {
		t.Errorf("Minus = %v", got)
	}
	if first, ok := a.First(); !ok || first != 1 {
		t.Error("First broken")
	}
	if _, ok := NewCPUSet().First(); ok {
		t.Error("First on empty must report false")
	}
	if got := a.Take(2); len(got) != 2 || got[1] != 2 {
		t.Errorf("Take = %v", got)
	}
	if got := a.Take(99); len(got) != 3 {
		t.Errorf("Take over size = %v", got)
	}
	if got := a.Take(-1); len(got) != 0 {
		t.Errorf("Take negative = %v", got)
	}
}

func TestCPUSetProperties(t *testing.T) {
	toSet := func(xs []uint8) CPUSet {
		cores := make([]topology.CoreID, len(xs))
		for i, x := range xs {
			cores[i] = topology.CoreID(x % 64)
		}
		return NewCPUSet(cores...)
	}
	idempotent := func(xs []uint8) bool {
		s := toSet(xs)
		return s.Union(s).String() == s.String() && s.Intersect(s).String() == s.String()
	}
	if err := quick.Check(idempotent, nil); err != nil {
		t.Error("union/intersect must be idempotent:", err)
	}
	commutative := func(xs, ys []uint8) bool {
		a, b := toSet(xs), toSet(ys)
		return a.Union(b).String() == b.Union(a).String() &&
			a.Intersect(b).String() == b.Intersect(a).String()
	}
	if err := quick.Check(commutative, nil); err != nil {
		t.Error("union/intersect must be commutative:", err)
	}
	minusDisjoint := func(xs, ys []uint8) bool {
		a, b := toSet(xs), toSet(ys)
		return len(a.Minus(b).Intersect(b)) == 0
	}
	if err := quick.Check(minusDisjoint, nil); err != nil {
		t.Error("a−b must be disjoint from b:", err)
	}
}

func TestSocketAndNodeSets(t *testing.T) {
	topo := henriTopo(t)
	s0 := topo.SocketSet(0)
	if len(s0) != 18 || s0[0] != 0 || s0[17] != 17 {
		t.Errorf("SocketSet(0) = %v", s0)
	}
	n0 := topo.NodeSet(0)
	if n0.String() != s0.String() {
		t.Error("on henri, node 0's cores are socket 0's cores")
	}
	sub, err := FromPlatform(topology.HenriSubnuma())
	if err != nil {
		t.Fatal(err)
	}
	if got := sub.NodeSet(0); len(got) != 9 {
		t.Errorf("subnuma node 0 has %d cores, want 9", len(got))
	}
}

func TestAllocAccounting(t *testing.T) {
	topo := henriTopo(t)
	b1, err := topo.AllocOnNode("a", 40*units.GiB, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 has 48 GiB; a second 40 GiB allocation must fail.
	if _, err := topo.AllocOnNode("b", 40*units.GiB, 0); err == nil {
		t.Error("over-allocation must fail")
	}
	// But fits on the other node.
	if _, err := topo.AllocOnNode("b", 40*units.GiB, 1); err != nil {
		t.Errorf("allocation on free node failed: %v", err)
	}
	// Free and retry.
	if err := topo.Free(b1); err != nil {
		t.Fatal(err)
	}
	if _, err := topo.AllocOnNode("c", 40*units.GiB, 0); err != nil {
		t.Errorf("allocation after free failed: %v", err)
	}
	if err := topo.Free(b1); err == nil {
		t.Error("double free must fail")
	}
}

func TestAllocValidation(t *testing.T) {
	topo := henriTopo(t)
	if _, err := topo.AllocOnNode("bad", units.MiB, 99); err == nil {
		t.Error("allocation on unknown node must fail")
	}
	if _, err := topo.AllocOnNode("bad", 0, 0); err == nil {
		t.Error("zero-size allocation must fail")
	}
}

func TestThreadBinding(t *testing.T) {
	topo := henriTopo(t)
	if err := topo.BindThread(0, 5); err != nil {
		t.Fatal(err)
	}
	if c, ok := topo.ThreadCore(0); !ok || c != 5 {
		t.Errorf("ThreadCore = (%v,%v)", c, ok)
	}
	if err := topo.BindThread(0, 7); err != nil { // rebind replaces
		t.Fatal(err)
	}
	if c, _ := topo.ThreadCore(0); c != 7 {
		t.Error("rebind must replace")
	}
	if _, ok := topo.ThreadCore(42); ok {
		t.Error("unbound thread must report false")
	}
	if err := topo.BindThread(1, 999); err == nil {
		t.Error("binding to unknown core must fail")
	}
}

func TestDistance(t *testing.T) {
	topo := henriTopo(t)
	if d, err := topo.Distance(0, 0); err != nil || d != 10 {
		t.Errorf("local distance = %d (%v), want 10", d, err)
	}
	if d, err := topo.Distance(0, 1); err != nil || d != 21 {
		t.Errorf("remote distance = %d (%v), want 21", d, err)
	}
	if _, err := topo.Distance(99, 0); err == nil {
		t.Error("unknown core must error")
	}
	if _, err := topo.Distance(0, 99); err == nil {
		t.Error("unknown node must error")
	}
}

func TestClosestAndNICNode(t *testing.T) {
	topo := henriTopo(t)
	if n, err := topo.ClosestNode(17); err != nil || n != 0 {
		t.Errorf("ClosestNode(17) = %v (%v)", n, err)
	}
	if topo.NICNode() != 1 {
		t.Errorf("henri NIC node = %d, want 1", topo.NICNode())
	}
}

func TestBufferString(t *testing.T) {
	b := &Buffer{Name: "halo", Node: 1, Size: 64 * units.MiB}
	if got := b.String(); got != "halo[64 MiB on node 1]" {
		t.Errorf("Buffer.String() = %q", got)
	}
}

func TestFromPlatformRejectsInvalid(t *testing.T) {
	p := topology.Henri()
	p.Cores[0].Socket = 99
	if _, err := FromPlatform(p); err == nil {
		t.Error("invalid platform must be rejected")
	}
}
