package hwloc

import (
	"fmt"
	"strings"
)

// Render draws an lstopo-style ASCII picture of the machine: sockets as
// boxes containing their NUMA nodes and core ranges, the NIC attached to
// its node, and the inter-socket link between the boxes.
func (t *Topology) Render() string {
	p := t.plat
	var boxes []string
	for _, sk := range p.Sockets {
		var lines []string
		lines = append(lines, fmt.Sprintf("Socket %d", sk.ID))
		for _, nd := range sk.Nodes {
			nodeLine := fmt.Sprintf("NUMANode %d (%d GB)", nd, p.Nodes[nd].MemoryGB)
			if p.NIC.Node == nd {
				nodeLine += fmt.Sprintf("  ← NIC %s (%s)", p.NIC.Name, p.NIC.Tech)
			}
			lines = append(lines, nodeLine)
			cores := t.NodeSet(nd)
			lines = append(lines, fmt.Sprintf("  cores %s", cores))
		}
		boxes = append(boxes, boxAround(lines))
	}
	link := fmt.Sprintf("  │ %s │  ", p.Link.Name)
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", p.Name)
	for i, box := range boxes {
		if i > 0 {
			b.WriteString(link)
			b.WriteByte('\n')
		}
		b.WriteString(box)
	}
	return b.String()
}

// boxAround wraps lines in a unicode box.
func boxAround(lines []string) string {
	width := 0
	for _, l := range lines {
		if n := len([]rune(l)); n > width {
			width = n
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "┌%s┐\n", strings.Repeat("─", width+2))
	for _, l := range lines {
		pad := width - len([]rune(l))
		fmt.Fprintf(&b, "│ %s%s │\n", l, strings.Repeat(" ", pad))
	}
	fmt.Fprintf(&b, "└%s┘\n", strings.Repeat("─", width+2))
	return b.String()
}
