package hwloc

import (
	"strings"
	"testing"

	"memcontention/internal/topology"
)

func TestRenderHenriSubnuma(t *testing.T) {
	topo, err := FromPlatform(topology.HenriSubnuma())
	if err != nil {
		t.Fatal(err)
	}
	out := topo.Render()
	for _, want := range []string{
		"Socket 0", "Socket 1",
		"NUMANode 0", "NUMANode 3",
		"cores 0-8", "cores 27-35",
		"UPI",
		"NIC ConnectX-4 EDR",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// The NIC marker must appear exactly once, on node 2.
	if strings.Count(out, "← NIC") != 1 {
		t.Error("NIC must be drawn exactly once")
	}
	// Box drawing is balanced.
	if strings.Count(out, "┌") != strings.Count(out, "└") {
		t.Error("unbalanced boxes")
	}
}

func TestRenderAllPlatforms(t *testing.T) {
	for _, p := range topology.Testbed() {
		topo, err := FromPlatform(p)
		if err != nil {
			t.Fatal(err)
		}
		out := topo.Render()
		if !strings.Contains(out, p.Name) || !strings.Contains(out, p.Link.Name) {
			t.Errorf("%s: incomplete render", p.Name)
		}
		// Every box line must have equal rune width (alignment).
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "│") && !strings.HasSuffix(line, "│") {
				t.Errorf("%s: misaligned box line %q", p.Name, line)
			}
		}
	}
}
