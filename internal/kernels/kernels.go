// Package kernels describes the computation kernels whose memory traffic
// the benchmark measures. The paper's calibration kernel is a non-temporal
// memset (§IV-A1): every store bypasses the last-level cache and reaches
// memory, so the kernel's memory demand equals its instruction stream.
//
// The package also provides the kernels the paper lists as future work
// (§VI): array copy (a read stream plus a write stream) and STREAM-triad,
// plus a cacheable variant used by the LLC extension. Each kernel knows
// how to turn "c cores computing on data bound to node m" into the memory
// streams the simulator arbitrates.
package kernels

import (
	"fmt"

	"memcontention/internal/memsys"
	"memcontention/internal/topology"
)

// Kind enumerates the built-in kernels.
type Kind int

// Built-in kernel kinds.
const (
	// NTMemset initialises an array with non-temporal stores: one write
	// stream per core, no reads. The paper's calibration kernel.
	NTMemset Kind = iota
	// Copy copies one array into another: a read stream and a write
	// stream per core (§VI future work).
	Copy
	// Triad is the STREAM triad a[i] = b[i] + s·c[i]: two read streams
	// and one write stream per core.
	Triad
	// Load is a read-only reduction: one read stream per core.
	Load
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case NTMemset:
		return "nt-memset"
	case Copy:
		return "copy"
	case Triad:
		return "triad"
	case Load:
		return "load"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kernel is a computation kernel description.
type Kernel struct {
	Kind Kind
	// Name is a human label, defaulting to the kind name.
	Name string
	// ReadStreams/WriteStreams count the per-core memory streams.
	ReadStreams  int
	WriteStreams int
	// NonTemporal marks kernels whose stores bypass the LLC. The
	// calibration kernel sets it; the cache extension clears it.
	NonTemporal bool
	// DemandFactor scales the per-core bandwidth demand relative to the
	// NT-memset baseline measured by the hardware profile. A kernel
	// with more concurrent streams per core extracts somewhat more
	// bandwidth per core, but not proportionally (the core's load/store
	// units saturate): factors are calibrated, not derived.
	DemandFactor float64
	// ArithmeticIntensity is flop per byte moved; the paper's §I notes
	// that contention matters for memory-bound kernels (low intensity).
	ArithmeticIntensity float64
}

// Validate checks kernel invariants.
func (k Kernel) Validate() error {
	if k.ReadStreams < 0 || k.WriteStreams < 0 || k.ReadStreams+k.WriteStreams == 0 {
		return fmt.Errorf("kernels: %s: needs at least one stream (r=%d w=%d)", k, k.ReadStreams, k.WriteStreams)
	}
	if k.DemandFactor <= 0 {
		return fmt.Errorf("kernels: %s: demand factor must be positive", k)
	}
	if k.ArithmeticIntensity < 0 {
		return fmt.Errorf("kernels: %s: negative arithmetic intensity", k)
	}
	return nil
}

// String implements fmt.Stringer.
func (k Kernel) String() string {
	if k.Name != "" {
		return k.Name
	}
	return k.Kind.String()
}

// MemoryBound reports whether the kernel is memory-bound (the regime where
// the paper's contention effects appear): intensity under ~1 flop/byte.
func (k Kernel) MemoryBound() bool { return k.ArithmeticIntensity < 1.0 }

// The built-in kernels. Demand factors are relative to NT-memset = 1.0.
func ntMemset() Kernel {
	return Kernel{Kind: NTMemset, WriteStreams: 1, NonTemporal: true, DemandFactor: 1.0, ArithmeticIntensity: 0}
}

// New returns the built-in kernel of the given kind.
func New(kind Kind) Kernel {
	switch kind {
	case NTMemset:
		return ntMemset()
	case Copy:
		return Kernel{Kind: Copy, ReadStreams: 1, WriteStreams: 1, NonTemporal: true, DemandFactor: 1.25, ArithmeticIntensity: 0}
	case Triad:
		return Kernel{Kind: Triad, ReadStreams: 2, WriteStreams: 1, NonTemporal: true, DemandFactor: 1.4, ArithmeticIntensity: 0.08}
	case Load:
		return Kernel{Kind: Load, ReadStreams: 1, NonTemporal: false, DemandFactor: 0.95, ArithmeticIntensity: 0.12}
	default:
		k := ntMemset()
		k.Name = fmt.Sprintf("unknown(%d)", int(kind))
		return k
	}
}

// Assignment is a placed computation: which cores run the kernel and where
// its data lives — the (n, mcomp) pair of the model.
type Assignment struct {
	Kernel Kernel
	Cores  []topology.CoreID
	Node   topology.NodeID
}

// Validate checks the assignment against a platform.
func (a Assignment) Validate(plat *topology.Platform) error {
	if err := a.Kernel.Validate(); err != nil {
		return err
	}
	if len(a.Cores) == 0 {
		return fmt.Errorf("kernels: assignment with no cores")
	}
	if int(a.Node) < 0 || int(a.Node) >= plat.NNodes() {
		return fmt.Errorf("kernels: assignment node %d out of range [0,%d)", a.Node, plat.NNodes())
	}
	seen := make(map[topology.CoreID]bool, len(a.Cores))
	for _, c := range a.Cores {
		if int(c) < 0 || int(c) >= plat.NCores() {
			return fmt.Errorf("kernels: assignment core %d out of range [0,%d)", c, plat.NCores())
		}
		if seen[c] {
			return fmt.Errorf("kernels: core %d assigned twice", c)
		}
		seen[c] = true
	}
	return nil
}

// Streams expands the assignment into simulator streams, one per core,
// with IDs starting at firstID. The per-core demand is the hardware
// profile's per-core rate scaled by the kernel's demand factor; read and
// write streams of one core are merged into a single demand (they contend
// in the same load/store units, and the controller sees their sum).
func (a Assignment) Streams(sys *memsys.System, firstID int) ([]memsys.Stream, error) {
	if err := a.Validate(sys.Platform()); err != nil {
		return nil, err
	}
	streams := make([]memsys.Stream, 0, len(a.Cores))
	for i, c := range a.Cores {
		demand := sys.ComputeDemand(c, a.Node) * a.Kernel.DemandFactor
		streams = append(streams, memsys.Stream{
			ID:     firstID + i,
			Kind:   memsys.KindCompute,
			Core:   c,
			Node:   a.Node,
			Demand: demand,
		})
	}
	return streams, nil
}

// BytesPerIteration reports how many bytes one iteration over an array of
// elems float64 elements moves through memory (reads + writes).
func (k Kernel) BytesPerIteration(elems int) int64 {
	const elemSize = 8
	return int64(elems) * elemSize * int64(k.ReadStreams+k.WriteStreams)
}
