package kernels

import (
	"testing"

	"memcontention/internal/memsys"
	"memcontention/internal/topology"
)

func TestBuiltinKernels(t *testing.T) {
	cases := []struct {
		kind        Kind
		name        string
		reads       int
		writes      int
		nonTemporal bool
		memoryBound bool
	}{
		{NTMemset, "nt-memset", 0, 1, true, true},
		{Copy, "copy", 1, 1, true, true},
		{Triad, "triad", 2, 1, true, true},
		{Load, "load", 1, 0, false, true},
	}
	for _, c := range cases {
		k := New(c.kind)
		if k.String() != c.name {
			t.Errorf("%v name = %q, want %q", c.kind, k.String(), c.name)
		}
		if k.ReadStreams != c.reads || k.WriteStreams != c.writes {
			t.Errorf("%s streams = (%d,%d), want (%d,%d)", c.name, k.ReadStreams, k.WriteStreams, c.reads, c.writes)
		}
		if k.NonTemporal != c.nonTemporal {
			t.Errorf("%s NonTemporal = %v", c.name, k.NonTemporal)
		}
		if k.MemoryBound() != c.memoryBound {
			t.Errorf("%s MemoryBound = %v", c.name, k.MemoryBound())
		}
		if err := k.Validate(); err != nil {
			t.Errorf("%s validate: %v", c.name, err)
		}
	}
	// The calibration kernel is the demand baseline.
	if New(NTMemset).DemandFactor != 1.0 {
		t.Error("nt-memset must be the demand baseline (factor 1)")
	}
	if New(Copy).DemandFactor <= 1.0 || New(Triad).DemandFactor <= New(Copy).DemandFactor {
		t.Error("multi-stream kernels must demand more than memset, triad more than copy")
	}
}

func TestUnknownKind(t *testing.T) {
	k := New(Kind(42))
	if k.String() == "" {
		t.Error("unknown kernel must still render")
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind must render")
	}
}

func TestKernelValidate(t *testing.T) {
	bad := []Kernel{
		{},                // no streams
		{ReadStreams: -1}, // negative
		{WriteStreams: 1}, // zero demand factor
		{WriteStreams: 1, DemandFactor: 1, ArithmeticIntensity: -1},
	}
	for i, k := range bad {
		if err := k.Validate(); err == nil {
			t.Errorf("bad kernel %d accepted", i)
		}
	}
}

func TestAssignmentValidate(t *testing.T) {
	plat := topology.Henri()
	good := Assignment{Kernel: New(NTMemset), Cores: []topology.CoreID{0, 1, 2}, Node: 0}
	if err := good.Validate(plat); err != nil {
		t.Fatal(err)
	}
	bad := []Assignment{
		{Kernel: New(NTMemset), Cores: nil, Node: 0},
		{Kernel: New(NTMemset), Cores: []topology.CoreID{0}, Node: 99},
		{Kernel: New(NTMemset), Cores: []topology.CoreID{99}, Node: 0},
		{Kernel: New(NTMemset), Cores: []topology.CoreID{1, 1}, Node: 0},
		{Kernel: Kernel{}, Cores: []topology.CoreID{0}, Node: 0},
	}
	for i, a := range bad {
		if err := a.Validate(plat); err == nil {
			t.Errorf("bad assignment %d accepted", i)
		}
	}
}

func TestAssignmentStreams(t *testing.T) {
	prof, err := memsys.ProfileFor("henri")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := memsys.New(topology.Henri(), prof)
	if err != nil {
		t.Fatal(err)
	}
	a := Assignment{Kernel: New(Copy), Cores: []topology.CoreID{0, 1, 2}, Node: 1}
	streams, err := a.Streams(sys, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 3 {
		t.Fatalf("got %d streams, want 3 (one per core)", len(streams))
	}
	for i, st := range streams {
		if st.ID != 100+i {
			t.Errorf("stream %d id = %d, want %d", i, st.ID, 100+i)
		}
		if st.Kind != memsys.KindCompute || st.Node != 1 {
			t.Errorf("stream %d misdescribed: %+v", i, st)
		}
		// Copy kernel against a remote node: remote per-core rate
		// scaled by the copy demand factor.
		want := prof.PerCoreRemote * New(Copy).DemandFactor
		if st.Demand != want {
			t.Errorf("stream %d demand = %v, want %v", i, st.Demand, want)
		}
	}
	// Invalid assignments propagate errors.
	if _, err := (Assignment{Kernel: New(Copy), Cores: []topology.CoreID{99}, Node: 0}).Streams(sys, 0); err == nil {
		t.Error("invalid assignment must not produce streams")
	}
}

func TestBytesPerIteration(t *testing.T) {
	if got := New(Triad).BytesPerIteration(1000); got != 3*8*1000 {
		t.Errorf("triad bytes/iter = %d, want %d", got, 3*8*1000)
	}
	if got := New(NTMemset).BytesPerIteration(1000); got != 8*1000 {
		t.Errorf("memset bytes/iter = %d, want %d", got, 8*1000)
	}
}

func TestKernelCustomName(t *testing.T) {
	k := New(NTMemset)
	k.Name = "my-kernel"
	if k.String() != "my-kernel" {
		t.Error("custom name must win")
	}
}
