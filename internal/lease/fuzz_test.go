package lease

import (
	"errors"
	"fmt"
	"hash/crc32"
	"testing"
)

// FuzzLeaseDecode drives the lease-file decoder with arbitrary bytes.
// The decoder runs on whatever another process — possibly killed
// mid-write — left in the campaign's leases/ directory, so it must
// never panic and must classify every malformed image as ErrInvalid
// (which Acquire treats as a stale lease, never a fatal error): torn
// writes, garbage, shifted framing, wild epochs and out-of-range
// timestamps all land there. Whatever does decode must re-encode to a
// byte-identical image (the lease codec is canonical).
func FuzzLeaseDecode(f *testing.F) {
	good, err := Encode(Lease{
		Shard: 3, Epoch: 7,
		Owner:             Owner{Host: "node-12", PID: 4242, Token: "00deadbeef77aa55"},
		HeartbeatUnixNano: 1_700_000_000_000_000_000,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)-5])                         // torn write
	f.Add(good[:len(good)-1])                         // missing newline
	f.Add(append(append([]byte{}, good...), good...)) // two records
	f.Add([]byte(""))
	f.Add([]byte("garbage, not a lease"))
	f.Add([]byte("deadbeef {\"shard\":0}\n"))                        // wrong CRC
	f.Add([]byte("zzzzzzzz {\"shard\":0}\n"))                        // non-hex CRC
	f.Add([]byte("0" + string(good)))                               // shifted framing
	f.Add(frameFuzz(`{"shard":0,"epoch":0,"owner":{"host":"","pid":0,"token":"t"},"heartbeat_unix_nano":0}`))
	f.Add(frameFuzz(`{"shard":-4,"epoch":1,"owner":{"host":"","pid":0,"token":"t"},"heartbeat_unix_nano":0}`))
	f.Add(frameFuzz(`{"shard":0,"epoch":18446744073709551615,"owner":{"host":"","pid":0,"token":"t"},"heartbeat_unix_nano":0}`)) // future/overflow epoch
	f.Add(frameFuzz(`{"shard":0,"epoch":1,"owner":{"host":"","pid":0,"token":"t"},"heartbeat_unix_nano":9223372036854775807}`)) // extreme timestamp
	f.Add(frameFuzz(`{"shard":0,"epoch":1,"owner":{"host":"","pid":0,"token":"t"},"heartbeat_unix_nano":1e999}`))               // NaN/Inf-shaped number
	f.Add(frameFuzz(`{"shard":0,"epoch":1,"owner":{"host":"","pid":0,"token":"t"},"heartbeat_unix_nano":0,"extra":true}`))      // unknown field

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("Decode error does not wrap ErrInvalid: %v", err)
			}
			return
		}
		// Every successfully decoded lease is within the validated
		// bounds...
		if verr := validLease(l); verr != nil {
			t.Fatalf("decoded lease violates its own invariants: %v (%+v)", verr, l)
		}
		// ...and round-trips byte-identically: the codec is canonical,
		// so two processes comparing lease images compare leases.
		img, err := Encode(l)
		if err != nil {
			t.Fatalf("decoded lease does not re-encode: %v", err)
		}
		back, err := Decode(img)
		if err != nil {
			t.Fatalf("re-encoded lease does not decode: %v", err)
		}
		if back != l {
			t.Fatalf("round trip changed the lease: %+v != %+v", back, l)
		}
	})
}

// frameFuzz wraps a record in valid CRC framing for seed inputs that
// must exercise the field validation, not the checksum.
func frameFuzz(rec string) []byte {
	return []byte(fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE([]byte(rec)), rec))
}
