// Package lease coordinates multi-process campaigns over a shared
// campaign directory: durable per-shard lease files that carry owner
// identity, a monotonically increasing fencing epoch and a heartbeat
// timestamp. Workers acquire a shard's lease before executing its
// experiment units, renew it on a heartbeat interval while they run, and
// release it when the shard is drained. A worker that stops renewing —
// killed, hung, partitioned — goes stale after TTL+grace and any other
// process may take the shard over with a bumped epoch; the deposed
// owner, should it come back to life, discovers the higher epoch at its
// next renewal (ErrFenced) and stops. Until then its journal appends
// land in an epoch-suffixed shard file that nobody else writes, so a
// zombie can never corrupt the live journal (see
// checkpoint.ShardSet and docs/campaigns.md).
//
// Lease files use the same single-line CRC32 framing as checkpoint
// journals, and the decoder treats *any* malformed content — torn
// writes, garbage, wild epochs or timestamps — as an invalid lease,
// which Acquire handles as stale rather than fatal: lease files are
// coordination state, not results, and a corrupt one must never wedge a
// campaign.
//
// The package is inherently nondeterministic (wall-clock heartbeats,
// host/pid/random-token identity) and is exempted from memlint's
// determinism check; it must never feed bytes into a reproducible
// artifact.
package lease

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"time"
)

// Owner identifies the process holding (or claiming) a lease: host and
// pid for humans reading a stuck campaign dir, and a random token that
// makes the identity unforgeable across pid reuse.
type Owner struct {
	Host  string `json:"host"`
	PID   int    `json:"pid"`
	Token string `json:"token"`
}

// String renders the owner for diagnostics.
func (o Owner) String() string {
	return fmt.Sprintf("%s/%d/%s", o.Host, o.PID, o.Token)
}

// SelfOwner builds the identity of the current process: hostname, pid
// and a fresh 8-byte random token.
func SelfOwner() (Owner, error) {
	host, err := os.Hostname()
	if err != nil {
		// Identity still works without a resolvable hostname; the token
		// alone is what fencing compares.
		host = "unknown"
	}
	var tok [8]byte
	if _, err := rand.Read(tok[:]); err != nil {
		return Owner{}, fmt.Errorf("lease: owner token: %w", err)
	}
	return Owner{Host: host, PID: os.Getpid(), Token: hex.EncodeToString(tok[:])}, nil
}

// Lease is the durable claim on one shard: who owns it, under which
// fencing epoch, and when the owner last proved it was alive.
type Lease struct {
	Shard int   `json:"shard"`
	Epoch uint64 `json:"epoch"`
	Owner Owner `json:"owner"`
	// HeartbeatUnixNano is the owner's last renewal instant on the
	// manager's clock (wall clock in production). Staleness is judged
	// against it: now - heartbeat > TTL+grace means the owner is gone.
	HeartbeatUnixNano int64 `json:"heartbeat_unix_nano"`
}

// Heartbeat returns the heartbeat instant as a time.Time.
func (l Lease) Heartbeat() time.Time { return time.Unix(0, l.HeartbeatUnixNano) }

// Encode renders a lease file image: an IEEE CRC32 of the compact JSON
// record (8 hex digits), a space, the record, a newline — the same
// framing as checkpoint journal lines, so torn and bit-rotted files are
// detected rather than trusted.
func Encode(l Lease) ([]byte, error) {
	if err := validLease(l); err != nil {
		return nil, fmt.Errorf("lease: encode: %w", err)
	}
	rec, err := json.Marshal(l)
	if err != nil {
		return nil, fmt.Errorf("lease: encode shard %d: %w", l.Shard, err)
	}
	img := make([]byte, 0, len(rec)+10)
	img = fmt.Appendf(img, "%08x ", crc32.ChecksumIEEE(rec))
	img = append(img, rec...)
	img = append(img, '\n')
	return img, nil
}

// ErrInvalid reports a lease image that failed to decode — torn write,
// corruption, or out-of-range fields. Callers must treat it as "no
// usable lease" (stale), never as fatal.
var ErrInvalid = errors.New("lease: invalid lease file")

// Decode parses a lease file image. It never panics on any input;
// malformed framing, a CRC mismatch, trailing bytes, invalid JSON or
// out-of-range fields (negative shard, epoch 0, epoch or timestamp
// beyond representable bounds) all return an error wrapping ErrInvalid.
func Decode(data []byte) (Lease, error) {
	if len(data) < 10 || data[8] != ' ' || data[len(data)-1] != '\n' {
		return Lease{}, fmt.Errorf("%w: bad framing (%d bytes)", ErrInvalid, len(data))
	}
	crc, ok := parseHex8(data[:8])
	if !ok {
		return Lease{}, fmt.Errorf("%w: non-hex checksum", ErrInvalid)
	}
	rec := data[9 : len(data)-1]
	if crc32.ChecksumIEEE(rec) != crc {
		return Lease{}, fmt.Errorf("%w: checksum mismatch", ErrInvalid)
	}
	var l Lease
	dec := json.NewDecoder(bytes.NewReader(rec))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&l); err != nil {
		return Lease{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if dec.More() {
		return Lease{}, fmt.Errorf("%w: trailing content after record", ErrInvalid)
	}
	if err := validLease(l); err != nil {
		return Lease{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	return l, nil
}

// validLease bounds the fields a decoded (or about-to-be-encoded) lease
// may carry. Epochs saturating the uint64 range would wedge takeover
// (epoch+1 overflows); timestamps beyond what time.Unix can represent
// would corrupt staleness math.
func validLease(l Lease) error {
	switch {
	case l.Shard < 0:
		return fmt.Errorf("negative shard %d", l.Shard)
	case l.Epoch == 0:
		return errors.New("epoch 0 (epochs start at 1)")
	case l.Epoch >= math.MaxUint64/2:
		return fmt.Errorf("epoch %d out of range", l.Epoch)
	case l.Owner.Token == "":
		return errors.New("empty owner token")
	default:
		return nil
	}
}

// parseHex8 strictly parses exactly eight hex digits.
func parseHex8(b []byte) (uint32, bool) {
	var v uint32
	for _, c := range b {
		var d uint32
		switch {
		case c >= '0' && c <= '9':
			d = uint32(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint32(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint32(c-'A') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}
