package lease

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"testing"
	"time"
)

// manualClock is a test clock advanced explicitly; safe for concurrent
// readers.
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newManualClock() *manualClock {
	return &manualClock{now: time.Unix(1_000_000, 0)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func testConfig(t *testing.T, dir string, clock *manualClock, token string) Config {
	t.Helper()
	return Config{
		Dir:       dir,
		TTL:       time.Second,
		Heartbeat: 100 * time.Millisecond,
		Grace:     -1, // no grace: staleness boundaries are exact in tests
		Clock:     clock.Now,
		Owner:     Owner{Host: "test", PID: 1, Token: token},
	}
}

func mustManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	l := Lease{Shard: 3, Epoch: 7, Owner: Owner{Host: "h", PID: 42, Token: "deadbeef"}, HeartbeatUnixNano: 123456789}
	img, err := Encode(l)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(img)
	if err != nil {
		t.Fatal(err)
	}
	if got != l {
		t.Fatalf("round trip changed the lease: %+v != %+v", got, l)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	good, err := Encode(Lease{Shard: 0, Epoch: 1, Owner: Owner{Token: "t"}, HeartbeatUnixNano: 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          nil,
		"torn":           good[:len(good)-3],
		"no-newline":     good[:len(good)-1],
		"garbage":        []byte("not a lease at all"),
		"bad-crc":        append([]byte("00000000"), good[8:]...),
		"trailing":       append(append([]byte{}, good[:len(good)-1]...), []byte(" extra\n")...),
		"double-record":  append(append([]byte{}, good...), good...),
		"unknown-fields": []byte("00000000 {\"shard\":0,\"bogus\":1}\n"),
	}
	for name, data := range cases {
		if _, err := Decode(data); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: Decode = %v, want ErrInvalid", name, err)
		}
	}
}

func TestDecodeRejectsWildFields(t *testing.T) {
	for name, l := range map[string]Lease{
		"epoch-zero":     {Shard: 0, Epoch: 0, Owner: Owner{Token: "t"}},
		"negative-shard": {Shard: -1, Epoch: 1, Owner: Owner{Token: "t"}},
		"empty-token":    {Shard: 0, Epoch: 1},
	} {
		if _, err := Encode(l); err == nil {
			t.Errorf("%s: Encode accepted an invalid lease", name)
		}
		// The same invalid record hand-framed must fail Decode too.
		rec := fmt.Sprintf(`{"shard":%d,"epoch":%d,"owner":{"host":"","pid":0,"token":%q},"heartbeat_unix_nano":0}`,
			l.Shard, l.Epoch, l.Owner.Token)
		img := frame(t, rec)
		if _, err := Decode(img); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: Decode = %v, want ErrInvalid", name, err)
		}
	}
}

// frame wraps a raw JSON record in valid CRC framing, so tests can hand
// the decoder records Encode itself refuses to produce.
func frame(t *testing.T, rec string) []byte {
	t.Helper()
	return []byte(fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE([]byte(rec)), rec))
}

func TestConfigValidation(t *testing.T) {
	base := Config{Dir: "d"}
	if err := base.Validate(); err != nil {
		t.Fatalf("zero-value config (with Dir) must validate: %v", err)
	}
	cases := []struct {
		name  string
		cfg   Config
		field string
	}{
		{"no-dir", Config{}, "Dir"},
		{"negative-ttl", Config{Dir: "d", TTL: -time.Second}, "TTL"},
		{"negative-heartbeat", Config{Dir: "d", TTL: time.Second, Heartbeat: -time.Millisecond}, "Heartbeat"},
		{"heartbeat-too-long", Config{Dir: "d", TTL: time.Second, Heartbeat: 400 * time.Millisecond}, "Heartbeat"},
		{"heartbeat-equals-third", Config{Dir: "d", TTL: 3 * time.Second, Heartbeat: time.Second}, "Heartbeat"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: Validate = %v, want *ConfigError", tc.name, err)
			continue
		}
		if ce.Field != tc.field {
			t.Errorf("%s: rejected field %q, want %q", tc.name, ce.Field, tc.field)
		}
	}
}

func TestAcquireRenewRelease(t *testing.T) {
	clock := newManualClock()
	dir := t.TempDir()
	m := mustManager(t, testConfig(t, dir, clock, "owner-a"))

	h, err := m.Acquire(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Epoch() != 1 {
		t.Fatalf("first epoch = %d, want 1", h.Epoch())
	}
	if _, state, _ := m.Inspect(0); state != StateLive {
		t.Fatalf("state after acquire = %s, want live", state)
	}
	clock.Advance(500 * time.Millisecond)
	if err := h.Renew(); err != nil {
		t.Fatal(err)
	}
	// The renewal reset the staleness window.
	clock.Advance(900 * time.Millisecond)
	if _, state, _ := m.Inspect(0); state != StateLive {
		t.Fatalf("state within TTL of renewal = %s, want live", state)
	}
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
	if _, state, _ := m.Inspect(0); state != StateFree {
		t.Fatalf("state after release = %s, want free", state)
	}
	// Released shard is immediately acquirable, at a bumped epoch.
	h2, err := m.Acquire(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Epoch() <= h.Epoch() {
		t.Fatalf("re-acquired epoch %d not above released epoch %d", h2.Epoch(), h.Epoch())
	}
}

func TestLiveLeaseRefusesOtherOwners(t *testing.T) {
	clock := newManualClock()
	dir := t.TempDir()
	a := mustManager(t, testConfig(t, dir, clock, "owner-a"))
	b := mustManager(t, testConfig(t, dir, clock, "owner-b"))

	if _, err := a.Acquire(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Acquire(0, 0); !errors.Is(err, ErrHeld) {
		t.Fatalf("Acquire on a live foreign lease = %v, want ErrHeld", err)
	}
}

func TestStaleTakeoverAndFencing(t *testing.T) {
	clock := newManualClock()
	dir := t.TempDir()
	a := mustManager(t, testConfig(t, dir, clock, "owner-a"))
	b := mustManager(t, testConfig(t, dir, clock, "owner-b"))

	ha, err := a.Acquire(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Owner A stops heartbeating; past TTL (+grace 0) it is stale.
	clock.Advance(1100 * time.Millisecond)
	if _, state, _ := b.Inspect(0); state != StateStale {
		t.Fatalf("state past TTL = %s, want stale", state)
	}
	hb, err := b.Acquire(0, 0)
	if err != nil {
		t.Fatalf("takeover of a stale lease failed: %v", err)
	}
	if hb.Epoch() != ha.Epoch()+1 {
		t.Fatalf("takeover epoch = %d, want %d", hb.Epoch(), ha.Epoch()+1)
	}
	// The zombie resumes and tries to renew: fenced, permanently.
	if err := ha.Renew(); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie Renew = %v, want ErrFenced", err)
	}
	if !ha.Fenced() {
		t.Fatal("zombie not marked fenced")
	}
	if err := ha.Renew(); !errors.Is(err, ErrFenced) {
		t.Fatal("fencing must be sticky")
	}
	// The zombie's release must not disturb the new owner's lease.
	if err := ha.Release(); err != nil {
		t.Fatal(err)
	}
	if l, state, _ := b.Inspect(0); state != StateLive || l.Owner.Token != "owner-b" {
		t.Fatalf("new owner's lease disturbed by zombie release: state=%s owner=%s", state, l.Owner.Token)
	}
	// The rightful owner keeps renewing fine.
	if err := hb.Renew(); err != nil {
		t.Fatal(err)
	}
}

// TestZombieClobberRecovery: the deposed owner's in-flight renewal can
// overwrite the new owner's lease file (read-check-write is not atomic
// across processes). Epoch-ordered renewal must recover: the rightful
// owner's next Renew sees the lower epoch and re-asserts, the zombie's
// next Renew sees the higher epoch and fences.
func TestZombieClobberRecovery(t *testing.T) {
	clock := newManualClock()
	dir := t.TempDir()
	a := mustManager(t, testConfig(t, dir, clock, "owner-a"))
	b := mustManager(t, testConfig(t, dir, clock, "owner-b"))

	ha, err := a.Acquire(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(1100 * time.Millisecond)
	hb, err := b.Acquire(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the clobber: write A's (lower-epoch) record over B's.
	img, err := Encode(Lease{Shard: 0, Epoch: ha.Epoch(), Owner: a.Owner(), HeartbeatUnixNano: clock.Now().UnixNano()})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(a.Path(0), img, 0o644); err != nil { // deliberate raw clobber
		t.Fatal(err)
	}
	// B's renew sees a lower epoch and re-asserts rather than fencing.
	if err := hb.Renew(); err != nil {
		t.Fatalf("rightful owner fenced by a stale clobber: %v", err)
	}
	if l, _, _ := b.Inspect(0); l.Epoch != hb.Epoch() {
		t.Fatalf("lease epoch after re-assert = %d, want %d", l.Epoch, hb.Epoch())
	}
	// A's renew now sees the higher epoch and fences.
	if err := ha.Renew(); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie Renew after clobber = %v, want ErrFenced", err)
	}
}

func TestCorruptLeaseIsStaleNeverFatal(t *testing.T) {
	clock := newManualClock()
	dir := t.TempDir()
	m := mustManager(t, testConfig(t, dir, clock, "owner-a"))

	for _, corrupt := range [][]byte{
		[]byte("garbage"),
		{},
		[]byte("00000000 {\"shard\":0}\n"),
	} {
		if err := os.WriteFile(m.Path(2), corrupt, 0o644); err != nil { // deliberate corruption
			t.Fatal(err)
		}
		if _, state, err := m.Inspect(2); err != nil || state != StateCorrupt {
			t.Fatalf("Inspect(corrupt %q) = %s, %v; want corrupt, nil", corrupt, state, err)
		}
		h, err := m.Acquire(2, 0)
		if err != nil {
			t.Fatalf("Acquire over corrupt lease %q failed: %v", corrupt, err)
		}
		if err := h.Release(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEpochFloorCoversCorruptLease: a corrupt lease hides the old epoch,
// but the caller's floor (from journal file names) still forces the new
// epoch past it.
func TestEpochFloorCoversCorruptLease(t *testing.T) {
	clock := newManualClock()
	dir := t.TempDir()
	m := mustManager(t, testConfig(t, dir, clock, "owner-a"))
	if err := os.WriteFile(m.Path(0), []byte("torn gar"), 0o644); err != nil { // deliberate corruption
		t.Fatal(err)
	}
	h, err := m.Acquire(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if h.Epoch() != 10 {
		t.Fatalf("epoch over floor 9 = %d, want 10", h.Epoch())
	}
}

// TestSplitClaimEpochUniqueness: many concurrent takeovers of the same
// free shard. The O_EXCL claim markers guarantee every claimant —
// winner or loser — a distinct epoch, so no two processes ever share a
// journal file; the verify-after-write in Acquire then settles the race
// by epoch order, so losers get ErrHeld instead of a second live
// ownership. At least one claimant must win. Run under -race.
func TestSplitClaimEpochUniqueness(t *testing.T) {
	clock := newManualClock()
	dir := t.TempDir()
	const n = 8
	epochs := make([]uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := mustManager(t, testConfig(t, dir, clock, fmt.Sprintf("owner-%d", i)))
			h, err := m.Acquire(0, 0)
			if errors.Is(err, ErrHeld) {
				return // lost the race; epoch burned, never shared
			}
			if err != nil {
				t.Errorf("claimant %d: %v", i, err)
				return
			}
			epochs[i] = h.Epoch()
		}()
	}
	wg.Wait()
	seen := map[uint64]int{}
	winners := 0
	for i, e := range epochs {
		if e == 0 {
			continue // lost the claim race (or failed and reported)
		}
		winners++
		if prev, dup := seen[e]; dup {
			t.Fatalf("claimants %d and %d share epoch %d", prev, i, e)
		}
		seen[e] = i
	}
	if winners == 0 {
		t.Fatal("every claimant lost: the race must elect at least one owner")
	}
}

func TestShardsListing(t *testing.T) {
	clock := newManualClock()
	dir := t.TempDir()
	m := mustManager(t, testConfig(t, dir, clock, "owner-a"))
	for _, s := range []int{3, 0, 7} {
		if _, err := m.Acquire(s, 0); err != nil {
			t.Fatal(err)
		}
	}
	got, err := m.Shards()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 3, 7}
	if len(got) != len(want) {
		t.Fatalf("Shards() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Shards() = %v, want %v", got, want)
		}
	}
}

func TestReleaseLeavesForeignLease(t *testing.T) {
	clock := newManualClock()
	dir := t.TempDir()
	a := mustManager(t, testConfig(t, dir, clock, "owner-a"))
	b := mustManager(t, testConfig(t, dir, clock, "owner-b"))
	ha, err := a.Acquire(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Second)
	if _, err := b.Acquire(0, 0); err != nil {
		t.Fatal(err)
	}
	// A releases without ever renewing (so it was never fenced): the
	// ownership check must still keep B's lease intact.
	if err := ha.Release(); err != nil {
		t.Fatal(err)
	}
	if l, state, _ := b.Inspect(0); state != StateLive || l.Owner.Token != "owner-b" {
		t.Fatalf("foreign release removed the live lease: state=%s", state)
	}
}

func TestSelfOwnerTokensDiffer(t *testing.T) {
	a, err := SelfOwner()
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelfOwner()
	if err != nil {
		t.Fatal(err)
	}
	if a.Token == b.Token {
		t.Fatal("two SelfOwner calls produced the same token")
	}
	if a.PID != os.Getpid() {
		t.Fatalf("owner pid = %d, want %d", a.PID, os.Getpid())
	}
}
