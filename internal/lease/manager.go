package lease

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"memcontention/internal/atomicio"
	"memcontention/internal/obs"
)

// Config parameterises a lease Manager. TTL, Heartbeat and Grace govern
// liveness: the owner rewrites its lease every Heartbeat; other workers
// treat the lease as stale — and take the shard over — once the last
// heartbeat is older than TTL+Grace. Heartbeat must stay well under the
// TTL (validated: Heartbeat < TTL/3) so a single missed or slow renewal
// never looks like a death.
type Config struct {
	// Dir is the directory holding the lease files (conventionally
	// <campaign-dir>/leases). Created durably if missing.
	Dir string
	// TTL is how long a lease stays live past its last heartbeat
	// (default 15s).
	TTL time.Duration
	// Heartbeat is the renewal interval (default TTL/5). Must be > 0
	// and < TTL/3.
	Heartbeat time.Duration
	// Grace is extra slack added to TTL before a lease is declared
	// stale, absorbing clock skew between processes and write latency
	// (default TTL/2; 0 keeps the default, use a negative value for
	// "no grace" in tests).
	Grace time.Duration
	// Clock supplies the heartbeat timestamps (nil: obs.WallClock —
	// the repo's one sanctioned wall-clock read; tests inject a manual
	// clock).
	Clock obs.Clock
	// Owner identifies this process (zero value: SelfOwner()).
	Owner Owner
	// Registry receives the memcontention_lease_* metrics (claims,
	// takeovers, renewals, renew failures, fences, held leases); nil
	// disables them at zero cost.
	Registry *obs.Registry
}

// ConfigError is the structured rejection of an invalid lease
// configuration: the offending field and why it is wrong. Commands
// surface it verbatim instead of logging and limping on.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("lease: invalid config: %s %s", e.Field, e.Reason)
}

// withDefaults fills the documented defaults (validation happens
// separately so explicit bad values are rejected, not silently fixed).
func (c Config) withDefaults() Config {
	if c.TTL == 0 {
		c.TTL = 15 * time.Second
	}
	if c.Heartbeat == 0 {
		c.Heartbeat = c.TTL / 5
	}
	if c.Grace == 0 {
		c.Grace = c.TTL / 2
	} else if c.Grace < 0 {
		c.Grace = 0
	}
	if c.Clock == nil {
		c.Clock = obs.WallClock
	}
	return c
}

// WithDefaults returns the config with the documented defaults filled
// in — exported so callers that embed a Config (the remote campaign
// plane) can compute derived intervals (poll = heartbeat) without
// duplicating the default table.
func (c Config) WithDefaults() Config { return c.withDefaults() }

// Validate rejects configurations that would make liveness detection
// unsound. Defaults are applied first, so the zero value validates.
func (c Config) Validate() error {
	c = c.withDefaults()
	switch {
	case c.Dir == "":
		return &ConfigError{Field: "Dir", Reason: "must name the lease directory"}
	case c.TTL <= 0:
		return &ConfigError{Field: "TTL", Reason: fmt.Sprintf("= %v, must be > 0", c.TTL)}
	case c.Heartbeat <= 0:
		return &ConfigError{Field: "Heartbeat", Reason: fmt.Sprintf("= %v, must be > 0", c.Heartbeat)}
	case c.Heartbeat*3 >= c.TTL:
		return &ConfigError{Field: "Heartbeat", Reason: fmt.Sprintf(
			"= %v, must be < TTL/3 (TTL %v) so one slow renewal is never mistaken for a death", c.Heartbeat, c.TTL)}
	}
	return nil
}

// ErrHeld reports an Acquire attempt on a shard whose lease is live
// under another owner — not an error condition for a worker scanning
// for work, just "move on".
var ErrHeld = errors.New("lease: shard is held by a live owner")

// ErrFenced reports that this process no longer owns a lease it once
// held: another worker bumped the epoch (takeover after staleness) or
// removed the file after completing the shard. The deposed owner must
// stop executing the shard; journal appends it already made landed in
// its own dead-epoch file and are harmless.
var ErrFenced = errors.New("lease: deposed by a higher epoch")

// Manager acquires, renews and releases the shard leases of one
// campaign directory on behalf of one owner process.
type Manager struct {
	cfg Config
	m   instruments
}

// instruments are the manager's telemetry hooks; with no registry every
// field is nil and records nothing (the obs zero-cost-when-off
// contract). Until PR 9 leases were invisible to the registry — an
// operator could not tell a fleet renewing happily from one fencing
// itself to death without reading the lease directory by hand.
type instruments struct {
	claims        *obs.Counter
	takeovers     *obs.Counter
	renewals      *obs.Counter
	renewFailures *obs.Counter
	fences        *obs.Counter
	released      *obs.Counter
	held          *obs.Gauge
}

func newInstruments(r *obs.Registry) instruments {
	return instruments{
		claims:        r.Counter("memcontention_lease_claims_total", "Shard leases acquired by this process.", nil),
		takeovers:     r.Counter("memcontention_lease_takeovers_total", "Acquisitions that replaced a stale or corrupt lease (orphan takeover).", nil),
		renewals:      r.Counter("memcontention_lease_renewals_total", "Successful heartbeat renewals.", nil),
		renewFailures: r.Counter("memcontention_lease_renew_failures_total", "Transient heartbeat-renewal failures (not fences).", nil),
		fences:        r.Counter("memcontention_lease_fences_total", "Leases lost to a higher fencing epoch (this process was deposed).", nil),
		released:      r.Counter("memcontention_lease_releases_total", "Leases released after their shard drained.", nil),
		held:          r.Gauge("memcontention_lease_held", "Shard leases currently held by this process.", nil),
	}
}

// NewManager validates cfg, fills defaults (including a fresh SelfOwner
// when none is given) and durably creates the lease directory.
func NewManager(cfg Config) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.Owner.Token == "" {
		owner, err := SelfOwner()
		if err != nil {
			return nil, err
		}
		cfg.Owner = owner
	}
	if err := atomicio.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("lease: dir %s: %w", cfg.Dir, err)
	}
	return &Manager{cfg: cfg, m: newInstruments(cfg.Registry)}, nil
}

// Owner reports the identity this manager acquires leases under.
func (m *Manager) Owner() Owner { return m.cfg.Owner }

// Heartbeat reports the configured renewal interval.
func (m *Manager) Heartbeat() time.Duration { return m.cfg.Heartbeat }

// TTL reports the configured time-to-live.
func (m *Manager) TTL() time.Duration { return m.cfg.TTL }

// Path returns the lease file path of shard i.
func (m *Manager) Path(shard int) string {
	return filepath.Join(m.cfg.Dir, fmt.Sprintf("shard-%04d.lease", shard))
}

// claimPath returns the epoch-claim marker of (shard, epoch). Claim
// files are created O_EXCL and never removed: each (shard, epoch) pair
// is claimed by at most one owner ever, which is what makes epochs safe
// to use as journal-file suffixes — two processes can never append to
// the same epoch file.
func (m *Manager) claimPath(shard int, epoch uint64) string {
	return filepath.Join(m.cfg.Dir, fmt.Sprintf("shard-%04d.e%d.claim", shard, epoch))
}

// State classifies a shard's lease for Inspect.
type State string

const (
	// StateFree: no lease file exists.
	StateFree State = "free"
	// StateLive: a decodable lease with a fresh heartbeat.
	StateLive State = "live"
	// StateStale: a decodable lease whose heartbeat is older than
	// TTL+grace — the owner is presumed dead and the shard can be
	// taken over.
	StateStale State = "stale"
	// StateCorrupt: the lease file exists but does not decode (torn
	// write, garbage, wild fields). Treated exactly like StateStale by
	// Acquire — coordination state must never wedge a campaign.
	StateCorrupt State = "corrupt"
)

// Inspect reports a shard's lease and its liveness classification. The
// returned lease is the zero value for StateFree and StateCorrupt.
func (m *Manager) Inspect(shard int) (Lease, State, error) {
	data, err := os.ReadFile(m.Path(shard))
	if os.IsNotExist(err) {
		return Lease{}, StateFree, nil
	}
	if err != nil {
		return Lease{}, StateFree, fmt.Errorf("lease: read shard %d: %w", shard, err)
	}
	l, derr := Decode(data)
	if derr != nil {
		return Lease{}, StateCorrupt, nil
	}
	if m.cfg.Clock().Sub(l.Heartbeat()) > m.cfg.TTL+m.cfg.Grace {
		return l, StateStale, nil
	}
	return l, StateLive, nil
}

// Acquire claims shard for this manager's owner. A live lease under
// another owner returns ErrHeld (wrapped with the owner and age, for
// diagnostics). A free, stale or corrupt lease is taken over: the new
// epoch is one past the highest epoch ever observed for the shard —
// the decodable lease epoch, the epochFloor hint (callers pass the
// highest epoch seen in journal file names, covering the case where the
// lease file was corrupted or deleted but a zombie's journal survives),
// and every existing epoch-claim marker — and is reserved by creating
// the claim marker O_EXCL before the lease file is written, so two
// racing takeovers can never end up sharing an epoch.
func (m *Manager) Acquire(shard int, epochFloor uint64) (*Held, error) {
	if shard < 0 {
		return nil, fmt.Errorf("lease: negative shard %d", shard)
	}
	prev, state, err := m.Inspect(shard)
	if err != nil {
		return nil, err
	}
	if state == StateLive && prev.Owner.Token != m.cfg.Owner.Token {
		age := m.cfg.Clock().Sub(prev.Heartbeat())
		return nil, fmt.Errorf("lease: shard %d held by %s (epoch %d, heartbeat %v ago): %w",
			shard, prev.Owner, prev.Epoch, age.Round(time.Millisecond), ErrHeld)
	}
	floor := epochFloor
	if prev.Epoch > floor {
		floor = prev.Epoch
	}
	if claimed, err := m.maxClaimedEpoch(shard); err != nil {
		return nil, err
	} else if claimed > floor {
		floor = claimed
	}
	epoch, err := m.claimEpoch(shard, floor)
	if err != nil {
		return nil, err
	}
	h := &Held{m: m, shard: shard, epoch: epoch}
	if state == StateStale || state == StateCorrupt {
		h.tookOver = true
		h.deposed = prev.Owner
	}
	if err := h.write(); err != nil {
		return nil, err
	}
	// Verify the write stuck. Two workers can race through the staleness
	// check before either writes (the split-claim window); both claim
	// distinct epochs, but only the higher may keep the shard. If the
	// file now carries a higher epoch we lost: report ErrHeld and walk
	// away (the burned claim marker keeps our epoch unique forever, so
	// even this aborted acquisition can never share a journal file).
	// The residual window — both verify before the other's write lands —
	// closes at the first heartbeat renewal, and epoch-suffixed journals
	// make it harmless meanwhile.
	if cur, state, err := m.Inspect(shard); err != nil {
		return nil, err
	} else if state != StateCorrupt && cur.Epoch > epoch {
		h.mu.Lock()
		h.fenced = true
		h.mu.Unlock()
		return nil, fmt.Errorf("lease: shard %d lost a claim race to %s (epoch %d > %d): %w",
			shard, cur.Owner, cur.Epoch, epoch, ErrHeld)
	}
	m.m.claims.Inc()
	if h.tookOver {
		m.m.takeovers.Inc()
	}
	m.m.held.Add(1)
	return h, nil
}

// maxClaimedEpoch scans the existing claim markers of shard.
func (m *Manager) maxClaimedEpoch(shard int) (uint64, error) {
	entries, err := os.ReadDir(m.cfg.Dir)
	if err != nil {
		return 0, fmt.Errorf("lease: scan %s: %w", m.cfg.Dir, err)
	}
	prefix := fmt.Sprintf("shard-%04d.e", shard)
	var max uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".claim") {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".claim")
		epoch, err := strconv.ParseUint(num, 10, 64)
		if err != nil {
			continue // stray file, not a claim marker
		}
		if epoch > max {
			max = epoch
		}
	}
	return max, nil
}

// claimEpoch reserves the first unclaimed epoch above floor via an
// O_EXCL marker file (fsynced, directory fsynced: a claim that
// evaporates on power loss would let the epoch be claimed twice).
func (m *Manager) claimEpoch(shard int, floor uint64) (uint64, error) {
	for epoch := floor + 1; ; epoch++ {
		path := m.claimPath(shard, epoch)
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if errors.Is(err, os.ErrExist) {
			continue // raced with another takeover; try the next epoch
		}
		if err != nil {
			return 0, fmt.Errorf("lease: claim shard %d epoch %d: %w", shard, epoch, err)
		}
		// The marker records the claimant for post-mortem debugging of
		// a contended campaign dir; its existence is what matters.
		_, werr := fmt.Fprintf(f, "%s\n", m.cfg.Owner)
		if werr == nil {
			werr = f.Sync()
		}
		cerr := f.Close()
		if werr == nil {
			werr = cerr
		}
		if werr == nil {
			werr = atomicio.SyncDir(m.cfg.Dir)
		}
		if werr != nil {
			return 0, fmt.Errorf("lease: claim shard %d epoch %d: %w", shard, epoch, werr)
		}
		return epoch, nil
	}
}

// Held is an acquired lease: the handle the owning worker renews on its
// heartbeat interval and releases when the shard is drained. Renew and
// Release are safe for concurrent use (the heartbeat goroutine renews
// while the worker loop may release).
type Held struct {
	m        *Manager
	shard    int
	epoch    uint64
	tookOver bool
	deposed  Owner

	mu sync.Mutex
	// memlint:guard mu
	fenced bool
	// memlint:guard mu
	released bool
	// memlint:guard mu
	dropped bool // held-gauge already decremented (fence or release)
}

// Shard reports the shard this lease covers.
func (h *Held) Shard() int { return h.shard }

// Epoch reports the fencing epoch this lease was acquired under; the
// owner journals to the matching epoch-suffixed shard file.
func (h *Held) Epoch() uint64 { return h.epoch }

// TookOver reports whether this acquisition replaced a stale or corrupt
// lease — an orphan takeover rather than a fresh claim. The fleet event
// journal distinguishes the two in the campaign timeline.
func (h *Held) TookOver() bool { return h.tookOver }

// Deposed reports the owner whose stale lease this acquisition replaced
// (the zero Owner for fresh claims and corrupt leases).
func (h *Held) Deposed() Owner { return h.deposed }

// drop decrements the held gauge exactly once per lease. Callers hold
// h.mu.
func (h *Held) drop() {
	if h.dropped {
		return
	}
	h.dropped = true
	h.m.m.held.Add(-1)
}

// write rewrites the lease file with a fresh heartbeat.
func (h *Held) write() error {
	img, err := Encode(Lease{
		Shard:             h.shard,
		Epoch:             h.epoch,
		Owner:             h.m.cfg.Owner,
		HeartbeatUnixNano: h.m.cfg.Clock().UnixNano(),
	})
	if err != nil {
		return err
	}
	if err := atomicio.WriteFile(h.m.Path(h.shard), img, 0o644); err != nil {
		return fmt.Errorf("lease: write shard %d: %w", h.shard, err)
	}
	return nil
}

// Renew re-asserts ownership with a fresh heartbeat. Fencing is
// epoch-ordered, not write-ordered: a decodable lease with a *higher*
// epoch means another owner took the shard over (the stale window
// expired while we were stopped or partitioned) and Renew returns
// ErrFenced — permanently; every later Renew repeats it without
// touching the file. A lease file holding a lower epoch (a deposed
// zombie's last write clobbered ours), our own record, a corrupt image
// or no file at all is overwritten with our heartbeat: the highest
// epoch always wins within one heartbeat interval.
func (h *Held) Renew() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.fenced {
		return fmt.Errorf("lease: shard %d epoch %d: %w", h.shard, h.epoch, ErrFenced)
	}
	if h.released {
		return fmt.Errorf("lease: renew after release of shard %d", h.shard)
	}
	data, err := os.ReadFile(h.m.Path(h.shard))
	if err != nil && !os.IsNotExist(err) {
		h.m.m.renewFailures.Inc()
		return fmt.Errorf("lease: renew shard %d: %w", h.shard, err)
	}
	if err == nil {
		if cur, derr := Decode(data); derr == nil && cur.Epoch > h.epoch {
			h.fenced = true
			h.m.m.fences.Inc()
			h.drop()
			return fmt.Errorf("lease: shard %d epoch %d deposed by %s at epoch %d: %w",
				h.shard, h.epoch, cur.Owner, cur.Epoch, ErrFenced)
		}
	}
	if werr := h.write(); werr != nil {
		h.m.m.renewFailures.Inc()
		return werr
	}
	h.m.m.renewals.Inc()
	return nil
}

// Fenced reports whether a Renew observed a higher epoch; the owner
// must stop executing the shard (in-flight work may finish — its
// appends land in the dead epoch file).
func (h *Held) Fenced() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fenced
}

// Release ends ownership: if the lease file still carries our record it
// is removed (durably — the removal is dir-fsynced), so the next
// acquirer starts from StateFree without waiting out the TTL. A fenced
// or already-released lease releases as a no-op; a lease file someone
// else has overwritten is left untouched.
func (h *Held) Release() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.released || h.fenced {
		h.released = true
		return nil
	}
	h.released = true
	h.m.m.released.Inc()
	h.drop()
	path := h.m.Path(h.shard)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("lease: release shard %d: %w", h.shard, err)
	}
	cur, derr := Decode(data)
	if derr != nil || cur.Owner.Token != h.m.cfg.Owner.Token || cur.Epoch != h.epoch {
		return nil // not ours anymore; leave it for its owner
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("lease: release shard %d: %w", h.shard, err)
	}
	if err := atomicio.SyncDir(h.m.cfg.Dir); err != nil {
		return fmt.Errorf("lease: release shard %d: %w", h.shard, err)
	}
	return nil
}

// Shards lists every shard index that currently has a lease file under
// the manager's directory, sorted — a cheap overview for progress
// reporting and the failure matrix in docs/campaigns.md.
func (m *Manager) Shards() ([]int, error) {
	entries, err := os.ReadDir(m.cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("lease: scan %s: %w", m.cfg.Dir, err)
	}
	var shards []int
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "shard-") || !strings.HasSuffix(name, ".lease") {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, "shard-"), ".lease")
		n, err := strconv.Atoi(num)
		if err != nil || n < 0 {
			continue
		}
		shards = append(shards, n)
	}
	sort.Ints(shards)
	return shards, nil
}
