package lease

import (
	"errors"
	"os"
	"testing"
	"time"

	"memcontention/internal/obs"
)

// metered builds a manager whose instruments land in a fresh registry,
// returning both. The registry lookup contract (same name+labels → same
// instrument) lets the test read values through reg.Counter/Gauge.
func metered(t *testing.T, dir string, clock *manualClock, token string) (*Manager, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg := testConfig(t, dir, clock, token)
	cfg.Registry = reg
	return mustManager(t, cfg), reg
}

func counterValue(reg *obs.Registry, name string) float64 {
	return reg.Counter(name, "", nil).Value()
}

// TestManagerMetricsLifecycle walks one full fleet story — claim, renew,
// staleness, orphan takeover, fence, release — and checks every
// memcontention_lease_* instrument at each step.
func TestManagerMetricsLifecycle(t *testing.T) {
	dir := t.TempDir()
	clk := newManualClock()
	a, regA := metered(t, dir, clk, "aaaa")
	b, regB := metered(t, dir, clk, "bbbb")

	heldA, err := a.Acquire(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue(regA, "memcontention_lease_claims_total"); got != 1 {
		t.Fatalf("claims after acquire = %v, want 1", got)
	}
	if got := counterValue(regA, "memcontention_lease_takeovers_total"); got != 0 {
		t.Fatalf("fresh claim counted as takeover: %v", got)
	}
	if got := regA.Gauge("memcontention_lease_held", "", nil).Value(); got != 1 {
		t.Fatalf("held after acquire = %v, want 1", got)
	}

	clk.Advance(100 * time.Millisecond)
	if err := heldA.Renew(); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(regA, "memcontention_lease_renewals_total"); got != 1 {
		t.Fatalf("renewals = %v, want 1", got)
	}

	// Let A's lease go stale (TTL 1s, no grace), then B takes over.
	clk.Advance(2 * time.Second)
	heldB, err := b.Acquire(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue(regB, "memcontention_lease_claims_total"); got != 1 {
		t.Fatalf("B claims = %v, want 1", got)
	}
	if got := counterValue(regB, "memcontention_lease_takeovers_total"); got != 1 {
		t.Fatalf("B takeovers = %v, want 1", got)
	}
	if !heldB.TookOver() || heldB.Deposed().Token != "aaaa" {
		t.Fatalf("takeover provenance lost: tookOver=%v deposed=%v", heldB.TookOver(), heldB.Deposed())
	}

	// A's next renewal observes the higher epoch: fenced, held gauge
	// returns to zero exactly once.
	if err := heldA.Renew(); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie renew: %v, want ErrFenced", err)
	}
	if got := counterValue(regA, "memcontention_lease_fences_total"); got != 1 {
		t.Fatalf("fences = %v, want 1", got)
	}
	if got := regA.Gauge("memcontention_lease_held", "", nil).Value(); got != 0 {
		t.Fatalf("held after fence = %v, want 0", got)
	}
	// A fenced lease releases as a no-op: no release counted, gauge
	// untouched (already dropped by the fence).
	if err := heldA.Release(); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(regA, "memcontention_lease_releases_total"); got != 0 {
		t.Fatalf("fenced release counted: %v", got)
	}
	if got := regA.Gauge("memcontention_lease_held", "", nil).Value(); got != 0 {
		t.Fatalf("held double-dropped to %v", got)
	}

	if err := heldB.Release(); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(regB, "memcontention_lease_releases_total"); got != 1 {
		t.Fatalf("B releases = %v, want 1", got)
	}
	if got := regB.Gauge("memcontention_lease_held", "", nil).Value(); got != 0 {
		t.Fatalf("B held after release = %v, want 0", got)
	}
	// Releasing twice stays a no-op.
	if err := heldB.Release(); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(regB, "memcontention_lease_releases_total"); got != 1 {
		t.Fatalf("double release counted: %v", got)
	}
}

// TestManagerMetricsRenewFailure covers the transient-failure counter:
// an unreadable lease file fails the renewal without fencing.
func TestManagerMetricsRenewFailure(t *testing.T) {
	dir := t.TempDir()
	clk := newManualClock()
	m, reg := metered(t, dir, clk, "aaaa")
	h, err := m.Acquire(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Replace the lease file with an unreadable directory: ReadFile
	// fails with a non-NotExist error.
	if err := os.Remove(m.Path(0)); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(m.Path(0), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := h.Renew(); err == nil {
		t.Fatal("renew over a directory succeeded")
	}
	if got := counterValue(reg, "memcontention_lease_renew_failures_total"); got != 1 {
		t.Fatalf("renew failures = %v, want 1", got)
	}
	if got := counterValue(reg, "memcontention_lease_fences_total"); got != 0 {
		t.Fatalf("transient failure counted as fence: %v", got)
	}
	if h.Fenced() {
		t.Fatal("transient failure fenced the lease")
	}
}

// TestManagerWithoutRegistry confirms the obs zero-cost-when-off
// contract: a nil registry records nothing and panics nowhere.
func TestManagerWithoutRegistry(t *testing.T) {
	dir := t.TempDir()
	clk := newManualClock()
	m := mustManager(t, testConfig(t, dir, clk, "aaaa"))
	h, err := m.Acquire(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Renew(); err != nil {
		t.Fatal(err)
	}
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestScanClassifiesWithoutTouching exercises the read-only scanner:
// classification matches Manager.Inspect, the output is shard-sorted,
// and scanning never creates or mutates anything.
func TestScanClassifiesWithoutTouching(t *testing.T) {
	dir := t.TempDir()
	clk := newManualClock()

	// A missing directory scans as empty.
	if infos, err := Scan(dir+"/nope", time.Second, -1, clk.Now); err != nil || infos != nil {
		t.Fatalf("missing dir: %v, err %v; want empty, nil", infos, err)
	}

	m := mustManager(t, testConfig(t, dir, clk, "aaaa"))

	// Shard 2: live. Shard 0: will go stale. Shard 5: corrupt garbage.
	h0, err := m.Acquire(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = h0
	clk.Advance(2 * time.Second) // shard 0's heartbeat ages past TTL
	h2, err := m.Acquire(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(m.Path(5), []byte("not a lease\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	infos, err := Scan(dir, time.Second, -1, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("scanned %d leases, want 3: %+v", len(infos), infos)
	}
	if infos[0].Shard != 0 || infos[0].State != StateStale || infos[0].Age != 2*time.Second {
		t.Fatalf("shard 0: %+v, want stale at age 2s", infos[0])
	}
	if infos[1].Shard != 2 || infos[1].State != StateLive || infos[1].Age != 0 {
		t.Fatalf("shard 2: %+v, want live at age 0", infos[1])
	}
	if infos[1].Lease.Epoch != h2.Epoch() || infos[1].Lease.Owner.Token != "aaaa" {
		t.Fatalf("shard 2 lease record: %+v", infos[1].Lease)
	}
	if infos[2].Shard != 5 || infos[2].State != StateCorrupt || infos[2].Age != 0 {
		t.Fatalf("shard 5: %+v, want corrupt at age 0", infos[2])
	}

	// Read-only: a second scan sees the identical directory (no claim
	// markers, no rewritten heartbeats, garbage untouched).
	again, err := Scan(dir, time.Second, -1, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 3 || again[0].Age != infos[0].Age {
		t.Fatalf("second scan diverged: %+v", again)
	}
}
