package lease

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"memcontention/internal/obs"
)

// Info is one shard's lease as seen by a read-only observer: the shard,
// the liveness classification, the decoded lease (zero for
// StateCorrupt) and the heartbeat age at scan time.
type Info struct {
	Shard int
	State State
	Lease Lease
	// Age is scan-time minus the last heartbeat (0 for StateCorrupt —
	// an undecodable lease has no trustworthy heartbeat).
	Age time.Duration
}

// Scan inspects every lease file under dir without acquiring, creating
// or touching anything — the read-only counterpart to Manager for
// monitors like memtop, which must never perturb the fleet they
// observe. Staleness is judged exactly like Manager.Inspect: a
// heartbeat older than ttl+grace is stale. Zero ttl uses the default
// 15s; zero grace uses ttl/2 (negative: none); a nil clock uses
// obs.WallClock. A missing directory scans as empty — a campaign that
// has not started is not an error to look at.
func Scan(dir string, ttl, grace time.Duration, clock obs.Clock) ([]Info, error) {
	cfg := Config{Dir: dir, TTL: ttl, Grace: grace, Clock: clock}.withDefaults()
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("lease: scan %s: %w", dir, err)
	}
	now := cfg.Clock()
	var infos []Info
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "shard-") || !strings.HasSuffix(name, ".lease") {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, "shard-"), ".lease")
		shard, aerr := strconv.Atoi(num)
		if aerr != nil || shard < 0 {
			continue
		}
		data, rerr := os.ReadFile(filepath.Join(dir, name))
		if os.IsNotExist(rerr) {
			continue // released between ReadDir and ReadFile
		}
		if rerr != nil {
			return nil, fmt.Errorf("lease: scan %s: %w", name, rerr)
		}
		info := Info{Shard: shard}
		if l, derr := Decode(data); derr != nil {
			info.State = StateCorrupt
		} else {
			info.Lease = l
			info.Age = now.Sub(l.Heartbeat())
			if info.Age > cfg.TTL+cfg.Grace {
				info.State = StateStale
			} else {
				info.State = StateLive
			}
		}
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Shard < infos[j].Shard })
	return infos, nil
}
