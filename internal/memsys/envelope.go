// Package memsys simulates the memory system of a NUMA machine at the
// fluid-flow level: steady data streams (core→memory and NIC→memory)
// traverse resources (memory controllers, the inter-socket link, PCIe) and
// a solver assigns each stream the bandwidth the hardware would grant it.
//
// The solver encodes the paper's §II-A hypotheses as an arbitration policy:
//
//   - memory buses have a finite capacity (an *envelope* that degrades as
//     more cores hammer the same controller — this is what produces the
//     δl/δr slopes of the model);
//   - CPU requests have priority over PCIe requests, so communications are
//     throttled first under contention;
//   - the NIC always keeps a guaranteed minimum bandwidth (the model's
//     α·Bcomm_seq floor) to prevent starvation.
//
// On top of the idealised policy, per-platform *quirks* reproduce the
// deviations the paper observed (henri's early communication throttling,
// pyxis' locality-sensitive unstable network, ARM's soft saturation).
// The quirks are what make the analytical model's predictions err by a few
// percent instead of matching the simulator exactly.
package memsys

import (
	"fmt"
	"math"
)

// Envelope is a degrading capacity curve: a plateau followed by up to two
// linear decline segments, with optional smooth rounding at the knees.
//
//	cap(n) = Plateau − Slope1·hinge(n−Knee1) + (Slope1−Slope2)·hinge(n−Knee2)
//
// where hinge is max(0,·), softened over ±Soft cores when Soft > 0. The
// argument n is the number of core streams concurrently hitting the
// resource. A pure plateau has Slope1 = Slope2 = 0.
type Envelope struct {
	Plateau float64 // GB/s at low stream counts
	Knee1   float64 // streams where the first decline starts
	Slope1  float64 // GB/s lost per extra stream in (Knee1, Knee2]
	Knee2   float64 // streams where the slope changes
	Slope2  float64 // GB/s lost per extra stream beyond Knee2
	Soft    float64 // knee rounding width in streams (0 = sharp)
}

// hinge computes max(0, x), smoothly rounded with width s (softplus).
func hinge(x, s float64) float64 {
	if s <= 0 {
		return math.Max(0, x)
	}
	// Softplus with numerical guards: s·ln(1+e^(x/s)).
	t := x / s
	switch {
	case t > 30:
		return x
	case t < -30:
		return 0
	default:
		return s * math.Log1p(math.Exp(t))
	}
}

// At evaluates the envelope for n concurrent core streams. The result is
// clamped to be non-negative.
func (e Envelope) At(n float64) float64 {
	v := e.Plateau - e.Slope1*hinge(n-e.Knee1, e.Soft)
	if e.Knee2 > e.Knee1 {
		v += (e.Slope1 - e.Slope2) * hinge(n-e.Knee2, e.Soft)
	}
	if v < 0 {
		return 0
	}
	return v
}

// Flat returns a constant-capacity envelope.
func Flat(cap float64) Envelope { return Envelope{Plateau: cap} }

// Validate checks envelope invariants.
func (e Envelope) Validate() error {
	for _, f := range [...]float64{e.Plateau, e.Slope1, e.Slope2, e.Knee1, e.Knee2, e.Soft} {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("memsys: envelope has a non-finite parameter")
		}
	}
	switch {
	case e.Plateau <= 0:
		return fmt.Errorf("memsys: envelope plateau %.2f must be positive", e.Plateau)
	case e.Slope1 < 0 || e.Slope2 < 0:
		return fmt.Errorf("memsys: envelope slopes must be non-negative")
	case e.Knee1 < 0 || (e.Knee2 != 0 && e.Knee2 < e.Knee1):
		return fmt.Errorf("memsys: envelope knees out of order (knee1=%.1f knee2=%.1f)", e.Knee1, e.Knee2)
	case e.Soft < 0:
		return fmt.Errorf("memsys: envelope softness must be non-negative")
	}
	return nil
}

// softmin blends min(a, b) with smoothing k (GB/s). k == 0 is a hard min.
// It reproduces hardware that stops scaling *near* the capacity rather than
// exactly at it (observed on pyxis, §IV-B(e)).
func softmin(a, b, k float64) float64 {
	if k <= 0 {
		return math.Min(a, b)
	}
	// −k·ln(e^(−a/k) + e^(−b/k)) = lo − k·ln(1 + e^(−(hi−lo)/k)),
	// guarded for large exponents.
	lo, hi := math.Min(a, b), math.Max(a, b)
	d := (hi - lo) / k
	if d > 30 {
		return lo
	}
	return lo - k*math.Log1p(math.Exp(-d))
}
