package memsys

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestEnvelopeFlat(t *testing.T) {
	e := Flat(50)
	for _, n := range []float64{0, 1, 10, 100} {
		if e.At(n) != 50 {
			t.Errorf("Flat(50).At(%v) = %v", n, e.At(n))
		}
	}
}

func TestEnvelopePiecewiseSharp(t *testing.T) {
	e := Envelope{Plateau: 70, Knee1: 10, Slope1: 2, Knee2: 14, Slope2: 0.5}
	cases := []struct{ n, want float64 }{
		{5, 70},
		{10, 70},
		{12, 66},           // 70 − 2·2
		{14, 62},           // end of first decline
		{18, 62 - 0.5*4},   // second slope
		{100, 62 - 0.5*86}, // far out, still linear
	}
	for _, c := range cases {
		if got := e.At(c.n); !almost(got, c.want, 1e-9) {
			t.Errorf("At(%v) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestEnvelopeSingleKnee(t *testing.T) {
	e := Envelope{Plateau: 30, Knee1: 8, Slope1: 0.5}
	if got := e.At(12); !almost(got, 28, 1e-9) {
		t.Errorf("single-knee At(12) = %v, want 28", got)
	}
}

func TestEnvelopeNonNegative(t *testing.T) {
	e := Envelope{Plateau: 10, Knee1: 1, Slope1: 5}
	if got := e.At(100); got != 0 {
		t.Errorf("deeply declined envelope must clamp to 0, got %v", got)
	}
}

func TestEnvelopeSoftApproximation(t *testing.T) {
	sharp := Envelope{Plateau: 70, Knee1: 10, Slope1: 2, Knee2: 14, Slope2: 0.5}
	soft := sharp
	soft.Soft = 0.6
	// Far from the knees the soft envelope must agree with the sharp one.
	for _, n := range []float64{2, 5, 20, 30} {
		if d := math.Abs(sharp.At(n) - soft.At(n)); d > 0.2 {
			t.Errorf("soft envelope deviates %.3f at n=%v (far from knees)", d, n)
		}
	}
	// Near the knee the soft envelope is below the sharp plateau but
	// within Slope1·Soft·ln2-ish.
	d := sharp.At(10) - soft.At(10)
	if d <= 0 || d > 2*0.6*2 {
		t.Errorf("soft rounding at knee = %v, want small positive", d)
	}
}

func TestEnvelopeMonotoneNonIncreasing(t *testing.T) {
	f := func(plateau8, k1, dk uint8, s1, s2 uint8) bool {
		e := Envelope{
			Plateau: float64(plateau8%100) + 1,
			Knee1:   float64(k1 % 32),
			Slope1:  float64(s1%40) / 10,
			Soft:    0.5,
		}
		e.Knee2 = e.Knee1 + float64(dk%16)
		// Keep Slope2 ≤ Slope1 so the curve is convex-ish like real
		// controllers; monotonicity must hold regardless.
		e.Slope2 = math.Min(float64(s2%40)/10, e.Slope1)
		prev := e.At(0)
		for n := 1.0; n <= 64; n++ {
			cur := e.At(n)
			if cur > prev+1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error("envelope must be non-increasing:", err)
	}
}

func TestEnvelopeValidate(t *testing.T) {
	good := Envelope{Plateau: 50, Knee1: 5, Slope1: 1, Knee2: 8, Slope2: 0.5, Soft: 0.5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid envelope rejected: %v", err)
	}
	bad := []Envelope{
		{Plateau: 0},
		{Plateau: 10, Slope1: -1},
		{Plateau: 10, Knee1: 5, Knee2: 3},
		{Plateau: 10, Soft: -0.1},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("bad envelope %d accepted", i)
		}
	}
}

func TestHinge(t *testing.T) {
	if hinge(-3, 0) != 0 || hinge(3, 0) != 3 {
		t.Error("sharp hinge must be max(0,x)")
	}
	// Soft hinge: positive everywhere, converges to x for large x.
	if hinge(-100, 1) != 0 {
		t.Error("soft hinge far negative must be 0")
	}
	if got := hinge(100, 1); !almost(got, 100, 1e-6) {
		t.Errorf("soft hinge far positive = %v, want 100", got)
	}
	if got := hinge(0, 1); !almost(got, math.Ln2, 1e-9) {
		t.Errorf("soft hinge at 0 = %v, want ln2", got)
	}
}

func TestSoftmin(t *testing.T) {
	if softmin(3, 7, 0) != 3 {
		t.Error("softmin with k=0 must be hard min")
	}
	// Far apart: approaches the minimum.
	if got := softmin(3, 100, 1); !almost(got, 3, 1e-6) {
		t.Errorf("softmin(3,100,1) = %v, want ≈3", got)
	}
	// Equal inputs: dips below by k·ln2.
	if got := softmin(10, 10, 2); !almost(got, 10-2*math.Ln2, 1e-9) {
		t.Errorf("softmin(10,10,2) = %v, want %v", got, 10-2*math.Ln2)
	}
	// Symmetry and bound: softmin ≤ min.
	f := func(a8, b8, k8 uint8) bool {
		a, b, k := float64(a8)+1, float64(b8)+1, float64(k8%50)/10
		s1, s2 := softmin(a, b, k), softmin(b, a, k)
		return almost(s1, s2, 1e-9) && s1 <= math.Min(a, b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
