package memsys

import (
	"errors"
	"fmt"
	"math"

	"memcontention/internal/topology"
)

// NodeCaps groups the capacity envelopes of one memory controller. The
// envelope that applies depends on who accesses the node:
//
//   - Core* envelopes bound the aggregate bandwidth core streams can
//     extract (the compute-alone green curve of Figure 2);
//   - Mix* envelopes bound the total (cores + NIC DMA) the controller can
//     serve, the T(n) capacity of the model;
//   - *Local applies when the accessing cores sit on the node's socket,
//     *Remote when they reach it across the inter-socket link.
type NodeCaps struct {
	CoreLocal  Envelope
	CoreRemote Envelope
	MixLocal   Envelope
	MixRemote  Envelope
}

// Validate checks all four envelopes.
func (c NodeCaps) Validate() error {
	return errors.Join(
		c.CoreLocal.Validate(), c.CoreRemote.Validate(),
		c.MixLocal.Validate(), c.MixRemote.Validate(),
	)
}

// Quirks are per-platform deviations from the idealised arbitration policy.
// They reproduce behaviours the paper observed that its own model cannot
// capture, so that our calibrated model exhibits realistic errors.
type Quirks struct {
	// EarlyCommStart makes the comm decay (CommDecayPerCore) begin at
	// this core count instead of at the capacity-saturation onset, for
	// local-class computations. Observed on henri local-local
	// (§IV-B(a): real decrease at 10 cores, capacity threshold at ~13).
	// 0 disables the quirk (decay starts at the natural onset).
	EarlyCommStart int

	// EarlyCommRate is the gentle pre-onset decay (GB/s per core) used
	// with EarlyCommStart.
	EarlyCommRate float64

	// SoftSaturationGB rounds the compute allocation min(demand, cap)
	// with a smooth minimum of this width, so compute bandwidth stops
	// scaling *near* the threshold (pyxis, §IV-B(e)). 0 disables.
	SoftSaturationGB float64

	// CrossSocketCommFactor scales the NIC's achievable bandwidth when
	// computations run on a *different* socket than the communication
	// data. The paper's model only knows data locality, so a platform
	// where the network cares about the computation side (pyxis) makes
	// non-sample placements mispredict. 0 means 1.0 (no effect).
	CrossSocketCommFactor float64

	// Measurement noise levels (relative std-dev), applied by the
	// benchmark layer, not the solver: generic, and comm-specific
	// (pyxis' network is unstable even alone, §IV-C1).
	MeasureNoiseRel float64
	CommNoiseRel    float64
	ComputeNoiseRel float64
}

// Profile is the full hardware behaviour description of a platform: what
// the paper calls "values characterizing hardware features" that vendors
// do not document and that the benchmark has to discover.
type Profile struct {
	PlatformName string

	// PerCoreLocal/PerCoreRemote is the bandwidth demand of one core's
	// non-temporal store stream (GB/s) against a local / remote node —
	// the hardware truth behind the model's Bcomp_seq.
	PerCoreLocal  float64
	PerCoreRemote float64

	// CommNominal[node] is the NIC's nominal receive bandwidth when the
	// message data lands on that NUMA node (GB/s) — the hardware truth
	// behind Bcomm_seq, locality-dependent (diablo: 12.1 vs 22.4).
	CommNominal []float64

	// CommFloorFrac is the guaranteed fraction of the nominal NIC
	// bandwidth preserved under contention — the hardware truth behind α.
	CommFloorFrac float64

	// CommDecayPerCore is how much NIC bandwidth (GB/s) each additional
	// computing core shaves once the memory system is past its
	// saturation onset: the hardware degrades communications gradually
	// (Figure 2's shrinking blue band), not as a step. 0 disables decay
	// (the NIC then only loses what the capacity envelope forces).
	CommDecayPerCore float64

	// Caps applies to every node (the testbed machines are symmetric).
	Caps NodeCaps

	// LinkCap is the inter-socket interconnect capacity (GB/s).
	LinkCap float64

	// PCIeCap bounds the NIC's DMA path (GB/s).
	PCIeCap float64

	Quirks Quirks
}

// Validate checks the profile against a platform.
func (p *Profile) Validate(plat *topology.Platform) error {
	var errs []error
	for _, f := range [...]float64{p.PerCoreLocal, p.PerCoreRemote, p.CommFloorFrac,
		p.LinkCap, p.PCIeCap, p.Quirks.EarlyCommRate, p.Quirks.SoftSaturationGB,
		p.Quirks.CrossSocketCommFactor} {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			errs = append(errs, fmt.Errorf("profile has a non-finite parameter"))
			break
		}
	}
	if p.PerCoreLocal <= 0 || p.PerCoreRemote <= 0 {
		errs = append(errs, fmt.Errorf("per-core demands must be positive (local=%.2f remote=%.2f)", p.PerCoreLocal, p.PerCoreRemote))
	}
	if len(p.CommNominal) != plat.NNodes() {
		errs = append(errs, fmt.Errorf("CommNominal has %d entries, platform %s has %d nodes", len(p.CommNominal), plat.Name, plat.NNodes()))
	}
	for i, b := range p.CommNominal {
		if b <= 0 || math.IsNaN(b) || math.IsInf(b, 0) {
			errs = append(errs, fmt.Errorf("CommNominal[%d] must be positive, got %.2f", i, b))
		}
	}
	if p.CommFloorFrac <= 0 || p.CommFloorFrac > 1 {
		errs = append(errs, fmt.Errorf("CommFloorFrac must be in (0,1], got %.3f", p.CommFloorFrac))
	}
	if p.LinkCap <= 0 || p.PCIeCap <= 0 {
		errs = append(errs, fmt.Errorf("link and PCIe capacities must be positive"))
	}
	if err := p.Caps.Validate(); err != nil {
		errs = append(errs, err)
	}
	if f := p.Quirks.CrossSocketCommFactor; f < 0 || f > 1.5 {
		errs = append(errs, fmt.Errorf("CrossSocketCommFactor out of range: %.2f", f))
	}
	return errors.Join(errs...)
}

// NominalComm reports the NIC's nominal bandwidth for data on the given
// node, without any contention or quirk.
func (p *Profile) NominalComm(node topology.NodeID) float64 {
	if int(node) < 0 || int(node) >= len(p.CommNominal) {
		return 0
	}
	return p.CommNominal[node]
}

// profiles holds the hand-tuned hardware behaviour of the six testbed
// platforms. The absolute values are seeded from public hardware specs and
// the numbers the paper reports (per-core NT-store streams around 3–5 GB/s,
// EDR InfiniBand around 11 GB/s, diablo's 12.1/22.4 GB/s locality split,
// occigen's communication never being throttled, …). What the evaluation
// relies on is the *shape* these produce, not the absolute GB/s.
var profiles = map[string]*Profile{
	"henri": {
		PlatformName:     "henri",
		PerCoreLocal:     5.0,
		PerCoreRemote:    3.4,
		CommNominal:      []float64{10.9, 11.3},
		CommFloorFrac:    0.24,
		CommDecayPerCore: 2.4,
		Caps: NodeCaps{
			CoreLocal:  Envelope{Plateau: 66, Knee1: 15, Slope1: 0.55, Soft: 0.6},
			CoreRemote: Envelope{Plateau: 36, Knee1: 12, Slope1: 0.5, Soft: 0.6},
			MixLocal:   Envelope{Plateau: 71, Knee1: 12, Slope1: 2.2, Knee2: 14, Slope2: 0.6, Soft: 0.6},
			MixRemote:  Envelope{Plateau: 41, Knee1: 9, Slope1: 1.8, Knee2: 12, Slope2: 0.5, Soft: 0.6},
		},
		LinkCap: 47,
		PCIeCap: 15.8,
		Quirks: Quirks{
			EarlyCommStart:  10,
			EarlyCommRate:   0.55,
			MeasureNoiseRel: 0.004,
		},
	},
	"henri-subnuma": {
		PlatformName:     "henri-subnuma",
		PerCoreLocal:     5.0,
		PerCoreRemote:    3.4,
		CommNominal:      []float64{10.9, 10.9, 11.3, 11.1},
		CommFloorFrac:    0.24,
		CommDecayPerCore: 2.6,
		Caps: NodeCaps{
			CoreLocal:  Envelope{Plateau: 37, Knee1: 8, Slope1: 0.5, Soft: 0.6},
			CoreRemote: Envelope{Plateau: 27, Knee1: 8, Slope1: 0.4, Soft: 0.6},
			MixLocal:   Envelope{Plateau: 41, Knee1: 6, Slope1: 2.5, Knee2: 8, Slope2: 0.7, Soft: 0.6},
			MixRemote:  Envelope{Plateau: 31.5, Knee1: 6, Slope1: 2.0, Knee2: 9, Slope2: 0.5, Soft: 0.6},
		},
		LinkCap: 47,
		PCIeCap: 15.8,
		Quirks: Quirks{
			EarlyCommStart:  6,
			EarlyCommRate:   0.8,
			MeasureNoiseRel: 0.005,
		},
	},
	"dahu": {
		PlatformName:     "dahu",
		PerCoreLocal:     4.8,
		PerCoreRemote:    3.2,
		CommNominal:      []float64{10.3, 10.0},
		CommFloorFrac:    0.27,
		CommDecayPerCore: 2.5,
		Caps: NodeCaps{
			CoreLocal:  Envelope{Plateau: 58, Knee1: 14, Slope1: 0.4, Soft: 0.7},
			CoreRemote: Envelope{Plateau: 33, Knee1: 10, Slope1: 0.45, Soft: 0.7},
			MixLocal:   Envelope{Plateau: 62, Knee1: 11, Slope1: 2.3, Knee2: 13, Slope2: 1.0, Soft: 0.7},
			MixRemote:  Envelope{Plateau: 38, Knee1: 9, Slope1: 2.1, Knee2: 11, Slope2: 0.5, Soft: 0.7},
		},
		LinkCap: 45,
		PCIeCap: 15.8,
		Quirks: Quirks{
			MeasureNoiseRel: 0.006,
		},
	},
	"diablo": {
		PlatformName:     "diablo",
		PerCoreLocal:     3.6,
		PerCoreRemote:    2.9,
		CommNominal:      []float64{12.1, 22.4},
		CommFloorFrac:    0.5,
		CommDecayPerCore: 2.0,
		Caps: NodeCaps{
			CoreLocal:  Envelope{Plateau: 102, Knee1: 29, Slope1: 0.3, Soft: 0.8},
			CoreRemote: Envelope{Plateau: 88, Knee1: 30, Slope1: 0.3, Soft: 0.8},
			MixLocal:   Envelope{Plateau: 128, Knee1: 31, Slope1: 1.2, Knee2: 32, Slope2: 0.4, Soft: 0.8},
			MixRemote:  Envelope{Plateau: 102, Knee1: 27, Slope1: 1.4, Knee2: 30, Slope2: 0.4, Soft: 0.8},
		},
		LinkCap: 95,
		PCIeCap: 31.5,
		Quirks: Quirks{
			MeasureNoiseRel: 0.004,
		},
	},
	"pyxis": {
		PlatformName:     "pyxis",
		PerCoreLocal:     3.3,
		PerCoreRemote:    2.6,
		CommNominal:      []float64{10.2, 12.6},
		CommFloorFrac:    0.3,
		CommDecayPerCore: 1.6,
		Caps: NodeCaps{
			CoreLocal:  Envelope{Plateau: 95, Knee1: 29, Slope1: 0.5, Soft: 1.2},
			CoreRemote: Envelope{Plateau: 62, Knee1: 24, Slope1: 0.4, Soft: 1.2},
			MixLocal:   Envelope{Plateau: 106, Knee1: 29, Slope1: 2.4, Knee2: 31, Slope2: 0.6, Soft: 1.2},
			MixRemote:  Envelope{Plateau: 72, Knee1: 23, Slope1: 2.0, Knee2: 26, Slope2: 0.5, Soft: 1.2},
		},
		LinkCap: 80,
		PCIeCap: 15.8,
		Quirks: Quirks{
			SoftSaturationGB:      2.5,
			CrossSocketCommFactor: 0.88,
			MeasureNoiseRel:       0.008,
			CommNoiseRel:          0.03,
			ComputeNoiseRel:       0.01,
		},
	},
	"occigen": {
		PlatformName:  "occigen",
		PerCoreLocal:  4.4,
		PerCoreRemote: 3.0,
		CommNominal:   []float64{6.6, 6.8},
		// The paper reports that on occigen communications are never
		// throttled; the hardware keeps the NIC at full rate and
		// squeezes the cores instead (α = 1 in model terms).
		CommFloorFrac: 1.0,
		Caps: NodeCaps{
			CoreLocal:  Envelope{Plateau: 50, Knee1: 12, Slope1: 0.35},
			CoreRemote: Envelope{Plateau: 29, Knee1: 10, Slope1: 0.3},
			MixLocal:   Envelope{Plateau: 58, Knee1: 12, Slope1: 1.8, Knee2: 13, Slope2: 0.4},
			MixRemote:  Envelope{Plateau: 33.5, Knee1: 9, Slope1: 1.6, Knee2: 11, Slope2: 0.35},
		},
		LinkCap: 38,
		PCIeCap: 7.9,
		Quirks: Quirks{
			MeasureNoiseRel: 0.001,
		},
	},
}

// ProfileFor returns the hand-tuned hardware profile of a built-in
// platform. The returned profile is a copy; callers may mutate it.
func ProfileFor(name string) (*Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return nil, fmt.Errorf("memsys: no hardware profile for platform %q", name)
	}
	cp := *p
	cp.CommNominal = append([]float64(nil), p.CommNominal...)
	return &cp, nil
}

// DefaultProfile derives a plausible generic profile for a custom platform
// from its structure alone: ~5 GB/s per core, controller capacity scaled to
// the per-socket core count, EDR-class network. Useful for exploring
// what-if topologies with the model; the six testbed platforms use the
// hand-tuned ProfileFor values instead.
func DefaultProfile(plat *topology.Platform) *Profile {
	coresPerNode := float64(plat.CoresPerSocket()) / float64(plat.NodesPerSocket())
	corePlateau := 0.7 * 5.0 * coresPerNode // cores alone extract ~70 % of their sum
	knee := 0.7 * coresPerNode
	prof := &Profile{
		PlatformName:     plat.Name,
		PerCoreLocal:     5.0,
		PerCoreRemote:    3.5,
		CommNominal:      make([]float64, plat.NNodes()),
		CommFloorFrac:    0.3,
		CommDecayPerCore: 1.6,
		Caps: NodeCaps{
			CoreLocal:  Envelope{Plateau: corePlateau, Knee1: knee + 1, Slope1: 0.5, Soft: 0.6},
			CoreRemote: Envelope{Plateau: 0.55 * corePlateau, Knee1: 0.8 * knee, Slope1: 0.4, Soft: 0.6},
			MixLocal:   Envelope{Plateau: 1.15 * corePlateau, Knee1: knee, Slope1: 2.5, Knee2: knee + 2, Slope2: 0.6, Soft: 0.6},
			MixRemote:  Envelope{Plateau: 0.63 * corePlateau, Knee1: 0.7 * knee, Slope1: 2.0, Knee2: 0.8*knee + 2, Slope2: 0.5, Soft: 0.6},
		},
		LinkCap: 0.75 * corePlateau,
		PCIeCap: 15.8,
		Quirks:  Quirks{MeasureNoiseRel: 0.005},
	}
	for i := range prof.CommNominal {
		prof.CommNominal[i] = 11.0
	}
	return prof
}

// Profiles lists the platform names with a built-in hardware profile.
func Profiles() []string {
	names := make([]string, 0, len(profiles))
	for n := range profiles {
		names = append(names, n)
	}
	return names
}
