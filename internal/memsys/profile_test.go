package memsys

import (
	"testing"

	"memcontention/internal/topology"
)

func TestAllBuiltinProfilesValidate(t *testing.T) {
	for _, plat := range topology.Testbed() {
		prof, err := ProfileFor(plat.Name)
		if err != nil {
			t.Fatalf("%s: %v", plat.Name, err)
		}
		if err := prof.Validate(plat); err != nil {
			t.Errorf("%s: %v", plat.Name, err)
		}
		if prof.PlatformName != plat.Name {
			t.Errorf("profile name %q for platform %q", prof.PlatformName, plat.Name)
		}
	}
}

func TestProfileForUnknown(t *testing.T) {
	if _, err := ProfileFor("nonesuch"); err == nil {
		t.Error("unknown profile must error")
	}
}

func TestProfileForReturnsCopy(t *testing.T) {
	a, err := ProfileFor("henri")
	if err != nil {
		t.Fatal(err)
	}
	a.CommNominal[0] = 999
	a.LinkCap = 1
	b, err := ProfileFor("henri")
	if err != nil {
		t.Fatal(err)
	}
	if b.CommNominal[0] == 999 || b.LinkCap == 1 {
		t.Error("ProfileFor must return an independent copy")
	}
}

func TestProfilesListsAll(t *testing.T) {
	names := Profiles()
	if len(names) != 6 {
		t.Errorf("Profiles() lists %d entries, want 6", len(names))
	}
	for _, n := range names {
		if _, err := ProfileFor(n); err != nil {
			t.Errorf("listed profile %q not loadable: %v", n, err)
		}
	}
}

func TestDefaultProfileValid(t *testing.T) {
	plat, err := topology.NewBuilder("custom").
		CPU(topology.Intel, "Custom 12c").
		Sockets(2).NodesPerSocket(1).CoresPerSocket(12).
		MemoryPerNodeGB(32).
		NICOn("nic", topology.InfiniBand, 1, 3).
		LinkName("UPI").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	prof := DefaultProfile(plat)
	if err := prof.Validate(plat); err != nil {
		t.Fatalf("default profile invalid: %v", err)
	}
	if _, err := New(plat, prof); err != nil {
		t.Fatalf("system from default profile: %v", err)
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	plat := topology.Henri()
	mutations := []struct {
		name string
		mut  func(*Profile)
	}{
		{"zero per-core", func(p *Profile) { p.PerCoreLocal = 0 }},
		{"wrong nominal length", func(p *Profile) { p.CommNominal = []float64{1} }},
		{"negative nominal", func(p *Profile) { p.CommNominal[0] = -1 }},
		{"floor out of range", func(p *Profile) { p.CommFloorFrac = 1.5 }},
		{"zero floor", func(p *Profile) { p.CommFloorFrac = 0 }},
		{"zero link", func(p *Profile) { p.LinkCap = 0 }},
		{"bad envelope", func(p *Profile) { p.Caps.MixLocal.Plateau = -1 }},
		{"bad quirk factor", func(p *Profile) { p.Quirks.CrossSocketCommFactor = 2.0 }},
	}
	for _, m := range mutations {
		prof, err := ProfileFor("henri")
		if err != nil {
			t.Fatal(err)
		}
		m.mut(prof)
		if err := prof.Validate(plat); err == nil {
			t.Errorf("%s: not rejected", m.name)
		}
	}
}

func TestNominalCommOutOfRange(t *testing.T) {
	prof, err := ProfileFor("henri")
	if err != nil {
		t.Fatal(err)
	}
	if prof.NominalComm(99) != 0 || prof.NominalComm(-1) != 0 {
		t.Error("out-of-range node must report 0 nominal bandwidth")
	}
}

// TestProfileShapeConsistency checks cross-field relationships the
// simulator's realism depends on.
func TestProfileShapeConsistency(t *testing.T) {
	for _, name := range Profiles() {
		prof, err := ProfileFor(name)
		if err != nil {
			t.Fatal(err)
		}
		caps := prof.Caps
		if caps.MixLocal.Plateau <= caps.CoreLocal.Plateau {
			t.Errorf("%s: mixed capacity must exceed core-only capacity (DMA adds extractable bandwidth)", name)
		}
		if caps.MixRemote.Plateau <= caps.CoreRemote.Plateau {
			t.Errorf("%s: remote mixed capacity must exceed remote core capacity", name)
		}
		if caps.CoreRemote.Plateau >= caps.CoreLocal.Plateau {
			t.Errorf("%s: remote accesses must extract less than local ones", name)
		}
		if prof.PerCoreRemote >= prof.PerCoreLocal {
			t.Errorf("%s: remote per-core stream must be slower than local", name)
		}
		for _, b := range prof.CommNominal {
			if b > prof.PCIeCap {
				t.Errorf("%s: NIC nominal %v exceeds PCIe capacity %v", name, b, prof.PCIeCap)
			}
		}
	}
}
