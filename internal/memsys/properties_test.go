package memsys

import (
	"testing"
	"testing/quick"

	"memcontention/internal/topology"
)

// Property-based tests of the arbitration policy, run across all built-in
// hardware profiles. These pin down the §II-A hypotheses as machine-
// checkable invariants.

// forEachSystem builds a system per profile.
func forEachSystem(t *testing.T, fn func(name string, sys *System)) {
	t.Helper()
	for _, plat := range topology.Testbed() {
		prof, err := ProfileFor(plat.Name)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := New(plat, prof)
		if err != nil {
			t.Fatal(err)
		}
		fn(plat.Name, sys)
	}
}

// TestPropCommMonotoneInCores: adding computing cores never *increases*
// the bandwidth granted to communications (CPU traffic only ever hurts
// the NIC).
func TestPropCommMonotoneInCores(t *testing.T) {
	forEachSystem(t, func(name string, sys *System) {
		plat := sys.Platform()
		for _, commNode := range []topology.NodeID{0, topology.NodeID(plat.NodesPerSocket())} {
			for _, compNode := range []topology.NodeID{0, topology.NodeID(plat.NodesPerSocket())} {
				prev := -1.0
				for n := 0; n <= plat.CoresPerSocket(); n++ {
					streams := computeStreams(sys, n, compNode)
					streams = append(streams, commStream(1000, commNode))
					alloc, err := sys.Solve(streams)
					if err != nil {
						t.Fatal(err)
					}
					if prev >= 0 && alloc.CommTotal > prev+1e-9 {
						t.Errorf("%s comp@%d/comm@%d: comm grew from %.3f to %.3f at n=%d",
							name, compNode, commNode, prev, alloc.CommTotal, n)
					}
					prev = alloc.CommTotal
				}
			}
		}
	})
}

// TestPropComputeMonotoneInCores: aggregate compute bandwidth never
// decreases sharply when a core is added (weak scaling may saturate and
// gently decline, but a single extra core cannot crater the total by more
// than the envelope's steepest slope plus the comm reserve shift).
func TestPropComputeMonotoneInCores(t *testing.T) {
	forEachSystem(t, func(name string, sys *System) {
		plat := sys.Platform()
		prev := 0.0
		for n := 1; n <= plat.CoresPerSocket(); n++ {
			streams := append(computeStreams(sys, n, 0), commStream(1000, 0))
			alloc, err := sys.Solve(streams)
			if err != nil {
				t.Fatal(err)
			}
			if alloc.ComputeTotal < prev-5.0 {
				t.Errorf("%s: compute total dropped %.2f → %.2f at n=%d", name, prev, alloc.ComputeTotal, n)
			}
			prev = alloc.ComputeTotal
		}
	})
}

// TestPropTotalBounded: the granted total never exceeds the sum of all
// demands, and never exceeds the mixed envelope (same-node case).
func TestPropTotalBounded(t *testing.T) {
	forEachSystem(t, func(name string, sys *System) {
		plat := sys.Platform()
		f := func(nRaw, nodeRaw uint8) bool {
			n := int(nRaw)%plat.CoresPerSocket() + 1
			node := topology.NodeID(int(nodeRaw) % plat.NNodes())
			streams := append(computeStreams(sys, n, node), commStream(1000, node))
			demand := 0.0
			for _, st := range streams {
				d := st.Demand
				if d == 0 {
					d = sys.CommDemand(st.Node)
				}
				demand += d
			}
			alloc, err := sys.Solve(streams)
			if err != nil {
				return false
			}
			return alloc.Total <= demand+1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	})
}

// TestPropScaleWithKernelDemand: doubling every compute stream's demand
// never decreases the aggregate compute grant (more pressure extracts at
// least as much, up to the envelope).
func TestPropScaleWithKernelDemand(t *testing.T) {
	forEachSystem(t, func(name string, sys *System) {
		plat := sys.Platform()
		for n := 1; n <= plat.CoresPerSocket(); n += 3 {
			base := computeStreams(sys, n, 0)
			scaled := make([]Stream, len(base))
			copy(scaled, base)
			for i := range scaled {
				scaled[i].Demand *= 2
			}
			a, err := sys.Solve(base)
			if err != nil {
				t.Fatal(err)
			}
			b, err := sys.Solve(scaled)
			if err != nil {
				t.Fatal(err)
			}
			if b.ComputeTotal < a.ComputeTotal-1e-9 {
				t.Errorf("%s n=%d: doubled demand extracted less (%.2f < %.2f)", name, n, b.ComputeTotal, a.ComputeTotal)
			}
		}
	})
}

// TestPropRemoteWorseThanLocal: for the same core count, remote compute
// extracts at most as much as local compute (NUMA penalty).
func TestPropRemoteWorseThanLocal(t *testing.T) {
	forEachSystem(t, func(name string, sys *System) {
		plat := sys.Platform()
		remoteNode := topology.NodeID(plat.NodesPerSocket())
		for n := 1; n <= plat.CoresPerSocket(); n++ {
			local, err := sys.Solve(computeStreams(sys, n, 0))
			if err != nil {
				t.Fatal(err)
			}
			remote, err := sys.Solve(computeStreams(sys, n, remoteNode))
			if err != nil {
				t.Fatal(err)
			}
			if remote.ComputeTotal > local.ComputeTotal+1e-9 {
				t.Errorf("%s n=%d: remote %.2f exceeds local %.2f", name, n, remote.ComputeTotal, local.ComputeTotal)
			}
		}
	})
}

// TestPropIdempotentSolve: solving the same stream set twice gives the
// same allocation (the solver holds no hidden state).
func TestPropIdempotentSolve(t *testing.T) {
	forEachSystem(t, func(name string, sys *System) {
		streams := append(computeStreams(sys, 7, 0), commStream(1000, 0))
		a, err := sys.Solve(streams)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			b, err := sys.Solve(streams)
			if err != nil {
				t.Fatal(err)
			}
			for id := range a.Rates {
				if a.Rates[id] != b.Rates[id] {
					t.Fatalf("%s: solver state leaked between calls", name)
				}
			}
		}
	})
}
