package memsys

import (
	"fmt"
	"math"
	"sort"

	"memcontention/internal/topology"
)

// StreamKind distinguishes the two stream families of Figure 1.
type StreamKind int

// Stream kinds.
const (
	// KindCompute is a core-issued stream (non-temporal stores of the
	// computation kernel).
	KindCompute StreamKind = iota
	// KindComm is a NIC DMA stream (message data arriving from the
	// network and stored to memory).
	KindComm
)

// String implements fmt.Stringer.
func (k StreamKind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindComm:
		return "comm"
	default:
		return fmt.Sprintf("StreamKind(%d)", int(k))
	}
}

// Stream is one steady data flow through the memory system.
type Stream struct {
	// ID must be unique within one Solve call; allocations are keyed
	// by it.
	ID int
	// Kind selects the arbitration class.
	Kind StreamKind
	// Core is the issuing core (compute streams only).
	Core topology.CoreID
	// Node is the NUMA node holding the stream's data.
	Node topology.NodeID
	// Demand is the unconstrained rate in GB/s. For comm streams a zero
	// demand means "the NIC's nominal rate for this node".
	Demand float64
}

// Allocation is the solver's result: the bandwidth granted to each stream.
type Allocation struct {
	// Rates maps stream ID to granted bandwidth (GB/s).
	Rates map[int]float64
	// ComputeTotal and CommTotal aggregate the granted bandwidth per
	// kind; Total is their sum.
	ComputeTotal float64
	CommTotal    float64
	Total        float64
}

// Rate returns the granted bandwidth of a stream (0 for unknown IDs).
func (a *Allocation) Rate(id int) float64 { return a.Rates[id] }

// System is a memory-system instance: a platform structure plus its
// hardware behaviour profile.
type System struct {
	plat *topology.Platform
	prof *Profile
}

// New builds a memory system, validating profile against platform.
func New(plat *topology.Platform, prof *Profile) (*System, error) {
	if err := plat.Validate(); err != nil {
		return nil, fmt.Errorf("memsys: invalid platform: %w", err)
	}
	if err := prof.Validate(plat); err != nil {
		return nil, fmt.Errorf("memsys: invalid profile for %s: %w", plat.Name, err)
	}
	return &System{plat: plat, prof: prof}, nil
}

// Platform returns the underlying platform.
func (s *System) Platform() *topology.Platform { return s.plat }

// Profile returns the underlying hardware profile.
func (s *System) Profile() *Profile { return s.prof }

// ComputeDemand reports the unconstrained rate of one core's kernel stream
// against the given node (the hardware Bcomp_seq, locality-dependent).
func (s *System) ComputeDemand(core topology.CoreID, node topology.NodeID) float64 {
	if s.plat.CrossesLink(s.plat.Cores[core].Socket, node) {
		return s.prof.PerCoreRemote
	}
	return s.prof.PerCoreLocal
}

// CommDemand reports the NIC's nominal receive rate for data on node (the
// hardware Bcomm_seq, locality-dependent).
func (s *System) CommDemand(node topology.NodeID) float64 {
	return s.prof.NominalComm(node)
}

// nodeGroup collects the streams hitting one memory controller.
type nodeGroup struct {
	node    topology.NodeID
	compute []int // indices into the Solve stream slice
	comm    []int
	nLocal  int // compute accessors on the node's socket
	nRemote int // compute accessors crossing the link
}

// Solve assigns a bandwidth to every stream according to the arbitration
// policy described in the package comment. It is deterministic: the result
// depends only on the stream set (IDs included), never on slice order.
func (s *System) Solve(streams []Stream) (*Allocation, error) {
	if err := s.checkStreams(streams); err != nil {
		return nil, err
	}
	// Work on an ID-sorted copy so the solve is order-independent.
	ordered := append([]Stream(nil), streams...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })

	rates := make(map[int]float64, len(ordered))
	groups := s.groupByNode(ordered)

	for _, g := range groups {
		s.solveNode(ordered, g, rates)
	}
	s.applyMeshPressure(ordered, rates)
	s.applyLinkCap(ordered, rates)
	s.applyPCIeCap(ordered, rates)

	alloc := &Allocation{Rates: rates}
	for _, st := range ordered {
		r := rates[st.ID]
		alloc.Total += r
		if st.Kind == KindCompute {
			alloc.ComputeTotal += r
		} else {
			alloc.CommTotal += r
		}
	}
	return alloc, nil
}

func (s *System) checkStreams(streams []Stream) error {
	seen := make(map[int]bool, len(streams))
	for _, st := range streams {
		if seen[st.ID] {
			return fmt.Errorf("memsys: duplicate stream id %d", st.ID)
		}
		seen[st.ID] = true
		if int(st.Node) < 0 || int(st.Node) >= s.plat.NNodes() {
			return fmt.Errorf("memsys: stream %d targets node %d out of range", st.ID, st.Node)
		}
		switch st.Kind {
		case KindCompute:
			if int(st.Core) < 0 || int(st.Core) >= s.plat.NCores() {
				return fmt.Errorf("memsys: compute stream %d issued by core %d out of range", st.ID, st.Core)
			}
			if st.Demand < 0 {
				return fmt.Errorf("memsys: stream %d has negative demand", st.ID)
			}
		case KindComm:
			if st.Demand < 0 {
				return fmt.Errorf("memsys: stream %d has negative demand", st.ID)
			}
		default:
			return fmt.Errorf("memsys: stream %d has unknown kind %d", st.ID, int(st.Kind))
		}
	}
	return nil
}

func (s *System) groupByNode(ordered []Stream) []*nodeGroup {
	byNode := make(map[topology.NodeID]*nodeGroup)
	for i, st := range ordered {
		g := byNode[st.Node]
		if g == nil {
			g = &nodeGroup{node: st.Node}
			byNode[st.Node] = g
		}
		if st.Kind == KindCompute {
			g.compute = append(g.compute, i)
			if s.plat.CrossesLink(s.plat.Cores[st.Core].Socket, st.Node) {
				g.nRemote++
			} else {
				g.nLocal++
			}
		} else {
			g.comm = append(g.comm, i)
		}
	}
	groups := make([]*nodeGroup, 0, len(byNode))
	for _, g := range byNode {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].node < groups[j].node })
	return groups
}

// commFactor reports the quirk factor applied to a comm stream's demand:
// on platforms whose network is sensitive to the computation side (pyxis),
// the NIC slows down when every concurrent computation works on the other
// socket.
func (s *System) commFactor(ordered []Stream, commNode topology.NodeID) float64 {
	f := s.prof.Quirks.CrossSocketCommFactor
	if f == 0 || f == 1 {
		return 1
	}
	commSocket, err := s.plat.SocketOfNode(commNode)
	if err != nil {
		return 1
	}
	sawCompute, allOtherSocket := false, true
	for _, st := range ordered {
		if st.Kind != KindCompute {
			continue
		}
		sawCompute = true
		sock, err := s.plat.SocketOfNode(st.Node)
		if err == nil && sock == commSocket {
			allOtherSocket = false
		}
	}
	if sawCompute && allOtherSocket {
		return f
	}
	return 1
}

// blendEnv evaluates the class-appropriate envelope for a group: the local
// curve when every compute accessor sits on the node's socket, the remote
// curve when every one crosses the link, and a count-weighted blend for
// the mixed case the paper leaves to future work.
type blendEnv struct {
	local, remote   Envelope
	nLocal, nRemote int
}

func pickEnv(local, remote Envelope, g *nodeGroup) blendEnv {
	return blendEnv{local: local, remote: remote, nLocal: g.nLocal, nRemote: g.nRemote}
}

func (b blendEnv) at(n float64) float64 {
	switch {
	case b.nRemote == 0:
		return b.local.At(n)
	case b.nLocal == 0:
		return b.remote.At(n)
	default:
		l, r := float64(b.nLocal), float64(b.nRemote)
		return (l*b.local.At(n) + r*b.remote.At(n)) / (l + r)
	}
}

// commReserve computes the bandwidth share the memory system reserves for
// NIC streams when n computing cores with per-core demand perCore compete
// against a comm demand commDemand under the mix envelope env:
//
//   - below the saturation onset the NIC keeps its full demand;
//   - past the onset each additional core shaves CommDecayPerCore — the
//     hardware degrades communications gradually (Figure 2's shrinking
//     blue band), which is exactly why the paper's equation (5)
//     interpolates α(n) instead of stepping to α;
//   - the EarlyCommStart quirk (henri) adds a gentler pre-onset decay of
//     EarlyCommRate per core for local-class computations;
//   - the reserve never drops below the guaranteed floor
//     CommFloorFrac·commDemand (§II-A: no starvation).
func (s *System) commReserve(env blendEnv, n int, perCore, commDemand float64, localClass bool) float64 {
	if commDemand <= 0 {
		return 0
	}
	floor := s.prof.CommFloorFrac * commDemand
	reserve := commDemand
	decay := s.prof.CommDecayPerCore
	if decay > 0 && n > 0 && perCore > 0 {
		// Saturation onset: first core count whose aggregate demand
		// plus the comm demand exceeds the capacity envelope.
		onset := n + 1
		for k := 1; k <= n; k++ {
			if float64(k)*perCore+commDemand > env.at(float64(k)) {
				onset = k
				break
			}
		}
		q := s.prof.Quirks
		// The early-throttling quirk is queuing pressure from cores
		// streaming at full tilt; lightly-demanding cores (e.g. cache-
		// resident kernels) do not trigger it.
		hardStreaming := perCore >= 0.8*s.prof.PerCoreLocal
		if q.EarlyCommStart > 0 && localClass && hardStreaming && q.EarlyCommStart < onset {
			pre := math.Min(float64(n), float64(onset-1)) - float64(q.EarlyCommStart) + 1
			if pre > 0 {
				reserve -= q.EarlyCommRate * pre
			}
		}
		if n >= onset {
			reserve -= decay * float64(n-onset+1)
		}
	}
	if reserve < floor {
		reserve = floor
	}
	if reserve > commDemand {
		reserve = commDemand
	}
	return reserve
}

func (s *System) solveNode(ordered []Stream, g *nodeGroup, rates map[int]float64) {
	q := s.prof.Quirks
	n := g.nLocal + g.nRemote

	// Aggregate compute demand against this controller.
	var compDemand float64
	for _, i := range g.compute {
		d := ordered[i].Demand
		if d == 0 {
			d = s.ComputeDemand(ordered[i].Core, g.node)
		}
		compDemand += d
	}
	capCore := pickEnv(s.prof.Caps.CoreLocal, s.prof.Caps.CoreRemote, g).at(float64(n))
	compAgg := softmin(compDemand, capCore, q.SoftSaturationGB)

	// Aggregate comm demand (nominal rate, locality- and quirk-adjusted).
	var commDemand float64
	for _, i := range g.comm {
		d := ordered[i].Demand
		if d == 0 {
			d = s.CommDemand(g.node)
		}
		commDemand += d * s.commFactor(ordered, g.node)
	}

	commAgg := 0.0
	if len(g.comm) > 0 {
		mixEnv := pickEnv(s.prof.Caps.MixLocal, s.prof.Caps.MixRemote, g)
		capMix := mixEnv.at(float64(n))
		perCore := 0.0
		if n > 0 {
			perCore = compDemand / float64(n)
		}
		// The NIC's share: its nominal demand, gradually decayed once
		// the system is past the saturation onset, never below the
		// guaranteed floor, and physically bounded by the controller.
		commAgg = math.Min(s.commReserve(mixEnv, n, perCore, commDemand, g.nRemote == 0), capMix)
		// The cores get what the controller has left.
		compAgg = math.Min(compAgg, math.Max(0, capMix-commAgg))
	}

	distribute(ordered, g.compute, compAgg, rates, func(st Stream) float64 {
		if st.Demand != 0 {
			return st.Demand
		}
		return s.ComputeDemand(st.Core, g.node)
	})
	distribute(ordered, g.comm, commAgg, rates, func(st Stream) float64 {
		d := st.Demand
		if d == 0 {
			d = s.CommDemand(g.node)
		}
		return d * s.commFactor(ordered, g.node)
	})
}

// distribute splits an aggregate grant among streams proportionally to
// their demands, never exceeding any stream's demand. (With equal demands
// this is an even split; with unequal demands the proportional split can
// leave slack only when the aggregate exceeds total demand, in which case
// every stream is granted its full demand.)
func distribute(ordered []Stream, idx []int, agg float64, rates map[int]float64, demand func(Stream) float64) {
	if len(idx) == 0 {
		return
	}
	total := 0.0
	for _, i := range idx {
		total += demand(ordered[i])
	}
	if total <= 0 {
		for _, i := range idx {
			rates[ordered[i].ID] = 0
		}
		return
	}
	scale := agg / total
	if scale > 1 {
		scale = 1
	}
	for _, i := range idx {
		rates[ordered[i].ID] = demand(ordered[i]) * scale
	}
}

// applyMeshPressure models contention between NIC DMA and core traffic
// that do NOT share a memory controller. On real machines the two stream
// families still meet in the socket mesh / caching agents, so
// communications are throttled by concurrent computations in (almost)
// every placement, not only same-node ones — this is why the paper's
// equation (6) applies the *local contended* model to cross placements and
// still matches measurements. Computations, in contrast, are unaffected
// (the paper's "lessons learned": only same-node placements hurt
// computations).
//
// The mesh grants cross-node comm streams what a local controller would
// have left over: MixLocal(n) minus the bandwidth actually granted to the
// n computing cores, never below the guaranteed NIC floor. Platforms with
// CommFloorFrac = 1 (occigen) are therefore exempt, matching the paper's
// observation that occigen never throttles communications.
func (s *System) applyMeshPressure(ordered []Stream, rates map[int]float64) {
	computeNodes := make(map[topology.NodeID]bool)
	// Mesh occupancy is driven by the requests the cores *issue*, not
	// by the bandwidth they are granted: a core streaming to a remote
	// node is latency-bound and holds as many mesh slots as a local
	// stream would, so its occupancy is counted at its local-equivalent
	// demand.
	occDemand := 0.0
	nCompute := 0
	allLocalClass := true
	for _, st := range ordered {
		if st.Kind != KindCompute {
			continue
		}
		computeNodes[st.Node] = true
		d := st.Demand
		if d == 0 {
			d = s.ComputeDemand(st.Core, st.Node)
		}
		if s.plat.CrossesLink(s.plat.Cores[st.Core].Socket, st.Node) {
			allLocalClass = false
			d *= s.prof.PerCoreLocal / s.prof.PerCoreRemote
		}
		occDemand += d
		nCompute++
	}
	if nCompute == 0 {
		return
	}
	var cross []int
	curSum, floorSum := 0.0, 0.0
	for i, st := range ordered {
		if st.Kind != KindComm || computeNodes[st.Node] {
			continue
		}
		cross = append(cross, i)
		curSum += rates[st.ID]
		d := st.Demand
		if d == 0 {
			d = s.CommDemand(st.Node)
		}
		floorSum += s.prof.CommFloorFrac * d * s.commFactor(ordered, st.Node)
	}
	if len(cross) == 0 || curSum <= 0 {
		return
	}
	n := float64(nCompute)
	occupancy := math.Min(occDemand, s.prof.Caps.CoreLocal.At(n))
	capacityLeft := s.prof.Caps.MixLocal.At(n) - occupancy
	env := blendEnv{local: s.prof.Caps.MixLocal, nLocal: 1}
	reserve := s.commReserve(env, nCompute, occDemand/n, curSum, allLocalClass)
	target := math.Min(curSum, math.Min(capacityLeft, reserve))
	target = math.Max(target, floorSum)
	if target >= curSum {
		return
	}
	if target < 0 {
		target = 0
	}
	scale := target / curSum
	for _, i := range cross {
		rates[ordered[i].ID] *= scale
	}
}

// applyLinkCap enforces the inter-socket link capacity: every stream whose
// path crosses sockets shares LinkCap; excess is removed proportionally.
func (s *System) applyLinkCap(ordered []Stream, rates map[int]float64) {
	var crossing []int
	totalCross := 0.0
	for i, st := range ordered {
		if s.crossesLink(st) {
			crossing = append(crossing, i)
			totalCross += rates[st.ID]
		}
	}
	if totalCross <= s.prof.LinkCap || totalCross == 0 {
		return
	}
	scale := s.prof.LinkCap / totalCross
	for _, i := range crossing {
		rates[ordered[i].ID] *= scale
	}
}

// crossesLink reports whether a stream's data path traverses the
// inter-socket interconnect.
func (s *System) crossesLink(st Stream) bool {
	switch st.Kind {
	case KindCompute:
		return s.plat.CrossesLink(s.plat.Cores[st.Core].Socket, st.Node)
	case KindComm:
		return s.plat.CrossesLink(s.plat.NIC.Socket, st.Node)
	default:
		return false
	}
}

// Links names the shared resources a stream's data path occupies, in
// traversal order from the issuer to the memory: "pcie" (NIC DMA
// streams, bounded by applyPCIeCap), "xlink" (the inter-socket link,
// bounded by applyLinkCap) and "node<N>" (the memory controller of the
// data's NUMA node). Profilers use it to attribute bandwidth shares per
// contended resource.
func (s *System) Links(st Stream) []string {
	links := make([]string, 0, 3)
	if st.Kind == KindComm {
		links = append(links, "pcie")
	}
	if s.crossesLink(st) {
		links = append(links, "xlink")
	}
	return append(links, fmt.Sprintf("node%d", st.Node))
}

// applyPCIeCap bounds the sum of NIC DMA streams by the PCIe capacity.
func (s *System) applyPCIeCap(ordered []Stream, rates map[int]float64) {
	var comm []int
	total := 0.0
	for i, st := range ordered {
		if st.Kind == KindComm {
			comm = append(comm, i)
			total += rates[st.ID]
		}
	}
	if total <= s.prof.PCIeCap || total == 0 {
		return
	}
	scale := s.prof.PCIeCap / total
	for _, i := range comm {
		rates[ordered[i].ID] *= scale
	}
}
