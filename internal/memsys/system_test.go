package memsys

import (
	"testing"
	"testing/quick"

	"memcontention/internal/topology"
)

// henriSys returns a memory system for the henri platform.
func henriSys(t *testing.T) *System {
	t.Helper()
	prof, err := ProfileFor("henri")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(topology.Henri(), prof)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// computeStreams builds n compute streams from socket 0 against node.
func computeStreams(sys *System, n int, node topology.NodeID) []Stream {
	cores := sys.Platform().CoresOfSocket(0)
	out := make([]Stream, n)
	for i := 0; i < n; i++ {
		out[i] = Stream{
			ID:     i,
			Kind:   KindCompute,
			Core:   cores[i],
			Node:   node,
			Demand: sys.ComputeDemand(cores[i], node),
		}
	}
	return out
}

func commStream(id int, node topology.NodeID) Stream {
	return Stream{ID: id, Kind: KindComm, Node: node}
}

func TestComputeDemandLocality(t *testing.T) {
	sys := henriSys(t)
	if d := sys.ComputeDemand(0, 0); d != sys.Profile().PerCoreLocal {
		t.Errorf("local demand = %v", d)
	}
	if d := sys.ComputeDemand(0, 1); d != sys.Profile().PerCoreRemote {
		t.Errorf("remote demand = %v", d)
	}
}

func TestUnsaturatedPerfectScaling(t *testing.T) {
	sys := henriSys(t)
	for n := 1; n <= 8; n++ {
		alloc, err := sys.Solve(computeStreams(sys, n, 0))
		if err != nil {
			t.Fatal(err)
		}
		want := float64(n) * sys.Profile().PerCoreLocal
		if !almost(alloc.ComputeTotal, want, 1e-9) {
			t.Errorf("n=%d: compute total %v, want %v (perfect scaling)", n, alloc.ComputeTotal, want)
		}
	}
}

func TestComputeAloneSaturates(t *testing.T) {
	sys := henriSys(t)
	n := sys.Platform().CoresPerSocket()
	alloc, err := sys.Solve(computeStreams(sys, n, 0))
	if err != nil {
		t.Fatal(err)
	}
	demand := float64(n) * sys.Profile().PerCoreLocal
	if alloc.ComputeTotal >= demand {
		t.Errorf("full-socket compute must saturate below demand: %v ≥ %v", alloc.ComputeTotal, demand)
	}
	if alloc.ComputeTotal > sys.Profile().Caps.CoreLocal.Plateau {
		t.Errorf("compute total %v exceeds the core envelope plateau", alloc.ComputeTotal)
	}
}

func TestCommAloneNominal(t *testing.T) {
	sys := henriSys(t)
	for node := topology.NodeID(0); node < 2; node++ {
		alloc, err := sys.Solve([]Stream{commStream(0, node)})
		if err != nil {
			t.Fatal(err)
		}
		if !almost(alloc.CommTotal, sys.Profile().NominalComm(node), 1e-9) {
			t.Errorf("comm alone on node %d = %v, want nominal", node, alloc.CommTotal)
		}
	}
}

func TestCommFloorGuaranteed(t *testing.T) {
	// §II-A: a minimal bandwidth is always available for communications.
	for _, name := range Profiles() {
		plat, err := topology.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := ProfileFor(name)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := New(plat, prof)
		if err != nil {
			t.Fatal(err)
		}
		n := plat.CoresPerSocket()
		for node := topology.NodeID(0); int(node) < plat.NNodes(); node++ {
			streams := append(computeStreams(sys, n, node), commStream(1000, node))
			alloc, err := sys.Solve(streams)
			if err != nil {
				t.Fatal(err)
			}
			floor := prof.CommFloorFrac * prof.NominalComm(node)
			if alloc.CommTotal < floor-1e-9 {
				t.Errorf("%s node %d: comm %v below floor %v", name, node, alloc.CommTotal, floor)
			}
		}
	}
}

func TestContentionThrottlesComm(t *testing.T) {
	sys := henriSys(t)
	n := sys.Platform().CoresPerSocket()
	streams := append(computeStreams(sys, n, 0), commStream(1000, 0))
	alloc, err := sys.Solve(streams)
	if err != nil {
		t.Fatal(err)
	}
	nominal := sys.Profile().NominalComm(0)
	if alloc.CommTotal >= 0.5*nominal {
		t.Errorf("full-socket contention must throttle comm well below nominal: %v vs %v", alloc.CommTotal, nominal)
	}
}

func TestNoCrossNodeComputeImpact(t *testing.T) {
	// The paper's lessons learned: computations are almost not impacted
	// when the streams use different NUMA nodes.
	sys := henriSys(t)
	for n := 1; n <= sys.Platform().CoresPerSocket(); n++ {
		alone, err := sys.Solve(computeStreams(sys, n, 0))
		if err != nil {
			t.Fatal(err)
		}
		par, err := sys.Solve(append(computeStreams(sys, n, 0), commStream(1000, 1)))
		if err != nil {
			t.Fatal(err)
		}
		if !almost(par.ComputeTotal, alone.ComputeTotal, 1e-9) {
			t.Errorf("n=%d: cross-node comm changed compute bandwidth: %v vs %v", n, par.ComputeTotal, alone.ComputeTotal)
		}
	}
}

func TestMeshPressureThrottlesCrossComm(t *testing.T) {
	// ... while communications ARE impacted in cross placements, which
	// is why equation (6) applies the contended local model there.
	sys := henriSys(t)
	n := sys.Platform().CoresPerSocket()
	par, err := sys.Solve(append(computeStreams(sys, n, 0), commStream(1000, 1)))
	if err != nil {
		t.Fatal(err)
	}
	nominal := sys.Profile().NominalComm(1)
	if par.CommTotal >= 0.6*nominal {
		t.Errorf("cross-placement comm under full compute load must be throttled: %v vs nominal %v", par.CommTotal, nominal)
	}
}

func TestAllocationNeverExceedsDemand(t *testing.T) {
	sys := henriSys(t)
	f := func(nRaw, nodeRaw uint8, withComm bool) bool {
		n := int(nRaw%18) + 1
		node := topology.NodeID(nodeRaw % 2)
		streams := computeStreams(sys, n, node)
		if withComm {
			streams = append(streams, commStream(1000, node))
		}
		alloc, err := sys.Solve(streams)
		if err != nil {
			return false
		}
		for _, st := range streams {
			d := st.Demand
			if d == 0 {
				d = sys.CommDemand(st.Node)
			}
			if alloc.Rate(st.ID) > d+1e-9 {
				return false
			}
			if alloc.Rate(st.ID) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSolveOrderIndependent(t *testing.T) {
	sys := henriSys(t)
	streams := append(computeStreams(sys, 10, 0), commStream(1000, 0))
	fwd, err := sys.Solve(streams)
	if err != nil {
		t.Fatal(err)
	}
	rev := make([]Stream, len(streams))
	for i, st := range streams {
		rev[len(streams)-1-i] = st
	}
	back, err := sys.Solve(rev)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range streams {
		if fwd.Rate(st.ID) != back.Rate(st.ID) {
			t.Fatalf("stream %d rate depends on slice order: %v vs %v", st.ID, fwd.Rate(st.ID), back.Rate(st.ID))
		}
	}
}

func TestSolveDeterministic(t *testing.T) {
	sys := henriSys(t)
	streams := append(computeStreams(sys, 14, 1), commStream(1000, 0))
	a, err := sys.Solve(streams)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.Solve(streams)
	if err != nil {
		t.Fatal(err)
	}
	for id, r := range a.Rates {
		if b.Rates[id] != r {
			t.Fatalf("non-deterministic solve for stream %d", id)
		}
	}
}

func TestNodeCapRespected(t *testing.T) {
	sys := henriSys(t)
	for n := 1; n <= 18; n++ {
		streams := append(computeStreams(sys, n, 0), commStream(1000, 0))
		alloc, err := sys.Solve(streams)
		if err != nil {
			t.Fatal(err)
		}
		capMix := sys.Profile().Caps.MixLocal.At(float64(n))
		if alloc.Total > capMix+1e-9 {
			t.Errorf("n=%d: total %v exceeds mixed capacity %v", n, alloc.Total, capMix)
		}
	}
}

func TestLinkCapBinds(t *testing.T) {
	plat := topology.Henri()
	prof, err := ProfileFor("henri")
	if err != nil {
		t.Fatal(err)
	}
	prof.LinkCap = 10 // artificially tiny interconnect
	sys, err := New(plat, prof)
	if err != nil {
		t.Fatal(err)
	}
	// 8 cores of socket 0 stream to remote node 1: demand 8·3.4 = 27.2,
	// all crossing the link.
	alloc, err := sys.Solve(computeStreams(sys, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Total > 10+1e-9 {
		t.Errorf("link-crossing total %v exceeds link capacity 10", alloc.Total)
	}
}

func TestPCIeCapBinds(t *testing.T) {
	plat := topology.Henri()
	prof, err := ProfileFor("henri")
	if err != nil {
		t.Fatal(err)
	}
	prof.PCIeCap = 4
	sys, err := New(plat, prof)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := sys.Solve([]Stream{commStream(0, 0), commStream(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.CommTotal > 4+1e-9 {
		t.Errorf("comm total %v exceeds PCIe capacity 4", alloc.CommTotal)
	}
}

func TestCrossSocketCommFactor(t *testing.T) {
	plat := topology.Pyxis()
	prof, err := ProfileFor("pyxis")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(plat, prof)
	if err != nil {
		t.Fatal(err)
	}
	// A handful of cores, far from saturation: the only effect in the
	// cross placement is the quirk factor.
	streams := append(computeStreams(sys, 2, 1), commStream(1000, 0))
	alloc, err := sys.Solve(streams)
	if err != nil {
		t.Fatal(err)
	}
	want := prof.NominalComm(0) * prof.Quirks.CrossSocketCommFactor
	if !almost(alloc.CommTotal, want, 1e-6) {
		t.Errorf("cross-socket comm = %v, want %v (factor applied)", alloc.CommTotal, want)
	}
	// Same-socket placement: no factor.
	streams = append(computeStreams(sys, 2, 0), commStream(1000, 0))
	alloc, err = sys.Solve(streams)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(alloc.CommTotal, prof.NominalComm(0), 1e-6) {
		t.Errorf("same-socket comm = %v, want nominal", alloc.CommTotal)
	}
}

func TestSolveErrors(t *testing.T) {
	sys := henriSys(t)
	cases := []struct {
		name    string
		streams []Stream
	}{
		{"duplicate id", []Stream{commStream(1, 0), commStream(1, 1)}},
		{"node out of range", []Stream{commStream(0, 99)}},
		{"core out of range", []Stream{{ID: 0, Kind: KindCompute, Core: 99, Node: 0, Demand: 1}}},
		{"negative demand", []Stream{{ID: 0, Kind: KindComm, Node: 0, Demand: -1}}},
		{"unknown kind", []Stream{{ID: 0, Kind: StreamKind(9), Node: 0}}},
	}
	for _, c := range cases {
		if _, err := sys.Solve(c.streams); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestEmptySolve(t *testing.T) {
	sys := henriSys(t)
	alloc, err := sys.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Total != 0 {
		t.Error("empty solve must allocate nothing")
	}
}

func TestOccigenNeverThrottlesComm(t *testing.T) {
	// §IV-B(d): on occigen communications keep their nominal bandwidth
	// in every configuration; only computations pay.
	plat := topology.Occigen()
	prof, err := ProfileFor("occigen")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(plat, prof)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= plat.CoresPerSocket(); n++ {
		for node := topology.NodeID(0); node < 2; node++ {
			streams := append(computeStreams(sys, n, node), commStream(1000, node))
			alloc, err := sys.Solve(streams)
			if err != nil {
				t.Fatal(err)
			}
			if !almost(alloc.CommTotal, prof.NominalComm(node), 1e-6) {
				t.Errorf("occigen n=%d node=%d: comm %v, want nominal %v", n, node, alloc.CommTotal, prof.NominalComm(node))
			}
		}
	}
}

func TestStreamKindString(t *testing.T) {
	if KindCompute.String() != "compute" || KindComm.String() != "comm" {
		t.Error("kind strings wrong")
	}
	if StreamKind(7).String() == "" {
		t.Error("unknown kind must still render")
	}
}

func TestDiabloNICLocalitySplit(t *testing.T) {
	// §IV-B(c): 12.1 GB/s with data on node 0 vs 22.4 GB/s on node 1.
	prof, err := ProfileFor("diablo")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(topology.Diablo(), prof)
	if err != nil {
		t.Fatal(err)
	}
	a0, err := sys.Solve([]Stream{commStream(0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	a1, err := sys.Solve([]Stream{commStream(0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	ratio := a1.CommTotal / a0.CommTotal
	if ratio < 1.7 || ratio > 2.0 {
		t.Errorf("diablo NIC locality ratio = %.2f, want ≈1.85 (22.4/12.1)", ratio)
	}
}
