package model

import (
	"encoding/json"
	"errors"
	"fmt"

	"memcontention/internal/topology"
)

// Placement is one data-placement configuration: the NUMA nodes holding
// the computation data (mcomp) and the communication data (mcomm).
type Placement struct {
	Comp topology.NodeID `json:"comp"`
	Comm topology.NodeID `json:"comm"`
}

// String renders the placement the way the paper's subplot titles do.
func (pl Placement) String() string {
	return fmt.Sprintf("comp@%d/comm@%d", pl.Comp, pl.Comm)
}

// Prediction is the model output for one (n, placement) input.
type Prediction struct {
	// Comp is the predicted memory bandwidth for computations (GB/s).
	Comp float64 `json:"comp"`
	// Comm is the predicted bandwidth for communications (GB/s).
	Comm float64 `json:"comm"`
}

// Model combines the local and remote instantiations with the machine's
// NUMA layout (§III-C). It predicts bandwidths for every placement from
// the two calibrated sample placements.
type Model struct {
	// Local describes accesses to the computing socket's first NUMA
	// node, Remote accesses to the other socket's first NUMA node.
	Local  Params `json:"local"`
	Remote Params `json:"remote"`
	// NodesPerSocket is #m in equations (6) and (7); nodes ≥ #m are on
	// the remote socket.
	NodesPerSocket int `json:"nodes_per_socket"`
}

// Validate checks both instantiations and the layout.
func (m Model) Validate() error {
	var errs []error
	if err := m.Local.Validate(); err != nil {
		errs = append(errs, fmt.Errorf("local instantiation: %w", err))
	}
	if err := m.Remote.Validate(); err != nil {
		errs = append(errs, fmt.Errorf("remote instantiation: %w", err))
	}
	if m.NodesPerSocket < 1 {
		errs = append(errs, fmt.Errorf("NodesPerSocket must be ≥ 1, got %d", m.NodesPerSocket))
	}
	return errors.Join(errs...)
}

// isRemote reports whether a node index designates the remote socket
// (m ≥ #m in the paper's numbering).
func (m Model) isRemote(node topology.NodeID) bool {
	return int(node) >= m.NodesPerSocket
}

// PredictComm is equation (6): the communication bandwidth with n
// computing cores under the given placement.
//
//	Bcomm_par(Mremote, n)                       if mcomp ≥ #m and mcomp = mcomm
//	Bcomm_par(Mlocal ← Bcomm_seq(Mremote), n)   else if mcomm ≥ #m
//	Bcomm_par(Mlocal, n)                        otherwise
func (m Model) PredictComm(n int, pl Placement) float64 {
	switch {
	case m.isRemote(pl.Comp) && pl.Comp == pl.Comm:
		return m.Remote.CommPar(n)
	case m.isRemote(pl.Comm):
		// Local contention shape, but the network's nominal rate for
		// remote data (§III-C: machines whose network performance is
		// sensitive to data locality).
		p := m.Local
		p.BCommSeq = m.Remote.BCommSeq
		return p.CommPar(n)
	default:
		return m.Local.CommPar(n)
	}
}

// PredictComp is equation (7): the computation bandwidth with n computing
// cores under the given placement. Computations only suffer contention
// when both streams share a NUMA node; otherwise they get their nominal
// (alone) bandwidth.
func (m Model) PredictComp(n int, pl Placement) float64 {
	local := !m.isRemote(pl.Comp)
	same := pl.Comp == pl.Comm
	switch {
	case local && same:
		return m.Local.CompPar(n)
	case local && !same:
		return m.Local.CompAlone(n)
	case !local && same:
		return m.Remote.CompPar(n)
	default:
		return m.Remote.CompAlone(n)
	}
}

// Predict returns both bandwidths for one (n, placement) input.
// n must be ≥ 1 (the model is defined for at least one computing core).
func (m Model) Predict(n int, pl Placement) (Prediction, error) {
	if n < 1 {
		return Prediction{}, fmt.Errorf("model: n must be ≥ 1, got %d", n)
	}
	if pl.Comp < 0 || pl.Comm < 0 || int(pl.Comp) >= 2*m.NodesPerSocket || int(pl.Comm) >= 2*m.NodesPerSocket {
		return Prediction{}, fmt.Errorf("model: placement %v out of range for %d nodes/socket", pl, m.NodesPerSocket)
	}
	return Prediction{
		Comp: m.PredictComp(n, pl),
		Comm: m.PredictComm(n, pl),
	}, nil
}

// PredictCurve returns predictions for n = 1..nMax under one placement.
func (m Model) PredictCurve(nMax int, pl Placement) ([]Prediction, error) {
	if nMax < 1 {
		return nil, fmt.Errorf("model: nMax must be ≥ 1, got %d", nMax)
	}
	out := make([]Prediction, nMax)
	for n := 1; n <= nMax; n++ {
		p, err := m.Predict(n, pl)
		if err != nil {
			return nil, err
		}
		out[n-1] = p
	}
	return out, nil
}

// SamplePlacements returns the two placements used to instantiate the
// model (§IV-A2): both streams on the first local node, and both on the
// first remote node.
func (m Model) SamplePlacements() (local, remote Placement) {
	return Placement{Comp: 0, Comm: 0},
		Placement{Comp: topology.NodeID(m.NodesPerSocket), Comm: topology.NodeID(m.NodesPerSocket)}
}

// IsSample reports whether a placement is one of the two calibration
// samples.
func (m Model) IsSample(pl Placement) bool {
	l, r := m.SamplePlacements()
	return pl == l || pl == r
}

// MarshalJSON/UnmarshalJSON round-trip the model for the command-line
// tools. The default struct encoding is used; the methods exist to
// validate on decode.
func (m Model) MarshalJSON() ([]byte, error) {
	type alias Model
	return json.Marshal(alias(m))
}

// UnmarshalJSON decodes and validates.
func (m *Model) UnmarshalJSON(data []byte) error {
	type alias Model
	var a alias
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	*m = Model(a)
	return m.Validate()
}

// String renders the combined model.
func (m Model) String() string {
	return fmt.Sprintf("Model{#m=%d\n  local:  %s\n  remote: %s\n}", m.NodesPerSocket, m.Local, m.Remote)
}
