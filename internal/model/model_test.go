package model

import (
	"encoding/json"
	"testing"
)

// refModel builds a model with distinguishable local and remote
// instantiations (remote is slower, like a real machine).
func refModel(nodesPerSocket int) Model {
	local := refParams()
	remote := Params{
		NParMax: 8, TParMax: 40,
		NSeqMax: 10, TSeqMax: 34,
		TPar2:  36,
		DeltaL: 2.0, DeltaR: 0.5,
		BCompSeq: 3.4,
		BCommSeq: 11.5,
		Alpha:    0.25,
	}
	return Model{Local: local, Remote: remote, NodesPerSocket: nodesPerSocket}
}

func TestEquation7CompSelection(t *testing.T) {
	m := refModel(1)
	n := 6
	cases := []struct {
		pl   Placement
		want float64
	}{
		// local + same node: local parallel model.
		{Placement{Comp: 0, Comm: 0}, m.Local.CompPar(n)},
		// local + different node: local alone model.
		{Placement{Comp: 0, Comm: 1}, m.Local.CompAlone(n)},
		// remote + same node: remote parallel model.
		{Placement{Comp: 1, Comm: 1}, m.Remote.CompPar(n)},
		// remote + different node: remote alone model.
		{Placement{Comp: 1, Comm: 0}, m.Remote.CompAlone(n)},
	}
	for _, c := range cases {
		if got := m.PredictComp(n, c.pl); got != c.want {
			t.Errorf("PredictComp(%d, %v) = %v, want %v", n, c.pl, got, c.want)
		}
	}
}

func TestEquation6CommSelection(t *testing.T) {
	m := refModel(1)
	n := 16 // saturated in the local model
	// Case 1: both remote, same node → remote model.
	if got := m.PredictComm(n, Placement{Comp: 1, Comm: 1}); got != m.Remote.CommPar(n) {
		t.Errorf("remote/same: %v, want remote model", got)
	}
	// Case 2: comm remote (comp local) → local model with the remote
	// nominal bandwidth substituted.
	sub := m.Local
	sub.BCommSeq = m.Remote.BCommSeq
	if got := m.PredictComm(n, Placement{Comp: 0, Comm: 1}); got != sub.CommPar(n) {
		t.Errorf("comm remote: %v, want local model with remote Bcomm_seq (%v)", got, sub.CommPar(n))
	}
	// Case 3 (otherwise): comm local → plain local model, even with
	// remote computations.
	if got := m.PredictComm(n, Placement{Comp: 1, Comm: 0}); got != m.Local.CommPar(n) {
		t.Errorf("comm local: %v, want local model", got)
	}
	if got := m.PredictComm(n, Placement{Comp: 0, Comm: 0}); got != m.Local.CommPar(n) {
		t.Errorf("both local: %v, want local model", got)
	}
}

func TestSubstitutionMatters(t *testing.T) {
	// The Bcomm_seq substitution of equation (6) must actually change
	// the prediction when the network is locality-sensitive.
	m := refModel(1)
	n := 4 // unsaturated: comm = min(leftover, BCommSeq) = BCommSeq
	local := m.PredictComm(n, Placement{Comp: 0, Comm: 0})
	cross := m.PredictComm(n, Placement{Comp: 0, Comm: 1})
	if local == cross {
		t.Error("locality-sensitive nominal bandwidth must differ between comm placements")
	}
	if cross != m.Remote.BCommSeq {
		t.Errorf("unsaturated cross comm = %v, want remote nominal %v", cross, m.Remote.BCommSeq)
	}
}

func TestSubnumaPlacementClasses(t *testing.T) {
	// With #m = 2 (henri-subnuma), nodes 0,1 are local and 2,3 remote.
	m := refModel(2)
	n := 6
	// comp@1/comm@0: both local, different nodes → comp alone.
	if got := m.PredictComp(n, Placement{Comp: 1, Comm: 0}); got != m.Local.CompAlone(n) {
		t.Error("local different nodes must use the alone model")
	}
	// comp@2/comm@2: same remote node → remote parallel.
	if got := m.PredictComp(n, Placement{Comp: 2, Comm: 2}); got != m.Remote.CompPar(n) {
		t.Error("same remote node must use the remote parallel model")
	}
	// comp@2/comm@3: different remote nodes → comm gets local shape with
	// remote nominal; comp gets remote alone.
	sub := m.Local
	sub.BCommSeq = m.Remote.BCommSeq
	if got := m.PredictComm(n, Placement{Comp: 2, Comm: 3}); got != sub.CommPar(n) {
		t.Error("different remote nodes: comm must use substituted local model")
	}
	if got := m.PredictComp(n, Placement{Comp: 2, Comm: 3}); got != m.Remote.CompAlone(n) {
		t.Error("different remote nodes: comp must use remote alone model")
	}
}

func TestPredictValidation(t *testing.T) {
	m := refModel(1)
	if _, err := m.Predict(0, Placement{}); err == nil {
		t.Error("n=0 must error")
	}
	if _, err := m.Predict(1, Placement{Comp: 5, Comm: 0}); err == nil {
		t.Error("out-of-range placement must error")
	}
	if _, err := m.Predict(1, Placement{Comp: 0, Comm: -1}); err == nil {
		t.Error("negative node must error")
	}
	if _, err := m.Predict(4, Placement{Comp: 0, Comm: 1}); err != nil {
		t.Errorf("valid predict failed: %v", err)
	}
}

func TestPredictCurve(t *testing.T) {
	m := refModel(1)
	preds, err := m.PredictCurve(18, Placement{Comp: 0, Comm: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 18 {
		t.Fatalf("curve length %d", len(preds))
	}
	for i, p := range preds {
		one, err := m.Predict(i+1, Placement{Comp: 0, Comm: 0})
		if err != nil {
			t.Fatal(err)
		}
		if p != one {
			t.Errorf("curve[%d] differs from point prediction", i)
		}
	}
	if _, err := m.PredictCurve(0, Placement{}); err == nil {
		t.Error("nMax=0 must error")
	}
}

func TestSamplePlacements(t *testing.T) {
	m := refModel(2)
	local, remote := m.SamplePlacements()
	if local != (Placement{Comp: 0, Comm: 0}) {
		t.Errorf("local sample = %v", local)
	}
	if remote != (Placement{Comp: 2, Comm: 2}) {
		t.Errorf("remote sample = %v (first node of socket 1)", remote)
	}
	if !m.IsSample(local) || !m.IsSample(remote) {
		t.Error("samples must be recognised")
	}
	if m.IsSample(Placement{Comp: 0, Comm: 1}) {
		t.Error("non-sample recognised as sample")
	}
}

func TestModelValidate(t *testing.T) {
	m := refModel(1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	m.NodesPerSocket = 0
	if err := m.Validate(); err == nil {
		t.Error("zero nodes per socket must fail")
	}
	m = refModel(1)
	m.Local.Alpha = -1
	if err := m.Validate(); err == nil {
		t.Error("invalid local params must fail")
	}
}

func TestModelJSONRoundTrip(t *testing.T) {
	m := refModel(2)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Error("JSON round trip changed the model")
	}
	// Decoding an invalid model must fail (UnmarshalJSON validates).
	if err := json.Unmarshal([]byte(`{"nodes_per_socket":0}`), &back); err == nil {
		t.Error("invalid JSON model accepted")
	}
}

func TestPlacementString(t *testing.T) {
	if got := (Placement{Comp: 2, Comm: 0}).String(); got != "comp@2/comm@0" {
		t.Errorf("Placement.String() = %q", got)
	}
}

func TestModelString(t *testing.T) {
	if s := refModel(1).String(); len(s) == 0 {
		t.Error("empty model string")
	}
}
