// Package model implements the paper's contribution: the threshold model
// of §III predicting the memory bandwidth available to computations and to
// communications when they run side by side on one socket of a NUMA
// machine.
//
// A Params value is one model instantiation (the paper's M_local or
// M_remote); a Model combines the two instantiations with the machine's
// NUMA layout to predict every data-placement configuration (§III-C,
// equations 6 and 7).
//
// Equation numbering in the comments follows the paper.
package model

import (
	"errors"
	"fmt"
	"math"
)

// Params is the parameter set of one model instantiation (§III-A).
type Params struct {
	// NParMax, TParMax: the maximum total memory bandwidth reached when
	// computations and communications run simultaneously, and the
	// number of computing cores reaching it.
	NParMax int     `json:"n_par_max"`
	TParMax float64 `json:"t_par_max"`

	// NSeqMax, TSeqMax: the maximum memory bandwidth reached by
	// computations alone, and the number of cores reaching it.
	NSeqMax int     `json:"n_seq_max"`
	TSeqMax float64 `json:"t_seq_max"`

	// TPar2 is the total bandwidth with communications and NSeqMax
	// computing cores (the paper's T^max2_par).
	TPar2 float64 `json:"t_par2"`

	// DeltaL and DeltaR are the total-bandwidth losses per additional
	// computing core, respectively between NParMax and NSeqMax cores
	// and beyond NSeqMax cores.
	DeltaL float64 `json:"delta_l"`
	DeltaR float64 `json:"delta_r"`

	// BCompSeq is the memory bandwidth of a single computing core.
	BCompSeq float64 `json:"b_comp_seq"`

	// BCommSeq is the communication bandwidth with no computation.
	BCommSeq float64 `json:"b_comm_seq"`

	// Alpha is the worst-case fraction of BCommSeq still granted to
	// communications under contention: α = min_i Bcomm_par(i)/Bcomm_seq.
	Alpha float64 `json:"alpha"`
}

// Validate checks the structural constraints of §III-A. DeltaL/DeltaR may
// be slightly negative on contention-free machines (the measured total
// keeps growing past the detected maximum); that is accepted.
func (p Params) Validate() error {
	var errs []error
	if p.NParMax < 1 {
		errs = append(errs, fmt.Errorf("NParMax must be ≥ 1, got %d", p.NParMax))
	}
	if p.NSeqMax < 1 {
		errs = append(errs, fmt.Errorf("NSeqMax must be ≥ 1, got %d", p.NSeqMax))
	}
	if p.NParMax > p.NSeqMax {
		errs = append(errs, fmt.Errorf("NParMax (%d) must not exceed NSeqMax (%d)", p.NParMax, p.NSeqMax))
	}
	if p.TParMax <= 0 || p.TSeqMax <= 0 || p.TPar2 <= 0 {
		errs = append(errs, fmt.Errorf("bandwidth maxima must be positive (TParMax=%.2f TSeqMax=%.2f TPar2=%.2f)", p.TParMax, p.TSeqMax, p.TPar2))
	}
	if p.BCompSeq <= 0 {
		errs = append(errs, fmt.Errorf("BCompSeq must be positive, got %.3f", p.BCompSeq))
	}
	if p.BCommSeq <= 0 {
		errs = append(errs, fmt.Errorf("BCommSeq must be positive, got %.3f", p.BCommSeq))
	}
	if p.Alpha <= 0 || p.Alpha > 1+1e-9 {
		errs = append(errs, fmt.Errorf("Alpha must be in (0,1], got %.4f", p.Alpha))
	}
	for _, v := range []float64{p.TParMax, p.TSeqMax, p.TPar2, p.DeltaL, p.DeltaR, p.BCompSeq, p.BCommSeq, p.Alpha} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			errs = append(errs, fmt.Errorf("non-finite parameter value"))
			break
		}
	}
	return errors.Join(errs...)
}

// TotalBandwidth is equation (1): the total bandwidth T(n) the memory
// system can support with n computing cores plus communications.
//
//	T(n) = TParMax                      if n ≤ NParMax
//	     = TParMax − δl·(n − NParMax)   if NParMax < n ≤ NSeqMax
//	     = TPar2   − δr·(n − NSeqMax)   otherwise
func (p Params) TotalBandwidth(n int) float64 {
	switch {
	case n <= p.NParMax:
		return p.TParMax
	case n <= p.NSeqMax:
		return p.TParMax - p.DeltaL*float64(n-p.NParMax)
	default:
		return p.TPar2 - p.DeltaR*float64(n-p.NSeqMax)
	}
}

// Required is equation (2): the bandwidth R(n) needed to serve the full
// compute demand plus the guaranteed communication minimum.
//
//	R(n) = n·BCompSeq + α·BCommSeq
func (p Params) Required(n int) float64 {
	return float64(n)*p.BCompSeq + p.Alpha*p.BCommSeq
}

// saturated reports whether the memory bus cannot satisfy R(n), i.e. the
// "otherwise" branch of equations (3) and (4).
func (p Params) saturated(n int) bool {
	return p.Required(n) >= p.TotalBandwidth(n)
}

// CompPar is equation (3): the memory bandwidth granted to n computing
// cores when communications run in parallel.
//
//	Bcomp_par(n) = n·BCompSeq            if R(n) < T(n)
//	             = T(n) − Bcomm_par(n)   otherwise
func (p Params) CompPar(n int) float64 {
	if !p.saturated(n) {
		return float64(n) * p.BCompSeq
	}
	v := p.TotalBandwidth(n) - p.CommPar(n)
	if v < 0 {
		return 0
	}
	return v
}

// CommPar is equation (4): the bandwidth granted to communications with n
// computing cores in parallel.
//
//	Bcomm_par(n) = min(T(n) − Bcomp_par(n), BCommSeq)   if R(n) < T(n)
//	             = α(n)·BCommSeq                        otherwise
func (p Params) CommPar(n int) float64 {
	if !p.saturated(n) {
		return p.commParUnsat(n)
	}
	return p.AlphaN(n) * p.BCommSeq
}

// commParUnsat is the first branch of equation (4); in that branch
// Bcomp_par(n) is the unsaturated n·BCompSeq, avoiding mutual recursion.
func (p Params) commParUnsat(n int) float64 {
	v := math.Min(p.TotalBandwidth(n)-float64(n)*p.BCompSeq, p.BCommSeq)
	if v < 0 {
		return 0
	}
	return v
}

// lastUnsaturated returns i = max{ j ≥ 0 | R(j) < T(j) }, the reference
// point of equation (5). R is increasing in n and the model is evaluated
// from 0 cores upward, so the set is a prefix; with R(0) ≥ T(0) the
// returned index is 0.
func (p Params) lastUnsaturated() int {
	i := 0
	// The scan is bounded by NSeqMax: equation (5) only uses i when
	// interpolating below NSeqMax.
	for j := 1; j <= p.NSeqMax; j++ {
		if p.saturated(j) {
			break
		}
		i = j
	}
	return i
}

// AlphaN is equation (5): the communication impact factor. Beyond NSeqMax
// cores (or when the interpolation region is degenerate) it is the
// calibrated worst-case α; between the last unsaturated point i and
// NSeqMax it interpolates linearly from Bcomm_par(i)/BCommSeq down to α so
// that communication bandwidth does not drop abruptly.
func (p Params) AlphaN(n int) float64 {
	if p.NSeqMax-p.NParMax <= 1 || n >= p.NSeqMax {
		return p.Alpha
	}
	i := p.lastUnsaturated()
	if i >= p.NSeqMax { // never saturated below NSeqMax: no interpolation needed
		return p.Alpha
	}
	ratioI := p.commParUnsat(i) / p.BCommSeq
	t := float64(n-i) / float64(p.NSeqMax-i)
	a := ratioI - (ratioI-p.Alpha)*t
	if a < p.Alpha {
		return p.Alpha
	}
	if a > 1 {
		return 1
	}
	return a
}

// CompAlone is equation (8): the bandwidth of n computing cores with no
// communication.
//
//	Bcomp_seq(n) = min(n·BCompSeq, T(n), TSeqMax)
func (p Params) CompAlone(n int) float64 {
	return math.Min(float64(n)*p.BCompSeq, math.Min(p.TotalBandwidth(n), p.TSeqMax))
}

// CommAlone is the nominal communication bandwidth BCommSeq.
func (p Params) CommAlone() float64 { return p.BCommSeq }

// String renders the parameter set compactly.
func (p Params) String() string {
	return fmt.Sprintf(
		"Params{NPar=%d TPar=%.1f NSeq=%d TSeq=%.1f TPar2=%.1f δl=%.2f δr=%.2f Bcomp=%.2f Bcomm=%.2f α=%.3f}",
		p.NParMax, p.TParMax, p.NSeqMax, p.TSeqMax, p.TPar2, p.DeltaL, p.DeltaR, p.BCompSeq, p.BCommSeq, p.Alpha)
}
