package model

import (
	"math"
	"testing"
	"testing/quick"
)

// refParams is a hand-built instantiation shaped like the paper's henri
// local model: NPar=12, NSeq=14.
func refParams() Params {
	return Params{
		NParMax: 12, TParMax: 70,
		NSeqMax: 14, TSeqMax: 66,
		TPar2:  66,
		DeltaL: 2.0, DeltaR: 0.6,
		BCompSeq: 5.0,
		BCommSeq: 11.0,
		Alpha:    0.25,
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEquation1Total(t *testing.T) {
	p := refParams()
	cases := []struct {
		n    int
		want float64
	}{
		{1, 70},    // plateau
		{12, 70},   // plateau edge
		{13, 68},   // 70 − 2·1
		{14, 66},   // 70 − 2·2 = TPar2
		{15, 65.4}, // 66 − 0.6·1
		{18, 63.6}, // 66 − 0.6·4
	}
	for _, c := range cases {
		if got := p.TotalBandwidth(c.n); !almost(got, c.want) {
			t.Errorf("T(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestEquation2Required(t *testing.T) {
	p := refParams()
	if got := p.Required(10); !almost(got, 50+0.25*11) {
		t.Errorf("R(10) = %v", got)
	}
}

func TestEquations3and4Unsaturated(t *testing.T) {
	p := refParams()
	// n=10: R = 52.75 < T = 70 — perfect compute scaling, comm gets the
	// leftover capped at nominal.
	if got := p.CompPar(10); !almost(got, 50) {
		t.Errorf("CompPar(10) = %v, want 50", got)
	}
	if got := p.CommPar(10); !almost(got, 11) {
		t.Errorf("CommPar(10) = %v, want 11 (leftover 20 capped at nominal)", got)
	}
	// n=12: leftover = 70 − 60 = 10 < nominal 11.
	if got := p.CommPar(12); !almost(got, 10) {
		t.Errorf("CommPar(12) = %v, want 10", got)
	}
	if got := p.CompPar(12); !almost(got, 60) {
		t.Errorf("CompPar(12) = %v, want 60", got)
	}
}

func TestEquations3and4Saturated(t *testing.T) {
	p := refParams()
	// n=16 > NSeqMax: α(n) = α, comm = 2.75, comp = T − comm.
	wantComm := 0.25 * 11
	if got := p.CommPar(16); !almost(got, wantComm) {
		t.Errorf("CommPar(16) = %v, want %v", got, wantComm)
	}
	wantComp := p.TotalBandwidth(16) - wantComm
	if got := p.CompPar(16); !almost(got, wantComp) {
		t.Errorf("CompPar(16) = %v, want %v", got, wantComp)
	}
}

func TestEquation5Interpolation(t *testing.T) {
	p := refParams()
	// The last unsaturated point: R(n) < T(n). R(12)=62.75 < 70,
	// R(13)=67.75 < 68? No: 67.75 < 68 holds, so i = 13.
	if i := p.lastUnsaturated(); i != 13 {
		t.Fatalf("lastUnsaturated = %d, want 13", i)
	}
	// With i = 13 = NSeqMax−1 there is exactly one interpolation point
	// (none strictly between), so α(n<NSeq) values come from the line
	// (13, ratio13) → (14, α). α(13): saturated? R(13)=67.75 ≥ T(13)=68
	// is false, so CommPar(13) uses the unsaturated branch anyway.
	if got := p.CommPar(13); !almost(got, 68-65) {
		t.Errorf("CommPar(13) = %v, want 3 (leftover)", got)
	}
	// Force a wide interpolation region: steeper δl.
	p2 := refParams()
	p2.DeltaL = 4
	// T: 70, 66, 62 for n=12,13,14. R: 62.75, 67.75, 72.75 → i=12.
	if i := p2.lastUnsaturated(); i != 12 {
		t.Fatalf("lastUnsaturated = %d, want 12", i)
	}
	ratio12 := p2.commParUnsat(12) / p2.BCommSeq // min(70−60,11)/11 = 10/11
	wantAlpha13 := ratio12 - (ratio12-p2.Alpha)/2
	if got := p2.AlphaN(13); !almost(got, wantAlpha13) {
		t.Errorf("α(13) = %v, want %v (midpoint of interpolation)", got, wantAlpha13)
	}
	if got := p2.AlphaN(14); !almost(got, p2.Alpha) {
		t.Errorf("α(NSeqMax) = %v, want α", got)
	}
	if got := p2.AlphaN(20); !almost(got, p2.Alpha) {
		t.Errorf("α beyond NSeqMax = %v, want α", got)
	}
}

func TestAlphaNDegenerateRegion(t *testing.T) {
	// NSeqMax − NParMax ≤ 1: no interpolation, always α.
	p := refParams()
	p.NParMax = 14
	for n := 1; n <= 18; n++ {
		if p.saturated(n) {
			if got := p.AlphaN(n); !almost(got, p.Alpha) {
				t.Errorf("degenerate α(%d) = %v, want α", n, got)
			}
		}
	}
}

func TestEquation8CompAlone(t *testing.T) {
	p := refParams()
	cases := []struct {
		n    int
		want float64
	}{
		{1, 5},
		{10, 50},
		{13, 65},   // 5·13 < min(T(13)=68, 66)
		{14, 66},   // capped by TSeqMax
		{16, 64.8}, // capped by T(16) = 66 − 1.2
	}
	for _, c := range cases {
		if got := p.CompAlone(c.n); !almost(got, c.want) {
			t.Errorf("CompAlone(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestCommAlone(t *testing.T) {
	p := refParams()
	if p.CommAlone() != 11 {
		t.Error("CommAlone must be BCommSeq")
	}
}

// TestModelInvariants checks structural properties of the equations over
// random valid parameter sets.
func TestModelInvariants(t *testing.T) {
	gen := func(a, b, c, d, e uint8) Params {
		p := Params{
			NParMax:  int(a%10) + 2,
			NSeqMax:  int(a%10) + 2 + int(b%5),
			BCompSeq: 1 + float64(c%50)/10,
			BCommSeq: 5 + float64(d%100)/10,
			Alpha:    0.1 + float64(e%80)/100,
			DeltaL:   float64(b%30) / 10,
			DeltaR:   float64(c%10) / 10,
		}
		p.TParMax = float64(p.NParMax)*p.BCompSeq + p.BCommSeq
		p.TSeqMax = float64(p.NSeqMax) * p.BCompSeq * 0.95
		p.TPar2 = p.TParMax - p.DeltaL*float64(p.NSeqMax-p.NParMax)
		if p.TPar2 <= 0 {
			p.TPar2 = 1
		}
		return p
	}
	f := func(a, b, c, d, e, nRaw uint8) bool {
		p := gen(a, b, c, d, e)
		if p.Validate() != nil {
			return true // skip degenerate combinations
		}
		n := int(nRaw%24) + 1
		comp, comm := p.CompPar(n), p.CommPar(n)
		// Non-negative bandwidths.
		if comp < 0 || comm < 0 {
			return false
		}
		// Communications never exceed nominal.
		if comm > p.BCommSeq+1e-9 {
			return false
		}
		// Under saturation, comm keeps at least α·Bcomm (equation 5
		// interpolates between α and a larger value).
		if p.saturated(n) && comm < p.Alpha*p.BCommSeq-1e-9 {
			return false
		}
		// Computations never exceed their demand.
		if comp > float64(n)*p.BCompSeq+1e-9 {
			return false
		}
		// The stacked total respects the capacity: when saturated the
		// split is exactly T(n) — except in the degenerate region
		// where the communication guarantee alone exceeds the
		// capacity (comp clamps to 0 and comm keeps its guarantee,
		// as the published equations imply).
		if p.saturated(n) {
			total := p.TotalBandwidth(n)
			switch {
			case comm >= total: // degenerate guarantee region
				if comp != 0 {
					return false
				}
			case math.Abs(comp+comm-total) > 1e-9:
				return false
			}
		}
		// Compute-alone bound.
		if p.CompAlone(n) > p.TSeqMax+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTotalBandwidthMonotone(t *testing.T) {
	// With non-negative deltas, T(n) is non-increasing.
	p := refParams()
	prev := p.TotalBandwidth(1)
	for n := 2; n <= 30; n++ {
		cur := p.TotalBandwidth(n)
		if cur > prev+1e-9 {
			t.Fatalf("T not monotone at n=%d: %v > %v", n, cur, prev)
		}
		prev = cur
	}
}

func TestParamsValidate(t *testing.T) {
	good := refParams()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Params){
		func(p *Params) { p.NParMax = 0 },
		func(p *Params) { p.NSeqMax = 0 },
		func(p *Params) { p.NParMax = 15 }, // exceeds NSeqMax
		func(p *Params) { p.TParMax = 0 },
		func(p *Params) { p.BCompSeq = -1 },
		func(p *Params) { p.BCommSeq = 0 },
		func(p *Params) { p.Alpha = 0 },
		func(p *Params) { p.Alpha = 1.5 },
		func(p *Params) { p.TSeqMax = math.NaN() },
	}
	for i, mut := range mutations {
		p := refParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestParamsString(t *testing.T) {
	s := refParams().String()
	if len(s) == 0 || s[0] != 'P' {
		t.Errorf("String() = %q", s)
	}
}
