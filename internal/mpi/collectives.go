package mpi

import (
	"fmt"

	"memcontention/internal/topology"
	"memcontention/internal/units"
)

// Collective operations. All ranks of the world must call the same
// collective with compatible arguments (as in MPI); mismatched calls
// deadlock, which the engine reports when the simulation drains.
//
// Algorithms are the classic binomial trees used by MPI implementations
// for medium-size messages, so simulated collective times scale as
// O(log P) fabric hops — good enough to study contention, which is a
// per-node memory-system effect.

// collectiveTagBase separates internal collective traffic from user tags.
const collectiveTagBase = 1 << 20

// binomialBcast runs the binomial broadcast over a group of size members
// (local index me, root in group numbering); the closures perform the
// actual transfers against group-local peer indices. Returns the payload
// every member ends up holding.
func binomialBcast(size, me, root int, payload any,
	recvParent func(parent int) (any, error),
	sendChild func(child int, payload any) error) (any, error) {
	// Virtual rank: rotate so the root is 0 in the tree.
	vrank := (me - root + size) % size
	if vrank != 0 {
		// Receive from the parent: clear the lowest set bit.
		parent := ((vrank & (vrank - 1)) + root) % size
		p, err := recvParent(parent)
		if err != nil {
			return nil, err
		}
		payload = p
	}
	// Forward to children: vrank+bit for every power of two below my
	// lowest set bit (all of them for the root), largest subtree first.
	bit := 1
	if vrank == 0 {
		for bit<<1 < size {
			bit <<= 1
		}
	} else {
		bit = (vrank & -vrank) >> 1
	}
	for ; bit > 0; bit >>= 1 {
		if vrank+bit >= size {
			continue
		}
		child := (vrank + bit + root) % size
		if err := sendChild(child, payload); err != nil {
			return nil, err
		}
	}
	return payload, nil
}

// binomialReduce runs the binomial reduction mirror image: members receive
// from their children, fold with op, and forward to their parent; the root
// returns the full reduction (others return 0).
func binomialReduce(size, me, root int, value float64, op func(a, b float64) float64,
	recvChild func(child int) (float64, error),
	sendParent func(parent int, acc float64) error) (float64, error) {
	vrank := (me - root + size) % size
	acc := value
	for bit := 1; bit < size; bit <<= 1 {
		if vrank&bit != 0 {
			parent := ((vrank &^ bit) + root) % size
			return 0, sendParent(parent, acc)
		}
		if vrank+bit < size {
			child := (vrank + bit + root) % size
			v, err := recvChild(child)
			if err != nil {
				return 0, err
			}
			acc = op(acc, v)
		}
	}
	return acc, nil
}

// Bcast broadcasts size bytes from root to all ranks. Data lands on (and
// is sent from) the given NUMA node of each rank's machine. The root's
// payload value is returned on every rank. Sends are posted non-blocking
// so subtrees progress in parallel.
func (c *Ctx) Bcast(root int, size units.ByteSize, node topology.NodeID, payload any) (any, error) {
	if err := c.checkRoot(root); err != nil {
		return nil, err
	}
	tag := collectiveTagBase + 1
	var reqs []*Request
	out, err := binomialBcast(c.world.Size(), c.Rank(), root, payload,
		func(parent int) (any, error) {
			st, err := c.Recv(parent, tag, size, node)
			if err != nil {
				return nil, err
			}
			return st.Payload, nil
		},
		func(child int, p any) error {
			req, err := c.Isend(child, tag, size, node, p)
			if err != nil {
				return err
			}
			reqs = append(reqs, req)
			return nil
		})
	if err != nil {
		return nil, fmt.Errorf("mpi: Bcast rank %d: %w", c.Rank(), err)
	}
	if err := c.WaitAll(reqs...); err != nil {
		return nil, fmt.Errorf("mpi: Bcast rank %d: %w", c.Rank(), err)
	}
	return out, nil
}

// Reduce combines float64 payloads with op onto the root, moving size
// bytes per hop (the data being reduced). Non-root ranks return 0.
func (c *Ctx) Reduce(root int, size units.ByteSize, node topology.NodeID, value float64, op func(a, b float64) float64) (float64, error) {
	if err := c.checkRoot(root); err != nil {
		return 0, err
	}
	if op == nil {
		return 0, fmt.Errorf("mpi: Reduce needs an operator")
	}
	tag := collectiveTagBase + 2
	out, err := binomialReduce(c.world.Size(), c.Rank(), root, value, op,
		func(child int) (float64, error) {
			st, err := c.Recv(child, tag, size, node)
			if err != nil {
				return 0, err
			}
			v, ok := st.Payload.(float64)
			if !ok {
				return 0, fmt.Errorf("non-float payload from %d", st.Source)
			}
			return v, nil
		},
		func(parent int, acc float64) error {
			return c.Send(parent, tag, size, node, acc)
		})
	if err != nil {
		return 0, fmt.Errorf("mpi: Reduce rank %d: %w", c.Rank(), err)
	}
	return out, nil
}

// Allreduce is Reduce to rank 0 followed by Bcast.
func (c *Ctx) Allreduce(size units.ByteSize, node topology.NodeID, value float64, op func(a, b float64) float64) (float64, error) {
	acc, err := c.Reduce(0, size, node, value, op)
	if err != nil {
		return 0, err
	}
	out, err := c.Bcast(0, size, node, acc)
	if err != nil {
		return 0, err
	}
	v, ok := out.(float64)
	if !ok {
		return 0, fmt.Errorf("mpi: Allreduce rank %d: broadcast payload corrupted", c.Rank())
	}
	return v, nil
}

// Gather collects every rank's payload at the root, each contribution
// moving size bytes. The root receives a slice indexed by rank; other
// ranks get nil.
func (c *Ctx) Gather(root int, size units.ByteSize, node topology.NodeID, payload any) ([]any, error) {
	if err := c.checkRoot(root); err != nil {
		return nil, err
	}
	w := c.world
	tag := collectiveTagBase + 3
	if c.Rank() != root {
		if err := c.Send(root, tag, size, node, rankedPayload{c.Rank(), payload}); err != nil {
			return nil, fmt.Errorf("mpi: Gather rank %d: %w", c.Rank(), err)
		}
		return nil, nil
	}
	out := make([]any, w.Size())
	out[root] = payload
	for i := 0; i < w.Size()-1; i++ {
		st, err := c.Recv(AnySource, tag, size, node)
		if err != nil {
			return nil, fmt.Errorf("mpi: Gather root: %w", err)
		}
		rp, ok := st.Payload.(rankedPayload)
		if !ok {
			return nil, fmt.Errorf("mpi: Gather root: stray message from %d", st.Source)
		}
		out[rp.rank] = rp.value
	}
	return out, nil
}

// Scatter distributes per-rank payloads from the root; every rank gets
// its element. parts must have world-size length on the root (ignored
// elsewhere).
func (c *Ctx) Scatter(root int, size units.ByteSize, node topology.NodeID, parts []any) (any, error) {
	if err := c.checkRoot(root); err != nil {
		return nil, err
	}
	w := c.world
	tag := collectiveTagBase + 4
	if c.Rank() == root {
		if len(parts) != w.Size() {
			return nil, fmt.Errorf("mpi: Scatter root: %d parts for %d ranks", len(parts), w.Size())
		}
		for r := 0; r < w.Size(); r++ {
			if r == root {
				continue
			}
			if err := c.Send(r, tag, size, node, parts[r]); err != nil {
				return nil, fmt.Errorf("mpi: Scatter root: %w", err)
			}
		}
		return parts[root], nil
	}
	st, err := c.Recv(root, tag, size, node)
	if err != nil {
		return nil, fmt.Errorf("mpi: Scatter rank %d: %w", c.Rank(), err)
	}
	return st.Payload, nil
}

// Sendrecv performs a simultaneous send and receive (the deadlock-free
// exchange primitive of halo swaps).
func (c *Ctx) Sendrecv(dst, sendTag int, sendSize units.ByteSize, sendNode topology.NodeID, payload any,
	src, recvTag int, recvSize units.ByteSize, recvNode topology.NodeID) (Status, error) {
	recvReq, err := c.Irecv(src, recvTag, recvSize, recvNode)
	if err != nil {
		return Status{}, err
	}
	sendReq, err := c.Isend(dst, sendTag, sendSize, sendNode, payload)
	if err != nil {
		return Status{}, err
	}
	if _, err := c.Wait(sendReq); err != nil {
		return Status{}, err
	}
	return c.Wait(recvReq)
}

// rankedPayload tags a Gather contribution with its origin.
type rankedPayload struct {
	rank  int
	value any
}

func (c *Ctx) checkRoot(root int) error {
	if root < 0 || root >= c.world.Size() {
		return fmt.Errorf("mpi: rank %d: invalid root %d", c.Rank(), root)
	}
	return nil
}

// Sum is the canonical Reduce/Allreduce operator.
func Sum(a, b float64) float64 { return a + b }

// Max is a Reduce/Allreduce operator.
func Max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
