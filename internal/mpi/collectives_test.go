package mpi

import (
	"math"
	"testing"

	"memcontention/internal/units"
)

func TestBcastFromEveryRoot(t *testing.T) {
	for _, worldShape := range []struct{ machines, ranks int }{{2, 1}, {2, 2}, {3, 2}, {2, 3}} {
		size := worldShape.machines * worldShape.ranks
		for root := 0; root < size; root++ {
			sim, w := newWorld(t, worldShape.machines, worldShape.ranks)
			got := make([]any, size)
			run(t, sim, w, func(c *Ctx) {
				payload := any(nil)
				if c.Rank() == root {
					payload = "from-" + string(rune('a'+root))
				}
				out, err := c.Bcast(root, units.MiB, 0, payload)
				if err != nil {
					t.Error(err)
					return
				}
				got[c.Rank()] = out
			})
			want := "from-" + string(rune('a'+root))
			for r, v := range got {
				if v != want {
					t.Fatalf("P=%d root=%d: rank %d got %v, want %q", size, root, r, v, want)
				}
			}
		}
	}
}

func TestReduceSum(t *testing.T) {
	sim, w := newWorld(t, 2, 2)
	results := make([]float64, 4)
	run(t, sim, w, func(c *Ctx) {
		v, err := c.Reduce(0, units.MiB, 0, float64(c.Rank()+1), Sum)
		if err != nil {
			t.Error(err)
			return
		}
		results[c.Rank()] = v
	})
	if results[0] != 10 { // 1+2+3+4
		t.Errorf("root reduction = %v, want 10", results[0])
	}
	for r := 1; r < 4; r++ {
		if results[r] != 0 {
			t.Errorf("non-root rank %d got %v, want 0", r, results[r])
		}
	}
}

func TestReduceMaxNonRootRoot(t *testing.T) {
	sim, w := newWorld(t, 3, 1)
	var atRoot float64
	run(t, sim, w, func(c *Ctx) {
		v, err := c.Reduce(2, units.KiB, 0, float64(10*(c.Rank()+1)), Max)
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 2 {
			atRoot = v
		}
	})
	if atRoot != 30 {
		t.Errorf("max reduction at root 2 = %v, want 30", atRoot)
	}
}

func TestAllreduce(t *testing.T) {
	sim, w := newWorld(t, 2, 2)
	results := make([]float64, 4)
	run(t, sim, w, func(c *Ctx) {
		v, err := c.Allreduce(units.MiB, 0, float64(c.Rank()), Sum)
		if err != nil {
			t.Error(err)
			return
		}
		results[c.Rank()] = v
	})
	for r, v := range results {
		if v != 6 { // 0+1+2+3
			t.Errorf("rank %d allreduce = %v, want 6", r, v)
		}
	}
}

func TestGather(t *testing.T) {
	sim, w := newWorld(t, 2, 2)
	var gathered []any
	run(t, sim, w, func(c *Ctx) {
		out, err := c.Gather(1, units.MiB, 0, c.Rank()*100)
		if err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 1 {
			gathered = out
		} else if out != nil {
			t.Errorf("non-root rank %d got %v", c.Rank(), out)
		}
	})
	if len(gathered) != 4 {
		t.Fatalf("gathered %d entries", len(gathered))
	}
	for r, v := range gathered {
		if v != r*100 {
			t.Errorf("gathered[%d] = %v, want %d", r, v, r*100)
		}
	}
}

func TestScatter(t *testing.T) {
	sim, w := newWorld(t, 2, 2)
	got := make([]any, 4)
	run(t, sim, w, func(c *Ctx) {
		var parts []any
		if c.Rank() == 0 {
			parts = []any{"p0", "p1", "p2", "p3"}
		}
		v, err := c.Scatter(0, units.MiB, 0, parts)
		if err != nil {
			t.Error(err)
			return
		}
		got[c.Rank()] = v
	})
	for r, v := range got {
		want := "p" + string(rune('0'+r))
		if v != want {
			t.Errorf("rank %d scattered %v, want %q", r, v, want)
		}
	}
}

func TestScatterValidatesParts(t *testing.T) {
	sim, w := newWorld(t, 2, 1)
	sawErr := false
	w.Launch(func(c *Ctx) {
		if c.Rank() == 0 {
			if _, err := c.Scatter(0, units.MiB, 0, []any{"only-one"}); err != nil {
				sawErr = true
			}
		}
	})
	// Rank 1 waits for a scatter that never comes — drain errors out as
	// a deadlock; the root-side validation error is what we assert.
	_ = sim.Run()
	if !sawErr {
		t.Error("wrong part count must error on the root")
	}
}

func TestSendrecvExchange(t *testing.T) {
	sim, w := newWorld(t, 2, 1)
	got := make([]any, 2)
	run(t, sim, w, func(c *Ctx) {
		peer := 1 - c.Rank()
		st, err := c.Sendrecv(
			peer, 7, 8*units.MiB, 0, c.Rank(),
			peer, 7, 8*units.MiB, 0)
		if err != nil {
			t.Error(err)
			return
		}
		got[c.Rank()] = st.Payload
	})
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("sendrecv exchange = %v", got)
	}
}

func TestCollectiveRootValidation(t *testing.T) {
	sim, w := newWorld(t, 2, 1)
	run(t, sim, w, func(c *Ctx) {
		if _, err := c.Bcast(9, units.KiB, 0, nil); err == nil {
			t.Error("invalid Bcast root accepted")
		}
		if _, err := c.Reduce(-1, units.KiB, 0, 0, Sum); err == nil {
			t.Error("invalid Reduce root accepted")
		}
		if _, err := c.Reduce(0, units.KiB, 0, 0, nil); err == nil && c.Rank() == 0 {
			t.Error("nil operator accepted")
		}
		if _, err := c.Gather(9, units.KiB, 0, nil); err == nil {
			t.Error("invalid Gather root accepted")
		}
		if _, err := c.Scatter(9, units.KiB, 0, nil); err == nil {
			t.Error("invalid Scatter root accepted")
		}
	})
}

func TestBcastTimeScalesLogarithmically(t *testing.T) {
	// A binomial broadcast of P ranks takes O(log P) rounds, not O(P).
	// With the single-port NIC model the root's concurrent sends share
	// its PCIe path, so 8 ranks cost a bit more than the ideal 3 rounds
	// — but must stay clearly below the 7 hops of a linear broadcast.
	timeFor := func(machines int) float64 {
		sim, w := newWorld(t, machines, 1)
		var end float64
		run(t, sim, w, func(c *Ctx) {
			if _, err := c.Bcast(0, 16*units.MiB, 0, nil); err != nil {
				t.Error(err)
			}
			c.Barrier()
			if c.Rank() == 0 {
				end = c.Now()
			}
		})
		return end
	}
	t2 := timeFor(2)
	t8 := timeFor(8)
	if t8 > 5.5*t2 {
		t.Errorf("bcast time grew linearly: 2 ranks %.6fs, 8 ranks %.6fs", t2, t8)
	}
	if t8 <= t2 {
		t.Errorf("more ranks cannot broadcast faster: %.6f vs %.6f", t8, t2)
	}
}

func TestOperators(t *testing.T) {
	if Sum(2, 3) != 5 {
		t.Error("Sum broken")
	}
	if Max(2, 3) != 3 || Max(3, 2) != 3 {
		t.Error("Max broken")
	}
	if math.IsNaN(Sum(0, 0)) {
		t.Error("unexpected NaN")
	}
}
