package mpi

import (
	"fmt"
	"sort"

	"memcontention/internal/engine"
	"memcontention/internal/topology"
	"memcontention/internal/units"
)

// Comm is a communicator: an ordered subset of the world's ranks with its
// own rank numbering, tag space, barrier and collectives — MPI_Comm_split
// semantics. Communicators are created collectively with Ctx.Split.
type Comm struct {
	world *World
	// id namespaces the communicator's tags.
	id int
	// members maps comm-local rank -> world rank.
	members []int
	// myIdx is the calling rank's comm-local rank (set per Ctx view).
}

// View binds a communicator to one rank's context.
type CommView struct {
	comm  *Comm
	ctx   *Ctx
	myIdx int
}

// splitEntry is one rank's Split arguments.
type splitEntry struct {
	color, key int
}

// splitRound holds one collective Split call's coordination state. Rounds
// are sequenced: a new round object is created once the previous one
// completes, so late readers of round N never see round N+1's result.
type splitRound struct {
	entries map[int]splitEntry
	sig     *engine.Signal
	result  map[int]*Comm
}

// Split partitions the world: ranks passing the same color form a new
// communicator, ordered by (key, world rank). It is collective — every
// rank of the world must call it. A negative color returns nil (the rank
// opts out), like MPI_UNDEFINED.
func (c *Ctx) Split(color, key int) (*CommView, error) {
	w := c.world
	if w.splitRound == nil {
		w.splitRound = &splitRound{
			entries: make(map[int]splitEntry),
			sig:     w.sim.NewSignal(),
		}
	}
	round := w.splitRound
	if _, dup := round.entries[c.Rank()]; dup {
		return nil, fmt.Errorf("mpi: rank %d called Split twice in one round", c.Rank())
	}
	round.entries[c.Rank()] = splitEntry{color: color, key: key}

	if len(round.entries) < w.Size() {
		// Wait for the rest of the world.
		c.proc.SetWaitReason("Split")
		round.sig.Wait(c.proc)
	} else {
		// Last arriver computes the partition, closes the round, and
		// wakes everyone.
		round.result = computeSplit(w, round.entries)
		w.splitRound = nil
		round.sig.Fire()
	}
	comm := round.result[c.Rank()]
	if comm == nil {
		return nil, nil // color < 0: not a member of any group
	}
	for idx, wr := range comm.members {
		if wr == c.Rank() {
			return &CommView{comm: comm, ctx: c, myIdx: idx}, nil
		}
	}
	return nil, fmt.Errorf("mpi: rank %d missing from its own communicator", c.Rank())
}

// computeSplit builds the communicators for one Split round.
func computeSplit(w *World, entries map[int]splitEntry) map[int]*Comm {
	byColor := make(map[int][]int)
	for rank, e := range entries {
		if e.color < 0 {
			continue
		}
		byColor[e.color] = append(byColor[e.color], rank)
	}
	colors := make([]int, 0, len(byColor))
	for color := range byColor {
		colors = append(colors, color)
	}
	sort.Ints(colors)
	result := make(map[int]*Comm, len(entries))
	for _, color := range colors {
		ranks := byColor[color]
		sort.Slice(ranks, func(i, j int) bool {
			ei, ej := entries[ranks[i]], entries[ranks[j]]
			if ei.key != ej.key {
				return ei.key < ej.key
			}
			return ranks[i] < ranks[j]
		})
		w.commSeq++
		comm := &Comm{world: w, id: w.commSeq, members: ranks}
		for _, r := range ranks {
			result[r] = comm
		}
	}
	return result
}

// Rank reports the comm-local rank.
func (v *CommView) Rank() int { return v.myIdx }

// Size reports the communicator size.
func (v *CommView) Size() int { return len(v.comm.members) }

// WorldRank translates a comm-local rank to a world rank.
func (v *CommView) WorldRank(local int) (int, error) {
	if local < 0 || local >= len(v.comm.members) {
		return 0, fmt.Errorf("mpi: comm rank %d out of range [0,%d)", local, len(v.comm.members))
	}
	return v.comm.members[local], nil
}

// tag namespaces a user tag into the communicator's tag space.
func (v *CommView) tag(userTag int) int {
	// Communicator tags live above the collective range, striped by id.
	return collectiveTagBase<<4 + v.comm.id*(collectiveTagBase>>4) + userTag
}

// Send is a comm-scoped blocking send.
func (v *CommView) Send(dst, tag int, size units.ByteSize, node topology.NodeID, payload any) error {
	if tag < 0 {
		return fmt.Errorf("mpi: comm send with negative tag %d", tag)
	}
	wr, err := v.WorldRank(dst)
	if err != nil {
		return err
	}
	return v.ctx.Send(wr, v.tag(tag), size, node, payload)
}

// Recv is a comm-scoped blocking receive (src may be AnySource within the
// communicator; AnyTag is not supported in comm scope to keep tag spaces
// disjoint).
func (v *CommView) Recv(src, tag int, size units.ByteSize, node topology.NodeID) (Status, error) {
	if tag < 0 {
		return Status{}, fmt.Errorf("mpi: comm receive needs a concrete tag")
	}
	worldSrc := AnySource
	if src != AnySource {
		wr, err := v.WorldRank(src)
		if err != nil {
			return Status{}, err
		}
		worldSrc = wr
	}
	st, err := v.ctx.Recv(worldSrc, v.tag(tag), size, node)
	if err != nil {
		return st, err
	}
	// Translate the source back to comm-local numbering.
	for idx, wr := range v.comm.members {
		if wr == st.Source {
			st.Source = idx
			break
		}
	}
	st.Tag = tag
	return st, nil
}

// Barrier blocks until every member of the communicator has entered it.
func (v *CommView) Barrier() error {
	w := v.comm.world
	if w.commBarriers == nil {
		w.commBarriers = make(map[int]*commBarrier)
	}
	b := w.commBarriers[v.comm.id]
	if b == nil {
		b = &commBarrier{sig: w.sim.NewSignal()}
		w.commBarriers[v.comm.id] = b
	}
	b.count++
	if b.count == v.Size() {
		delete(w.commBarriers, v.comm.id)
		b.sig.Fire()
		return nil
	}
	v.ctx.proc.SetWaitReason("Comm.Barrier")
	b.sig.Wait(v.ctx.proc)
	return nil
}

type commBarrier struct {
	count int
	sig   *engine.Signal
}

// Bcast broadcasts within the communicator (binomial tree over comm-local
// ranks, root in comm numbering).
func (v *CommView) Bcast(root int, size units.ByteSize, node topology.NodeID, payload any) (any, error) {
	if root < 0 || root >= v.Size() {
		return nil, fmt.Errorf("mpi: comm Bcast invalid root %d", root)
	}
	return binomialBcast(v.Size(), v.Rank(), root, payload,
		func(parent int) (any, error) {
			st, err := v.Recv(parent, commBcastTag, size, node)
			if err != nil {
				return nil, err
			}
			return st.Payload, nil
		},
		func(child int, p any) error {
			return v.Send(child, commBcastTag, size, node, p)
		})
}

// Reduce combines float64 payloads onto the comm-local root.
func (v *CommView) Reduce(root int, size units.ByteSize, node topology.NodeID, value float64, op func(a, b float64) float64) (float64, error) {
	if root < 0 || root >= v.Size() {
		return 0, fmt.Errorf("mpi: comm Reduce invalid root %d", root)
	}
	if op == nil {
		return 0, fmt.Errorf("mpi: comm Reduce needs an operator")
	}
	return binomialReduce(v.Size(), v.Rank(), root, value, op,
		func(child int) (float64, error) {
			st, err := v.Recv(child, commReduceTag, size, node)
			if err != nil {
				return 0, err
			}
			f, ok := st.Payload.(float64)
			if !ok {
				return 0, fmt.Errorf("mpi: comm Reduce: non-float payload from %d", st.Source)
			}
			return f, nil
		},
		func(parent int, acc float64) error {
			return v.Send(parent, commReduceTag, size, node, acc)
		})
}

// Comm-internal tags (within the communicator's namespaced space).
const (
	commBcastTag  = 1
	commReduceTag = 2
)
