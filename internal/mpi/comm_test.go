package mpi

import (
	"testing"

	"memcontention/internal/units"
)

func TestSplitByParity(t *testing.T) {
	sim, w := newWorld(t, 2, 2) // 4 ranks
	type view struct {
		rank, size int
	}
	views := make([]view, 4)
	run(t, sim, w, func(c *Ctx) {
		comm, err := c.Split(c.Rank()%2, 0)
		if err != nil {
			t.Error(err)
			return
		}
		views[c.Rank()] = view{rank: comm.Rank(), size: comm.Size()}
	})
	// Ranks {0,2} form color 0; {1,3} color 1. Keys equal → world order.
	want := []view{{0, 2}, {0, 2}, {1, 2}, {1, 2}}
	for r, v := range views {
		if v != want[r] {
			t.Errorf("world rank %d: comm view %+v, want %+v", r, v, want[r])
		}
	}
}

func TestSplitKeyOrdering(t *testing.T) {
	sim, w := newWorld(t, 2, 2)
	localRanks := make([]int, 4)
	run(t, sim, w, func(c *Ctx) {
		// Reverse the ordering via keys: higher world rank → lower key.
		comm, err := c.Split(0, -c.Rank())
		if err != nil {
			t.Error(err)
			return
		}
		localRanks[c.Rank()] = comm.Rank()
	})
	for worldRank, local := range localRanks {
		if want := 3 - worldRank; local != want {
			t.Errorf("world rank %d: comm rank %d, want %d (key-reversed)", worldRank, local, want)
		}
	}
}

func TestSplitOptOut(t *testing.T) {
	sim, w := newWorld(t, 2, 2)
	var optedOut, members int
	run(t, sim, w, func(c *Ctx) {
		color := 0
		if c.Rank() == 3 {
			color = -1 // MPI_UNDEFINED
		}
		comm, err := c.Split(color, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if comm == nil {
			optedOut++
			return
		}
		members = comm.Size()
	})
	if optedOut != 1 || members != 3 {
		t.Errorf("opt-out broken: %d opted out, comm size %d", optedOut, members)
	}
}

func TestCommSendRecvTranslation(t *testing.T) {
	sim, w := newWorld(t, 2, 2)
	var got Status
	run(t, sim, w, func(c *Ctx) {
		comm, err := c.Split(c.Rank()%2, 0)
		if err != nil {
			t.Error(err)
			return
		}
		// Within the odd communicator (world ranks 1 and 3 → comm
		// ranks 0 and 1): comm rank 0 sends to comm rank 1.
		if c.Rank()%2 == 1 {
			switch comm.Rank() {
			case 0:
				if err := comm.Send(1, 7, units.MiB, 0, "odd"); err != nil {
					t.Error(err)
				}
			case 1:
				st, err := comm.Recv(0, 7, units.MiB, 0)
				if err != nil {
					t.Error(err)
				}
				got = st
			}
		}
	})
	if got.Payload != "odd" {
		t.Error("comm-scoped message lost")
	}
	if got.Source != 0 {
		t.Errorf("status source = %d, want comm-local 0", got.Source)
	}
	if got.Tag != 7 {
		t.Errorf("status tag = %d, want user tag 7", got.Tag)
	}
}

func TestCommTagIsolation(t *testing.T) {
	// The same user tag in two communicators must not cross-match.
	sim, w := newWorld(t, 2, 2)
	payloads := make([]any, 4)
	run(t, sim, w, func(c *Ctx) {
		comm, err := c.Split(c.Rank()%2, 0)
		if err != nil {
			t.Error(err)
			return
		}
		switch comm.Rank() {
		case 0:
			label := "even"
			if c.Rank()%2 == 1 {
				label = "odd"
			}
			if err := comm.Send(1, 1, units.KiB, 0, label); err != nil {
				t.Error(err)
			}
		case 1:
			st, err := comm.Recv(0, 1, units.KiB, 0)
			if err != nil {
				t.Error(err)
			}
			payloads[c.Rank()] = st.Payload
		}
	})
	if payloads[2] != "even" || payloads[3] != "odd" {
		t.Errorf("communicator tags leaked: %v", payloads)
	}
}

func TestCommBarrier(t *testing.T) {
	sim, w := newWorld(t, 2, 2)
	times := make([]float64, 4)
	run(t, sim, w, func(c *Ctx) {
		comm, err := c.Split(c.Rank()%2, 0)
		if err != nil {
			t.Error(err)
			return
		}
		// Stagger arrivals within each communicator.
		c.Sleep(float64(comm.Rank()) * 1e-3)
		if err := comm.Barrier(); err != nil {
			t.Error(err)
		}
		times[c.Rank()] = c.Now()
	})
	// Each 2-member communicator leaves its barrier at its slower
	// member's time (1 ms), independently of the other communicator.
	for r, ts := range times {
		if ts < 1e-3-1e-12 || ts > 1.1e-3 {
			t.Errorf("rank %d left comm barrier at %v", r, ts)
		}
	}
}

func TestCommCollectives(t *testing.T) {
	sim, w := newWorld(t, 3, 2) // 6 ranks, split into 2 groups of 3
	sums := make([]float64, 6)
	bcasts := make([]any, 6)
	run(t, sim, w, func(c *Ctx) {
		comm, err := c.Split(c.Rank()%2, 0)
		if err != nil {
			t.Error(err)
			return
		}
		// Reduce comm-local ranks: 0+1+2 = 3 in each group.
		v, err := comm.Reduce(0, units.KiB, 0, float64(comm.Rank()), Sum)
		if err != nil {
			t.Error(err)
			return
		}
		sums[c.Rank()] = v
		// Broadcast the group's parity from its comm root.
		var payload any
		if comm.Rank() == 0 {
			payload = c.Rank() % 2
		}
		out, err := comm.Bcast(0, units.KiB, 0, payload)
		if err != nil {
			t.Error(err)
			return
		}
		bcasts[c.Rank()] = out
	})
	for r := 0; r < 6; r++ {
		isCommRoot := r/2 == 0 // world ranks 0 and 1 are comm rank 0 of their groups
		if isCommRoot && sums[r] != 3 {
			t.Errorf("world rank %d: reduction = %v, want 3", r, sums[r])
		}
		if bcasts[r] != r%2 {
			t.Errorf("world rank %d: bcast = %v, want %d", r, bcasts[r], r%2)
		}
	}
}

func TestSplitSequentialRounds(t *testing.T) {
	// Two Split rounds back to back must not interfere.
	sim, w := newWorld(t, 2, 2)
	run(t, sim, w, func(c *Ctx) {
		first, err := c.Split(c.Rank()%2, 0)
		if err != nil {
			t.Error(err)
			return
		}
		second, err := c.Split(0, c.Rank()) // everyone together
		if err != nil {
			t.Error(err)
			return
		}
		if first.Size() != 2 || second.Size() != 4 {
			t.Errorf("round sizes %d/%d, want 2/4", first.Size(), second.Size())
		}
		if second.Rank() != c.Rank() {
			t.Errorf("second round rank %d, want world order %d", second.Rank(), c.Rank())
		}
	})
}

func TestCommViewValidation(t *testing.T) {
	sim, w := newWorld(t, 2, 1)
	run(t, sim, w, func(c *Ctx) {
		comm, err := c.Split(0, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if err := comm.Send(9, 1, units.KiB, 0, nil); err == nil {
			t.Error("send to out-of-comm rank must fail")
		}
		if err := comm.Send(0, -1, units.KiB, 0, nil); err == nil && comm.Rank() == 0 {
			t.Error("negative comm tag must fail")
		}
		if _, err := comm.Bcast(9, units.KiB, 0, nil); err == nil {
			t.Error("invalid comm root must fail")
		}
		if _, err := comm.Reduce(0, units.KiB, 0, 0, nil); err == nil {
			t.Error("nil comm operator must fail")
		}
		if _, err := comm.WorldRank(0); err != nil {
			t.Error("valid translation failed")
		}
	})
}
