// Package mpi is a small message-passing interface over the simulated
// cluster, reproducing the programming model of the paper's benchmark
// (MadMPI / OpenMPI, §IV-A1): ranks with blocking and non-blocking
// point-to-point operations, tag matching with wildcards, barriers and a
// couple of collectives.
//
// Ranks are engine processes, so all of MPI runs under the deterministic
// cooperative scheduler: a program's outcome depends only on its logic and
// the simulated platform, never on goroutine interleaving.
package mpi

import (
	"errors"
	"fmt"

	"memcontention/internal/engine"
	"memcontention/internal/kernels"
	"memcontention/internal/memsys"
	"memcontention/internal/obs"
	"memcontention/internal/simnet"
	"memcontention/internal/topology"
	"memcontention/internal/units"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// EagerLimit is the message size under which sends complete immediately
// (buffered), as in real MPI implementations. Larger messages use a
// rendezvous: the sender blocks until the receiver has the data.
const EagerLimit = 32 * units.KiB

// World is an MPI job: a set of ranks spread over machines.
type World struct {
	sim    *engine.Sim
	fabric *simnet.Fabric
	ranks  []*rankState
	// res is the resilience policy (zero value: no timeouts/retries).
	res Resilience
	// spans, when set, records one causal span per rank, MPI operation,
	// barrier and compute phase. Nil costs one comparison per operation.
	spans obs.SpanRecorder
	// barrier bookkeeping
	barrierCount int
	barrierSig   *engine.Signal
	// communicator bookkeeping (Split rounds and per-comm barriers)
	splitRound   *splitRound
	commSeq      int
	commBarriers map[int]*commBarrier
}

// rankState is the communication state of one rank.
type rankState struct {
	id      int
	machine *simnet.Machine
	// span is the rank's root causal span (0 when spans are off).
	span obs.SpanID
	// posted holds receive requests waiting for a matching send;
	// unexpected holds send envelopes waiting for a matching receive.
	// Both are FIFO, as MPI matching requires.
	posted     []*Request
	unexpected []*envelope
}

// removePosted withdraws a receive request from the posted queue (used
// when the request times out). Missing requests are ignored.
func (rs *rankState) removePosted(req *Request) {
	for i, r := range rs.posted {
		if r == req {
			rs.posted = append(rs.posted[:i], rs.posted[i+1:]...)
			return
		}
	}
}

// envelope is a send seen from the receiving side.
type envelope struct {
	src, tag int
	size     units.ByteSize
	srcNode  topology.NodeID
	payload  any
	// sendReq completes when the data has been delivered (nil for
	// eager sends, which complete at post time).
	sendReq *Request
}

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	Size   units.ByteSize
	// Payload is the optional value attached by the sender.
	Payload any
	// AvgRate is the observed transfer bandwidth (0 for eager/local).
	AvgRate units.Bandwidth
}

// Request is a non-blocking operation handle.
type Request struct {
	world    *World
	done     bool
	sig      *engine.Signal
	status   Status
	err      error
	isRecv   bool
	src, tag int
	// peer is the other side: dst for sends, src for receives (may be
	// AnySource). Used for diagnostics only.
	peer    int
	dstNode topology.NodeID
	size    units.ByteSize
	// owner is the rank that posted the request (for receive-queue
	// removal on timeout).
	owner *rankState
	// span is the operation's causal span, ended at completion (0 when
	// spans are off).
	span obs.SpanID
}

// Test reports whether the request has completed.
func (r *Request) Test() bool { return r.done }

// complete marks the request done and wakes waiters. Completing an
// already-completed request (a transfer landing after its timeout fired)
// is a no-op: the first outcome wins.
func (r *Request) complete(st Status, err error) {
	if r.done {
		return
	}
	r.done = true
	r.status = st
	r.err = err
	if r.span != 0 && r.world.spans != nil {
		r.world.spans.EndSpan(r.span, r.world.sim.Now())
	}
	r.sig.Fire()
}

// NewWorld creates an MPI world over the fabric. ranksPerMachine ranks are
// created on each machine, rank ids counting machine-major.
func NewWorld(sim *engine.Sim, fabric *simnet.Fabric, machines []*simnet.Machine, ranksPerMachine int) (*World, error) {
	if ranksPerMachine <= 0 {
		return nil, fmt.Errorf("mpi: ranksPerMachine must be positive")
	}
	if len(machines) == 0 {
		return nil, fmt.Errorf("mpi: no machines")
	}
	w := &World{sim: sim, fabric: fabric}
	for _, m := range machines {
		for r := 0; r < ranksPerMachine; r++ {
			w.ranks = append(w.ranks, &rankState{id: len(w.ranks), machine: m})
		}
	}
	w.barrierSig = sim.NewSignal()
	return w, nil
}

// Size reports the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// SetSpanRecorder installs a causal span recorder on the world (nil
// removes it). Install it before Launch so every rank gets a root span.
func (w *World) SetSpanRecorder(sr obs.SpanRecorder) { w.spans = sr }

// beginOpSpan opens one operation span under the calling rank's root.
func (c *Ctx) beginOpSpan(name, cat string, node topology.NodeID) obs.SpanID {
	return c.world.spans.BeginSpan(c.rank.span, name, cat, c.world.sim.Now(), obs.SpanAttrs{
		Machine: c.rank.machine.ID,
		Rank:    c.rank.id,
		Node:    int(node),
	})
}

// Ctx is the per-rank handle passed to rank main functions.
type Ctx struct {
	world *World
	rank  *rankState
	proc  *engine.Proc
}

// Launch spawns every rank with the given main function. Call sim.Run()
// afterwards to execute the job.
func (w *World) Launch(main func(*Ctx)) {
	for _, rs := range w.ranks {
		rs := rs
		w.sim.Spawn(fmt.Sprintf("rank-%d", rs.id), func(p *engine.Proc) {
			if w.spans != nil {
				rs.span = w.spans.BeginSpan(0, fmt.Sprintf("rank %d", rs.id), "rank", w.sim.Now(), obs.SpanAttrs{
					Machine: rs.machine.ID,
					Rank:    rs.id,
					Node:    -1,
				})
			}
			main(&Ctx{world: w, rank: rs, proc: p})
			if w.spans != nil && rs.span != 0 {
				w.spans.EndSpan(rs.span, w.sim.Now())
			}
		})
	}
}

// Rank reports the calling rank's id.
func (c *Ctx) Rank() int { return c.rank.id }

// Size reports the world size.
func (c *Ctx) Size() int { return c.world.Size() }

// Machine returns the machine hosting this rank.
func (c *Ctx) Machine() *simnet.Machine { return c.rank.machine }

// Now reports the simulated time in seconds.
func (c *Ctx) Now() float64 { return c.world.sim.Now() }

// Sleep advances this rank by d simulated seconds.
func (c *Ctx) Sleep(d float64) { c.proc.Sleep(d) }

// Isend posts a non-blocking send of size bytes living on srcNode of the
// sender's machine. payload is an optional value handed to the receiver.
func (c *Ctx) Isend(dst, tag int, size units.ByteSize, srcNode topology.NodeID, payload any) (*Request, error) {
	if dst < 0 || dst >= c.world.Size() {
		return nil, fmt.Errorf("mpi: rank %d: Isend to invalid rank %d", c.Rank(), dst)
	}
	if tag < 0 {
		return nil, fmt.Errorf("mpi: rank %d: Isend with negative tag %d (wildcards are receive-only)", c.Rank(), tag)
	}
	if size <= 0 {
		return nil, fmt.Errorf("mpi: rank %d: Isend with non-positive size %d", c.Rank(), size)
	}
	if c.machineDown() {
		return nil, c.downError(fmt.Sprintf("Send(dst=%d, tag=%d)", dst, tag))
	}
	req := &Request{world: c.world, sig: c.world.sim.NewSignal(), tag: tag, size: size, peer: dst}
	if c.world.spans != nil {
		req.span = c.beginOpSpan(fmt.Sprintf("send→%d", dst), "mpi", srcNode)
	}
	env := &envelope{src: c.Rank(), tag: tag, size: size, srcNode: srcNode, payload: payload}
	if size > EagerLimit {
		env.sendReq = req
	} else {
		// Eager: the send buffer is considered reusable immediately.
		req.complete(Status{Source: c.Rank(), Tag: tag, Size: size}, nil)
	}
	c.world.deliverEnvelope(c.world.ranks[dst], env)
	return req, nil
}

// Send is the blocking version of Isend.
func (c *Ctx) Send(dst, tag int, size units.ByteSize, srcNode topology.NodeID, payload any) error {
	req, err := c.Isend(dst, tag, size, srcNode, payload)
	if err != nil {
		return err
	}
	_, err = c.Wait(req)
	return err
}

// Irecv posts a non-blocking receive into dstNode of the receiver's
// machine. src may be AnySource and tag AnyTag.
func (c *Ctx) Irecv(src, tag int, size units.ByteSize, dstNode topology.NodeID) (*Request, error) {
	if src != AnySource && (src < 0 || src >= c.world.Size()) {
		return nil, fmt.Errorf("mpi: rank %d: Irecv from invalid rank %d", c.Rank(), src)
	}
	if c.machineDown() {
		return nil, c.downError(fmt.Sprintf("Recv(src=%s, tag=%s)", rankName(src), tagName(tag)))
	}
	req := &Request{
		world: c.world, sig: c.world.sim.NewSignal(),
		isRecv: true, src: src, tag: tag, peer: src, dstNode: dstNode, size: size,
		owner: c.rank,
	}
	if c.world.spans != nil {
		req.span = c.beginOpSpan(fmt.Sprintf("recv←%s", rankName(src)), "mpi", dstNode)
	}
	// Try the unexpected queue first (FIFO matching).
	for i, env := range c.rank.unexpected {
		if req.matches(env) {
			c.rank.unexpected = append(c.rank.unexpected[:i], c.rank.unexpected[i+1:]...)
			c.world.startTransfer(c.rank, env, req)
			return req, nil
		}
	}
	c.rank.posted = append(c.rank.posted, req)
	return req, nil
}

// Recv is the blocking version of Irecv.
func (c *Ctx) Recv(src, tag int, size units.ByteSize, dstNode topology.NodeID) (Status, error) {
	req, err := c.Irecv(src, tag, size, dstNode)
	if err != nil {
		return Status{}, err
	}
	return c.Wait(req)
}

// machineDown reports whether the calling rank's own machine has been
// crashed by fault injection — the simulated software on a dead node
// cannot start new operations. Without a fault layer it costs one nil
// check.
func (c *Ctx) machineDown() bool {
	down, _ := c.world.fabric.MachineDown(c.rank.machine.ID)
	return down
}

// downError builds the structured failure for an operation attempted on
// the caller's crashed machine. Callers render op only after machineDown
// returns true, keeping string formatting off the healthy path.
func (c *Ctx) downError(op string) error {
	_, since := c.world.fabric.MachineDown(c.rank.machine.ID)
	return c.world.opError(c.Rank(), op, &simnet.DownError{Machine: c.rank.machine.ID, Since: since})
}

// Wait blocks until the request completes and returns its status. When
// the world's Resilience configures an OpTimeout, a request that stays
// incomplete for that many simulated seconds fails with an OpError
// wrapping ErrTimeout (a timed-out receive is withdrawn from the posted
// queue, so a late sender cannot complete it afterwards).
func (c *Ctx) Wait(req *Request) (Status, error) {
	if req == nil {
		return Status{}, fmt.Errorf("mpi: rank %d: Wait on nil request", c.Rank())
	}
	w := c.world
	var watchdog *engine.Timer
	if w.res.OpTimeout > 0 && !req.done {
		rank := c.Rank()
		watchdog = w.sim.After(w.res.OpTimeout, func() {
			if req.done {
				return
			}
			if req.isRecv && req.owner != nil {
				req.owner.removePosted(req)
			}
			req.complete(Status{}, w.opError(rank, req.opName(), ErrTimeout))
		})
	}
	for !req.done {
		// Lazy: the operation name is only rendered if this wait ends up
		// in a deadlock or watchdog diagnosis.
		c.proc.SetWaitStringer(req)
		req.sig.Wait(c.proc)
	}
	watchdog.Cancel()
	return req.status, req.err
}

// WaitAll waits for every request, returning the first error encountered.
func (c *Ctx) WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if _, err := c.Wait(r); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// matches implements MPI matching semantics for a posted receive.
func (r *Request) matches(env *envelope) bool {
	if r.src != AnySource && r.src != env.src {
		return false
	}
	if r.tag != AnyTag && r.tag != env.tag {
		return false
	}
	return true
}

// deliverEnvelope routes a send envelope to the destination rank,
// matching a posted receive if one exists.
func (w *World) deliverEnvelope(dst *rankState, env *envelope) {
	for i, req := range dst.posted {
		if req.matches(env) {
			dst.posted = append(dst.posted[:i], dst.posted[i+1:]...)
			w.startTransfer(dst, env, req)
			return
		}
	}
	dst.unexpected = append(dst.unexpected, env)
}

// startTransfer moves the message data. Intra-machine messages are local
// memory copies (modelled as instantaneous at this granularity);
// inter-machine messages go through the fabric. Messages the fabric drops
// are resent with exponential backoff, up to Resilience.MaxRetries times;
// a final failure is reported to both sides as a structured OpError
// naming their own rank and operation.
func (w *World) startTransfer(dst *rankState, env *envelope, req *Request) {
	srcMachine := w.ranks[env.src].machine
	st := Status{Source: env.src, Tag: env.tag, Size: env.size, Payload: env.payload}
	if srcMachine == dst.machine {
		w.sim.After(0, func() {
			req.complete(st, nil)
			if env.sendReq != nil {
				env.sendReq.complete(Status{Source: env.src, Tag: env.tag, Size: env.size}, nil)
			}
		})
		return
	}
	xfer := simnet.Transfer{
		Src: srcMachine, Dst: dst.machine,
		SrcNode: env.srcNode, DstNode: req.dstNode,
		Size: env.size,
	}
	// The wire transfer is causally the send's; eager sends have already
	// completed, so their data movement hangs off the receive instead.
	if env.sendReq != nil && env.sendReq.span != 0 {
		xfer.Parent = env.sendReq.span
	} else {
		xfer.Parent = req.span
	}
	finish := func(res simnet.Result, err error) {
		recvErr, sendErr := err, err
		if err != nil {
			recvErr = w.opError(dst.id, fmt.Sprintf("Recv(src=%d, tag=%d)", env.src, env.tag), err)
			sendErr = w.opError(env.src, fmt.Sprintf("Send(dst=%d, tag=%d)", dst.id, env.tag), err)
		}
		st.AvgRate = res.AvgRate
		req.complete(st, recvErr)
		if env.sendReq != nil {
			env.sendReq.complete(Status{Source: env.src, Tag: env.tag, Size: env.size}, sendErr)
		}
	}
	if w.res.MaxRetries == 0 {
		// Fast path: no retry machinery to allocate.
		w.fabric.DeliverAsync(xfer, finish)
		return
	}
	attempt := 0
	var send func()
	send = func() {
		// A receive that already failed (timeout) frees the channel:
		// stop resending into it.
		if req.done {
			return
		}
		w.fabric.DeliverAsync(xfer, func(res simnet.Result, err error) {
			if errors.Is(err, simnet.ErrMessageDropped) && attempt < w.res.MaxRetries {
				attempt++
				w.sim.After(w.res.backoff(attempt), send)
				return
			}
			finish(res, err)
		})
	}
	send()
}

// Barrier blocks until every rank has entered it.
func (c *Ctx) Barrier() {
	w := c.world
	var span obs.SpanID
	if w.spans != nil {
		span = c.beginOpSpan("barrier", "mpi", -1)
		defer func() { w.spans.EndSpan(span, w.sim.Now()) }()
	}
	w.barrierCount++
	if w.barrierCount == w.Size() {
		w.barrierCount = 0
		sig := w.barrierSig
		w.barrierSig = w.sim.NewSignal()
		sig.Fire()
		return
	}
	c.proc.SetWaitReason("Barrier")
	w.barrierSig.Wait(c.proc)
}

// Compute runs a kernel assignment until each core has moved perCoreBytes
// through memory; it blocks the rank and returns the aggregate observed
// bandwidth (weak scaling, as in the paper's benchmark).
func (c *Ctx) Compute(a kernels.Assignment, perCoreBytes units.ByteSize) (units.Bandwidth, error) {
	m := c.rank.machine
	if c.machineDown() {
		return 0, c.downError("Compute")
	}
	streams, err := a.Streams(m.Sys, 0)
	if err != nil {
		return 0, fmt.Errorf("mpi: rank %d: %w", c.Rank(), err)
	}
	start := c.Now()
	var span obs.SpanID
	if c.world.spans != nil {
		span = c.beginOpSpan("compute", "compute", -1)
	}
	handles := make([]*engine.Handle, len(streams))
	for i, st := range streams {
		st := st
		handles[i] = m.Flows.StartWithParent(memsys.Stream{
			Kind: memsys.KindCompute, Core: st.Core, Node: st.Node, Demand: st.Demand,
		}, perCoreBytes, span)
	}
	for _, h := range handles {
		c.proc.SetWaitReason("Compute")
		h.Wait(c.proc)
	}
	if span != 0 {
		c.world.spans.EndSpan(span, c.Now())
	}
	elapsed := c.Now() - start
	if elapsed <= 0 {
		return 0, nil
	}
	total := float64(perCoreBytes.Bytes()) * float64(len(streams))
	return units.Bandwidth(total / units.BytesPerGB / elapsed), nil
}
